let token_ok c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '/' || c = '_' || c = '$'

let iter s f =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let i0 = !i in
    if s.[i0] = 'L' && (i0 = 0 || not (token_ok s.[i0 - 1])) then begin
      let j = ref (i0 + 1) in
      while !j < n && token_ok s.[!j] do incr j done;
      if !j < n && s.[!j] = ';' && !j > i0 + 1 then begin
        f (Sym.intern (String.sub s i0 (!j - i0 + 1)));
        i := !j + 1
      end
      else incr i
    end
    else incr i
  done

let empty : Sym.t array = [||]

let of_string s =
  let acc = ref [] in
  iter s (fun tok -> acc := tok :: !acc);
  match List.sort_uniq Sym.compare !acc with
  | [] -> empty
  | toks -> Array.of_list toks

(* Memo: operand sym id -> token array, growable, published under a mutex.
   Reads also lock — operand tokenization happens at disassembly and on the
   first build over snapshot-loaded operands, never in a query hot loop. *)
let lock = Mutex.create ()
let memo : Sym.t array option array ref = ref (Array.make 1024 None)

let of_operand sym =
  let id = Sym.id sym in
  Mutex.lock lock;
  if id >= Array.length !memo then begin
    let m = Array.make (max (id + 1) (2 * Array.length !memo)) None in
    Array.blit !memo 0 m 0 (Array.length !memo);
    memo := m
  end;
  let r =
    match !memo.(id) with
    | Some toks -> toks
    | None ->
      let toks = of_string (Sym.to_string sym) in
      !memo.(id) <- Some toks;
      toks
  in
  Mutex.unlock lock;
  r
