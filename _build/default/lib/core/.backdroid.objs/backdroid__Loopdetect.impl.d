lib/core/loopdetect.ml: Ir List
