lib/core/dispatch.ml: Ir Jmethod Jsig Lifecycle_search Program
