lib/core/facts.mli: Format Hashtbl Ir
