lib/core/ssg.mli: Format Framework Hashtbl Ir
