(** Imperative construction DSL for classes and method bodies.  Used by the
    synthetic app generator, the examples and the test suite.

    A method builder allocates fresh SSA locals and appends statements; the
    identity statements for [this] and parameters are emitted automatically by
    {!method_}. *)

(* A tiny growable array so we avoid list-reversal noise. *)
module Buffer_ext = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let push b x =
    if b.len = Array.length b.data then begin
      let cap = max 8 (2 * Array.length b.data) in
      let data = Array.make cap x in
      Array.blit b.data 0 data 0 b.len;
      b.data <- data
    end;
    b.data.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.data 0 b.len
  let length b = b.len
end

type mb = {
  mutable next_local : int;
  stmts : Stmt.t Buffer_ext.t;
  mutable this_l : Value.local option;
  mutable params_l : Value.local array;
}

let fresh_local mb ty =
  let id = Printf.sprintf "$r%d" mb.next_local in
  mb.next_local <- mb.next_local + 1;
  { Value.id; ty }

let emit mb st = Buffer_ext.push mb.stmts st

(** Position the next statement will take; usable as a branch target. *)
let here mb = Buffer_ext.length mb.stmts

let assign mb ty e =
  let l = fresh_local mb ty in
  emit mb (Stmt.Assign (l, e));
  l

let const_str mb s = assign mb Types.string_ (Expr.Imm (Value.Const (Value.Str_c s)))
let const_int mb i = assign mb Types.Int (Expr.Imm (Value.Const (Value.Int_c i)))
let const_class mb c =
  assign mb (Types.Object "java.lang.Class")
    (Expr.Imm (Value.Const (Value.Class_c c)))

let this mb =
  match mb.this_l with
  | Some l -> l
  | None -> invalid_arg "Builder.this: static method"

let param mb i = mb.params_l.(i)

(** Allocate an object and run its constructor: [new C; C.<init>(args)]. *)
let new_obj mb cls ~ctor_params ~args =
  let l = assign mb (Types.Object cls) (Expr.New cls) in
  let callee = Jsig.meth ~cls ~name:"<init>" ~params:ctor_params ~ret:Types.Void in
  emit mb (Stmt.Invoke { Expr.kind = Expr.Special; callee; base = Some l; args });
  l

let invoke mb ?base ~kind ~callee ~args () =
  emit mb (Stmt.Invoke { Expr.kind; callee; base; args })

let invoke_ret mb ?base ~kind ~callee ~args () =
  let l = fresh_local mb callee.Jsig.ret in
  emit mb (Stmt.Assign (l, Expr.Invoke { Expr.kind; callee; base; args }));
  l

let call_virtual mb ~base ~callee ~args =
  invoke mb ~base ~kind:Expr.Virtual ~callee ~args ()

let call_static mb ~callee ~args = invoke mb ~kind:Expr.Static ~callee ~args ()

let call_interface mb ~base ~callee ~args =
  invoke mb ~base ~kind:Expr.Interface ~callee ~args ()

let return_void mb = emit mb (Stmt.Return None)
let return_val mb v = emit mb (Stmt.Return (Some v))

let iget mb obj f = assign mb f.Jsig.fty (Expr.Instance_get (obj, f))
let iput mb obj f v = emit mb (Stmt.Instance_put (obj, f, v))
let sget mb f = assign mb f.Jsig.fty (Expr.Static_get f)
let sput mb f v = emit mb (Stmt.Static_put (f, v))

(** Build a method.  [gen] receives the builder after the identity statements
    have been emitted, so [this]/[param] are available; it must emit the
    trailing return itself (or use [~auto_return:true]). *)
let method_ ?(access = Jmethod.default_access) ?(auto_return = true)
    ~cls ~name ~params ~ret gen =
  let mb =
    { next_local = 0; stmts = Buffer_ext.create (); this_l = None;
      params_l = [||] }
  in
  if not access.Jmethod.is_static then begin
    let l = fresh_local mb (Types.Object cls) in
    mb.this_l <- Some l;
    emit mb (Stmt.Assign (l, Expr.This))
  end;
  mb.params_l <-
    Array.of_list
      (List.mapi
         (fun i ty ->
            let l = fresh_local mb ty in
            emit mb (Stmt.Assign (l, Expr.Param i));
            l)
         params);
  gen mb;
  if auto_return then begin
    let already_returns =
      let n = Buffer_ext.length mb.stmts in
      n > 0
      &&
      match (Buffer_ext.to_array mb.stmts).(n - 1) with
      | Stmt.Return _ | Stmt.Throw _ | Stmt.Goto _ -> true
      | _ -> false
    in
    if not already_returns then
      if Types.equal ret Types.Void then return_void mb
      else return_val mb (Value.Const Value.Null)
  end;
  let msig = Jsig.meth ~cls ~name ~params ~ret in
  Jmethod.make ~access ~msig ~body:(Some (Buffer_ext.to_array mb.stmts)) ()

let static_access = { Jmethod.default_access with Jmethod.is_static = true }
let private_access = { Jmethod.default_access with Jmethod.is_private = true; is_public = false }

let constructor ?(params = []) ~cls gen =
  method_ ~cls ~name:"<init>" ~params ~ret:Types.Void gen

let clinit ~cls gen =
  method_ ~access:static_access ~cls ~name:"<clinit>" ~params:[] ~ret:Types.Void
    gen

(** An abstract / interface method declaration (no body). *)
let abstract_method ~cls ~name ~params ~ret =
  let access = { Jmethod.default_access with Jmethod.is_abstract = true } in
  Jmethod.make ~access ~msig:(Jsig.meth ~cls ~name ~params ~ret) ~body:None ()
