lib/core/lifecycle_search.ml: Hashtbl Ir Jclass Jmethod Jsig List Manifest Program String
