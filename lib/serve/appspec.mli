(** The wire-level description of a synthetic app: everything the CLI's
    app flags carry, with shapes and sinks by name.  Both the one-shot CLI
    and the daemon turn a spec into an app through {!generate}, so a
    served analysis and a one-shot analysis see the identical program. *)

type t = {
  seed : int;
  size_mb : float;
  plants : (string * string) list;
      (** (shape name, sink name) pairs; [[]] plants the default
          [direct:cipher] flow *)
  insecure : bool;
  mutate_pct : float;
      (** mutate this fraction of filler classes after generation
          (version N+1 simulation); [0.0] = pristine *)
}

val default : t

(** Sink registry of the CLI: name to sink spec. *)
val sink_names : (string * Framework.Sinks.t) list

(** The generated app's name, [com.cli.app<seed>] — matches the CLI. *)
val app_name : t -> string

(** Deterministic digest of the spec for cache keys. *)
val fingerprint : t -> string

(** Human-readable one-liner for logs. *)
val to_string : t -> string

(** Resolve names into a generator config ([Error] on unknown shape or
    sink names). *)
val resolve : t -> (Appgen.Generator.config, string) result

(** Generate the app (resolving first); applies the mutation pass when
    [mutate_pct > 0].  [build_dex:false] skips disassembly — the
    snapshot warm-start path. *)
val generate : ?build_dex:bool -> t -> (Appgen.Generator.app, string) result
