(** Per-sink provenance ledger: the compact derivation record every sink
    report carries — how its verdict came to be.

    A fresh slice records the bytecode-search queries it issued (per
    Sec. IV-F category), the resolver strategies it took with the caller
    counts they produced, the budget it spent against its caps, the SSG it
    grew, and its wall-clock cost.  Replayed verdicts (result cache, PR 8)
    and sink-cache shortcuts record their source instead, so a warm report
    is always distinguishable from a freshly computed one.

    {!key} folds only the scheduling-independent fields — the search-cache
    hit split and wall time legitimately vary across [--jobs] levels (which
    slice pays the one miss per distinct query depends on scheduling), so
    they are reported but excluded from the determinism fingerprint the
    jobs=1-vs-jobs=N tests compare. *)

type source =
  | Fresh                 (** computed by a backward slice in this run *)
  | Replayed              (** served from the persisted result cache *)
  | Sink_cache            (** Sec. IV-F sink-API reachability shortcut *)

let source_to_string = function
  | Fresh -> "fresh"
  | Replayed -> "replayed"
  | Sink_cache -> "sink-cache"

(** Strategy slot names, in [Resolver.strategy_index] order (the order of
    [Context.prov_resolutions]). *)
let strategy_names = [| "basic"; "advanced"; "clinit"; "lifecycle"; "icc" |]

type t = {
  p_source : source;
  p_strategies : (string * int * int) list;
      (** (strategy, resolutions, callers found), non-zero entries only,
          in {!strategy_names} order *)
  p_searches : int;        (** bytecode-search queries issued by the slice *)
  p_search_cached : int;   (** of which served from the search cache
                               (scheduling-dependent; informational) *)
  p_categories : (string * int) list;
      (** queries per Sec. IV-F category, non-zero only *)
  p_work : int;            (** work items spent *)
  p_max_work : int;        (** budget cap *)
  p_depth_limit : int;
  p_deadline_ms : float option;
  p_ssg_nodes : int;
  p_ssg_edges : int;
  p_wall_us : float;       (** 0. for non-fresh sources *)
}

let empty ~source ~(budget : Context.budget) =
  { p_source = source; p_strategies = []; p_searches = 0;
    p_search_cached = 0; p_categories = []; p_work = 0;
    p_max_work = budget.Context.max_work;
    p_depth_limit = budget.Context.max_depth;
    p_deadline_ms = budget.Context.time_limit_ms; p_ssg_nodes = 0;
    p_ssg_edges = 0; p_wall_us = 0.0 }

(** Ledger of a verdict replayed from the persisted result cache. *)
let replayed ~budget = empty ~source:Replayed ~budget

(** Ledger of a verdict served by the sink-API reachability shortcut. *)
let sink_cache_served ~budget = empty ~source:Sink_cache ~budget

(** Ledger of a freshly sliced sink: drains the accumulators of [ctx] and
    deltas the domain-local search counters against the slice-start
    snapshot (the slice ran entirely on this domain). *)
let fresh_of (ctx : Context.t) ~wall_us =
  let l0 = ctx.Context.prov_searches0 in
  let l1 = Bytesearch.Cache.local_counts () in
  let strategies = ref [] in
  for i = Array.length strategy_names - 1 downto 0 do
    let r = ctx.Context.prov_resolutions.(i)
    and c = ctx.Context.prov_callers.(i) in
    if r > 0 || c > 0 then
      strategies := (strategy_names.(i), r, c) :: !strategies
  done;
  let categories = ref [] in
  for i = Bytesearch.Query.n_categories - 1 downto 0 do
    let n =
      l1.Bytesearch.Cache.lc_by_cat.(i) - l0.Bytesearch.Cache.lc_by_cat.(i)
    in
    if n > 0 then
      categories :=
        ( Bytesearch.Query.category_to_string
            Bytesearch.Query.all_categories.(i),
          n )
        :: !categories
  done;
  { p_source = Fresh; p_strategies = !strategies;
    p_searches = l1.Bytesearch.Cache.lc_total - l0.Bytesearch.Cache.lc_total;
    p_search_cached =
      l1.Bytesearch.Cache.lc_cached - l0.Bytesearch.Cache.lc_cached;
    p_categories = !categories; p_work = ctx.Context.work_count;
    p_max_work = ctx.Context.budget.Context.max_work;
    p_depth_limit = ctx.Context.budget.Context.max_depth;
    p_deadline_ms = ctx.Context.budget.Context.time_limit_ms;
    p_ssg_nodes = Ssg.node_count ctx.Context.ssg;
    p_ssg_edges = Ssg.edge_count ctx.Context.ssg; p_wall_us = wall_us }

(* -- Rendering -------------------------------------------------------- *)

(** Multi-line human rendering for [analyze --explain].  [timing:false]
    omits the wall-clock line (stable output for tests and diffs). *)
let render ?(timing = true) t =
  let b = Buffer.create 256 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "    source: %s\n" (source_to_string t.p_source);
  (match t.p_source with
   | Replayed | Sink_cache -> ()
   | Fresh ->
     if t.p_strategies <> [] then
       bpf "    strategies: %s\n"
         (String.concat ", "
            (List.map
               (fun (n, r, c) -> Printf.sprintf "%s x%d (%d callers)" n r c)
               t.p_strategies));
     (* the cached count is, like wall time, a fact about this execution
        (warm vs cold process cache), not about the derivation — gate it
        with [timing] so deterministic renders compare across runs *)
     bpf "    searches: %d issued%s%s\n" t.p_searches
       (if timing then Printf.sprintf " (%d cached)" t.p_search_cached
        else "")
       (if t.p_categories = [] then ""
        else
          Printf.sprintf " — %s"
            (String.concat ", "
               (List.map
                  (fun (c, n) -> Printf.sprintf "%s %d" c n)
                  t.p_categories)));
     bpf "    budget: %d/%d work, depth cap %d%s\n" t.p_work t.p_max_work
       t.p_depth_limit
       (match t.p_deadline_ms with
        | None -> ""
        | Some ms -> Printf.sprintf ", deadline %.0fms" ms);
     bpf "    ssg: %d nodes, %d edges\n" t.p_ssg_nodes t.p_ssg_edges;
     if timing then bpf "    wall: %.0fus\n" t.p_wall_us);
  Buffer.contents b

(** Deterministic fingerprint: every field except the scheduling-dependent
    search-cache split and wall time.  Equal across jobs=1 and jobs=N for
    the same app and rules. *)
let key t =
  Printf.sprintf "%s|%s|s%d|%s|w%d/%d|d%d|ssg%d/%d"
    (source_to_string t.p_source)
    (String.concat ","
       (List.map
          (fun (n, r, c) -> Printf.sprintf "%s:%d:%d" n r c)
          t.p_strategies))
    t.p_searches
    (String.concat ","
       (List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n) t.p_categories))
    t.p_work t.p_max_work t.p_depth_limit t.p_ssg_nodes t.p_ssg_edges

(* -- Serialization ---------------------------------------------------- *)

(** Compact single-line JSON object (embedded in eval artifacts). *)
let to_json t =
  let strategies =
    String.concat ","
      (List.map
         (fun (n, r, c) ->
            Printf.sprintf "{\"strategy\":\"%s\",\"resolutions\":%d,\"callers\":%d}"
              (Obs.Jsonf.escape n) r c)
         t.p_strategies)
  in
  let categories =
    String.concat ","
      (List.map
         (fun (c, n) -> Printf.sprintf "\"%s\":%d" (Obs.Jsonf.escape c) n)
         t.p_categories)
  in
  Printf.sprintf
    "{%s,\"strategies\":[%s],\"categories\":{%s},%s,%s,%s,%s,%s,%s,%s}"
    (Obs.Jsonf.str_field "source" (source_to_string t.p_source))
    strategies categories
    (Obs.Jsonf.int_field "searches" t.p_searches)
    (Obs.Jsonf.int_field "search_cached" t.p_search_cached)
    (Obs.Jsonf.int_field "work" t.p_work)
    (Obs.Jsonf.int_field "max_work" t.p_max_work)
    (Obs.Jsonf.int_field "ssg_nodes" t.p_ssg_nodes)
    (Obs.Jsonf.int_field "ssg_edges" t.p_ssg_edges)
    (Obs.Jsonf.num_field "wall_us" t.p_wall_us)
