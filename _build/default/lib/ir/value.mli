(** IR values: SSA locals and constants. *)

type local = { id : string; ty : Types.t; }
type const =
    Null
  | Int_c of int
  | Long_c of int64
  | Float_c of float
  | Double_c of float
  | Str_c of string
  | Class_c of string
type t = Local of local | Const of const
val local_equal : local -> local -> bool
val const_equal : const -> const -> bool
val equal : t -> t -> bool
val local_of : t -> local option
val const_to_string : const -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
