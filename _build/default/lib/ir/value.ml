(** IR values: SSA locals and constants. *)

type local = {
  id : string;    (** register name, e.g. ["$r13"] or ["v2"] *)
  ty : Types.t;
}

type const =
  | Null
  | Int_c of int
  | Long_c of int64
  | Float_c of float
  | Double_c of float
  | Str_c of string
  | Class_c of string  (** [const-class], dotted class name *)

type t =
  | Local of local
  | Const of const

let local_equal a b = String.equal a.id b.id

let const_equal a b =
  match a, b with
  | Null, Null -> true
  | Int_c x, Int_c y -> x = y
  | Long_c x, Long_c y -> Int64.equal x y
  | Float_c x, Float_c y -> Float.equal x y
  | Double_c x, Double_c y -> Float.equal x y
  | Str_c x, Str_c y -> String.equal x y
  | Class_c x, Class_c y -> String.equal x y
  | (Null | Int_c _ | Long_c _ | Float_c _ | Double_c _ | Str_c _ | Class_c _), _
    -> false

let equal a b =
  match a, b with
  | Local x, Local y -> local_equal x y
  | Const x, Const y -> const_equal x y
  | (Local _ | Const _), _ -> false

let local_of = function Local l -> Some l | Const _ -> None

let const_to_string = function
  | Null -> "null"
  | Int_c i -> string_of_int i
  | Long_c i -> Int64.to_string i ^ "L"
  | Float_c f -> string_of_float f ^ "F"
  | Double_c f -> string_of_float f
  | Str_c s -> Printf.sprintf "%S" s
  | Class_c c -> "class " ^ c

let to_string = function
  | Local l -> l.id
  | Const c -> const_to_string c

let pp ppf v = Fmt.string ppf (to_string v)
