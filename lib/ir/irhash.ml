(* Structural FNV-1a-64 content hash over the IR, used by the delta
   snapshot path to decide which classes of a new build changed without
   rendering them.  The walk feeds only constructor tags, strings and
   small ints into the fold — no Sym ids, no physical identity — so the
   hash is stable across processes and across unrelated interning
   activity.  Disassembly is deterministic, so IR-hash equality implies
   rendered-line equality; the converse inequality only costs a spurious
   re-render, never a wrong reuse. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int h i =
  (* eight explicit bytes so [int h 1; int h 2] never collides with
     [int h 0x0102] the way a raw char-fold would *)
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h ((i lsr (shift * 8)) land 0xff)
  done;
  !h

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let tag h t = byte h t
let bool h b = byte h (if b then 1 else 0)
let option f h = function None -> tag h 0 | Some x -> f (tag h 1) x
let list f h xs = List.fold_left f (int h (List.length xs)) xs

let rec ty h (t : Types.t) =
  match t with
  | Void -> tag h 0
  | Boolean -> tag h 1
  | Byte -> tag h 2
  | Char -> tag h 3
  | Short -> tag h 4
  | Int -> tag h 5
  | Long -> tag h 6
  | Float -> tag h 7
  | Double -> tag h 8
  | Object s -> string (tag h 9) s
  | Array e -> ty (tag h 10) e

let local h (l : Value.local) = ty (string (tag h 1) l.id) l.ty

let const h (c : Value.const) =
  match c with
  | Value.Null -> tag h 0
  | Int_c i -> int (tag h 1) i
  | Long_c i -> int (int (tag h 2) (Int64.to_int i)) (Int64.to_int (Int64.shift_right_logical i 32))
  | Float_c f -> int (tag h 3) (Int64.to_int (Int64.bits_of_float f))
  | Double_c f -> int (tag h 4) (Int64.to_int (Int64.bits_of_float f))
  | Str_c s -> string (tag h 5) s
  | Class_c s -> string (tag h 6) s

let value h (v : Value.t) =
  match v with
  | Local l -> local (tag h 1) l
  | Const c -> const (tag h 2) c

let field h (f : Jsig.field) = ty (string (string (tag h 3) f.fcls) f.fname) f.fty

let meth_sig h (m : Jsig.meth) =
  ty (list ty (string (string (tag h 4) m.cls) m.name) m.params) m.ret

let binop_code (b : Expr.binop) =
  match b with
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4 | Band -> 5
  | Bor -> 6 | Bxor -> 7 | Shl -> 8 | Shr -> 9 | Ushr -> 10 | Cmp -> 11
  | Eq -> 12 | Ne -> 13 | Lt -> 14 | Le -> 15 | Gt -> 16 | Ge -> 17

let invoke h (iv : Expr.invoke) =
  let kind =
    match iv.kind with Virtual -> 0 | Special -> 1 | Static -> 2 | Interface -> 3
  in
  list value (option local (meth_sig (tag h kind) iv.callee) iv.base) iv.args

let expr h (e : Expr.t) =
  match e with
  | Imm v -> value (tag h 0) v
  | Binop (b, x, y) -> value (value (tag (tag h 1) (binop_code b)) x) y
  | Cast (t, v) -> value (ty (tag h 2) t) v
  | Invoke iv -> invoke (tag h 3) iv
  | New cls -> string (tag h 4) cls
  | New_array (t, n) -> value (ty (tag h 5) t) n
  | Array_get (a, i) -> value (local (tag h 6) a) i
  | Instance_get (b, f) -> field (local (tag h 7) b) f
  | Static_get f -> field (tag h 8) f
  | Phi ls -> list local (tag h 9) ls
  | Param i -> int (tag h 10) i
  | This -> tag h 11
  | Caught_exception -> tag h 12
  | Length v -> value (tag h 13) v

let stmt h (s : Stmt.t) =
  match s with
  | Assign (l, e) -> expr (local (tag h 0) l) e
  | Instance_put (b, f, v) -> value (field (local (tag h 1) b) f) v
  | Static_put (f, v) -> value (field (tag h 2) f) v
  | Array_put (a, i, v) -> value (value (local (tag h 3) a) i) v
  | Invoke iv -> invoke (tag h 4) iv
  | Return v -> option value (tag h 5) v
  | If (b, x, y, target) -> int (value (value (tag (tag h 6) (binop_code b)) x) y) target
  | Goto target -> int (tag h 7) target
  | Throw v -> value (tag h 8) v
  | Nop -> tag h 9

let access h (a : Jmethod.access) =
  bool
    (bool (bool (bool (bool (bool (bool h a.is_static) a.is_private) a.is_public)
             a.is_abstract)
        a.is_final)
       a.is_native)
    a.is_synthetic

let jmethod h (m : Jmethod.t) =
  let h = access (meth_sig h m.msig) m.access in
  match m.body with
  | None -> tag h 0
  | Some body ->
    Array.fold_left stmt (int (tag h 1) (Array.length body)) body

let jclass_uncached (c : Jclass.t) =
  let h = string offset_basis c.name in
  let h = option string h c.super in
  let h = list string h c.interfaces in
  let h = bool (bool (bool h c.is_interface) c.is_abstract) c.is_system in
  let h = list field h c.fields in
  list jmethod h c.methods

(* Physical-identity memo: the IR is immutable and a version update rebuilds
   only the classes it touches, so the unchanged classes of a v2 program are
   the very objects already hashed while building v1 (or its classmap).  The
   ephemeron key keeps the memo from pinning dead programs; the name-based
   bucket hash makes two versions of one class collide into the same bucket,
   where physical equality tells them apart. *)
module Memo = Ephemeron.K1.Make (struct
  type t = Jclass.t

  let equal = ( == )
  let hash (c : Jclass.t) = Hashtbl.hash c.Jclass.name
end)

let memo : int64 Memo.t = Memo.create 1024
let memo_lock = Mutex.create ()

let jclass (c : Jclass.t) =
  Mutex.lock memo_lock;
  let cached = Memo.find_opt memo c in
  Mutex.unlock memo_lock;
  match cached with
  | Some h -> h
  | None ->
    let h = jclass_uncached c in
    Mutex.lock memo_lock;
    Memo.replace memo c h;
    Mutex.unlock memo_lock;
    h
