(* Tests for the evaluation harness: statistics helpers and the per-tool
   runners. *)

module G = Appgen.Generator
module Stats = Evalharness.Stats
module Runner = Evalharness.Runner

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.median []))

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_histogram () =
  let xs = [ 0.5; 1.5; 2.5; 7.0; 20.0 ] in
  Alcotest.(check (list int)) "buckets" [ 1; 2; 1; 1 ]
    (Stats.histogram ~buckets:[ 1.0; 5.0; 10.0 ] xs)

let test_count_in () =
  Alcotest.(check int) "half-open" 2
    (Stats.count_in ~lo:1.0 ~hi:3.0 [ 0.5; 1.0; 2.9; 3.0 ])

let test_percentile () =
  let xs = List.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p90" 90.0 (Stats.percentile 90.0 xs)

let tiny_app () =
  G.generate
    { G.default_config with
      G.seed = 3;
      name = "com.eval.tiny";
      filler_classes = 3;
      plants =
        [ { G.shape = Appgen.Shape.Direct; sink = Framework.Sinks.cipher;
            insecure = true } ] }

let test_run_backdroid () =
  let m, _ = Runner.run_backdroid (tiny_app ()) in
  Alcotest.(check bool) "no timeout" false m.Runner.timed_out;
  Alcotest.(check int) "one sink call" 1 m.Runner.sink_calls;
  Alcotest.(check int) "one insecure" 1 m.Runner.insecure;
  Alcotest.(check bool) "positive time" true (m.Runner.seconds >= 0.0)

let test_run_amandroid () =
  let m, _ = Runner.run_amandroid ~timeout_s:30.0 (tiny_app ()) in
  Alcotest.(check bool) "no timeout" false m.Runner.timed_out;
  Alcotest.(check int) "one insecure" 1 m.Runner.insecure

let test_run_amandroid_timeout_cap () =
  (* an enormous deep app with a tiny budget must report exactly the cap *)
  let app =
    G.generate
      { G.default_config with
        G.seed = 5;
        name = "com.eval.big";
        filler_classes = 200;
        filler_jump_locality = 2;
        filler_fanout_max = 3 }
  in
  let m, _ = Runner.run_amandroid ~timeout_s:0.05 app in
  if m.Runner.timed_out then
    Alcotest.(check (float 1e-9)) "capped at budget" 0.05 m.Runner.seconds
  else Alcotest.(check bool) "fast enough to finish" true (m.Runner.seconds < 0.5)

let test_run_flowdroid () =
  let m = Runner.run_flowdroid_cg ~timeout_s:30.0 (tiny_app ()) in
  Alcotest.(check bool) "no timeout" false m.Runner.timed_out;
  Alcotest.(check string) "tool name" "FlowDroid-CG" (Runner.tool_name m.Runner.tool)

let test_csv_roundtrip () =
  let m, _ = Runner.run_backdroid (tiny_app ()) in
  let row = Evalharness.Report.csv_row m in
  match Evalharness.Report.parse_row row with
  | Some m' ->
    Alcotest.(check string) "app" m.Runner.app m'.Runner.app;
    Alcotest.(check int) "sinks" m.Runner.sink_calls m'.Runner.sink_calls;
    Alcotest.(check bool) "tool" true (m.Runner.tool = m'.Runner.tool);
    Alcotest.(check bool) "incremental" m.Runner.incremental
      m'.Runner.incremental
  | None -> Alcotest.fail "row failed to parse"

(* Rows from before the trailing [incremental] column — and before the
   per-rule columns — must still parse, with the missing columns at their
   zero values. *)
let test_csv_old_rows () =
  let base =
    "com.old.app,BackDroid,0.123456,false,false,2,100,0.10,1,0.5000,0.0000,0,0,0,1"
  in
  let pr7 =
    base
    ^ String.concat ""
        (List.map (fun _ -> ",0") Rules.Builtin.family_names)
  in
  let check_row label row expect_incremental =
    match Evalharness.Report.parse_row row with
    | Some m ->
      Alcotest.(check int) (label ^ " sinks") 2 m.Runner.sink_calls;
      Alcotest.(check bool)
        (label ^ " incremental")
        expect_incremental m.Runner.incremental
    | None -> Alcotest.fail (label ^ " failed to parse")
  in
  check_row "pre-family row" base false;
  check_row "pre-incremental row" pr7 false;
  check_row "current row" (pr7 ^ ",true") true

let test_csv_write () =
  let m, _ = Runner.run_backdroid (tiny_app ()) in
  let path = Filename.temp_file "bd" ".csv" in
  Evalharness.Report.write_csv path [ m; m ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "header + 2 rows" 3 (List.length !lines)

let cases =
  [ Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "count_in" `Quick test_count_in;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "run backdroid" `Quick test_run_backdroid;
    Alcotest.test_case "run amandroid" `Quick test_run_amandroid;
    Alcotest.test_case "amandroid timeout cap" `Quick test_run_amandroid_timeout_cap;
    Alcotest.test_case "run flowdroid-cg" `Quick test_run_flowdroid;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv old-row compat" `Quick test_csv_old_rows;
    Alcotest.test_case "csv write" `Quick test_csv_write ]

let suites = [ "eval.unit", cases ]
