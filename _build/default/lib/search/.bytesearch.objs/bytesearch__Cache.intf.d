lib/search/cache.mli: Hashtbl Query
