lib/dex/parse.ml: Array Descriptor Ir Jsig List Option Printf Scanf String
