(** The per-app SSG the paper plans as future work (Sec. V-A, Sec. VI-D):
    the union of all per-sink SSGs of one app, deduplicated, so that no
    matter how many sinks there are, only one partial-app graph has to be
    kept. *)

open Ir
module Sinks = Framework.Sinks

type t = {
  sinks : (Sinks.t * Jsig.meth * int) list;
      (** every sink occurrence folded into the graph *)
  nodes : Ssg.unit_ list;
  edges : Ssg.edge list;
  entry_methods : Jsig.meth list;
  static_track : Jsig.meth list;
  reachable_sinks : int;
}

let edge_key (e : Ssg.edge) =
  match e with
  | Ssg.Call { caller; site; callee } ->
    Printf.sprintf "call|%s|%d|%s" (Jsig.meth_to_string caller) site
      (Jsig.meth_to_string callee)
  | Ssg.Contained { caller; site; callee } ->
    Printf.sprintf "cont|%s|%d|%s" (Jsig.meth_to_string caller) site
      (Jsig.meth_to_string callee)
  | Ssg.Async { caller; ctor_site; callee; _ } ->
    Printf.sprintf "async|%s|%d|%s" (Jsig.meth_to_string caller) ctor_site
      (Jsig.meth_to_string callee)
  | Ssg.Icc { caller; site; handler } ->
    Printf.sprintf "icc|%s|%d|%s" (Jsig.meth_to_string caller) site
      (Jsig.meth_to_string handler)
  | Ssg.Lifecycle { pre; handler } ->
    Printf.sprintf "lc|%s|%s" (Jsig.meth_to_string pre)
      (Jsig.meth_to_string handler)

(** Merge per-sink SSGs into the per-app graph. *)
let merge (ssgs : Ssg.t list) =
  let node_seen = Hashtbl.create 256 in
  let edge_seen = Hashtbl.create 128 in
  let meth_seen = Hashtbl.create 32 in
  let nodes = ref [] and edges = ref [] in
  let entries = ref [] and statics = ref [] in
  let add_meth store m =
    let k = Jsig.meth_to_string m in
    if not (Hashtbl.mem meth_seen (store, k)) then begin
      Hashtbl.replace meth_seen (store, k) ();
      (if store = "entry" then entries := m :: !entries
       else statics := m :: !statics)
    end
  in
  List.iter
    (fun (ssg : Ssg.t) ->
       List.iter
         (fun (u : Ssg.unit_) ->
            let k = (Jsig.meth_to_string u.meth, u.stmt_idx) in
            if not (Hashtbl.mem node_seen k) then begin
              Hashtbl.replace node_seen k ();
              nodes := u :: !nodes
            end)
         ssg.nodes;
       List.iter
         (fun e ->
            let k = edge_key e in
            if not (Hashtbl.mem edge_seen k) then begin
              Hashtbl.replace edge_seen k ();
              edges := e :: !edges
            end)
         ssg.edges;
       List.iter (add_meth "entry") ssg.entry_methods;
       List.iter (add_meth "static") ssg.static_track)
    ssgs;
  { sinks =
      List.map (fun (s : Ssg.t) -> (s.sink, s.sink_meth, s.sink_site)) ssgs;
    nodes = List.rev !nodes;
    edges = List.rev !edges;
    entry_methods = List.rev !entries;
    static_track = List.rev !statics;
    reachable_sinks =
      List.length (List.filter (fun (s : Ssg.t) -> s.reachable) ssgs) }

let node_count t = List.length t.nodes
let edge_count t = List.length t.edges

let pp ppf t =
  Fmt.pf ppf "per-app SSG: %d sinks (%d reachable), %d nodes, %d edges@."
    (List.length t.sinks) t.reachable_sinks (node_count t) (edge_count t);
  List.iter
    (fun ((sink : Sinks.t), m, site) ->
       Fmt.pf ppf "  sink %s at %s:%d@."
         sink.Sinks.name
         (Jsig.meth_to_string m) site)
    t.sinks;
  List.iter
    (fun m -> Fmt.pf ppf "  entry %s@." (Jsig.meth_to_string m))
    t.entry_methods
