(** The FlowDroid baseline of Sec. II-C: whole-app call-graph generation
    *only* (no taint analysis), with geomPTA-style context-sensitive
    refinement.  The base call graph is built per (method, calling-context)
    pair; the refinement passes then revisit every virtual call site × CHA
    target × calling context of the enclosing method, which is exactly where
    a context-sensitive points-to-based call graph blows up on large,
    dispatch-heavy apps (the 24% Fig. 1 timeouts). *)

open Ir

exception Timeout = Callgraph.Timeout

type config = {
  context_depth : int;   (** k of the k-CFA-style call-graph construction *)
  refinement_rounds : int;
      (** geomPTA-style points-to refinement passes over the virtual call
          sites after the base call graph is built *)
  deadline : float option;
}

let default_config = { context_depth = 1; refinement_rounds = 10; deadline = None }

type result = {
  methods : int;     (** distinct reachable methods *)
  contexts : int;    (** (method, context) pairs processed *)
  edges : int;       (** context-qualified call edges *)
  refined : int;     (** (site, target, context) triples refined *)
}

let check_deadline cfg =
  match cfg.deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | Some _ | None -> ()

(** Build the context-refined call graph.  Raises {!Timeout} past the
    deadline (the 24% of modern apps in Fig. 1). *)
let build ?(cfg = default_config) program manifest =
  let cg_cfg =
    { Callgraph.robust_config with
      Callgraph.skip_packages = [];
      unregistered_components_are_entries = false;
      deadline = cfg.deadline }
  in
  let entries = Callgraph.entry_points cg_cfg program manifest in
  let seen_ctx : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let seen_meth : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* per-method incoming-context counts, needed by the refinement passes *)
  let in_contexts : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let edges = ref 0 in
  let queue = Queue.create () in
  let enqueue m ctx_chain =
    let mkey = Jsig.meth_to_string m in
    let key = mkey ^ "@" ^ String.concat ">" ctx_chain in
    if not (Hashtbl.mem seen_ctx key) then begin
      Hashtbl.replace seen_ctx key ();
      Hashtbl.replace seen_meth mkey ();
      Hashtbl.replace in_contexts mkey
        (1 + Option.value ~default:0 (Hashtbl.find_opt in_contexts mkey));
      Queue.add (m, ctx_chain) queue
    end
  in
  List.iter (fun e -> enqueue e []) entries;
  check_deadline cfg;
  let steps = ref 0 in
  while not (Queue.is_empty queue) do
    incr steps;
    if !steps land 63 = 0 then check_deadline cfg;
    let m, ctx_chain = Queue.pop queue in
    match Program.find_method program m with
    | None | Some { Jmethod.body = None; _ } -> ()
    | Some jm ->
      let body = Option.get jm.Jmethod.body in
      let callee_ctx =
        let chain = Jsig.meth_to_string m :: ctx_chain in
        if List.length chain > cfg.context_depth then
          List.filteri (fun i _ -> i < cfg.context_depth) chain
        else chain
      in
      Array.iter
        (fun stmt ->
           match Stmt.invoke stmt with
           | None -> ()
           | Some iv ->
             let direct = Cha.targets program iv in
             let extra = Callgraph.async_targets cg_cfg program iv in
             List.iter
               (fun tm ->
                  incr edges;
                  enqueue tm callee_ctx)
               (direct @ extra))
        body
  done;
  (* refinement: revisit every virtual call site of every reachable method,
     once per (target, incoming context of the enclosing method, round) —
     the context-sensitive points-to work proper *)
  let refined = ref 0 in
  let refine_tbl : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  for round = 1 to cfg.refinement_rounds do
    Hashtbl.iter
      (fun mkey () ->
         check_deadline cfg;
         match Program.find_method program (Jsig.meth_of_string mkey) with
         | None | Some { Jmethod.body = None; _ } -> ()
         | Some jm ->
           let n_ctx =
             Option.value ~default:1 (Hashtbl.find_opt in_contexts mkey)
           in
           List.iter
             (fun (site, (iv : Expr.invoke)) ->
                match iv.kind with
                | Expr.Virtual | Expr.Interface ->
                  let targets = Cha.targets program iv in
                  List.iteri
                    (fun t_idx _tm ->
                       for c = 1 to n_ctx do
                         incr refined;
                         (* simulate constraint-set updates: hashing keeps the
                            work per triple comparable to a points-to merge *)
                         Hashtbl.replace refine_tbl
                           (Hashtbl.hash (mkey, site, t_idx, c, round))
                           ()
                       done)
                    targets
                | Expr.Static | Expr.Special -> ())
             (Jmethod.call_sites jm))
      seen_meth
  done;
  { methods = Hashtbl.length seen_meth;
    contexts = Hashtbl.length seen_ctx;
    edges = !edges;
    refined = !refined }
