lib/ir/jsig.mli: Format Hashtbl Seq Types
