lib/eval/report.mli: Runner
