tools/calibrate.mli:
