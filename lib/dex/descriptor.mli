(** Dex (dexdump) descriptor rendering and parsing — the "bytecode format"
    side of the paper's step-1/step-3 signature translation.

    Types render as [I], [Ljava/lang/String;], [[I]; methods as
    [Lcom/foo/Bar;.start:(Ljava/lang/String;)V]; fields as
    [Lcom/foo/Bar;.port:I]. *)

val class_desc : string -> string
val class_of_desc : string -> string
val type_desc : Ir.Types.t -> string

(** Parse one type descriptor starting at [pos]; returns the type and the
    position just past it. *)
val parse_type : string -> int -> Ir.Types.t * int
val type_of_desc : string -> Ir.Types.t
val proto_desc : params:Ir.Types.t list -> ret:Ir.Types.t -> string

(** Full dexdump method signature, the exact string the bytecode search
    constructs in step 1 of Fig. 3. *)
val meth_desc : Ir.Jsig.meth -> string
val field_desc : Ir.Jsig.field -> string

(** Parse a dexdump method signature back into IR form (step 3 of Fig. 3). *)
val meth_of_desc : string -> Ir.Jsig.meth
val field_of_desc : string -> Ir.Jsig.field

(** Interned (hash-consed) descriptors — memoized renderings of
    {!class_desc}, {!meth_desc} and {!field_desc}.  Disassembly and query
    construction intern through the same memos, so a search signature and
    the indexed operand it matches are the same [Sym.t]. *)
val class_desc_sym : string -> Sym.t

val meth_desc_sym : Ir.Jsig.meth -> Sym.t
val field_desc_sym : Ir.Jsig.field -> Sym.t
