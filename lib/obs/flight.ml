(** Always-on flight recorder: a process-wide {!Ring} of the most recent
    telemetry events, kept at near-disabled cost and dumped as structured
    JSON only when something goes wrong (or on explicit request).

    Recording is one [Atomic.get] plus a per-domain ring push — no mutex,
    no clock read beyond the one the caller usually already made — so it
    stays enabled in production runs where spans and `--profile` are off.
    Anomalies ({!anomaly}: partial outcomes, deadline hits, snapshot-load
    warnings, uncaught exceptions) bump a counter and, when a dump path has
    been armed ({!arm_auto_dump}), immediately write the whole ring plus a
    metrics snapshot to disk, so the last-N-events context of a failure
    survives the process. *)

type event = {
  ev_ts_us : float;         (** µs since the process origin ({!Span.now_us}) *)
  ev_dom : int;             (** recording domain id *)
  ev_pid : int;             (** logical process (app) id *)
  ev_kind : string;         (** "span" | "counter" | "trace" | "anomaly" | ... *)
  ev_name : string;
  ev_attrs : Span.attr list;
}

(* -- Recording ------------------------------------------------------- *)

let default_capacity = 1 lsl 9

let ring : event Ring.t = Ring.create ~capacity:default_capacity ()

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let anomalies_count = Atomic.make 0

let record ?ts_us ?(attrs = []) ~kind ~name () =
  if Atomic.get enabled_flag then begin
    let ts = match ts_us with Some t -> t | None -> Span.now_us () in
    Ring.push ring
      { ev_ts_us = ts; ev_dom = Span.self_tid (); ev_pid = Span.current_pid ();
        ev_kind = kind; ev_name = name; ev_attrs = attrs }
  end

(** One sample of a named numeric series (rendered as a Chrome 'C' counter
    event by the trace exporter). *)
let counter_sample ?ts_us ~name v =
  record ?ts_us ~attrs: [ ("value", Span.Float v) ] ~kind:"counter" ~name ()

(* -- Introspection --------------------------------------------------- *)

(** Events currently retained, in timestamp order. *)
let events () =
  List.stable_sort
    (fun a b -> Float.compare a.ev_ts_us b.ev_ts_us)
    (Ring.snapshot ring)

let length () = Ring.length ring
let recorded () = Ring.total ring

(** Events lost to ring wrap-around (oldest-first eviction). *)
let dropped () = Ring.overwritten ring

let anomalies () = Atomic.get anomalies_count

(* -- Rendering ------------------------------------------------------- *)

let event_json e =
  let attrs =
    if e.ev_attrs = [] then ""
    else Printf.sprintf ",\"attrs\":{%s}" (Chrome.args_json e.ev_attrs)
  in
  Printf.sprintf "{\"ts_us\":%s,\"dom\":%d,\"pid\":%d,\"kind\":\"%s\",\"name\":\"%s\"%s}"
    (Jsonf.number e.ev_ts_us) e.ev_dom e.ev_pid (Jsonf.escape e.ev_kind)
    (Jsonf.escape e.ev_name) attrs

(** Full dump: header, embedded metrics snapshot, then one event object per
    line (oldest first).  [note] records why the dump was taken. *)
let render ?(note = "on-demand") events =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "{\n";
  bpf "  \"version\": 1,\n";
  bpf "  %s,\n" (Jsonf.str_field "note" note);
  bpf "  %s,\n" (Jsonf.int_field "anomalies" (anomalies ()));
  bpf "  %s,\n" (Jsonf.int_field "events_recorded" (recorded ()));
  bpf "  %s,\n" (Jsonf.int_field "events_dropped" (dropped ()));
  (* embedded metrics snapshot: its lines never collide with the event-line
     prefix the parser keys on *)
  let metrics = String.trim (Metrics.render_json (Metrics.snapshot ())) in
  bpf "  \"metrics\": %s,\n" metrics;
  bpf "  \"events\": [";
  List.iteri
    (fun i e ->
       if i > 0 then Buffer.add_char b ',';
       bpf "\n    %s" (event_json e))
    events;
  bpf "\n  ]\n}\n";
  Buffer.contents b

let render_json ?note () = render ?note (events ())

(* -- Anomaly auto-dump ----------------------------------------------- *)

let dump_lock = Mutex.create ()
let armed_path = Atomic.make None

let write ?note path =
  let s = render_json ?note () in
  Mutex.lock dump_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock dump_lock)
    (fun () -> Io.write_string path s)

(** Arm automatic dumping: every subsequent {!anomaly} rewrites [path] with
    the current ring contents.  Anomaly-free runs never touch the file. *)
let arm_auto_dump path = Atomic.set armed_path (Some path)
let disarm () = Atomic.set armed_path None
let armed () = Atomic.get armed_path

(** Record an anomaly event and, if a dump path is armed, write the flight
    dump immediately (anomalies are rare; losing the ring to a crash right
    after one would defeat the recorder). *)
let anomaly ?ts_us ?attrs ~kind ~name () =
  Atomic.incr anomalies_count;
  record ?ts_us ?attrs ~kind:("anomaly." ^ kind) ~name ();
  match Atomic.get armed_path with
  | None -> ()
  | Some path ->
    (try write ~note:("anomaly." ^ kind) path with Sys_error _ -> ())

(** Route uncaught exceptions through the recorder: the crash is recorded
    as an anomaly (triggering an armed dump) before the default fatal-error
    report is printed. *)
let install_crash_handler () =
  Printexc.set_uncaught_exception_handler (fun exn bt ->
      (try
         anomaly
           ~attrs:[ ("exn", Span.Str (Printexc.to_string exn)) ]
           ~kind:"crash" ~name:"uncaught-exception" ()
       with _ -> ());
      Printexc.default_uncaught_exception_handler exn bt)

(* -- Validation and round-trip --------------------------------------- *)

(** Check a dump's event-stream invariants: timestamps finite, non-negative
    and non-decreasing; kind and name non-empty. *)
let validate events =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
      if not (Float.is_finite e.ev_ts_us) || e.ev_ts_us < 0.0 then
        err "event %S: non-finite or negative ts %f" e.ev_name e.ev_ts_us
      else if e.ev_ts_us < last then
        err "event %S: ts %.1f before predecessor %.1f" e.ev_name e.ev_ts_us
          last
      else if e.ev_kind = "" then err "event %S: empty kind" e.ev_name
      else if e.ev_name = "" then err "event at %.1f: empty name" e.ev_ts_us
      else go e.ev_ts_us rest
  in
  go neg_infinity events

(** Parse a dump produced by {!render} back into its event list (header
    and embedded metrics are skipped; [attrs] are dropped).  Keys on the
    fixed [{"ts_us":] line prefix of the renderer's own output. *)
let parse s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      let line =
        if String.length line > 0 && line.[String.length line - 1] = ','
        then String.sub line 0 (String.length line - 1)
        else line
      in
      if String.length line < 9 || String.sub line 0 9 <> "{\"ts_us\":" then
        go acc rest
      else begin
        match
          ( Jsonf.field_float line "ts_us", Jsonf.field_int line "dom",
            Jsonf.field_int line "pid", Jsonf.field_str line "kind",
            Jsonf.field_str line "name" )
        with
        | Some ts, Some dom, Some pid, Some kind, Some name ->
          go
            ({ ev_ts_us = ts; ev_dom = dom; ev_pid = pid; ev_kind = kind;
               ev_name = name; ev_attrs = [] }
             :: acc)
            rest
        | _ -> Error (Printf.sprintf "unparseable flight event line: %s" line)
      end
  in
  go [] lines

let strip_attrs e = { e with ev_attrs = [] }

(* The renderer prints ts with one decimal; compare at that precision. *)
let coarse_ts e = { e with ev_ts_us = Float.round (e.ev_ts_us *. 10.) /. 10. }

(** Render, re-parse, and compare (ignoring attrs, at the renderer's
    timestamp precision). *)
let round_trips events =
  match parse (render events) with
  | Error _ -> false
  | Ok parsed ->
    List.map (fun e -> coarse_ts (strip_attrs e)) events
    = List.map coarse_ts parsed

(** Forget everything: ring contents, anomaly count, armed path (tests). *)
let reset () =
  Ring.clear ring;
  Atomic.set anomalies_count 0;
  disarm ()
