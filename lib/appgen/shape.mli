(** Code shapes a planted sink flow can take.  Each shape stresses one of the
    bytecode-search mechanisms of Sec. IV, or one documented weakness of the
    whole-app baseline (Sec. VI-C). *)

type t =
    Direct
  | Static_chain
  | Child_class
  | Super_class
  | Interface_dispatch
  | Callback
  | Async_thread
  | Async_executor
  | Async_task
  | Static_init
  | Clinit_field
  | Icc_explicit
  | Icc_implicit
  | Lifecycle_field
  | Dead_code
  | Unregistered_component
  | Skipped_lib
  | Subclassed_sink
  | Recursive_chain
  | Shared_util
  | Reflective_sink
  | Builder_spec
  | Webview_misuse
  | Sql_injection
  | Intent_redirect

val all : t list
val to_string : t -> string

(** Is a flow of this shape actually reachable from a registered entry
    point?  (Ground truth for detection scoring.) *)
val reachable : t -> bool
