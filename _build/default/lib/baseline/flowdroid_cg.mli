(** The FlowDroid baseline of Sec. II-C: whole-app call-graph generation
    *only* (no taint analysis), with geomPTA-style context-sensitive
    refinement.  The base call graph is built per (method, calling-context)
    pair; the refinement passes then revisit every virtual call site × CHA
    target × calling context of the enclosing method, which is exactly where
    a context-sensitive points-to-based call graph blows up on large,
    dispatch-heavy apps (the 24% Fig. 1 timeouts). *)

exception Timeout
type config = {
  context_depth : int;
  refinement_rounds : int;
  deadline : float option;
}
val default_config : config
type result = { methods : int; contexts : int; edges : int; refined : int; }
val check_deadline : config -> unit

(** Build the context-refined call graph.  Raises {!Timeout} past the
    deadline (the 24% of modern apps in Fig. 1). *)
val build : ?cfg:config -> Ir.Program.t -> Manifest.App_manifest.t -> result
