lib/baseline/cryptoguard.ml: Array Backdroid Expr Framework Hashtbl Int64 Ir Jclass Jmethod Jsig List Option Program Stmt Value
