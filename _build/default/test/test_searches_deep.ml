(* Deeper unit tests for the individual search mechanisms of Sec. IV, on
   hand-built programs (no generator): child-class signature expansion,
   advanced-search endings, ICC merge precision, lifecycle predecessors and
   per-app SSG merge properties. *)

open Ir
module B = Builder
module Api = Framework.Api

let plain_ctor ~cls ~super =
  B.constructor ~cls (fun mb ->
      B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
        ~callee:(Jsig.meth ~cls:super ~name:"<init>" ~params:[] ~ret:Types.Void)
        ~args:[] ())

let void_m ?(access = Jmethod.default_access) cls name gen =
  B.method_ ~access ~cls ~name ~params:[] ~ret:Types.Void gen

let engine_of classes =
  let p = Program.of_classes (Framework.Stubs.classes () @ classes) in
  Bytesearch.Engine.create (Dex.Dexfile.of_program p), p

(* --- Sec. IV-A: child-class signature expansion --- *)

let child_fixture ~overload =
  let base =
    Jclass.make "cc.Base"
      ~methods:
        [ plain_ctor ~cls:"cc.Base" ~super:"java.lang.Object";
          void_m "cc.Base" "go" (fun _ -> ()) ]
  in
  let child_methods =
    plain_ctor ~cls:"cc.Child" ~super:"cc.Base"
    :: (if overload then [ void_m "cc.Child" "go" (fun _ -> ()) ] else [])
  in
  let child = Jclass.make ~super:(Some "cc.Base") "cc.Child" ~methods:child_methods in
  (* a caller that invokes go() through the child signature *)
  let caller =
    Jclass.make "cc.Caller"
      ~methods:
        [ void_m ~access:B.static_access "cc.Caller" "use" (fun mb ->
              let c = B.new_obj mb "cc.Child" ~ctor_params:[] ~args:[] in
              B.call_virtual mb ~base:c
                ~callee:(Jsig.meth ~cls:"cc.Child" ~name:"go" ~params:[] ~ret:Types.Void)
                ~args:[]) ]
  in
  engine_of [ base; child; caller ]

let test_child_search_classes () =
  let _, p = child_fixture ~overload:false in
  let go = Jsig.meth ~cls:"cc.Base" ~name:"go" ~params:[] ~ret:Types.Void in
  Alcotest.(check (list string)) "non-overloaded child expands the search"
    [ "cc.Base"; "cc.Child" ]
    (Backdroid.Basic_search.search_classes p go);
  let _, p' = child_fixture ~overload:true in
  Alcotest.(check (list string)) "overloaded child searches the original only"
    [ "cc.Base" ]
    (Backdroid.Basic_search.search_classes p' go)

let test_child_search_finds_caller () =
  let engine, _ = child_fixture ~overload:false in
  let go = Jsig.meth ~cls:"cc.Base" ~name:"go" ~params:[] ~ret:Types.Void in
  match Backdroid.Basic_search.callers engine go with
  | [ cs ] ->
    Alcotest.(check string) "caller found through the child signature"
      "cc.Caller" cs.Backdroid.Basic_search.caller.Jsig.cls
  | l -> Alcotest.fail (Printf.sprintf "expected 1 call site, got %d" (List.length l))

(* --- Sec. IV-B: advanced-search endings on a hand-built program --- *)

let test_advanced_super_ending () =
  let sup =
    Jclass.make ~is_abstract:true "av.Sup"
      ~methods:
        [ plain_ctor ~cls:"av.Sup" ~super:"java.lang.Object";
          B.abstract_method ~cls:"av.Sup" ~name:"work" ~params:[] ~ret:Types.Void ]
  in
  let impl =
    Jclass.make ~super:(Some "av.Sup") "av.Impl"
      ~methods:
        [ plain_ctor ~cls:"av.Impl" ~super:"av.Sup";
          void_m "av.Impl" "work" (fun _ -> ()) ]
  in
  let caller =
    Jclass.make "av.Caller"
      ~methods:
        [ void_m ~access:B.static_access "av.Caller" "use" (fun mb ->
              let o = B.new_obj mb "av.Impl" ~ctor_params:[] ~args:[] in
              let up = B.assign mb (Types.Object "av.Sup") (Expr.Imm (Value.Local o)) in
              B.call_virtual mb ~base:up
                ~callee:(Jsig.meth ~cls:"av.Sup" ~name:"work" ~params:[] ~ret:Types.Void)
                ~args:[]) ]
  in
  let engine, _ = engine_of [ sup; impl; caller ] in
  let loops = Backdroid.Loopdetect.create () in
  let work = Jsig.meth ~cls:"av.Impl" ~name:"work" ~params:[] ~ret:Types.Void in
  match Backdroid.Object_taint.advanced_callers engine loops work with
  | [ ac ] ->
    Alcotest.(check string) "chain head" "av.Caller"
      ac.Backdroid.Object_taint.caller.Jsig.cls;
    Alcotest.(check string) "app-level ending via the super signature" "av.Sup"
      ac.Backdroid.Object_taint.ending.Jsig.cls;
    Alcotest.(check bool) "ending invoke kept for arg mapping" true
      (Option.is_some ac.Backdroid.Object_taint.ending_invoke)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 advanced caller, got %d" (List.length l))

let test_advanced_framework_ending () =
  let job =
    Jclass.make ~interfaces:[ "java.lang.Runnable" ] "av.Job"
      ~methods:
        [ plain_ctor ~cls:"av.Job" ~super:"java.lang.Object";
          void_m "av.Job" "run" (fun _ -> ()) ]
  in
  let caller =
    Jclass.make "av.Starter"
      ~methods:
        [ void_m ~access:B.static_access "av.Starter" "go" (fun mb ->
              let j = B.new_obj mb "av.Job" ~ctor_params:[] ~args:[] in
              let t =
                B.new_obj mb "java.lang.Thread" ~ctor_params:[ Api.runnable_t ]
                  ~args:[ Value.Local j ]
              in
              B.call_virtual mb ~base:t ~callee:Api.thread_start ~args:[]) ]
  in
  let engine, _ = engine_of [ job; caller ] in
  let loops = Backdroid.Loopdetect.create () in
  let run = Jsig.meth ~cls:"av.Job" ~name:"run" ~params:[] ~ret:Types.Void in
  match Backdroid.Object_taint.advanced_callers engine loops run with
  | [ ac ] ->
    Alcotest.(check string) "framework ending at Thread ctor"
      "java.lang.Thread" ac.Backdroid.Object_taint.ending.Jsig.cls;
    Alcotest.(check bool) "no arg mapping at framework endings" true
      (Option.is_none ac.Backdroid.Object_taint.ending_invoke)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 advanced caller, got %d" (List.length l))

(* --- Sec. IV-D: the two-time ICC merge --- *)

let test_icc_merge_requires_both () =
  (* one method does startService with the const-class; another does
     startService with no parameter hit — only the first merges *)
  let svc_cls = "ic.Svc" in
  let good =
    Jclass.make "ic.Good"
      ~methods:
        [ void_m "ic.Good" "go" (fun mb ->
              let cls_c = B.const_class mb svc_cls in
              let i =
                B.new_obj mb "android.content.Intent"
                  ~ctor_params:[ Api.context_t; Types.Object "java.lang.Class" ]
                  ~args:[ Value.Local (B.this mb); Value.Local cls_c ]
              in
              B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
                ~callee:Api.context_start_service ~args:[ Value.Local i ] ()) ]
  in
  let unrelated =
    Jclass.make "ic.Unrelated"
      ~methods:
        [ void_m "ic.Unrelated" "go" (fun mb ->
              let i =
                B.new_obj mb "android.content.Intent" ~ctor_params:[] ~args:[]
              in
              B.invoke mb ~base:(B.this mb) ~kind:Expr.Virtual
                ~callee:Api.context_start_service ~args:[ Value.Local i ] ()) ]
  in
  let svc =
    Jclass.make ~super:(Some "android.app.Service") svc_cls
      ~methods:[ plain_ctor ~cls:svc_cls ~super:"android.app.Service" ]
  in
  let engine, _ = engine_of [ good; unrelated; svc ] in
  let component = Manifest.Component.make ~kind:Manifest.Component.Service svc_cls in
  match Backdroid.Icc_search.callers engine ~component with
  | [ site ] ->
    Alcotest.(check string) "only the matching method merges" "ic.Good"
      site.Backdroid.Icc_search.caller.Jsig.cls
  | l -> Alcotest.fail (Printf.sprintf "expected 1 icc site, got %d" (List.length l))

(* --- Sec. IV-E: transitive lifecycle predecessors --- *)

let test_lifecycle_transitive_predecessors () =
  (* the class defines onCreate and onResume but not onStart: the
     predecessor search must hop over the missing handler *)
  let cls = "lc.Act" in
  let act =
    Jclass.make ~super:(Some "android.app.Activity") cls
      ~methods:
        [ plain_ctor ~cls ~super:"android.app.Activity";
          B.method_ ~cls ~name:"onCreate" ~params:[ Api.bundle_t ]
            ~ret:Types.Void (fun _ -> ());
          void_m cls "onResume" (fun _ -> ()) ]
  in
  let p = Program.of_classes (Framework.Stubs.classes () @ [ act ]) in
  let preds =
    Backdroid.Lifecycle_search.predecessor_handlers p
      (Jsig.meth ~cls ~name:"onResume" ~params:[] ~ret:Types.Void)
  in
  Alcotest.(check (list string)) "onCreate found through the missing onStart"
    [ "onCreate" ]
    (List.map (fun (m : Jsig.meth) -> m.name) preds)

(* --- per-app SSG merge properties --- *)

let merge_idempotent =
  QCheck.Test.make ~name:"per-app SSG merge is idempotent" ~count:20
    QCheck.(make Gen.(int_bound 1000))
    (fun seed ->
       let app =
         Appgen.Generator.generate
           { Appgen.Generator.default_config with
             Appgen.Generator.seed;
             name = "com.merge.prop";
             filler_classes = 2;
             plants =
               [ { Appgen.Generator.shape = Appgen.Shape.Direct;
                   sink = Framework.Sinks.cipher; insecure = true } ] }
       in
       let r =
         Backdroid.Driver.analyze ~dex:app.Appgen.Generator.dex
           ~manifest:app.Appgen.Generator.manifest ()
       in
       let ssgs =
         List.filter_map
           (fun (rep : Backdroid.Driver.sink_report) -> rep.ssg)
           r.Backdroid.Driver.reports
       in
       let once = Backdroid.Perapp_ssg.merge ssgs in
       let twice = Backdroid.Perapp_ssg.merge (ssgs @ ssgs) in
       Backdroid.Perapp_ssg.node_count once = Backdroid.Perapp_ssg.node_count twice
       && Backdroid.Perapp_ssg.edge_count once
          = Backdroid.Perapp_ssg.edge_count twice)

let cases =
  [ Alcotest.test_case "child-class search expansion" `Quick test_child_search_classes;
    Alcotest.test_case "child-class caller recovery" `Quick test_child_search_finds_caller;
    Alcotest.test_case "advanced super-class ending" `Quick test_advanced_super_ending;
    Alcotest.test_case "advanced framework ending" `Quick test_advanced_framework_ending;
    Alcotest.test_case "icc merge requires both hits" `Quick test_icc_merge_requires_both;
    Alcotest.test_case "lifecycle transitive predecessors" `Quick
      test_lifecycle_transitive_predecessors ]

let prop_cases = [ QCheck_alcotest.to_alcotest merge_idempotent ]

let suites = [ "searches.deep", cases; "searches.props", prop_cases ]
