(** Rule-file loading: s-expression text → validated {!Rule.t} list, with a
    typed error channel.

    Errors are positioned ([Syntax] from the reader, [Invalid] from
    validation, carrying the rule name and field when known) so the CLI can
    print actionable diagnostics instead of an exception trace. *)

type error =
  | Syntax of Sexp.error
  | Invalid of {
      pos : Sexp.pos;
      rule : string option;   (** rule being parsed, once its name is known *)
      field : string;         (** offending field or form *)
      msg : string;
    }

let error_to_string = function
  | Syntax e -> "rule syntax error: " ^ Sexp.error_to_string e
  | Invalid { pos; rule; field; msg } ->
    Printf.sprintf "invalid rule%s: line %d, column %d: %s: %s"
      (match rule with Some r -> " '" ^ r ^ "'" | None -> "")
      pos.Sexp.line pos.Sexp.col field msg

exception Fail of error

let invalid ?rule ~pos ~field msg = raise (Fail (Invalid { pos; rule; field; msg }))

(* ------------------------------------------------------------------ *)
(* Form helpers *)

let atom ?rule ~field = function
  | Sexp.Atom (_, s) -> s
  | Sexp.List (pos, _) ->
    invalid ?rule ~pos ~field "expected an atom, got a list"

let int_atom ?rule ~field form =
  let s = atom ?rule ~field form in
  match int_of_string_opt s with
  | Some n -> n
  | None ->
    invalid ?rule ~pos:(Sexp.pos_of form) ~field
      (Printf.sprintf "expected an integer, got %S" s)

(* A keyed sub-form [(key item...)]; returns the key and its items. *)
let keyed ?rule ~field = function
  | Sexp.List (pos, Sexp.Atom (_, key) :: items) -> pos, key, items
  | Sexp.List (pos, _) ->
    invalid ?rule ~pos ~field "expected a (keyword ...) form"
  | Sexp.Atom (pos, a) ->
    invalid ?rule ~pos ~field
      (Printf.sprintf "expected a (keyword ...) form, got atom %S" a)

(* ------------------------------------------------------------------ *)
(* Predicates *)

let rec parse_pred ?rule form : Rule.pred =
  match form with
  | Sexp.Atom (_, "true") -> Rule.True
  | Sexp.Atom (_, "false") -> Rule.False
  | Sexp.Atom (pos, a) ->
    invalid ?rule ~pos ~field:"predicate"
      (Printf.sprintf "unknown predicate atom %S (expected true/false)" a)
  | Sexp.List _ ->
    let pos, key, items = keyed ?rule ~field:"predicate" form in
    let one ~field () =
      match items with
      | [ x ] -> x
      | _ ->
        invalid ?rule ~pos ~field
          (Printf.sprintf "expected exactly one argument, got %d"
             (List.length items))
    in
    (match key with
     | "fact-is" ->
       let s = atom ?rule ~field:"fact-is" (one ~field:"fact-is" ()) in
       (match Rule.shape_of_string s with
        | Some sh -> Rule.Fact_is sh
        | None ->
          invalid ?rule ~pos ~field:"fact-is"
            (Printf.sprintf "unknown fact shape %S" s))
     | "str-contains" ->
       Rule.Str_contains
         (atom ?rule ~field:"str-contains" (one ~field:"str-contains" ()))
     | "str-eq" -> Rule.Str_eq (atom ?rule ~field:"str-eq" (one ~field:"str-eq" ()))
     | "int-eq" -> Rule.Int_eq (int_atom ?rule ~field:"int-eq" (one ~field:"int-eq" ()))
     | "field-is" ->
       (match items with
        | [ c; n ] ->
          Rule.Field_is
            { cls = atom ?rule ~field:"field-is" c;
              name = atom ?rule ~field:"field-is" n }
        | _ ->
          invalid ?rule ~pos ~field:"field-is" "expected (field-is CLASS NAME)")
     | "class-in" ->
       if items = [] then
         invalid ?rule ~pos ~field:"class-in" "expected at least one class";
       Rule.Class_in (List.map (atom ?rule ~field:"class-in") items)
     | "verifier-returns" ->
       (match items with
        | [ n; v ] ->
          Rule.Verifier_returns
            { name = atom ?rule ~field:"verifier-returns" n;
              value = int_atom ?rule ~field:"verifier-returns" v }
        | _ ->
          invalid ?rule ~pos ~field:"verifier-returns"
            "expected (verifier-returns METHOD INT)")
     | "verifier-resolves" ->
       Rule.Verifier_resolves
         { name =
             atom ?rule ~field:"verifier-resolves"
               (one ~field:"verifier-resolves" ()) }
     | "all" -> Rule.All (List.map (parse_pred ?rule) items)
     | "any" -> Rule.Any (List.map (parse_pred ?rule) items)
     | "not" -> Rule.Not (parse_pred ?rule (one ~field:"not" ()))
     | k ->
       invalid ?rule ~pos ~field:"predicate"
         (Printf.sprintf "unknown predicate %S" k))

(* ------------------------------------------------------------------ *)
(* Sinks *)

let parse_sink ~rule pos items : Framework.Sinks.t =
  let cls = ref None and meth = ref None and params = ref None in
  let ret = ref None and arg = ref None and label = ref None in
  let set ~field slot v fpos =
    match !slot with
    | Some _ -> invalid ~rule ~pos:fpos ~field "duplicate field"
    | None -> slot := Some v
  in
  List.iter
    (fun item ->
       let fpos, key, sub = keyed ~rule ~field:"sink" item in
       let one ~field () =
         match sub with
         | [ x ] -> x
         | _ ->
           invalid ~rule ~pos:fpos ~field
             (Printf.sprintf "expected exactly one value, got %d"
                (List.length sub))
       in
       match key with
       | "class" -> set ~field:"class" cls (atom ~rule ~field:"class" (one ~field:"class" ())) fpos
       | "method" -> set ~field:"method" meth (atom ~rule ~field:"method" (one ~field:"method" ())) fpos
       | "params" ->
         set ~field:"params" params
           (List.map
              (fun f -> Ir.Types.of_string (atom ~rule ~field:"params" f))
              sub)
           fpos
       | "return" ->
         set ~field:"return" ret
           (Ir.Types.of_string (atom ~rule ~field:"return" (one ~field:"return" ())))
           fpos
       | "arg" -> set ~field:"arg" arg (int_atom ~rule ~field:"arg" (one ~field:"arg" ())) fpos
       | "label" -> set ~field:"label" label (atom ~rule ~field:"label" (one ~field:"label" ())) fpos
       | k ->
         invalid ~rule ~pos:fpos ~field:"sink"
           (Printf.sprintf "unknown sink field %S" k))
    items;
  let require ~field = function
    | Some v -> v
    | None -> invalid ~rule ~pos ~field "missing required field"
  in
  let cls = require ~field:"class" !cls in
  let meth = require ~field:"method" !meth in
  let params = Option.value ~default:[] !params in
  let ret = Option.value ~default:Ir.Types.Void !ret in
  let arg = require ~field:"arg" !arg in
  if arg < 0 || arg >= List.length params then
    invalid ~rule ~pos ~field:"arg"
      (Printf.sprintf
         "argument-of-interest %d out of range for %d parameter(s)" arg
         (List.length params));
  { Framework.Sinks.name = Option.value ~default:rule !label;
    msig = Ir.Jsig.meth ~cls ~name:meth ~params ~ret;
    param_index = arg }

(* ------------------------------------------------------------------ *)
(* Rules *)

let parse_rule form : Rule.t =
  let pos, key, items = keyed ~field:"top-level form" form in
  if key <> "rule" then
    invalid ~pos ~field:"top-level form"
      (Printf.sprintf "expected (rule ...), got (%s ...)" key);
  (* the name field first, so later diagnostics can carry it *)
  let name =
    List.find_map
      (function
        | Sexp.List (_, [ Sexp.Atom (_, "name"); Sexp.Atom (_, n) ]) -> Some n
        | _ -> None)
      items
  in
  let name =
    match name with
    | Some n when n <> "" -> n
    | Some _ | None ->
      invalid ~pos ~field:"name" "every rule needs a non-empty (name ...)"
  in
  let rule = name in
  let description = ref None and insecure = ref None and secure = ref None in
  let sinks = ref [] in
  let set ~field slot v fpos =
    match !slot with
    | Some _ -> invalid ~rule ~pos:fpos ~field "duplicate field"
    | None -> slot := Some v
  in
  List.iter
    (fun item ->
       let fpos, key, sub = keyed ~rule ~field:"rule" item in
       let one ~field () =
         match sub with
         | [ x ] -> x
         | _ ->
           invalid ~rule ~pos:fpos ~field
             (Printf.sprintf "expected exactly one value, got %d"
                (List.length sub))
       in
       match key with
       | "name" -> ()  (* already consumed *)
       | "description" ->
         set ~field:"description" description
           (atom ~rule ~field:"description" (one ~field:"description" ()))
           fpos
       | "sink" -> sinks := parse_sink ~rule fpos sub :: !sinks
       | "insecure-when" ->
         set ~field:"insecure-when" insecure
           (parse_pred ~rule (one ~field:"insecure-when" ())) fpos
       | "secure-when" ->
         set ~field:"secure-when" secure
           (parse_pred ~rule (one ~field:"secure-when" ())) fpos
       | k ->
         invalid ~rule ~pos:fpos ~field:"rule"
           (Printf.sprintf "unknown rule field %S" k))
    items;
  if !sinks = [] then
    invalid ~rule ~pos ~field:"sink" "every rule needs at least one (sink ...)";
  { Rule.name;
    description = Option.value ~default:"" !description;
    sinks = List.rev !sinks;
    insecure_when = Option.value ~default:Rule.False !insecure;
    secure_when = Option.value ~default:Rule.False !secure }

(** Parse a rule-set source text. *)
let rules_of_string src : (Rule.t list, error) result =
  match Sexp.parse_string src with
  | Error e -> Error (Syntax e)
  | Ok forms ->
    (try
       let rules = List.map parse_rule forms in
       (* duplicate rule names would make per-rule reporting ambiguous *)
       let seen = Hashtbl.create 8 in
       List.iter
         (fun (r : Rule.t) ->
            if Hashtbl.mem seen r.Rule.name then
              invalid ~rule:r.Rule.name
                ~pos:{ Sexp.line = 1; col = 1 } ~field:"name"
                "duplicate rule name";
            Hashtbl.add seen r.Rule.name ())
         rules;
       Ok rules
     with Fail e -> Error e)

(** Load and validate a rule file. *)
let load path : (Rule.t list, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
    Error
      (Invalid
         { pos = { Sexp.line = 0; col = 0 }; rule = None; field = "file";
           msg })
  | src -> rules_of_string src
