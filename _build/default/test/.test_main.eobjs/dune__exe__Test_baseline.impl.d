test/test_baseline.ml: Alcotest Appgen Backdroid Baseline Framework List Printf Unix
