(** Special search over Android lifecycle handlers (Sec. IV-E).

    When backtracking reaches a lifecycle handler: if the dataflow is already
    complete, the handler is an entry method and no further search is needed.
    Otherwise the domain-knowledge table of {!module:Manifest.Lifecycle}
    gives the handlers that run earlier in the same component, which are
    slicing continuations for residual field taints. *)

open Ir

(** Is [m] a lifecycle handler, i.e. does it override one of the four
    component kinds' handler sub-signatures while its class descends from a
    framework component class? *)
let is_lifecycle_handler program (m : Jsig.meth) =
  Manifest.Lifecycle.is_lifecycle_subsig (Jsig.sub_signature m)
  && List.exists
       (fun kind ->
          Program.is_subclass_of program ~sub:m.cls
            ~super:(Manifest.Component.framework_class kind))
       [ Manifest.Component.Activity; Service; Receiver; Provider ]

(** Is [m] an entry point: a lifecycle handler of a component registered in
    the manifest?  Handlers of classes absent from the manifest are
    deactivated code (the Amandroid false-positive class of Sec. VI-C). *)
let is_entry program manifest (m : Jsig.meth) =
  is_lifecycle_handler program m
  && Manifest.App_manifest.is_entry_class manifest m.cls

(** Earlier handlers of the same component class that can seed residual
    state: the transitive predecessor closure, filtered to the handlers the
    class actually defines. *)
let predecessor_handlers program (m : Jsig.meth) =
  let cls = m.cls in
  let defined subsig =
    match Program.find_class program cls with
    | Some c -> Jclass.find_method_by_subsig c subsig
    | None -> None
  in
  let origin = Jsig.sub_signature m in
  let seen = Hashtbl.create 8 in
  let added = Hashtbl.create 8 in
  let rec go subsigs acc =
    match subsigs with
    | [] -> List.rev acc
    | s :: rest ->
      if Hashtbl.mem seen s then go rest acc
      else begin
        Hashtbl.replace seen s ();
        let preds = Manifest.Lifecycle.predecessors s in
        let acc =
          List.fold_left
            (fun acc p ->
               (* the lifecycle state machine is cyclic (resume -> pause ->
                  stop -> restart -> start); never hand back the handler we
                  started from, nor a duplicate *)
               if String.equal p origin || Hashtbl.mem added p then acc
               else
                 match defined p with
                 | Some meth ->
                   Hashtbl.replace added p ();
                   meth.Jmethod.msig :: acc
                 | None -> acc)
            acc preds
        in
        go (rest @ preds) acc
      end
  in
  go [ origin ] []
