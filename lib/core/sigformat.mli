(** Signature translation between the program-analysis space (Soot-style IR
    signatures) and the bytecode-search space (dexdump format) — steps 1 and
    3 of the basic search walk-through in Fig. 3. *)

(** Step 1: IR method signature → dexdump search signature. *)
val to_dex_meth : Ir.Jsig.meth -> string

(** Step 3: dexdump signature (as found by the search) → IR signature, ready
    for method-body lookup in the program space. *)
val of_dex_meth : string -> Ir.Jsig.meth
val to_dex_field : Ir.Jsig.field -> string
val of_dex_field : string -> Ir.Jsig.field
val to_dex_class : string -> string
val of_dex_class : string -> string

(** Search signature for the same method relocated onto another class (used
    for child-class searches). *)
val to_dex_meth_on_class : Ir.Jsig.meth -> string -> string

(** Interned variants of the step-1 translations: each signature is rendered
    and hash-consed once per process, so query construction is
    allocation-free and produces the same [Sym.t] the disassembler attached
    to matching lines. *)
val to_dex_meth_sym : Ir.Jsig.meth -> Sym.t
val to_dex_field_sym : Ir.Jsig.field -> Sym.t
val to_dex_class_sym : string -> Sym.t
val to_dex_meth_on_class_sym : Ir.Jsig.meth -> string -> Sym.t
