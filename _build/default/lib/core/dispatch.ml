(** Search dispatch: given a callee method whose callers must be located,
    decide which of the search mechanisms of Sec. IV applies. *)

open Ir

type strategy =
  | Basic            (** signature search (incl. child-class expansion) *)
  | Advanced         (** constructor search + forward object taint *)
  | Clinit           (** recursive class-use search *)
  | Lifecycle        (** lifecycle handler: entry check / predecessor search *)

let to_string = function
  | Basic -> "basic"
  | Advanced -> "advanced"
  | Clinit -> "clinit"
  | Lifecycle -> "lifecycle"

(** Classify [callee].  Order matters: [<clinit>] before everything (it is a
    static method but unsearchable); lifecycle handlers before the
    super/interface test (they override framework declarations yet need the
    domain-knowledge search, not object taint). *)
let classify program (callee : Jsig.meth) =
  if Jsig.is_clinit callee then Clinit
  else if Lifecycle_search.is_lifecycle_handler program callee then Lifecycle
  else
    match Program.find_method program callee with
    | Some m when Jmethod.is_signature_method m -> Basic
    | Some _ | None ->
      if Program.overrides_foreign_declaration program callee then Advanced
      else Basic
