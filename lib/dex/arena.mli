(** Compact struct-of-arrays hit arena over a disassembled dex plaintext.

    One slot per instruction line (a line with an enclosing method); slots
    are in line order.  Per-category search postings index into this arena
    with plain ints, and hit records are materialised from a slot only when
    a query returns it — the arena replaces the per-line boxed hit records
    the old eager index allocated up front.

    The int columns are {!Ivec.t}s: the payload lives off the OCaml heap,
    invisible to the GC, and a snapshot load can alias them to mmapped file
    sections instead of rebuilding them. *)

(** Category codes stored in {!t.cat}. *)
val cat_invoke : int
val cat_new_instance : int
val cat_const_class : int
val cat_const_string : int
val cat_field : int
val cat_static_field : int

(** Marks a slot whose line has no searchable operand. *)
val cat_none : int

type t = {
  line_idx : Ivec.t;  (** slot -> index into the dexfile line array *)
  stmt_idx : Ivec.t;  (** slot -> IR statement index; [-1] = none *)
  owner_id : Ivec.t;  (** slot -> index into [owners] / [owner_cls] *)
  cat : Ivec.t;       (** slot -> category code; {!cat_none} = unkeyed *)
  sym : Ivec.t;       (** slot -> [Sym.id] of the operand; [-1] = unkeyed *)
  owners : Ir.Jsig.meth array;  (** unique enclosing methods *)
  owner_cls : string array;     (** enclosing class, parallel to [owners] *)
}

(** Number of slots. *)
val length : t -> int

(** Category code and operand [Sym.id] of a disassembler key. *)
val key_code : Disasm.key -> int * int

(** Build the arena in one pass over the disassembled lines. *)
val of_lines : Disasm.line array -> t
