(** Machine-readable exports of the experiment measurements: one CSV row per
    (app, tool) measurement, so the tables and figures can be re-plotted
    outside the harness.

    Besides the aggregate [insecure] count, every row carries one
    [insecure_<family>] column per built-in rule family (fixed
    {!Rules.Builtin.family_names} order), so per-rule detection can be
    plotted without re-running the corpus, plus trailing provenance
    columns: [incremental] — whether the engine was delta-patched from an
    older snapshot rather than built from scratch — and the derivation
    aggregates [resolutions]/[resolved_callers]/[work_spent] summed over
    the run's per-sink ledgers.  Rows written before a trailing column
    existed still parse (with the column at its zero value). *)

let base_header =
  [ "app"; "tool"; "seconds"; "timed_out"; "errored"; "sink_calls";
    "size_stmts"; "size_mb"; "insecure"; "search_cache_rate";
    "sink_cache_rate"; "loops"; "cross_backward_loops"; "partial_sinks";
    "parallelism" ]

let csv_header =
  String.concat ","
    (base_header
     @ List.map (fun f -> "insecure_" ^ f) Rules.Builtin.family_names
     @ [ "incremental"; "resolutions"; "resolved_callers"; "work_spent" ])

let csv_row (m : Runner.measurement) =
  Printf.sprintf "%s,%s,%.6f,%b,%b,%d,%d,%.2f,%d,%.4f,%.4f,%d,%d,%d,%d%s"
    m.app
    (Runner.tool_name m.tool)
    m.seconds m.timed_out m.errored m.sink_calls m.size_stmts m.size_mb
    m.insecure m.search_cache_rate m.sink_cache_rate m.loops
    m.cross_backward_loops m.partial_sinks m.parallelism
    (String.concat ""
       (List.map
          (fun f ->
             Printf.sprintf ",%d"
               (Option.value ~default:0 (List.assoc_opt f m.insecure_by_rule)))
          Rules.Builtin.family_names)
     ^ Printf.sprintf ",%b,%d,%d,%d" m.incremental m.resolutions
         m.resolved_callers m.work_spent)

(** Write all measurements of a corpus run to [path]. *)
let write_csv path (ms : Runner.measurement list) =
  let oc = open_out path in
  output_string oc csv_header;
  output_char oc '\n';
  List.iter
    (fun m ->
       output_string oc (csv_row m);
       output_char oc '\n')
    ms;
  close_out oc

(** Parse one row back (used by the round-trip test).  Rows from before the
    per-rule columns existed still parse, with an empty per-rule tally, and
    rows from before any of the trailing columns ([incremental], the
    provenance aggregates) parse with those columns at their zero value. *)
let parse_row line =
  match String.split_on_char ',' line with
  | app :: tool :: seconds :: timed_out :: errored :: sink_calls :: size_stmts
    :: size_mb :: insecure :: search_cache_rate :: sink_cache_rate :: loops
    :: cross :: partial_sinks :: parallelism :: tail ->
    let n_fam = List.length Rules.Builtin.family_names in
    let per_rule, trailing =
      if List.length tail > n_fam then
        ( List.filteri (fun i _ -> i < n_fam) tail,
          List.filteri (fun i _ -> i >= n_fam) tail )
      else (tail, [])
    in
    let incremental =
      match trailing with b :: _ -> bool_of_string b | [] -> false
    in
    let trailing_int i =
      match List.nth_opt trailing i with
      | Some v -> int_of_string v
      | None -> 0
    in
    let rec zip fs vs =
      match (fs, vs) with
      | f :: fs, v :: vs -> (f, int_of_string v) :: zip fs vs
      | _ -> []
    in
    Some
      { Runner.app;
        tool =
          (match tool with
           | "BackDroid" -> Runner.Backdroid_tool
           | "Amandroid" -> Runner.Amandroid_tool
           | _ -> Runner.Flowdroid_cg_tool);
        seconds = float_of_string seconds;
        timed_out = bool_of_string timed_out;
        errored = bool_of_string errored;
        sink_calls = int_of_string sink_calls;
        size_stmts = int_of_string size_stmts;
        size_mb = float_of_string size_mb;
        insecure = int_of_string insecure;
        insecure_by_rule =
          List.filter
            (fun (_, n) -> n > 0)
            (zip Rules.Builtin.family_names per_rule);
        search_cache_rate = float_of_string search_cache_rate;
        sink_cache_rate = float_of_string sink_cache_rate;
        loops = int_of_string loops;
        cross_backward_loops = int_of_string cross;
        partial_sinks = int_of_string partial_sinks;
        parallelism = int_of_string parallelism;
        incremental;
        resolutions = trailing_int 1;
        resolved_callers = trailing_int 2;
        work_spent = trailing_int 3 }
  | _ -> None
