(** Imperative construction DSL for classes and method bodies.  Used by the
    synthetic app generator, the examples and the test suite.

    A method builder allocates fresh SSA locals and appends statements; the
    identity statements for [this] and parameters are emitted automatically by
    {!method_}. *)

module Buffer_ext :
  sig
    type 'a t = { mutable data : 'a array; mutable len : int; }
    val create : unit -> 'a t
    val push : 'a t -> 'a -> unit
    val to_array : 'a t -> 'a array
    val length : 'a t -> int
  end
type mb = {
  mutable next_local : int;
  stmts : Stmt.t Buffer_ext.t;
  mutable this_l : Value.local option;
  mutable params_l : Value.local array;
}
val fresh_local : mb -> Types.t -> Value.local
val emit : mb -> Stmt.t -> unit

(** Position the next statement will take; usable as a branch target. *)
val here : mb -> int
val assign : mb -> Types.t -> Expr.t -> Value.local
val const_str : mb -> string -> Value.local
val const_int : mb -> int -> Value.local
val const_class : mb -> string -> Value.local
val this : mb -> Value.local
val param : mb -> int -> Value.local

(** Allocate an object and run its constructor: [new C; C.<init>(args)]. *)
val new_obj :
  mb ->
  string ->
  ctor_params:Types.t list -> args:Value.t list -> Value.local
val invoke :
  mb ->
  ?base:Value.local ->
  kind:Expr.invoke_kind ->
  callee:Jsig.meth -> args:Value.t list -> unit -> unit
val invoke_ret :
  mb ->
  ?base:Value.local ->
  kind:Expr.invoke_kind ->
  callee:Jsig.meth -> args:Value.t list -> unit -> Value.local
val call_virtual :
  mb ->
  base:Value.local -> callee:Jsig.meth -> args:Value.t list -> unit
val call_static : mb -> callee:Jsig.meth -> args:Value.t list -> unit
val call_interface :
  mb ->
  base:Value.local -> callee:Jsig.meth -> args:Value.t list -> unit
val return_void : mb -> unit
val return_val : mb -> Value.t -> unit
val iget : mb -> Value.local -> Jsig.field -> Value.local
val iput : mb -> Value.local -> Jsig.field -> Value.t -> unit
val sget : mb -> Jsig.field -> Value.local
val sput : mb -> Jsig.field -> Value.t -> unit

(** Build a method.  [gen] receives the builder after the identity statements
    have been emitted, so [this]/[param] are available; it must emit the
    trailing return itself (or use [~auto_return:true]). *)
val method_ :
  ?access:Jmethod.access ->
  ?auto_return:bool ->
  cls:string ->
  name:string ->
  params:Types.t list -> ret:Types.t -> (mb -> unit) -> Jmethod.t
val static_access : Jmethod.access
val private_access : Jmethod.access
val constructor :
  ?params:Types.t list -> cls:string -> (mb -> unit) -> Jmethod.t
val clinit : cls:string -> (mb -> unit) -> Jmethod.t

(** An abstract / interface method declaration (no body). *)
val abstract_method :
  cls:string ->
  name:string -> params:Types.t list -> ret:Types.t -> Jmethod.t
