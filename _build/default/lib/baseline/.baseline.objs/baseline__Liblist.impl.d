lib/baseline/liblist.ml: List String
