lib/appgen/templates.mli: Framework Ir Manifest Rng Shape
