lib/core/driver.mli: Bytesearch Detectors Dex Facts Forward Framework Ir Loopdetect Manifest Perapp_ssg Slicer Ssg
