(** Class-hierarchy-analysis call resolution for the whole-app baselines. *)

open Ir

(** Concrete app methods an invocation may dispatch to under CHA. *)
let targets program (iv : Expr.invoke) =
  match iv.kind with
  | Expr.Static | Expr.Special -> begin
      match Program.find_method program iv.callee with
      | Some m when m.Jmethod.body <> None -> [ iv.callee ]
      | Some _ -> []
      | None ->
        (* resolve up the hierarchy, as the VM does for super calls *)
        (match
           Program.resolve_method program iv.callee.Jsig.cls
             (Jsig.sub_signature iv.callee)
         with
         | Some (c, m) when m.Jmethod.body <> None ->
           [ { iv.callee with Jsig.cls = c.Jclass.name } ]
         | Some _ | None -> [])
    end
  | Expr.Virtual | Expr.Interface ->
    Program.dispatch_targets program iv.callee.Jsig.cls
      (Jsig.sub_signature iv.callee)
    |> List.filter_map (fun (cls, (m : Jmethod.t)) ->
        if m.Jmethod.body <> None then Some { m.Jmethod.msig with Jsig.cls = cls }
        else None)
