(* Unit tests for BackDroid's core submodules: dispatch classification,
   signature translation, loop bookkeeping, API models, fact joins and the
   detectors. *)

open Ir
module B = Builder
module Api = Framework.Api
module Sinks = Framework.Sinks
module Facts = Backdroid.Facts
module Detectors = Backdroid.Detectors

let plain_ctor ~cls ~super =
  B.constructor ~cls (fun mb ->
      B.invoke mb ~base:(B.this mb) ~kind:Expr.Special
        ~callee:(Jsig.meth ~cls:super ~name:"<init>" ~params:[] ~ret:Types.Void)
        ~args:[] ())

let void_m ?(access = Jmethod.default_access) cls name =
  B.method_ ~access ~cls ~name ~params:[] ~ret:Types.Void (fun _ -> ())

let sample_program () =
  let act =
    Jclass.make ~super:(Some "android.app.Activity") "d.MainAct"
      ~methods:
        [ plain_ctor ~cls:"d.MainAct" ~super:"android.app.Activity";
          B.method_ ~cls:"d.MainAct" ~name:"onCreate" ~params:[ Api.bundle_t ]
            ~ret:Types.Void (fun _ -> ());
          void_m ~access:B.private_access "d.MainAct" "helper";
          void_m "d.MainAct" "plainPublic" ]
  in
  let runnable_impl =
    Jclass.make ~interfaces:[ "java.lang.Runnable" ] "d.Job"
      ~methods:
        [ plain_ctor ~cls:"d.Job" ~super:"java.lang.Object";
          void_m "d.Job" "run" ]
  in
  let helper =
    Jclass.make "d.Util"
      ~methods:
        [ void_m ~access:B.static_access "d.Util" "stat";
          B.clinit ~cls:"d.Util" (fun _ -> ()) ]
  in
  Program.of_classes (Framework.Stubs.classes () @ [ act; runnable_impl; helper ])

(* --- dispatch --- *)

let msig cls name = Jsig.meth ~cls ~name ~params:[] ~ret:Types.Void

let test_dispatch () =
  let p = sample_program () in
  let check name expected m =
    Alcotest.(check string) name expected
      (Backdroid.Resolver.strategy_to_string (Backdroid.Resolver.classify p m))
  in
  check "static method -> basic" "basic" (msig "d.Util" "stat");
  check "private method -> basic" "basic" (msig "d.MainAct" "helper");
  check "plain public, no foreign decl -> basic" "basic"
    (msig "d.MainAct" "plainPublic");
  check "interface impl -> advanced" "advanced" (msig "d.Job" "run");
  check "clinit -> clinit" "clinit" (msig "d.Util" "<clinit>");
  check "lifecycle handler -> lifecycle" "lifecycle"
    (Jsig.meth ~cls:"d.MainAct" ~name:"onCreate" ~params:[ Api.bundle_t ]
       ~ret:Types.Void)

(* --- sigformat --- *)

let test_sigformat_roundtrip () =
  let m =
    Jsig.meth ~cls:"com.a.B" ~name:"f" ~params:[ Types.string_; Types.Int ]
      ~ret:Types.Boolean
  in
  let d = Backdroid.Sigformat.to_dex_meth m in
  Alcotest.(check string) "dex form" "Lcom/a/B;.f:(Ljava/lang/String;I)Z" d;
  Alcotest.(check bool) "roundtrip" true
    (Jsig.meth_equal (Backdroid.Sigformat.of_dex_meth d) m);
  Alcotest.(check string) "relocated onto child"
    "Lcom/a/Child;.f:(Ljava/lang/String;I)Z"
    (Backdroid.Sigformat.to_dex_meth_on_class m "com.a.Child")

(* --- loopdetect --- *)

let test_loopdetect () =
  let s = Backdroid.Loopdetect.create () in
  Backdroid.Loopdetect.record s Backdroid.Loopdetect.Cross_backward;
  Backdroid.Loopdetect.record s Backdroid.Loopdetect.Cross_backward;
  Backdroid.Loopdetect.record s Backdroid.Loopdetect.Inner_forward;
  Alcotest.(check int) "total" 3 (Backdroid.Loopdetect.total s);
  Alcotest.(check int) "cross backward" 2
    (Backdroid.Loopdetect.get s Backdroid.Loopdetect.Cross_backward);
  let m = msig "a.B" "f" in
  Alcotest.(check bool) "on_path" true (Backdroid.Loopdetect.on_path [ m ] m);
  Alcotest.(check bool) "not on_path" false
    (Backdroid.Loopdetect.on_path [ m ] (msig "a.B" "g"))

(* --- api model --- *)

let test_binop_mimicry () =
  let open Backdroid.Api_model in
  Alcotest.(check bool) "add" true
    (binop Expr.Add (Facts.Const_int 2) (Facts.Const_int 3) = Facts.Const_int 5);
  Alcotest.(check bool) "xor" true
    (binop Expr.Bxor (Facts.Const_int 6) (Facts.Const_int 3) = Facts.Const_int 5);
  Alcotest.(check bool) "cmp true" true
    (binop Expr.Lt (Facts.Const_int 1) (Facts.Const_int 2) = Facts.Const_int 1);
  (match binop Expr.Add Facts.Unknown (Facts.Const_int 1) with
   | Facts.Sym _ -> ()
   | f -> Alcotest.fail ("expected symbolic, got " ^ Facts.to_string f))

let test_stringbuilder_model () =
  let open Backdroid.Api_model in
  let sb = Facts.new_obj "java.lang.StringBuilder" in
  let sb =
    match eval Api.string_builder_append (Some sb) [ Facts.Const_str "AES/" ] with
    | Some f -> f
    | None -> Alcotest.fail "append not modelled"
  in
  let sb =
    match eval Api.string_builder_append (Some sb) [ Facts.Const_str "ECB" ] with
    | Some f -> f
    | None -> Alcotest.fail "append not modelled"
  in
  match eval Api.string_builder_to_string (Some sb) [] with
  | Some (Facts.Const_str s) -> Alcotest.(check string) "concat" "AES/ECB" s
  | Some f -> Alcotest.fail ("unexpected " ^ Facts.to_string f)
  | None -> Alcotest.fail "toString not modelled"

let test_intent_model () =
  let open Backdroid.Api_model in
  let intent = Facts.new_obj "android.content.Intent" in
  ignore
    (eval Api.intent_put_extra (Some intent)
       [ Facts.Const_str "spec"; Facts.Const_str "AES/ECB/PKCS5Padding" ]);
  match eval Api.intent_get_string_extra (Some intent) [ Facts.Const_str "spec" ] with
  | Some (Facts.Const_str s) ->
    Alcotest.(check string) "extra roundtrip" "AES/ECB/PKCS5Padding" s
  | _ -> Alcotest.fail "extra lost"

(* --- facts --- *)

let test_fact_join () =
  Alcotest.(check bool) "equal consts join" true
    (Facts.join (Facts.Const_str "a") (Facts.Const_str "a") = Facts.Const_str "a");
  Alcotest.(check bool) "unknown is identity" true
    (Facts.join Facts.Unknown (Facts.Const_int 3) = Facts.Const_int 3);
  (match Facts.join (Facts.Const_str "a") (Facts.Const_str "b") with
   | Facts.Sym _ -> ()
   | f -> Alcotest.fail ("expected sym, got " ^ Facts.to_string f))

let test_sym_truncation () =
  match Facts.sym (String.make 500 'x') with
  | Facts.Sym s ->
    Alcotest.(check bool) "bounded" true (String.length s <= 48)
  | f -> Alcotest.fail ("expected sym, got " ^ Facts.to_string f)

(* --- detectors --- *)

let test_cipher_detector () =
  let p = sample_program () in
  let check spec expected =
    Alcotest.(check string) spec expected
      (Detectors.verdict_to_string
         (Detectors.classify p Sinks.cipher (Facts.Const_str spec)))
  in
  check "AES/ECB/PKCS5Padding" "INSECURE";
  check "AES" "INSECURE";           (* mode-less default is ECB *)
  check "AES/GCM/NoPadding" "secure";
  check "DES/CBC/PKCS5Padding" "secure";
  Alcotest.(check string) "unknown fact unresolved" "unresolved"
    (Detectors.verdict_to_string (Detectors.classify p Sinks.cipher Facts.Unknown))

let test_ssl_detector () =
  let p = sample_program () in
  let v fact = Detectors.verdict_to_string (Detectors.classify p Sinks.ssl_factory fact) in
  Alcotest.(check string) "allow-all field" "INSECURE"
    (v (Facts.Static_ref Api.allow_all_hostname_verifier));
  Alcotest.(check string) "allow-all object" "INSECURE"
    (v (Facts.new_obj "org.apache.http.conn.ssl.AllowAllHostnameVerifier"));
  Alcotest.(check string) "strict object" "secure"
    (v (Facts.new_obj "org.apache.http.conn.ssl.StrictHostnameVerifier"))

let test_app_verifier_detector () =
  (* an app-defined verifier whose verify() returns constant true *)
  let vcls = "d.TrustAll" in
  let verify ret_val =
    B.method_ ~cls:vcls ~name:"verify" ~params:[ Types.string_ ]
      ~ret:Types.Boolean (fun mb ->
        B.return_val mb (Value.Const (Value.Int_c ret_val)))
  in
  let mk ret_val =
    Program.of_classes
      (Framework.Stubs.classes ()
       @ [ Jclass.make ~interfaces:[ "javax.net.ssl.HostnameVerifier" ] vcls
             ~methods:[ plain_ctor ~cls:vcls ~super:"java.lang.Object"; verify ret_val ] ])
  in
  let verdict p =
    Detectors.verdict_to_string
      (Detectors.classify p Sinks.https_conn (Facts.new_obj vcls))
  in
  Alcotest.(check string) "returns-true verifier" "INSECURE" (verdict (mk 1));
  Alcotest.(check string) "returns-false verifier" "secure" (verdict (mk 0))

(* --- object taint indicators --- *)

let test_indicator_types () =
  let p = sample_program () in
  let inds =
    Backdroid.Object_taint.indicator_types p "d.Job" "void run()"
  in
  Alcotest.(check bool) "Runnable is an indicator" true
    (List.mem "java.lang.Runnable" inds);
  let none = Backdroid.Object_taint.indicator_types p "d.Util" "void stat()" in
  Alcotest.(check (list string)) "no indicator for plain statics" [] none

(* --- clinit search uses the manifest --- *)

let test_clinit_search () =
  let user =
    Jclass.make "d.Model"
      ~methods:
        [ B.method_ ~access:B.static_access ~cls:"d.Model" ~name:"touch"
            ~params:[] ~ret:Types.Void (fun mb ->
              ignore
                (B.sget mb (Jsig.field ~cls:"d.Cfg" ~name:"X" ~ty:Types.Int))) ]
  in
  let cfg_cls =
    Jclass.make "d.Cfg"
      ~fields:[ Jsig.field ~cls:"d.Cfg" ~name:"X" ~ty:Types.Int ]
      ~methods:[ B.clinit ~cls:"d.Cfg" (fun _ -> ()) ]
  in
  let act =
    Jclass.make ~super:(Some "android.app.Activity") "d.Entry"
      ~methods:
        [ plain_ctor ~cls:"d.Entry" ~super:"android.app.Activity";
          B.method_ ~cls:"d.Entry" ~name:"onCreate" ~params:[ Api.bundle_t ]
            ~ret:Types.Void (fun mb ->
              B.call_static mb
                ~callee:(Jsig.meth ~cls:"d.Model" ~name:"touch" ~params:[] ~ret:Types.Void)
                ~args:[]) ]
  in
  let program =
    Program.of_classes (Framework.Stubs.classes () @ [ user; cfg_cls; act ])
  in
  let engine = Bytesearch.Engine.create (Dex.Dexfile.of_program program) in
  let manifest =
    Manifest.App_manifest.make ~package:"d"
      ~components:[ Manifest.Component.make ~kind:Manifest.Component.Activity "d.Entry" ]
  in
  let ok, chain =
    Backdroid.Clinit_search.clinit_reachable engine manifest
      (Jsig.meth ~cls:"d.Cfg" ~name:"<clinit>" ~params:[] ~ret:Types.Void)
  in
  Alcotest.(check bool) "reachable through Model and Entry" true ok;
  Alcotest.(check bool) "chain nonempty" true (List.length chain >= 2);
  (* unregistered manifest: unreachable *)
  let empty_manifest = Manifest.App_manifest.make ~package:"d" ~components:[] in
  let ok2, _ =
    Backdroid.Clinit_search.clinit_reachable engine empty_manifest
      (Jsig.meth ~cls:"d.Cfg" ~name:"<clinit>" ~params:[] ~ret:Types.Void)
  in
  Alcotest.(check bool) "unreachable without entries" false ok2

let cases =
  [ Alcotest.test_case "dispatch classification" `Quick test_dispatch;
    Alcotest.test_case "sigformat roundtrip" `Quick test_sigformat_roundtrip;
    Alcotest.test_case "loopdetect" `Quick test_loopdetect;
    Alcotest.test_case "binop mimicry" `Quick test_binop_mimicry;
    Alcotest.test_case "stringbuilder model" `Quick test_stringbuilder_model;
    Alcotest.test_case "intent model" `Quick test_intent_model;
    Alcotest.test_case "fact join" `Quick test_fact_join;
    Alcotest.test_case "sym truncation" `Quick test_sym_truncation;
    Alcotest.test_case "cipher detector" `Quick test_cipher_detector;
    Alcotest.test_case "ssl detector" `Quick test_ssl_detector;
    Alcotest.test_case "app verifier detector" `Quick test_app_verifier_detector;
    Alcotest.test_case "indicator types" `Quick test_indicator_types;
    Alcotest.test_case "clinit search" `Quick test_clinit_search ]

let suites = [ "core.units", cases ]
