(** The BackDroid driver: the four-step pipeline of Fig. 2.

    1. the app is already preprocessed (IR + disassembled dexdump plaintext);
    2. the initial bytecode search locates the target sink API calls;
    3. backward slicing with on-the-fly bytecode search builds one SSG per
       sink call;
    4. forward constant / points-to propagation over each SSG produces the
       complete dataflow representation of the sink parameters, which the
       rule predicates turn into verdicts.

    Detection is driven by a declarative rule set ({!Rules.Rule.t}): rules
    sharing a sink signature share one bytecode search and one backtracking
    pass, and the verdicts fan out per rule.

    The driver owns the cross-sink caches (search-command cache inside the
    engine; sink-API-call reachability cache) and the loop-detection
    statistics of Sec. IV-F. *)

module Sinks = Framework.Sinks
type config = {
  rules : Rules.Rule.t list;
      (** the active detection rules; default {!Rules.Builtin.primary}
          (the paper's ECB + SSL misuse classes) *)
  subclass_aware_initial_search : bool;
  resolve_reflection : bool;
  indexed_search : bool;
  eager_index : bool;
      (** build all postings categories at engine construction instead of
          lazily on first query of each category (default false) *)
  jobs : int;
      (** per-sink parallelism: sink call sites are grouped by containing
          method and the groups analysed on a domain pool of this size
          (1 = sequential, the default).  Findings and statistics are
          identical for any [jobs] value. *)
  budget : Context.budget;
      (** per-sink slicing budget (work/depth caps + optional wall-clock
          deadline); exhaustion surfaces as a [Partial] outcome *)
  trace : Trace.sink;
      (** receives one structured event per caller resolution; default
          [Trace.log_sink] *)
  forward : Forward.config;
}
val default_config : config
type sink_report = {
  rule : Rules.Rule.t;      (** the rule this verdict belongs to *)
  sink : Sinks.t;
  meth : Ir.Jsig.meth;
  site : int;
  reachable : bool;
  fact : Facts.t;
  verdict : Detectors.verdict;
  ssg : Ssg.t option;
      (** absent when served from the sink cache; rules sharing a sink spec
          share the same SSG value *)
  outcome : Context.outcome;
      (** [Partial _] when the slice exhausted its budget ([Complete] for
          cache-served reports: no slicing ran) *)
  prov : Provenance.t;
      (** how this verdict was derived: fresh slice (strategy chain, query
          counts, budget spent, SSG size, wall-µs), result-cache replay, or
          sink-cache shortcut; rules sharing a sink spec share the ledger *)
}
type stats = {
  sink_calls : int;
      (** distinct sink call sites — one backtracking pass each, however
          many rules share the site's sink spec *)
  searches_total : int;
  searches_cached : int;
  search_cache_rate : float;
  sink_cache_lookups : int;
  sink_cache_hits : int;
  loops : Loopdetect.stats;
  ssg_nodes : int;
  ssg_edges : int;
  partial_sinks : int;
      (** sink slices that exhausted their budget (typed [Partial]) *)
  replayed_sinks : int;
      (** sink call sites served from a persisted result cache (no slicing
          ran); 0 unless [analyze] was given [results] *)
  index_categories_built : int;
      (** postings categories the engine built (0-7); lazy mode builds only
          the categories the analysis actually queried *)
  resolutions : int;
      (** caller resolutions taken by fresh slices (all strategies) *)
  resolved_callers : int;
      (** callers those resolutions produced *)
  work_spent : int;
      (** work items spent by fresh slices (sum over sinks) *)
}
type result = { reports : sink_report list; stats : stats; }

(** A detected issue: an insecure, entry-reachable sink call. *)
val insecure_reports : result -> sink_report list

(** Merge all per-sink SSGs of a result into the per-app SSG (Sec. V-A's
    future-work structure).  A shared SSG (one slice, several rules) is
    folded once. *)
val per_app_ssg : result -> Perapp_ssg.t

(** Step 2: initial bytecode search for the sink API invocations of the
    rule set's distinct sink specs — one search per spec, shared across
    rules; one entry per distinct sink call site.  With
    [subclass_aware_initial_search], invocations through app subclasses of
    the sink class are found as well (each resolves to the same framework
    method, like the DefaultSSLSocketFactory case of Sec. VI-C). *)
val initial_sink_search :
  cfg:config -> Bytesearch.Engine.t -> (Sinks.t * Ir.Jsig.meth * int) list

(** {2 Request-scoped analysis}

    A [session] captures everything resolvable once per app — the search
    engine (snapshot warm start or cold build), the worker pool, and the
    persisted-result replay plan (one classmap diff) — so a resident
    server can pay setup once and then serve each request with only the
    per-request work: initial search, per-sink-group fan-out, statistics
    merge.  {!analyze} is exactly
    [open_session] → [run_session] → [close_session]. *)

type session

(** Resolve the engine (premade, or built from [dex] over the pool), the
    replay plan for [results], and the pool itself ([pool] is borrowed;
    otherwise a fresh pool of [cfg.jobs] is created and owned by the
    session).  See {!analyze} for the argument semantics. *)
val open_session :
  ?cfg:config ->
  ?pool:Parallel.Pool.t ->
  ?engine:Bytesearch.Engine.t ->
  ?results:Resultcache.t ->
  dex:Dex.Dexfile.t -> manifest:Manifest.App_manifest.t -> unit -> session

(** Run one analysis request against the session.  [budget] overrides the
    session config's slicing budget for this request only (per-request
    deadlines from a server's wire protocol).  Safe to call concurrently
    from several threads on one session: the engine's caches are
    thread-safe, the replay plan is read-only, and all other run state is
    per-call — results are identical to a fresh {!analyze}. *)
val run_session : ?budget:Context.budget -> session -> result

(** Shut down the session's pool if the session created it ({!analyze}'s
    no-[pool] path); borrowed pools are left running. *)
val close_session : session -> unit

val session_engine : session -> Bytesearch.Engine.t
val session_config : session -> config
val session_pool : session -> Parallel.Pool.t

(** Analyze one app.  [pool] reuses an existing domain pool for the sharded
    index build and the per-sink-group fan-out; without it a fresh pool of
    [cfg.jobs] is created for the call (so [cfg.jobs = 1] is exactly the
    sequential path).  [engine] supplies a premade search engine (a
    snapshot warm start): its dexfile replaces [dex] and no index is built —
    unless [cfg.resolve_reflection] actually rewrites call sites, which
    invalidates any prebuilt index, so the engine is discarded (with a
    logged warning) and the rewritten program is indexed cold.  A premade
    engine last used under a different rule set has its query cache flushed
    (with a warning) first.  Warm and cold runs produce identical
    results.

    [results] supplies a persisted result cache (typically
    {!export_results} of a previous version's run, stored in its
    snapshot): sink call sites whose cached slice footprint is provably
    unaffected by the changes since then — see {!Resultcache} — replay
    their cached reachability and fact without re-slicing (counted in
    [stats.replayed_sinks]; their reports carry [ssg = None]), and
    verdicts are still computed fresh per rule. *)
val analyze :
  ?cfg:config ->
  ?pool:Parallel.Pool.t ->
  ?engine:Bytesearch.Engine.t ->
  ?results:Resultcache.t ->
  dex:Dex.Dexfile.t -> manifest:Manifest.App_manifest.t -> unit -> result

(** Persistable per-sink results of a run: one {!Resultcache.entry} per
    distinct completely-sliced sink call site, stamped with [dex]'s
    class-hash table.  Save alongside the snapshot via
    {!Store.Snapshot.save}'s [results] argument. *)
val export_results : dex:Dex.Dexfile.t -> result -> Resultcache.t
