(** One function per table / figure of the paper's evaluation, each printing
    the measured series next to the numbers the paper reports.

    Time scaling: wall-clock seconds on our synthetic substrate stand in for
    the paper's minutes on real APKs.  The timeout given to the whole-app
    baselines plays the paper's 300-minute timeout, so
    [minutes_per_second = 300 / timeout_s] converts measured seconds into
    "paper-minute equivalents" for the distribution buckets. *)

module G = Appgen.Generator
module Corpus = Appgen.Corpus
module Shape = Appgen.Shape

type opts = {
  scale : float;        (** app-size scale (1.0 = calibrated sizes) *)
  count : int;          (** corpus size (paper: 144) *)
  timeout_s : float;    (** stands in for the 300-minute Amandroid timeout *)
  flowdroid_timeout_s : float;  (** stands in for the 5-hour Fig. 1 timeout *)
  seed : int;
  jobs : int;           (** per-app fan-out width (1 = sequential) *)
  snapshot_dir : string option;
      (** warm-cache mode: per-app preprocessing snapshots ([.bdix]) are
          saved here on first encounter and reused on the next run *)
}

let default_opts =
  { scale = 1.0; count = 144; timeout_s = 0.3; flowdroid_timeout_s = 0.3;
    seed = 42; jobs = 1; snapshot_dir = None }

let minutes_per_second opts = 300.0 /. opts.timeout_s

(* ------------------------------------------------------------------ *)
(* Corpus run: one generate-analyze pass per app, apps discarded after *)

type corpus_run = {
  backdroid : Runner.measurement list;
  amandroid : Runner.measurement list;
  flowdroid : Runner.measurement list;
}

(** One generate-analyze pass per app.  With [opts.jobs > 1] the apps of the
    grid are fanned out over a domain pool, [opts.jobs] at a time; each app
    is still generated, analysed and timed entirely within one task, so the
    per-app measurements are the same as in sequential mode (timings aside)
    and come back in corpus order. *)
let run_corpus ?(progress = fun _ -> ()) opts =
  let configs = Corpus.modern_144 ~scale:opts.scale ~seed:opts.seed ~count:opts.count () in
  let n = List.length configs in
  let progress_lock = Mutex.create () in
  let started = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let t_start = Unix.gettimeofday () in
  (* Completion heartbeat: elapsed time plus a naive remaining-time estimate
     from the mean per-app cost so far.  Serialized by [progress_lock] with
     the start lines. *)
  let heartbeat () =
    let d = 1 + Atomic.fetch_and_add completed 1 in
    let elapsed = Unix.gettimeofday () -. t_start in
    let eta = elapsed /. float_of_int d *. float_of_int (n - d) in
    Mutex.lock progress_lock;
    progress
      (Printf.sprintf "[%d/%d done] %.1fs elapsed, ~%.1fs remaining" d n
         elapsed eta);
    Mutex.unlock progress_lock
  in
  (* [i + 1] is the app's stable logical pid in the exported trace (pid 0 is
     the driver process); spans recorded while an app is analysed carry it
     regardless of which pool domain ran the task. *)
  (* Warm-cache mode: with [opts.snapshot_dir], each app's preprocessing
     snapshot is saved on first encounter and mapped back on the next —
     generation then skips disassembly ([build_dex:false]) and analysis runs
     on the snapshot engine.  Snapshots are per-app files, so pool domains
     never contend for one; a damaged file rebuilds cold with a warning.

     A snapshot whose per-class content hashes no longer match the current
     build (the app changed between runs — a "version update") is not thrown
     away: it is delta-patched against the new program — only changed
     classes are re-disassembled and re-indexed — and re-saved. *)
  let snapshot_fresh engine program =
    let cm = (Bytesearch.Engine.dexfile engine).Dex.Dexfile.classmap in
    Dex.Classmap.length cm > 0
    &&
    let n = ref 0 in
    Ir.Program.fold_classes program
      (fun (c : Ir.Jclass.t) ok ->
         if c.Ir.Jclass.is_system then ok
         else begin
           incr n;
           ok
           && Dex.Classmap.ir_hash_of cm c.Ir.Jclass.name
              = Some (Ir.Irhash.jclass c)
         end)
      true
    && !n = Dex.Classmap.length cm
  in
  let prepare (cfg : G.config) =
    match opts.snapshot_dir with
    | None -> (G.generate cfg, None)
    | Some dir ->
      let path = Store.Snapshot.default_path ~dir ~app_id:cfg.G.name in
      let cold () =
        let app = G.generate cfg in
        let engine = Bytesearch.Engine.create app.G.dex in
        ignore (Store.Snapshot.save ~path engine);
        (app, Some engine)
      in
      let cold_after path e =
        Printf.eprintf "warning: snapshot %s: %s; rebuilding cold\n%!" path
          (Store.Codec.error_to_string e);
        cold ()
      in
      if Sys.file_exists path then begin
        let app = G.generate ~build_dex:false cfg in
        match Store.Snapshot.load ~path app.G.program with
        | Ok engine when snapshot_fresh engine app.G.program ->
          (app, Some engine)
        | Ok stale -> begin
            (* the stale engine is already resident — patch it in memory
               rather than re-reading the file *)
            match Store.Snapshot.delta_of_engine stale app.G.program with
            | Ok (engine, rep) ->
              ignore (Store.Snapshot.save ~path engine);
              Printf.eprintf "note: snapshot %s was stale; delta-patched: %s\n%!"
                path
                (Store.Snapshot.delta_report_to_string rep);
              (app, Some engine)
            | Error e -> cold_after path e
          end
        | Error e -> cold_after path e
      end
      else cold ()
  in
  let run_one (i, (cfg : G.config)) =
    Obs.Span.with_pid (i + 1) @@ fun () ->
    Obs.Span.with_span ~cat:"corpus" ~name:cfg.G.name @@ fun () ->
    let k = 1 + Atomic.fetch_and_add started 1 in
    Mutex.lock progress_lock;
    progress (Printf.sprintf "[%d/%d] %s" k n cfg.G.name);
    Mutex.unlock progress_lock;
    let app, engine = prepare cfg in
    let m_bd, _ = Runner.run_backdroid ?engine app in
    let m_am, _ = Runner.run_amandroid ~timeout_s:opts.timeout_s app in
    let m_fd =
      Runner.run_flowdroid_cg ~timeout_s:opts.flowdroid_timeout_s app
    in
    let stamp m = { m with Runner.parallelism = opts.jobs } in
    heartbeat ();
    (stamp m_bd, stamp m_am, stamp m_fd)
  in
  let results =
    Parallel.Pool.with_pool ~jobs:opts.jobs (fun pool ->
        Parallel.Pool.parallel_map_list pool run_one
          (List.mapi (fun i cfg -> (i, cfg)) configs))
  in
  { backdroid = List.map (fun (m, _, _) -> m) results;
    amandroid = List.map (fun (_, m, _) -> m) results;
    flowdroid = List.map (fun (_, _, m) -> m) results }

(* ------------------------------------------------------------------ *)
(* Formatting helpers                                                   *)

let pf = Printf.printf

let header title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '=')

let minutes opts (m : Runner.measurement) = m.seconds *. minutes_per_second opts

let time_buckets = [ 1.0; 5.0; 10.0; 30.0; 60.0; 120.0; 300.0 ]

let bucket_labels =
  [ "<1min"; "1-5min"; "5-10min"; "10-30min"; "30-60min"; "60-120min";
    "120-300min"; ">=300min (timeout)" ]

let print_distribution opts (ms : Runner.measurement list) =
  let finished, timed_out =
    List.partition (fun (m : Runner.measurement) -> not m.timed_out) ms
  in
  let mins = List.map (minutes opts) finished in
  let counts = Stats.histogram ~buckets:time_buckets mins in
  (* fold timeouts into the last bucket *)
  let counts =
    match List.rev counts with
    | last :: rest ->
      List.rev ((last + List.length timed_out) :: rest)
    | [] -> []
  in
  List.iter2
    (fun label count ->
       pf "  %-20s %4d  %s\n" label count (String.make (min 60 count) '#'))
    bucket_labels counts

(* ------------------------------------------------------------------ *)
(* Table I                                                              *)

let table1 ?(seed = 1) () =
  header "Table I: average and median app sizes, 2014-2018";
  pf "  %-6s %-22s %-22s %s\n" "Year" "Average (paper)" "Median (paper)" "#Samples";
  List.iter
    (fun (year, (avg, med, count)) ->
       let sizes = Corpus.yearly_sizes ~seed year in
       pf "  %-6d %6.1fMB (%4.1fMB)      %6.1fMB (%4.1fMB)      %d\n" year
         (Stats.mean sizes) avg (Stats.median sizes) med count)
    Corpus.year_models

(* ------------------------------------------------------------------ *)
(* Fig. 1 / 7 / 8                                                       *)

let fig1 opts (run : corpus_run) =
  header "Fig. 1: FlowDroid whole-app call-graph generation time (CG only)";
  let ms = run.flowdroid in
  let n = List.length ms in
  let timeouts = List.length (List.filter (fun m -> m.Runner.timed_out) ms) in
  let done_mins =
    List.filter_map
      (fun (m : Runner.measurement) ->
         if m.timed_out then None else Some (minutes opts m))
      ms
  in
  print_distribution opts ms;
  pf "  median CG time  : %.2f min-equiv (paper: 9.76 min)\n" (Stats.median done_mins);
  pf "  within 5 min    : %d/%d = %.1f%% (paper: 21.5%%)\n"
    (Stats.count_in ~lo:0.0 ~hi:5.0 done_mins) n
    (100.0 *. Stats.fraction (Stats.count_in ~lo:0.0 ~hi:5.0 done_mins) n);
  pf "  timed out       : %d/%d = %.1f%% (paper: 24%%)\n" timeouts n
    (100.0 *. Stats.fraction timeouts n)

let fig7 opts (run : corpus_run) =
  header "Fig. 7: distribution of analysis time in BackDroid";
  let ms = run.backdroid in
  let n = List.length ms in
  let mins = List.map (minutes opts) ms in
  print_distribution opts ms;
  pf "  median          : %.2f min-equiv (paper: 2.13 min)\n" (Stats.median mins);
  pf "  within 1 min    : %d/%d = %.1f%% (paper: 30%%)\n"
    (Stats.count_in ~lo:0.0 ~hi:1.0 mins) n
    (100.0 *. Stats.fraction (Stats.count_in ~lo:0.0 ~hi:1.0 mins) n);
  pf "  within 10 min   : %d/%d = %.1f%% (paper: 77%%)\n"
    (Stats.count_in ~lo:0.0 ~hi:10.0 mins) n
    (100.0 *. Stats.fraction (Stats.count_in ~lo:0.0 ~hi:10.0 mins) n);
  pf "  exceeding 30min : %d (paper: 3)\n"
    (List.length (List.filter (fun m -> m > 30.0) mins));
  pf "  timeouts        : %d (paper: 0)\n"
    (List.length (List.filter (fun (m : Runner.measurement) -> m.timed_out) ms))

let fig8 opts (run : corpus_run) =
  header "Fig. 8: distribution of analysis time in Amandroid";
  let ms = run.amandroid in
  let n = List.length ms in
  let timeouts = List.length (List.filter (fun m -> m.Runner.timed_out) ms) in
  print_distribution opts ms;
  let all_mins = List.map (minutes opts) ms in
  pf "  median          : %.2f min-equiv (paper: 78.15 min)\n" (Stats.median all_mins);
  pf "  timed out       : %d/%d = %.1f%% (paper: 35%%)\n" timeouts n
    (100.0 *. Stats.fraction timeouts n);
  pf "  within 10 min   : %.1f%% (paper: 17%%)\n"
    (100.0 *. Stats.fraction (Stats.count_in ~lo:0.0 ~hi:10.0 all_mins) n);
  pf "  within 1 min    : %.1f%% (paper: 0%%)\n"
    (100.0 *. Stats.fraction (Stats.count_in ~lo:0.0 ~hi:1.0 all_mins) n)

let speedup_summary opts (run : corpus_run) =
  header "Headline: BackDroid vs Amandroid median speedup";
  let bd = Stats.median (List.map (minutes opts) run.backdroid) in
  let am = Stats.median (List.map (minutes opts) run.amandroid) in
  pf "  BackDroid median : %.2f min-equiv\n" bd;
  pf "  Amandroid median : %.2f min-equiv\n" am;
  pf "  speedup          : %.1fx (paper: 37x)\n" (am /. bd)

(* ------------------------------------------------------------------ *)
(* Fig. 9                                                               *)

let fig9 opts (run : corpus_run) =
  header "Fig. 9: #sink API calls vs BackDroid analysis time";
  let pts =
    List.map
      (fun (m : Runner.measurement) -> (m.sink_calls, minutes opts m))
      run.backdroid
    |> List.sort compare
  in
  pf "  %-12s %-14s %s\n" "#sink calls" "time (mineq)" "min/sink";
  List.iter
    (fun (s, t) ->
       if s > 0 then pf "  %-12d %-14.2f %.3f\n" s t (t /. float_of_int s))
    pts;
  let per_sink =
    List.filter_map
      (fun (s, t) -> if s > 0 then Some (t /. float_of_int s) else None)
      pts
  in
  (* paper: the majority of apps analyse faster than 30s (=0.5min) per sink *)
  let under = List.length (List.filter (fun x -> x < 0.5) per_sink) in
  pf "  apps under 0.5 min/sink: %d/%d (paper: all but ~10)\n" under
    (List.length per_sink);
  let avg_sinks = Stats.mean (List.map (fun (s, _) -> float_of_int s) pts) in
  pf "  avg sink calls per app : %.2f (paper: 20.93)\n" avg_sinks

(* ------------------------------------------------------------------ *)
(* Detection (Sec. VI-C)                                                *)

type detection_row = {
  group : string;
  mutable total : int;
  mutable bd_detected : int;
  mutable am_detected : int;
}

let detection ?(timeout_s = 2.0) () =
  header "Sec. VI-C: detection results (BackDroid vs whole-app baseline)";
  let apps = Corpus.detection ~timeout_mb:100.0 () in
  let groups = Hashtbl.create 8 in
  let row g =
    match Hashtbl.find_opt groups g with
    | Some r -> r
    | None ->
      let r = { group = g; total = 0; bd_detected = 0; am_detected = 0 } in
      Hashtbl.replace groups g r;
      r
  in
  List.iter
    (fun (d : Corpus.detection_app) ->
       let app = G.generate d.config in
       let r = row d.group in
       r.total <- r.total + 1;
       let am_cfg =
         { Baseline.Amandroid.default_config with
           Baseline.Amandroid.error_rate =
             (if d.group = "extra-error" then 1.0 else 0.0) }
       in
       let bd, _ = Runner.run_backdroid app in
       let am, _ = Runner.run_amandroid ~cfg:am_cfg ~timeout_s app in
       if bd.Runner.insecure > 0 then r.bd_detected <- r.bd_detected + 1;
       if am.Runner.insecure > 0 then r.am_detected <- r.am_detected + 1)
    apps;
  pf "  %-24s %-7s %-10s %-10s %s\n" "group" "apps" "BackDroid" "Baseline" "expected";
  let expected = function
    | "ecb-tp" -> "both detect (paper: 7/7 BD)"
    | "ssl-tp" -> "both detect (paper: 15/15 BD)"
    | "ssl-tp-subclassed" -> "baseline only (paper: 2 BD FNs)"
    | "ssl-fp-unregistered" -> "baseline FPs (paper: 6 Amandroid FPs)"
    | "extra-timeout" -> "BackDroid only (baseline times out)"
    | "extra-skipped-lib" -> "BackDroid only (liblist)"
    | "extra-async-gap" -> "BackDroid only (async/callback gaps)"
    | "extra-error" -> "BackDroid only (baseline internal errors)"
    | _ -> ""
  in
  let order =
    [ "ecb-tp"; "ssl-tp"; "ssl-tp-subclassed"; "ssl-fp-unregistered";
      "extra-timeout"; "extra-skipped-lib"; "extra-async-gap"; "extra-error" ]
  in
  List.iter
    (fun g ->
       match Hashtbl.find_opt groups g with
       | Some r ->
         pf "  %-24s %-7d %-10d %-10d %s\n" r.group r.total r.bd_detected
           r.am_detected (expected g)
       | None -> ())
    order

(* ------------------------------------------------------------------ *)
(* Sec. IV-F enhancements                                               *)

let enhancements (run : corpus_run) =
  header "Sec. IV-F: search caching, sink caching and loop detection";
  let bd = run.backdroid in
  let rates = List.map (fun m -> m.Runner.search_cache_rate *. 100.0) bd in
  pf "  search cache rate: avg %.2f%% min %.2f%% max %.2f%% (paper: avg 23.39%%, min 2.97%%, max 88.95%%)\n"
    (Stats.mean rates) (Stats.minimum rates) (Stats.maximum rates);
  let sink_rates = List.map (fun m -> m.Runner.sink_cache_rate *. 100.0) bd in
  pf "  sink-call cache  : avg %.2f%% max %.2f%% (paper: avg 13.86%%, max 68.18%%)\n"
    (Stats.mean sink_rates) (Stats.maximum sink_rates);
  let with_loops = List.length (List.filter (fun m -> m.Runner.loops > 0) bd) in
  pf "  apps with >=1 dead loop detected: %d/%d = %.0f%% (paper: 60%%)\n"
    with_loops (List.length bd)
    (100.0 *. Stats.fraction with_loops (List.length bd));
  let cross = List.fold_left (fun a m -> a + m.Runner.cross_backward_loops) 0 bd in
  let total = List.fold_left (fun a m -> a + m.Runner.loops) 0 bd in
  pf "  CrossBackward loops: %d of %d total (paper: the most common type)\n"
    cross total

(* ------------------------------------------------------------------ *)
(* Ablation: indexed search vs grep-style scans                         *)

let ablation_search ?(count = 24) opts =
  header "Ablation: indexed search vs grep-style per-query scans";
  let configs = Corpus.modern_144 ~scale:opts.scale ~seed:opts.seed ~count () in
  let idx = ref [] and scan = ref [] in
  List.iter
    (fun (cfg : G.config) ->
       let app = G.generate cfg in
       let m1, _ = Runner.run_backdroid app in
       let m2, _ =
         Runner.run_backdroid
           ~cfg:
             { Backdroid.Driver.default_config with
               Backdroid.Driver.indexed_search = false }
           app
       in
       idx := m1.Runner.seconds :: !idx;
       scan := m2.Runner.seconds :: !scan)
    configs;
  let mi = Stats.median !idx and ms = Stats.median !scan in
  pf "  indexed median  : %.4f s
" mi;
  pf "  grep-scan median: %.4f s (%.1fx slower — the paper's prototype greps)
"
    ms (ms /. mi)

(** Compact pass/deviation summary of the headline reproduction claims. *)
let reproduction_summary opts (run : corpus_run) =
  header "Reproduction summary";
  let bd_med = Stats.median (List.map (minutes opts) run.backdroid) in
  let am_med = Stats.median (List.map (minutes opts) run.amandroid) in
  let speedup = am_med /. bd_med in
  let bd_timeouts =
    List.length (List.filter (fun m -> m.Runner.timed_out) run.backdroid)
  in
  let am_timeout_pct =
    100.0
    *. Stats.fraction
         (List.length (List.filter (fun m -> m.Runner.timed_out) run.amandroid))
         (List.length run.amandroid)
  in
  let fd_timeout_pct =
    100.0
    *. Stats.fraction
         (List.length (List.filter (fun m -> m.Runner.timed_out) run.flowdroid))
         (List.length run.flowdroid)
  in
  let row label ok detail =
    pf "  [%s] %-44s %s\n" (if ok then "REPRODUCED" else " DEVIATION") label detail
  in
  row "median speedup over the whole-app baseline"
    (speedup > 20.0 && speedup < 80.0)
    (Printf.sprintf "%.1fx (paper: 37x)" speedup);
  row "BackDroid never times out" (bd_timeouts = 0)
    (Printf.sprintf "%d timeouts (paper: 0)" bd_timeouts);
  row "whole-app baseline timeout failures"
    (am_timeout_pct > 15.0 && am_timeout_pct < 50.0)
    (Printf.sprintf "%.1f%% (paper: 35%%)" am_timeout_pct);
  row "CG-only baseline also times out"
    (fd_timeout_pct > 5.0 && fd_timeout_pct < 40.0)
    (Printf.sprintf "%.1f%% (paper: 24%%)" fd_timeout_pct);
  let per_sink_ok =
    let pts =
      List.filter_map
        (fun (m : Runner.measurement) ->
           if m.sink_calls > 0 then
             Some (minutes opts m /. float_of_int m.sink_calls)
           else None)
        run.backdroid
    in
    Stats.fraction (List.length (List.filter (fun x -> x < 0.5) pts))
      (List.length pts)
    > 0.75
  in
  row "analysis time scales with sink count, <0.5 min/sink" per_sink_ok
    "(paper: all but ~10 apps)"

let run_all ?(opts = default_opts) ?(csv_path = None) () =
  table1 ();
  let run = run_corpus ~progress:(fun s -> Printf.eprintf "%s\r%!" s) opts in
  Printf.eprintf "\n%!";
  (match csv_path with
   | Some path ->
     Report.write_csv path (run.backdroid @ run.amandroid @ run.flowdroid);
     pf "\n[measurements exported to %s]\n" path
   | None -> ());
  fig1 opts run;
  fig7 opts run;
  fig8 opts run;
  speedup_summary opts run;
  fig9 opts run;
  detection ~timeout_s:opts.timeout_s ();
  enhancements run;
  ablation_search ~count:(min 24 opts.count) opts;
  reproduction_summary opts run
