(** Per-phase self-time profile folded from recorded spans: for each
    (category, name), count, inclusive total, self time (total minus direct
    children) and the slowest single instance.  Rows sort by self time. *)

type row = {
  r_cat : string;
  r_name : string;
  r_count : int;
  r_total_us : float;
  r_self_us : float;
  r_max_us : float;
}

val compute : Span.span list -> row list
val render : row list -> string
