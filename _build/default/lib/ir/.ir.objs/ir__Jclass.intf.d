lib/ir/jclass.mli: Jmethod Jsig String Types
