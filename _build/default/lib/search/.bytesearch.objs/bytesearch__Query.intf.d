lib/search/query.mli:
