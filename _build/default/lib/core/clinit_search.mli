(** Special search over static initializers (Sec. IV-C).

    [<clinit>] methods are never invoked explicitly, so BackDroid instead
    performs a recursive class-use search: find the classes whose code uses
    the initializer's class, check whether any is a registered entry
    component, and repeat over the using classes until an entry class is
    found or no new class appears.  Only control-flow reachability is
    decided — [<clinit>] has no parameters, hence no dataflow mapping. *)

(** Classes whose instruction lines mention [cls] (excluding [cls] itself). *)
val using_classes : Bytesearch.Engine.t -> String.t -> String.t list

(** Is [clinit_owner]'s initializer reachable from a registered entry
    component?  Also returns the class-use chain discovered (for
    diagnostics). *)
val reachable :
  Bytesearch.Engine.t ->
  Manifest.App_manifest.t -> clinit_owner:String.t -> bool * String.t list

(** Convenience wrapper for a [<clinit>] method signature. *)
val clinit_reachable :
  Bytesearch.Engine.t ->
  Manifest.App_manifest.t -> Ir.Jsig.meth -> bool * String.t list
