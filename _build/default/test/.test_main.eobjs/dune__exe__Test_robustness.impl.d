test/test_robustness.ml: Alcotest Appgen Backdroid Dex Framework Ir List Manifest Printf Unix
