(** Java-level types as they appear in Dalvik bytecode and in our Shimple-like
    IR.  Class names use the dotted Java notation ([java.lang.String]); the
    dex-descriptor rendering lives in {!module:Dex.Descriptor}. *)

type t =
    Void
  | Boolean
  | Byte
  | Char
  | Short
  | Int
  | Long
  | Float
  | Double
  | Object of string
  | Array of t
val equal : t -> t -> bool
val compare : t -> t -> int
val to_key : t -> string
val is_reference : t -> bool
val is_primitive : t -> bool

(** Element class of a reference type, unwrapping arrays; [None] for
    primitives. *)
val base_class : t -> string option
val to_string : t -> string

(** Parse the Java source notation produced by {!to_string}. *)
val of_string : string -> t
val pp : Format.formatter -> t -> unit
val object_ : t
val string_ : t
val intent : t
val runnable : t
