(** The security-sensitive sink API catalog.

    A sink is pure data: a display name, the method signature the initial
    bytecode search targets, and the index of the security-relevant argument
    the slicer backtracks.  What used to be a closed [kind] variant is now
    just the [name] string, so detection rules (see the [Rules] library) can
    introduce new sinks without touching this module — the values below are
    the compiled-in catalog the built-in rules reference.

    The paper's evaluation targets three sink APIs (crypto + 2× SSL); the
    catalog also carries the "uncommon" sinks mentioned in Sec. VI-D, and
    [extended] adds the WebView / SQL-injection / intent-redirection sinks
    of the newer rule families. *)

type t = {
  name : string;           (** stable display label, e.g. ["crypto-cipher"] *)
  msig : Ir.Jsig.meth;
  param_index : int;
      (** index of the security-relevant parameter (receiver excluded) *)
}

let cipher = { name = "crypto-cipher"; msig = Api.cipher_get_instance; param_index = 0 }

let ssl_factory =
  { name = "ssl-hostname"; msig = Api.ssl_set_hostname_verifier; param_index = 0 }

let https_conn =
  { name = "ssl-hostname"; msig = Api.https_set_hostname_verifier; param_index = 0 }

let sms = { name = "sms-send"; msig = Api.sms_send_text_message; param_index = 2 }
let server_socket =
  { name = "server-socket"; msig = Api.server_socket_init; param_index = 0 }
let local_socket =
  { name = "local-socket"; msig = Api.local_server_socket_init; param_index = 0 }

let webview_js =
  { name = "webview-js"; msig = Api.webview_set_javascript_enabled;
    param_index = 0 }

let webview_bridge =
  { name = "webview-bridge"; msig = Api.webview_add_javascript_interface;
    param_index = 1 }

let sql_query =
  { name = "sql-query"; msig = Api.sqlite_raw_query; param_index = 0 }

let intent_redirect =
  { name = "intent-redirect"; msig = Api.context_start_activity;
    param_index = 0 }

(** The three sink APIs of the paper's evaluation (Sec. VI-A). *)
let primary = [ cipher; ssl_factory; https_conn ]

let catalog = [ cipher; ssl_factory; https_conn; sms; server_socket; local_socket ]

let extended = catalog @ [ webview_js; webview_bridge; sql_query; intent_redirect ]

(* ------------------------------------------------------------------ *)
(* Sym-keyed signature lookup.  Under multi-rule loads the baselines probe
   the sink set once per disassembled call site; a linear [List.find_opt]
   over method signatures there is O(rules × params) per probe, while this
   index is one integer hash on the interned full signature. *)

type index = (int, t) Hashtbl.t

(** Build the signature index once per sink set. *)
let index sinks : index =
  let h = Hashtbl.create (max 16 (2 * List.length sinks)) in
  List.iter
    (fun s -> Hashtbl.replace h (Sym.id (Ir.Jsig.meth_sym s.msig)) s)
    sinks;
  h

(** O(1) probe: is [msig] one of the indexed sinks? *)
let find (idx : index) msig =
  Hashtbl.find_opt idx (Sym.id (Ir.Jsig.meth_sym msig))

(** An ECB (or mode-less) transformation string is the insecure crypto
    configuration the detectors flag. *)
let cipher_spec_is_insecure spec =
  let has_sub ~sub s =
    let ls = String.length s and lb = String.length sub in
    let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
    lb = 0 || at 0
  in
  has_sub ~sub:"ECB" spec || not (String.contains spec '/')
