lib/baseline/flowdroid_cg.ml: Array Callgraph Cha Expr Hashtbl Ir Jmethod Jsig List Option Program Queue Stmt String Unix
