(** Persisted per-sink analysis results with content-hash invalidation.

    One entry caches the outcome of one sink call site's backtracking +
    forward propagation: reachability, the propagated sink-argument fact
    and the slice outcome, keyed by (sink spec, containing method, site)
    and stamped with the {e footprint} — the set of app classes the SSG
    slice touched.  Verdicts are {e not} cached: they are a pure function
    of (rule, fact) via {!Detectors.classify_rule}, so a cached fact
    replays correctly under a changed rule set.

    The cache also records the app-wide class-hash table (name ->
    {!Ir.Irhash}) current when it was produced.  Against a new build, an
    entry is replayable iff
    - every footprint class still exists with an unchanged IR hash, and
    - no changed or added class references a footprint class (by callee,
      field or class-descriptor operand) — a class the slice never visited
      can only alter the slice by introducing such a reference, since
      every caller/writer the backward search found was visited and is
      therefore in the footprint.

    Entries with [Partial] outcomes are never cached: budget exhaustion
    can be wall-clock dependent, so replaying one could disagree with a
    cold re-run under a different deadline. *)

module Classmap = Dex.Classmap

type entry = {
  e_sink_msig : string;   (** [Jsig.meth_to_string] of the sink signature *)
  e_param_index : int;
  e_meth : string;        (** containing method, [Jsig.meth_to_string] *)
  e_site : int;
  e_reachable : bool;
  e_fact : Facts.t;
  e_footprint : string list;  (** app classes the SSG slice touched *)
}

type t = {
  classes : (string * int64) array;  (** app class-hash table at save time *)
  entries : entry list;
  by_key : (string, entry) Hashtbl.t;
  class_hash : (string, int64) Hashtbl.t;
}

let key ~sink_msig ~param_index ~meth ~site =
  Printf.sprintf "%s\x00%d\x00%s\x00%d" sink_msig param_index meth site

let build ~classes entries =
  let by_key = Hashtbl.create (max 16 (List.length entries)) in
  List.iter
    (fun e ->
       Hashtbl.replace by_key
         (key ~sink_msig:e.e_sink_msig ~param_index:e.e_param_index
            ~meth:e.e_meth ~site:e.e_site)
         e)
    entries;
  let class_hash = Hashtbl.create (max 16 (Array.length classes)) in
  Array.iter (fun (n, h) -> Hashtbl.replace class_hash n h) classes;
  { classes; entries; by_key; class_hash }

let empty = build ~classes:[||] []
let entries t = t.entries
let length t = List.length t.entries

(* -- Wire format ------------------------------------------------------ *)

(* Length-prefixed fields in plain strings: ints as [<decimal>;], strings
   as [<len>:<bytes>].  Facts encode as a tagged recursive term with
   deterministic member order, so encode is injective on acyclic facts and
   a round-trip preserves structural equality (which is all
   [Detectors.classify_rule] inspects). *)

exception Not_cacheable
exception Decode of string

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_char buf ':';
  Buffer.add_string buf s

type cursor = { s : string; mutable pos : int }

let take_char cur =
  if cur.pos >= String.length cur.s then raise (Decode "truncated");
  let c = cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let take_int cur =
  let start = cur.pos in
  let neg = cur.pos < String.length cur.s && cur.s.[cur.pos] = '-' in
  if neg then cur.pos <- cur.pos + 1;
  let v = ref 0 in
  let digits = ref 0 in
  let continue = ref true in
  while !continue do
    match take_char cur with
    | '0' .. '9' as c ->
      v := (!v * 10) + (Char.code c - Char.code '0');
      incr digits
    | ';' -> continue := false
    | _ -> raise (Decode ("bad int at " ^ string_of_int start))
  done;
  if !digits = 0 then raise (Decode "empty int");
  if neg then - !v else !v

let take_str cur =
  let n = take_int cur in
  if n < 0 then raise (Decode "negative string length");
  (match take_char cur with
   | ':' -> ()
   | _ -> raise (Decode "missing ':'"));
  if cur.pos + n > String.length cur.s then raise (Decode "string overrun");
  let s = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  s

let rec encode_fact ~seen buf (f : Facts.t) =
  match f with
  | Facts.Const_str s ->
    Buffer.add_char buf 'C';
    add_str buf s
  | Facts.Const_int i ->
    Buffer.add_char buf 'I';
    add_int buf i
  | Facts.New_obj o ->
    if List.memq (Obj.repr o) seen then raise Not_cacheable;
    let seen = Obj.repr o :: seen in
    Buffer.add_char buf 'O';
    add_str buf o.Facts.cls;
    let members =
      List.sort (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.Facts.members [])
    in
    add_int buf (List.length members);
    List.iter
      (fun (k, v) ->
         add_str buf k;
         encode_fact ~seen buf v)
      members
  | Facts.Arr a ->
    if List.memq (Obj.repr a) seen then raise Not_cacheable;
    let seen = Obj.repr a :: seen in
    Buffer.add_char buf 'A';
    add_str buf (Ir.Types.to_string a.Facts.elem);
    let cells =
      List.sort (fun (a, _) (b, _) -> compare (a : int) b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.Facts.cells [])
    in
    add_int buf (List.length cells);
    List.iter
      (fun (k, v) ->
         add_int buf k;
         encode_fact ~seen buf v)
      cells
  | Facts.Static_ref fld ->
    Buffer.add_char buf 'S';
    add_str buf fld.Ir.Jsig.fcls;
    add_str buf fld.Ir.Jsig.fname;
    add_str buf (Ir.Types.to_string fld.Ir.Jsig.fty)
  | Facts.Framework_input -> Buffer.add_char buf 'F'
  | Facts.Sym s ->
    Buffer.add_char buf 'Y';
    add_str buf s
  | Facts.Unknown -> Buffer.add_char buf 'U'

let rec decode_fact cur : Facts.t =
  match take_char cur with
  | 'C' -> Facts.Const_str (take_str cur)
  | 'I' -> Facts.Const_int (take_int cur)
  | 'O' ->
    let cls = take_str cur in
    let n = take_int cur in
    let members = Hashtbl.create (max 4 n) in
    for _ = 1 to n do
      let k = take_str cur in
      Hashtbl.replace members k (decode_fact cur)
    done;
    Facts.New_obj { Facts.cls; members }
  | 'A' ->
    let elem =
      try Ir.Types.of_string (take_str cur)
      with _ -> raise (Decode "bad array element type")
    in
    let n = take_int cur in
    let cells = Hashtbl.create (max 4 n) in
    for _ = 1 to n do
      let k = take_int cur in
      Hashtbl.replace cells k (decode_fact cur)
    done;
    Facts.Arr { Facts.elem; cells }
  | 'S' ->
    let fcls = take_str cur in
    let fname = take_str cur in
    let fty =
      try Ir.Types.of_string (take_str cur)
      with _ -> raise (Decode "bad field type")
    in
    Facts.Static_ref (Ir.Jsig.field ~cls:fcls ~name:fname ~ty:fty)
  | 'F' -> Facts.Framework_input
  | 'Y' -> Facts.Sym (take_str cur)
  | 'U' -> Facts.Unknown
  | c -> raise (Decode (Printf.sprintf "bad fact tag %C" c))

(* A fact is cacheable iff encoding terminates (no points-to cycle) and
   decoding its encoding re-encodes identically — then replayed verdicts
   are a pure function of the persisted bytes. *)
let fact_to_string_opt f =
  match
    let buf = Buffer.create 64 in
    encode_fact ~seen:[] buf f;
    Buffer.contents buf
  with
  | s ->
    (match
       let check = Buffer.create (String.length s) in
       encode_fact ~seen:[] check (decode_fact { s; pos = 0 });
       Buffer.contents check
     with
     | s' when String.equal s s' -> Some s
     | _ | (exception Not_cacheable) | (exception Decode _) -> None)
  | exception Not_cacheable -> None

let encode_entry e =
  match fact_to_string_opt e.e_fact with
  | None -> None
  | Some fact ->
    let buf = Buffer.create 128 in
    Buffer.add_char buf 'E';
    add_str buf e.e_sink_msig;
    add_int buf e.e_param_index;
    add_str buf e.e_meth;
    add_int buf e.e_site;
    add_int buf (if e.e_reachable then 1 else 0);
    Buffer.add_string buf fact;
    add_int buf (List.length e.e_footprint);
    List.iter (add_str buf) e.e_footprint;
    Some (Buffer.contents buf)

let decode_entry s =
  let cur = { s; pos = 0 } in
  (match take_char cur with
   | 'E' -> ()
   | c -> raise (Decode (Printf.sprintf "bad entry tag %C" c)));
  let e_sink_msig = take_str cur in
  let e_param_index = take_int cur in
  let e_meth = take_str cur in
  let e_site = take_int cur in
  let e_reachable = take_int cur <> 0 in
  let e_fact = decode_fact cur in
  let n = take_int cur in
  let footprint = ref [] in
  for _ = 1 to n do
    footprint := take_str cur :: !footprint
  done;
  if cur.pos <> String.length s then raise (Decode "trailing bytes");
  { e_sink_msig; e_param_index; e_meth; e_site; e_reachable; e_fact;
    e_footprint = List.rev !footprint }

let encode_header classes =
  let buf = Buffer.create 256 in
  Buffer.add_char buf 'H';
  add_int buf (Array.length classes);
  Array.iter
    (fun (n, h) ->
       add_str buf n;
       add_str buf (Printf.sprintf "%016Lx" h))
    classes;
  Buffer.contents buf

let decode_header s =
  let cur = { s; pos = 0 } in
  (match take_char cur with
   | 'H' -> ()
   | c -> raise (Decode (Printf.sprintf "bad header tag %C" c)));
  let n = take_int cur in
  if n < 0 then raise (Decode "negative class count");
  Array.init n (fun _ ->
      let name = take_str cur in
      let hex = take_str cur in
      match Int64.of_string_opt ("0x" ^ hex) with
      | Some h -> (name, h)
      | None -> raise (Decode "bad class hash"))

let to_strings t =
  Array.of_list
    (encode_header t.classes
     :: List.filter_map encode_entry t.entries)

let of_strings a =
  if Array.length a = 0 then Ok empty
  else
    match
      let classes = decode_header a.(0) in
      let entries =
        List.init (Array.length a - 1) (fun i -> decode_entry a.(i + 1))
      in
      build ~classes entries
    with
    | t -> Ok t
    | exception Decode m -> Error m

(* -- Replay planning --------------------------------------------------- *)

type plan = {
  p_cache : t;
  p_valid : (string, bool) Hashtbl.t;  (* footprint class -> replayable *)
}

(* Operand class of an arena slot, by category: callee class of an
   invocation, field class of a field op, the descriptor itself for
   new-instance / const-class.  Malformed operands (impossible for
   disassembler output) resolve to no class. *)
let slot_operand_class ~cat ~sym_id =
  if sym_id < 0 then None
  else
    let s = Sym.to_string (Sym.unsafe_of_id sym_id) in
    try
      if cat = Dex.Arena.cat_invoke then
        Some (Sigformat.of_dex_meth s).Ir.Jsig.cls
      else if cat = Dex.Arena.cat_field || cat = Dex.Arena.cat_static_field
      then Some (Sigformat.of_dex_field s).Ir.Jsig.fcls
      else if cat = Dex.Arena.cat_new_instance
              || cat = Dex.Arena.cat_const_class
      then Some (Sigformat.of_dex_class s)
      else None
    with _ -> None

let plan t ~(dex : Dex.Dexfile.t) =
  let cm = dex.Dex.Dexfile.classmap in
  let arena = dex.Dex.Dexfile.arena in
  let p_valid = Hashtbl.create 64 in
  if Classmap.length cm = 0 || Array.length t.classes = 0 then
    { p_cache = t; p_valid }
  else begin
    (* classes of the new build that changed or were added, and the app
       classes their operands reference *)
    let touched = Hashtbl.create 64 in
    for i = 0 to Classmap.length cm - 1 do
      let name = cm.Classmap.names.(i) in
      let changed =
        match Hashtbl.find_opt t.class_hash name with
        | Some h -> not (Int64.equal h cm.Classmap.ir_hash.(i))
        | None -> true
      in
      if changed then
        for slot = cm.Classmap.slot_lo.(i) to cm.Classmap.slot_hi.(i) - 1 do
          match
            slot_operand_class
              ~cat:(Ivec.get arena.Dex.Arena.cat slot)
              ~sym_id:(Ivec.get arena.Dex.Arena.sym slot)
          with
          | Some cls -> Hashtbl.replace touched cls ()
          | None -> ()
        done
    done;
    (* a footprint class is replay-safe iff it exists unchanged in the new
       build and no changed/added class references it *)
    Hashtbl.iter
      (fun name h ->
         let ok =
           (match Classmap.ir_hash_of cm name with
            | Some h' -> Int64.equal h h'
            | None -> false)
           && not (Hashtbl.mem touched name)
         in
         Hashtbl.replace p_valid name ok)
      t.class_hash;
    { p_cache = t; p_valid }
  end

let lookup pl ~sink_msig ~param_index ~meth ~site =
  match
    Hashtbl.find_opt pl.p_cache.by_key
      (key ~sink_msig ~param_index ~meth ~site)
  with
  | Some e
    when e.e_footprint <> []
         && List.for_all
              (fun c ->
                 match Hashtbl.find_opt pl.p_valid c with
                 | Some ok -> ok
                 | None -> false)
              e.e_footprint ->
    Some e
  | Some _ | None -> None
