(* Length-prefixed binary protocol of the resident analysis service.

   Frame:   u32 LE payload length, then the payload.
   Payload: u8 protocol version, u8 opcode, then opcode-specific fields
   written with the little writers below (ints as LE u32/i64, floats as
   IEEE-754 bits, strings as u32 length + bytes, options as a u8 tag).

   Both sides parse defensively: a malformed or oversized frame surfaces
   as a typed error, never as an exception escaping the connection
   handler. *)

type reject_reason = Busy | Shutting_down

let reject_to_string = function
  | Busy -> "busy: admission queue timed out"
  | Shutting_down -> "shutting down"

type cache_state = Hit | Delta | Miss

let cache_to_string = function
  | Hit -> "hit"
  | Delta -> "delta"
  | Miss -> "miss"

type request =
  | Analyze of {
      spec : Appspec.t;
      snapshot : string option;
      time_limit_ms : float option;
    }
  | Query of {
      spec : Appspec.t;
      snapshot : string option;
      kind : string;
      operand : string;
    }
  | Stats
  | Shutdown

type response =
  | Analyzed of { text : string; cache : cache_state; wall_us : float }
  | Queried of { total : int; lines : string list; wall_us : float }
  | Stats_json of string
  | Rejected of reject_reason
  | Shutdown_ok
  | Error of string

let version = 1

(* A frame larger than this is a protocol violation, not a big request. *)
let max_frame = 16 * 1024 * 1024

(* -- payload writer -------------------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  w_u8 b v;
  w_u8 b (v lsr 8);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 24)

let w_i64 b v = Buffer.add_int64_le b v
let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    w b v

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

let w_spec b (s : Appspec.t) =
  w_i64 b (Int64.of_int s.Appspec.seed);
  w_f64 b s.Appspec.size_mb;
  w_u8 b (if s.Appspec.insecure then 1 else 0);
  w_f64 b s.Appspec.mutate_pct;
  w_list
    (fun b (sh, sk) ->
       w_str b sh;
       w_str b sk)
    b s.Appspec.plants

(* -- payload reader -------------------------------------------------- *)

exception Bad of string

type cursor = { buf : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.buf then raise (Bad "truncated payload")

let r_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  let a = r_u8 c in
  let b = r_u8 c in
  let d = r_u8 c in
  let e = r_u8 c in
  a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24)

let r_i64 c =
  need c 8;
  let v = String.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let r_f64 c = Int64.float_of_bits (r_i64 c)

let r_str c =
  let n = r_u32 c in
  if n < 0 || n > max_frame then raise (Bad "oversized string");
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_opt r c =
  match r_u8 c with
  | 0 -> None
  | 1 -> Some (r c)
  | _ -> raise (Bad "bad option tag")

let r_list r c =
  let n = r_u32 c in
  if n < 0 || n > 65536 then raise (Bad "oversized list");
  List.init n (fun _ -> r c)

let r_spec c =
  let seed = Int64.to_int (r_i64 c) in
  let size_mb = r_f64 c in
  let insecure = r_u8 c = 1 in
  let mutate_pct = r_f64 c in
  let plants =
    r_list
      (fun c ->
         let sh = r_str c in
         let sk = r_str c in
         (sh, sk))
      c
  in
  { Appspec.seed; size_mb; plants; insecure; mutate_pct }

(* -- messages -------------------------------------------------------- *)

let encode_request req =
  let b = Buffer.create 64 in
  w_u8 b version;
  (match req with
   | Analyze { spec; snapshot; time_limit_ms } ->
     w_u8 b 1;
     w_spec b spec;
     w_opt w_str b snapshot;
     w_opt w_f64 b time_limit_ms
   | Query { spec; snapshot; kind; operand } ->
     w_u8 b 2;
     w_spec b spec;
     w_opt w_str b snapshot;
     w_str b kind;
     w_str b operand
   | Stats -> w_u8 b 3
   | Shutdown -> w_u8 b 4);
  Buffer.contents b

let encode_response resp =
  let b = Buffer.create 64 in
  w_u8 b version;
  (match resp with
   | Analyzed { text; cache; wall_us } ->
     w_u8 b 10;
     w_str b text;
     w_u8 b (match cache with Hit -> 0 | Delta -> 1 | Miss -> 2);
     w_f64 b wall_us
   | Queried { total; lines; wall_us } ->
     w_u8 b 11;
     w_u32 b total;
     w_list w_str b lines;
     w_f64 b wall_us
   | Stats_json s ->
     w_u8 b 12;
     w_str b s
   | Rejected r ->
     w_u8 b 13;
     w_u8 b (match r with Busy -> 0 | Shutting_down -> 1)
   | Shutdown_ok -> w_u8 b 14
   | Error msg ->
     w_u8 b 15;
     w_str b msg);
  Buffer.contents b

let check_version c =
  let v = r_u8 c in
  if v <> version then
    raise (Bad (Printf.sprintf "protocol version %d (want %d)" v version))

let decode_request s =
  let c = { buf = s; pos = 0 } in
  try
    check_version c;
    let req =
      match r_u8 c with
      | 1 ->
        let spec = r_spec c in
        let snapshot = r_opt r_str c in
        let time_limit_ms = r_opt r_f64 c in
        Analyze { spec; snapshot; time_limit_ms }
      | 2 ->
        let spec = r_spec c in
        let snapshot = r_opt r_str c in
        let kind = r_str c in
        let operand = r_str c in
        Query { spec; snapshot; kind; operand }
      | 3 -> Stats
      | 4 -> Shutdown
      | op -> raise (Bad (Printf.sprintf "unknown request opcode %d" op))
    in
    if c.pos <> String.length s then raise (Bad "trailing bytes");
    Ok req
  with Bad m -> Result.Error m

let decode_response s =
  let c = { buf = s; pos = 0 } in
  try
    check_version c;
    let resp =
      match r_u8 c with
      | 10 ->
        let text = r_str c in
        let cache =
          match r_u8 c with
          | 0 -> Hit
          | 1 -> Delta
          | 2 -> Miss
          | t -> raise (Bad (Printf.sprintf "bad cache tag %d" t))
        in
        let wall_us = r_f64 c in
        Analyzed { text; cache; wall_us }
      | 11 ->
        let total = r_u32 c in
        let lines = r_list r_str c in
        let wall_us = r_f64 c in
        Queried { total; lines; wall_us }
      | 12 -> Stats_json (r_str c)
      | 13 ->
        (match r_u8 c with
         | 0 -> Rejected Busy
         | 1 -> Rejected Shutting_down
         | t -> raise (Bad (Printf.sprintf "bad reject tag %d" t)))
      | 14 -> Shutdown_ok
      | 15 -> Error (r_str c)
      | op -> raise (Bad (Printf.sprintf "unknown response opcode %d" op))
    in
    if c.pos <> String.length s then raise (Bad "trailing bytes");
    Ok resp
  with Bad m -> Result.Error m

(* -- framing over fds ------------------------------------------------ *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  let hdr = Buffer.create 4 in
  w_u32 hdr n;
  let msg = Buffer.contents hdr ^ payload in
  write_all fd msg 0 (String.length msg)

(* [None] on clean EOF at a frame boundary. *)
let read_frame fd =
  let read_exact n =
    let buf = Bytes.create n in
    let rec go off =
      if off = n then Some (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> if off = 0 then None else raise (Bad "truncated frame")
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0
  in
  match read_exact 4 with
  | None -> Ok None
  | Some hdr ->
    let c = { buf = hdr; pos = 0 } in
    let n = r_u32 c in
    if n < 0 || n > max_frame then
      Result.Error (Printf.sprintf "frame length %d out of bounds" n)
    else begin
      match read_exact n with
      | Some payload -> Ok (Some payload)
      | None -> Result.Error "truncated frame"
      | exception Bad m -> Result.Error m
    end
  | exception Bad m -> Result.Error m

let send_request fd req = write_frame fd (encode_request req)
let send_response fd resp = write_frame fd (encode_response resp)

let recv_request fd =
  match read_frame fd with
  | Ok None -> `Eof
  | Ok (Some payload) ->
    (match decode_request payload with
     | Ok req -> `Ok req
     | Result.Error m -> `Err m)
  | Result.Error m -> `Err m
  | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)

let recv_response fd =
  match read_frame fd with
  | Ok None -> Result.Error "connection closed"
  | Ok (Some payload) -> decode_response payload
  | Result.Error m -> Result.Error m
  | exception Unix.Unix_error (e, _, _) ->
    Result.Error (Unix.error_message e)
