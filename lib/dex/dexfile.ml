(** A disassembled (and, if multidex, merged) dex file: the flat array of
    plaintext lines that the bytecode search engine scans, each line tagged
    with its enclosing method, plus the compact hit {!Arena} the engine's
    per-category postings index into and the per-class {!Classmap} the delta
    snapshot path diffs against. *)

type t = {
  lines : Disasm.line array;
  arena : Arena.t;
  program : Ir.Program.t;
  classmap : Classmap.t;
  texts : Textstore.t option;
      (** off-heap line texts of a snapshot-loaded dexfile; [None] when the
          lines were disassembled in-process and carry their own strings *)
}

let of_lines lines program =
  let arena =
    Obs.Span.with_span ~cat:"dex" ~name:"arena"
      ~attrs:[ ("lines", Obs.Span.Int (Array.length lines)) ]
      (fun () -> Arena.of_lines lines)
  in
  let classmap =
    Obs.Span.with_span ~cat:"dex" ~name:"classmap" (fun () ->
        Classmap.of_lines lines arena program)
  in
  { lines; arena; program; classmap; texts = None }

(** A dexfile whose line texts live in an off-heap {!Textstore} (a snapshot
    load).  Line records start at {!Textstore.pending} and materialise
    lazily through {!line_text}. *)
let of_store ?(classmap = Classmap.empty) lines arena program texts =
  { lines; arena; program; classmap; texts = Some texts }

(** A dexfile with no plaintext: the placeholder a warm start installs
    before a snapshot load supplies the real lines and arena, so app
    generation can skip disassembly entirely. *)
let empty p =
  { lines = [||]; arena = Arena.of_lines [||]; program = p;
    classmap = Classmap.empty; texts = None }

let of_program p =
  let lines =
    Obs.Span.with_span ~cat:"dex" ~name:"disasm" (fun () ->
        Array.of_list (Disasm.program_lines p))
  in
  of_lines lines p

(** Emulate multidex: disassemble each classesN.dex partition separately and
    merge the plaintexts, as BackDroid's preprocessing step does. *)
let of_partitions p partitions =
  let part_lines part =
    List.concat_map
      (fun cls_name ->
         match Ir.Program.find_class p cls_name with
         | Some c when not c.Ir.Jclass.is_system -> Disasm.class_lines c
         | Some _ | None -> [])
      part
  in
  of_lines (Array.of_list (List.concat_map part_lines partitions)) p

let line_count t = Array.length t.lines

(* Lazy, idempotent materialization: a racing domain writes an equal string
   (same store bytes), so either winner is correct. *)
let line_text t i =
  let l = t.lines.(i) in
  let s = l.Disasm.text in
  if s != Textstore.pending then s
  else
    match t.texts with
    | None -> s
    | Some store ->
      let s = Textstore.get store i in
      l.Disasm.text <- s;
      s

let to_string t =
  let buf = Buffer.create (64 * Array.length t.lines) in
  Array.iteri
    (fun i _ ->
       Buffer.add_string buf (line_text t i);
       Buffer.add_char buf '\n')
    t.lines;
  Buffer.contents buf
