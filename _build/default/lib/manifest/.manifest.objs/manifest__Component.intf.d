lib/manifest/component.mli:
