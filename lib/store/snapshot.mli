(** Persistent preprocessing snapshots (warm-start store).

    A snapshot captures everything the preprocessing phase computes from a
    program — the interned symbol table, the disassembled plaintext lines,
    the hit {!Dex.Arena} and all seven per-category search postings — in one
    {!Codec} container, so a warm start maps it back instead of
    disassembling and indexing again.  Int-array payloads load as mmapped
    {!Ivec.t}s: they live off the OCaml heap, so the warm path also carries
    less GC pressure than a cold build.

    Symbol ids are snapshot-stable.  Save writes the whole live symbol
    table; load re-interns its strings in id order.  In the common case
    (fresh process, same pipeline) this reproduces identical ids and the
    mapped vectors are used as-is; otherwise load rewrites the arena's sym
    column in place (the mappings are private, copy-on-write) and permutes
    the postings to live ids, so a warm engine always returns hits
    byte-identical to a cold one.

    Loaded plaintext lines carry [K_none]/no tokens (the postings that
    needed them are already built), which only matters if a snapshot
    dexfile were re-indexed from scratch — it never is. *)

(** [default_path ~dir ~app_id] is the conventional snapshot location:
    [dir]/[sanitized app_id].v[format_version].bdix.  The version is baked
    into the name so a format bump cold-starts instead of failing the
    version check. *)
val default_path : dir:string -> app_id:string -> string

(** Serialize [engine]'s symbol table, dexfile lines, arena and all seven
    postings categories (building any not yet built) to [path], atomically.
    Returns the file size in bytes.

    [format_version] (default {!Codec.format_version}, i.e. v2) selects the
    payload encoding: v2 compresses each postings run with
    {!Bytesearch.Postcodec} (varint deltas / bitmap words — several times
    smaller on disk and decoded on demand after load); passing [1] writes
    the legacy flat-slot layout, kept so version-skew tests (and downgrade
    paths) can produce v1 files.  Save -> load -> save is byte-identical at
    either version.

    [ruleset_hash] (default: the engine's own
    {!Bytesearch.Engine.ruleset_stamp}, if any) records the detection-rule-set
    content hash the snapshot was produced under; {!load} stamps it back
    onto the warm engine so an analysis under a different rule set notices
    the change instead of silently trusting warm state. *)
val save :
  ?format_version:int ->
  ?ruleset_hash:int ->
  path:string ->
  Bytesearch.Engine.t ->
  int

(** [load ?prefault ~path program] maps the snapshot at [path] back into a
    ready engine over [program] (which supplies the analysis-side IR; the
    snapshot supplies everything search-side).  Both v1 and v2 files load; v2 postings stay compressed
    (the engine decodes runs on demand) and v2 line texts stay in the
    mapped blob (materialised lazily per returned hit).  Validates
    structure fully before use — every coded run is walked and
    range-checked — so a damaged file yields a typed {!Codec.error}, never
    a crash or a silently wrong engine.

    [prefault] (default false) touches every page of the mapped hot
    sections — arena columns, postings, line texts — before returning,
    moving page-fault cost from the first queries into the load. *)
val load :
  ?prefault:bool ->
  path:string ->
  Ir.Program.t ->
  (Bytesearch.Engine.t, Codec.error) result
