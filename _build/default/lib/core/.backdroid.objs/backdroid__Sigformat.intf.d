lib/core/sigformat.mli: Ir
