type error =
  | Bad_magic
  | Bad_version of int
  | Truncated
  | Bad_checksum
  | Corrupt of string

let error_to_string = function
  | Bad_magic -> "bad magic (not a snapshot file)"
  | Bad_version v -> Printf.sprintf "unsupported format version %d" v
  | Truncated -> "truncated file"
  | Bad_checksum -> "checksum mismatch"
  | Corrupt what -> Printf.sprintf "corrupt snapshot: %s" what

let magic = "BDIXSNAP"

(* v1: flat postings slots, heap line texts.  v2: Postcodec-compressed
   postings runs and off-heap line texts.  The container layout is identical
   across versions — only section payloads differ — so one reader serves
   both; [Snapshot.load] dispatches on {!version}. *)
let format_version = 2
let min_format_version = 1
let header_len = 32
let checksum_offset = 24

let fnv_offset = 0xcbf29ce484222325L

let fnv1a64 ?(pos = 0) ?len (b : bytes) =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  let h = ref fnv_offset in
  (* fold native-endian 64-bit words, not bytes: checksummed regions are
     8-aligned by construction and the 8x shorter loop keeps validation off
     the warm path's critical time.  Native order means the reader can fold
     an mmapped int64 view directly; a snapshot carried across endianness
     fails the checksum and rebuilds cold, which is the documented contract
     for these per-host caches. *)
  let words = len / 8 in
  for i = 0 to words - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Bytes.get_int64_ne b (pos + (i * 8))))
        0x100000001b3L
  done;
  for i = pos + (words * 8) to pos + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        0x100000001b3L
  done;
  !h

(* -- Writing --------------------------------------------------------- *)

type pending = { p_id : int; p_payload : string }

type writer = { mutable sections : pending list (* reversed *) }

let writer () = { sections = [] }

let add w id payload =
  if List.exists (fun p -> p.p_id = id) w.sections then
    invalid_arg "Codec.add: duplicate section id";
  w.sections <- { p_id = id; p_payload = payload } :: w.sections

let ivec_payload v =
  let n = Ivec.length v in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_ne b (i * 8) (Int64.of_int (Ivec.unsafe_get v i))
  done;
  Bytes.unsafe_to_string b

let ints_payload a =
  let n = Array.length a in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_ne b (i * 8) (Int64.of_int (Array.unsafe_get a i))
  done;
  Bytes.unsafe_to_string b

let add_ivec w ~id v = add w id (ivec_payload v)
let add_ints w ~id a = add w id (ints_payload a)
let add_blob w ~id s = add w id s

let align8 n = (n + 7) land lnot 7

let write_file ?(version = format_version) w ~path =
  if version < min_format_version || version > format_version then
    invalid_arg "Codec.write_file: unsupported version";
  let sections = List.rev w.sections in
  let n = List.length sections in
  let dir_len = n * 24 in
  (* assign payload offsets, 8-aligned *)
  let off = ref (header_len + dir_len) in
  let placed =
    List.map
      (fun p ->
         let o = align8 !off in
         off := o + String.length p.p_payload;
         (p, o))
      sections
  in
  let total = align8 !off in
  let b = Bytes.make total '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_le b 8 (Int32.of_int version);
  Bytes.set_int32_le b 12 (Int32.of_int n);
  Bytes.set_int64_le b 16 (Int64.of_int total);
  List.iteri
    (fun i (p, o) ->
       let e = header_len + (i * 24) in
       Bytes.set_int64_le b e (Int64.of_int p.p_id);
       Bytes.set_int64_le b (e + 8) (Int64.of_int o);
       Bytes.set_int64_le b (e + 16)
         (Int64.of_int (String.length p.p_payload));
       Bytes.blit_string p.p_payload 0 b o (String.length p.p_payload))
    placed;
  Bytes.set_int64_le b checksum_offset
    (fnv1a64 ~pos:header_len ~len:(total - header_len) b);
  let tmp = path ^ ".tmp" in
  let oc = Out_channel.open_bin tmp in
  Fun.protect ~finally:(fun () -> Out_channel.close oc) (fun () ->
      Out_channel.output_bytes oc b);
  Sys.rename tmp path;
  total

(* -- Reading --------------------------------------------------------- *)

type section = { s_off : int; s_len : int }

(* concrete element types matter below: helpers over bigarrays must be
   annotated or they infer polymorphic kinds and compile to the generic
   (boxing) access path — ~12x slower on the checksum loop *)
type word_map = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
type char_map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type reader = {
  fd : Unix.file_descr;
  r_size : int;
  r_version : int;
  words : word_map;
      (* whole file mapped as native 64-bit words: checksum + blob copies *)
  chars : char_map;
      (* same mapping, byte granularity: header fields + unaligned tails *)
  dir : (int, section) Hashtbl.t;
}

let ( let* ) = Result.bind

let byte (chars : char_map) i = Char.code (Bigarray.Array1.get chars i)

let le32 chars off =
  byte chars off
  lor (byte chars (off + 1) lsl 8)
  lor (byte chars (off + 2) lsl 16)
  lor (byte chars (off + 3) lsl 24)

let le64 chars off =
  let lo = le32 chars off and hi = le32 chars (off + 4) in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

(* Equal to [fnv1a64 ~pos:header_len ~len:(size - header_len)] over the file
   bytes, but folding the mapped word view directly — no read(2), no copy. *)
let checksum_mapped (words : word_map) (chars : char_map) ~size =
  let h = ref fnv_offset in
  let nw = size / 8 in
  for i = header_len / 8 to nw - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Bigarray.Array1.unsafe_get words i))
        0x100000001b3L
  done;
  for i = nw * 8 to size - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h
           (Int64.of_int (Char.code (Bigarray.Array1.unsafe_get chars i))))
        0x100000001b3L
  done;
  !h

let read_file ~path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Corrupt (Printf.sprintf "cannot open %s: %s" path
                      (Unix.error_message e)))
  | fd ->
    let fail e = Unix.close fd; Error e in
    let size = (Unix.fstat fd).Unix.st_size in
    if size < header_len then fail Truncated
    else begin
      match
        ( Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.int64 Bigarray.c_layout false
               [| size / 8 |]),
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false
               [| size |]) )
      with
      | exception Unix.Unix_error (e, _, _) ->
        fail
          (Corrupt (Printf.sprintf "mmap failed: %s" (Unix.error_message e)))
      | words, chars ->
        let magic_ok =
          let ok = ref true in
          for i = 0 to 7 do
            if Bigarray.Array1.get chars i <> magic.[i] then ok := false
          done;
          !ok
        in
        if not magic_ok then fail Bad_magic
        else
          let version = le32 chars 8 in
          if version < min_format_version || version > format_version then
            fail (Bad_version version)
          else if Int64.to_int (le64 chars 16) <> size then fail Truncated
          else if
            not
              (Int64.equal (le64 chars checksum_offset)
                 (checksum_mapped words chars ~size))
          then fail Bad_checksum
          else begin
            let n = le32 chars 12 in
            if n < 0 || header_len + (n * 24) > size then
              fail (Corrupt "directory exceeds file")
            else begin
              let dir = Hashtbl.create (2 * n) in
              let bad = ref None in
              for i = 0 to n - 1 do
                let e = header_len + (i * 24) in
                let id = Int64.to_int (le64 chars e) in
                let off = Int64.to_int (le64 chars (e + 8)) in
                let len = Int64.to_int (le64 chars (e + 16)) in
                if off < header_len + (n * 24) || len < 0
                   || off + len > size || off land 7 <> 0
                then
                  bad :=
                    Some
                      (Corrupt
                         (Printf.sprintf "section %d out of bounds" id))
                else if Hashtbl.mem dir id then
                  bad :=
                    Some
                      (Corrupt (Printf.sprintf "duplicate section %d" id))
                else Hashtbl.replace dir id { s_off = off; s_len = len }
              done;
              match !bad with
              | Some e -> fail e
              | None ->
                Ok { fd; r_size = size; r_version = version; words; chars;
                     dir }
            end
          end
    end

let size r = r.r_size
let version r = r.r_version

let mem r ~id = Hashtbl.mem r.dir id

let section r id =
  match Hashtbl.find_opt r.dir id with
  | Some s -> Ok s
  | None -> Error (Corrupt (Printf.sprintf "missing section %d" id))

let map_ivec r ~id =
  let* s = section r id in
  if s.s_len land 7 <> 0 then
    Error (Corrupt (Printf.sprintf "section %d is not an int vector" id))
  else
    let n = s.s_len / 8 in
    let g =
      Unix.map_file r.fd ~pos:(Int64.of_int s.s_off) Bigarray.int
        Bigarray.c_layout false [| n |]
    in
    Ok (Bigarray.array1_of_genarray g)

(* No-copy byte view of a section: a sub of the file's private char mapping.
   Like [map_ivec] views, it stays valid after [close] and writes are
   copy-on-write. *)
let map_bytes r ~id =
  let* s = section r id in
  Ok (Bigarray.Array1.sub r.chars s.s_off s.s_len)

(* Copy a word at a time out of the mapping (offsets are 8-aligned by the
   directory check); the sub-word tail goes byte-wise. *)
let read_blob r ~id =
  let* s = section r id in
  let b = Bytes.create s.s_len in
  let wbase = s.s_off / 8 in
  let nw = s.s_len / 8 in
  for i = 0 to nw - 1 do
    Bytes.set_int64_ne b (i * 8)
      (Bigarray.Array1.unsafe_get r.words (wbase + i))
  done;
  for i = nw * 8 to s.s_len - 1 do
    Bytes.set b i (Bigarray.Array1.unsafe_get r.chars (s.s_off + i))
  done;
  Ok (Bytes.unsafe_to_string b)

let close r = try Unix.close r.fd with Unix.Unix_error _ -> ()
