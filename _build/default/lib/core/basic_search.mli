(** The basic signature-based search (Sec. IV-A): locate callers of static,
    private and constructor methods by searching the dexdump plaintext for
    the callee's (translated) signature — plus the child-class signature
    expansion for methods that may be invoked through a non-overloading
    child class. *)

type call_site = {
  caller : Ir.Jsig.meth;
  site : int;
  invoke : Ir.Expr.invoke;
}

(** Step 4 of Fig. 3: the quick forward analysis over the caller body that
    pins down the actual call site(s) matching [search_cls]/[callee]. *)
val find_call_sites :
  Ir.Program.t ->
  caller:Ir.Jsig.meth ->
  callee:Ir.Jsig.meth -> search_cls:String.t -> call_site list

(** Search signatures to try for [callee]: its own, plus — when the callee is
    neither static, private nor a constructor — the signature relocated onto
    every transitive child class that does not overload it (Sec. IV-A,
    "Searching over a child class"). *)
val search_classes : Ir.Program.t -> Ir.Jsig.meth -> string list

(** Run the basic search: one bytecode search per candidate signature, then
    call-site recovery in the program space.  Results are deduplicated. *)
val callers : Bytesearch.Engine.t -> Ir.Jsig.meth -> call_site list
