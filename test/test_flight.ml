(* Tests for the always-on diagnostics layer: the per-domain Ring storage,
   the Flight recorder (record, dump, parse/validate round-trip, anomaly
   auto-dump on partial outcomes), the per-sink Provenance ledger
   (presence on every report, replay distinction, determinism across pool
   widths, render stability), the OpenMetrics exposition with its strict
   validator, histogram quantiles, and Chrome 'C' counter events. *)

module Pool = Parallel.Pool
module G = Appgen.Generator
module Driver = Backdroid.Driver
module Provenance = Backdroid.Provenance

(* Every test that records restores the global default state (no sink,
   metrics zeroed, flight ring empty and re-enabled) so order is moot. *)
let with_clean_obs f =
  Obs.Span.set_sink None;
  Obs.Metrics.reset ();
  Obs.Flight.reset ();
  Obs.Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
        Obs.Span.set_sink None;
        Obs.Metrics.set_enabled true;
        Obs.Metrics.reset ();
        Obs.Flight.set_enabled true;
        Obs.Flight.reset ())
    f

let fixture_app ?(seed = 11) () =
  let rng = Appgen.Rng.create (seed * 31) in
  let plants =
    List.init 6 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.5)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.flight.app%d" seed;
      filler_classes = 30;
      plants }

(* ------------------------------------------------------------------ *)
(* Ring: wrap-around semantics, single domain and across a pool         *)

let test_ring_wraps () =
  let r = Obs.Ring.create ~capacity:16 () in
  Alcotest.(check int) "capacity floor applied" 16 (Obs.Ring.capacity r);
  for i = 1 to 10 do Obs.Ring.push r i done;
  Alcotest.(check (list int)) "growth phase keeps everything, oldest first"
    (List.init 10 (fun i -> i + 1))
    (Obs.Ring.snapshot r);
  for i = 11 to 40 do Obs.Ring.push r i done;
  Alcotest.(check int) "retained clamps at capacity" 16 (Obs.Ring.length r);
  Alcotest.(check int) "total counts every push" 40 (Obs.Ring.total r);
  Alcotest.(check int) "overwritten = total - retained" 24
    (Obs.Ring.overwritten r);
  Alcotest.(check (list int)) "wrap retains the most recent, oldest first"
    (List.init 16 (fun i -> i + 25))
    (Obs.Ring.snapshot r);
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties retention" 0 (Obs.Ring.length r);
  Alcotest.(check int) "clear resets the push count" 0 (Obs.Ring.total r)

let test_ring_across_pool () =
  let r = Obs.Ring.create ~capacity:16 () in
  let n = 64 and per = 25 in
  ignore
    (Pool.with_pool ~jobs:4 (fun pool ->
         Pool.parallel_map pool
           (fun k ->
              for i = 0 to per - 1 do
                Obs.Ring.push r ((k * 1000) + i)
              done;
              k)
           (Array.init n (fun i -> i))));
  Alcotest.(check int) "every push counted across shards" (n * per)
    (Obs.Ring.total r);
  let snap = Obs.Ring.snapshot r in
  Alcotest.(check int) "snapshot matches retained length"
    (Obs.Ring.length r) (List.length snap);
  Alcotest.(check bool) "each shard retains at most capacity" true
    (Obs.Ring.length r <= n * per);
  (* every retained item is a real push, and each shard's retention is the
     tail of some task's sequence (values within a task were pushed in
     order, so a retained early index implies its task pushed nothing
     newer on that shard before it survived) *)
  List.iter
    (fun v ->
       let k = v / 1000 and i = v mod 1000 in
       Alcotest.(check bool)
         (Printf.sprintf "retained item %d is a real push" v)
         true
         (k >= 0 && k < n && i >= 0 && i < per))
    snap

(* ------------------------------------------------------------------ *)
(* Flight: record, dump render/parse round-trip, enable toggle          *)

let test_flight_record_roundtrip () =
  with_clean_obs (fun () ->
      Obs.Flight.record ~kind:"span" ~name:"slice"
        ~attrs:[ ("work", Obs.Span.Int 7) ] ();
      Obs.Flight.counter_sample ~name:"driver.sink_calls" 3.0;
      Obs.Flight.anomaly ~kind:"test" ~name:"synthetic" ();
      Alcotest.(check int) "three events retained" 3 (Obs.Flight.length ());
      Alcotest.(check int) "anomaly counted" 1 (Obs.Flight.anomalies ());
      let evs = Obs.Flight.events () in
      (match Obs.Flight.validate evs with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("stream invalid: " ^ e));
      Alcotest.(check bool) "anomaly kind prefixed" true
        (List.exists (fun e -> e.Obs.Flight.ev_kind = "anomaly.test") evs);
      Alcotest.(check bool) "render/parse round-trip" true
        (Obs.Flight.round_trips evs);
      Obs.Flight.set_enabled false;
      Obs.Flight.record ~kind:"span" ~name:"ignored" ();
      Alcotest.(check int) "disabled recorder drops" 3 (Obs.Flight.length ()))

(* A budget-exhausted slice must auto-write a valid dump to the armed
   path — the end-to-end "black box survives the incident" property. *)
let test_flight_dump_on_partial () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      let path = Filename.temp_file "backdroid_flight" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
           Obs.Flight.arm_auto_dump path;
           let cfg =
             { Driver.default_config with
               Driver.budget =
                 { Backdroid.Context.default_budget with
                   Backdroid.Context.max_work = 1 } }
           in
           let r =
             Driver.analyze ~cfg ~dex:app.G.dex ~manifest:app.G.manifest ()
           in
           Alcotest.(check bool) "fixture exhausts the tiny budget" true
             (r.Driver.stats.Driver.partial_sinks > 0);
           Alcotest.(check bool) "anomalies recorded" true
             (Obs.Flight.anomalies () > 0);
           let dump =
             In_channel.with_open_text path (fun ic ->
                 In_channel.input_all ic)
           in
           Alcotest.(check bool) "dump written" true
             (String.length dump > 0);
           match Obs.Flight.parse dump with
           | Error e -> Alcotest.fail ("dump does not parse: " ^ e)
           | Ok evs ->
             (match Obs.Flight.validate evs with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("dump invalid: " ^ e));
             Alcotest.(check bool) "dump holds the anomaly event" true
               (List.exists
                  (fun e ->
                     String.length e.Obs.Flight.ev_kind > 8
                     && String.sub e.Obs.Flight.ev_kind 0 8 = "anomaly.")
                  evs)))

(* ------------------------------------------------------------------ *)
(* Provenance: presence, replay distinction, determinism, stability     *)

let test_provenance_on_reports () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      let r = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
      Alcotest.(check bool) "fixture has reports" true
        (r.Driver.reports <> []);
      let fresh =
        List.filter
          (fun (rep : Driver.sink_report) ->
             rep.prov.Provenance.p_source = Provenance.Fresh)
          r.Driver.reports
      in
      Alcotest.(check bool) "cold run slices at least one sink fresh" true
        (fresh <> []);
      List.iter
        (fun (rep : Driver.sink_report) ->
           let p = rep.prov in
           Alcotest.(check bool) "budget caps carried" true
             (p.Provenance.p_max_work > 0 && p.Provenance.p_depth_limit > 0);
           if p.Provenance.p_source = Provenance.Fresh then begin
             Alcotest.(check bool) "fresh slice spent work" true
               (p.Provenance.p_work > 0);
             Alcotest.(check bool) "fresh slice has an SSG" true
               (p.Provenance.p_ssg_nodes > 0)
           end)
        r.Driver.reports)

let test_provenance_replay_distinct () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      let r1 = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
      let rc = Driver.export_results ~dex:app.G.dex r1 in
      let r2 =
        Driver.analyze ~results:rc ~dex:app.G.dex ~manifest:app.G.manifest ()
      in
      Alcotest.(check bool) "unchanged app replays sinks" true
        (r2.Driver.stats.Driver.replayed_sinks > 0);
      let replayed =
        List.filter
          (fun (rep : Driver.sink_report) ->
             rep.prov.Provenance.p_source = Provenance.Replayed)
          r2.Driver.reports
      in
      Alcotest.(check int) "every replayed sink is marked in its ledger"
        r2.Driver.stats.Driver.replayed_sinks
        (List.length replayed);
      List.iter
        (fun (rep : Driver.sink_report) ->
           Alcotest.(check string) "replayed ledger renders its source"
             "    source: replayed\n"
             (Provenance.render ~timing:false rep.prov))
        replayed)

let report_order_key (rep : Driver.sink_report) =
  Printf.sprintf "%s|%s|%d" rep.sink.Framework.Sinks.name
    (Ir.Jsig.meth_to_string rep.meth) rep.site

let test_provenance_jobs_deterministic () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      let keys jobs =
        Obs.Metrics.reset ();
        Obs.Flight.reset ();
        let r =
          Driver.analyze
            ~cfg:{ Driver.default_config with Driver.jobs }
            ~dex:app.G.dex ~manifest:app.G.manifest ()
        in
        List.map
          (fun (rep : Driver.sink_report) ->
             (report_order_key rep, Provenance.key rep.prov,
              Provenance.render ~timing:false rep.prov))
          r.Driver.reports
        |> List.sort compare
      in
      let k1 = keys 1 and k4 = keys 4 in
      List.iter2
        (fun (id1, key1, render1) (id4, key4, render4) ->
           Alcotest.(check string) "same report set" id1 id4;
           Alcotest.(check string) ("provenance key of " ^ id1) key1 key4;
           Alcotest.(check string) ("stable render of " ^ id1) render1
             render4)
        k1 k4)

(* ------------------------------------------------------------------ *)
(* OpenMetrics: real snapshot passes; the validator rejects malformed   *)

let test_openmetrics_valid () =
  with_clean_obs (fun () ->
      let app = fixture_app () in
      ignore (Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest ());
      let text = Obs.Export.openmetrics (Obs.Metrics.snapshot ()) in
      (match Obs.Export.validate text with
       | Ok () -> ()
       | Error e -> Alcotest.fail ("exposition rejected: " ^ e));
      Alcotest.(check bool) "prefixed counter present" true
        (let sub = "# TYPE backdroid_driver_sink_calls counter\n" in
         let rec mem i =
           i + String.length sub <= String.length text
           && (String.sub text i (String.length sub) = sub || mem (i + 1))
         in
         mem 0);
      Alcotest.(check bool) "ends with EOF marker" true
        (let tail = "# EOF\n" in
         String.length text >= String.length tail
         && String.sub text
              (String.length text - String.length tail)
              (String.length tail)
            = tail))

let test_openmetrics_rejects () =
  let reject what text =
    match Obs.Export.validate text with
    | Ok () -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  (match Obs.Export.validate "# TYPE a counter\na_total 1\n# EOF\n" with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("minimal exposition rejected: " ^ e));
  reject "a missing EOF terminator" "# TYPE a counter\na_total 1\n";
  reject "a sample before any TYPE" "a_total 1\n# EOF\n";
  reject "an interleaved family"
    "# TYPE a counter\na_total 1\n# TYPE b counter\nb_total 1\n\
     # TYPE a counter\na_total 2\n# EOF\n";
  reject "an unparseable value" "# TYPE a counter\na_total x\n# EOF\n";
  reject "content after EOF" "# TYPE a counter\na_total 1\n# EOF\nmore\n";
  reject "a counter sample with labels"
    "# TYPE a counter\na_total{l=\"v\"} 1\n# EOF\n";
  reject "a sample outside its family"
    "# TYPE a counter\nb_total 1\n# EOF\n";
  reject "an empty line" "# TYPE a counter\n\na_total 1\n# EOF\n";
  reject "a bad metric name" "# TYPE 9a counter\n9a_total 1\n# EOF\n"

(* ------------------------------------------------------------------ *)
(* Quantiles: monotone, clamped to the observed range                   *)

let test_quantiles () =
  with_clean_obs (fun () ->
      let h = Obs.Metrics.histogram "test.quantile.h" in
      for i = 1 to 1000 do
        Obs.Metrics.observe h (float_of_int i)
      done;
      let snap = Obs.Metrics.snapshot () in
      let histo = List.assoc "test.quantile.h" snap.Obs.Metrics.histograms in
      let p50 = Obs.Metrics.quantile histo 0.5
      and p90 = Obs.Metrics.quantile histo 0.9
      and p99 = Obs.Metrics.quantile histo 0.99 in
      Alcotest.(check bool) "p50 <= p90 <= p99" true (p50 <= p90 && p90 <= p99);
      List.iter
        (fun (q, v) ->
           Alcotest.(check bool)
             (Printf.sprintf "p%.0f within observed range" (100. *. q))
             true
             (v >= histo.Obs.Metrics.h_min && v <= histo.Obs.Metrics.h_max))
        [ (0.5, p50); (0.9, p90); (0.99, p99) ];
      (* the log2 buckets bound the estimate within a factor of two *)
      Alcotest.(check bool) "p50 in the right decade" true
        (p50 >= 250.0 && p50 <= 1000.0))

(* ------------------------------------------------------------------ *)
(* Chrome 'C' counter events: valid streams, round-trip                 *)

let mk_span ?(pid = 0) ?(tid = 0) ~name t0 t1 =
  { Obs.Span.cat = "t"; name; pid; tid; t0_us = t0; t1_us = t1; attrs = [] }

let test_chrome_counter_events () =
  let spans = [ mk_span ~name:"a" 0.0 100.0; mk_span ~name:"b" 10.0 40.0 ] in
  let counters =
    [ { Obs.Chrome.c_ts_us = 5.0; c_pid = 0; c_name = "driver.sink_calls";
        c_value = 3.0 };
      { Obs.Chrome.c_ts_us = 50.0; c_pid = 0; c_name = "driver.ssg_nodes";
        c_value = 17.0 } ]
  in
  let events = Obs.Chrome.events_of_spans ~counters spans in
  Alcotest.(check int) "two B/E pairs plus two counter samples" 6
    (List.length events);
  Alcotest.(check int) "counter samples carried through" 2
    (List.length
       (List.filter (fun e -> e.Obs.Chrome.e_ph = 'C') events));
  (match Obs.Chrome.validate events with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("stream with counters invalid: " ^ e));
  Alcotest.(check bool) "counter stream round-trips" true
    (Obs.Chrome.round_trips events)

let cases =
  [ Alcotest.test_case "ring wraps retaining the most recent" `Quick
      test_ring_wraps;
    Alcotest.test_case "ring shards across a pool" `Quick
      test_ring_across_pool;
    Alcotest.test_case "flight record and round-trip" `Quick
      test_flight_record_roundtrip;
    Alcotest.test_case "partial slice auto-dumps a valid flight file" `Quick
      test_flight_dump_on_partial;
    Alcotest.test_case "every report carries a ledger" `Quick
      test_provenance_on_reports;
    Alcotest.test_case "replayed sinks are distinguishable" `Quick
      test_provenance_replay_distinct;
    Alcotest.test_case "ledgers identical at jobs 1 and 4" `Quick
      test_provenance_jobs_deterministic;
    Alcotest.test_case "openmetrics exposition validates" `Quick
      test_openmetrics_valid;
    Alcotest.test_case "openmetrics validator rejects malformed" `Quick
      test_openmetrics_rejects;
    Alcotest.test_case "histogram quantiles are sane" `Quick test_quantiles;
    Alcotest.test_case "chrome counter events" `Quick
      test_chrome_counter_events ]

let suites = [ ("obs.flight", cases) ]
