test/test_searches_deep.ml: Alcotest Appgen Backdroid Builder Bytesearch Dex Expr Framework Gen Ir Jclass Jmethod Jsig List Manifest Option Printf Program QCheck QCheck_alcotest Types Value
