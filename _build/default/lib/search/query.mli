(** Typed bytecode-search commands.  Each constructor corresponds to one kind
    of raw text search BackDroid issues against the dexdump plaintext; the
    rendered command string is also the cache key. *)

type t =
    Invocation of string
  | New_instance of string
  | Const_class of string
  | Const_string of string
  | Field_access of string
  | Static_field_access of string
  | Class_use of string
  | Raw of string

(** Granularity label used for the per-category cache statistics of
    Sec. IV-F. *)
type category = Cat_caller | Cat_class | Cat_field | Cat_raw
val category : t -> category
val category_to_string : category -> string

(** Raw command string, e.g. ["grep 'invoke-.*, Lcom/foo;.m:()V'"]. *)
val to_command : t -> string
