tools/sink_sweep_probe.mli:
