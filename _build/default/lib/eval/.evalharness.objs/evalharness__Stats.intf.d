lib/eval/stats.mli:
