lib/core/lifecycle_search.mli: Ir Manifest
