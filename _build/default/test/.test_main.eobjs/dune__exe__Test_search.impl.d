test/test_search.ml: Alcotest Bytesearch Dex Expr Gen Ir Jclass Jsig List Printf QCheck QCheck_alcotest String Types
