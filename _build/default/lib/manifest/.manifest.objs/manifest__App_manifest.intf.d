lib/manifest/app_manifest.mli: Component Ir String
