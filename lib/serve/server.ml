(* backdroidd: the resident analysis service.

   One accept thread multiplexes the Unix-domain (and optional TCP)
   listeners through [Unix.select] together with a self-pipe, so signal-
   driven shutdown wakes it immediately.  Each connection gets a systhread
   that reads frames sequentially; the CPU-heavy work of a request is
   dispatched onto the worker-domain pool ([Parallel.Pool.async]) and the
   connection thread waits for the completion cell — systhreads on one
   domain serialize, worker domains do not.

   Analyze/query requests resolve a resident session through the
   {!Enginecache} LRU: hits serve straight off the prefaulted engine
   (replaying persisted sink results where the classmap says nothing
   changed), a same-key spec change delta-patches the resident engine in
   place, and misses load via [Snapshot.load ~prefault:true] (or build
   cold), evicting LRU entries under the resident ceilings. *)

module G = Appgen.Generator
module D = Backdroid.Driver

type config = {
  socket : string;
  tcp : (string * int) option;
  jobs : int;
  max_resident : int;
  max_resident_mb : float;
  max_inflight : int;
  queue_timeout_ms : float;
  drain_timeout_ms : float;
  rules : Rules.Rule.t list;
  budget : Backdroid.Context.budget;
}

let default_config =
  { socket = "backdroid.sock";
    tcp = None;
    jobs = 1;
    max_resident = 4;
    max_resident_mb = 512.0;
    max_inflight = 8;
    queue_timeout_ms = 200.0;
    drain_timeout_ms = 5000.0;
    rules = D.default_config.D.rules;
    budget = D.default_config.D.budget }

type t = {
  cfg : config;
  pool : Parallel.Pool.t;
  cache : Enginecache.t;
  adm : Admission.t;
  ruleset_hash : int;
  listeners : Unix.file_descr list;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  started_at : float;
  conn_mutex : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  (* request counters (under [conn_mutex]) *)
  mutable n_analyze : int;
  mutable n_query : int;
  mutable n_stats : int;
  mutable n_errors : int;
}

let m_requests = Obs.Metrics.counter "serve.requests"
let m_rejected = Obs.Metrics.counter "serve.rejected"
let m_errors = Obs.Metrics.counter "serve.errors"
let h_analyze_us = Obs.Metrics.histogram "serve.analyze_us"
let h_query_us = Obs.Metrics.histogram "serve.query_us"

(* -- socket hygiene -------------------------------------------------- *)

(* Probe a pre-existing socket file: a live listener means another daemon
   owns the path (refuse to start); a dead one is stale debris from an
   unclean exit (unlink and take over). *)
let claim_socket path =
  if not (Sys.file_exists path) then Ok ()
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let outcome =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        -> `Stale
      | exception Unix.Unix_error (e, _, _) -> `Err (Unix.error_message e)
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match outcome with
    | `Live ->
      Result.Error
        (Printf.sprintf
           "%s: a live backdroidd is already listening; refusing to start"
           path)
    | `Stale ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    | `Err m -> Result.Error (Printf.sprintf "%s: cannot probe socket: %s" path m)
  end

(* -- dispatching CPU work to the worker domains ---------------------- *)

(* Run [f] on a pool worker and wait for the result; connection threads
   live on domain 0, so running analyses there would serialize them. *)
let on_pool pool f =
  if Parallel.Pool.jobs pool = 1 then f ()
  else begin
    let m = Mutex.create () in
    let c = Condition.create () in
    let cell = ref None in
    Parallel.Pool.async pool (fun () ->
        let r =
          try Ok (f ())
          with e -> Result.Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock m;
        cell := Some r;
        Condition.signal c;
        Mutex.unlock m);
    Mutex.lock m;
    while Option.is_none !cell do
      Condition.wait c m
    done;
    Mutex.unlock m;
    match Option.get !cell with
    | Ok v -> v
    | Result.Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end

(* -- session resolution ---------------------------------------------- *)

exception Reject of string

let cache_key t ~snapshot spec =
  match snapshot with
  | Some path ->
    let stamp =
      match Unix.stat path with
      | st -> Printf.sprintf "%d:%.6f" st.Unix.st_size st.Unix.st_mtime
      | exception Unix.Unix_error _ -> "absent"
    in
    Printf.sprintf "snap:%s|%s|%d" path stamp t.ruleset_hash
  | None ->
    Printf.sprintf "app:%s|%d" (Appspec.fingerprint spec) t.ruleset_hash

let generate ?build_dex spec =
  match Appspec.generate ?build_dex spec with
  | Ok app -> app
  | Result.Error m -> raise (Reject m)

let snapshot_fresh engine program =
  let cm = (Bytesearch.Engine.dexfile engine).Dex.Dexfile.classmap in
  Dex.Classmap.length cm > 0
  &&
  let n = ref 0 in
  Ir.Program.fold_classes program
    (fun (c : Ir.Jclass.t) ok ->
       if c.Ir.Jclass.is_system then ok
       else begin
         incr n;
         ok
         && Dex.Classmap.ir_hash_of cm c.Ir.Jclass.name
            = Some (Ir.Irhash.jclass c)
       end)
    true
  && !n = Dex.Classmap.length cm

let driver_cfg t = { D.default_config with D.rules = t.cfg.rules;
                     jobs = t.cfg.jobs; budget = t.cfg.budget }

let load_results path =
  match Store.Snapshot.load_results ~path with
  | Ok [||] -> None
  | Ok strs ->
    (match Backdroid.Resultcache.of_strings strs with
     | Ok rc -> Some rc
     | Result.Error msg ->
       Backdroid.Log.warn (fun m ->
           m "ignoring malformed result cache in %s: %s" path msg);
       None)
  | Result.Error _ -> None

(* A cache miss: load the snapshot (prefaulted) when one exists, build
   cold otherwise — saving a fresh snapshot to the requested path so the
   next daemon start warm-loads it. *)
let load_session t ~snapshot spec =
  let cfg = driver_cfg t in
  let open_with ?engine ?results (app : G.app) =
    D.open_session ~cfg ~pool:t.pool ?engine ?results ~dex:app.G.dex
      ~manifest:app.G.manifest ()
  in
  match snapshot with
  | Some path when Sys.file_exists path ->
    let app = generate ~build_dex:false spec in
    (match Store.Snapshot.load ~prefault:true ~path app.G.program with
     | Ok engine when snapshot_fresh engine app.G.program ->
       Obs.Flight.record ~kind:"serve" ~name:"snapshot-load"
         ~attrs:[ ("path", Obs.Span.Str path) ] ();
       (open_with ~engine ?results:(load_results path) app, Protocol.Miss)
     | Ok stale ->
       (* the on-disk snapshot describes an older program version: patch
          the just-loaded engine in memory rather than rebuilding *)
       (match Store.Snapshot.delta_of_engine stale app.G.program with
        | Ok (engine, _rep) ->
          Obs.Flight.record ~kind:"serve" ~name:"snapshot-delta"
            ~attrs:[ ("path", Obs.Span.Str path) ] ();
          (open_with ~engine ?results:(load_results path) app, Protocol.Delta)
        | Result.Error e ->
          Obs.Flight.anomaly ~kind:"serve" ~name:"snapshot-delta-failed"
            ~attrs:[ ("path", Obs.Span.Str path);
                     ("error", Obs.Span.Str (Store.Codec.error_to_string e)) ]
            ();
          let app = generate ~build_dex:true spec in
          (open_with app, Protocol.Miss))
     | Result.Error e ->
       Obs.Flight.anomaly ~kind:"serve" ~name:"snapshot-load-failed"
         ~attrs:[ ("path", Obs.Span.Str path);
                  ("error", Obs.Span.Str (Store.Codec.error_to_string e)) ]
         ();
       let app = generate ~build_dex:true spec in
       (open_with app, Protocol.Miss))
  | Some path ->
    let app = generate ~build_dex:true spec in
    let session = open_with app in
    (try
       ignore
         (Store.Snapshot.save ~ruleset_hash:t.ruleset_hash ~path
            (D.session_engine session))
     with Sys_error _ | Unix.Unix_error _ ->
       Obs.Flight.anomaly ~kind:"serve" ~name:"snapshot-save-failed"
         ~attrs:[ ("path", Obs.Span.Str path) ] ());
    (session, Protocol.Miss)
  | None ->
    let app = generate ~build_dex:true spec in
    (open_with app, Protocol.Miss)

(* Resolve the resident session for a request.  Hit = same key and same
   spec; same key with a different spec (a new version behind one
   snapshot path) regenerates the program and delta-patches the resident
   engine in place; miss loads/builds and inserts under the LRU. *)
let resolve_session t ~snapshot spec =
  let key = cache_key t ~snapshot spec in
  match Enginecache.find t.cache key with
  | Some entry when entry.Enginecache.spec = spec ->
    (entry.Enginecache.session, Protocol.Hit)
  | Some entry ->
    let app = generate ~build_dex:false spec in
    let old = D.session_engine entry.Enginecache.session in
    if snapshot_fresh old app.G.program then begin
      entry.Enginecache.spec <- spec;
      (entry.Enginecache.session, Protocol.Hit)
    end
    else begin
      match Store.Snapshot.delta_of_engine old app.G.program with
      | Ok (engine, _rep) ->
        let results = Option.bind snapshot (fun p -> load_results p) in
        let session =
          D.open_session ~cfg:(driver_cfg t) ~pool:t.pool ~engine ?results
            ~dex:app.G.dex ~manifest:app.G.manifest ()
        in
        Enginecache.repatch t.cache entry ~spec session;
        Obs.Flight.record ~kind:"serve" ~name:"resident-delta"
          ~attrs:[ ("key", Obs.Span.Str key) ] ();
        (session, Protocol.Delta)
      | Result.Error _ ->
        let session, state = load_session t ~snapshot spec in
        ignore (Enginecache.insert t.cache ~key ~spec session);
        (session, state)
    end
  | None ->
    let session, state = load_session t ~snapshot spec in
    ignore (Enginecache.insert t.cache ~key ~spec session);
    (session, state)

(* -- request handlers ------------------------------------------------ *)

let now_us () = Obs.Span.now_us ()

let handle_analyze t ~spec ~snapshot ~time_limit_ms =
  let t0 = now_us () in
  let session, state = resolve_session t ~snapshot spec in
  let budget =
    match time_limit_ms with
    | None -> None
    | Some _ -> Some { t.cfg.budget with Backdroid.Context.time_limit_ms }
  in
  let r = D.run_session ?budget session in
  let wall_us = now_us () -. t0 in
  Obs.Metrics.observe h_analyze_us wall_us;
  let text =
    Render.render ~app_name:(Appspec.app_name spec)
      ~seconds:(wall_us /. 1e6) r
  in
  Protocol.Analyzed { text; cache = state; wall_us }

let query_of ~kind ~operand =
  let module Q = Bytesearch.Query in
  match kind with
  | "invocation" -> Ok (Q.invocation operand)
  | "new-instance" -> Ok (Q.new_instance operand)
  | "const-class" -> Ok (Q.const_class operand)
  | "const-string" -> Ok (Q.const_string operand)
  | "field" -> Ok (Q.field_access operand)
  | "static-field" -> Ok (Q.static_field_access operand)
  | "class-use" -> Ok (Q.class_use operand)
  | "raw" -> Ok (Q.raw operand)
  | k ->
    Result.Error
      (Printf.sprintf
         "unknown query kind %S (one of: invocation, new-instance, \
          const-class, const-string, field, static-field, class-use, raw)"
         k)

let max_query_lines = 50

let handle_query t ~spec ~snapshot ~kind ~operand =
  match query_of ~kind ~operand with
  | Result.Error m -> Protocol.Error m
  | Ok q ->
    let t0 = now_us () in
    let session, _state = resolve_session t ~snapshot spec in
    let hits = Bytesearch.Engine.run (D.session_engine session) q in
    let wall_us = now_us () -. t0 in
    Obs.Metrics.observe h_query_us wall_us;
    let lines =
      List.filteri (fun i _ -> i < max_query_lines) hits
      |> List.map (fun (h : Bytesearch.Engine.hit) ->
             Printf.sprintf "%s:%d: %s"
               (Ir.Jsig.meth_to_string h.Bytesearch.Engine.owner)
               h.Bytesearch.Engine.line_no
               (String.trim h.Bytesearch.Engine.text))
    in
    Protocol.Queried { total = List.length hits; lines; wall_us }

let stats_json t =
  let cs = Enginecache.stats t.cache in
  let j = Obs.Jsonf.int_field in
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Buffer.add_string b
    (Obs.Jsonf.num_field ~dec:1 "uptime_s"
       ((now_us () -. t.started_at) /. 1e6));
  Mutex.lock t.conn_mutex;
  let na = t.n_analyze and nq = t.n_query and ns = t.n_stats in
  let ne = t.n_errors in
  Mutex.unlock t.conn_mutex;
  List.iter
    (fun f ->
       Buffer.add_string b ", ";
       Buffer.add_string b f)
    [ j "jobs" t.cfg.jobs;
      j "requests_analyze" na;
      j "requests_query" nq;
      j "requests_stats" ns;
      j "errors" ne;
      j "rejected" (Admission.rejected t.adm);
      j "inflight" (Admission.inflight t.adm);
      j "max_inflight" (Admission.max_inflight t.adm);
      j "cache_entries" cs.Enginecache.entries;
      j "cache_resident_bytes" cs.Enginecache.resident_bytes;
      j "cache_hits" cs.Enginecache.hits;
      j "cache_misses" cs.Enginecache.misses;
      j "cache_evictions" cs.Enginecache.evictions;
      j "cache_delta_patches" cs.Enginecache.delta_patches ];
  Buffer.add_string b "}";
  Buffer.contents b

let count_request t = function
  | Protocol.Analyze _ ->
    Mutex.lock t.conn_mutex;
    t.n_analyze <- t.n_analyze + 1;
    Mutex.unlock t.conn_mutex
  | Protocol.Query _ ->
    Mutex.lock t.conn_mutex;
    t.n_query <- t.n_query + 1;
    Mutex.unlock t.conn_mutex
  | Protocol.Stats ->
    Mutex.lock t.conn_mutex;
    t.n_stats <- t.n_stats + 1;
    Mutex.unlock t.conn_mutex
  | Protocol.Shutdown -> ()

let count_error t =
  Mutex.lock t.conn_mutex;
  t.n_errors <- t.n_errors + 1;
  Mutex.unlock t.conn_mutex;
  Obs.Metrics.incr m_errors

let wake t =
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let request_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Obs.Flight.record ~kind:"serve" ~name:"shutdown-requested" ();
    wake t
  end

let dispatch t req =
  Obs.Metrics.incr m_requests;
  count_request t req;
  match req with
  | Protocol.Stats -> Protocol.Stats_json (stats_json t)
  | Protocol.Shutdown ->
    (* the connection handler acknowledges first, then triggers the stop —
       otherwise the drain races the response onto a shut-down socket *)
    Protocol.Shutdown_ok
  | Protocol.Analyze _ | Protocol.Query _ ->
    if Atomic.get t.stopping then Protocol.Rejected Protocol.Shutting_down
    else if not (Admission.acquire t.adm) then begin
      Obs.Metrics.incr m_rejected;
      Obs.Flight.record ~kind:"serve" ~name:"rejected-busy" ();
      Protocol.Rejected Protocol.Busy
    end
    else
      Fun.protect
        ~finally:(fun () -> Admission.release t.adm)
        (fun () ->
           try
             on_pool t.pool (fun () ->
                 match req with
                 | Protocol.Analyze { spec; snapshot; time_limit_ms } ->
                   handle_analyze t ~spec ~snapshot ~time_limit_ms
                 | Protocol.Query { spec; snapshot; kind; operand } ->
                   handle_query t ~spec ~snapshot ~kind ~operand
                 | Protocol.Stats | Protocol.Shutdown -> assert false)
           with
           | Reject m ->
             count_error t;
             Protocol.Error m
           | e ->
             count_error t;
             Obs.Flight.anomaly ~kind:"serve" ~name:"request-failed"
               ~attrs:[ ("error", Obs.Span.Str (Printexc.to_string e)) ]
               ();
             Protocol.Error (Printexc.to_string e))

(* -- connections ----------------------------------------------------- *)

let track_conn t fd =
  Mutex.lock t.conn_mutex;
  t.conns <- fd :: t.conns;
  Mutex.unlock t.conn_mutex

let untrack_conn t fd =
  Mutex.lock t.conn_mutex;
  t.conns <- List.filter (fun c -> c <> fd) t.conns;
  Mutex.unlock t.conn_mutex

let handle_conn t fd =
  let rec loop () =
    match Protocol.recv_request fd with
    | `Eof -> ()
    | `Err m ->
      count_error t;
      (try Protocol.send_response fd (Protocol.Error ("bad request: " ^ m))
       with Unix.Unix_error _ -> ())
    | `Ok req ->
      let resp = dispatch t req in
      (match Protocol.send_response fd resp with
       | () ->
         (match req with
          | Protocol.Shutdown -> request_stop t
          | _ -> loop ())
       | exception Unix.Unix_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
        untrack_conn t fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* -- accept loop / lifecycle ----------------------------------------- *)

let accept_loop t =
  let listen_fds = t.listeners in
  let all = t.wake_r :: listen_fds in
  while not (Atomic.get t.stopping) do
    match Unix.select all [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
           if fd = t.wake_r then begin
             try ignore (Unix.read fd (Bytes.create 16) 0 16)
             with Unix.Unix_error _ -> ()
           end
           else
             match Unix.accept ~cloexec:true fd with
             | conn, _ ->
               track_conn t conn;
               let th = Thread.create (fun () -> handle_conn t conn) () in
               Mutex.lock t.conn_mutex;
               t.threads <- th :: t.threads;
               Mutex.unlock t.conn_mutex
             | exception Unix.Unix_error _ -> ())
        ready
  done;
  (* drain: let in-flight requests finish, bounded by the drain deadline *)
  let deadline =
    Unix.gettimeofday () +. (t.cfg.drain_timeout_ms /. 1000.0)
  in
  while Admission.inflight t.adm > 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  let drained = Admission.inflight t.adm = 0 in
  (* close listeners first (no new connections), then force-close any
     connection still parked in a read so its thread can exit *)
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listen_fds;
  Mutex.lock t.conn_mutex;
  let conns = t.conns and threads = t.threads in
  Mutex.unlock t.conn_mutex;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  (* joining a thread whose request outlived the drain deadline would
     un-bound the shutdown; leave stragglers to die with the process *)
  if drained then List.iter Thread.join threads;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket with Unix.Unix_error _ | Sys_error _ -> ());
  Obs.Flight.record ~kind:"serve" ~name:"shutdown-complete" ()

let start cfg =
  match claim_socket cfg.socket with
  | Result.Error m -> Result.Error m
  | Ok () ->
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    let uds = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind uds (Unix.ADDR_UNIX cfg.socket);
       Unix.listen uds 64
     with e ->
       (try Unix.close uds with Unix.Unix_error _ -> ());
       raise e);
    let tcp_fd =
      match cfg.tcp with
      | None -> []
      | Some (host, port) ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ -> Unix.inet_addr_loopback
        in
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 64;
        [ fd ]
    in
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    let t =
      { cfg;
        pool = Parallel.Pool.create ~jobs:cfg.jobs;
        cache =
          Enginecache.create ~max_entries:cfg.max_resident
            ~max_bytes:(int_of_float (cfg.max_resident_mb *. 1048576.0)) ();
        adm =
          Admission.create ~max_inflight:cfg.max_inflight
            ~queue_timeout_ms:cfg.queue_timeout_ms;
        ruleset_hash = Rules.Rule.hash_list cfg.rules;
        listeners = uds :: tcp_fd;
        wake_r; wake_w;
        stopping = Atomic.make false;
        started_at = Obs.Span.now_us ();
        conn_mutex = Mutex.create ();
        conns = []; threads = []; accept_thread = None;
        n_analyze = 0; n_query = 0; n_stats = 0; n_errors = 0 }
    in
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    Obs.Flight.record ~kind:"serve" ~name:"listening"
      ~attrs:[ ("socket", Obs.Span.Str cfg.socket);
               ("jobs", Obs.Span.Int cfg.jobs) ]
      ();
    Ok t

let stop t = request_stop t

let wait t =
  (match t.accept_thread with
   | Some th -> Thread.join th
   | None -> ());
  Parallel.Pool.shutdown t.pool

let run cfg =
  match start cfg with
  | Result.Error m -> Result.Error m
  | Ok t ->
    let on_signal _ = request_stop t in
    (try
       Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
       Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
     with Invalid_argument _ -> ());
    wait t;
    Ok ()
