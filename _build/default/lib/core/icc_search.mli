(** Special search over Android ICC (Sec. IV-D): the two-time search.

    To find who starts a given component, BackDroid launches two searches —
    one for ICC API calls (startService / startActivity / sendBroadcast) and
    one for the ICC parameter (the [const-class] of the target component for
    explicit ICC, or the action string for implicit ICC) — and keeps the ICC
    calls whose enclosing method also contains a parameter hit. *)

type icc_site = { caller : Ir.Jsig.meth; site : int; intent_local : string; }
val icc_call_subsigs : string list

(** Classes an ICC call may be declared against in the bytecode. *)
val icc_receiver_classes : string list
val icc_call_queries : unit -> Bytesearch.Query.t list

(** First search: all ICC call sites in the app. *)
val search_icc_calls : Bytesearch.Engine.t -> Bytesearch.Engine.hit list

(** Second search: parameter hits for the target component. *)
val search_icc_params :
  Bytesearch.Engine.t ->
  component:Manifest.Component.t -> Bytesearch.Engine.hit list

(** Merge the two search results: an ICC call counts if its enclosing method
    also contains a parameter hit.  Returns the matching call sites with the
    Intent local recovered from the IR. *)
val callers :
  Bytesearch.Engine.t -> component:Manifest.Component.t -> icc_site list
