(** Flat byte vectors backed by [Bigarray]: the payload lives outside the
    OCaml heap, so the GC neither traces nor copies it.  The byte-granular
    sibling of {!Ivec}: snapshot loads hand out mmapped file sections as
    [Bvec.t]s (packed postings runs, the off-heap line-text blob), and the
    search engine's residual scan and postings cursors read them without
    materializing strings.

    The type is exposed transparently so producers that already hold a char
    bigarray (an mmapped section, say) need no copy. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [create n] is an uninitialised off-heap vector of [n] bytes. *)
val create : int -> t

val length : t -> int

val get : t -> int -> char
val set : t -> int -> char -> unit

(** Unchecked access — callers must guarantee [0 <= i < length]. *)
val unsafe_get : t -> int -> char

(** [get_u8 v i] is [Char.code (get v i)] (bounds-checked). *)
val get_u8 : t -> int -> int

(** Unchecked byte read. *)
val unsafe_u8 : t -> int -> int

val of_string : string -> t
val to_string : t -> string

(** [sub_string v pos len] materialises [len] bytes starting at [pos] as a
    fresh string (bounds-checked). *)
val sub_string : t -> int -> int -> string

(** [equal_string v ~pos s] holds when the bytes at [pos .. pos +
    length s - 1] equal [s].  Allocation-free; callers must guarantee the
    range is in bounds. *)
val equal_string : t -> pos:int -> string -> bool

(** [prefault v] touches one byte per page (4 KiB stride) in order,
    forcing the kernel to populate page-table entries for a lazily mapped
    region up front instead of on first query.  Returns a value dependent
    on every byte read so the traversal cannot be optimised away. *)
val prefault : t -> int
