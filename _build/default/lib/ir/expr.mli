(** Expressions on the right-hand side of IR statements.

    The slicing and forward analyses of the paper only distinguish six kinds
    of statement expressions — BinopExpr, CastExpr, InvokeExpr, NewExpr,
    NewArrayExpr and PhiExpr — plus field/array references and the identity
    expressions binding parameters and [this]. *)

type binop =
    Add
  | Sub
  | Mul
  | Div
  | Rem
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Ushr
  | Cmp
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
type invoke_kind = Virtual | Special | Static | Interface
type invoke = {
  kind : invoke_kind;
  callee : Jsig.meth;
  base : Value.local option;
  args : Value.t list;
}
type t =
    Imm of Value.t
  | Binop of binop * Value.t * Value.t
  | Cast of Types.t * Value.t
  | Invoke of invoke
  | New of string
  | New_array of Types.t * Value.t
  | Array_get of Value.local * Value.t
  | Instance_get of Value.local * Jsig.field
  | Static_get of Jsig.field
  | Phi of Value.local list
  | Param of int
  | This
  | Caught_exception
  | Length of Value.t
val binop_to_string : binop -> string
val invoke_kind_to_string : invoke_kind -> string

(** All values read by an expression (receiver included for invokes). *)
val uses : t -> Value.t list
val invoke_of : t -> invoke option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
