(** Search-command caching (implementation enhancement 1, Sec. IV-F).

    Keys are the typed queries themselves — symbol payloads make query
    hashing and equality integer operations, so a cache probe renders no
    command string.  The cache also keeps the per-category and aggregate
    counters the paper reports (average cache rate 23.39%, min 2.97%, max
    88.95%).

    A single mutex serializes the table and the counters, and is held across
    the compute of a miss so that concurrent domains racing on the same key
    still produce exactly one miss plus hits — the counters are then
    scheduling-independent, which the jobs=1-vs-jobs=N determinism guarantee
    relies on. *)

let m_hits = Obs.Metrics.counter "search.cache.hits"
let m_misses = Obs.Metrics.counter "search.cache.misses"
let m_compute_us = Obs.Metrics.histogram "search.compute_us"

type category_stat = {
  mutable c_total : int;
  mutable c_cached : int;
  mutable c_compute_us : float;
      (** accumulated wall-clock cost of the misses (the computes) *)
}

type 'hit stats = {
  mutable total : int;
  mutable cached : int;
  per_category : (Query.category, category_stat) Hashtbl.t;
}

module Query_tbl = Hashtbl.Make (struct
    type t = Query.t
    let equal = Query.equal
    let hash = Query.hash
  end)

type 'hit t = {
  table : 'hit list Query_tbl.t;
  stats : 'hit stats;
  lock : Mutex.t;
}

let create () =
  { table = Query_tbl.create 256;
    stats = { total = 0; cached = 0; per_category = Hashtbl.create 8 };
    lock = Mutex.create () }

(* -- Domain-local issue counters -------------------------------------- *)

(* Provenance needs per-slice query counts that are independent of how the
   pool scheduled OTHER slices: the shared [stats] above cannot provide
   that (under the mutex, which slice pays the one miss per distinct key is
   scheduling-dependent), but a slice runs entirely on one domain, so
   domain-local counters deltaed around it are.  Module-global on purpose:
   a slice drives exactly one engine at a time, and "queries this domain
   issued" is the quantity the ledger reports. *)

type local_counts = {
  lc_total : int;
  lc_cached : int;         (** scheduling-dependent — excluded from
                               determinism comparisons *)
  lc_by_cat : int array;   (** per {!Query.category_index} *)
}

type local = {
  mutable l_total : int;
  mutable l_cached : int;
  l_by_cat : int array;
}

let local_key =
  Domain.DLS.new_key (fun () ->
      { l_total = 0; l_cached = 0;
        l_by_cat = Array.make Query.n_categories 0 })

let bump_local cat ~was_cached =
  let l = Domain.DLS.get local_key in
  l.l_total <- l.l_total + 1;
  if was_cached then l.l_cached <- l.l_cached + 1;
  let i = Query.category_index cat in
  l.l_by_cat.(i) <- l.l_by_cat.(i) + 1

(** The calling domain's cumulative issue counters (snapshot before/after a
    slice and subtract). *)
let local_counts () =
  let l = Domain.DLS.get local_key in
  { lc_total = l.l_total; lc_cached = l.l_cached;
    lc_by_cat = Array.copy l.l_by_cat }

let cat_stat t cat =
  match Hashtbl.find_opt t.stats.per_category cat with
  | Some c -> c
  | None ->
    let c = { c_total = 0; c_cached = 0; c_compute_us = 0.0 } in
    Hashtbl.replace t.stats.per_category cat c;
    c

let bump t cat ~was_cached =
  let s = t.stats in
  s.total <- s.total + 1;
  if was_cached then s.cached <- s.cached + 1;
  let c = cat_stat t cat in
  c.c_total <- c.c_total + 1;
  if was_cached then c.c_cached <- c.c_cached + 1

(** Look up or compute the result of [query], recording statistics (misses
    additionally record the compute's wall-clock cost against their
    category). *)
let find_or_add t query compute =
  let cat = Query.category query in
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () ->
      match Query_tbl.find_opt t.table query with
      | Some hits ->
        bump t cat ~was_cached:true;
        bump_local cat ~was_cached:true;
        Obs.Metrics.incr m_hits;
        hits
      | None ->
        bump t cat ~was_cached:false;
        bump_local cat ~was_cached:false;
        Obs.Metrics.incr m_misses;
        let t0 = Unix.gettimeofday () in
        let hits = compute () in
        let elapsed_us = (Unix.gettimeofday () -. t0) *. 1e6 in
        let c = cat_stat t cat in
        c.c_compute_us <- c.c_compute_us +. elapsed_us;
        Obs.Metrics.observe m_compute_us elapsed_us;
        Query_tbl.replace t.table query hits;
        hits)

(** Drop every cached result (the statistics counters are kept — they
    describe work actually performed).  Used when the rule set driving the
    searches changes under a reused engine. *)
let flush t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () ->
      Query_tbl.reset t.table)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Fraction of search commands served from cache, in [0, 1]. *)
let cache_rate t =
  with_lock t (fun () ->
      if t.stats.total = 0 then 0.0
      else float_of_int t.stats.cached /. float_of_int t.stats.total)

let total_searches t = with_lock t (fun () -> t.stats.total)
let cached_searches t = with_lock t (fun () -> t.stats.cached)

let category_stats t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun cat c acc -> (cat, c.c_total, c.c_cached) :: acc)
        t.stats.per_category [])

(** Per-category accumulated compute cost (µs spent on cache misses). *)
let category_timings t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun cat c acc -> (cat, c.c_compute_us) :: acc)
        t.stats.per_category [])
