(** Domain knowledge about Android lifecycle handlers (Sec. IV-E).

    Since there are only four component kinds, a fixed table suffices: for
    each kind we list the handler sub-signatures and, for the special search
    over lifecycle handlers, which earlier handlers "invoke" (precede) a given
    handler in the lifecycle state machine. *)

val activity_handlers : string list
val service_handlers : string list
val receiver_handlers : string list
val provider_handlers : string list
val handlers_of_kind : Component.kind -> string list
val all_handler_subsigs : string list
val is_lifecycle_subsig : string -> bool

(** Handlers guaranteed to run before [subsig] in the same component —
    the "other lifecycle handlers that invoke the callee handler".  E.g.
    [onResume] is preceded by [onStart], which is preceded by [onCreate]. *)
val predecessors : string -> string list

(** Handlers that are direct entry points: the system calls them first, so a
    dataflow arriving here needs no further backward search. *)
val is_entry_handler : string -> bool
