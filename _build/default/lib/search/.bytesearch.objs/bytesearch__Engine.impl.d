lib/search/engine.ml: Array Cache Dex Hashtbl Ir List Option Printf Query String
