lib/appgen/shape.mli:
