tools/calibrate.ml: Appgen Array Backdroid Baseline List Printf Sys Unix
