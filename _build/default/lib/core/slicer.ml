(** The adjusted backward slicing (Sec. V-A): starting at a sink API call,
    taint the security-relevant parameter and scan method bodies backwards,
    crossing method boundaries through the bytecode searches of Sec. IV and
    recording every visited statement and inter-procedural relationship into
    the SSG.

    Taints cover locals, instance fields (tainting the class object along
    with the field, so aliases and method boundaries are survived), Intent
    extras (keyed like fields) and static fields (a global set).  Contained
    methods — constructors writing tainted fields, and calls whose return
    value is tainted — are analysed by recursive sub-slices whose residual
    taints are mapped back to the call site. *)

open Ir
module Sinks = Framework.Sinks

type config = {
  max_depth : int;      (** inter-procedural backtracking depth *)
  max_work : int;       (** total work items per sink *)
  max_contained_depth : int;
}

let default_config = { max_depth = 48; max_work = 4000; max_contained_depth = 8 }

(* ------------------------------------------------------------------ *)
(* Taint sets                                                           *)

type taints = {
  locals : (string, unit) Hashtbl.t;
  fields : (string, Jsig.field) Hashtbl.t;
      (** key: [objid ^ "#" ^ field signature] *)
  intents : (string * string, unit) Hashtbl.t;  (** (obj id, extra key) *)
  mutable settled : residual_acc list;
      (** residuals settled during the scan, at identity statements *)
}

and residual_acc = R_acc_param of int | R_acc_this

let fresh_taints () =
  { locals = Hashtbl.create 8; fields = Hashtbl.create 4;
    intents = Hashtbl.create 2; settled = [] }

let field_key obj (f : Jsig.field) = obj ^ "#" ^ Jsig.field_to_string f

let taint_local t id = Hashtbl.replace t.locals id ()
let untaint_local t id = Hashtbl.remove t.locals id
let local_tainted t id = Hashtbl.mem t.locals id

let taint_field t obj f =
  Hashtbl.replace t.fields (field_key obj f) f;
  (* the paper also taints the class object itself *)
  taint_local t obj

let untaint_field t obj f = Hashtbl.remove t.fields (field_key obj f)
let field_tainted t obj f = Hashtbl.mem t.fields (field_key obj f)

(** Fields tainted on a given object local. *)
let fields_of t obj =
  Hashtbl.fold
    (fun k f acc ->
       match String.index_opt k '#' with
       | Some i when String.sub k 0 i = obj -> f :: acc
       | Some _ | None -> acc)
    t.fields []

let taint_intent t obj key =
  Hashtbl.replace t.intents (obj, key) ();
  (* track the carrying object as well, mirroring the field rule *)
  Hashtbl.replace t.locals obj ()
let untaint_intent t obj key = Hashtbl.remove t.intents (obj, key)
let intent_keys_of t obj =
  Hashtbl.fold (fun (o, k) () acc -> if o = obj then k :: acc else acc)
    t.intents []

let is_empty t =
  Hashtbl.length t.locals = 0 && Hashtbl.length t.fields = 0
  && Hashtbl.length t.intents = 0

(** Transfer all taints attached to alias [dst] onto [src] (processing a
    backward copy [dst := src]). *)
let transfer_alias t ~dst ~src =
  if local_tainted t dst then begin
    untaint_local t dst;
    taint_local t src
  end;
  List.iter (fun f -> untaint_field t dst f; taint_field t src f) (fields_of t dst);
  List.iter
    (fun k -> untaint_intent t dst k; taint_intent t src k)
    (intent_keys_of t dst)

(* ------------------------------------------------------------------ *)
(* Residual taints at method entry                                      *)

type residual =
  | R_param of int
  | R_param_field of int * Jsig.field
  | R_this
  | R_this_field of Jsig.field
  | R_intent of int * string
      (** Intent extra: parameter index ([-1] = the component's launching
          Intent, from [getIntent()]) and extra key *)

(* ------------------------------------------------------------------ *)
(* Slicer state                                                         *)

type state = {
  engine : Bytesearch.Engine.t;
  program : Program.t;
  manifest : Manifest.App_manifest.t;
  loops : Loopdetect.stats;
  cfg : config;
  ssg : Ssg.t;
  reach_cache : (string, bool) Hashtbl.t;  (** shared across sinks (Sec. IV-F) *)
  reach_total : int ref;
  reach_cached : int ref;
  mutable work_count : int;
}

let getintent_marker = "<launching-intent>"

let record st meth idx stmt = ignore (Ssg.add_node st.ssg ~meth ~stmt_idx:idx ~stmt)

(** Quick backward lookup of a string constant for [v] (used to resolve
    Intent extra keys at [getStringExtra]/[putExtra] sites). *)
let resolve_string_const body idx (v : Value.t) =
  match v with
  | Value.Const (Value.Str_c s) -> Some s
  | Value.Const _ -> None
  | Value.Local l ->
    let rec back i =
      if i < 0 then None
      else
        match body.(i) with
        | Stmt.Assign (d, Expr.Imm (Value.Const (Value.Str_c s)))
          when Value.local_equal d l -> Some s
        | _ -> back (i - 1)
    in
    back (idx - 1)

let is_system_class st cls =
  match Program.find_class st.program cls with
  | Some c -> c.Jclass.is_system
  | None -> true

(* ------------------------------------------------------------------ *)
(* Backward scan of one method body                                     *)

(** Scan [meth]'s body backward from [from_idx], transforming [t] in place
    and recording SSG nodes.  Returns the residual taints at method entry.
    [path] carries the methods on the current backtracking chain for loop
    detection; [cdepth] bounds contained-method recursion. *)
let rec scan st ~path ~cdepth (meth : Jsig.meth) body ~from_idx t =
  let idx = ref (min from_idx (Array.length body - 1)) in
  while !idx >= 0 do
    let stmt = body.(!idx) in
    (match stmt with
     | Stmt.Assign (l, Expr.Param i) when local_tainted t l.Value.id ->
       (* identity statement: the tainted local IS the parameter — settle it
          as a residual for the caller mapping *)
       untaint_local t l.Value.id;
       record st meth !idx stmt;
       Ssg.record_taint st.ssg ~meth l.Value.id;
       t.settled <- R_acc_param i :: t.settled
     | Stmt.Assign (l, Expr.This) when local_tainted t l.Value.id ->
       untaint_local t l.Value.id;
       record st meth !idx stmt;
       Ssg.record_taint st.ssg ~meth l.Value.id;
       t.settled <- R_acc_this :: t.settled
     | Stmt.Assign (l, e) when local_tainted t l.Value.id ->
       untaint_local t l.Value.id;
       record st meth !idx stmt;
       Ssg.record_taint st.ssg ~meth l.Value.id;
       process_def st ~path ~cdepth meth body !idx t l e
     | Stmt.Assign (l, Expr.Imm (Value.Local x))
       when fields_of t l.Value.id <> [] || intent_keys_of t l.Value.id <> [] ->
       (* alias copy: move attached field / intent taints to the source *)
       record st meth !idx stmt;
       transfer_alias t ~dst:l.Value.id ~src:x.Value.id
     | Stmt.Assign (l, Expr.Cast (_, Value.Local x))
       when fields_of t l.Value.id <> [] || intent_keys_of t l.Value.id <> [] ->
       record st meth !idx stmt;
       transfer_alias t ~dst:l.Value.id ~src:x.Value.id
     | Stmt.Instance_put (o, f, v) when field_tainted t o.Value.id f ->
       record st meth !idx stmt;
       untaint_field t o.Value.id f;
       (* drop the object taint when no other tainted field remains *)
       if fields_of t o.Value.id = [] && intent_keys_of t o.Value.id = [] then
         untaint_local t o.Value.id;
       taint_value t v
     | Stmt.Static_put (f, v)
       when List.exists (Jsig.field_equal f) st.ssg.Ssg.global_static_taints ->
       record st meth !idx stmt;
       Ssg.remove_global_static_taint st.ssg f;
       taint_value t v
     | Stmt.Array_put (a, _i, v) when local_tainted t a.Value.id ->
       (* arrays are handled like fields: the store feeds the tainted array *)
       record st meth !idx stmt;
       taint_value t v
     | Stmt.Invoke iv ->
       process_plain_invoke st ~path ~cdepth meth body !idx t iv
     | Stmt.Assign _ | Stmt.Instance_put _ | Stmt.Static_put _
     | Stmt.Array_put _ | Stmt.Return _ | Stmt.If _ | Stmt.Goto _
     | Stmt.Throw _ | Stmt.Nop -> ());
    decr idx
  done;
  residuals_of st meth t

and taint_value t = function
  | Value.Local l -> taint_local t l.Value.id
  | Value.Const _ -> ()

(** Transfer for a tainted definition [l := e]. *)
and process_def st ~path ~cdepth meth body idx t l e =
  match e with
  | Expr.Imm (Value.Local x) -> taint_local t x.Value.id
  | Expr.Imm (Value.Const _) -> ()
  | Expr.Binop (_, a, b) -> taint_value t a; taint_value t b
  | Expr.Cast (_, v) -> taint_value t v
  | Expr.Phi ls -> List.iter (fun x -> taint_local t x.Value.id) ls
  | Expr.New _ | Expr.New_array _ -> ()  (* points-to origin: a leaf *)
  | Expr.Length v -> taint_value t v
  | Expr.Array_get (a, _) -> taint_local t a.Value.id
  | Expr.Instance_get (o, f) -> taint_field t o.Value.id f
  | Expr.Static_get f ->
    Ssg.add_global_static_taint st.ssg f;
    locate_static_writers st ~path ~cdepth f
  | Expr.Param _ | Expr.This | Expr.Caught_exception -> ()
  | Expr.Invoke iv -> process_result_invoke st ~path ~cdepth meth body idx t l iv

(** A call whose result is tainted ([l] is the result local). *)
and process_result_invoke st ~path ~cdepth meth body idx t l (iv : Expr.invoke) =
  let callee = iv.callee in
  if Jsig.meth_equal callee Framework.Api.intent_get_string_extra then begin
    match iv.base, resolve_string_const body idx (List.nth iv.args 0) with
    | Some b, Some key -> taint_intent t b.Value.id key
    | Some b, None -> taint_local t b.Value.id
    | None, _ -> ()
  end
  else if Jsig.meth_equal callee Framework.Api.activity_get_intent then
    (* the result is the component's launching Intent: re-key any extra-key
       taints of the result local onto the marker so they surface as
       R_intent (-1, _) residuals *)
    List.iter
      (fun key ->
         untaint_intent t l.Value.id key;
         taint_intent t getintent_marker key)
      (intent_keys_of t l.Value.id)
  else if is_system_class st callee.Jsig.cls then begin
    (* generic framework model: result depends on receiver and arguments *)
    (match iv.base with Some b -> taint_local t b.Value.id | None -> ());
    List.iter (taint_value t) iv.args
  end
  else begin
    (* contained app method: trace its return values by sub-slice *)
    match Program.find_method st.program callee with
    | None | Some { Jmethod.body = None; _ } ->
      (match iv.base with Some b -> taint_local t b.Value.id | None -> ());
      List.iter (taint_value t) iv.args
    | Some callee_m ->
      if cdepth >= st.cfg.max_contained_depth then ()
      else if Loopdetect.on_path path callee then
        Loopdetect.record st.loops Loopdetect.Inner_backward
      else begin
        Ssg.add_edge st.ssg
          (Ssg.Contained { caller = meth; site = idx; callee });
        let cbody = Option.get callee_m.Jmethod.body in
        let ct = fresh_taints () in
        Array.iter
          (fun s ->
             match s with
             | Stmt.Return (Some (Value.Local l)) -> taint_local ct l.Value.id
             | _ -> ())
          cbody;
        let res =
          scan st ~path:(callee :: path) ~cdepth:(cdepth + 1) callee cbody
            ~from_idx:(Array.length cbody - 1) ct
        in
        apply_residuals_at_site st t iv res
      end
  end

(** A plain (result-less) invocation: constructor field mapping, Intent
    [putExtra], or a contained call touching tainted object fields. *)
and process_plain_invoke st ~path ~cdepth meth _body idx t (iv : Expr.invoke) =
  let callee = iv.callee in
  match iv.base with
  | Some b
    when Jsig.meth_equal callee Framework.Api.intent_put_extra
      || (String.equal callee.Jsig.name "putExtra"
          && String.equal callee.Jsig.cls "android.content.Intent") ->
    (match iv.args with
     | [ k; v ] ->
       (match resolve_string_const _body idx k with
        | Some key when Hashtbl.mem t.intents (b.Value.id, key) ->
          record st meth idx (Stmt.Invoke iv);
          untaint_intent t b.Value.id key;
          taint_value t v
        | Some _ | None -> ())
     | _ -> ())
  | Some b
    when (fields_of t b.Value.id <> [] || intent_keys_of t b.Value.id <> [])
         && not (is_system_class st callee.Jsig.cls) ->
    (* contained method (constructor or setter) that may define the tainted
       fields of the receiver *)
    (match Program.find_method st.program callee with
     | None | Some { Jmethod.body = None; _ } -> ()
     | Some callee_m ->
       if cdepth >= st.cfg.max_contained_depth then ()
       else if Loopdetect.on_path path callee then
         Loopdetect.record st.loops Loopdetect.Inner_backward
       else begin
         record st meth idx (Stmt.Invoke iv);
         Ssg.add_edge st.ssg (Ssg.Contained { caller = meth; site = idx; callee });
         let cbody = Option.get callee_m.Jmethod.body in
         let ct = fresh_taints () in
         (match Jmethod.this_local callee_m with
          | Some this_l ->
            List.iter (fun f -> taint_field ct this_l.Value.id f)
              (fields_of t b.Value.id)
          | None -> ());
         let res =
           scan st ~path:(callee :: path) ~cdepth:(cdepth + 1) callee cbody
             ~from_idx:(Array.length cbody - 1) ct
         in
         (* the callee resolved (or re-mapped) the fields it defines *)
         List.iter
           (fun f ->
              match
                List.find_opt
                  (function
                    | R_this_field f' -> Jsig.field_equal f f'
                    | _ -> false)
                  res
              with
              | Some _ -> ()  (* still unresolved inside callee: keep taint *)
              | None -> untaint_field t b.Value.id f)
           (fields_of t b.Value.id);
         apply_residuals_at_site st t iv res
       end)
  | Some _ | None -> ()

(** Map a contained sub-slice's residuals back onto the call-site values. *)
and apply_residuals_at_site st t (iv : Expr.invoke) res =
  List.iter
    (fun r ->
       match r with
       | R_param i ->
         (match List.nth_opt iv.args i with
          | Some v -> taint_value t v
          | None -> ())
       | R_param_field (i, f) ->
         (match List.nth_opt iv.args i with
          | Some (Value.Local l) -> taint_field t l.Value.id f
          | Some (Value.Const _) | None -> ())
       | R_this ->
         (match iv.base with Some b -> taint_local t b.Value.id | None -> ())
       | R_this_field f ->
         (match iv.base with Some b -> taint_field t b.Value.id f | None -> ())
       | R_intent (i, key) ->
         (match List.nth_opt iv.args i with
          | Some (Value.Local l) -> taint_intent t l.Value.id key
          | Some (Value.Const _) | None -> ()))
    res;
  ignore st

(** Static-field search (Sec. V-A): capture the methods that write a newly
    tainted static field, so only matching contained methods are analysed;
    writers that are [<clinit>]s join the SSG's static track. *)
and locate_static_writers st ~path ~cdepth f =
  ignore path;
  ignore cdepth;
  let hits =
    Bytesearch.Engine.run st.engine
      (Bytesearch.Query.Static_field_access (Sigformat.to_dex_field f))
  in
  List.iter
    (fun (h : Bytesearch.Engine.hit) ->
       if Jsig.is_clinit h.owner then Ssg.add_static_track st.ssg h.owner)
    hits

(** Compute the residual taints once the scan reaches the method entry. *)
and residuals_of st meth t =
  let m = Program.find_method st.program meth in
  match m with
  | None -> []
  | Some m ->
    let this_id =
      match Jmethod.this_local m with Some l -> Some l.Value.id | None -> None
    in
    let param_ids =
      List.mapi (fun i ty -> ignore ty; (i, Jmethod.param_local m i))
        m.Jmethod.msig.Jsig.params
      |> List.filter_map (fun (i, l) ->
          match l with Some l -> Some (i, l.Value.id) | None -> None)
    in
    let param_index id =
      List.find_opt (fun (_, pid) -> String.equal pid id) param_ids
      |> Option.map fst
    in
    let acc = ref [] in
    Hashtbl.iter
      (fun id () ->
         if Some id = this_id then acc := R_this :: !acc
         else
           match param_index id with
           | Some i -> acc := R_param i :: !acc
           | None -> ())
      t.locals;
    Hashtbl.iter
      (fun key f ->
         match String.index_opt key '#' with
         | None -> ()
         | Some i ->
           let id = String.sub key 0 i in
           if Some id = this_id then acc := R_this_field f :: !acc
           else
             match param_index id with
             | Some pi -> acc := R_param_field (pi, f) :: !acc
             | None -> ())
      t.fields;
    Hashtbl.iter
      (fun (id, k) () ->
         if id = getintent_marker then acc := R_intent (-1, k) :: !acc
         else
           match param_index id with
           | Some i -> acc := R_intent (i, k) :: !acc
           | None -> ())
      t.intents;
    List.iter
      (fun r ->
         match r with
         | R_acc_param i ->
           if not (List.mem (R_param i) !acc) then acc := R_param i :: !acc
         | R_acc_this ->
           if not (List.mem R_this !acc) then acc := R_this :: !acc)
      t.settled;
    ignore st;
    !acc

(* ------------------------------------------------------------------ *)
(* Inter-procedural backtracking                                        *)

type work = {
  w_meth : Jsig.meth;
  w_from : int;
  w_taints : taints;
  w_path : Jsig.meth list;
  w_depth : int;
}

(** Memoized control-flow reachability of a method from registered entry
    points — this is both the tail of every empty-taint backtracking path and
    the paper's sink-API-call cache (Sec. IV-F).  Successful paths record
    their inter-procedural edges and entry methods into the SSG so the
    forward analysis can replay them. *)
let rec method_reachable st path (m : Jsig.meth) =
  let key = Jsig.meth_to_string m in
  incr st.reach_total;
  match Hashtbl.find_opt st.reach_cache key with
  | Some r ->
    incr st.reach_cached;
    if r then note_entry_if_needed st m;
    r
  | None ->
    if Loopdetect.on_path path m then begin
      Loopdetect.record st.loops Loopdetect.Cross_backward;
      false
    end
    else if List.length path > st.cfg.max_depth then false
    else begin
      let r = compute_reachable st (m :: path) m in
      Hashtbl.replace st.reach_cache key r;
      r
    end

and note_entry_if_needed st m =
  if Lifecycle_search.is_entry st.program st.manifest m then
    Ssg.add_entry st.ssg m

and compute_reachable st path (m : Jsig.meth) =
  if Lifecycle_search.is_entry st.program st.manifest m then begin
    Ssg.add_entry st.ssg m;
    true
  end
  else
    match Dispatch.classify st.program m with
    | Dispatch.Lifecycle ->
      (* a lifecycle handler of an unregistered component: deactivated *)
      false
    | Dispatch.Clinit ->
      let ok, _chain = Clinit_search.clinit_reachable st.engine st.manifest m in
      if ok then Ssg.add_entry st.ssg m;
      ok
    | Dispatch.Basic ->
      List.exists
        (fun (cs : Basic_search.call_site) ->
           let r = method_reachable st path cs.caller in
           if r then
             Ssg.add_edge st.ssg
               (Ssg.Call { caller = cs.caller; site = cs.site; callee = m });
           r)
        (Basic_search.callers st.engine m)
    | Dispatch.Advanced ->
      List.exists
        (fun (ac : Object_taint.advanced_caller) ->
           let r = method_reachable st path ac.caller in
           if r then
             Ssg.add_edge st.ssg
               (Ssg.Async
                  { caller = ac.caller; ctor_site = ac.obj_site;
                    ctor_local = ac.obj_local; callee = m; chain = ac.chain;
                    ending = ac.ending });
           r)
        (Object_taint.advanced_callers st.engine st.loops m)

(** Continue backtracking from the entry of [w.w_meth] given its residual
    taints, pushing new work items onto [queue]. *)
let continue_to_callers st queue (w : work) res =
  let m = w.w_meth in
  Log.debug (fun l ->
      l "entry of %s: %d residual taints, strategy %s"
        (Jsig.meth_to_string m) (List.length res)
        (Dispatch.to_string (Dispatch.classify st.program m)));
  let push meth from taints =
    if st.work_count < st.cfg.max_work && List.length w.w_path <= st.cfg.max_depth
    then begin
      st.work_count <- st.work_count + 1;
      Queue.add
        { w_meth = meth; w_from = from; w_taints = taints;
          w_path = m :: w.w_path; w_depth = w.w_depth + 1 }
        queue
    end
  in
  let guard_path callee k =
    if Loopdetect.on_path w.w_path callee then
      Loopdetect.record st.loops Loopdetect.Cross_backward
    else k ()
  in
  let has_intent_res =
    List.exists (function R_intent _ -> true | _ -> false) res
  in
  if res = [] then begin
    (* dataflow fully resolved: only control-flow reachability remains *)
    if method_reachable st w.w_path m then st.ssg.Ssg.reachable <- true
  end
  else if has_intent_res && Lifecycle_search.is_lifecycle_handler st.program m
  then begin
    (* ICC boundary: the residual data lives in the launching Intent *)
    match Manifest.App_manifest.find_component st.manifest m.Jsig.cls with
    | None -> ()  (* unregistered component: path invalid *)
    | Some component ->
      let sites = Icc_search.callers st.engine ~component in
      List.iter
        (fun (site : Icc_search.icc_site) ->
           guard_path site.caller (fun () ->
               Ssg.add_edge st.ssg
                 (Ssg.Icc { caller = site.caller; site = site.site; handler = m });
               let t = fresh_taints () in
               List.iter
                 (function
                   | R_intent (_, key) -> taint_intent t site.intent_local key
                   | R_param _ | R_param_field _ | R_this | R_this_field _ -> ())
                 res;
               push site.caller (site.site - 1) t))
        sites
  end
  else if Lifecycle_search.is_lifecycle_handler st.program m then begin
    if Manifest.App_manifest.is_entry_class st.manifest m.Jsig.cls then begin
      Ssg.add_entry st.ssg m;
      let this_fields =
        List.filter_map (function R_this_field f -> Some f | _ -> None) res
      in
      if this_fields = [] then
        (* residual params are framework-provided: flow complete *)
        st.ssg.Ssg.reachable <- true
      else begin
        (* search earlier handlers of the same component for the fields *)
        let preds = Lifecycle_search.predecessor_handlers st.program m in
        if preds = [] then st.ssg.Ssg.reachable <- true
        else
          List.iter
            (fun pre ->
               guard_path pre (fun () ->
                   Ssg.add_edge st.ssg (Ssg.Lifecycle { pre; handler = m });
                   match Program.find_method st.program pre with
                   | Some { Jmethod.body = Some body; _ } as mo ->
                     let t = fresh_taints () in
                     (match Option.get mo |> Jmethod.this_local with
                      | Some this_l ->
                        List.iter (fun f -> taint_field t this_l.Value.id f)
                          this_fields
                      | None -> ());
                     push pre (Array.length body - 1) t
                   | Some { Jmethod.body = None; _ } | None -> ()))
            preds
      end
    end
    (* else: unregistered component — path invalid *)
  end
  else
    match Dispatch.classify st.program m with
    | Dispatch.Clinit ->
      (* no dataflow crosses a <clinit>; only reachability matters, and
         remaining static-field taints resolve off-path *)
      let ok, _ = Clinit_search.clinit_reachable st.engine st.manifest m in
      if ok then begin
        Ssg.add_entry st.ssg m;
        st.ssg.Ssg.reachable <- true
      end
    | Dispatch.Lifecycle -> ()  (* handled above *)
    | Dispatch.Basic ->
      List.iter
        (fun (cs : Basic_search.call_site) ->
           guard_path cs.caller (fun () ->
               Ssg.add_edge st.ssg
                 (Ssg.Call { caller = cs.caller; site = cs.site; callee = m });
               let t = fresh_taints () in
               List.iter
                 (fun r ->
                    match r with
                    | R_param i ->
                      (match List.nth_opt cs.invoke.Expr.args i with
                       | Some (Value.Local l) -> taint_local t l.Value.id
                       | Some (Value.Const _) | None -> ())
                    | R_param_field (i, f) ->
                      (match List.nth_opt cs.invoke.Expr.args i with
                       | Some (Value.Local l) -> taint_field t l.Value.id f
                       | Some (Value.Const _) | None -> ())
                    | R_this ->
                      (match cs.invoke.Expr.base with
                       | Some b -> taint_local t b.Value.id
                       | None -> ())
                    | R_this_field f ->
                      (match cs.invoke.Expr.base with
                       | Some b -> taint_field t b.Value.id f
                       | None -> ())
                    | R_intent (i, key) ->
                      (match List.nth_opt cs.invoke.Expr.args i with
                       | Some (Value.Local l) -> taint_intent t l.Value.id key
                       | Some (Value.Const _) | None -> ()))
                 res;
               push cs.caller (cs.site - 1) t))
        (Basic_search.callers st.engine m)
    | Dispatch.Advanced ->
      List.iter
        (fun (ac : Object_taint.advanced_caller) ->
           guard_path ac.caller (fun () ->
               Ssg.add_edge st.ssg
                 (Ssg.Async
                    { caller = ac.caller; ctor_site = ac.obj_site;
                      ctor_local = ac.obj_local; callee = m; chain = ac.chain;
                      ending = ac.ending });
               (* this-side residuals map onto the constructor object in the
                  chain head; the whole head body is rescanned since fields
                  may be written anywhere before the callback fires *)
               let this_fields =
                 List.filter_map
                   (function R_this_field f -> Some f | _ -> None)
                   res
               in
               let this_res = List.exists (function R_this -> true | _ -> false) res in
               (match Program.find_method st.program ac.caller with
                | Some { Jmethod.body = Some body; _ } ->
                  let t = fresh_taints () in
                  List.iter (fun f -> taint_field t ac.obj_local f) this_fields;
                  if this_res then taint_local t ac.obj_local;
                  if not (is_empty t) then push ac.caller (Array.length body - 1) t
                  else if method_reachable st w.w_path ac.caller then
                    st.ssg.Ssg.reachable <- true
                | Some { Jmethod.body = None; _ } | None -> ());
               (* parameter residuals map at an app-level ending call *)
               (match ac.ending_invoke with
                | Some iv ->
                  let t = fresh_taints () in
                  List.iter
                    (fun r ->
                       match r with
                       | R_param i ->
                         (match List.nth_opt iv.Expr.args i with
                          | Some (Value.Local l) -> taint_local t l.Value.id
                          | Some (Value.Const _) | None -> ())
                       | R_param_field (i, f) ->
                         (match List.nth_opt iv.Expr.args i with
                          | Some (Value.Local l) -> taint_field t l.Value.id f
                          | Some (Value.Const _) | None -> ())
                       | R_this | R_this_field _ | R_intent _ -> ())
                    res;
                  if not (is_empty t) then
                    push ac.ending_in (ac.ending_site - 1) t
                | None ->
                  (* framework ending: callee params are framework inputs *)
                  ())))
        (Object_taint.advanced_callers st.engine st.loops m)

(** Resolve still-untainted static fields by adding their classes'
    [<clinit>] methods to the SSG's static track (off-path static
    initializers, Sec. V-A). *)
let add_off_path_clinits st =
  List.iter
    (fun (f : Jsig.field) ->
       match Program.find_class st.program f.Jsig.fcls with
       | Some c ->
         (match Jclass.clinit c with
          | Some clinit -> Ssg.add_static_track st.ssg clinit.Jmethod.msig
          | None -> ())
       | None -> ())
    st.ssg.Ssg.global_static_taints

(** Slice one sink API call occurrence, producing its SSG. *)
let slice ~engine ~manifest ~loops ~reach_cache ~reach_total ~reach_cached
    ?(cfg = default_config) ~(sink : Sinks.t) ~sink_meth ~sink_site () =
  let program = Bytesearch.Engine.program engine in
  let ssg = Ssg.create ~sink ~sink_meth ~sink_site in
  let st =
    { engine; program; manifest; loops; cfg; ssg; reach_cache; reach_total;
      reach_cached; work_count = 0 }
  in
  (match Program.find_method program sink_meth with
   | Some { Jmethod.body = Some body; _ } when sink_site < Array.length body ->
     let stmt = body.(sink_site) in
     record st sink_meth sink_site stmt;
     let t = fresh_taints () in
     (match Stmt.invoke stmt with
      | Some iv ->
        (match List.nth_opt iv.Expr.args sink.Sinks.param_index with
         | Some (Value.Local l) -> taint_local t l.Value.id
         | Some (Value.Const _) | None -> ())
      | None -> ());
     let queue = Queue.create () in
     Queue.add
       { w_meth = sink_meth; w_from = sink_site - 1; w_taints = t;
         w_path = []; w_depth = 0 }
       queue;
     while not (Queue.is_empty queue) do
       let w = Queue.pop queue in
       match Program.find_method program w.w_meth with
       | Some { Jmethod.body = Some body; _ } ->
         let res =
           scan st ~path:(w.w_meth :: w.w_path) ~cdepth:0 w.w_meth body
             ~from_idx:w.w_from w.w_taints
         in
         continue_to_callers st queue w res
       | Some { Jmethod.body = None; _ } | None -> ()
     done;
     add_off_path_clinits st
   | Some { Jmethod.body = None; _ } | Some _ | None -> ());
  ssg
