(** Method and field signatures, in Soot's textual conventions.

    A full method signature prints as
    [<com.foo.Bar: void start(java.lang.String)>] and a sub-signature (the
    class-independent part used for virtual dispatch) as
    [void start(java.lang.String)]. *)

type meth = {
  cls : string;
  name : string;
  params : Types.t list;
  ret : Types.t;
}
type field = { fcls : string; fname : string; fty : Types.t; }
val meth :
  cls:string ->
  name:string -> params:Types.t list -> ret:Types.t -> meth
val field : cls:string -> name:string -> ty:Types.t -> field
val meth_equal : meth -> meth -> bool
val field_equal : field -> field -> bool
val is_init : meth -> bool
val is_clinit : meth -> bool

(** Class-independent part of a method signature: [ret name(p1,p2)].  Two
    methods with equal sub-signatures are in an overriding relation when their
    classes are. *)
val sub_signature : meth -> string

(** Full Soot-format signature: [<cls: ret name(p1,p2)>]. *)
val meth_to_string : meth -> string
val field_to_string : field -> string

(** Parse a Soot-format method signature produced by {!meth_to_string}.
    Raises [Invalid_argument] on malformed input. *)
val meth_of_string : string -> meth

(** Interned full signature (memoized {!meth_to_string}): [Sym.id] of the
    result is an O(1) dedup key, [Sym.to_string] the rendered signature. *)
val meth_sym : meth -> Sym.t

(** Interned sub-signature (memoized {!sub_signature}): overriding-relation
    checks become integer equality. *)
val subsig_sym : meth -> Sym.t
val pp_meth : Format.formatter -> meth -> unit
val pp_field : Format.formatter -> field -> unit
module Meth_key :
  sig
    type t = meth
    val equal : meth -> meth -> bool
    val hash : meth -> int
  end
module Meth_tbl :
  sig
    type key = Meth_key.t
    type 'a t = 'a Hashtbl.Make(Meth_key).t
    val create : int -> 'a t
    val clear : 'a t -> unit
    val reset : 'a t -> unit
    val copy : 'a t -> 'a t
    val add : 'a t -> key -> 'a -> unit
    val remove : 'a t -> key -> unit
    val find : 'a t -> key -> 'a
    val find_opt : 'a t -> key -> 'a option
    val find_all : 'a t -> key -> 'a list
    val replace : 'a t -> key -> 'a -> unit
    val mem : 'a t -> key -> bool
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val filter_map_inplace : (key -> 'a -> 'a option) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val length : 'a t -> int
    val stats : 'a t -> Hashtbl.statistics
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_keys : 'a t -> key Seq.t
    val to_seq_values : 'a t -> 'a Seq.t
    val add_seq : 'a t -> (key * 'a) Seq.t -> unit
    val replace_seq : 'a t -> (key * 'a) Seq.t -> unit
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
module Field_key :
  sig
    type t = field
    val equal : field -> field -> bool
    val hash : field -> int
  end
module Field_tbl :
  sig
    type key = Field_key.t
    type 'a t = 'a Hashtbl.Make(Field_key).t
    val create : int -> 'a t
    val clear : 'a t -> unit
    val reset : 'a t -> unit
    val copy : 'a t -> 'a t
    val add : 'a t -> key -> 'a -> unit
    val remove : 'a t -> key -> unit
    val find : 'a t -> key -> 'a
    val find_opt : 'a t -> key -> 'a option
    val find_all : 'a t -> key -> 'a list
    val replace : 'a t -> key -> 'a -> unit
    val mem : 'a t -> key -> bool
    val iter : (key -> 'a -> unit) -> 'a t -> unit
    val filter_map_inplace : (key -> 'a -> 'a option) -> 'a t -> unit
    val fold : (key -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
    val length : 'a t -> int
    val stats : 'a t -> Hashtbl.statistics
    val to_seq : 'a t -> (key * 'a) Seq.t
    val to_seq_keys : 'a t -> key Seq.t
    val to_seq_values : 'a t -> 'a Seq.t
    val add_seq : 'a t -> (key * 'a) Seq.t -> unit
    val replace_seq : 'a t -> (key * 'a) Seq.t -> unit
    val of_seq : (key * 'a) Seq.t -> 'a t
  end
