lib/ir/pp.ml: Array Fmt Jclass Jmethod Jsig List Program Stmt String
