lib/ir/jclass.ml: Jmethod Jsig List String Types
