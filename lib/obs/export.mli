(** OpenMetrics/Prometheus text exposition of a {!Metrics} snapshot, so a
    resident analysis service can be scraped without a JSON shim.

    Counters render as OpenMetrics [counter] families (one [_total]
    sample); histograms render as [summary] families — p50/p90/p99
    [quantile] samples (via {!Metrics.quantile}) plus [_sum]/[_count] —
    because the registry's log2 buckets are not the cumulative [le]
    buckets Prometheus histograms require, and quantiles are what the
    dashboards want anyway.  Dots and other characters outside the
    exposition charset are folded to ['_'] and every family gets a
    [backdroid_] prefix. *)

(** Fold a registry name (["search.cache.hits"]) into the exposition
    charset and prefix it (["backdroid_search_cache_hits"]). *)
val sanitize : ?prefix:string -> string -> string

(** Render a snapshot as OpenMetrics text, terminated by [# EOF]. *)
val openmetrics : ?prefix:string -> Metrics.snapshot -> string

(** Strictly check [text] against the exposition grammar subset emitted
    by {!openmetrics} (promtool-style), used by the CI format gate and
    the unit tests — rejects interleaved families, samples before their
    [# TYPE], bad metric names, unparseable values, and a missing
    [# EOF].  Errors carry the offending line number. *)
val validate : string -> (unit, string) result
