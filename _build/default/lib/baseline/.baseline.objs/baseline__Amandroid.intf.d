lib/baseline/amandroid.mli: Backdroid Callgraph Framework Ir Manifest
