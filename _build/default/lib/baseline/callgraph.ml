(** Whole-app call-graph construction — the phase every existing tool needs
    before any inter-procedural analysis (Sec. II-A).  Built from all entry
    points with CHA dispatch, domain-knowledge callback/async edges, implicit
    [<clinit>] edges and ICC edges.  The [config] flags encode the documented
    behaviours (and gaps) of the Amandroid baseline. *)

open Ir
module Api = Framework.Api

exception Timeout

type config = {
  skip_packages : string list;
      (** liblist packages whose methods are not analysed *)
  connect_thread : bool;      (** Thread.start() -> run() *)
  connect_executor : bool;    (** Executor.execute() -> run() (a gap when off) *)
  connect_asynctask : bool;   (** AsyncTask.execute() -> doInBackground() *)
  connect_onclick : bool;     (** setOnClickListener() -> onClick() *)
  icc : bool;
  unregistered_components_are_entries : bool;
      (** treat every framework-component subclass as an entry, manifest or
          not — the source of the baseline's false positives *)
  deadline : float option;    (** absolute Unix time to abort at *)
}

(** Amandroid-like defaults: liblist skipping on, the async/callback gaps the
    paper documents (Executor / AsyncTask / onClick missing), unregistered
    components treated as entries. *)
let amandroid_config =
  { skip_packages = Liblist.default;
    connect_thread = true;
    connect_executor = false;
    connect_asynctask = false;
    connect_onclick = false;
    icc = true;
    unregistered_components_are_entries = true;
    deadline = None }

(** A robust configuration without the documented gaps (for ablations). *)
let robust_config =
  { amandroid_config with
    skip_packages = [];
    connect_executor = true;
    connect_asynctask = true;
    connect_onclick = true;
    unregistered_components_are_entries = false }

type t = {
  entries : Jsig.meth list;
  reachable : (string, unit) Hashtbl.t;  (** reachable method signatures *)
  mutable edge_count : int;
  mutable method_count : int;
}

let check_deadline cfg =
  match cfg.deadline with
  | Some d when Unix.gettimeofday () > d -> raise Timeout
  | Some _ | None -> ()

let skipped cfg cls = Liblist.skipped ~packages:cfg.skip_packages cls

(** Entry points: manifest-registered lifecycle handlers, plus (when the
    imprecise flag is set) handlers of every framework-component subclass. *)
let entry_points cfg program (manifest : Manifest.App_manifest.t) =
  let registered = Manifest.App_manifest.entry_methods manifest program in
  if not cfg.unregistered_components_are_entries then registered
  else begin
    let extra = ref [] in
    Program.iter_classes program (fun c ->
        if not c.Jclass.is_system then begin
          let is_component =
            List.exists
              (fun kind ->
                 Program.is_subclass_of program ~sub:c.Jclass.name
                   ~super:(Manifest.Component.framework_class kind))
              [ Manifest.Component.Activity; Service; Receiver; Provider ]
          in
          if is_component then
            List.iter
              (fun (m : Jmethod.t) ->
                 if
                   Manifest.Lifecycle.is_lifecycle_subsig
                     (Jmethod.sub_signature m)
                 then extra := m.Jmethod.msig :: !extra)
              c.Jclass.methods
        end);
    registered @ !extra
  end

(** The static receiver/argument class at an async registration site, used
    for the domain-knowledge edges. *)
let local_class (l : Value.local) = Types.base_class l.Value.ty

(** Domain-knowledge callback/async targets for one invocation. *)
let async_targets cfg program (iv : Expr.invoke) =
  let resolve cls subsig =
    match cls with
    | None -> []
    | Some cls ->
      (match Program.resolve_method program cls subsig with
       | Some (c, m) when m.Jmethod.body <> None && not c.Jclass.is_system ->
         [ m.Jmethod.msig ]
       | Some _ | None -> [])
  in
  let arg_class i =
    match List.nth_opt iv.args i with
    | Some (Value.Local l) -> local_class l
    | Some (Value.Const _) | None -> None
  in
  let recv_class = Option.bind iv.base local_class in
  let name = iv.callee.Jsig.name and cls = iv.callee.Jsig.cls in
  if cfg.connect_thread && name = "start" && cls = "java.lang.Thread" then
    (* thread subclasses override run() directly; plain Thread wraps a
       Runnable whose class the CG builder recovers at the ctor site *)
    resolve recv_class "void run()"
  else if cfg.connect_thread && Jsig.is_init iv.callee
          && cls = "java.lang.Thread" then
    resolve (arg_class 0) "void run()"
  else if cfg.connect_executor && name = "execute"
          && cls = "java.util.concurrent.Executor" then
    resolve (arg_class 0) "void run()"
  else if cfg.connect_asynctask && name = "execute"
          && cls = "android.os.AsyncTask" then
    resolve recv_class "java.lang.Object doInBackground(java.lang.Object[])"
  else if cfg.connect_onclick && name = "setOnClickListener" then
    resolve (arg_class 0) "void onClick(android.view.View)"
  else []

(** ICC targets: resolve the Intent built in the same body (explicit
    [const-class] target or implicit action string) to the lifecycle handlers
    of matching registered components. *)
let icc_targets cfg program manifest body (iv : Expr.invoke) =
  if not cfg.icc then []
  else
    match iv.callee.Jsig.name with
    | "startService" | "startActivity" | "sendBroadcast" ->
      let components = ref [] in
      Array.iter
        (fun stmt ->
           match stmt with
           | Stmt.Assign (_, Expr.Imm (Value.Const (Value.Class_c c))) ->
             if Manifest.App_manifest.is_entry_class manifest c then
               components := c :: !components
           | Stmt.Assign (_, Expr.Imm (Value.Const (Value.Str_c s))) ->
             List.iter
               (fun (comp : Manifest.Component.t) ->
                  components := comp.cls :: !components)
               (Manifest.App_manifest.components_matching_action manifest s)
           | _ -> ())
        body;
      List.concat_map
        (fun cls ->
           match Program.find_class program cls with
           | Some c ->
             List.filter_map
               (fun (m : Jmethod.t) ->
                  if
                    Manifest.Lifecycle.is_lifecycle_subsig
                      (Jmethod.sub_signature m)
                  then Some m.Jmethod.msig
                  else None)
               c.Jclass.methods
           | None -> [])
        (List.sort_uniq String.compare !components)
    | _ -> []

(** Build the whole-app call graph: worklist from all entry points. *)
let build ?(cfg = amandroid_config) program manifest =
  let t =
    { entries = entry_points cfg program manifest;
      reachable = Hashtbl.create 1024;
      edge_count = 0;
      method_count = 0 }
  in
  let queue = Queue.create () in
  let enqueue m =
    let key = Jsig.meth_to_string m in
    if not (Hashtbl.mem t.reachable key) then begin
      Hashtbl.replace t.reachable key ();
      t.method_count <- t.method_count + 1;
      Queue.add m queue
    end
  in
  let touch_class cls =
    if not (skipped cfg cls) then
      match Program.find_class program cls with
      | Some c when not c.Jclass.is_system ->
        (match Jclass.clinit c with
         | Some m -> enqueue m.Jmethod.msig
         | None -> ())
      | Some _ | None -> ()
  in
  List.iter enqueue t.entries;
  while not (Queue.is_empty queue) do
    check_deadline cfg;
    let m = Queue.pop queue in
    match Program.find_method program m with
    | None | Some { Jmethod.body = None; _ } -> ()
    | Some jm ->
      let body = Option.get jm.Jmethod.body in
      Array.iter
        (fun stmt ->
           (match stmt with
            | Stmt.Assign (_, Expr.New c) -> touch_class c
            | Stmt.Assign (_, Expr.Static_get f) -> touch_class f.Jsig.fcls
            | Stmt.Static_put (f, _) -> touch_class f.Jsig.fcls
            | _ -> ());
           match Stmt.invoke stmt with
           | None -> ()
           | Some iv ->
             let direct =
               Cha.targets program iv
               |> List.filter (fun (tm : Jsig.meth) -> not (skipped cfg tm.cls))
             in
             let extra =
               async_targets cfg program iv
               @ icc_targets cfg program manifest body iv
             in
             List.iter
               (fun tm ->
                  t.edge_count <- t.edge_count + 1;
                  enqueue tm)
               (direct @ extra);
             touch_class iv.callee.Jsig.cls)
        body
  done;
  t

let is_reachable t m = Hashtbl.mem t.reachable (Jsig.meth_to_string m)
