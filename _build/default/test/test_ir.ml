(* Unit and property tests for the IR substrate. *)

open Ir

let qcheck = QCheck_alcotest.to_alcotest

(* --- generators --- *)

let gen_type =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneofl
            [ Types.Void; Types.Boolean; Types.Byte; Types.Char; Types.Short;
              Types.Int; Types.Long; Types.Float; Types.Double;
              Types.Object "java.lang.String"; Types.Object "com.example.Foo" ]
        in
        if n <= 0 then base
        else frequency [ 3, base; 1, map (fun t -> Types.Array t) (self (n / 2)) ]))

let arb_type = QCheck.make ~print:Types.to_string gen_type

let gen_nonvoid = QCheck.Gen.(map (function Types.Void -> Types.Int | t -> t) gen_type)
let arb_nonvoid = QCheck.make ~print:Types.to_string gen_nonvoid

let gen_meth =
  QCheck.Gen.(
    let* cls = oneofl [ "com.a.B"; "com.foo.bar.Baz"; "x.Y$1"; "single.K" ] in
    let* name = oneofl [ "run"; "doWork"; "<init>"; "<clinit>"; "getX" ] in
    let* params = list_size (int_bound 4) gen_nonvoid in
    let* ret = gen_type in
    return (Jsig.meth ~cls ~name ~params ~ret))

let arb_meth = QCheck.make ~print:Jsig.meth_to_string gen_meth

(* --- properties --- *)

let type_roundtrip =
  QCheck.Test.make ~name:"Types.of_string/to_string roundtrip" ~count:200
    arb_type (fun t -> Types.equal (Types.of_string (Types.to_string t)) t)

let meth_roundtrip =
  QCheck.Test.make ~name:"Jsig.meth_of_string/to_string roundtrip" ~count:200
    arb_meth (fun m -> Jsig.meth_equal (Jsig.meth_of_string (Jsig.meth_to_string m)) m)

let subsig_class_independent =
  QCheck.Test.make ~name:"sub_signature is class independent" ~count:100
    arb_meth (fun m ->
      String.equal (Jsig.sub_signature m)
        (Jsig.sub_signature { m with Jsig.cls = "other.Cls" }))

(* --- unit tests --- *)

let mk_class ?super ?(interfaces = []) ?(methods = []) name =
  Jclass.make ?super ~interfaces ~methods name

let sample_program () =
  let m cls name =
    Ir.Builder.method_ ~cls ~name ~params:[] ~ret:Types.Void (fun mb ->
        Ir.Builder.return_void mb)
  in
  Ir.Program.of_classes
    [ mk_class "a.Base" ~methods:[ m "a.Base" "go"; m "a.Base" "only" ];
      mk_class "a.Mid" ~super:(Some "a.Base") ~methods:[ m "a.Mid" "go" ];
      mk_class "a.Leaf" ~super:(Some "a.Mid");
      mk_class "a.I" ~methods:[] ~interfaces:[];
      { (mk_class "a.Iface") with Jclass.is_interface = true };
      mk_class "a.Impl" ~interfaces:[ "a.Iface" ] ]

let test_superclasses () =
  let p = sample_program () in
  Alcotest.(check (list string)) "leaf superclasses"
    [ "a.Mid"; "a.Base"; "java.lang.Object" ]
    (Program.superclasses p "a.Leaf")

let test_subclasses () =
  let p = sample_program () in
  Alcotest.(check (list string)) "base subclasses (sorted)"
    [ "a.Leaf"; "a.Mid" ]
    (List.sort String.compare (Program.subclasses_transitive p "a.Base"))

let test_resolve_override () =
  let p = sample_program () in
  match Program.resolve_method p "a.Leaf" "void go()" with
  | Some (cls, _) -> Alcotest.(check string) "resolves to Mid.go" "a.Mid" cls.Jclass.name
  | None -> Alcotest.fail "void go() not resolved"

let test_resolve_inherited () =
  let p = sample_program () in
  match Program.resolve_method p "a.Leaf" "void only()" with
  | Some (cls, _) -> Alcotest.(check string) "resolves to Base.only" "a.Base" cls.Jclass.name
  | None -> Alcotest.fail "void only() not resolved"

let test_subclass_overrides () =
  let p = sample_program () in
  Alcotest.(check bool) "go is overridden below Base" true
    (Program.subclass_overrides p "a.Base" "void go()");
  Alcotest.(check bool) "only is not overridden" false
    (Program.subclass_overrides p "a.Base" "void only()")

let test_overrides_foreign () =
  let p = sample_program () in
  Alcotest.(check bool) "Mid.go overrides Base.go" true
    (Program.overrides_foreign_declaration p
       (Jsig.meth ~cls:"a.Mid" ~name:"go" ~params:[] ~ret:Types.Void));
  Alcotest.(check bool) "Base.only overrides nothing" false
    (Program.overrides_foreign_declaration p
       (Jsig.meth ~cls:"a.Base" ~name:"only" ~params:[] ~ret:Types.Void))

let test_builder_identity_stmts () =
  let m =
    Ir.Builder.method_ ~cls:"t.C" ~name:"f" ~params:[ Types.Int; Types.string_ ]
      ~ret:Types.Void (fun mb ->
        ignore (Ir.Builder.const_int mb 42))
  in
  (match Jmethod.this_local m with
   | Some l -> Alcotest.(check string) "this type" "t.C" (Types.to_string l.Value.ty)
   | None -> Alcotest.fail "no this local");
  (match Jmethod.param_local m 1 with
   | Some l ->
     Alcotest.(check string) "param1 type" "java.lang.String"
       (Types.to_string l.Value.ty)
   | None -> Alcotest.fail "no param1 local");
  let body = Option.get m.Jmethod.body in
  (match body.(Array.length body - 1) with
   | Stmt.Return None -> ()
   | s -> Alcotest.fail ("auto return missing: " ^ Stmt.to_string s))

let test_static_method_no_this () =
  let m =
    Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls:"t.C" ~name:"s"
      ~params:[] ~ret:Types.Void (fun _ -> ())
  in
  Alcotest.(check bool) "static has no this" true (Jmethod.this_local m = None);
  Alcotest.(check bool) "static is a signature method" true
    (Jmethod.is_signature_method m)

let test_clinit_not_signature_method () =
  let m = Ir.Builder.clinit ~cls:"t.C" (fun _ -> ()) in
  Alcotest.(check bool) "clinit excluded from signature methods" false
    (Jmethod.is_signature_method m)

let test_stmt_def_use () =
  let l = { Value.id = "$r0"; ty = Types.Int } in
  let r = { Value.id = "$r1"; ty = Types.Int } in
  let s = Stmt.Assign (l, Expr.Binop (Expr.Add, Value.Local r, Value.Const (Value.Int_c 1))) in
  (match Stmt.def s with
   | Some d -> Alcotest.(check string) "def" "$r0" d.Value.id
   | None -> Alcotest.fail "no def");
  Alcotest.(check int) "uses" 2 (List.length (Stmt.uses s))

let test_code_size_excludes_system () =
  let p =
    Ir.Program.of_classes
      (Framework.Stubs.classes ()
       @ [ mk_class "app.C"
             ~methods:
               [ Ir.Builder.method_ ~cls:"app.C" ~name:"f" ~params:[]
                   ~ret:Types.Void (fun mb -> Ir.Builder.return_void mb) ] ])
  in
  (* body: this identity + return *)
  Alcotest.(check int) "app stmts only" 2 (Program.code_size p)

let unit_cases =
  [ Alcotest.test_case "superclasses" `Quick test_superclasses;
    Alcotest.test_case "subclasses" `Quick test_subclasses;
    Alcotest.test_case "resolve override" `Quick test_resolve_override;
    Alcotest.test_case "resolve inherited" `Quick test_resolve_inherited;
    Alcotest.test_case "subclass_overrides" `Quick test_subclass_overrides;
    Alcotest.test_case "overrides_foreign_declaration" `Quick test_overrides_foreign;
    Alcotest.test_case "builder identity stmts" `Quick test_builder_identity_stmts;
    Alcotest.test_case "static method" `Quick test_static_method_no_this;
    Alcotest.test_case "clinit dispatch exclusion" `Quick test_clinit_not_signature_method;
    Alcotest.test_case "stmt def/use" `Quick test_stmt_def_use;
    Alcotest.test_case "code_size excludes system" `Quick test_code_size_excludes_system ]

let prop_cases =
  List.map qcheck [ type_roundtrip; meth_roundtrip; subsig_class_independent ]

let suites = [ "ir.unit", unit_cases; "ir.props", prop_cases ]
