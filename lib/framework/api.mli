(** Well-known Android / Java framework API signatures.

    These are the signatures both the app generator and the analyses refer
    to; the corresponding stub classes live in {!module:Stubs}. *)

val obj : Ir.Types.t
val str : Ir.Types.t
val intent_t : Ir.Types.t
val runnable_t : Ir.Types.t
val bundle_t : Ir.Types.t
val view_t : Ir.Types.t
val context_t : Ir.Types.t
val cipher_t : Ir.Types.t
val x509_verifier_t : Ir.Types.t
val hostname_verifier_t : Ir.Types.t
val ssl_socket_factory_t : Ir.Types.t
val async_task_t : Ir.Types.t
val executor_t : Ir.Types.t
val thread_t : Ir.Types.t
val on_click_listener_t : Ir.Types.t
val sms_manager_t : Ir.Types.t
val pending_intent_t : Ir.Types.t
val ibinder_t : Ir.Types.t
val string_builder_t : Ir.Types.t
val webview_t : Ir.Types.t
val sqlite_db_t : Ir.Types.t
val cursor_t : Ir.Types.t
val m :
  cls:string ->
  name:string -> params:Ir.Types.t list -> ret:Ir.Types.t -> Ir.Jsig.meth
val object_init : Ir.Jsig.meth
val runnable_run : Ir.Jsig.meth
val thread_init_runnable : Ir.Jsig.meth
val thread_start : Ir.Jsig.meth
val thread_run : Ir.Jsig.meth
val executor_execute : Ir.Jsig.meth
val executors_new_single : Ir.Jsig.meth
val async_task_execute : Ir.Jsig.meth
val async_task_do_in_background : Ir.Jsig.meth
val activity_on_create : Ir.Jsig.meth
val activity_get_intent : Ir.Jsig.meth
val context_start_service : Ir.Jsig.meth
val context_start_activity : Ir.Jsig.meth
val context_send_broadcast : Ir.Jsig.meth
val intent_init_empty : Ir.Jsig.meth
val intent_init_explicit : Ir.Jsig.meth
val intent_set_action : Ir.Jsig.meth
val intent_put_extra : Ir.Jsig.meth
val intent_get_string_extra : Ir.Jsig.meth
val view_set_on_click_listener : Ir.Jsig.meth
val on_click : Ir.Jsig.meth
val cipher_get_instance : Ir.Jsig.meth
val ssl_set_hostname_verifier : Ir.Jsig.meth
val https_set_hostname_verifier : Ir.Jsig.meth
val sms_send_text_message : Ir.Jsig.meth
val sms_get_default : Ir.Jsig.meth
val server_socket_init : Ir.Jsig.meth
val local_server_socket_init : Ir.Jsig.meth
val webview_init : Ir.Jsig.meth
val webview_set_javascript_enabled : Ir.Jsig.meth
val webview_add_javascript_interface : Ir.Jsig.meth
val sqlite_db_init : Ir.Jsig.meth
val sqlite_raw_query : Ir.Jsig.meth
val string_builder_init : Ir.Jsig.meth
val string_builder_append : Ir.Jsig.meth
val string_builder_to_string : Ir.Jsig.meth
val string_value_of_int : Ir.Jsig.meth
val class_for_name : Ir.Jsig.meth
val class_get_method : Ir.Jsig.meth
val method_invoke : Ir.Jsig.meth
val allow_all_hostname_verifier : Ir.Jsig.field
