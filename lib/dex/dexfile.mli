(** A disassembled (and, if multidex, merged) dex file: the flat array of
    plaintext lines that the bytecode search engine scans, each line tagged
    with its enclosing method, plus the compact hit {!Arena} the engine's
    per-category postings index into. *)

type t = {
  lines : Disasm.line array;
  arena : Arena.t;
  program : Ir.Program.t;
  classmap : Classmap.t;
      (** per-class line/slot ranges and content hashes; {!Classmap.empty}
          for the warm-start placeholder *)
  texts : Textstore.t option;
      (** off-heap line texts of a snapshot-loaded dexfile; [None] when the
          lines were disassembled in-process and carry their own strings.
          When present, read texts through {!line_text} (or the store's
          allocation-free predicates), never [lines.(i).text] directly. *)
}

val of_program : Ir.Program.t -> t

(** A dexfile whose line texts live in an off-heap {!Textstore} (the
    snapshot load path).  The line records must carry
    {!Textstore.pending} as their text; {!line_text} materialises and
    caches real strings on demand. *)
val of_store :
  ?classmap:Classmap.t ->
  Disasm.line array -> Arena.t -> Ir.Program.t -> Textstore.t -> t

(** A dexfile with no plaintext lines and an empty arena.  Warm starts use
    it as the generation-time placeholder when the real lines and arena are
    about to be mapped from a snapshot instead of disassembled. *)
val empty : Ir.Program.t -> t

(** Emulate multidex: disassemble each classesN.dex partition separately and
    merge the plaintexts, as BackDroid's preprocessing step does. *)
val of_partitions : Ir.Program.t -> string list list -> t
val line_count : t -> int

(** The text of line [i], materialising (and caching) it from the off-heap
    store when the dexfile came from a snapshot.  Safe from multiple
    domains: racing writers install equal strings. *)
val line_text : t -> int -> string

val to_string : t -> string
