(** Structural content hash over the IR.

    [jclass c] is an FNV-1a-64 fold over the full structure of [c] — name,
    hierarchy links, flags, fields, and every method signature, access set
    and body statement.  The walk feeds only constructor tags, strings and
    small ints, so the hash is stable across processes (no [Sym] ids, no
    physical identity) and allocation-free.

    Disassembly is a deterministic function of this structure, so equal
    hashes mean equal rendered dex lines; the delta snapshot path uses this
    to find the classes of a new build that need re-disassembly without
    rendering the unchanged ones.

    [jclass] memoizes by physical identity (weakly, thread-safe): the IR is
    immutable and a version update shares the unchanged class objects with
    its predecessor, so re-hashing a mostly-unchanged program costs only
    the changed classes. *)

val jclass : Jclass.t -> int64

(** The raw fold, exposed so other layers (e.g. the dex-side per-class text
    hash) can chain the same FNV-1a-64 stream over their own data. *)

val offset_basis : int64

(** [string h s] folds [s] (length-prefixed) into [h]. *)
val string : int64 -> string -> int64
