lib/appgen/rng.mli:
