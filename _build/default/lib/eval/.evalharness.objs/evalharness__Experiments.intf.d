lib/eval/experiments.mli: Appgen Runner
