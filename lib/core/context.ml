(** The analysis context: everything the backward slicing threads through
    one sink analysis, split into the app-wide {!shared} part (program,
    manifest, search engine, the Sec. IV-F sink-reachability cache, loop
    statistics, trace sink) and the per-sink part (SSG under construction,
    budget accounting).

    The {!budget} supersedes the slicer's bare [max_work]/[max_depth] ints:
    it adds an optional wall-clock deadline, and exhausting any limit is
    recorded so the slice returns a typed {!outcome} ([Partial] names the
    limits that were hit) instead of silently truncating. *)

type budget = {
  max_depth : int;            (** inter-procedural backtracking depth *)
  max_work : int;             (** total work items per sink *)
  max_contained_depth : int;  (** contained-method sub-slice recursion *)
  time_limit_ms : float option;
      (** wall-clock deadline per sink slice; [None] = unbounded *)
}

let default_budget =
  { max_depth = 48; max_work = 4000; max_contained_depth = 8;
    time_limit_ms = None }

type exhaustion = Work | Depth | Deadline

let exhaustion_to_string = function
  | Work -> "work"
  | Depth -> "depth"
  | Deadline -> "deadline"

type outcome = Complete | Partial of exhaustion list

let outcome_to_string = function
  | Complete -> "complete"
  | Partial ex ->
    Printf.sprintf "partial(%s)"
      (String.concat "," (List.map exhaustion_to_string ex))

(* ------------------------------------------------------------------ *)

(** App-wide state shared by every sink slice of one group: the engine and
    program/manifest spaces, the sink-API-call reachability cache with its
    counters (Sec. IV-F), the dead-loop statistics and the trace sink. *)
type shared = {
  engine : Bytesearch.Engine.t;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  loops : Loopdetect.stats;
  reach_cache : (int, bool) Hashtbl.t;  (* keyed by [Sym.id (Jsig.meth_sym m)] *)
  reach_total : int ref;
  reach_cached : int ref;
  trace : Trace.sink;
}

let shared ?(loops = Loopdetect.create ()) ?(trace = Trace.log_sink) ~engine
    ~manifest () =
  { engine; program = Bytesearch.Engine.program engine; manifest; loops;
    reach_cache = Hashtbl.create 64; reach_total = ref 0;
    reach_cached = ref 0; trace }

(** One sink slice's context: the shared state plus the SSG under
    construction and the budget accounting. *)
type t = {
  engine : Bytesearch.Engine.t;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  loops : Loopdetect.stats;
  reach_cache : (int, bool) Hashtbl.t;  (* keyed by [Sym.id (Jsig.meth_sym m)] *)
  reach_total : int ref;
  reach_cached : int ref;
  trace : Trace.sink;
  budget : budget;
  ssg : Ssg.t;
  started_at : float;
  mutable work_count : int;
  mutable exhausted : exhaustion list;  (* most recent first, deduplicated *)
  (* provenance accumulators: per-strategy resolution/caller counts (slots
     in [Resolver.strategy_index] order — 5 strategies; Context cannot name
     Resolver without a cycle) and the creating domain's query-issue
     counters, deltaed at slice end *)
  prov_resolutions : int array;
  prov_callers : int array;
  prov_searches0 : Bytesearch.Cache.local_counts;
}

let create ?(budget = default_budget) (sh : shared) ~ssg =
  { engine = sh.engine; program = sh.program; manifest = sh.manifest;
    loops = sh.loops; reach_cache = sh.reach_cache;
    reach_total = sh.reach_total; reach_cached = sh.reach_cached;
    trace = sh.trace; budget; ssg; started_at = Unix.gettimeofday ();
    work_count = 0; exhausted = [];
    prov_resolutions = Array.make 5 0; prov_callers = Array.make 5 0;
    prov_searches0 = Bytesearch.Cache.local_counts () }

let exhaust ctx kind =
  if not (List.mem kind ctx.exhausted) then
    ctx.exhausted <- kind :: ctx.exhausted

let deadline_hit ctx = List.mem Deadline ctx.exhausted

(** Has the slice's wall-clock deadline passed?  Free when no time limit is
    set; records the [Deadline] exhaustion on first detection. *)
let out_of_time ctx =
  match ctx.budget.time_limit_ms with
  | None -> false
  | Some _ when deadline_hit ctx -> true
  | Some limit_ms ->
    let elapsed_ms = (Unix.gettimeofday () -. ctx.started_at) *. 1000.0 in
    if elapsed_ms > limit_ms then begin
      exhaust ctx Deadline;
      true
    end
    else false

(** The typed result of the slice: [Complete], or [Partial limits] when any
    budget dimension was exhausted (limits in the order they were first
    hit). *)
let outcome ctx =
  match ctx.exhausted with
  | [] -> Complete
  | ex -> Partial (List.rev ex)
