(** Android app components as registered in AndroidManifest.xml. *)

type kind = Activity | Service | Receiver | Provider
type t = {
  cls : string;
  kind : kind;
  exported : bool;
  actions : string list;
}
val make : ?exported:bool -> ?actions:string list -> kind:kind -> string -> t
val kind_to_string : kind -> string

(** Framework superclass an app component of this kind must extend. *)
val framework_class : kind -> string
