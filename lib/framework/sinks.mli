(** The security-sensitive sink API catalog.

    A sink is pure data — display name, target signature, and the index of
    the argument the slicer backtracks.  Detection rules (the [Rules]
    library) reference these values or construct their own. *)

type t = {
  name : string;           (** stable display label, e.g. ["crypto-cipher"] *)
  msig : Ir.Jsig.meth;
  param_index : int;
      (** index of the security-relevant parameter (receiver excluded) *)
}

val cipher : t
val ssl_factory : t
val https_conn : t
val sms : t
val server_socket : t
val local_socket : t
val webview_js : t
val webview_bridge : t
val sql_query : t
val intent_redirect : t

(** The three sink APIs of the paper's evaluation (Sec. VI-A). *)
val primary : t list

val catalog : t list

(** [catalog] plus the WebView / SQL-injection / intent-redirection sinks. *)
val extended : t list

(** Sym-keyed signature lookup, built once per sink set; {!find} is one
    integer hash per probe (the old [find_by_msig] walked the list with
    structural signature comparisons on every disassembled call site). *)
type index

val index : t list -> index
val find : index -> Ir.Jsig.meth -> t option

(** An ECB (or mode-less) transformation string is the insecure crypto
    configuration the detectors flag. *)
val cipher_spec_is_insecure : string -> bool
