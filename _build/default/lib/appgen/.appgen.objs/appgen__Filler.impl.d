lib/appgen/filler.ml: Builder Expr Ir Jclass Jsig List Manifest Printf Rng Stmt Types Value
