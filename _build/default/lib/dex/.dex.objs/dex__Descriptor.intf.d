lib/dex/descriptor.mli: Ir
