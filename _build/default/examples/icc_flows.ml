(* ICC flows: the two-time search of Sec. IV-D on explicit and implicit
   inter-component communication, showing how the sink parameter is traced
   through Intent extras across component boundaries.

   Run with: dune exec examples/icc_flows.exe *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver

let () =
  List.iter
    (fun (shape, label) ->
       let app =
         G.generate
           { G.default_config with
             G.seed = 21;
             name = "com.icc." ^ label;
             filler_classes = 8;
             plants = [ { G.shape; sink = Sinks.cipher; insecure = true } ] }
       in
       let r = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
       Printf.printf "== %s ICC ==\n" label;
       List.iter
         (fun (rep : Driver.sink_report) ->
            Printf.printf "  sink in %s\n" (Ir.Jsig.meth_to_string rep.meth);
            Printf.printf "  reachable=%b fact=%s verdict=%s\n" rep.reachable
              (Backdroid.Facts.to_string rep.fact)
              (Backdroid.Detectors.verdict_to_string rep.verdict);
            match rep.ssg with
            | Some ssg ->
              List.iter
                (fun e ->
                   match e with
                   | Backdroid.Ssg.Icc { caller; site; handler } ->
                     Printf.printf "  icc edge: %s:%d ==> %s\n"
                       (Ir.Jsig.meth_to_string caller) site
                       (Ir.Jsig.meth_to_string handler)
                   | _ -> ())
                ssg.Backdroid.Ssg.edges
            | None -> ())
         r.Driver.reports;
       print_newline ())
    [ Shape.Icc_explicit, "explicit"; Shape.Icc_implicit, "implicit" ]
