(** Hierarchical spans with pluggable sinks and a lock-free-per-domain
    default recorder.

    A span is one closed begin/end scope: category, name, logical process id
    (pid — one per app in corpus runs), recording domain (tid), begin/end
    timestamps in µs since the process origin, and typed attributes.  With
    no sink installed (the default), {!with_span} costs one [Atomic.get] —
    no clock read, no allocation. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type span = {
  cat : string;
  name : string;
  pid : int;
  tid : int;
  t0_us : float;
  t1_us : float;
  attrs : attr list;
}

type sink = span -> unit

val duration_us : span -> float

(** Microseconds since the process origin (the timestamp base of spans). *)
val now_us : unit -> float

(** Install ([Some]) or remove ([None]) the global span sink. *)
val set_sink : sink option -> unit

(** [true] iff a sink is installed. *)
val enabled : unit -> bool

(** Run [f] inside a span of the given category and name; the span is
    emitted to the current sink when [f] returns or raises. *)
val with_span : ?attrs:attr list -> cat:string -> name:string -> (unit -> 'a) -> 'a

(** Low-level pair for call sites whose attributes are only known at the
    end: [start] reads the clock (or returns [nan] when disabled); [emit]
    closes the span and sends it to the sink ([nan] starts are dropped). *)
val start : unit -> float

(** [true] when [start] actually armed a span ([start] returned a real
    timestamp) — test before building expensive attributes. *)
val pending : float -> bool

val emit : ?attrs:attr list -> cat:string -> name:string -> float -> unit

(** Dynamically scope the logical pid for the current domain: a corpus task
    wraps one whole app analysis so its spans carry that app's pid. *)
val with_pid : int -> (unit -> 'a) -> 'a

val current_pid : unit -> int

(** The current domain id (the [tid] spans record). *)
val self_tid : unit -> int

(** The default recorder: one bounded span buffer per recording domain
    (registered once per domain under a mutex, appended to without any
    synchronization), merged at snapshot.  Snapshot after the instrumented
    workload has quiesced (e.g. after the pool batch settled). *)
module Recorder : sig
  type t

  (** [capacity] bounds each per-domain shard (default 65536 spans);
      overflowing spans are counted in {!dropped}, not recorded. *)
  val create : ?capacity:int -> unit -> t

  val sink : t -> sink

  (** Install this recorder as the global span sink. *)
  val install : t -> unit

  (** All recorded spans, merged across shards, in no particular order. *)
  val spans : t -> span list

  val length : t -> int
  val dropped : t -> int
  val clear : t -> unit
end
