(** Framework stub classes — the [is_system] part of the class table.  Their
    methods carry no bodies (like real framework classes outside the app dex),
    but their signatures and hierarchy are what both the searches and CHA
    resolution need. *)

val decl :
  cls:string ->
  name:string -> params:Ir.Types.t list -> ret:Ir.Types.t -> Ir.Jmethod.t
val native_method :
  ?static:bool ->
  cls:string ->
  name:string ->
  params:Ir.Types.t list -> ret:Ir.Types.t -> unit -> Ir.Jmethod.t
val system_class :
  ?super:string ->
  ?interfaces:string list ->
  ?is_interface:bool ->
  ?is_abstract:bool ->
  ?fields:Ir.Jsig.field list ->
  ?methods:Ir.Jmethod.t list -> string -> Ir.Jclass.t
val nm :
  ?static:bool ->
  cls:string ->
  name:string ->
  params:Ir.Types.t list -> ret:Ir.Types.t -> unit -> Ir.Jmethod.t
val classes : unit -> Ir.Jclass.t list
