lib/core/basic_search.mli: Bytesearch Ir String
