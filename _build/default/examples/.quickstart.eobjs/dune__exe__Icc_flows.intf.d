examples/icc_flows.mli:
