type t = { blob : Bvec.t; offs : Ivec.t }

(* A unique, physically distinguishable marker.  Built at module init (not
   a literal) so no other string in the program can share it; the lazy
   materialization check is plain pointer equality. *)
let pending = String.init 1 (fun _ -> '\x00')

let create ~blob ~offs =
  let n = Ivec.length offs - 1 in
  if n < 0 then invalid_arg "Textstore.create: empty offsets";
  if Ivec.get offs 0 <> 0 then
    invalid_arg "Textstore.create: offsets must start at 0";
  for i = 0 to n - 1 do
    if Ivec.get offs (i + 1) < Ivec.get offs i then
      invalid_arg "Textstore.create: offsets not ascending"
  done;
  if Ivec.get offs n <> Bvec.length blob then
    invalid_arg "Textstore.create: offsets inconsistent with blob";
  { blob; offs }

let blob t = t.blob
let offsets t = t.offs
let count t = Ivec.length t.offs - 1
let start t i = Ivec.unsafe_get t.offs i
let length_at t i = Ivec.unsafe_get t.offs (i + 1) - Ivec.unsafe_get t.offs i

let get t i =
  if i < 0 || i >= count t then invalid_arg "Textstore.get";
  Bvec.sub_string t.blob (start t i) (length_at t i)

let index_char t i c =
  let lo = start t i in
  let hi = lo + length_at t i in
  let rec go p =
    if p >= hi then -1
    else if Bvec.unsafe_get t.blob p = c then p - lo
    else go (p + 1)
  in
  go lo

let starts_with t i ~pos ~prefix =
  pos >= 0
  && pos + String.length prefix <= length_at t i
  && Bvec.equal_string t.blob ~pos:(start t i + pos) prefix

(* Same first-char skip loop as the heap-string scan path, reading the
   mapped blob directly — no String.sub, no line materialization. *)
let contains t i ~pat =
  let lp = String.length pat in
  if lp = 0 then true
  else begin
    let lo = start t i in
    let ls = length_at t i in
    if lp > ls then false
    else begin
      let max_start = lo + ls - lp in
      let c0 = String.unsafe_get pat 0 in
      let blob = t.blob in
      let rec eq_at p j =
        j >= lp
        || (Bvec.unsafe_get blob (p + j) = String.unsafe_get pat j
            && eq_at p (j + 1))
      in
      let rec at p =
        if p > max_start then false
        else if Bvec.unsafe_get blob p = c0 && eq_at p 1 then true
        else at (p + 1)
      in
      at lo
    end
  end

(* Every line containing [pat], ascending, each line reported once — the
   residual scan's bulk path.  One Boyer–Moore–Horspool pass over the whole
   concatenated blob instead of a naive loop per line: the bad-character
   table skips ~|pat| bytes per probe, so long opcode patterns touch an
   order of magnitude fewer bytes than the per-line scan, which is what
   lets a snapshot engine's residual scan beat the heap-string scan instead
   of trailing it on bigarray access latency.  A match straddling a line
   boundary belongs to no line and is skipped, matching per-line
   semantics. *)
let iter_matches t ~pat f =
  let lp = String.length pat in
  let nlines = count t in
  if lp = 0 then
    for i = 0 to nlines - 1 do f i done
  else begin
    let blob = t.blob in
    let n = Bvec.length blob in
    if lp <= n then begin
      let skip = Array.make 256 lp in
      for j = 0 to lp - 2 do
        skip.(Char.code (String.unsafe_get pat j)) <- lp - 1 - j
      done;
      let last = String.unsafe_get pat (lp - 1) in
      let rec eq_prefix ms j =
        j >= lp - 1
        || (Bvec.unsafe_get blob (ms + j) = String.unsafe_get pat j
            && eq_prefix ms (j + 1))
      in
      let line = ref 0 in
      let p = ref (lp - 1) in
      while !p < n do
        let c = Bvec.unsafe_get blob !p in
        if c = last && eq_prefix (!p - (lp - 1)) 0 then begin
          let mstart = !p - (lp - 1) in
          while
            !line < nlines - 1 && Ivec.unsafe_get t.offs (!line + 1) <= mstart
          do
            incr line
          done;
          let line_end = Ivec.unsafe_get t.offs (!line + 1) in
          if mstart + lp <= line_end then begin
            f !line;
            (* the rest of this line is already reported: resume where a
               match could first fit in the next line *)
            p := line_end + lp - 1
          end
          else p := !p + 1
        end
        else p := !p + Array.unsafe_get skip (Char.code c)
      done
    end
  end

let prefault t = Bvec.prefault t.blob lxor Ivec.prefault t.offs
