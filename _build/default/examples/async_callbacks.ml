(* Asynchronous flows and callbacks: the advanced search with forward object
   taint analysis (Sec. IV-B) across Thread / Executor / AsyncTask / onClick,
   and the corresponding whole-app baseline gaps of Sec. VI-C.

   Run with: dune exec examples/async_callbacks.exe *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver
module Am = Baseline.Amandroid

let robust =
  { Am.default_config with Am.cg = Baseline.Callgraph.robust_config }

let () =
  Printf.printf "%-16s %-22s %-10s %-12s %s\n" "flow" "ending method"
    "BackDroid" "Baseline" "Baseline(robust)";
  List.iter
    (fun (shape, label) ->
       let app =
         G.generate
           { G.default_config with
             G.seed = 33;
             name = "com.async." ^ label;
             filler_classes = 6;
             plants = [ { G.shape; sink = Sinks.cipher; insecure = true } ] }
       in
       let bd = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
       let ending =
         List.fold_left
           (fun acc (rep : Driver.sink_report) ->
              match rep.ssg with
              | Some ssg ->
                List.fold_left
                  (fun acc e ->
                     match e with
                     | Backdroid.Ssg.Async { ending; _ } ->
                       ending.Ir.Jsig.cls ^ "." ^ ending.Ir.Jsig.name
                     | _ -> acc)
                  acc ssg.Backdroid.Ssg.edges
              | None -> acc)
           "-" bd.Driver.reports
       in
       let am = Am.analyze ~program:app.G.program ~manifest:app.G.manifest () in
       let amr = Am.analyze ~cfg:robust ~program:app.G.program ~manifest:app.G.manifest () in
       let flag n = if n > 0 then "FLAGGED" else "missed" in
       Printf.printf "%-16s %-22s %-10s %-12s %s\n" label ending
         (flag (List.length (Driver.insecure_reports bd)))
         (flag (List.length (Am.insecure_findings am.Am.outcome)))
         (flag (List.length (Am.insecure_findings amr.Am.outcome))))
    [ Shape.Async_thread, "thread";
      Shape.Async_executor, "executor";
      Shape.Async_task, "asynctask";
      Shape.Callback, "onclick" ]
