(** Chrome trace-event export: turns recorded spans into the JSON array
    format that [chrome://tracing] and Perfetto open directly — [ph:"B"]/
    [ph:"E"] duration events with [pid] = app and [tid] = domain, so a
    corpus run visibly shows pool utilization and stragglers.

    Spans arrive as closed scopes in no particular order; per (pid, tid)
    they form a laminar family (they were recorded by properly nested
    [with_span] scopes on one domain).  The exporter rebuilds that nesting
    with a stack sweep, then merges all threads by time and assigns strictly
    increasing integer microsecond timestamps (ties bumped by 1µs), so the
    emitted stream satisfies the two invariants the validator (and the CI
    round-trip check) asserts: every B has a matching stack-ordered E per
    (pid, tid), and ts is strictly monotonic across the file. *)

type event = {
  e_ph : char;        (** 'B', 'E' or 'C' (counter sample) *)
  e_ts : int;         (** µs, strictly increasing across the event list *)
  e_pid : int;
  e_tid : int;
  e_cat : string;
  e_name : string;
  e_args : Span.attr list;  (** on 'B' and 'C' events only *)
}

(** One sample of a named numeric series, rendered as a Chrome counter
    ('C'-phase) track under its pid — cache hit-rates and sink counts show
    up as area charts alongside the span timeline. *)
type counter_sample = {
  c_ts_us : float;    (** µs since the process origin *)
  c_pid : int;
  c_name : string;
  c_value : float;
}

(* -- Span list -> well-nested event list ----------------------------- *)

(* One thread's spans -> an alternating B/E token stream in time order.
   Sorting by (t0 asc, t1 desc) puts enclosing spans before the spans they
   contain; the stack then closes every span that does not contain the next
   one.  Tokens carry float timestamps; integers are assigned after the
   cross-thread merge. *)
let thread_tokens spans =
  let spans =
    List.sort
      (fun (a : Span.span) (b : Span.span) ->
         match Float.compare a.t0_us b.t0_us with
         | 0 -> Float.compare b.t1_us a.t1_us
         | c -> c)
      spans
  in
  let out = ref [] in
  let stack = ref [] in
  let close (s : Span.span) = out := (s.Span.t1_us, 'E', s) :: !out in
  let contains (outer : Span.span) (inner : Span.span) =
    inner.Span.t0_us >= outer.Span.t0_us
    && inner.Span.t1_us <= outer.Span.t1_us
  in
  List.iter
    (fun (s : Span.span) ->
       let rec unwind () =
         match !stack with
         | top :: rest when not (contains top s) ->
           close top;
           stack := rest;
           unwind ()
         | _ -> ()
       in
       unwind ();
       out := (s.Span.t0_us, 'B', s) :: !out;
       stack := s :: !stack)
    spans;
  List.iter close !stack;
  List.rev !out

let events_of_spans ?(counters = []) spans =
  (* group by (pid, tid) *)
  let groups : (int * int, Span.span list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
       let key = (s.Span.pid, s.Span.tid) in
       match Hashtbl.find_opt groups key with
       | Some cell -> cell := s :: !cell
       | None -> Hashtbl.add groups key (ref [ s ]))
    spans;
  let streams =
    Hashtbl.fold (fun key cell acc -> (key, thread_tokens !cell) :: acc)
      groups []
    |> List.sort compare  (* deterministic thread order *)
  in
  (* k-way merge by token time; stable within a thread (streams are already
     time-ordered), ties across threads resolved by (pid, tid).  Counter
     samples join the merge as stackless 'C' tokens on tid 0. *)
  let span_tokens =
    List.concat_map
      (fun ((pid, tid), toks) ->
         List.map
           (fun (ts, ph, (s : Span.span)) ->
              ( ts, pid, tid, ph, s.Span.cat, s.Span.name,
                if ph = 'B' then s.Span.attrs else [] ))
           toks)
      streams
  in
  let counter_tokens =
    List.map
      (fun c ->
         ( c.c_ts_us, c.c_pid, 0, 'C', "counter", c.c_name,
           [ ("value", Span.Float c.c_value) ] ))
      (List.sort
         (fun a b ->
            match Float.compare a.c_ts_us b.c_ts_us with
            | 0 -> compare (a.c_pid, a.c_name) (b.c_pid, b.c_name)
            | r -> r)
         counters)
  in
  let all =
    span_tokens @ counter_tokens
    |> List.stable_sort (fun (ta, pa, ia, _, _, _, _) (tb, pb, ib, _, _, _, _) ->
        match Float.compare ta tb with
        | 0 -> compare (pa, ia) (pb, ib)
        | c -> c)
  in
  (* strictly increasing integer timestamps: monotonic bumping preserves
     the order just established, and per-thread order is a subsequence *)
  let last = ref min_int in
  List.map
    (fun (ts, pid, tid, ph, cat, name, args) ->
       let t = int_of_float (Jsonf.clamp ts) in
       let t = if t <= !last then !last + 1 else t in
       last := t;
       { e_ph = ph; e_ts = t; e_pid = pid; e_tid = tid; e_cat = cat;
         e_name = name; e_args = args })
    all

(* -- Rendering ------------------------------------------------------- *)

let value_json : Span.value -> string = function
  | Span.Str s -> Printf.sprintf "\"%s\"" (Jsonf.escape s)
  | Span.Int i -> string_of_int i
  | Span.Float f -> Jsonf.number f
  | Span.Bool b -> if b then "true" else "false"

let args_json args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (Jsonf.escape k) (value_json v))
       args)

let event_json e =
  let args = if e.e_args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_json e.e_args) in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}"
    (Jsonf.escape e.e_name) (Jsonf.escape e.e_cat) e.e_ph e.e_ts e.e_pid
    e.e_tid args

(* Metadata events give the processes/threads readable names in the UI.
   They carry no ts and are excluded from validation and round-trip. *)
let metadata_json ~pid_names events =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun e ->
       let pid_meta =
         if Hashtbl.mem seen (`P e.e_pid) then []
         else begin
           Hashtbl.replace seen (`P e.e_pid) ();
           let name =
             match List.assoc_opt e.e_pid pid_names with
             | Some n -> n
             | None -> if e.e_pid = 0 then "app" else Printf.sprintf "app-%d" e.e_pid
           in
           [ Printf.sprintf
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"%s\"}}"
               e.e_pid (Jsonf.escape name) ]
         end
       in
       let tid_meta =
         if Hashtbl.mem seen (`T (e.e_pid, e.e_tid)) then []
         else begin
           Hashtbl.replace seen (`T (e.e_pid, e.e_tid)) ();
           [ Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
               e.e_pid e.e_tid e.e_tid ]
         end
       in
       pid_meta @ tid_meta)
    events

let render ?(pid_names = []) events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  let lines = metadata_json ~pid_names events @ List.map event_json events in
  List.iteri
    (fun i line ->
       if i > 0 then Buffer.add_string b ",\n";
       Buffer.add_string b line)
    lines;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let write ?pid_names ?counters path spans =
  let events = events_of_spans ?counters spans in
  Io.write_string path (render ?pid_names events);
  List.length events

(* -- Validation ------------------------------------------------------ *)

(** Check the exporter's invariants: strictly increasing ts across the
    list, and per (pid, tid) every 'E' closes the most recent open 'B' of
    the same name with no 'B' left open at the end.  'C' counter samples
    have no stack effect. *)
let validate events =
  let stacks : (int * int, (string * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go last = function
    | [] ->
      Hashtbl.fold
        (fun (pid, tid) stack acc ->
           match acc, !stack with
           | Error _, _ | _, [] -> acc
           | Ok (), (_, name) :: _ ->
             err "unclosed B %S on pid=%d tid=%d" name pid tid)
        stacks (Ok ())
    | e :: rest ->
      if e.e_ts <= last then
        err "ts %d not strictly increasing (follows %d)" e.e_ts last
      else begin
        let key = (e.e_pid, e.e_tid) in
        let stack =
          match Hashtbl.find_opt stacks key with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add stacks key s;
            s
        in
        match e.e_ph with
        | 'B' ->
          stack := (e.e_cat, e.e_name) :: !stack;
          go e.e_ts rest
        | 'E' ->
          (match !stack with
           | (cat, name) :: tl when cat = e.e_cat && name = e.e_name ->
             stack := tl;
             go e.e_ts rest
           | (_, open_name) :: _ ->
             err "E %S does not close open B %S (pid=%d tid=%d)" e.e_name
               open_name e.e_pid e.e_tid
           | [] -> err "E %S with no open B (pid=%d tid=%d)" e.e_name e.e_pid e.e_tid)
        | 'C' -> go e.e_ts rest
        | c -> err "unexpected ph %C" c
      end
  in
  go min_int events

(* -- Round-trip parser ----------------------------------------------- *)

(* A deliberately minimal parser for exactly the renderer's own output
   (one object per line, fixed field order, no nested objects except args):
   enough for the bench's round-trip assertion without a JSON dependency.
   [args] are not reconstructed.  Field readers live in {!Jsonf}. *)

let field_str = Jsonf.field_str
let field_int = Jsonf.field_int

(** Parse the renderer's own output back into events ('M' metadata lines
    are skipped; [args] are dropped).  Returns [Error] on malformed input. *)
let parse s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line = "[" || line = "]" then go acc rest
      else begin
        match field_str line "ph" with
        | Some "M" -> go acc rest
        | Some (("B" | "E" | "C") as ph) ->
          (match
             ( field_str line "name", field_str line "cat",
               field_int line "ts", field_int line "pid",
               field_int line "tid" )
           with
           | Some name, Some cat, Some ts, Some pid, Some tid ->
             go
               ({ e_ph = ph.[0]; e_ts = ts; e_pid = pid; e_tid = tid;
                  e_cat = cat; e_name = name; e_args = [] }
                :: acc)
               rest
           | _ -> Error (Printf.sprintf "unparseable event line: %s" line))
        | Some ph -> Error (Printf.sprintf "unexpected ph %S" ph)
        | None -> Error (Printf.sprintf "line without ph: %s" line)
      end
  in
  go [] lines

let strip_args e = { e with e_args = [] }

(** Render, re-parse, and compare (ignoring args): the exporter round-trip
    the bench smoke asserts. *)
let round_trips events =
  match parse (render events) with
  | Error _ -> false
  | Ok parsed -> List.map strip_args events = parsed
