lib/core/clinit_search.mli: Bytesearch Ir Manifest String
