(** Logging source for the BackDroid pipeline.  Enable with
    [Logs.Src.set_level Backdroid.Log.src (Some Logs.Debug)] (the CLI's
    [-v] flag does this) to watch the bytecode searches guide the backward
    analysis step by step, as in the Fig. 3 / Fig. 4 walk-throughs. *)

let src = Logs.Src.create "backdroid" ~doc:"BackDroid targeted analysis"

module L = (val Logs.src_log src : Logs.LOG)

let debug f = L.debug f
let info f = L.info f
let warn f = L.warn f
