lib/framework/api.mli: Ir
