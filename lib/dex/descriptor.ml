(** Dex (dexdump) descriptor rendering and parsing — the "bytecode format"
    side of the paper's step-1/step-3 signature translation.

    Types render as [I], [Ljava/lang/String;], [[I]; methods as
    [Lcom/foo/Bar;.start:(Ljava/lang/String;)V]; fields as
    [Lcom/foo/Bar;.port:I]. *)

let class_desc name = "L" ^ String.map (fun c -> if c = '.' then '/' else c) name ^ ";"

let class_of_desc d =
  let n = String.length d in
  if n >= 2 && d.[0] = 'L' && d.[n - 1] = ';' then
    String.map (fun c -> if c = '/' then '.' else c) (String.sub d 1 (n - 2))
  else invalid_arg (Printf.sprintf "Descriptor.class_of_desc: %S" d)

let rec type_desc = function
  | Ir.Types.Void -> "V"
  | Boolean -> "Z"
  | Byte -> "B"
  | Char -> "C"
  | Short -> "S"
  | Int -> "I"
  | Long -> "J"
  | Float -> "F"
  | Double -> "D"
  | Object c -> class_desc c
  | Array e -> "[" ^ type_desc e

(** Parse one type descriptor starting at [pos]; returns the type and the
    position just past it. *)
let rec parse_type d pos =
  match d.[pos] with
  | 'V' -> Ir.Types.Void, pos + 1
  | 'Z' -> Boolean, pos + 1
  | 'B' -> Byte, pos + 1
  | 'C' -> Char, pos + 1
  | 'S' -> Short, pos + 1
  | 'I' -> Int, pos + 1
  | 'J' -> Long, pos + 1
  | 'F' -> Float, pos + 1
  | 'D' -> Double, pos + 1
  | 'L' ->
    let semi = String.index_from d pos ';' in
    Object (class_of_desc (String.sub d pos (semi - pos + 1))), semi + 1
  | '[' ->
    let e, p = parse_type d (pos + 1) in
    Array e, p
  | c -> invalid_arg (Printf.sprintf "Descriptor.parse_type: %c in %S" c d)

let type_of_desc d =
  let t, p = parse_type d 0 in
  if p <> String.length d then
    invalid_arg (Printf.sprintf "Descriptor.type_of_desc: trailing data in %S" d);
  t

let proto_desc ~params ~ret =
  "(" ^ String.concat "" (List.map type_desc params) ^ ")" ^ type_desc ret

(** Full dexdump method signature, the exact string the bytecode search
    constructs in step 1 of Fig. 3. *)
let meth_desc (m : Ir.Jsig.meth) =
  Printf.sprintf "%s.%s:%s" (class_desc m.cls) m.name
    (proto_desc ~params:m.params ~ret:m.ret)

let field_desc (f : Ir.Jsig.field) =
  Printf.sprintf "%s.%s:%s" (class_desc f.fcls) f.fname (type_desc f.fty)

(** Parse a dexdump method signature back into IR form (step 3 of Fig. 3). *)
let meth_of_desc s =
  let fail () = invalid_arg (Printf.sprintf "Descriptor.meth_of_desc: %S" s) in
  match String.index_opt s '.' with
  | None -> fail ()
  | Some dot ->
    let cls = class_of_desc (String.sub s 0 dot) in
    let rest = String.sub s (dot + 1) (String.length s - dot - 1) in
    (match String.index_opt rest ':' with
     | None -> fail ()
     | Some colon ->
       let name = String.sub rest 0 colon in
       let proto = String.sub rest (colon + 1) (String.length rest - colon - 1) in
       if String.length proto < 2 || proto.[0] <> '(' then fail ();
       let rp = String.index proto ')' in
       let params_s = String.sub proto 1 (rp - 1) in
       let ret_s = String.sub proto (rp + 1) (String.length proto - rp - 1) in
       let rec params pos acc =
         if pos >= String.length params_s then List.rev acc
         else
           let t, p = parse_type params_s pos in
           params p (t :: acc)
       in
       Ir.Jsig.meth ~cls ~name ~params:(params 0 []) ~ret:(type_of_desc ret_s))

(* ------------------------------------------------------------------ *)
(* Interned descriptors: each distinct signature is rendered once and its
   string hash-consed into the process-wide symbol table, so the search
   engine's query construction, cache keys and postings lookups are integer
   operations.  The disassembler interns through these same memos, which is
   what makes a query signature and the indexed operand it must match the
   *same* symbol. *)

let class_desc_sym =
  Sym.memo ~size:1024 ~hash:Hashtbl.hash ~equal:String.equal class_desc

let meth_desc_sym =
  Sym.memo ~size:1024 ~hash:Ir.Jsig.Meth_key.hash ~equal:Ir.Jsig.Meth_key.equal
    meth_desc

let field_desc_sym =
  Sym.memo ~size:256 ~hash:Ir.Jsig.Field_key.hash
    ~equal:Ir.Jsig.Field_key.equal field_desc

let field_of_desc s =
  let fail () = invalid_arg (Printf.sprintf "Descriptor.field_of_desc: %S" s) in
  match String.index_opt s '.' with
  | None -> fail ()
  | Some dot ->
    let cls = class_of_desc (String.sub s 0 dot) in
    let rest = String.sub s (dot + 1) (String.length s - dot - 1) in
    (match String.index_opt rest ':' with
     | None -> fail ()
     | Some colon ->
       let name = String.sub rest 0 colon in
       let ty = type_of_desc (String.sub rest (colon + 1) (String.length rest - colon - 1)) in
       Ir.Jsig.field ~cls ~name ~ty)
