(** Deterministic splitmix64 RNG, so every corpus is reproducible from its
    seed without touching the global [Random] state. *)

type t = { mutable state : int64; }
val create : int -> t
val next_int64 : t -> int64

(** Uniform int in [0, bound). *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float
val bool : t -> float -> bool

(** Pick a uniformly random element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Split off an independent generator (for per-app determinism inside a
    corpus). *)
val split : t -> t
