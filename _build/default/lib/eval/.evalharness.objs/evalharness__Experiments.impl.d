lib/eval/experiments.ml: Appgen Backdroid Baseline Hashtbl List Printf Report Runner Stats String
