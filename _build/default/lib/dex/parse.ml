(** Parser for the dexdump-format plaintext emitted by {!module:Disasm}.

    This is the inverse direction of the preprocessing step: given raw
    disassembled text (ours, or in principle a real `dexdump -d` capture in
    the same shape), reconstruct the line structure — class and method
    ownership, instruction addresses, opcodes, registers and the symbolic
    operand each search targets.  The round-trip property
    [parse (render program) ≍ program structure] is checked by the test
    suite and pins down the text format the search engine depends on. *)

open Ir

type operand =
  | Meth_ref of Jsig.meth     (** invoke-* operands *)
  | Field_ref of Jsig.field   (** iget/iput/sget/sput operands *)
  | Class_ref of string       (** new-instance / const-class / check-cast *)
  | String_lit of string      (** const-string *)
  | Other_operand of string

type instr = {
  addr : int;
  opcode : string;
  registers : string list;
  operand : operand option;
}

type line =
  | Class_header of string        (** dotted class name *)
  | Super_header of string
  | Interface_header of string
  | Field_header of Jsig.field
  | Method_header of Jsig.meth
  | Instruction of instr
  | Blank

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let strip_quotes s =
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String.sub s 1 (n - 2)
  else s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Split "op regs..., operand" after the address tag. *)
let parse_instr_text addr text =
  let opcode, rest =
    match String.index_opt text ' ' with
    | None -> text, ""
    | Some sp ->
      String.sub text 0 sp,
      String.sub text (sp + 1) (String.length text - sp - 1)
  in
  let registers, operand_text =
    if starts_with ~prefix:"{" rest then begin
      (* invoke-style register list: {v0, v1}, OPERAND *)
      match String.index_opt rest '}' with
      | None -> fail "unterminated register list in %S" text
      | Some close ->
        let regs =
          String.sub rest 1 (close - 1)
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let after = String.sub rest (close + 1) (String.length rest - close - 1) in
        let after = String.trim after in
        let after =
          if starts_with ~prefix:"," after then
            String.trim (String.sub after 1 (String.length after - 1))
          else after
        in
        regs, (if after = "" then None else Some after)
    end
    else begin
      (* comma-separated registers, the last element may be an operand *)
      let parts = String.split_on_char ',' rest |> List.map String.trim in
      let is_reg s =
        String.length s >= 2 && s.[0] = 'v'
        && String.for_all (fun c -> c >= '0' && c <= '9')
             (String.sub s 1 (String.length s - 1))
      in
      match List.rev parts with
      | [] | [ "" ] -> [], None
      | last :: rev_init when not (is_reg last) ->
        List.rev rev_init, Some last
      | _ -> parts, None
    end
  in
  let operand =
    Option.map
      (fun op ->
         if starts_with ~prefix:"L" op && String.contains op ';'
            && String.contains op ':' && String.contains op '.' then begin
           if String.contains op '(' then Meth_ref (Descriptor.meth_of_desc op)
           else Field_ref (Descriptor.field_of_desc op)
         end
         else if starts_with ~prefix:"L" op && String.length op > 2
                 && op.[String.length op - 1] = ';' then
           Class_ref (Descriptor.class_of_desc op)
         else if starts_with ~prefix:"\"" op then
           String_lit (Scanf.sscanf op "%S" (fun s -> s))
         else Other_operand op)
      operand_text
  in
  { addr; opcode; registers; operand }

(** Parse one plaintext line. *)
let parse_line raw =
  let s = String.trim raw in
  if s = "" then Blank
  else if starts_with ~prefix:"Class descriptor : " s then
    Class_header
      (Descriptor.class_of_desc
         (strip_quotes
            (String.trim
               (String.sub s 19 (String.length s - 19)))))
  else if starts_with ~prefix:"Superclass : " s then begin
    let d = strip_quotes (String.trim (String.sub s 13 (String.length s - 13))) in
    Super_header (if d = "-" then "" else Descriptor.class_of_desc d)
  end
  else if starts_with ~prefix:"Interface : " s then
    Interface_header
      (Descriptor.class_of_desc
         (strip_quotes (String.trim (String.sub s 12 (String.length s - 12)))))
  else if starts_with ~prefix:"method " s then
    Method_header
      (Descriptor.meth_of_desc (String.sub s 7 (String.length s - 7)))
  else if starts_with ~prefix:"field " s then
    Field_header
      (Descriptor.field_of_desc (String.sub s 6 (String.length s - 6)))
  else
    (* "0004: op ..." instruction lines *)
    match String.index_opt s ':' with
    | Some colon
      when colon > 0
           && String.for_all
                (fun c ->
                   (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
                   || (c >= 'A' && c <= 'F'))
                (String.sub s 0 colon) ->
      let addr = int_of_string ("0x" ^ String.sub s 0 colon) in
      let text = String.trim (String.sub s (colon + 1) (String.length s - colon - 1)) in
      Instruction (parse_instr_text addr text)
    | Some _ | None -> fail "unrecognised line %S" raw

type parsed = {
  lines : (line * Jsig.meth option * string option) array;
      (** parsed line, enclosing method, enclosing class *)
  classes : string list;
  methods : Jsig.meth list;
}

(** Parse a whole plaintext, reconstructing class / method ownership. *)
let parse_text text =
  let cur_cls = ref None and cur_meth = ref None in
  let classes = ref [] and methods = ref [] in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun raw ->
        let l = parse_line raw in
        (match l with
         | Class_header c ->
           cur_cls := Some c;
           cur_meth := None;
           classes := c :: !classes
         | Method_header m ->
           cur_meth := Some m;
           methods := m :: !methods
         | Super_header _ | Interface_header _ | Field_header _ | Blank
         | Instruction _ -> ());
        let owner = match l with Instruction _ -> !cur_meth | _ -> None in
        (l, owner, !cur_cls))
    |> Array.of_list
  in
  { lines; classes = List.rev !classes; methods = List.rev !methods }

(** Invocation call sites found in raw text: (caller, callee, address). *)
let invocations parsed =
  Array.to_list parsed.lines
  |> List.filter_map (fun (l, owner, _) ->
      match l, owner with
      | Instruction { opcode; operand = Some (Meth_ref callee); addr; _ }, Some caller
        when starts_with ~prefix:"invoke-" opcode ->
        Some (caller, callee, addr)
      | _, _ -> None)
