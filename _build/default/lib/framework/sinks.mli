(** The security-sensitive sink API catalog.

    The paper's evaluation targets three sink APIs (crypto + 2× SSL); the
    catalog also carries the "uncommon" sinks mentioned in Sec. VI-D so
    downstream users can vet other sink-based problems. *)

type kind =
    Crypto_cipher
  | Ssl_hostname
  | Sms_send
  | Server_socket
  | Local_socket
type t = { kind : kind; msig : Ir.Jsig.meth; param_index : int; }
val kind_to_string : kind -> string
val cipher : t
val ssl_factory : t
val https_conn : t
val sms : t
val server_socket : t
val local_socket : t

(** The three sink APIs of the paper's evaluation (Sec. VI-A). *)
val primary : t list
val catalog : t list
val find_by_msig : t list -> Ir.Jsig.meth -> t option

(** An ECB (or mode-less) transformation string is the insecure crypto
    configuration the detectors flag. *)
val cipher_spec_is_insecure : string -> bool
