(** The "dexdump" of the pipeline: renders IR method bodies into
    dexdump-format plaintext instruction lines.  BackDroid's on-the-fly
    bytecode search is a text search over exactly this output. *)

type line = {
  text : string;
  owner : Ir.Jsig.meth option;  (** enclosing method for instruction lines *)
  owner_cls : string option;
  stmt_idx : int option;        (** IR statement index for diagnostics *)
}

let header text owner_cls = { text; owner = None; owner_cls; stmt_idx = None }

let binop_mnemonic = function
  | Ir.Expr.Add -> "add-int" | Sub -> "sub-int" | Mul -> "mul-int"
  | Div -> "div-int" | Rem -> "rem-int" | Band -> "and-int" | Bor -> "or-int"
  | Bxor -> "xor-int" | Shl -> "shl-int" | Shr -> "shr-int"
  | Ushr -> "ushr-int" | Cmp -> "cmp-long"
  | Eq -> "if-eq" | Ne -> "if-ne" | Lt -> "if-lt" | Le -> "if-le"
  | Gt -> "if-gt" | Ge -> "if-ge"

let invoke_mnemonic = function
  | Ir.Expr.Virtual -> "invoke-virtual"
  | Special -> "invoke-direct"
  | Static -> "invoke-static"
  | Interface -> "invoke-interface"

(** Per-method register naming: IR locals map to [vN] in first-use order. *)
type regmap = { tbl : (string, int) Hashtbl.t; mutable next : int }

let reg rm (l : Ir.Value.local) =
  match Hashtbl.find_opt rm.tbl l.id with
  | Some n -> Printf.sprintf "v%d" n
  | None ->
    let n = rm.next in
    rm.next <- n + 1;
    Hashtbl.replace rm.tbl l.id n;
    Printf.sprintf "v%d" n

let value_reg rm = function
  | Ir.Value.Local l -> reg rm l
  | Ir.Value.Const c ->
    (* dexdump shows a register; constants are materialised by a preceding
       const instruction in real bytecode.  For inline constant operands we
       show the literal, which search never targets. *)
    (match c with
     | Ir.Value.Int_c i -> Printf.sprintf "#int %d" i
     | Null -> "#null"
     | Long_c i -> Printf.sprintf "#long %Ld" i
     | Float_c f | Double_c f -> Printf.sprintf "#float %f" f
     | Str_c s -> Printf.sprintf "%S" s
     | Class_c cl -> Descriptor.class_desc cl)

let invoke_line rm (iv : Ir.Expr.invoke) =
  let regs =
    (match iv.base with Some b -> [ reg rm b ] | None -> [])
    @ List.map (value_reg rm) iv.args
  in
  Printf.sprintf "%s {%s}, %s" (invoke_mnemonic iv.kind)
    (String.concat ", " regs)
    (Descriptor.meth_desc iv.callee)

let stmt_lines rm idx (st : Ir.Stmt.t) =
  let one text = [ text ] in
  ignore idx;
  match st with
  | Assign (l, Imm (Const (Str_c s))) ->
    one (Printf.sprintf "const-string %s, %S" (reg rm l) s)
  | Assign (l, Imm (Const (Class_c c))) ->
    one (Printf.sprintf "const-class %s, %s" (reg rm l) (Descriptor.class_desc c))
  | Assign (l, Imm (Const (Int_c i))) ->
    one (Printf.sprintf "const/16 %s, #int %d" (reg rm l) i)
  | Assign (l, Imm (Const Null)) ->
    one (Printf.sprintf "const/4 %s, #int 0" (reg rm l))
  | Assign (l, Imm (Const (Long_c i))) ->
    one (Printf.sprintf "const-wide %s, #long %Ld" (reg rm l) i)
  | Assign (l, Imm (Const (Float_c f))) ->
    one (Printf.sprintf "const %s, #float %f" (reg rm l) f)
  | Assign (l, Imm (Const (Double_c f))) ->
    one (Printf.sprintf "const-wide %s, #double %f" (reg rm l) f)
  | Assign (l, Imm (Local x)) ->
    one (Printf.sprintf "move-object %s, %s" (reg rm l) (reg rm x))
  | Assign (l, Binop (op, a, b)) ->
    one (Printf.sprintf "%s %s, %s, %s" (binop_mnemonic op) (reg rm l)
           (value_reg rm a) (value_reg rm b))
  | Assign (l, Cast (t, v)) ->
    [ Printf.sprintf "move-object %s, %s" (reg rm l) (value_reg rm v);
      Printf.sprintf "check-cast %s, %s" (reg rm l) (Descriptor.type_desc t) ]
  | Assign (l, Invoke iv) ->
    [ invoke_line rm iv;
      Printf.sprintf "move-result-object %s" (reg rm l) ]
  | Assign (l, New c) ->
    one (Printf.sprintf "new-instance %s, %s" (reg rm l)
           (Descriptor.class_desc c))
  | Assign (l, New_array (t, n)) ->
    one (Printf.sprintf "new-array %s, %s, [%s" (reg rm l) (value_reg rm n)
           (Descriptor.type_desc t))
  | Assign (l, Array_get (a, i)) ->
    one (Printf.sprintf "aget-object %s, %s, %s" (reg rm l) (reg rm a)
           (value_reg rm i))
  | Assign (l, Instance_get (o, f)) ->
    one (Printf.sprintf "iget-object %s, %s, %s" (reg rm l) (reg rm o)
           (Descriptor.field_desc f))
  | Assign (l, Static_get f) ->
    one (Printf.sprintf "sget-object %s, %s" (reg rm l)
           (Descriptor.field_desc f))
  | Assign (l, Phi ls) ->
    one (Printf.sprintf ".phi %s = (%s)" (reg rm l)
           (String.concat ", " (List.map (reg rm) ls)))
  | Assign (l, Param i) -> one (Printf.sprintf ".param %s, p%d" (reg rm l) i)
  | Assign (l, This) -> one (Printf.sprintf ".this %s" (reg rm l))
  | Assign (l, Caught_exception) ->
    one (Printf.sprintf "move-exception %s" (reg rm l))
  | Assign (l, Length v) ->
    one (Printf.sprintf "array-length %s, %s" (reg rm l) (value_reg rm v))
  | Instance_put (o, f, v) ->
    one (Printf.sprintf "iput-object %s, %s, %s" (value_reg rm v) (reg rm o)
           (Descriptor.field_desc f))
  | Static_put (f, v) ->
    one (Printf.sprintf "sput-object %s, %s" (value_reg rm v)
           (Descriptor.field_desc f))
  | Array_put (a, i, v) ->
    one (Printf.sprintf "aput-object %s, %s, %s" (value_reg rm v) (reg rm a)
           (value_reg rm i))
  | Invoke iv -> one (invoke_line rm iv)
  | Return (Some v) -> one (Printf.sprintf "return-object %s" (value_reg rm v))
  | Return None -> one "return-void"
  | If (op, a, b, target) ->
    one (Printf.sprintf "%s %s, %s, :cond_%04x" (binop_mnemonic op)
           (value_reg rm a) (value_reg rm b) target)
  | Goto target -> one (Printf.sprintf "goto :goto_%04x" target)
  | Throw v -> one (Printf.sprintf "throw %s" (value_reg rm v))
  | Nop -> one "nop"

let method_lines (cls : Ir.Jclass.t) (m : Ir.Jmethod.t) =
  let msig = m.msig in
  let head =
    header
      (Printf.sprintf "  method %s" (Descriptor.meth_desc msig))
      (Some cls.name)
  in
  match m.body with
  | None -> [ head ]
  | Some body ->
    let rm = { tbl = Hashtbl.create 16; next = 0 } in
    let buf = ref [ head ] in
    Array.iteri
      (fun i st ->
         List.iter
           (fun text ->
              buf :=
                { text = Printf.sprintf "    %04x: %s" i text;
                  owner = Some msig; owner_cls = Some cls.name;
                  stmt_idx = Some i }
                :: !buf)
           (stmt_lines rm i st))
      body;
    List.rev !buf

let class_lines (c : Ir.Jclass.t) =
  let head =
    [ header (Printf.sprintf "Class descriptor : '%s'" (Descriptor.class_desc c.name))
        (Some c.name);
      header
        (Printf.sprintf "  Superclass : '%s'"
           (match c.super with Some s -> Descriptor.class_desc s | None -> "-"))
        (Some c.name) ]
    @ List.map
        (fun i ->
           header (Printf.sprintf "  Interface : '%s'" (Descriptor.class_desc i))
             (Some c.name))
        c.interfaces
    @ List.map
        (fun f ->
           header (Printf.sprintf "  field %s" (Descriptor.field_desc f))
             (Some c.name))
        c.fields
  in
  head @ List.concat_map (method_lines c) c.methods

(** Disassemble all non-system classes — the app dex content. *)
let program_lines p =
  let classes =
    Ir.Program.fold_classes p (fun c acc -> c :: acc) []
    |> List.filter (fun (c : Ir.Jclass.t) -> not c.is_system)
    |> List.sort (fun (a : Ir.Jclass.t) b -> String.compare a.name b.name)
  in
  List.concat_map class_lines classes
