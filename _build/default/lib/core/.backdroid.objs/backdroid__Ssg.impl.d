lib/core/ssg.ml: Fmt Framework Hashtbl Ir Jsig List Option Stmt
