(** The self-contained slicing graph (SSG, Sec. V-A).

    One SSG is generated per sink API call.  It records (i) the raw typed
    statements visited by the backward slicing, wrapped as {!type:unit_}
    nodes; (ii) every inter-procedural relationship resolved by bytecode
    search, as typed {!type:edge}s; (iii) the hierarchical taint map (one
    taint set per tracked method, plus a global static-field set); and (iv) a
    special static track for off-path [<clinit>] methods added on demand. *)

open Ir

(** An SSGUnit: a raw typed statement plus its node identity. *)
type unit_ = {
  id : int;
  meth : Jsig.meth;
  stmt_idx : int;
  stmt : Stmt.t;
}

(** Inter-procedural relationships uncovered by the bytecode searches. *)
type edge =
  | Call of { caller : Jsig.meth; site : int; callee : Jsig.meth }
      (** common cross-method edge from a caller site to the callee *)
  | Contained of { caller : Jsig.meth; site : int; callee : Jsig.meth }
      (** a tracked method invoking its own contained method (both calling
          and return edges, per the paper) *)
  | Async of {
      caller : Jsig.meth;     (** the chain head holding the constructor *)
      ctor_site : int;
      ctor_local : string;
      callee : Jsig.meth;     (** e.g. [run()], [onClick()] *)
      chain : (Jsig.meth * int) list;
          (** intermediate methods + their call sites, Fig. 4 style *)
      ending : Jsig.meth;     (** the ending method, e.g. [Executor.execute] *)
    }
  | Icc of {
      caller : Jsig.meth;
      site : int;             (** the ICC call site, e.g. [startService] *)
      handler : Jsig.meth;    (** the component entry handler entered *)
    }
  | Lifecycle of { pre : Jsig.meth; handler : Jsig.meth }
      (** same-component handler ordering, e.g. onCreate before onResume *)

type t = {
  sink : Framework.Sinks.t;
  sink_meth : Jsig.meth;        (** method containing the sink call *)
  sink_site : int;
  mutable nodes : unit_ list;
  mutable edges : edge list;
  mutable entry_methods : Jsig.meth list;
      (** methods where backtracking reached a registered entry point *)
  mutable static_track : Jsig.meth list;
      (** off-path [<clinit>] methods added on demand *)
  taint_map : (string, string list) Hashtbl.t;
      (** hierarchical taint map: method signature → taints recorded there *)
  mutable global_static_taints : Jsig.field list;
  mutable next_id : int;
  mutable reachable : bool;
}

let create ~sink ~sink_meth ~sink_site =
  { sink; sink_meth; sink_site; nodes = []; edges = []; entry_methods = [];
    static_track = []; taint_map = Hashtbl.create 16;
    global_static_taints = []; next_id = 0; reachable = false }

let add_node t ~meth ~stmt_idx ~stmt =
  let id = t.next_id in
  t.next_id <- id + 1;
  let u = { id; meth; stmt_idx; stmt } in
  t.nodes <- u :: t.nodes;
  u

let add_edge t e = t.edges <- e :: t.edges

let add_entry t m =
  if not (List.exists (Jsig.meth_equal m) t.entry_methods) then
    t.entry_methods <- m :: t.entry_methods

let add_static_track t m =
  if not (List.exists (Jsig.meth_equal m) t.static_track) then
    t.static_track <- m :: t.static_track

let record_taint t ~meth taint =
  let key = Jsig.meth_to_string meth in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.taint_map key) in
  if not (List.mem taint prev) then Hashtbl.replace t.taint_map key (taint :: prev)

let add_global_static_taint t f =
  if not (List.exists (Jsig.field_equal f) t.global_static_taints) then
    t.global_static_taints <- f :: t.global_static_taints

let remove_global_static_taint t f =
  t.global_static_taints <-
    List.filter (fun g -> not (Jsig.field_equal g f)) t.global_static_taints

let node_count t = List.length t.nodes
let edge_count t = List.length t.edges

(** Async / ICC / lifecycle continuation edges out of [m] — followed by the
    forward analysis after interpreting [m] itself. *)
let continuations_of t m =
  List.filter
    (fun e ->
       match e with
       | Async { caller; _ } -> Jsig.meth_equal caller m
       | Icc { caller; _ } -> Jsig.meth_equal caller m
       | Lifecycle { pre; _ } -> Jsig.meth_equal pre m
       | Call _ | Contained _ -> false)
    t.edges

(** Fig. 6-style textual dump of the SSG. *)
let pp ppf t =
  Fmt.pf ppf "SSG for sink %s at %s:%d (reachable=%b)@."
    t.sink.Framework.Sinks.name
    (Jsig.meth_to_string t.sink_meth) t.sink_site t.reachable;
  let by_meth = Hashtbl.create 8 in
  List.iter
    (fun u ->
       let k = Jsig.meth_to_string u.meth in
       let prev = Option.value ~default:[] (Hashtbl.find_opt by_meth k) in
       Hashtbl.replace by_meth k (u :: prev))
    t.nodes;
  (if t.static_track <> [] then begin
     Fmt.pf ppf "  [static track]@.";
     List.iter (fun m -> Fmt.pf ppf "    %s@." (Jsig.meth_to_string m))
       t.static_track
   end);
  Hashtbl.iter
    (fun k us ->
       Fmt.pf ppf "  block %s@." k;
       List.iter
         (fun u -> Fmt.pf ppf "    [%d] %3d: %s@." u.id u.stmt_idx (Stmt.to_string u.stmt))
         (List.sort (fun a b -> compare a.stmt_idx b.stmt_idx) us))
    by_meth;
  List.iter
    (fun e ->
       match e with
       | Call { caller; site; callee } ->
         Fmt.pf ppf "  edge call %s:%d -> %s@." (Jsig.meth_to_string caller) site
           (Jsig.meth_to_string callee)
       | Contained { caller; site; callee } ->
         Fmt.pf ppf "  edge contained %s:%d <-> %s@." (Jsig.meth_to_string caller)
           site (Jsig.meth_to_string callee)
       | Async { caller; callee; ending; chain; _ } ->
         Fmt.pf ppf "  edge async %s -> %s (ending %s, chain %d)@."
           (Jsig.meth_to_string caller) (Jsig.meth_to_string callee)
           (Jsig.meth_to_string ending) (List.length chain)
       | Icc { caller; site; handler } ->
         Fmt.pf ppf "  edge icc %s:%d ==> %s@." (Jsig.meth_to_string caller) site
           (Jsig.meth_to_string handler)
       | Lifecycle { pre; handler } ->
         Fmt.pf ppf "  edge lifecycle %s >> %s@." (Jsig.meth_to_string pre)
           (Jsig.meth_to_string handler))
    t.edges;
  List.iter
    (fun m -> Fmt.pf ppf "  entry %s@." (Jsig.meth_to_string m))
    t.entry_methods
