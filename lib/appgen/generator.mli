(** The synthetic app generator: assembles framework stubs, filler code and
    planted sink flows into a complete app (program + manifest + disassembled
    dex + ground truth). *)

module Sinks = Framework.Sinks
type plant_spec = {
  shape : Shape.t;
  sink : Sinks.t;
  insecure : bool;
}
type config = {
  seed : int;
  name : string;
  filler_classes : int;
  filler_methods_per_class : int;
  filler_stmts_per_method : int;
  filler_dispatch_p : float;
  filler_fanout_max : int;
  filler_jump_locality : int;
  plants : plant_spec list;
  multidex : bool;
}
val default_config : config
type app = {
  name : string;
  config : config;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  dex : Dex.Dexfile.t;
  planted : Templates.planted list;
  size_stmts : int;
}

(** Sanitise an app name into a Java package fragment. *)
val package_of_name : string -> string

(** Generate the app.  [build_dex:false] skips disassembly and leaves
    {!app.dex} as {!Dex.Dexfile.empty} — the warm-start path, where a
    snapshot load is about to supply the lines, arena and postings. *)
val generate : ?build_dex:bool -> config -> app

(** Approximate on-disk size in "MB" for reporting, from our calibration of
    statements per megabyte (see {!Corpus.stmts_per_mb}). *)
val size_mb : stmts_per_mb:int -> app -> float

(** [mutate ?seed ?build_dex ~pct app] is the "v2" of [app] for
    incremental-re-analysis experiments: a deterministic fraction [pct] of
    the filler classes (at least one for [pct > 0], chosen by [seed]) get
    their method bodies edited — an appended constant assignment, so no
    existing statement index moves — while plants, manifest and ground
    truth carry over unchanged.  The program and dexfile are rebuilt (the
    rebuilt dexfile is single-dex even for a multidex [app]);
    [build_dex:false] leaves {!app.dex} empty, the delta warm-start path.
    A cold analysis of the result is the oracle a delta re-analysis must
    reproduce. *)
val mutate : ?seed:int -> ?build_dex:bool -> pct:float -> app -> app
