(* Tests for the manifest model and lifecycle domain knowledge. *)

module C = Manifest.Component
module M = Manifest.App_manifest
module L = Manifest.Lifecycle

let sample () =
  M.make ~package:"com.x"
    ~components:
      [ C.make ~kind:C.Activity "com.x.Main";
        C.make ~kind:C.Service "com.x.Svc";
        C.make ~kind:C.Receiver ~actions:[ "com.x.PING" ] "com.x.Rcv" ]

let test_entry_class () =
  let m = sample () in
  Alcotest.(check bool) "registered" true (M.is_entry_class m "com.x.Main");
  Alcotest.(check bool) "unregistered" false (M.is_entry_class m "com.x.Ghost")

let test_action_match () =
  let m = sample () in
  Alcotest.(check int) "one receiver for PING" 1
    (List.length (M.components_matching_action m "com.x.PING"));
  Alcotest.(check int) "no receiver for PONG" 0
    (List.length (M.components_matching_action m "com.x.PONG"))

let test_lifecycle_membership () =
  Alcotest.(check bool) "onCreate(Bundle)" true
    (L.is_lifecycle_subsig "void onCreate(android.os.Bundle)");
  Alcotest.(check bool) "onStartCommand" true
    (L.is_lifecycle_subsig "int onStartCommand(android.content.Intent,int,int)");
  Alcotest.(check bool) "random method" false (L.is_lifecycle_subsig "void foo()")

let test_predecessors () =
  Alcotest.(check (list string)) "onResume <- onStart"
    [ "void onStart()" ]
    (L.predecessors "void onResume()");
  Alcotest.(check (list string)) "onStart <- onCreate/onRestart"
    [ "void onCreate(android.os.Bundle)"; "void onRestart()" ]
    (L.predecessors "void onStart()")

let test_entry_methods () =
  let act_cls = "com.x.Main" in
  let act =
    Ir.Jclass.make ~super:(Some "android.app.Activity") act_cls
      ~methods:
        [ Ir.Builder.method_ ~cls:act_cls ~name:"onCreate"
            ~params:[ Ir.Types.Object "android.os.Bundle" ] ~ret:Ir.Types.Void
            (fun _ -> ());
          Ir.Builder.method_ ~cls:act_cls ~name:"helper" ~params:[]
            ~ret:Ir.Types.Void (fun _ -> ()) ]
  in
  let p = Ir.Program.of_classes (Framework.Stubs.classes () @ [ act ]) in
  let m = sample () in
  let entries = M.entry_methods m p in
  Alcotest.(check int) "only the lifecycle handler is an entry" 1
    (List.length entries);
  Alcotest.(check string) "it is onCreate" "onCreate"
    (List.hd entries).Ir.Jsig.name

let test_framework_class () =
  Alcotest.(check string) "activity" "android.app.Activity"
    (C.framework_class C.Activity);
  Alcotest.(check string) "receiver" "android.content.BroadcastReceiver"
    (C.framework_class C.Receiver)

let unit_cases =
  [ Alcotest.test_case "entry class" `Quick test_entry_class;
    Alcotest.test_case "action match" `Quick test_action_match;
    Alcotest.test_case "lifecycle membership" `Quick test_lifecycle_membership;
    Alcotest.test_case "predecessors" `Quick test_predecessors;
    Alcotest.test_case "entry methods" `Quick test_entry_methods;
    Alcotest.test_case "framework classes" `Quick test_framework_class ]

let suites = [ "manifest.unit", unit_cases ]
