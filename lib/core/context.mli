(** The analysis context: the app-wide state one sink group shares
    ({!shared}) plus the per-sink slicing state ({!t}) with its typed
    {!budget} and {!outcome}.

    The budget supersedes the slicer's bare [max_work]/[max_depth] ints: it
    adds an optional wall-clock deadline, and exhausting any limit yields a
    typed [Partial] outcome that names the limits hit, instead of silent
    truncation. *)

type budget = {
  max_depth : int;            (** inter-procedural backtracking depth *)
  max_work : int;             (** total work items per sink *)
  max_contained_depth : int;  (** contained-method sub-slice recursion *)
  time_limit_ms : float option;
      (** wall-clock deadline per sink slice; [None] = unbounded *)
}

val default_budget : budget

type exhaustion = Work | Depth | Deadline

val exhaustion_to_string : exhaustion -> string

type outcome = Complete | Partial of exhaustion list

val outcome_to_string : outcome -> string

(** App-wide state shared by every sink slice of one group: engine,
    program/manifest spaces, the sink-API-call reachability cache with its
    counters (Sec. IV-F), the dead-loop statistics and the trace sink. *)
type shared = {
  engine : Bytesearch.Engine.t;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  loops : Loopdetect.stats;
  reach_cache : (int, bool) Hashtbl.t;  (* keyed by [Sym.id (Jsig.meth_sym m)] *)
  reach_total : int ref;
  reach_cached : int ref;
  trace : Trace.sink;
}

val shared :
  ?loops:Loopdetect.stats ->
  ?trace:Trace.sink ->
  engine:Bytesearch.Engine.t ->
  manifest:Manifest.App_manifest.t -> unit -> shared

(** One sink slice's context: the shared state plus the SSG under
    construction and the budget accounting. *)
type t = {
  engine : Bytesearch.Engine.t;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  loops : Loopdetect.stats;
  reach_cache : (int, bool) Hashtbl.t;  (* keyed by [Sym.id (Jsig.meth_sym m)] *)
  reach_total : int ref;
  reach_cached : int ref;
  trace : Trace.sink;
  budget : budget;
  ssg : Ssg.t;
  started_at : float;
  mutable work_count : int;
  mutable exhausted : exhaustion list;
  (* provenance accumulators (see {!Provenance}): per-strategy resolution
     and caller counts in [Resolver.strategy_index] order, plus the
     creating domain's query-issue counters at slice start *)
  prov_resolutions : int array;
  prov_callers : int array;
  prov_searches0 : Bytesearch.Cache.local_counts;
}

val create : ?budget:budget -> shared -> ssg:Ssg.t -> t

(** Record that [kind]'s limit was hit (idempotent). *)
val exhaust : t -> exhaustion -> unit

(** Has the deadline already been detected?  (No clock read.) *)
val deadline_hit : t -> bool

(** Has the slice's wall-clock deadline passed?  Free when no time limit is
    set; records the [Deadline] exhaustion on first detection. *)
val out_of_time : t -> bool

(** The typed result of the slice: [Complete], or [Partial limits] with the
    limits in the order they were first hit. *)
val outcome : t -> outcome
