(** Forward object taint analysis (Sec. IV-B): starting from a constructor
    allocation site located by signature search, propagate the object through
    definition, invoke and return statements until it reaches an "ending
    method" — either an app-level call with the callee's own sub-signature
    (super-class / interface dispatch) or a framework API call that receives
    the tainted object at a position whose declared type indicates the
    callee's interface (callbacks and asynchronous flows).  The whole call
    chain is maintained so the backward analysis does not pick up unrelated
    flows. *)

(** One discovered advanced caller: where the tracked object comes into
    being, the chain it is propagated through, and the ending method. *)
type advanced_caller = {
  caller : Ir.Jsig.meth;
      (** chain head: the method where the tracked object is created *)
  obj_local : string;    (** local holding the object in [caller] *)
  obj_site : int;        (** allocation (or escape) site in [caller] *)
  chain : (Ir.Jsig.meth * int) list;
      (** methods the object was propagated through: (method, call site) *)
  ending : Ir.Jsig.meth;    (** the ending method *)
  ending_in : Ir.Jsig.meth; (** method whose body contains the ending call *)
  ending_site : int;
  ending_invoke : Ir.Expr.invoke option;
      (** the ending invocation, for argument mapping at app-level endings *)
}

type config = {
  max_endings : int;
  max_steps : int;
  max_return_hops : int;  (** bound on ReturnStmt escape propagation *)
}

val default_config : config

(** Supertypes of [cls] (classes and interfaces, app or system) that declare
    [subsig] — the "interface class type" indicators of Sec. IV-B. *)
val indicator_types : Ir.Program.t -> string -> string -> string list

(** Find the advanced callers of [callee] (a method needing the advanced
    search): search each of the callee class's constructors, then run forward
    object taint from every allocation site.  Loop statistics accumulate the
    CrossForward / InnerForward detections. *)
val advanced_callers :
  ?cfg:config ->
  Bytesearch.Engine.t ->
  Loopdetect.stats ->
  Ir.Jsig.meth ->
  advanced_caller list
