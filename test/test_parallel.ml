(* Tests for the parallel subsystem: the domain pool combinators, and the
   jobs=1 vs jobs=N determinism guarantee across every layer that fans out —
   the sharded index build, the per-sink-group driver, and the per-app
   experiment grid. *)

module Pool = Parallel.Pool
module G = Appgen.Generator
module Driver = Backdroid.Driver

let test_jobs = 4

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)

let test_map_empty () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      Alcotest.(check int) "empty array" 0
        (Array.length (Pool.parallel_map pool (fun x -> x) [||]));
      Alcotest.(check (list int)) "empty list" []
        (Pool.parallel_map_list pool (fun x -> x) []))

let test_map_order () =
  let input = Array.init 1000 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) input in
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      Alcotest.(check (array int)) "squares in order" expect
        (Pool.parallel_map pool (fun i -> i * i) input));
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (array int)) "sequential pool agrees" expect
        (Pool.parallel_map pool (fun i -> i * i) input))

let test_ranges_cover () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      List.iter
        (fun (n, chunks) ->
           let ranges =
             Pool.parallel_ranges pool ?chunks ~n (fun ~lo ~hi -> (lo, hi))
           in
           (* contiguous, ordered, covering [0, n) exactly *)
           let final =
             List.fold_left
               (fun expected_lo (lo, hi) ->
                  Alcotest.(check int)
                    (Printf.sprintf "contiguous at %d (n=%d)" lo n)
                    expected_lo lo;
                  Alcotest.(check bool) "non-empty range" true (hi > lo);
                  hi)
               0 ranges
           in
           Alcotest.(check int) (Printf.sprintf "covers n=%d" n) n final)
        [ (1, None); (7, None); (7, Some 100); (1000, Some 3); (5, Some 1);
          (4, Some 4); (3, Some 2) ];
      Alcotest.(check (list (pair int int))) "n=0 is empty" []
        (Pool.parallel_ranges pool ~n:0 (fun ~lo ~hi -> (lo, hi))))

let test_chunks_edge_cases () =
  let input = Array.init 97 (fun i -> i) in
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      List.iter
        (fun chunk_size ->
           let chunks =
             Pool.parallel_chunks pool ?chunk_size Array.to_list input
           in
           Alcotest.(check (list int))
             (Printf.sprintf "chunks concat (size=%s)"
                (match chunk_size with
                 | Some c -> string_of_int c
                 | None -> "default"))
             (Array.to_list input)
             (List.concat chunks))
        [ None; Some 1; Some 7; Some 97; Some 1000 ])

let test_exception_propagation () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      match
        Pool.parallel_map pool
          (fun i -> if i >= 5 then failwith (string_of_int i) else i)
          (Array.init 10 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure msg ->
        Alcotest.(check string) "lowest failing index wins" "5" msg);
  (* the pool survives a failed batch *)
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      (try ignore (Pool.parallel_map pool (fun () -> failwith "boom") [| () |])
       with Failure _ -> ());
      Alcotest.(check (array int)) "usable after failure" [| 0; 1; 2 |]
        (Pool.parallel_map pool (fun i -> i) [| 0; 1; 2 |]))

let test_nested_map () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let out =
        Pool.parallel_map pool
          (fun base ->
             Array.fold_left ( + ) 0
               (Pool.parallel_map pool (fun i -> base + i)
                  (Array.init 50 (fun i -> i))))
          (Array.init 4 (fun i -> i * 100))
      in
      let expect =
        Array.init 4 (fun b -> (50 * 100 * b) + (50 * 49 / 2))
      in
      Alcotest.(check (array int)) "nested batches settle" expect out)

(* ------------------------------------------------------------------ *)
(* Determinism: sharded index build                                    *)

let fixture_app ?(filler = 30) ?(seed = 11) () =
  let rng = Appgen.Rng.create (seed * 31) in
  let plants =
    List.init 6 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.5)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.par.app%d" seed;
      filler_classes = filler;
      plants }

let hit_fingerprint (h : Bytesearch.Engine.hit) =
  Printf.sprintf "%d:%s:%s:%s" h.line_no
    (Ir.Jsig.meth_to_string h.owner) h.owner_cls
    (match h.stmt_idx with Some i -> string_of_int i | None -> "-")

let test_sharded_index () =
  (* ~9k dex lines: enough for the build to split into [test_jobs] shards *)
  let app = fixture_app ~filler:65 () in
  let seq_engine = Bytesearch.Engine.create app.G.dex in
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let par_engine = Bytesearch.Engine.create ~pool app.G.dex in
      let queries =
        [ Bytesearch.Query.invocation
            (Dex.Descriptor.meth_desc Framework.Api.cipher_get_instance);
          Bytesearch.Query.invocation
            (Dex.Descriptor.meth_desc Framework.Api.ssl_set_hostname_verifier);
          Bytesearch.Query.const_string "AES";
          Bytesearch.Query.Raw "invoke-static" ]
      in
      List.iter
        (fun q ->
           let fp e =
             List.map hit_fingerprint (Bytesearch.Engine.run_uncached e q)
           in
           Alcotest.(check (list string))
             ("identical hits for " ^ Bytesearch.Query.to_command q)
             (fp seq_engine) (fp par_engine))
        queries)

(* ------------------------------------------------------------------ *)
(* Property: every query kind returns identical hits under unindexed scan,
   lazy postings, eager postings and a mapped snapshot of the eager index,
   with and without a worker pool.  The
   query set is exhaustive over the fixture: one invocation query per app
   method, one class-shaped query per app class per kind, one field query
   per field per kind, plus const-string and raw probes (including strings
   containing ", " — the operand-split edge the postings index must not
   mis-key). *)

let test_mode_equivalence () =
  let app = fixture_app ~filler:12 ~seed:17 () in
  let module Q = Bytesearch.Query in
  let module E = Bytesearch.Engine in
  let classes = Ir.Program.app_classes app.G.program in
  let class_descs =
    List.map (fun (c : Ir.Jclass.t) -> Dex.Descriptor.class_desc c.Ir.Jclass.name)
      classes
  in
  let meth_descs =
    List.concat_map
      (fun (c : Ir.Jclass.t) ->
         List.map
           (fun (m : Ir.Jmethod.t) -> Dex.Descriptor.meth_desc m.Ir.Jmethod.msig)
           c.Ir.Jclass.methods)
      classes
  in
  let field_descs =
    List.concat_map
      (fun (c : Ir.Jclass.t) -> List.map Dex.Descriptor.field_desc c.Ir.Jclass.fields)
      classes
  in
  let strings = [ "AES"; "a, b"; "\"quoted\""; "no-such-literal" ] in
  let raws = [ "invoke-static"; "const-string"; "no-such-opcode" ] in
  let queries =
    List.map Q.invocation meth_descs
    @ List.concat_map
        (fun d -> [ Q.new_instance d; Q.const_class d; Q.class_use d ])
        class_descs
    @ List.concat_map
        (fun d -> [ Q.field_access d; Q.static_field_access d ])
        field_descs
    @ List.map Q.const_string strings
    @ List.map Q.raw raws
  in
  let scan = E.create ~indexed:false app.G.dex in
  let lazy_seq = E.create app.G.dex in
  let eager_seq = E.create ~eager:true app.G.dex in
  (* the fourth mode: save the eager engine's index and map it back *)
  let snap_path = Filename.temp_file "backdroid_modeequiv" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap_path with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:snap_path eager_seq);
  let load_snapshot () =
    match Store.Snapshot.load ~path:snap_path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "snapshot load: %s" (Store.Codec.error_to_string e)
  in
  let snap_seq = load_snapshot () in
  (* the fifth mode: an index delta-patched from an older app version.
     Snapshot a mutated variant (the "v1" build), then patch it toward
     [app] so changed classes genuinely re-render while the rest splice. *)
  let old_app = Appgen.Generator.mutate ~pct:0.3 app in
  let old_engine = E.create ~eager:true old_app.G.dex in
  let delta_path = Filename.temp_file "backdroid_modeequiv_v1" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove delta_path with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:delta_path old_engine);
  let delta_file =
    match Store.Snapshot.delta ~path:delta_path app.G.program with
    | Ok (e, _) -> e
    | Error e -> Alcotest.failf "delta: %s" (Store.Codec.error_to_string e)
  in
  let delta_resident =
    match Store.Snapshot.delta_of_engine old_engine app.G.program with
    | Ok (e, _) -> e
    | Error e ->
      Alcotest.failf "delta_of_engine: %s" (Store.Codec.error_to_string e)
  in
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let lazy_pool = E.create ~pool app.G.dex in
      let eager_pool = E.create ~eager:true ~pool app.G.dex in
      let snap_pool = load_snapshot () in
      let engines =
        [ ("lazy/jobs=1", lazy_seq); ("eager/jobs=1", eager_seq);
          ("snapshot/jobs=1", snap_seq);
          ("delta-file/jobs=1", delta_file);
          ("delta-resident/jobs=1", delta_resident);
          ("lazy/jobs=4", lazy_pool); ("eager/jobs=4", eager_pool);
          ("snapshot/jobs=4", snap_pool) ]
      in
      Alcotest.(check bool) "non-trivial query set" true
        (List.length queries > 50);
      List.iter
        (fun q ->
           let expect =
             List.map hit_fingerprint (E.run_uncached scan q)
           in
           List.iter
             (fun (name, e) ->
                Alcotest.(check (list string))
                  (Printf.sprintf "%s agrees with scan on %s" name
                     (Q.to_command q))
                  expect
                  (List.map hit_fingerprint (E.run_uncached e q)))
             engines)
        queries;
      Alcotest.(check int) "eager built every category" 7
        (E.built_categories eager_pool);
      Alcotest.(check int) "lazy built every queried category" 7
        (E.built_categories lazy_pool);
      Alcotest.(check int) "snapshot loaded every category" 7
        (E.built_categories snap_pool);
      Alcotest.(check int) "delta carried every category" 7
        (E.built_categories delta_file);
      Alcotest.(check string) "delta engine reports its mode" "delta"
        (E.index_mode delta_resident))

(* ------------------------------------------------------------------ *)
(* Determinism: Driver.analyze                                         *)

let report_fingerprint (r : Driver.sink_report) =
  Printf.sprintf "%s@%s:%d reachable=%b fact=%s verdict=%s ssg=%b"
    r.sink.Framework.Sinks.name
    (Ir.Jsig.meth_to_string r.meth)
    r.site r.reachable
    (Backdroid.Facts.to_string r.fact)
    (Backdroid.Detectors.verdict_to_string r.verdict)
    (Option.is_some r.ssg)

let stats_fingerprint (s : Driver.stats) =
  Printf.sprintf
    "sinks=%d searches=%d/%d slookups=%d shits=%d loops=%d/%d/%d/%d \
     nodes=%d edges=%d"
    s.sink_calls s.searches_cached s.searches_total s.sink_cache_lookups
    s.sink_cache_hits
    (Backdroid.Loopdetect.get s.loops Backdroid.Loopdetect.Cross_backward)
    (Backdroid.Loopdetect.get s.loops Backdroid.Loopdetect.Inner_backward)
    (Backdroid.Loopdetect.get s.loops Backdroid.Loopdetect.Cross_forward)
    (Backdroid.Loopdetect.get s.loops Backdroid.Loopdetect.Inner_forward)
    s.ssg_nodes s.ssg_edges

let test_driver_determinism () =
  let app = fixture_app ~seed:23 () in
  let analyze jobs =
    Driver.analyze
      ~cfg:{ Driver.default_config with Driver.jobs }
      ~dex:app.G.dex ~manifest:app.G.manifest ()
  in
  let seq = analyze 1 and par = analyze test_jobs in
  Alcotest.(check bool) "found sink calls" true
    (seq.Driver.stats.Driver.sink_calls > 0);
  Alcotest.(check (list string)) "identical reports in identical order"
    (List.map report_fingerprint seq.Driver.reports)
    (List.map report_fingerprint par.Driver.reports);
  Alcotest.(check string) "identical statistics"
    (stats_fingerprint seq.Driver.stats)
    (stats_fingerprint par.Driver.stats)

(* ------------------------------------------------------------------ *)
(* Determinism: the per-app experiment fan-out                         *)

let measurement_fingerprint (m : Evalharness.Runner.measurement) =
  (* everything except wall-clock time and the parallelism stamp *)
  Printf.sprintf "%s/%s to=%b err=%b sinks=%d stmts=%d mb=%.2f ins=%d \
                  scr=%.4f skr=%.4f loops=%d cross=%d"
    m.Evalharness.Runner.app
    (Evalharness.Runner.tool_name m.Evalharness.Runner.tool)
    m.Evalharness.Runner.timed_out m.Evalharness.Runner.errored
    m.Evalharness.Runner.sink_calls m.Evalharness.Runner.size_stmts
    m.Evalharness.Runner.size_mb m.Evalharness.Runner.insecure
    m.Evalharness.Runner.search_cache_rate
    m.Evalharness.Runner.sink_cache_rate m.Evalharness.Runner.loops
    m.Evalharness.Runner.cross_backward_loops

let test_corpus_determinism () =
  let opts jobs =
    { Evalharness.Experiments.default_opts with
      Evalharness.Experiments.scale = 0.15;
      count = 6;
      timeout_s = 5.0;          (* generous: timeouts must not differ *)
      flowdroid_timeout_s = 5.0;
      jobs }
  in
  let seq = Evalharness.Experiments.run_corpus (opts 1) in
  let par = Evalharness.Experiments.run_corpus (opts test_jobs) in
  let fps (r : Evalharness.Experiments.corpus_run) =
    List.map measurement_fingerprint
      (r.Evalharness.Experiments.backdroid
       @ r.Evalharness.Experiments.amandroid
       @ r.Evalharness.Experiments.flowdroid)
  in
  Alcotest.(check (list string))
    "identical measurements in corpus order (timings aside)" (fps seq)
    (fps par);
  List.iter
    (fun (m : Evalharness.Runner.measurement) ->
       Alcotest.(check int) "parallelism stamped" test_jobs
         m.Evalharness.Runner.parallelism)
    par.Evalharness.Experiments.backdroid

let cases =
  [ Alcotest.test_case "map: empty input" `Quick test_map_empty;
    Alcotest.test_case "map: order preserved" `Quick test_map_order;
    Alcotest.test_case "ranges: exact cover" `Quick test_ranges_cover;
    Alcotest.test_case "chunks: edge sizes" `Quick test_chunks_edge_cases;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "nested batches" `Quick test_nested_map;
    Alcotest.test_case "sharded index == sequential index" `Quick
      test_sharded_index;
    Alcotest.test_case
      "scan == lazy == eager == snapshot == delta at jobs=1 and jobs=4"
      `Quick test_mode_equivalence;
    Alcotest.test_case "driver: jobs=1 == jobs=4" `Quick
      test_driver_determinism;
    Alcotest.test_case "corpus: jobs=1 == jobs=4" `Slow
      test_corpus_determinism ]

let suites = [ "parallel.pool", cases ]
