(** The bytecode search engine: executes typed queries over the dexdump
    plaintext, returning hits mapped back to their enclosing methods, with
    query-level caching.

    Indexed mode answers queries from per-category postings: for each of the
    seven searchable categories, a hashtable from operand symbol id to a
    sorted int array of slots in the dexfile's hit {!Dex.Arena}.  Postings
    are built from the interned operand keys the disassembler attached to
    each line — no text re-parsing — and hit records are materialised only
    for slots a query actually returns.

    By default each category's postings build lazily on the first query of
    that category (double-checked under a build mutex), so an analysis that
    never issues, say, a [Const_class] query never pays for that table.
    Eager mode ([eager:true], kept for ablation and for front-loading the
    cost) builds all seven at construction time, sharded over a
    {!Parallel.Pool.t} when one is given.

    Lazy builds are deliberately sequential even when the engine holds a
    pool: a lazy build can trigger inside a pool task (the per-sink fan-out)
    while the cache and build mutexes are held, and sharding the build over
    the same pool would let the builder's help-drain pop a foreign task that
    re-enters those mutexes on the builder's own thread.  Eager create-time
    builds shard safely — no task that could touch this engine's locks
    exists before [create] returns.  The arena makes the sequential build a
    single pass over unboxed int arrays, so laziness, not sharding, is where
    the time goes. *)

type hit = {
  line_no : int;
  text : string;
  owner : Ir.Jsig.meth;     (** enclosing method of the matching line *)
  owner_cls : string;
  stmt_idx : int option;
}

(* Engine category indices.  0-3 coincide with the arena's category codes;
   field_ops is the union of instance and static field accesses (an
   [Field_access] query must see sget/sput lines too). *)
let cat_invocations = 0
let cat_new_instances = 1
let cat_const_classes = 2
let cat_const_strings = 3
let cat_field_ops = 4
let cat_static_field_ops = 5
let cat_class_tokens = 6
let n_categories = 7

let category_name = function
  | 0 -> "invocations"
  | 1 -> "new_instances"
  | 2 -> "const_classes"
  | 3 -> "const_strings"
  | 4 -> "field_ops"
  | 5 -> "static_field_ops"
  | 6 -> "class_tokens"
  | _ -> invalid_arg "Engine.category_name"

(** Postings for one category: operand [Sym.id] -> strictly ascending slots
    in the hit arena. *)
type postings = (int, int array) Hashtbl.t

type t = {
  dex : Dex.Dexfile.t;
  cache : hit Cache.t;
  pool : Parallel.Pool.t option;  (** used only by eager create-time builds *)
  indexed : bool;
  eager : bool;
  tables : postings option Atomic.t array;  (** one slot per category *)
  build_us : float array;  (** per-category build cost, set under the lock *)
  build_lock : Mutex.t;
}

(* the instruction text starts after "    %04x: " *)
let opcode_rest text =
  match String.index_opt text ':' with
  | Some colon when colon + 2 <= String.length text ->
    Some (String.sub text (colon + 2) (String.length text - colon - 2))
  | Some _ | None -> None

(** Class-descriptor tokens ([Lcom/foo/Bar;]) occurring in a line. *)
let class_tokens_of text =
  let n = String.length text in
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '/' || c = '_' || c = '$'
  in
  let rec go i acc =
    if i >= n then acc
    else if text.[i] = 'L' && (i = 0 || not (ok text.[i - 1])) then begin
      let rec scan j = if j < n && ok text.[j] then scan (j + 1) else j in
      let j = scan (i + 1) in
      if j < n && text.[j] = ';' && j > i + 1 then
        go (j + 1) (String.sub text i (j - i + 1) :: acc)
      else go (i + 1) acc
    end
    else go (i + 1) acc
  in
  List.sort_uniq String.compare (go 0 [])

(* ------------------------------------------------------------------ *)
(* Postings construction                                               *)

(* Accumulate [slot] into [key]'s bucket: one table probe on the common
   (key already present) path.  Buckets come out in descending slot order;
   finalization reverses them. *)
let accumulate tbl key slot =
  match Hashtbl.find_opt tbl key with
  | Some bucket -> bucket := slot :: !bucket
  | None -> Hashtbl.add tbl key (ref [ slot ])

(* Build one category's raw buckets over arena slots [lo, hi).  Categories
   0-5 are single passes over the arena's unboxed category/symbol arrays;
   class tokens are the one category that still parses line text (tokens can
   occur anywhere in a line, including inside string literals), which is
   exactly why building it lazily pays. *)
let shard_build (dex : Dex.Dexfile.t) c ~lo ~hi =
  let a : Dex.Arena.t = dex.arena in
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  if c = cat_class_tokens then
    for slot = lo to hi - 1 do
      let text = dex.lines.(a.line_idx.(slot)).Dex.Disasm.text in
      match opcode_rest text with
      | None -> ()
      | Some rest ->
        List.iter
          (fun tok -> accumulate tbl (Sym.id (Sym.intern tok)) slot)
          (class_tokens_of rest)
    done
  else begin
    let member =
      if c = cat_field_ops then fun k ->
        k = Dex.Arena.cat_field || k = Dex.Arena.cat_static_field
      else if c = cat_static_field_ops then fun k ->
        k = Dex.Arena.cat_static_field
      else fun k -> k = c
    in
    for slot = lo to hi - 1 do
      if member a.cat.(slot) then accumulate tbl a.sym.(slot) slot
    done
  end;
  tbl

(* Every finalized bucket must be strictly ascending in slot order — the
   invariant lookups (and the jobs=1 vs jobs=N determinism guarantee) rely
   on.  Shards are merged in slice order, so this also checks the merge. *)
let check_sorted arr =
  for i = 1 to Array.length arr - 1 do
    assert (arr.(i - 1) < arr.(i))
  done;
  arr

let finalize_shard tbl : postings =
  let p = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun key bucket ->
       Hashtbl.replace p key
         (check_sorted (Array.of_list (List.rev !bucket))))
    tbl;
  p

(* Shards arrive in slice order with descending buckets; appending the
   reversed buckets reproduces the sequential ascending order exactly. *)
let merge_shards shards : postings =
  let acc : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun tbl ->
       Hashtbl.iter
         (fun key bucket ->
            match Hashtbl.find_opt acc key with
            | Some prev -> prev := !prev @ List.rev !bucket
            | None -> Hashtbl.add acc key (ref (List.rev !bucket)))
         tbl)
    shards;
  let p = Hashtbl.create (max 16 (Hashtbl.length acc)) in
  Hashtbl.iter
    (fun key slots ->
       Hashtbl.replace p key (check_sorted (Array.of_list !slots)))
    acc;
  p

(* Shards below this size are not worth the merge traffic. *)
let min_shard_slots = 2048

let build_postings ?pool dex c =
  let n = Dex.Arena.length dex.Dex.Dexfile.arena in
  match pool with
  | Some pool
    when Parallel.Pool.is_active pool
         && Parallel.Pool.jobs pool > 1
         && n >= 2 * min_shard_slots ->
    let chunks =
      min (Parallel.Pool.jobs pool) (max 1 (n / min_shard_slots))
    in
    merge_shards
      (Parallel.Pool.parallel_ranges pool ~chunks ~n (fun ~lo ~hi ->
           shard_build dex c ~lo ~hi))
  | Some _ | None -> finalize_shard (shard_build dex c ~lo:0 ~hi:n)

let m_builds = Obs.Metrics.counter "search.postings.builds"
let m_slots = Obs.Metrics.counter "search.postings.slots"
let m_bytes = Obs.Metrics.counter "search.postings.bytes"

(* Rough live size of one postings table: per key a bucket entry plus a boxed
   int array of slots (header + one word per slot). *)
let postings_bytes (p : postings) =
  let word = Sys.word_size / 8 in
  Hashtbl.fold (fun _ slots acc -> acc + ((4 + Array.length slots) * word)) p 0

(* Double-checked lazy build.  [pool] is passed only from eager create-time
   builds; lazy builds run sequentially (see the module comment). *)
let ensure_category ?pool t c =
  match Atomic.get t.tables.(c) with
  | Some p -> p
  | None ->
    Mutex.lock t.build_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.build_lock) (fun () ->
        match Atomic.get t.tables.(c) with
        | Some p -> p
        | None ->
          let span0 = Obs.Span.start () in
          let t0 = Unix.gettimeofday () in
          let p = build_postings ?pool t.dex c in
          t.build_us.(c) <- (Unix.gettimeofday () -. t0) *. 1e6;
          let slots = Hashtbl.fold (fun _ s acc -> acc + Array.length s) p 0 in
          Obs.Metrics.incr m_builds;
          Obs.Metrics.add m_slots slots;
          Obs.Metrics.add m_bytes (postings_bytes p);
          Obs.Span.emit ~cat:"search" ~name:("build:" ^ category_name c)
            ~attrs:[ ("keys", Obs.Span.Int (Hashtbl.length p));
                     ("slots", Obs.Span.Int slots) ]
            span0;
          Atomic.set t.tables.(c) (Some p);
          p)

let create ?(indexed = true) ?(eager = false) ?pool dex =
  let t =
    { dex; cache = Cache.create (); pool; indexed; eager = indexed && eager;
      tables = Array.init n_categories (fun _ -> Atomic.make None);
      build_us = Array.make n_categories 0.0;
      build_lock = Mutex.create () }
  in
  if t.eager then
    for c = 0 to n_categories - 1 do
      ignore (ensure_category ?pool t c)
    done;
  t

let program t = t.dex.Dex.Dexfile.program

(* ------------------------------------------------------------------ *)
(* Scan mode                                                           *)

(* Naive-but-tight substring check; patterns are short and lines are short,
   so this outperforms building a full-text index for our corpus sizes.  The
   candidate comparison is a char loop — no String.sub allocation in the
   scan hot path. *)
let contains ~pat s =
  let lp = String.length pat and ls = String.length s in
  if lp = 0 then true
  else if lp > ls then false
  else begin
    let max_start = ls - lp in
    let c0 = pat.[0] in
    let rec eq_at i j =
      j >= lp
      || (String.unsafe_get s (i + j) = String.unsafe_get pat j
          && eq_at i (j + 1))
    in
    let rec at i =
      if i > max_start then false
      else if s.[i] = c0 && eq_at i 1 then true
      else at (i + 1)
    in
    at 0
  end

let starts_with_opcode ~prefixes text =
  (* instruction lines look like "    0004: invoke-virtual {...}, ..."; the
     opcode prefix check runs at an offset, which stdlib
     [String.starts_with] cannot do, hence the one explicit [String.sub] *)
  match String.index_opt text ':' with
  | None -> false
  | Some colon ->
    let rest_start = colon + 2 in
    List.exists
      (fun p ->
         rest_start + String.length p <= String.length text
         && String.sub text rest_start (String.length p) = p)
      prefixes

let scan t ~prefixes ~pat ~filter =
  let acc = ref [] in
  Array.iteri
    (fun i (line : Dex.Disasm.line) ->
       match line.owner with
       | None -> ()
       | Some owner ->
         if (prefixes = [] || starts_with_opcode ~prefixes line.text)
            && contains ~pat line.text
         then begin
           let h =
             { line_no = i; text = line.text; owner;
               owner_cls = Option.value ~default:"" line.owner_cls;
               stmt_idx = line.stmt_idx }
           in
           if filter h then acc := h :: !acc
         end)
    t.dex.Dex.Dexfile.lines;
  List.rev !acc

let scan_uncached t (q : Query.t) =
  match q with
  | Invocation s ->
    scan t ~prefixes:[ "invoke-" ] ~pat:(", " ^ Sym.to_string s)
      ~filter:(fun _ -> true)
  | New_instance s ->
    scan t ~prefixes:[ "new-instance" ] ~pat:(", " ^ Sym.to_string s)
      ~filter:(fun _ -> true)
  | Const_class s ->
    scan t ~prefixes:[ "const-class" ] ~pat:(", " ^ Sym.to_string s)
      ~filter:(fun _ -> true)
  | Const_string s ->
    (* the payload is already the quoted literal *)
    scan t ~prefixes:[ "const-string" ] ~pat:(Sym.to_string s)
      ~filter:(fun _ -> true)
  | Field_access s ->
    scan t ~prefixes:[ "iget"; "iput"; "sget"; "sput" ]
      ~pat:(", " ^ Sym.to_string s) ~filter:(fun _ -> true)
  | Static_field_access s ->
    scan t ~prefixes:[ "sget"; "sput" ] ~pat:(", " ^ Sym.to_string s)
      ~filter:(fun _ -> true)
  | Class_use s ->
    let cls = Sym.to_string s in
    let subject = Dex.Descriptor.class_of_desc cls in
    scan t ~prefixes:[] ~pat:cls
      ~filter:(fun h -> not (String.equal h.owner_cls subject))
  | Raw pat -> scan t ~prefixes:[] ~pat ~filter:(fun _ -> true)

(* ------------------------------------------------------------------ *)
(* Indexed mode                                                        *)

let query_category : Query.t -> int option = function
  | Invocation _ -> Some cat_invocations
  | New_instance _ -> Some cat_new_instances
  | Const_class _ -> Some cat_const_classes
  | Const_string _ -> Some cat_const_strings
  | Field_access _ -> Some cat_field_ops
  | Static_field_access _ -> Some cat_static_field_ops
  | Class_use _ -> Some cat_class_tokens
  | Raw _ -> None  (* free-form searches always scan *)

(* Hits are materialised per returned slot — the postings themselves hold
   only ints. *)
let hit_of_slot t slot =
  let a : Dex.Arena.t = t.dex.Dex.Dexfile.arena in
  let line_no = a.line_idx.(slot) in
  let oid = a.owner_id.(slot) in
  { line_no;
    text = t.dex.Dex.Dexfile.lines.(line_no).Dex.Disasm.text;
    owner = a.owners.(oid);
    owner_cls = a.owner_cls.(oid);
    stmt_idx = (let s = a.stmt_idx.(slot) in if s < 0 then None else Some s) }

let hits_of_sym t p sym =
  match Hashtbl.find_opt p (Sym.id sym) with
  | None -> []
  | Some slots ->
    Array.fold_right (fun slot acc -> hit_of_slot t slot :: acc) slots []

let indexed_lookup t c (q : Query.t) =
  let p = ensure_category t c in
  match q with
  | Invocation s | New_instance s | Const_class s | Const_string s
  | Field_access s | Static_field_access s -> hits_of_sym t p s
  | Class_use s ->
    let subject = Dex.Descriptor.class_of_desc (Sym.to_string s) in
    List.filter
      (fun h -> not (String.equal h.owner_cls subject))
      (hits_of_sym t p s)
  | Raw _ -> assert false  (* query_category returned None *)

let run_uncached t q =
  if not t.indexed then scan_uncached t q
  else
    match query_category q with
    | Some c -> indexed_lookup t c q
    | None -> scan_uncached t q

(** Execute a query, consulting the query cache first. *)
let run t q = Cache.find_or_add t.cache q (fun () -> run_uncached t q)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let index_mode t =
  if not t.indexed then "scan" else if t.eager then "eager" else "lazy"

let built_categories t =
  Array.fold_left
    (fun n slot -> if Atomic.get slot <> None then n + 1 else n)
    0 t.tables

let index_build_timings t =
  Mutex.lock t.build_lock;
  let timings = ref [] in
  for c = n_categories - 1 downto 0 do
    if Atomic.get t.tables.(c) <> None then
      timings := (category_name c, t.build_us.(c)) :: !timings
  done;
  Mutex.unlock t.build_lock;
  !timings

let cache_rate t = Cache.cache_rate t.cache
let total_searches t = Cache.total_searches t.cache
let cached_searches t = Cache.cached_searches t.cache
let category_stats t = Cache.category_stats t.cache
let category_timings t = Cache.category_timings t.cache
