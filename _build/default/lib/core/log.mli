(** Logging source for the BackDroid pipeline.  Enable with
    [Logs.Src.set_level Log.src (Some Logs.Debug)] (the CLI's
    [-v] flag does this) to watch the bytecode searches guide the backward
    analysis step by step, as in the Fig. 3 / Fig. 4 walk-throughs. *)

val src : Logs.src
module L : Logs.LOG
val debug : ('a, unit) Logs.msgf -> unit
val info : ('a, unit) Logs.msgf -> unit
val warn : ('a, unit) Logs.msgf -> unit
