lib/ir/builder.mli: Expr Jmethod Jsig Stmt Types Value
