lib/baseline/cryptoguard.mli: Backdroid Framework Ir
