(** Classes: name, hierarchy links, fields and methods.

    [is_system] marks framework stub classes (the android / java / javax /
    org.apache namespaces): their methods have no analysable bodies and their
    bytecode is not part of the app dex, exactly like real framework
    classes. *)

type t = {
  name : string;
  super : string option;
  interfaces : string list;
  is_interface : bool;
  is_abstract : bool;
  is_system : bool;
  fields : Jsig.field list;
  methods : Jmethod.t list;
}
val make :
  ?super:string option ->
  ?interfaces:string list ->
  ?is_interface:bool ->
  ?is_abstract:bool ->
  ?is_system:bool ->
  ?fields:Jsig.field list -> ?methods:Jmethod.t list -> string -> t
val find_method :
  t -> name:String.t -> params:Types.t list -> Jmethod.t option
val find_method_by_subsig : t -> String.t -> Jmethod.t option
val constructors : t -> Jmethod.t list
val clinit : t -> Jmethod.t option

(** Package prefix of the class name ("" for the default package). *)
val package : t -> string
