(* End-to-end tests: one generated app per code shape, analyzed by the full
   BackDroid pipeline (initial search -> slicing/SSG -> forward analysis ->
   detectors).  These are the core correctness tests of the reproduction:
   each shape exercises one search mechanism of Sec. IV. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver
module Detectors = Backdroid.Detectors

let analyze_app ?(cfg = Driver.default_config) (app : G.app) =
  Driver.analyze ~cfg ~dex:app.dex ~manifest:app.manifest ()

let make_app ?(filler = 3) shape sink insecure =
  G.generate
    { G.default_config with
      G.seed = 77;
      name = "com.test." ^ Shape.to_string shape;
      filler_classes = filler;
      plants = [ { G.shape; sink; insecure } ] }

let analyze_shape ?cfg shape sink insecure =
  analyze_app ?cfg (make_app shape sink insecure)

let count_insecure r = List.length (Driver.insecure_reports r)

let reachable_reports (r : Driver.result) =
  List.filter (fun (rep : Driver.sink_report) -> rep.reachable) r.reports

(* ------------------------------------------------------------------ *)

let check_detects shape sink () =
  let r = analyze_shape shape sink true in
  Alcotest.(check bool)
    (Shape.to_string shape ^ " finds a sink occurrence")
    true
    (List.length r.reports >= 1);
  Alcotest.(check bool)
    (Shape.to_string shape ^ " reaches an entry point")
    true
    (List.length (reachable_reports r) >= 1);
  Alcotest.(check int)
    (Shape.to_string shape ^ " flags exactly one insecure sink")
    1 (count_insecure r)

let check_secure shape sink () =
  let r = analyze_shape shape sink false in
  Alcotest.(check int)
    (Shape.to_string shape ^ " has no insecure report when secure")
    0 (count_insecure r);
  Alcotest.(check bool)
    (Shape.to_string shape ^ " still reaches the entry (secure variant)")
    true
    (List.length (reachable_reports r) >= 1);
  let secure_verdicts =
    List.filter
      (fun (rep : Driver.sink_report) -> rep.verdict = Detectors.Secure)
      r.reports
  in
  Alcotest.(check bool)
    (Shape.to_string shape ^ " resolves the secure parameter")
    true
    (List.length secure_verdicts >= 1)

let check_not_reported shape sink () =
  let r = analyze_shape shape sink true in
  Alcotest.(check int)
    (Shape.to_string shape ^ " reports nothing (flow not valid)")
    0 (count_insecure r)

let detectable_shapes =
  [ Shape.Direct; Shape.Static_chain; Shape.Child_class; Shape.Super_class;
    Shape.Interface_dispatch; Shape.Callback; Shape.Async_thread;
    Shape.Async_executor; Shape.Async_task; Shape.Static_init;
    Shape.Clinit_field; Shape.Icc_explicit; Shape.Icc_implicit;
    Shape.Lifecycle_field; Shape.Skipped_lib; Shape.Recursive_chain ]

let crypto_cases =
  List.map
    (fun shape ->
       Alcotest.test_case
         ("crypto/" ^ Shape.to_string shape)
         `Quick
         (check_detects shape Sinks.cipher))
    detectable_shapes

let ssl_cases =
  List.map
    (fun shape ->
       Alcotest.test_case
         ("ssl/" ^ Shape.to_string shape)
         `Quick
         (check_detects shape Sinks.ssl_factory))
    detectable_shapes

let https_shapes =
  [ Shape.Direct; Shape.Callback; Shape.Async_thread; Shape.Super_class ]

let https_cases =
  List.map
    (fun shape ->
       Alcotest.test_case
         ("https/" ^ Shape.to_string shape)
         `Quick
         (check_detects shape Sinks.https_conn))
    https_shapes

let secure_cases =
  List.map
    (fun (shape, sink, name) ->
       Alcotest.test_case ("secure/" ^ name) `Quick (check_secure shape sink))
    [ Shape.Direct, Sinks.cipher, "crypto-direct";
      Shape.Static_chain, Sinks.cipher, "crypto-chain";
      Shape.Callback, Sinks.cipher, "crypto-callback";
      Shape.Direct, Sinks.ssl_factory, "ssl-direct";
      Shape.Async_thread, Sinks.ssl_factory, "ssl-thread";
      Shape.Direct, Sinks.https_conn, "https-direct" ]

let negative_cases =
  [ Alcotest.test_case "dead-code not reported" `Quick
      (check_not_reported Shape.Dead_code Sinks.cipher);
    Alcotest.test_case "unregistered component not reported" `Quick
      (check_not_reported Shape.Unregistered_component Sinks.ssl_factory);
    Alcotest.test_case "dead-code sink is found but unreachable" `Quick
      (fun () ->
         let r = analyze_shape Shape.Dead_code Sinks.cipher true in
         Alcotest.(check bool) "occurrence found" true (List.length r.reports >= 1);
         Alcotest.(check int) "no reachable report" 0
           (List.length (reachable_reports r)));
    Alcotest.test_case "static-init unreachable variant not reported" `Quick
      (fun () ->
         (* a <clinit> sink whose class is never used from any entry class *)
         let ctx = { Appgen.Templates.ns = "com.test.ci0"; rng = Appgen.Rng.create 5 } in
         let tr =
           Appgen.Templates.plant_static_init ~reachable:false ctx
             ~sink:Sinks.cipher ~insecure:true
         in
         let classes = Framework.Stubs.classes () @ tr.classes in
         let program = Ir.Program.of_classes classes in
         let manifest =
           Manifest.App_manifest.make ~package:"com.test.ci0"
             ~components:tr.components
         in
         let dex = Dex.Dexfile.of_program program in
         let r = Driver.analyze ~dex ~manifest () in
         Alcotest.(check int) "not reported" 0 (count_insecure r)) ]

(* The documented BackDroid FN and its fix (Sec. VI-C + discussion). *)
let subclassed_sink_cases =
  [ Alcotest.test_case "subclassed sink missed by default" `Quick (fun () ->
        let r = analyze_shape Shape.Subclassed_sink Sinks.ssl_factory true in
        Alcotest.(check int) "initial search misses the subclass invocation" 0
          (List.length r.reports));
    Alcotest.test_case "subclassed sink found with hierarchy-aware search"
      `Quick (fun () ->
        let cfg =
          { Driver.default_config with
            Driver.subclass_aware_initial_search = true }
        in
        let r = analyze_shape ~cfg Shape.Subclassed_sink Sinks.ssl_factory true in
        Alcotest.(check int) "detected with the fix" 1 (count_insecure r)) ]

(* Facts: the forward analysis recovers the exact parameter strings. *)
let fact_cases =
  [ Alcotest.test_case "crypto fact is the ECB spec string" `Quick (fun () ->
        let r = analyze_shape Shape.Direct Sinks.cipher true in
        match Driver.insecure_reports r with
        | [ rep ] ->
          Alcotest.(check string) "fact" "\"AES/ECB/PKCS5Padding\""
            (Backdroid.Facts.to_string rep.fact)
        | _ -> Alcotest.fail "expected one insecure report");
    Alcotest.test_case "icc fact crosses the Intent extra" `Quick (fun () ->
        let r = analyze_shape Shape.Icc_explicit Sinks.cipher true in
        match Driver.insecure_reports r with
        | [ rep ] ->
          Alcotest.(check string) "fact" "\"AES/ECB/PKCS5Padding\""
            (Backdroid.Facts.to_string rep.fact)
        | _ -> Alcotest.fail "expected one insecure report");
    Alcotest.test_case "ssl fact is the ALLOW_ALL field" `Quick (fun () ->
        let r = analyze_shape Shape.Direct Sinks.ssl_factory true in
        match Driver.insecure_reports r with
        | [ rep ] ->
          (match rep.fact with
           | Backdroid.Facts.Static_ref f ->
             Alcotest.(check string) "field" "ALLOW_ALL_HOSTNAME_VERIFIER"
               f.Ir.Jsig.fname
           | f -> Alcotest.fail ("unexpected fact " ^ Backdroid.Facts.to_string f))
        | _ -> Alcotest.fail "expected one insecure report") ]

(* SSG structural checks. *)
let ssg_cases =
  [ Alcotest.test_case "async SSG carries an Async edge" `Quick (fun () ->
        let r = analyze_shape Shape.Async_executor Sinks.cipher true in
        let has_async =
          List.exists
            (fun (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg ->
                 List.exists
                   (function Backdroid.Ssg.Async _ -> true | _ -> false)
                   ssg.Backdroid.Ssg.edges
               | None -> false)
            r.reports
        in
        Alcotest.(check bool) "async edge present" true has_async);
    Alcotest.test_case "fig4 chain recorded through util methods" `Quick
      (fun () ->
        let r = analyze_shape Shape.Async_executor Sinks.cipher true in
        let chain_len =
          List.fold_left
            (fun acc (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg ->
                 List.fold_left
                   (fun acc e ->
                      match e with
                      | Backdroid.Ssg.Async { chain; ending; _ } ->
                        Alcotest.(check string) "ending is Executor.execute"
                          "execute" ending.Ir.Jsig.name;
                        max acc (List.length chain)
                      | _ -> acc)
                   acc ssg.Backdroid.Ssg.edges
               | None -> acc)
            0 r.reports
        in
        Alcotest.(check bool) "chain passes through the two util methods" true
          (chain_len >= 2));
    Alcotest.test_case "icc SSG carries an Icc edge" `Quick (fun () ->
        let r = analyze_shape Shape.Icc_explicit Sinks.cipher true in
        let has_icc =
          List.exists
            (fun (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg ->
                 List.exists
                   (function Backdroid.Ssg.Icc _ -> true | _ -> false)
                   ssg.Backdroid.Ssg.edges
               | None -> false)
            r.reports
        in
        Alcotest.(check bool) "icc edge present" true has_icc);
    Alcotest.test_case "clinit-field SSG has a static track" `Quick (fun () ->
        let r = analyze_shape Shape.Clinit_field Sinks.cipher true in
        let has_track =
          List.exists
            (fun (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg -> ssg.Backdroid.Ssg.static_track <> []
               | None -> false)
            r.reports
        in
        Alcotest.(check bool) "static track present" true has_track);
    Alcotest.test_case "lifecycle SSG has a Lifecycle edge" `Quick (fun () ->
        let r = analyze_shape Shape.Lifecycle_field Sinks.cipher true in
        let has_lc =
          List.exists
            (fun (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg ->
                 List.exists
                   (function Backdroid.Ssg.Lifecycle _ -> true | _ -> false)
                   ssg.Backdroid.Ssg.edges
               | None -> false)
            r.reports
        in
        Alcotest.(check bool) "lifecycle edge present" true has_lc) ]

(* Multi-sink apps: caches and stats. *)
let stats_cases =
  [ Alcotest.test_case "multi-sink app analyzes all occurrences" `Quick
      (fun () ->
        let plants =
          List.map
            (fun s -> { G.shape = s; sink = Sinks.cipher; insecure = true })
            [ Shape.Direct; Shape.Static_chain; Shape.Callback;
              Shape.Async_thread; Shape.Super_class ]
        in
        let app =
          G.generate
            { G.default_config with
              G.seed = 11; name = "com.test.multi"; filler_classes = 5; plants }
        in
        let r = analyze_app app in
        Alcotest.(check int) "five sink calls" 5 r.stats.Driver.sink_calls;
        Alcotest.(check int) "five insecure" 5 (count_insecure r);
        Alcotest.(check bool) "search cache used" true
          (r.stats.Driver.search_cache_rate >= 0.0));
    Alcotest.test_case "repeated sinks in one method hit the sink cache" `Quick
      (fun () ->
        (* two dead-code plants in the same namespace share no method, so use
           one plant and re-run analysis: the reachability cache within one
           run is exercised by multi-sink apps above; here check the counter
           exists and is consistent *)
        let r = analyze_shape Shape.Dead_code Sinks.cipher true in
        Alcotest.(check bool) "lookups >= hits" true
          (r.stats.Driver.sink_cache_lookups >= r.stats.Driver.sink_cache_hits)) ]

let builder_cases =
  [ Alcotest.test_case "stringbuilder spec resolved (insecure)" `Quick
      (fun () ->
        let r = analyze_shape Shape.Builder_spec Sinks.cipher true in
        match Driver.insecure_reports r with
        | [ rep ] ->
          Alcotest.(check string) "concatenated fact"
            "\"AES/ECB/PKCS5Padding\""
            (Backdroid.Facts.to_string rep.fact)
        | l ->
          Alcotest.fail
            (Printf.sprintf "expected 1 insecure report, got %d" (List.length l)));
    Alcotest.test_case "stringbuilder spec resolved (secure)" `Quick (fun () ->
        let r = analyze_shape Shape.Builder_spec Sinks.cipher false in
        Alcotest.(check int) "no insecure" 0 (count_insecure r);
        Alcotest.(check bool) "secure verdict resolved" true
          (List.exists
             (fun (rep : Driver.sink_report) -> rep.verdict = Detectors.Secure)
             r.reports)) ]

let loop_cases =
  [ Alcotest.test_case "recursive chain triggers dead-loop detection" `Quick
      (fun () ->
        let r = analyze_shape Shape.Recursive_chain Sinks.cipher true in
        Alcotest.(check int) "detected" 1 (count_insecure r);
        let loops = Backdroid.Loopdetect.total r.stats.Driver.loops in
        Alcotest.(check bool)
          (Printf.sprintf "loops recorded (%d)" loops)
          true (loops >= 1);
        Alcotest.(check bool) "cross-backward loop present" true
          (Backdroid.Loopdetect.get r.stats.Driver.loops
             Backdroid.Loopdetect.Cross_backward
           >= 1)) ]

let base_suites =
  [ "shapes.crypto", crypto_cases;
    "shapes.ssl", ssl_cases;
    "shapes.https", https_cases;
    "shapes.secure", secure_cases;
    "shapes.negative", negative_cases;
    "shapes.subclassed", subclassed_sink_cases;
    "shapes.facts", fact_cases;
    "shapes.ssg", ssg_cases;
    "shapes.stats", stats_cases;
    "shapes.loops", loop_cases;
    "shapes.builder", builder_cases ]

(* Property: for every detectable shape, sink API and seed, BackDroid's
   verdict agrees with the generator's planted ground truth. *)
let ground_truth_agreement =
  QCheck.Test.make ~name:"detection agrees with ground truth" ~count:60
    QCheck.(
      make
        Gen.(
          let* shape = oneofl detectable_shapes in
          let* sink = oneofl Sinks.primary in
          let* insecure = bool in
          let* seed = int_bound 10_000 in
          return (shape, sink, insecure, seed)))
    (fun (shape, sink, insecure, seed) ->
       let app =
         G.generate
           { G.default_config with
             G.seed;
             name = "com.prop." ^ Shape.to_string shape;
             filler_classes = 2;
             plants = [ { G.shape; sink; insecure } ] }
       in
       let r = analyze_app app in
       let planted = List.hd app.G.planted in
       let expect =
         planted.Appgen.Templates.insecure && planted.Appgen.Templates.reachable
       in
       count_insecure r = (if expect then 1 else 0))

let prop_cases = [ QCheck_alcotest.to_alcotest ground_truth_agreement ]


(* Shared-util groups: several sinks behind one hub; the search cache and the
   per-plant reports must both reflect the group. *)
let shared_cases =
  [ Alcotest.test_case "shared-util group detects each member" `Quick (fun () ->
        let app =
          G.generate
            { G.default_config with
              G.seed = 19;
              name = "com.test.shared";
              filler_classes = 3;
              plants =
                List.init 5 (fun _ ->
                    { G.shape = Shape.Shared_util; sink = Sinks.cipher;
                      insecure = true }) }
        in
        let r = analyze_app app in
        Alcotest.(check int) "five planted records" 5 (List.length app.G.planted);
        Alcotest.(check int) "five sink occurrences" 5 r.stats.Driver.sink_calls;
        Alcotest.(check int) "five insecure reports" 5 (count_insecure r);
        Alcotest.(check bool)
          (Printf.sprintf "search cache hits (rate %.2f)"
             r.stats.Driver.search_cache_rate)
          true
          (r.stats.Driver.search_cache_rate > 0.2));
    Alcotest.test_case "shared-util secure group stays clean" `Quick (fun () ->
        let app =
          G.generate
            { G.default_config with
              G.seed = 20;
              name = "com.test.sharedsec";
              filler_classes = 3;
              plants =
                List.init 3 (fun _ ->
                    { G.shape = Shape.Shared_util; sink = Sinks.ssl_factory;
                      insecure = false }) }
        in
        let r = analyze_app app in
        Alcotest.(check int) "no insecure reports" 0 (count_insecure r)) ]


(* Extensions: reflection resolution (Sec. VII) and the per-app SSG
   (Sec. V-A future work). *)
let extension_cases =
  [ Alcotest.test_case "reflective sink missed by default" `Quick (fun () ->
        let r = analyze_shape Shape.Reflective_sink Sinks.cipher true in
        Alcotest.(check int) "occurrence found (the call is in app code)" 1
          (List.length r.reports);
        Alcotest.(check int) "but not reachable without de-reflection" 0
          (List.length (reachable_reports r)));
    Alcotest.test_case "reflective sink found with resolve_reflection" `Quick
      (fun () ->
        let cfg =
          { Driver.default_config with Driver.resolve_reflection = true }
        in
        let r = analyze_shape ~cfg Shape.Reflective_sink Sinks.cipher true in
        Alcotest.(check int) "detected after de-reflection" 1 (count_insecure r));
    Alcotest.test_case "reflection transform counts rewrites" `Quick (fun () ->
        let app = make_app Shape.Reflective_sink Sinks.cipher true in
        let _, n = Backdroid.Reflection.transform app.G.program in
        Alcotest.(check int) "one reflective call rewritten" 1 n;
        let clean = make_app Shape.Direct Sinks.cipher true in
        let _, n0 = Backdroid.Reflection.transform clean.G.program in
        Alcotest.(check int) "no rewrites in reflection-free app" 0 n0);
    Alcotest.test_case "baseline misses the reflective sink" `Quick (fun () ->
        let app = make_app Shape.Reflective_sink Sinks.cipher true in
        let r =
          Baseline.Amandroid.analyze ~program:app.G.program
            ~manifest:app.G.manifest ()
        in
        Alcotest.(check int) "reflection invisible to whole-app CHA" 0
          (List.length
             (Baseline.Amandroid.insecure_findings r.Baseline.Amandroid.outcome)));
    Alcotest.test_case "per-app SSG merges and dedupes" `Quick (fun () ->
        let app =
          G.generate
            { G.default_config with
              G.seed = 23;
              name = "com.test.perapp";
              filler_classes = 3;
              plants =
                List.init 4 (fun _ ->
                    { G.shape = Shape.Shared_util; sink = Sinks.cipher;
                      insecure = true }) }
        in
        let r = analyze_app app in
        let per_app = Driver.per_app_ssg r in
        let sum_nodes =
          List.fold_left
            (fun acc (rep : Driver.sink_report) ->
               match rep.ssg with
               | Some ssg -> acc + Backdroid.Ssg.node_count ssg
               | None -> acc)
            0 r.reports
        in
        Alcotest.(check int) "four sinks folded" 4
          (List.length per_app.Backdroid.Perapp_ssg.sinks);
        Alcotest.(check int) "all reachable" 4
          per_app.Backdroid.Perapp_ssg.reachable_sinks;
        Alcotest.(check bool)
          (Printf.sprintf "deduped (%d < %d)"
             (Backdroid.Perapp_ssg.node_count per_app) sum_nodes)
          true
          (Backdroid.Perapp_ssg.node_count per_app < sum_nodes)) ]

let suites =
  base_suites
  @ [ "shapes.shared", shared_cases;
      "shapes.extensions", extension_cases;
      "shapes.props", prop_cases ]
