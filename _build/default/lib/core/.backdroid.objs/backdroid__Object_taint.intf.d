lib/core/object_taint.mli: Bytesearch Ir Loopdetect
