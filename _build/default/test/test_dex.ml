(* Tests for the dexdump substrate: descriptor translation and the
   disassembler's searchable output. *)

open Ir
module D = Dex.Descriptor

let qcheck = QCheck_alcotest.to_alcotest

let gen_nonvoid =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let base =
          oneofl
            [ Types.Boolean; Types.Byte; Types.Char; Types.Short; Types.Int;
              Types.Long; Types.Float; Types.Double;
              Types.Object "java.lang.String"; Types.Object "a.b.C$1" ]
        in
        if n <= 0 then base
        else frequency [ 3, base; 1, map (fun t -> Types.Array t) (self (n / 2)) ]))

let gen_meth =
  QCheck.Gen.(
    let* cls = oneofl [ "com.a.B"; "com.foo.Bar"; "x.Y$1" ] in
    let* name = oneofl [ "run"; "start"; "<init>"; "<clinit>" ] in
    let* params = list_size (int_bound 3) gen_nonvoid in
    let* ret = frequency [ 1, return Types.Void; 2, gen_nonvoid ] in
    return (Jsig.meth ~cls ~name ~params ~ret))

let meth_desc_roundtrip =
  QCheck.Test.make ~name:"meth_desc/meth_of_desc roundtrip" ~count:300
    (QCheck.make ~print:Jsig.meth_to_string gen_meth)
    (fun m -> Jsig.meth_equal (D.meth_of_desc (D.meth_desc m)) m)

let type_desc_roundtrip =
  QCheck.Test.make ~name:"type_desc/type_of_desc roundtrip" ~count:300
    (QCheck.make ~print:Types.to_string gen_nonvoid)
    (fun t -> Types.equal (D.type_of_desc (D.type_desc t)) t)

let test_class_desc () =
  Alcotest.(check string) "class desc" "Lcom/connectsdk/service/NetcastTVService$1;"
    (D.class_desc "com.connectsdk.service.NetcastTVService$1");
  Alcotest.(check string) "back" "com.a.B" (D.class_of_desc "Lcom/a/B;")

let test_fig3_signature () =
  (* the signature search string of the paper's Fig. 3 example *)
  let m =
    Jsig.meth ~cls:"com.connectsdk.service.netcast.NetcastHttpServer"
      ~name:"start" ~params:[] ~ret:Types.Void
  in
  Alcotest.(check string) "dexdump format"
    "Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"
    (D.meth_desc m)

let test_field_desc () =
  let f = Jsig.field ~cls:"com.studiosol.palcomp3.MP3LocalServer" ~name:"PORT" ~ty:Types.Int in
  Alcotest.(check string) "field desc"
    "Lcom/studiosol/palcomp3/MP3LocalServer;.PORT:I" (D.field_desc f);
  Alcotest.(check bool) "roundtrip" true (Jsig.field_equal (D.field_of_desc (D.field_desc f)) f)

(* --- disassembler --- *)

let tiny_program () =
  let cls = "t.Main" in
  let callee = Jsig.meth ~cls:"t.Helper" ~name:"help" ~params:[ Types.string_ ] ~ret:Types.Void in
  let main =
    Jclass.make cls
      ~methods:
        [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls ~name:"m"
            ~params:[] ~ret:Types.Void (fun mb ->
              let s = Ir.Builder.const_str mb "hello" in
              Ir.Builder.call_static mb ~callee ~args:[ Ir.Value.Local s ]) ]
  in
  let helper =
    Jclass.make "t.Helper"
      ~methods:
        [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls:"t.Helper"
            ~name:"help" ~params:[ Types.string_ ] ~ret:Types.Void (fun _ -> ()) ]
  in
  Ir.Program.of_classes [ main; helper ]

let test_disasm_invoke_line () =
  let dex = Dex.Dexfile.of_program (tiny_program ()) in
  let text = Dex.Dexfile.to_string dex in
  let contains ~sub s =
    let ls = String.length s and lb = String.length sub in
    let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "invoke-static line present" true
    (contains ~sub:"invoke-static {v0}, Lt/Helper;.help:(Ljava/lang/String;)V" text);
  Alcotest.(check bool) "const-string present" true
    (contains ~sub:"const-string v0, \"hello\"" text)

let test_line_ownership () =
  let dex = Dex.Dexfile.of_program (tiny_program ()) in
  let owned =
    Array.to_list dex.Dex.Dexfile.lines
    |> List.filter_map (fun (l : Dex.Disasm.line) -> l.owner)
  in
  Alcotest.(check bool) "instruction lines carry owners" true
    (List.exists (fun m -> String.equal m.Jsig.name "m") owned)

let test_multidex_merge () =
  let p = tiny_program () in
  let merged = Dex.Dexfile.of_partitions p [ [ "t.Main" ]; [ "t.Helper" ] ] in
  let whole = Dex.Dexfile.of_program p in
  Alcotest.(check int) "same line count after merge"
    (Dex.Dexfile.line_count whole) (Dex.Dexfile.line_count merged)

let test_system_classes_not_disassembled () =
  let p =
    Ir.Program.of_classes (Framework.Stubs.classes () @ [ Jclass.make "app.A" ])
  in
  let dex = Dex.Dexfile.of_program p in
  let text = Dex.Dexfile.to_string dex in
  let contains ~sub s =
    let ls = String.length s and lb = String.length sub in
    let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "framework class bodies not in app dex" false
    (contains ~sub:"Class descriptor : 'Ljava/lang/Thread;'" text)

let unit_cases =
  [ Alcotest.test_case "class descriptors" `Quick test_class_desc;
    Alcotest.test_case "fig3 search signature" `Quick test_fig3_signature;
    Alcotest.test_case "field descriptors" `Quick test_field_desc;
    Alcotest.test_case "disasm invoke line" `Quick test_disasm_invoke_line;
    Alcotest.test_case "line ownership" `Quick test_line_ownership;
    Alcotest.test_case "multidex merge" `Quick test_multidex_merge;
    Alcotest.test_case "system classes excluded" `Quick
      test_system_classes_not_disassembled ]

let prop_cases = List.map qcheck [ meth_desc_roundtrip; type_desc_roundtrip ]


(* --- plaintext parser (round-trip with the disassembler) --- *)

let test_parse_roundtrip_structure () =
  let app =
    Appgen.Generator.generate
      { Appgen.Generator.default_config with
        Appgen.Generator.seed = 41;
        name = "com.dex.parse";
        filler_classes = 4;
        plants =
          [ { Appgen.Generator.shape = Appgen.Shape.Direct;
              sink = Framework.Sinks.cipher; insecure = true } ] }
  in
  let text = Dex.Dexfile.to_string app.Appgen.Generator.dex in
  let parsed = Dex.Parse.parse_text text in
  Alcotest.(check int) "same class count"
    (Ir.Program.class_count app.Appgen.Generator.program)
    (List.length parsed.Dex.Parse.classes);
  Alcotest.(check int) "same method count"
    (Ir.Program.method_count app.Appgen.Generator.program)
    (List.length parsed.Dex.Parse.methods)

let test_parse_invocations_match_ir () =
  let app =
    Appgen.Generator.generate
      { Appgen.Generator.default_config with
        Appgen.Generator.seed = 42;
        name = "com.dex.parse2";
        filler_classes = 3 }
  in
  let text = Dex.Dexfile.to_string app.Appgen.Generator.dex in
  let parsed = Dex.Parse.parse_text text in
  let parsed_calls = Dex.Parse.invocations parsed in
  (* every IR call site appears as a parsed invocation with the same callee *)
  let ir_calls =
    Ir.Program.fold_classes app.Appgen.Generator.program
      (fun c acc ->
         if c.Ir.Jclass.is_system then acc
         else
           acc
           + List.fold_left
               (fun a m -> a + List.length (Ir.Jmethod.call_sites m))
               0 c.Ir.Jclass.methods)
      0
  in
  Alcotest.(check int) "same invocation count" ir_calls
    (List.length parsed_calls);
  Alcotest.(check bool) "all callers are program methods" true
    (List.for_all
       (fun (caller, _, _) ->
          Option.is_some (Ir.Program.find_method app.Appgen.Generator.program caller))
       parsed_calls)

let test_parse_line_kinds () =
  (match Dex.Parse.parse_line "Class descriptor : 'Lcom/a/B;'" with
   | Dex.Parse.Class_header c -> Alcotest.(check string) "class" "com.a.B" c
   | _ -> Alcotest.fail "expected class header");
  (match Dex.Parse.parse_line "    0004: invoke-static {v0, v1}, Lcom/a/B;.f:(I)V" with
   | Dex.Parse.Instruction i ->
     Alcotest.(check int) "addr" 4 i.Dex.Parse.addr;
     Alcotest.(check string) "opcode" "invoke-static" i.Dex.Parse.opcode;
     Alcotest.(check (list string)) "regs" [ "v0"; "v1" ] i.Dex.Parse.registers;
     (match i.Dex.Parse.operand with
      | Some (Dex.Parse.Meth_ref m) ->
        Alcotest.(check string) "callee" "f" m.Ir.Jsig.name
      | _ -> Alcotest.fail "expected method operand")
   | _ -> Alcotest.fail "expected instruction");
  (match Dex.Parse.parse_line "    0002: const-string v1, \"AES/ECB\"" with
   | Dex.Parse.Instruction { operand = Some (Dex.Parse.String_lit s); _ } ->
     Alcotest.(check string) "string" "AES/ECB" s
   | _ -> Alcotest.fail "expected const-string");
  (match Dex.Parse.parse_line "    0003: sget-object v0, Lcom/a/B;.F:I" with
   | Dex.Parse.Instruction { operand = Some (Dex.Parse.Field_ref f); _ } ->
     Alcotest.(check string) "field" "F" f.Ir.Jsig.fname
   | _ -> Alcotest.fail "expected field operand");
  match Dex.Parse.parse_line "garbage that is not dexdump" with
  | exception Dex.Parse.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* property: every generated app's plaintext parses without error *)
let parse_total =
  QCheck.Test.make ~name:"generated plaintext always parses" ~count:25
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
       let app =
         Appgen.Generator.generate
           { Appgen.Generator.default_config with
             Appgen.Generator.seed;
             name = "com.dex.prop";
             filler_classes = 2;
             plants =
               [ { Appgen.Generator.shape = Appgen.Shape.Callback;
                   sink = Framework.Sinks.ssl_factory; insecure = true } ] }
       in
       let parsed =
         Dex.Parse.parse_text (Dex.Dexfile.to_string app.Appgen.Generator.dex)
       in
       Array.length parsed.Dex.Parse.lines > 0)

let parser_cases =
  [ Alcotest.test_case "roundtrip structure" `Quick test_parse_roundtrip_structure;
    Alcotest.test_case "invocations match IR" `Quick test_parse_invocations_match_ir;
    Alcotest.test_case "line kinds" `Quick test_parse_line_kinds ]

let parser_props = [ QCheck_alcotest.to_alcotest parse_total ]

let suites =
  [ "dex.unit", unit_cases; "dex.props", prop_cases;
    "dex.parser", parser_cases; "dex.parser-props", parser_props ]
