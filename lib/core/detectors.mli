(** Security verdicts over the propagated sink-parameter facts: the
    interpreter for the declarative rule predicates ({!Rules.Rule.pred}).
    The built-in rule set reproduces the paper's crypto (ECB) and SSL
    (hostname verification) detectors exactly. *)

module Sinks = Framework.Sinks
type verdict = Insecure | Secure | Unresolved
val verdict_to_string : verdict -> string

(** Does the class's [verify] method constantly accept (return 1)?  Used for
    app-defined [javax.net.ssl.HostnameVerifier] implementations. *)
val verifier_accepts_all : Ir.Program.t -> string -> bool option

(** Evaluate a rule predicate against one resolved fact. *)
val eval_pred : Ir.Program.t -> Facts.t -> Rules.Rule.pred -> bool

(** Verdict of one rule over one resolved fact: [insecure_when] first, then
    [secure_when], else [Unresolved]. *)
val classify_rule : Ir.Program.t -> Rules.Rule.t -> Facts.t -> verdict

(** Verdict of the built-in rule covering [sink] (compatibility shim for
    sink-centric callers, e.g. the baselines). *)
val classify : Ir.Program.t -> Sinks.t -> Facts.t -> verdict

val classify_ssl : Ir.Program.t -> Facts.t -> verdict
