examples/open_ports.ml: Appgen Backdroid Framework Ir List Printf
