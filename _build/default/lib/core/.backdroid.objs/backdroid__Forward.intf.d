lib/core/forward.mli: Facts Ir Ssg
