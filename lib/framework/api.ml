(** Well-known Android / Java framework API signatures.

    These are the signatures both the app generator and the analyses refer
    to; the corresponding stub classes live in {!module:Stubs}. *)

open Ir

let obj = Types.object_
let str = Types.string_
let intent_t = Types.intent
let runnable_t = Types.runnable
let bundle_t = Types.Object "android.os.Bundle"
let view_t = Types.Object "android.view.View"
let context_t = Types.Object "android.content.Context"
let cipher_t = Types.Object "javax.crypto.Cipher"
let x509_verifier_t = Types.Object "org.apache.http.conn.ssl.X509HostnameVerifier"
let hostname_verifier_t = Types.Object "javax.net.ssl.HostnameVerifier"
let ssl_socket_factory_t = Types.Object "org.apache.http.conn.ssl.SSLSocketFactory"
let async_task_t = Types.Object "android.os.AsyncTask"
let executor_t = Types.Object "java.util.concurrent.Executor"
let thread_t = Types.Object "java.lang.Thread"
let on_click_listener_t = Types.Object "android.view.View$OnClickListener"
let sms_manager_t = Types.Object "android.telephony.SmsManager"
let pending_intent_t = Types.Object "android.app.PendingIntent"
let ibinder_t = Types.Object "android.os.IBinder"
let string_builder_t = Types.Object "java.lang.StringBuilder"
let webview_t = Types.Object "android.webkit.WebView"
let sqlite_db_t = Types.Object "android.database.sqlite.SQLiteDatabase"
let cursor_t = Types.Object "android.database.Cursor"

let m = Jsig.meth

(* --- object / threading --- *)
let object_init = m ~cls:"java.lang.Object" ~name:"<init>" ~params:[] ~ret:Types.Void
let runnable_run = m ~cls:"java.lang.Runnable" ~name:"run" ~params:[] ~ret:Types.Void
let thread_init_runnable =
  m ~cls:"java.lang.Thread" ~name:"<init>" ~params:[ runnable_t ] ~ret:Types.Void
let thread_start = m ~cls:"java.lang.Thread" ~name:"start" ~params:[] ~ret:Types.Void
let thread_run = m ~cls:"java.lang.Thread" ~name:"run" ~params:[] ~ret:Types.Void
let executor_execute =
  m ~cls:"java.util.concurrent.Executor" ~name:"execute" ~params:[ runnable_t ]
    ~ret:Types.Void
let executors_new_single =
  m ~cls:"java.util.concurrent.Executors" ~name:"newSingleThreadExecutor"
    ~params:[] ~ret:executor_t
let async_task_execute =
  m ~cls:"android.os.AsyncTask" ~name:"execute"
    ~params:[ Types.Array obj ] ~ret:async_task_t
let async_task_do_in_background =
  m ~cls:"android.os.AsyncTask" ~name:"doInBackground"
    ~params:[ Types.Array obj ] ~ret:obj

(* --- components / ICC --- *)
let activity_on_create =
  m ~cls:"android.app.Activity" ~name:"onCreate" ~params:[ bundle_t ] ~ret:Types.Void
let activity_get_intent =
  m ~cls:"android.app.Activity" ~name:"getIntent" ~params:[] ~ret:intent_t
let context_start_service =
  m ~cls:"android.content.Context" ~name:"startService" ~params:[ intent_t ]
    ~ret:Types.Void
let context_start_activity =
  m ~cls:"android.content.Context" ~name:"startActivity" ~params:[ intent_t ]
    ~ret:Types.Void
let context_send_broadcast =
  m ~cls:"android.content.Context" ~name:"sendBroadcast" ~params:[ intent_t ]
    ~ret:Types.Void
let intent_init_empty =
  m ~cls:"android.content.Intent" ~name:"<init>" ~params:[] ~ret:Types.Void
let intent_init_explicit =
  m ~cls:"android.content.Intent" ~name:"<init>"
    ~params:[ context_t; Types.Object "java.lang.Class" ] ~ret:Types.Void
let intent_set_action =
  m ~cls:"android.content.Intent" ~name:"setAction" ~params:[ str ] ~ret:intent_t
let intent_put_extra =
  m ~cls:"android.content.Intent" ~name:"putExtra" ~params:[ str; str ]
    ~ret:intent_t
let intent_get_string_extra =
  m ~cls:"android.content.Intent" ~name:"getStringExtra" ~params:[ str ] ~ret:str

(* --- callbacks --- *)
let view_set_on_click_listener =
  m ~cls:"android.view.View" ~name:"setOnClickListener"
    ~params:[ on_click_listener_t ] ~ret:Types.Void
let on_click =
  m ~cls:"android.view.View$OnClickListener" ~name:"onClick" ~params:[ view_t ]
    ~ret:Types.Void

(* --- sinks --- *)
let cipher_get_instance =
  m ~cls:"javax.crypto.Cipher" ~name:"getInstance" ~params:[ str ] ~ret:cipher_t
let ssl_set_hostname_verifier =
  m ~cls:"org.apache.http.conn.ssl.SSLSocketFactory" ~name:"setHostnameVerifier"
    ~params:[ x509_verifier_t ] ~ret:Types.Void
let https_set_hostname_verifier =
  m ~cls:"javax.net.ssl.HttpsURLConnection" ~name:"setHostnameVerifier"
    ~params:[ hostname_verifier_t ] ~ret:Types.Void
let sms_send_text_message =
  m ~cls:"android.telephony.SmsManager" ~name:"sendTextMessage"
    ~params:[ str; str; str; pending_intent_t; pending_intent_t ] ~ret:Types.Void
let sms_get_default =
  m ~cls:"android.telephony.SmsManager" ~name:"getDefault" ~params:[]
    ~ret:sms_manager_t
let server_socket_init =
  m ~cls:"java.net.ServerSocket" ~name:"<init>" ~params:[ Types.Int ]
    ~ret:Types.Void
let local_server_socket_init =
  m ~cls:"android.net.LocalServerSocket" ~name:"<init>" ~params:[ str ]
    ~ret:Types.Void
let webview_init =
  m ~cls:"android.webkit.WebView" ~name:"<init>" ~params:[] ~ret:Types.Void
let webview_set_javascript_enabled =
  m ~cls:"android.webkit.WebView" ~name:"setJavaScriptEnabled"
    ~params:[ Types.Boolean ] ~ret:Types.Void
let webview_add_javascript_interface =
  m ~cls:"android.webkit.WebView" ~name:"addJavascriptInterface"
    ~params:[ obj; str ] ~ret:Types.Void
let sqlite_db_init =
  m ~cls:"android.database.sqlite.SQLiteDatabase" ~name:"<init>" ~params:[]
    ~ret:Types.Void
let sqlite_raw_query =
  m ~cls:"android.database.sqlite.SQLiteDatabase" ~name:"rawQuery"
    ~params:[ str; Types.Array str ] ~ret:cursor_t

(* --- misc helpers --- *)
let string_builder_init =
  m ~cls:"java.lang.StringBuilder" ~name:"<init>" ~params:[] ~ret:Types.Void
let string_builder_append =
  m ~cls:"java.lang.StringBuilder" ~name:"append" ~params:[ str ]
    ~ret:string_builder_t
let string_builder_to_string =
  m ~cls:"java.lang.StringBuilder" ~name:"toString" ~params:[] ~ret:str
let string_value_of_int =
  m ~cls:"java.lang.String" ~name:"valueOf" ~params:[ Types.Int ] ~ret:str

(* --- reflection --- *)
let class_for_name =
  m ~cls:"java.lang.Class" ~name:"forName" ~params:[ str ]
    ~ret:(Types.Object "java.lang.Class")
let class_get_method =
  m ~cls:"java.lang.Class" ~name:"getMethod" ~params:[ str ]
    ~ret:(Types.Object "java.lang.reflect.Method")
let method_invoke =
  m ~cls:"java.lang.reflect.Method" ~name:"invoke"
    ~params:[ obj; Types.Array obj ] ~ret:obj

(* --- well-known fields --- *)
let allow_all_hostname_verifier =
  Jsig.field ~cls:"org.apache.http.conn.ssl.SSLSocketFactory"
    ~name:"ALLOW_ALL_HOSTNAME_VERIFIER" ~ty:x509_verifier_t
