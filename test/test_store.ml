(* Tests for the persistent preprocessing snapshot (lib/store): corrupted
   files must come back as typed errors (never a crash or a wrong engine),
   save -> load -> save must be byte-identical, and an analysis run on a
   loaded engine must produce the same report as a cold one. *)

module G = Appgen.Generator
module E = Bytesearch.Engine
module Driver = Backdroid.Driver

let fixture_app ?(seed = 41) ?(filler = 8) () =
  let rng = Appgen.Rng.create (seed * 131) in
  let plants =
    List.init 4 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.5)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.test.store%d" seed;
      filler_classes = filler;
      plants }

let with_snapshot f =
  let app = fixture_app () in
  let path = Filename.temp_file "backdroid_store" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let engine = E.create ~eager:true app.G.dex in
  let bytes = Store.Snapshot.save ~path engine in
  Alcotest.(check bool) "snapshot is non-trivial" true (bytes > 1024);
  f ~app ~path

let read_all path =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      In_channel.input_all ic)

let write_all path s =
  let oc = Out_channel.open_bin path in
  Fun.protect ~finally:(fun () -> Out_channel.close oc) (fun () ->
      Out_channel.output_string oc s)

(* Patch a copy of the file and re-seal the checksum, so structural checks
   are exercised rather than masked by [Bad_checksum]. *)
let reseal b =
  let total = Bytes.length b in
  Bytes.set_int64_le b Store.Codec.checksum_offset
    (Store.Codec.fnv1a64 ~pos:Store.Codec.header_len
       ~len:(total - Store.Codec.header_len) b);
  b

let error_t =
  Alcotest.testable
    (fun fmt e ->
       Format.pp_print_string fmt (Store.Codec.error_to_string e))
    (fun a b ->
       match (a, b) with
       | Store.Codec.Corrupt _, Store.Codec.Corrupt _ -> true
       | a, b -> a = b)

let check_load_error ~app ~path name expect =
  match Store.Snapshot.load ~path ~program:app.G.program with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" name
  | Error e -> Alcotest.check error_t name expect e

let test_rejects_corruption () =
  with_snapshot @@ fun ~app ~path ->
  let original = read_all path in
  let mutate f =
    let b = Bytes.of_string original in
    f b;
    write_all path (Bytes.to_string b)
  in
  (* a short header *)
  write_all path (String.sub original 0 10);
  check_load_error ~app ~path "10-byte file" Store.Codec.Truncated;
  (* cut mid-payload: the recorded length no longer matches *)
  write_all path (String.sub original 0 (String.length original / 2));
  check_load_error ~app ~path "half a file" Store.Codec.Truncated;
  (* wrong magic *)
  mutate (fun b -> Bytes.set b 0 'X');
  check_load_error ~app ~path "bad magic" Store.Codec.Bad_magic;
  (* future format version, checksum resealed so only the version differs *)
  mutate (fun b ->
      Bytes.set_int32_le b 8 99l;
      ignore (reseal b));
  check_load_error ~app ~path "future version" (Store.Codec.Bad_version 99);
  (* one flipped payload byte fails the checksum *)
  mutate (fun b ->
      let i = String.length original - 5 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40)));
  check_load_error ~app ~path "flipped payload byte" Store.Codec.Bad_checksum;
  (* a flipped byte inside the stored checksum itself *)
  mutate (fun b ->
      let i = Store.Codec.checksum_offset + 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01)));
  check_load_error ~app ~path "flipped checksum byte" Store.Codec.Bad_checksum;
  (* grow a count in the meta section: every downstream length check must
     fire as Corrupt, not a crash.  The meta section is written first, so
     directory entry 0 points at it; its payload is four 8-byte counts. *)
  let meta_off =
    let b = Bytes.of_string original in
    let id = Int64.to_int (Bytes.get_int64_le b Store.Codec.header_len) in
    Alcotest.(check int) "directory entry 0 is the meta section" 1 id;
    Int64.to_int (Bytes.get_int64_le b (Store.Codec.header_len + 8))
  in
  List.iteri
    (fun field name ->
       mutate (fun b ->
           let o = meta_off + (8 * field) in
           Bytes.set_int64_le b o
             (Int64.add (Bytes.get_int64_le b o) 7L);
           ignore (reseal b));
       check_load_error ~app ~path
         (Printf.sprintf "inflated %s count" name)
         (Store.Codec.Corrupt ""))
    [ "line"; "slot"; "owner"; "symbol" ];
  (* restore and prove the fixture itself still loads *)
  write_all path original;
  match Store.Snapshot.load ~path ~program:app.G.program with
  | Ok e ->
    Alcotest.(check string) "restored file loads" "snapshot" (E.index_mode e)
  | Error e ->
    Alcotest.failf "restored file: %s" (Store.Codec.error_to_string e)

let test_roundtrip_identical () =
  with_snapshot @@ fun ~app ~path ->
  let engine =
    match Store.Snapshot.load ~path ~program:app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let path2 = Filename.temp_file "backdroid_store2" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:path2 engine);
  Alcotest.(check bool) "save -> load -> save is byte-identical" true
    (read_all path = read_all path2)

let report_fingerprint (r : Driver.sink_report) =
  Printf.sprintf "%s@%s:%d reachable=%b fact=%s verdict=%s"
    (Framework.Sinks.kind_to_string r.sink.Framework.Sinks.kind)
    (Ir.Jsig.meth_to_string r.meth)
    r.site r.reachable
    (Backdroid.Facts.to_string r.fact)
    (Backdroid.Detectors.verdict_to_string r.verdict)

let test_warm_analyze_equals_cold () =
  with_snapshot @@ fun ~app ~path ->
  let cold = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
  let engine =
    match Store.Snapshot.load ~path ~program:app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let warm = Driver.analyze ~engine ~dex:app.G.dex ~manifest:app.G.manifest () in
  Alcotest.(check bool) "fixture has sink calls" true
    (cold.Driver.stats.Driver.sink_calls > 0);
  Alcotest.(check (list string)) "warm report == cold report"
    (List.map report_fingerprint cold.Driver.reports)
    (List.map report_fingerprint warm.Driver.reports)

let test_default_path () =
  let p = Store.Snapshot.default_path ~dir:"/tmp" ~app_id:"com.a/b c" in
  Alcotest.(check string) "sanitized and versioned"
    (Printf.sprintf "/tmp/com.a_b_c.v%d.bdix" Store.Codec.format_version)
    p

let cases =
  [ Alcotest.test_case "corrupted snapshots fail as typed errors" `Quick
      test_rejects_corruption;
    Alcotest.test_case "save -> load -> save is byte-identical" `Quick
      test_roundtrip_identical;
    Alcotest.test_case "warm analyze == cold analyze" `Quick
      test_warm_analyze_equals_cold;
    Alcotest.test_case "default snapshot path" `Quick test_default_path ]

let suites = [ "store.snapshot", cases ]
