lib/baseline/cha.ml: Expr Ir Jclass Jmethod Jsig List Program
