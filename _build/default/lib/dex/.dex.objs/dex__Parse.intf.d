lib/dex/parse.mli: Ir
