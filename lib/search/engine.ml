(** The bytecode search engine: executes typed queries over the dexdump
    plaintext, returning hits mapped back to their enclosing methods, with
    query-level caching.

    Indexed mode answers queries from per-category postings: for each of the
    seven searchable categories, a packed CSR triple — ascending operand
    symbol ids, offsets, and slot runs into the dexfile's hit {!Dex.Arena},
    all off-heap {!Ivec.t}s.  Postings are built from the interned operand
    keys the disassembler attached to each line — no text re-parsing — and
    hit records are materialised only for slots a query actually returns.
    The packed layout is deterministic (keys sorted by symbol id, slots in
    arena order), so a sharded build, a sequential build and a snapshot load
    produce byte-identical tables; {!export_packed}/{!create_packed} are the
    snapshot subsystem's serialization boundary.

    By default each category's postings build lazily on the first query of
    that category (double-checked under a build mutex), so an analysis that
    never issues, say, a [Const_class] query never pays for that table.
    Eager mode ([eager:true], kept for ablation and for front-loading the
    cost) builds all seven at construction time, sharded over a
    {!Parallel.Pool.t} when one is given.

    Lazy builds are deliberately sequential even when the engine holds a
    pool: a lazy build can trigger inside a pool task (the per-sink fan-out)
    while the cache and build mutexes are held, and sharding the build over
    the same pool would let the builder's help-drain pop a foreign task that
    re-enters those mutexes on the builder's own thread.  Eager create-time
    builds shard safely — no task that could touch this engine's locks
    exists before [create] returns.  The arena makes the sequential build a
    single pass over unboxed int vectors, so laziness, not sharding, is
    where the time goes. *)

type hit = {
  line_no : int;
  text : string;
  owner : Ir.Jsig.meth;     (** enclosing method of the matching line *)
  owner_cls : string;
  stmt_idx : int option;
}

(* Engine category indices.  0-3 coincide with the arena's category codes;
   field_ops is the union of instance and static field accesses (an
   [Field_access] query must see sget/sput lines too). *)
let cat_invocations = 0
let cat_new_instances = 1
let cat_const_classes = 2
let cat_const_strings = 3
let cat_field_ops = 4
let cat_static_field_ops = 5
let cat_class_tokens = 6
let n_categories = 7

let category_name = function
  | 0 -> "invocations"
  | 1 -> "new_instances"
  | 2 -> "const_classes"
  | 3 -> "const_strings"
  | 4 -> "field_ops"
  | 5 -> "static_field_ops"
  | 6 -> "class_tokens"
  | _ -> invalid_arg "Engine.category_name"

module Packed = struct
  (** One category's postings in CSR form: [keys] is the strictly ascending
      operand symbol ids; key [k]'s slots are strictly ascending arena
      slots.  Two bodies share the shape:

      - [Flat slots]: [offsets] are slot indices and key [k]'s run is
        [slots.(offsets.(k) .. offsets.(k+1)-1)] — what in-process builds
        produce and what v1 snapshots map.
      - [Coded data]: [offsets] are byte offsets into [data], each run
        compressed by {!Postcodec} (varint deltas for sparse keys, bitmap
        words for dense ones) and decoded on demand by {!iter_key} — what
        v2 snapshots map, several times smaller on disk and walked
        sequentially instead of 8 bytes per slot.

      All vectors live off the OCaml heap; a snapshot load aliases them to
      mmapped file sections. *)
  type body = Flat of Ivec.t | Coded of Bvec.t

  type t = { keys : Ivec.t; offsets : Ivec.t; body : body }

  let n_keys t = Ivec.length t.keys

  (** Slot count of key index [k] — O(1) for both bodies (the coded run
      leads with its count), which is what lets the query planner order
      lookups rarest-first without decoding anything. *)
  let count t k =
    match t.body with
    | Flat _ -> Ivec.get t.offsets (k + 1) - Ivec.get t.offsets k
    | Coded b -> Postcodec.count b ~pos:(Ivec.get t.offsets k)

  (** Apply [f] to each slot of key index [k], ascending. *)
  let iter_key t k f =
    match t.body with
    | Flat slots ->
      let hi = Ivec.get t.offsets (k + 1) in
      for i = Ivec.get t.offsets k to hi - 1 do
        f (Ivec.unsafe_get slots i)
      done
    | Coded b -> Postcodec.iter b ~pos:(Ivec.get t.offsets k) f

  let n_slots t =
    match t.body with
    | Flat slots -> Ivec.length slots
    | Coded _ ->
      let total = ref 0 in
      for k = 0 to n_keys t - 1 do
        total := !total + count t k
      done;
      !total

  (** In-memory footprint in bytes (mapped or heap-side). *)
  let bytes t =
    ((Ivec.length t.keys + Ivec.length t.offsets) * 8)
    + (match t.body with
       | Flat slots -> Ivec.length slots * 8
       | Coded b -> Bvec.length b)

  (** Decode to a [Flat] body (identity when already flat) — the symbol-id
      remap path and v1 saves need random-access slot vectors. *)
  let to_flat t =
    match t.body with
    | Flat _ -> t
    | Coded _ ->
      let nk = n_keys t in
      let offsets = Ivec.create (nk + 1) in
      Ivec.set offsets 0 0;
      let total = ref 0 in
      for k = 0 to nk - 1 do
        total := !total + count t k;
        Ivec.set offsets (k + 1) !total
      done;
      let slots = Ivec.create !total in
      let pos = ref 0 in
      for k = 0 to nk - 1 do
        iter_key t k (fun slot ->
            Ivec.set slots !pos slot;
            incr pos)
      done;
      { keys = t.keys; offsets; body = Flat slots }
end

type postings = Packed.t

type t = {
  dex : Dex.Dexfile.t;
  cache : hit Cache.t;
  pool : Parallel.Pool.t option;  (** used only by eager create-time builds *)
  indexed : bool;
  eager : bool;
  load_mode : string option;
      (** postings installed wholesale (a snapshot load or delta patch):
          the label {!index_mode} reports; [None] = built in-process *)
  tables : postings option Atomic.t array;  (** one slot per category *)
  build_us : float array;  (** per-category build cost, set under the lock *)
  build_lock : Mutex.t;
  ruleset : int option Atomic.t;
      (** content hash of the rule set this engine last searched under *)
}

(* ------------------------------------------------------------------ *)
(* Postings construction                                               *)

(* A deterministic two-pass counting sort over arena slots.  Round 1 counts
   postings per operand sym id (per shard when pooled); the sequential merge
   lays out the CSR keys/offsets and per-shard write cursors; round 2
   writes each shard's slots into its disjoint region.  Slots ascend within
   a shard and shard regions follow slice order, so every key's run is
   strictly ascending, and the packed bytes — keys ascending by sym id,
   slots in arena order — are identical for sequential, sharded and
   snapshot-loaded builds.  No per-posting allocation: the old bucket lists
   (a cons per posting plus a hashtable probe per slot) made invocations,
   the densest category, several times slower than the sparse ones. *)

(* Growable dense counter indexed by sym id; [maxk] bounds the occupied
   prefix the merge walks.  Growth matters only for class tokens, which can
   meet token symbols beyond the arena's operand ids. *)
type counts = { mutable c : int array; mutable maxk : int }

let counts_create () =
  { c = Array.make (max 64 (Sym.interned ())) 0; maxk = -1 }

let counts_bump cnt k =
  if k >= Array.length cnt.c then begin
    let nb = Array.make (max (k + 1) (2 * Array.length cnt.c)) 0 in
    Array.blit cnt.c 0 nb 0 (Array.length cnt.c);
    cnt.c <- nb
  end;
  if k > cnt.maxk then cnt.maxk <- k;
  Array.unsafe_set cnt.c k (Array.unsafe_get cnt.c k + 1)

let cat_member c =
  if c = cat_field_ops then fun k ->
    k = Dex.Arena.cat_field || k = Dex.Arena.cat_static_field
  else if c = cat_static_field_ops then fun k -> k = Dex.Arena.cat_static_field
  else fun k -> k = c

(* The class-tokens passes read each line's render-time token array; lines
   without one (snapshot-loaded dexfiles) re-tokenize their text on first
   touch, cached per slot so round 2 reuses round 1's work. *)
let slot_tokens (dex : Dex.Dexfile.t) slot fallback =
  let li = Ivec.unsafe_get dex.arena.Dex.Arena.line_idx slot in
  match dex.lines.(li).Dex.Disasm.tokens with
  | Some toks -> toks
  | None ->
    (match Hashtbl.find_opt fallback slot with
     | Some toks -> toks
     | None ->
       let toks = Dex.Tokens.of_string (Dex.Dexfile.line_text dex li) in
       Hashtbl.add fallback slot toks;
       toks)

let shard_count (dex : Dex.Dexfile.t) c ~lo ~hi =
  let a : Dex.Arena.t = dex.arena in
  let cnt = counts_create () in
  let fallback : (int, Sym.t array) Hashtbl.t = Hashtbl.create 8 in
  if c = cat_class_tokens then
    for slot = lo to hi - 1 do
      Array.iter
        (fun tok -> counts_bump cnt (Sym.id tok))
        (slot_tokens dex slot fallback)
    done
  else begin
    let member = cat_member c in
    for slot = lo to hi - 1 do
      if member (Ivec.unsafe_get a.cat slot) then
        counts_bump cnt (Ivec.unsafe_get a.sym slot)
    done
  end;
  (cnt, fallback)

(* [cursor.(k)] is this shard's next write position for key [k] (absolute
   into [slots]); fills advance it monotonically. *)
let shard_fill (dex : Dex.Dexfile.t) c ~lo ~hi ~cursor ~slots fallback =
  let a : Dex.Arena.t = dex.arena in
  let put k slot =
    let p = Array.unsafe_get cursor k in
    Ivec.set slots p slot;
    Array.unsafe_set cursor k (p + 1)
  in
  if c = cat_class_tokens then
    for slot = lo to hi - 1 do
      Array.iter
        (fun tok -> put (Sym.id tok) slot)
        (slot_tokens dex slot fallback)
    done
  else begin
    let member = cat_member c in
    for slot = lo to hi - 1 do
      if member (Ivec.unsafe_get a.cat slot) then
        put (Ivec.unsafe_get a.sym slot) slot
    done
  end

(* Shards below this size are not worth the merge traffic. *)
let min_shard_slots = 2048

let build_postings ?pool dex c =
  let n = Dex.Arena.length dex.Dex.Dexfile.arena in
  let chunks =
    match pool with
    | Some pool
      when Parallel.Pool.is_active pool
           && Parallel.Pool.jobs pool > 1
           && n >= 2 * min_shard_slots ->
      min (Parallel.Pool.jobs pool) (max 1 (n / min_shard_slots))
    | Some _ | None -> 1
  in
  let ranges =
    Array.init chunks (fun i ->
        (i * n / chunks, (i + 1) * n / chunks))
  in
  let map f args =
    match pool with
    | Some pool when chunks > 1 -> Parallel.Pool.parallel_map pool f args
    | Some _ | None -> Array.map f args
  in
  (* round 1: per-shard counts *)
  let counted =
    map (fun (lo, hi) -> shard_count dex c ~lo ~hi) ranges
  in
  let maxk = Array.fold_left (fun m (cnt, _) -> max m cnt.maxk) (-1) counted in
  let total = Array.make (maxk + 1) 0 in
  Array.iter
    (fun (cnt, _) ->
       for k = 0 to cnt.maxk do
         total.(k) <- total.(k) + Array.unsafe_get cnt.c k
       done)
    counted;
  (* CSR layout: keys ascending by sym id, offsets from the running total *)
  let nk = ref 0 in
  for k = 0 to maxk do
    if total.(k) > 0 then incr nk
  done;
  let keys_v = Ivec.create !nk in
  let offsets = Ivec.create (!nk + 1) in
  Ivec.set offsets 0 0;
  (* [running.(k)]: absolute write position of key [k]'s next unwritten
     slot; starts at the key's offset, advanced per shard below *)
  let running = Array.make (maxk + 1) 0 in
  let ki = ref 0 and pos = ref 0 in
  for k = 0 to maxk do
    if total.(k) > 0 then begin
      Ivec.set keys_v !ki k;
      running.(k) <- !pos;
      pos := !pos + total.(k);
      Ivec.set offsets (!ki + 1) !pos;
      incr ki
    end
  done;
  let slots = Ivec.create !pos in
  (* round 2: each shard writes its disjoint region per key *)
  let fills =
    Array.mapi
      (fun i (lo, hi) ->
         let cnt, fallback = counted.(i) in
         let cursor = Array.copy running in
         for k = 0 to cnt.maxk do
           running.(k) <- running.(k) + Array.unsafe_get cnt.c k
         done;
         (lo, hi, cursor, fallback))
      ranges
  in
  ignore
    (map
       (fun (lo, hi, cursor, fallback) ->
          shard_fill dex c ~lo ~hi ~cursor ~slots fallback)
       fills);
  { Packed.keys = keys_v; offsets; body = Packed.Flat slots }

let m_builds = Obs.Metrics.counter "search.postings.builds"
let m_slots = Obs.Metrics.counter "search.postings.slots"
let m_bytes = Obs.Metrics.counter "search.postings.bytes"

(* Double-checked lazy build.  [pool] is passed only from eager create-time
   builds; lazy builds run sequentially (see the module comment). *)
let ensure_category ?pool t c =
  match Atomic.get t.tables.(c) with
  | Some p -> p
  | None ->
    Mutex.lock t.build_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.build_lock) (fun () ->
        match Atomic.get t.tables.(c) with
        | Some p -> p
        | None ->
          let span0 = Obs.Span.start () in
          let t0 = Unix.gettimeofday () in
          let p = build_postings ?pool t.dex c in
          t.build_us.(c) <- (Unix.gettimeofday () -. t0) *. 1e6;
          Obs.Metrics.incr m_builds;
          Obs.Metrics.add m_slots (Packed.n_slots p);
          Obs.Metrics.add m_bytes (Packed.bytes p);
          Obs.Span.emit ~cat:"search" ~name:("build:" ^ category_name c)
            ~attrs:[ ("keys", Obs.Span.Int (Packed.n_keys p));
                     ("slots", Obs.Span.Int (Packed.n_slots p)) ]
            span0;
          Atomic.set t.tables.(c) (Some p);
          p)

let create ?(indexed = true) ?(eager = false) ?pool dex =
  let t =
    { dex; cache = Cache.create (); pool; indexed; eager = indexed && eager;
      load_mode = None;
      tables = Array.init n_categories (fun _ -> Atomic.make None);
      build_us = Array.make n_categories 0.0;
      build_lock = Mutex.create ();
      ruleset = Atomic.make None }
  in
  if t.eager then
    for c = 0 to n_categories - 1 do
      ignore (ensure_category ?pool t c)
    done;
  t

(** All seven categories in packed form, building any not yet built — the
    snapshot subsystem's save-side view of the index. *)
let export_packed t =
  Array.init n_categories (fun c -> ensure_category ?pool:t.pool t c)

(** An engine whose postings were installed wholesale (a snapshot load or a
    delta patch) rather than built from the arena.  Queries behave exactly
    as in indexed mode; {!index_mode} reports [mode] (default
    ["snapshot"]; the delta path passes ["delta"]). *)
let create_packed ?(mode = "snapshot") dex tables =
  if Array.length tables <> n_categories then
    invalid_arg "Engine.create_packed: expected one table per category";
  { dex; cache = Cache.create (); pool = None; indexed = true; eager = false;
    load_mode = Some mode;
    tables = Array.map (fun p -> Atomic.make (Some p)) tables;
    build_us = Array.make n_categories 0.0;
    build_lock = Mutex.create ();
    ruleset = Atomic.make None }

let program t = t.dex.Dex.Dexfile.program
let dexfile t = t.dex

(** Stamp the engine with the content hash of the rule set about to drive
    its searches.  An engine reused under a {e different} rule set gets its
    query cache flushed — cached search results are query-keyed and so
    rule-set-independent, but flushing guarantees no state computed under
    one rule set is ever consulted under another (and keeps the cache-rate
    statistics honest across [--rules] switches on a shared engine). *)
let note_ruleset t hash =
  let rec loop () =
    match Atomic.get t.ruleset with
    | None ->
      if Atomic.compare_and_set t.ruleset None (Some hash) then `First
      else loop ()
    | Some prev when prev = hash -> `Same
    | Some _ as prev ->
      if Atomic.compare_and_set t.ruleset prev (Some hash) then begin
        Cache.flush t.cache;
        `Changed
      end
      else loop ()
  in
  loop ()

let ruleset_stamp t = Atomic.get t.ruleset

(* ------------------------------------------------------------------ *)
(* Scan mode                                                           *)

(* Naive-but-tight substring check; patterns are short and lines are short,
   so this outperforms building a full-text index for our corpus sizes.  The
   candidate comparison is a char loop — no String.sub allocation in the
   scan hot path. *)
let contains ~pat s =
  let lp = String.length pat and ls = String.length s in
  if lp = 0 then true
  else if lp > ls then false
  else begin
    let max_start = ls - lp in
    let c0 = pat.[0] in
    let rec eq_at i j =
      j >= lp
      || (String.unsafe_get s (i + j) = String.unsafe_get pat j
          && eq_at i (j + 1))
    in
    let rec at i =
      if i > max_start then false
      else if s.[i] = c0 && eq_at i 1 then true
      else at (i + 1)
    in
    at 0
  end

let starts_with_opcode ~prefixes text =
  (* instruction lines look like "    0004: invoke-virtual {...}, ..."; the
     opcode prefix check runs at an offset, which stdlib
     [String.starts_with] cannot do, hence the one explicit [String.sub] *)
  match String.index_opt text ':' with
  | None -> false
  | Some colon ->
    let rest_start = colon + 2 in
    List.exists
      (fun p ->
         rest_start + String.length p <= String.length text
         && String.sub text rest_start (String.length p) = p)
      prefixes

(* Store-side opcode prefix check: mirrors [starts_with_opcode] but reads
   the mapped blob with no line materialization at all. *)
let store_starts_with_opcode store i ~prefixes =
  match Dex.Textstore.index_char store i ':' with
  | -1 -> false
  | colon ->
    let rest_start = colon + 2 in
    List.exists
      (fun p -> Dex.Textstore.starts_with store i ~pos:rest_start ~prefix:p)
      prefixes

let scan t ~prefixes ~pat ~filter =
  let acc = ref [] in
  let emit i (line : Dex.Disasm.line) owner =
    let h =
      { line_no = i; text = Dex.Dexfile.line_text t.dex i; owner;
        owner_cls = Option.value ~default:"" line.owner_cls;
        stmt_idx = line.stmt_idx }
    in
    if filter h then acc := h :: !acc
  in
  (match t.dex.Dex.Dexfile.texts with
   | Some store ->
     (* snapshot-loaded dexfile: one skip-search pass over the mapped blob
        finds the candidate lines (allocating nothing), then the rare
        matches pay the opcode-prefix check and hit materialization *)
     let lines = t.dex.Dex.Dexfile.lines in
     Dex.Textstore.iter_matches store ~pat (fun i ->
         let line = lines.(i) in
         match line.Dex.Disasm.owner with
         | None -> ()
         | Some owner ->
           if prefixes = [] || store_starts_with_opcode store i ~prefixes
           then emit i line owner)
   | None ->
     Array.iteri
       (fun i (line : Dex.Disasm.line) ->
          match line.owner with
          | None -> ()
          | Some owner ->
            if (prefixes = [] || starts_with_opcode ~prefixes line.text)
               && contains ~pat line.text
            then emit i line owner)
       t.dex.Dex.Dexfile.lines);
  List.rev !acc

(* Operand patterns are the symbol's text behind a ", " separator.  The
   rendering is interned once per distinct symbol via [Sym.memo] — the old
   per-query [", " ^ Sym.to_string s] re-allocated the pattern under every
   cache miss, which the scan path (and the residual scans of snapshot
   engines) pays for on each uncached query. *)
let comma_pat =
  Sym.memo ~hash:Sym.hash ~equal:Sym.equal (fun s -> ", " ^ Sym.to_string s)

let scan_uncached t (q : Query.t) =
  match q with
  | Invocation s ->
    scan t ~prefixes:[ "invoke-" ] ~pat:(Sym.to_string (comma_pat s))
      ~filter:(fun _ -> true)
  | New_instance s ->
    scan t ~prefixes:[ "new-instance" ] ~pat:(Sym.to_string (comma_pat s))
      ~filter:(fun _ -> true)
  | Const_class s ->
    scan t ~prefixes:[ "const-class" ] ~pat:(Sym.to_string (comma_pat s))
      ~filter:(fun _ -> true)
  | Const_string s ->
    (* the payload is already the quoted literal *)
    scan t ~prefixes:[ "const-string" ] ~pat:(Sym.to_string s)
      ~filter:(fun _ -> true)
  | Field_access s ->
    scan t ~prefixes:[ "iget"; "iput"; "sget"; "sput" ]
      ~pat:(Sym.to_string (comma_pat s)) ~filter:(fun _ -> true)
  | Static_field_access s ->
    scan t ~prefixes:[ "sget"; "sput" ] ~pat:(Sym.to_string (comma_pat s))
      ~filter:(fun _ -> true)
  | Class_use s ->
    let cls = Sym.to_string s in
    let subject = Dex.Descriptor.class_of_desc cls in
    scan t ~prefixes:[] ~pat:cls
      ~filter:(fun h -> not (String.equal h.owner_cls subject))
  | Raw pat -> scan t ~prefixes:[] ~pat ~filter:(fun _ -> true)

(* ------------------------------------------------------------------ *)
(* Indexed mode                                                        *)

let query_category : Query.t -> int option = function
  | Invocation _ -> Some cat_invocations
  | New_instance _ -> Some cat_new_instances
  | Const_class _ -> Some cat_const_classes
  | Const_string _ -> Some cat_const_strings
  | Field_access _ -> Some cat_field_ops
  | Static_field_access _ -> Some cat_static_field_ops
  | Class_use _ -> Some cat_class_tokens
  | Raw _ -> None  (* free-form searches always scan *)

(* Hits are materialised per returned slot — the postings themselves hold
   only ints. *)
let hit_of_slot t slot =
  let a : Dex.Arena.t = t.dex.Dex.Dexfile.arena in
  let line_no = Ivec.get a.line_idx slot in
  let oid = Ivec.get a.owner_id slot in
  { line_no;
    text = Dex.Dexfile.line_text t.dex line_no;
    owner = a.owners.(oid);
    owner_cls = a.owner_cls.(oid);
    stmt_idx =
      (let s = Ivec.get a.stmt_idx slot in if s < 0 then None else Some s) }

let hits_of_sym t (p : postings) sym =
  match Ivec.find_sorted p.Packed.keys (Sym.id sym) with
  | -1 -> []
  | k ->
    let acc = ref [] in
    Packed.iter_key p k (fun slot -> acc := hit_of_slot t slot :: !acc);
    List.rev !acc

let indexed_lookup t c (q : Query.t) =
  let p = ensure_category t c in
  match q with
  | Invocation s | New_instance s | Const_class s | Const_string s
  | Field_access s | Static_field_access s -> hits_of_sym t p s
  | Class_use s ->
    let subject = Dex.Descriptor.class_of_desc (Sym.to_string s) in
    List.filter
      (fun h -> not (String.equal h.owner_cls subject))
      (hits_of_sym t p s)
  | Raw _ -> assert false  (* query_category returned None *)

let run_uncached t q =
  if not t.indexed then scan_uncached t q
  else
    match query_category q with
    | Some c -> indexed_lookup t c q
    | None -> scan_uncached t q

(** Execute a query, consulting the query cache first. *)
let run t q = Cache.find_or_add t.cache q (fun () -> run_uncached t q)

(* ------------------------------------------------------------------ *)
(* Rarest-first query planner                                          *)

module Meth_tbl = Ir.Jsig.Meth_tbl

let m_conj = Obs.Metrics.counter "search.plan.conjunctions"
let m_conj_shortcircuit = Obs.Metrics.counter "search.plan.shortcircuits"

let query_sym : Query.t -> Sym.t option = function
  | Invocation s | New_instance s | Const_class s | Const_string s
  | Field_access s | Static_field_access s | Class_use s -> Some s
  | Raw _ -> None

(* Planning estimate: the postings slot count of the query's key — O(1)
   off the packed count headers, no decode, no hit materialization.  [Raw]
   queries (and every query on a scan-mode engine) cost a full text scan,
   which dwarfs any postings walk, so they sort last. *)
let postings_count t (q : Query.t) =
  match query_category q, query_sym q with
  | Some c, Some s when t.indexed ->
    let p = ensure_category t c in
    (match Ivec.find_sorted p.Packed.keys (Sym.id s) with
     | -1 -> 0
     | k -> Packed.count p k)
  | _ -> max_int

(* The owner methods with at least one hit for [q].  On indexed engines
   this walks the query's packed run and dedupes owner ids — no hit
   records, no line text; on scan engines it falls back to the hits. *)
let owners_of_query t (q : Query.t) =
  let tbl : unit Meth_tbl.t = Meth_tbl.create 64 in
  let a : Dex.Arena.t = t.dex.Dex.Dexfile.arena in
  let add_slot keep_cls slot =
    let oid = Ivec.get a.owner_id slot in
    if keep_cls a.owner_cls.(oid) then
      Meth_tbl.replace tbl a.owners.(oid) ()
  in
  (match query_category q, query_sym q with
   | Some c, Some s when t.indexed ->
     let p = ensure_category t c in
     (match Ivec.find_sorted p.Packed.keys (Sym.id s) with
      | -1 -> ()
      | k ->
        let keep_cls =
          match q with
          | Class_use s ->
            let subject = Dex.Descriptor.class_of_desc (Sym.to_string s) in
            fun cls -> not (String.equal cls subject)
          | _ -> fun _ -> true
        in
        Packed.iter_key p k (add_slot keep_cls))
   | _ ->
     List.iter (fun h -> Meth_tbl.replace tbl h.owner ()) (run t q));
  tbl

(** [run_conj t (primary :: conjuncts)] is [run t primary] restricted to
    hits whose enclosing method also matches {e every} conjunct — "methods
    that invoke [X] and reference [Y]".  The result is independent of
    evaluation order, so the planner is free to evaluate conjuncts in
    ascending postings-count order (rarest first) and to stop at the first
    empty intersection without touching the remaining — usually densest —
    postings lists, or the primary itself. *)
let run_conj t = function
  | [] -> []
  | [ q ] -> run t q
  | primary :: conjuncts ->
    Obs.Metrics.incr m_conj;
    let ordered =
      List.stable_sort
        (fun a b -> compare (postings_count t a) (postings_count t b))
        conjuncts
    in
    let rec intersect surviving = function
      | [] -> surviving
      | q :: rest ->
        let own = owners_of_query t q in
        let surviving =
          match surviving with
          | None -> own
          | Some prev ->
            let keep = Meth_tbl.create (Meth_tbl.length own) in
            Meth_tbl.iter
              (fun m () -> if Meth_tbl.mem prev m then Meth_tbl.replace keep m ())
              own;
            keep
        in
        if Meth_tbl.length surviving = 0 then begin
          Obs.Metrics.incr m_conj_shortcircuit;
          None
        end
        else intersect (Some surviving) rest
    in
    (match intersect None ordered with
     | None -> []
     | Some surviving ->
       List.filter (fun h -> Meth_tbl.mem surviving h.owner) (run t primary))

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let index_mode t =
  if not t.indexed then "scan"
  else
    match t.load_mode with
    | Some m -> m
    | None -> if t.eager then "eager" else "lazy"

let built_categories t =
  Array.fold_left
    (fun n slot -> if Atomic.get slot <> None then n + 1 else n)
    0 t.tables

(* Bytes held by the postings built so far (mapped or heap-side) — what the
   bench reports to compare v1 flat-slot and v2 packed footprints. *)
let postings_footprint t =
  Array.fold_left
    (fun n slot ->
       match Atomic.get slot with
       | None -> n
       | Some p -> n + Packed.bytes p)
    0 t.tables

let index_build_timings t =
  Mutex.lock t.build_lock;
  let timings = ref [] in
  for c = n_categories - 1 downto 0 do
    if Atomic.get t.tables.(c) <> None then
      timings := (category_name c, t.build_us.(c)) :: !timings
  done;
  Mutex.unlock t.build_lock;
  !timings

let cache_rate t = Cache.cache_rate t.cache
let local_counts = Cache.local_counts
let total_searches t = Cache.total_searches t.cache
let cached_searches t = Cache.cached_searches t.cache
let category_stats t = Cache.category_stats t.cache
let category_timings t = Cache.category_timings t.cache
