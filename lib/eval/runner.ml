(** Runs each tool over generated apps with wall-clock timing and (for the
    whole-app baselines) a real timeout, collecting the per-app measurements
    the experiments aggregate. *)

module G = Appgen.Generator

type tool = Backdroid_tool | Amandroid_tool | Flowdroid_cg_tool

let tool_name = function
  | Backdroid_tool -> "BackDroid"
  | Amandroid_tool -> "Amandroid"
  | Flowdroid_cg_tool -> "FlowDroid-CG"

type measurement = {
  app : string;
  tool : tool;
  seconds : float;         (** wall-clock, capped at the timeout *)
  timed_out : bool;
  errored : bool;
  sink_calls : int;        (** sink API call occurrences analysed *)
  size_stmts : int;
  size_mb : float;
  insecure : int;          (** insecure findings (0 on timeout/error) *)
  insecure_by_rule : (string * int) list;
      (** insecure findings per rule family, normalised to the fixed
          {!Rules.Builtin.family_names} order with zero-count families
          dropped (the per-rule CSV columns) *)
  search_cache_rate : float;  (** BackDroid only *)
  sink_cache_rate : float;    (** BackDroid only *)
  loops : int;                (** BackDroid only: dead loops detected *)
  cross_backward_loops : int;
  partial_sinks : int;
      (** BackDroid only: sink slices that exhausted their budget *)
  parallelism : int;       (** worker-pool size the measurement ran under *)
  incremental : bool;
      (** BackDroid only: the engine was delta-patched from an older
          snapshot instead of built from scratch *)
  resolutions : int;
      (** BackDroid only: caller resolutions taken by fresh slices *)
  resolved_callers : int;
      (** BackDroid only: callers those resolutions produced *)
  work_spent : int;
      (** BackDroid only: work items spent by fresh slices *)
}

(* Tally [names] into per-family counts, in the fixed family-column order;
   names outside the built-in families (custom rule files) have no column
   and are dropped. *)
let count_by_family names =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun n ->
       Hashtbl.replace tbl n
         (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    names;
  List.filter_map
    (fun f ->
       match Hashtbl.find_opt tbl f with
       | Some n -> Some (f, n)
       | None -> None)
    Rules.Builtin.family_names

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  r, Unix.gettimeofday () -. t0

let mb_of app = G.size_mb ~stmts_per_mb:Appgen.Corpus.stmts_per_mb app

let run_backdroid ?(cfg = Backdroid.Driver.default_config) ?engine
    (app : G.app) =
  let r, secs =
    time (fun () ->
        Backdroid.Driver.analyze ~cfg ?engine ~dex:app.G.dex
          ~manifest:app.G.manifest ())
  in
  let s = r.Backdroid.Driver.stats in
  ( { app = app.G.name;
      tool = Backdroid_tool;
      seconds = secs;
      timed_out = false;
      errored = false;
      sink_calls = s.Backdroid.Driver.sink_calls;
      size_stmts = app.G.size_stmts;
      size_mb = mb_of app;
      insecure = List.length (Backdroid.Driver.insecure_reports r);
      insecure_by_rule =
        count_by_family
          (List.map
             (fun (rep : Backdroid.Driver.sink_report) ->
                rep.Backdroid.Driver.rule.Rules.Rule.name)
             (Backdroid.Driver.insecure_reports r));
      search_cache_rate = s.Backdroid.Driver.search_cache_rate;
      sink_cache_rate =
        Stats.fraction s.Backdroid.Driver.sink_cache_hits
          s.Backdroid.Driver.sink_cache_lookups;
      loops = Backdroid.Loopdetect.total s.Backdroid.Driver.loops;
      cross_backward_loops =
        Backdroid.Loopdetect.get s.Backdroid.Driver.loops
          Backdroid.Loopdetect.Cross_backward;
      partial_sinks = s.Backdroid.Driver.partial_sinks;
      parallelism = cfg.Backdroid.Driver.jobs;
      incremental =
        (match engine with
         | Some e -> Bytesearch.Engine.index_mode e = "delta"
         | None -> false);
      resolutions = s.Backdroid.Driver.resolutions;
      resolved_callers = s.Backdroid.Driver.resolved_callers;
      work_spent = s.Backdroid.Driver.work_spent },
    r )

let run_amandroid ?(cfg = Baseline.Amandroid.default_config) ~timeout_s
    (app : G.app) =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let cfg = { cfg with Baseline.Amandroid.deadline = Some deadline } in
  let r, secs =
    time (fun () ->
        Baseline.Amandroid.analyze ~cfg ~program:app.G.program
          ~manifest:app.G.manifest ())
  in
  let timed_out = r.Baseline.Amandroid.outcome = Baseline.Amandroid.Timed_out in
  let errored =
    match r.Baseline.Amandroid.outcome with
    | Baseline.Amandroid.Errored _ -> true
    | _ -> false
  in
  ( { app = app.G.name;
      tool = Amandroid_tool;
      seconds = (if timed_out then timeout_s else secs);
      timed_out;
      errored;
      sink_calls = 0;
      size_stmts = app.G.size_stmts;
      size_mb = mb_of app;
      insecure =
        List.length
          (Baseline.Amandroid.insecure_findings r.Baseline.Amandroid.outcome);
      insecure_by_rule =
        count_by_family
          (List.map
             (fun (f : Baseline.Amandroid.finding) ->
                match Rules.Builtin.rule_for_sink f.Baseline.Amandroid.sink with
                | Some rule -> rule.Rules.Rule.name
                | None -> f.Baseline.Amandroid.sink.Framework.Sinks.name)
             (Baseline.Amandroid.insecure_findings r.Baseline.Amandroid.outcome));
      search_cache_rate = 0.0;
      sink_cache_rate = 0.0;
      loops = 0;
      cross_backward_loops = 0;
      partial_sinks = 0;
      parallelism = 1;
      incremental = false;
      resolutions = 0;
      resolved_callers = 0;
      work_spent = 0 },
    r )

let run_flowdroid_cg ?(cfg = Baseline.Flowdroid_cg.default_config) ~timeout_s
    (app : G.app) =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let cfg = { cfg with Baseline.Flowdroid_cg.deadline = Some deadline } in
  let outcome, secs =
    time (fun () ->
        match
          Baseline.Flowdroid_cg.build ~cfg app.G.program app.G.manifest
        with
        | r -> Ok r
        | exception Baseline.Flowdroid_cg.Timeout -> Error ())
  in
  let timed_out = Result.is_error outcome in
  { app = app.G.name;
    tool = Flowdroid_cg_tool;
    seconds = (if timed_out then timeout_s else secs);
    timed_out;
    errored = false;
    sink_calls = 0;
    size_stmts = app.G.size_stmts;
    size_mb = mb_of app;
    insecure = 0;
    insecure_by_rule = [];
    search_cache_rate = 0.0;
    sink_cache_rate = 0.0;
    loops = 0;
    cross_backward_loops = 0;
    partial_sinks = 0;
    parallelism = 1;
    incremental = false;
    resolutions = 0;
    resolved_callers = 0;
    work_spent = 0 }
