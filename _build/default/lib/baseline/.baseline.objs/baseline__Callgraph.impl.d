lib/baseline/callgraph.ml: Array Cha Expr Framework Hashtbl Ir Jclass Jmethod Jsig Liblist List Manifest Option Program Queue Stmt String Types Unix Value
