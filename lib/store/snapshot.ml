module Engine = Bytesearch.Engine
module Packed = Engine.Packed
module Postcodec = Bytesearch.Postcodec

let ( let* ) = Result.bind

(* Section ids.  Per-line owner/stmt sections are deliberately absent: the
   arena already records owner and statement index for every instruction
   line, and header lines have neither, so load reconstructs line metadata
   from the arena columns.

   The ids are version-independent; the payload of [sec_slots c] is not:
   v1 stores the flat slot vector ([sec_offsets c] holds slot indices),
   v2 stores Postcodec-compressed runs ([sec_offsets c] holds byte
   offsets into the coded blob). *)
let sec_meta = 1
let sec_sym_offsets = 2
let sec_sym_blob = 3
let sec_line_offsets = 4
let sec_line_blob = 5
let sec_owner_offsets = 9
let sec_owner_blob = 10
let sec_cls_offsets = 11
let sec_cls_blob = 12
let sec_line_idx = 13
let sec_stmt_idx = 14
let sec_owner_id = 15
let sec_cat = 16
let sec_sym = 17
(* optional: the detection-rule-set content hash the snapshot was saved
   under (absent in older files) *)
let sec_ruleset = 18
let sec_keys c = 20 + (3 * c)
let sec_offsets c = 21 + (3 * c)
let sec_slots c = 22 + (3 * c)
let n_categories = 7

let m_save_files = Obs.Metrics.counter "store.save.files"
let m_save_bytes = Obs.Metrics.counter "store.save.bytes"
let m_load_files = Obs.Metrics.counter "store.load.files"
let m_load_bytes = Obs.Metrics.counter "store.load.bytes_mapped"
let m_load_remapped = Obs.Metrics.counter "store.load.remapped"
let m_load_prefaulted = Obs.Metrics.counter "store.load.prefaulted"

let default_path ~dir ~app_id =
  let sane =
    String.map
      (fun ch ->
         match ch with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ch
         | _ -> '_')
      app_id
  in
  Filename.concat dir
    (Printf.sprintf "%s.v%d.bdix" sane Codec.format_version)

(* -- String arrays as (offsets, blob) section pairs ------------------- *)

let add_strings w ~off_id ~blob_id (a : string array) =
  let n = Array.length a in
  let offs = Array.make (n + 1) 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    offs.(i) <- !total;
    total := !total + String.length a.(i)
  done;
  offs.(n) <- !total;
  let buf = Buffer.create (max 16 !total) in
  Array.iter (Buffer.add_string buf) a;
  Codec.add_ints w ~id:off_id offs;
  Codec.add_blob w ~id:blob_id (Buffer.contents buf)

let load_strings r ~off_id ~blob_id ~count ~what =
  let* offs = Codec.map_ivec r ~id:off_id in
  let* blob = Codec.read_blob r ~id:blob_id in
  if Ivec.length offs <> count + 1 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets length mismatch" what))
  else if count >= 0 && Ivec.get offs 0 <> 0 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets do not start at 0" what))
  else begin
    let ok = ref true in
    for i = 0 to count - 1 do
      if Ivec.get offs (i + 1) < Ivec.get offs i then ok := false
    done;
    if (not !ok) || Ivec.get offs count <> String.length blob then
      Error
        (Codec.Corrupt
           (Printf.sprintf "%s: offsets inconsistent with blob" what))
    else
      Ok
        (Array.init count (fun i ->
             let lo = Ivec.get offs i in
             String.sub blob lo (Ivec.get offs (i + 1) - lo)))
  end

(* The same (offsets, blob) pair mapped off-heap instead of materialised —
   the v2 line-text load path.  [Textstore.create] re-checks the offset
   geometry and raises; translate to the typed error. *)
let map_textstore r ~off_id ~blob_id ~count ~what =
  let* offs = Codec.map_ivec r ~id:off_id in
  let* blob = Codec.map_bytes r ~id:blob_id in
  if Ivec.length offs <> count + 1 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets length mismatch" what))
  else
    match Dex.Textstore.create ~blob ~offs with
    | store -> Ok store
    | exception Invalid_argument m ->
      Error (Codec.Corrupt (Printf.sprintf "%s: %s" what m))

(* -- Save ------------------------------------------------------------- *)

(* One category's postings as v2 sections: keys unchanged, offsets become
   byte offsets into the coded blob, each key's run compressed by
   {!Postcodec}.  Encoding goes through the packed cursor API, so it works
   identically for [Flat] (in-process) and [Coded] (snapshot-loaded)
   bodies, and the byte choice is a pure function of each run — save ->
   load -> save is byte-identical. *)
let coded_sections (p : Packed.t) =
  let nk = Packed.n_keys p in
  let offsets = Ivec.create (nk + 1) in
  let buf = Buffer.create 4096 in
  let run = ref [||] in
  for k = 0 to nk - 1 do
    let n = Packed.count p k in
    if Array.length !run < n then run := Array.make (max n 64) 0;
    let a = !run and i = ref 0 in
    Packed.iter_key p k (fun slot -> a.(!i) <- slot; incr i);
    Ivec.set offsets k (Buffer.length buf);
    Postcodec.encode buf ~get:(Array.get a) ~lo:0 ~hi:n
  done;
  Ivec.set offsets nk (Buffer.length buf);
  (offsets, Buffer.contents buf)

let save ?(format_version = Codec.format_version) ?ruleset_hash ~path engine =
  let span0 = Obs.Span.start () in
  (* default to the stamp already on the engine, so save -> load -> save
     stays byte-identical for stamped files *)
  let ruleset_hash =
    match ruleset_hash with
    | Some _ as h -> h
    | None -> Engine.ruleset_stamp engine
  in
  let dex = Engine.dexfile engine in
  let packed = Engine.export_packed engine in
  let arena = dex.Dex.Dexfile.arena in
  let n_lines = Dex.Dexfile.line_count dex in
  let syms = Sym.dump () in
  let w = Codec.writer () in
  Codec.add_ints w ~id:sec_meta
    [| n_lines; Dex.Arena.length arena;
       Array.length arena.Dex.Arena.owners; Array.length syms |];
  (match ruleset_hash with
   | Some h -> Codec.add_ints w ~id:sec_ruleset [| h |]
   | None -> ());
  add_strings w ~off_id:sec_sym_offsets ~blob_id:sec_sym_blob syms;
  add_strings w ~off_id:sec_line_offsets ~blob_id:sec_line_blob
    (Array.init n_lines (Dex.Dexfile.line_text dex));
  add_strings w ~off_id:sec_owner_offsets ~blob_id:sec_owner_blob
    (Array.map Ir.Jsig.meth_to_string arena.Dex.Arena.owners);
  add_strings w ~off_id:sec_cls_offsets ~blob_id:sec_cls_blob
    arena.Dex.Arena.owner_cls;
  Codec.add_ivec w ~id:sec_line_idx arena.Dex.Arena.line_idx;
  Codec.add_ivec w ~id:sec_stmt_idx arena.Dex.Arena.stmt_idx;
  Codec.add_ivec w ~id:sec_owner_id arena.Dex.Arena.owner_id;
  Codec.add_ivec w ~id:sec_cat arena.Dex.Arena.cat;
  Codec.add_ivec w ~id:sec_sym arena.Dex.Arena.sym;
  Array.iteri
    (fun c (p : Packed.t) ->
       Codec.add_ivec w ~id:(sec_keys c) p.Packed.keys;
       if format_version >= 2 then begin
         let offsets, blob = coded_sections p in
         Codec.add_ivec w ~id:(sec_offsets c) offsets;
         Codec.add_blob w ~id:(sec_slots c) blob
       end
       else begin
         let p = Packed.to_flat p in
         match p.Packed.body with
         | Packed.Flat slots ->
           Codec.add_ivec w ~id:(sec_offsets c) p.Packed.offsets;
           Codec.add_ivec w ~id:(sec_slots c) slots
         | Packed.Coded _ -> assert false  (* to_flat *)
       end)
    packed;
  let bytes = Codec.write_file ~version:format_version w ~path in
  Obs.Metrics.incr m_save_files;
  Obs.Metrics.add m_save_bytes bytes;
  Obs.Span.emit ~cat:"store" ~name:"store:save"
    ~attrs:
      [ ("path", Obs.Span.Str path); ("bytes", Obs.Span.Int bytes);
        ("version", Obs.Span.Int format_version);
        ("syms", Obs.Span.Int (Array.length syms)) ]
    span0;
  bytes

(* -- Load ------------------------------------------------------------- *)

(* Validate one v1 category's CSR geometry against the snapshot's own
   symbol and slot counts (symbol ids here are still snapshot ids). *)
let check_packed_flat ~n_syms ~n_slots c ~keys ~offsets ~slots =
  let nk = Ivec.length keys in
  let bad what =
    Error (Codec.Corrupt (Printf.sprintf "postings %d: %s" c what))
  in
  if Ivec.length offsets <> nk + 1 then bad "offsets length"
  else if Ivec.get offsets 0 <> 0 then bad "offsets start"
  else if Ivec.get offsets nk <> Ivec.length slots then bad "offsets end"
  else begin
    let ok = ref true in
    for k = 0 to nk - 1 do
      let key = Ivec.get keys k in
      if key < 0 || key >= n_syms then ok := false;
      if k > 0 && Ivec.get keys (k - 1) >= key then ok := false;
      if Ivec.get offsets (k + 1) < Ivec.get offsets k then ok := false
    done;
    if not !ok then bad "keys/offsets not ascending or out of range"
    else begin
      let ok = ref true in
      for i = 0 to Ivec.length slots - 1 do
        let s = Ivec.get slots i in
        if s < 0 || s >= n_slots then ok := false
      done;
      if !ok then Ok () else bad "slot out of range"
    end
  end

(* Validate one v2 category: same key geometry, byte offsets partitioning
   the coded blob exactly, and every coded run well-formed with slots in
   range.  Every byte the engine's unchecked cursors will later read is
   checked here — and the walk doubles as a sequential touch of the run
   bytes, so it prefaults the postings as a side effect. *)
let check_packed_coded ~n_syms ~n_slots c ~keys ~offsets ~(coded : Bvec.t) =
  let nk = Ivec.length keys in
  let bad what =
    Error (Codec.Corrupt (Printf.sprintf "postings %d: %s" c what))
  in
  if Ivec.length offsets <> nk + 1 then bad "offsets length"
  else if nk > 0 && Ivec.get offsets 0 <> 0 then bad "offsets start"
  else if Ivec.get offsets nk <> Bvec.length coded then bad "offsets end"
  else begin
    let ok = ref true in
    for k = 0 to nk - 1 do
      let key = Ivec.get keys k in
      if key < 0 || key >= n_syms then ok := false;
      if k > 0 && Ivec.get keys (k - 1) >= key then ok := false;
      if Ivec.get offsets (k + 1) < Ivec.get offsets k then ok := false
    done;
    if not !ok then bad "keys/offsets not ascending or out of range"
    else begin
      let rec runs k =
        if k = nk then Ok ()
        else
          match
            Postcodec.validate coded ~pos:(Ivec.get offsets k)
              ~limit:(Ivec.get offsets (k + 1)) ~max_slot:(n_slots - 1)
          with
          | Ok _ -> runs (k + 1)
          | Error m -> bad (Printf.sprintf "run %d: %s" k m)
      in
      runs 0
    end
  end

(* Rebuild one category's postings with live symbol ids: re-key each entry
   through [live_of_snap], then re-sort key order (slot lists are unchanged
   and stay ascending).  Fresh flat ivecs — the mapped originals are
   dropped, and a remapped engine pays v1-shaped memory for its postings
   regardless of snapshot version (remaps are the rare skewed-symbol-table
   path). *)
let remap_packed live_of_snap (p : Packed.t) =
  let p = Packed.to_flat p in
  let nk = Packed.n_keys p in
  let newkey =
    Array.init nk (fun k -> live_of_snap.(Ivec.get p.Packed.keys k))
  in
  let order = Array.init nk Fun.id in
  Array.sort (fun a b -> compare newkey.(a) newkey.(b)) order;
  let keys = Ivec.create nk in
  let offsets = Ivec.create (nk + 1) in
  let slots = Ivec.create (Packed.n_slots p) in
  let pos = ref 0 in
  Ivec.set offsets 0 0;
  Array.iteri
    (fun i k ->
       Ivec.set keys i newkey.(k);
       Packed.iter_key p k (fun slot ->
           Ivec.set slots !pos slot;
           incr pos);
       Ivec.set offsets (i + 1) !pos)
    order;
  { Packed.keys; offsets; body = Packed.Flat slots }

let rec result_each f = function
  | [] -> Ok ()
  | x :: tl ->
    let* () = f x in
    result_each f tl

(* Touch every page of the mapped hot sections up front — arena columns,
   postings, line texts — so first queries fault nothing in.  OCaml's Unix
   has no madvise; a sequential one-touch-per-page walk gets the same
   readahead behaviour.  Runs after validation (which already walked the
   coded runs), so the engine is usable either way; the knob only moves
   page-fault cost from first queries to load. *)
let prefault_engine ~(arena : Dex.Arena.t) ~(packed : Packed.t array)
    ~(texts : Dex.Textstore.t option) =
  let acc = ref 0 in
  let iv v = acc := !acc lxor Ivec.prefault v in
  iv arena.Dex.Arena.line_idx;
  iv arena.Dex.Arena.stmt_idx;
  iv arena.Dex.Arena.owner_id;
  iv arena.Dex.Arena.cat;
  iv arena.Dex.Arena.sym;
  Array.iter
    (fun (p : Packed.t) ->
       iv p.Packed.keys;
       iv p.Packed.offsets;
       match p.Packed.body with
       | Packed.Flat slots -> iv slots
       | Packed.Coded b -> acc := !acc lxor Bvec.prefault b)
    packed;
  (match texts with
   | Some store -> acc := !acc lxor Dex.Textstore.prefault store
   | None -> ());
  Sys.opaque_identity !acc

let load ?(prefault = false) ~path program =
  let span0 = Obs.Span.start () in
  let* r = Codec.read_file ~path in
  let version = Codec.version r in
  let finish res =
    Codec.close r;
    (match res with
     | Ok engine ->
       Obs.Metrics.incr m_load_files;
       Obs.Metrics.add m_load_bytes (Codec.size r);
       Obs.Span.emit ~cat:"store" ~name:"store:load"
         ~attrs:
           [ ("path", Obs.Span.Str path);
             ("bytes", Obs.Span.Int (Codec.size r));
             ("version", Obs.Span.Int version);
             ("prefault", Obs.Span.Bool prefault);
             ("mode", Obs.Span.Str (Engine.index_mode engine)) ]
         span0
     | Error _ -> ());
    res
  in
  finish
    (let* meta = Codec.map_ivec r ~id:sec_meta in
     if Ivec.length meta <> 4 then Error (Codec.Corrupt "meta length")
     else begin
       let n_lines = Ivec.get meta 0 in
       let n_slots = Ivec.get meta 1 in
       let n_owners = Ivec.get meta 2 in
       let n_syms = Ivec.get meta 3 in
       if n_lines < 0 || n_slots < 0 || n_owners < 0 || n_syms < 0 then
         Error (Codec.Corrupt "negative count in meta")
       else
         let* syms =
           load_strings r ~off_id:sec_sym_offsets ~blob_id:sec_sym_blob
             ~count:n_syms ~what:"symbol table"
         in
         (* v1 materialises one heap string per line; v2 leaves the texts
            in the mapped blob and lines lazily materialise through
            [Dexfile.line_text]. *)
         let* texts_heap, texts_store =
           if version >= 2 then
             let* store =
               map_textstore r ~off_id:sec_line_offsets
                 ~blob_id:sec_line_blob ~count:n_lines ~what:"line texts"
             in
             Ok ([||], Some store)
           else
             let* a =
               load_strings r ~off_id:sec_line_offsets
                 ~blob_id:sec_line_blob ~count:n_lines ~what:"line texts"
             in
             Ok (a, None)
         in
         let* owner_strs =
           load_strings r ~off_id:sec_owner_offsets ~blob_id:sec_owner_blob
             ~count:n_owners ~what:"owners"
         in
         let* owner_cls =
           load_strings r ~off_id:sec_cls_offsets ~blob_id:sec_cls_blob
             ~count:n_owners ~what:"owner classes"
         in
         let* owners =
           try Ok (Array.map Ir.Jsig.meth_of_string owner_strs)
           with Invalid_argument m -> Error (Codec.Corrupt m)
         in
         let* line_idx = Codec.map_ivec r ~id:sec_line_idx in
         let* stmt_idx = Codec.map_ivec r ~id:sec_stmt_idx in
         let* owner_id = Codec.map_ivec r ~id:sec_owner_id in
         let* cat = Codec.map_ivec r ~id:sec_cat in
         let* sym = Codec.map_ivec r ~id:sec_sym in
         let* () =
           result_each
             (fun (v, what) ->
                if Ivec.length v = n_slots then Ok ()
                else
                  Error
                    (Codec.Corrupt
                       (Printf.sprintf "arena %s: length mismatch" what)))
             [ (line_idx, "line_idx"); (stmt_idx, "stmt_idx");
               (owner_id, "owner_id"); (cat, "cat"); (sym, "sym") ]
         in
         let* () =
           (* range-check the arena before anything dereferences it *)
           let ok = ref true in
           for i = 0 to n_slots - 1 do
             let li = Ivec.get line_idx i in
             let oi = Ivec.get owner_id i in
             let c = Ivec.get cat i in
             let s = Ivec.get sym i in
             if li < 0 || li >= n_lines then ok := false;
             if oi < 0 || oi >= n_owners then ok := false;
             if c < -1 || c >= n_categories - 1 then ok := false;
             if s < -1 || s >= n_syms then ok := false
           done;
           if !ok then Ok ()
           else Error (Codec.Corrupt "arena column value out of range")
         in
         let* packed_snap =
           let rec go c acc =
             if c = n_categories then Ok (Array.of_list (List.rev acc))
             else
               let* keys = Codec.map_ivec r ~id:(sec_keys c) in
               let* offsets = Codec.map_ivec r ~id:(sec_offsets c) in
               let* p =
                 if version >= 2 then
                   let* coded = Codec.map_bytes r ~id:(sec_slots c) in
                   let* () =
                     check_packed_coded ~n_syms ~n_slots c ~keys ~offsets
                       ~coded
                   in
                   Ok { Packed.keys; offsets; body = Packed.Coded coded }
                 else
                   let* slots = Codec.map_ivec r ~id:(sec_slots c) in
                   let* () =
                     check_packed_flat ~n_syms ~n_slots c ~keys ~offsets
                       ~slots
                   in
                   Ok { Packed.keys; offsets; body = Packed.Flat slots }
               in
               go (c + 1) (p :: acc)
           in
           go 0 []
         in
         (* Re-intern the snapshot's symbol table; ids are stable when the
            live table evolved identically (the common warm start). *)
         let live_of_snap =
           Array.map (fun s -> Sym.id (Sym.intern s)) syms
         in
         let identity =
           let ok = ref true in
           Array.iteri (fun i l -> if i <> l then ok := false) live_of_snap;
           !ok
         in
         let packed =
           if identity then packed_snap
           else Array.map (remap_packed live_of_snap) packed_snap
         in
         if not identity then begin
           (* private (copy-on-write) mapping: rewriting in place never
              touches the file *)
           Obs.Metrics.incr m_load_remapped;
           for i = 0 to n_slots - 1 do
             let s = Ivec.get sym i in
             if s >= 0 then Ivec.set sym i live_of_snap.(s)
           done
         end;
         (* scatter arena rows to per-line metadata first so each line
            record is allocated exactly once *)
         let owner_of_line = Array.make n_lines (-1) in
         let stmt_of_line = Array.make n_lines (-1) in
         for i = 0 to n_slots - 1 do
           let li = Ivec.get line_idx i in
           owner_of_line.(li) <- Ivec.get owner_id i;
           stmt_of_line.(li) <- Ivec.get stmt_idx i
         done;
         let text_of_line =
           match texts_store with
           | Some _ -> fun _ -> Dex.Textstore.pending
           | None -> fun li -> texts_heap.(li)
         in
         let lines =
           Array.init n_lines (fun li ->
               let oi = owner_of_line.(li) in
               if oi < 0 then
                 { Dex.Disasm.text = text_of_line li; owner = None;
                   owner_cls = None; stmt_idx = None;
                   key = Dex.Disasm.K_none; tokens = None }
               else
                 let si = stmt_of_line.(li) in
                 { Dex.Disasm.text = text_of_line li;
                   owner = Some owners.(oi);
                   owner_cls = Some owner_cls.(oi);
                   stmt_idx = (if si >= 0 then Some si else None);
                   key = Dex.Disasm.K_none; tokens = None })
         in
         let arena =
           { Dex.Arena.line_idx; stmt_idx; owner_id; cat; sym; owners;
             owner_cls }
         in
         if prefault then begin
           Obs.Metrics.incr m_load_prefaulted;
           ignore (prefault_engine ~arena ~packed ~texts:texts_store)
         end;
         let dex =
           match texts_store with
           | Some store -> Dex.Dexfile.of_store lines arena program store
           | None -> { Dex.Dexfile.lines; arena; program; texts = None }
         in
         let* ruleset =
           if not (Codec.mem r ~id:sec_ruleset) then Ok None
           else
             let* v = Codec.map_ivec r ~id:sec_ruleset in
             if Ivec.length v <> 1 then
               Error (Codec.Corrupt "ruleset section length")
             else Ok (Some (Ivec.get v 0))
         in
         let engine = Engine.create_packed dex packed in
         (* carry the saved rule-set stamp onto the engine, so an analysis
            under a different rule set sees `Changed` and warns instead of
            silently trusting warm state *)
         (match ruleset with
          | Some h -> ignore (Engine.note_ruleset engine h)
          | None -> ());
         Ok engine
     end)
