(** Signature translation between the program-analysis space (Soot-style IR
    signatures) and the bytecode-search space (dexdump format) — steps 1 and
    3 of the basic search walk-through in Fig. 3. *)

(** Step 1: IR method signature → dexdump search signature. *)
val to_dex_meth : Ir.Jsig.meth -> string

(** Step 3: dexdump signature (as found by the search) → IR signature, ready
    for method-body lookup in the program space. *)
val of_dex_meth : string -> Ir.Jsig.meth
val to_dex_field : Ir.Jsig.field -> string
val of_dex_field : string -> Ir.Jsig.field
val to_dex_class : string -> string
val of_dex_class : string -> string

(** Search signature for the same method relocated onto another class (used
    for child-class searches). *)
val to_dex_meth_on_class : Ir.Jsig.meth -> string -> string
