(** Special search over Android lifecycle handlers (Sec. IV-E).

    When backtracking reaches a lifecycle handler: if the dataflow is already
    complete, the handler is an entry method and no further search is needed.
    Otherwise the domain-knowledge table of {!module:Manifest.Lifecycle}
    gives the handlers that run earlier in the same component, which are
    slicing continuations for residual field taints. *)

(** Is [m] a lifecycle handler, i.e. does it override one of the four
    component kinds' handler sub-signatures while its class descends from a
    framework component class? *)
val is_lifecycle_handler : Ir.Program.t -> Ir.Jsig.meth -> bool

(** Is [m] an entry point: a lifecycle handler of a component registered in
    the manifest?  Handlers of classes absent from the manifest are
    deactivated code (the Amandroid false-positive class of Sec. VI-C). *)
val is_entry :
  Ir.Program.t -> Manifest.App_manifest.t -> Ir.Jsig.meth -> bool

(** Earlier handlers of the same component class that can seed residual
    state: the transitive predecessor closure, filtered to the handlers the
    class actually defines. *)
val predecessor_handlers : Ir.Program.t -> Ir.Jsig.meth -> Ir.Jsig.meth list
