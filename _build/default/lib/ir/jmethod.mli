(** Methods: signature, access flags and an optional SSA-ish body.

    Parameter and receiver bindings follow Shimple's identity-statement
    convention: the body begins with [l := @this] (instance methods) followed
    by [li := @parameterI] statements. *)

type access = {
  is_static : bool;
  is_private : bool;
  is_public : bool;
  is_abstract : bool;
  is_final : bool;
  is_native : bool;
  is_synthetic : bool;
}
val default_access : access
type t = {
  msig : Jsig.meth;
  access : access;
  body : Stmt.t array option;
}
val make :
  ?access:access ->
  msig:Jsig.meth -> body:Stmt.t array option -> unit -> t
val is_constructor : t -> bool
val is_clinit : t -> bool

(** A "signature method" in the paper's sense (Sec. IV-A): one whose callers
    can be located by the basic signature-based search alone — static methods,
    private methods and constructors.  [<clinit>] is nominally a signature
    method but needs the special recursive search of Sec. IV-C, so it is
    excluded here. *)
val is_signature_method : t -> bool
val sub_signature : t -> string
val full_signature : t -> string

(** Local bound to [@parameterN], when the body uses the identity-statement
    convention. *)
val param_local : t -> int -> Value.local option

(** Local bound to [@this]. *)
val this_local : t -> Value.local option

(** All call sites in the body: [(stmt index, invoke)] pairs. *)
val call_sites : t -> (int * Expr.invoke) list
val stmt_count : t -> int
