(** Signature translation between the program-analysis space (Soot-style IR
    signatures) and the bytecode-search space (dexdump format) — steps 1 and
    3 of the basic search walk-through in Fig. 3. *)

(** Step 1: IR method signature → dexdump search signature. *)
let to_dex_meth = Dex.Descriptor.meth_desc

(** Step 3: dexdump signature (as found by the search) → IR signature, ready
    for method-body lookup in the program space. *)
let of_dex_meth = Dex.Descriptor.meth_of_desc

let to_dex_field = Dex.Descriptor.field_desc
let of_dex_field = Dex.Descriptor.field_of_desc

let to_dex_class = Dex.Descriptor.class_desc
let of_dex_class = Dex.Descriptor.class_of_desc

(** Search signature for the same method relocated onto another class (used
    for child-class searches). *)
let to_dex_meth_on_class (m : Ir.Jsig.meth) cls =
  Dex.Descriptor.meth_desc { m with Ir.Jsig.cls }

(* Interned variants: memoized step-1 translations.  A signature is rendered
   once per process; query construction from these is allocation-free and
   yields the same [Sym.t] the disassembler attached to matching lines. *)
let to_dex_meth_sym = Dex.Descriptor.meth_desc_sym
let to_dex_field_sym = Dex.Descriptor.field_desc_sym
let to_dex_class_sym = Dex.Descriptor.class_desc_sym

let to_dex_meth_on_class_sym (m : Ir.Jsig.meth) cls =
  Dex.Descriptor.meth_desc_sym { m with Ir.Jsig.cls }
