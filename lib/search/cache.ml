(** Search-command caching (implementation enhancement 1, Sec. IV-F).

    Keys are the typed queries themselves — symbol payloads make query
    hashing and equality integer operations, so a cache probe renders no
    command string.  The cache also keeps the per-category and aggregate
    counters the paper reports (average cache rate 23.39%, min 2.97%, max
    88.95%).

    A single mutex serializes the table and the counters, and is held across
    the compute of a miss so that concurrent domains racing on the same key
    still produce exactly one miss plus hits — the counters are then
    scheduling-independent, which the jobs=1-vs-jobs=N determinism guarantee
    relies on. *)

let m_hits = Obs.Metrics.counter "search.cache.hits"
let m_misses = Obs.Metrics.counter "search.cache.misses"
let m_compute_us = Obs.Metrics.histogram "search.compute_us"

type category_stat = {
  mutable c_total : int;
  mutable c_cached : int;
  mutable c_compute_us : float;
      (** accumulated wall-clock cost of the misses (the computes) *)
}

type 'hit stats = {
  mutable total : int;
  mutable cached : int;
  per_category : (Query.category, category_stat) Hashtbl.t;
}

module Query_tbl = Hashtbl.Make (struct
    type t = Query.t
    let equal = Query.equal
    let hash = Query.hash
  end)

type 'hit t = {
  table : 'hit list Query_tbl.t;
  stats : 'hit stats;
  lock : Mutex.t;
}

let create () =
  { table = Query_tbl.create 256;
    stats = { total = 0; cached = 0; per_category = Hashtbl.create 8 };
    lock = Mutex.create () }

let cat_stat t cat =
  match Hashtbl.find_opt t.stats.per_category cat with
  | Some c -> c
  | None ->
    let c = { c_total = 0; c_cached = 0; c_compute_us = 0.0 } in
    Hashtbl.replace t.stats.per_category cat c;
    c

let bump t cat ~was_cached =
  let s = t.stats in
  s.total <- s.total + 1;
  if was_cached then s.cached <- s.cached + 1;
  let c = cat_stat t cat in
  c.c_total <- c.c_total + 1;
  if was_cached then c.c_cached <- c.c_cached + 1

(** Look up or compute the result of [query], recording statistics (misses
    additionally record the compute's wall-clock cost against their
    category). *)
let find_or_add t query compute =
  let cat = Query.category query in
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () ->
      match Query_tbl.find_opt t.table query with
      | Some hits ->
        bump t cat ~was_cached:true;
        Obs.Metrics.incr m_hits;
        hits
      | None ->
        bump t cat ~was_cached:false;
        Obs.Metrics.incr m_misses;
        let t0 = Unix.gettimeofday () in
        let hits = compute () in
        let elapsed_us = (Unix.gettimeofday () -. t0) *. 1e6 in
        let c = cat_stat t cat in
        c.c_compute_us <- c.c_compute_us +. elapsed_us;
        Obs.Metrics.observe m_compute_us elapsed_us;
        Query_tbl.replace t.table query hits;
        hits)

(** Drop every cached result (the statistics counters are kept — they
    describe work actually performed).  Used when the rule set driving the
    searches changes under a reused engine. *)
let flush t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () ->
      Query_tbl.reset t.table)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(** Fraction of search commands served from cache, in [0, 1]. *)
let cache_rate t =
  with_lock t (fun () ->
      if t.stats.total = 0 then 0.0
      else float_of_int t.stats.cached /. float_of_int t.stats.total)

let total_searches t = with_lock t (fun () -> t.stats.total)
let cached_searches t = with_lock t (fun () -> t.stats.cached)

let category_stats t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun cat c acc -> (cat, c.c_total, c.c_cached) :: acc)
        t.stats.per_category [])

(** Per-category accumulated compute cost (µs spent on cache misses). *)
let category_timings t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun cat c acc -> (cat, c.c_compute_us) :: acc)
        t.stats.per_category [])
