(** Models of Java / Android APIs for the forward analysis (Sec. V-B:
    "we mimic arithmetic operations and model Android/Java APIs").  Each
    model maps (receiver fact, argument facts) to a result fact, updating
    points-to members where the API stores state. *)

open Ir
module Api = Framework.Api

let sb_parts_key = "<sb-parts>"
let intent_action_key = "<intent-action>"
let intent_target_key = "<intent-target>"

let get_parts (o : Facts.obj) =
  match Hashtbl.find_opt o.members sb_parts_key with
  | Some (Facts.Sym s) -> [ Facts.Sym s ]
  | Some f -> [ f ]
  | None -> []

(** Evaluate a framework API call.  Returns [Some fact] when modelled, [None]
    when the generic default (Unknown result) should apply. *)
let eval (callee : Jsig.meth) (recv : Facts.t option) (args : Facts.t list) =
  let str_concat parts =
    let rec go acc = function
      | [] -> Some (Facts.Const_str acc)
      | Facts.Const_str s :: rest -> go (acc ^ s) rest
      | Facts.Const_int i :: rest -> go (acc ^ string_of_int i) rest
      | _ -> None
    in
    go "" parts
  in
  if Jsig.meth_equal callee Api.string_builder_init then Some Facts.Unknown
  else if Jsig.meth_equal callee Api.string_builder_append then begin
    (match recv with
     | Some (Facts.New_obj o) ->
       let parts =
         match Hashtbl.find_opt o.members sb_parts_key with
         | Some (Facts.Arr a) ->
           let n = Hashtbl.length a.cells in
           Hashtbl.replace a.cells n
             (match args with x :: _ -> x | [] -> Facts.Unknown);
           Facts.Arr a
         | _ ->
           let a = { Facts.elem = Types.string_; cells = Hashtbl.create 4 } in
           Hashtbl.replace a.cells 0
             (match args with x :: _ -> x | [] -> Facts.Unknown);
           Facts.Arr a
       in
       Hashtbl.replace o.members sb_parts_key parts;
       Some (Facts.New_obj o)
     | _ -> Some Facts.Unknown)
  end
  else if Jsig.meth_equal callee Api.string_builder_to_string then begin
    match recv with
    | Some (Facts.New_obj o) ->
      (match Hashtbl.find_opt o.members sb_parts_key with
       | Some (Facts.Arr a) ->
         let parts =
           List.init (Hashtbl.length a.cells) (fun i ->
               Option.value ~default:Facts.Unknown (Hashtbl.find_opt a.cells i))
         in
         (match str_concat parts with
          | Some f -> Some f
          | None -> Some (Facts.Sym "string-builder"))
       | _ -> Some (Facts.Sym "string-builder"))
    | _ -> Some Facts.Unknown
  end
  else if Jsig.meth_equal callee Api.string_value_of_int then begin
    match args with
    | [ Facts.Const_int i ] -> Some (Facts.Const_str (string_of_int i))
    | _ -> Some (Facts.Sym "String.valueOf")
  end
  else if Jsig.meth_equal callee Api.intent_put_extra then begin
    (match recv, args with
     | Some (Facts.New_obj o), [ Facts.Const_str key; v ] ->
       Hashtbl.replace o.members key v;
       Some (Facts.New_obj o)
     | Some f, _ -> Some f
     | None, _ -> Some Facts.Unknown)
  end
  else if Jsig.meth_equal callee Api.intent_get_string_extra then begin
    match recv, args with
    | Some (Facts.New_obj o), [ Facts.Const_str key ] ->
      Some (Option.value ~default:Facts.Unknown (Hashtbl.find_opt o.members key))
    | Some Facts.Framework_input, _ -> Some Facts.Framework_input
    | _, _ -> Some Facts.Unknown
  end
  else if Jsig.meth_equal callee Api.activity_get_intent then
    (* the launching Intent of an entry component: framework-provided data
       unless an in-app ICC edge already bound a concrete Intent object *)
    Some Facts.Framework_input
  else if Jsig.meth_equal callee Api.intent_set_action then begin
    (match recv, args with
     | Some (Facts.New_obj o), [ v ] ->
       Hashtbl.replace o.members intent_action_key v;
       Some (Facts.New_obj o)
     | Some f, _ -> Some f
     | None, _ -> Some Facts.Unknown)
  end
  else if Jsig.meth_equal callee Api.intent_init_explicit then begin
    (match recv, args with
     | Some (Facts.New_obj o), [ _ctx; target ] ->
       Hashtbl.replace o.members intent_target_key target;
       Some (Facts.New_obj o)
     | _, _ -> Some Facts.Unknown)
  end
  else None

(** Arithmetic mimicry for BinopExpr. *)
let binop op (a : Facts.t) (b : Facts.t) =
  match op, a, b with
  | Expr.Add, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x + y)
  | Expr.Sub, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x - y)
  | Expr.Mul, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x * y)
  | Expr.Div, Facts.Const_int x, Facts.Const_int y when y <> 0 ->
    Facts.Const_int (x / y)
  | Expr.Rem, Facts.Const_int x, Facts.Const_int y when y <> 0 ->
    Facts.Const_int (x mod y)
  | Expr.Band, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x land y)
  | Expr.Bor, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x lor y)
  | Expr.Bxor, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x lxor y)
  | Expr.Shl, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x lsl y)
  | Expr.Shr, Facts.Const_int x, Facts.Const_int y -> Facts.Const_int (x asr y)
  | (Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge),
    Facts.Const_int x, Facts.Const_int y ->
    let r =
      match op with
      | Expr.Eq -> x = y | Expr.Ne -> x <> y | Expr.Lt -> x < y
      | Expr.Le -> x <= y | Expr.Gt -> x > y | Expr.Ge -> x >= y
      | _ -> false
    in
    Facts.Const_int (if r then 1 else 0)
  | _, _, _ ->
    Facts.sym
      (Printf.sprintf "%s %s %s" (Facts.to_string a) (Expr.binop_to_string op)
         (Facts.to_string b))
