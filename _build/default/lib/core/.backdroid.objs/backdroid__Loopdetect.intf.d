lib/core/loopdetect.mli: Ir
