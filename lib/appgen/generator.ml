(** The synthetic app generator: assembles framework stubs, filler code and
    planted sink flows into a complete app (program + manifest + disassembled
    dex + ground truth). *)

module Sinks = Framework.Sinks

type plant_spec = {
  shape : Shape.t;
  sink : Sinks.t;
  insecure : bool;
}

type config = {
  seed : int;
  name : string;
  filler_classes : int;
  filler_methods_per_class : int;
  filler_stmts_per_method : int;
  filler_dispatch_p : float;
      (** fraction of filler methods containing a virtual-dispatch site *)
  filler_fanout_max : int;
      (** maximum static-call fan-out per filler method; higher values make
          the app's calling-context space explode for whole-app analyses *)
  filler_jump_locality : int;
      (** 0 = calls jump anywhere forward (shallow chains); k>0 = calls stay
          within the next k classes (chains as deep as the class count) *)
  plants : plant_spec list;
  multidex : bool;
}

let default_config =
  { seed = 1;
    name = "com.example.app";
    filler_classes = 10;
    filler_methods_per_class = 6;
    filler_stmts_per_method = 8;
    filler_dispatch_p = 0.25;
    filler_fanout_max = 3;
    filler_jump_locality = 0;
    plants = [];
    multidex = false }

type app = {
  name : string;
  config : config;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  dex : Dex.Dexfile.t;
  planted : Templates.planted list;
  size_stmts : int;
}

(** Sanitise an app name into a Java package fragment. *)
let package_of_name name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
       if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' then
         Buffer.add_char b c
       else if c >= 'A' && c <= 'Z' then Buffer.add_char b (Char.lowercase_ascii c)
       else Buffer.add_char b '_')
    name;
  Buffer.contents b

let generate ?(build_dex = true) (cfg : config) =
  let rng = Rng.create cfg.seed in
  let pkg = package_of_name cfg.name in
  (* shared-util plants form one group behind a common hub class; all other
     plants live in their own sub-namespace *)
  let shared, solo =
    List.partition (fun (p : plant_spec) -> p.shape = Shape.Shared_util)
      cfg.plants
  in
  let plant_results =
    List.mapi
      (fun i (p : plant_spec) ->
         let ctx =
           { Templates.ns = Printf.sprintf "%s.s%d" pkg i; rng = Rng.split rng }
         in
         Templates.plant ctx p.shape ~sink:p.sink ~insecure:p.insecure)
      solo
  in
  let shared_classes, shared_components, shared_planted =
    match shared with
    | [] -> [], [], []
    | first :: _ ->
      let ctx = { Templates.ns = pkg ^ ".sh"; rng = Rng.split rng } in
      (* the whole group shares the first member's sink and security flag *)
      Templates.plant_shared_group ctx ~sink:first.sink ~insecure:first.insecure
        ~count:(List.length shared)
  in
  (* filler web + its root activity *)
  let filler_rng = Rng.split rng in
  let filler_classes =
    Filler.classes ~dispatch_p:cfg.filler_dispatch_p
      ~fanout_max:cfg.filler_fanout_max
      ~jump_locality:cfg.filler_jump_locality filler_rng ~ns:pkg
      ~n_classes:cfg.filler_classes
      ~methods_per_class:cfg.filler_methods_per_class
      ~stmts_per_method:cfg.filler_stmts_per_method
  in
  let filler_act, filler_comp =
    Filler.root_activity filler_rng ~ns:pkg ~n_classes:cfg.filler_classes
      ~methods_per_class:cfg.filler_methods_per_class
  in
  let classes =
    Framework.Stubs.classes ()
    @ (filler_act :: filler_classes)
    @ shared_classes
    @ List.concat_map (fun (r : Templates.result) -> r.classes) plant_results
  in
  let program = Ir.Program.of_classes classes in
  let components =
    (filler_comp :: shared_components)
    @ List.concat_map (fun (r : Templates.result) -> r.components) plant_results
  in
  let manifest = Manifest.App_manifest.make ~package:pkg ~components in
  let dex =
    if not build_dex then Dex.Dexfile.empty program
    else if cfg.multidex then begin
      (* split app classes into classes.dex / classes2.dex style partitions *)
      let app_names =
        List.filter_map
          (fun (c : Ir.Jclass.t) -> if c.is_system then None else Some c.name)
          classes
      in
      let rec chunk xs =
        match xs with
        | [] -> []
        | _ ->
          let n = min 50 (List.length xs) in
          let part = List.filteri (fun i _ -> i < n) xs in
          let rest = List.filteri (fun i _ -> i >= n) xs in
          part :: chunk rest
      in
      Dex.Dexfile.of_partitions program (chunk app_names)
    end
    else Dex.Dexfile.of_program program
  in
  { name = cfg.name;
    config = cfg;
    program;
    manifest;
    dex;
    planted =
      shared_planted
      @ List.map (fun (r : Templates.result) -> r.planted) plant_results;
    size_stmts = Ir.Program.code_size program }

(** Approximate on-disk size in "MB" for reporting, from our calibration of
    statements per megabyte (see {!Corpus.stmts_per_mb}). *)
let size_mb ~stmts_per_mb app =
  float_of_int app.size_stmts /. float_of_int stmts_per_mb
