(** Always-on flight recorder: a process-wide {!Ring} of the most recent
    telemetry events, kept at near-disabled cost and dumped as structured
    JSON only when something goes wrong (or on explicit request).

    Recording is one [Atomic.get] plus a per-domain ring push — no mutex,
    no clock read beyond the one the caller usually already made — so it
    stays enabled in production runs where spans and [--profile] are off.
    Anomalies ({!anomaly}: partial outcomes, deadline hits, snapshot-load
    warnings, uncaught exceptions) bump a counter and, when a dump path
    has been armed ({!arm_auto_dump}), immediately write the whole ring
    plus a metrics snapshot to disk, so the last-N-events context of a
    failure survives the process. *)

type event = {
  ev_ts_us : float;         (** µs since the process origin ({!Span.now_us}) *)
  ev_dom : int;             (** recording domain id *)
  ev_pid : int;             (** logical process (app) id *)
  ev_kind : string;         (** "span" | "counter" | "trace" | "anomaly" | ... *)
  ev_name : string;
  ev_attrs : Span.attr list;
}

(** Per-domain ring capacity: [512].  Deliberately small — a post-mortem
    wants the recent past, and a shard this size stays cache-resident
    under the analysis working set. *)
val default_capacity : int

(* -- Recording ------------------------------------------------------- *)

(** The recorder starts enabled; {!Obs.disable} turns it off for
    benchmark baselines. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Record one event on the calling domain's shard.  [ts_us] defaults to
    a fresh {!Span.now_us} reading.  A no-op when disabled. *)
val record :
  ?ts_us:float -> ?attrs:Span.attr list -> kind:string -> name:string ->
  unit -> unit

(** One sample of a named numeric series (rendered as a Chrome 'C'
    counter event by the trace exporter). *)
val counter_sample : ?ts_us:float -> name:string -> float -> unit

(** Record an [anomaly.<kind>] event, bump the anomaly counter, and — if
    a dump path is armed — rewrite the dump immediately (anomalies are
    rare; losing the ring to a crash right after one would defeat the
    recorder).  Write failures are swallowed. *)
val anomaly :
  ?ts_us:float -> ?attrs:Span.attr list -> kind:string -> name:string ->
  unit -> unit

(** Route uncaught exceptions through the recorder: the crash is recorded
    as an anomaly (triggering an armed dump) before the default
    fatal-error report is printed. *)
val install_crash_handler : unit -> unit

(* -- Anomaly auto-dump ----------------------------------------------- *)

(** Arm automatic dumping: every subsequent {!anomaly} rewrites [path]
    with the current ring contents.  Anomaly-free runs never touch the
    file. *)
val arm_auto_dump : string -> unit

val disarm : unit -> unit
val armed : unit -> string option

(** Write the current dump ({!render_json}) to [path] now. *)
val write : ?note:string -> string -> unit

(* -- Introspection --------------------------------------------------- *)

(** Events currently retained, in timestamp order. *)
val events : unit -> event list

(** Events currently retained. *)
val length : unit -> int

(** Events ever recorded (retained + overwritten). *)
val recorded : unit -> int

(** Events lost to ring wrap-around (oldest-first eviction). *)
val dropped : unit -> int

(** Anomalies recorded since start/{!reset}. *)
val anomalies : unit -> int

(* -- Rendering, validation, round-trip ------------------------------- *)

(** One event as a single-line JSON object. *)
val event_json : event -> string

(** Full dump: header (anomaly/recorded/dropped counts), embedded
    {!Metrics} snapshot, then one event object per line (oldest first).
    [note] records why the dump was taken (default ["on-demand"]). *)
val render : ?note:string -> event list -> string

(** {!render} over the current ring contents. *)
val render_json : ?note:string -> unit -> string

(** Check a dump's event-stream invariants: timestamps finite,
    non-negative and non-decreasing; kind and name non-empty. *)
val validate : event list -> (unit, string) result

(** Parse a dump produced by {!render} back into its event list (header
    and embedded metrics are skipped; [attrs] are dropped). *)
val parse : string -> (event list, string) result

(** Render, re-parse, and compare (ignoring attrs, at the renderer's
    timestamp precision). *)
val round_trips : event list -> bool

(** Forget everything: ring contents, anomaly count, armed path (tests). *)
val reset : unit -> unit
