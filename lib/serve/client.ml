(* Client side of the daemon protocol: one blocking connection, requests
   answered in order. *)

type t = { fd : Unix.file_descr }

let connect ?tcp ~socket () =
  let addr, domain =
    match tcp with
    | Some (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> Unix.inet_addr_loopback
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
    | None -> (Unix.ADDR_UNIX socket, Unix.PF_UNIX)
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Result.Error
      (Printf.sprintf "cannot connect to %s: %s"
         (match tcp with
          | Some (h, p) -> Printf.sprintf "%s:%d" h p
          | None -> socket)
         (Unix.error_message e))

(* Retry until the daemon's listener is up — the CI smoke's
   wait-for-socket. *)
let connect_retry ?(attempts = 100) ?(delay_s = 0.05) ?tcp ~socket () =
  let rec go n last =
    if n <= 0 then Result.Error last
    else
      match connect ?tcp ~socket () with
      | Ok c -> Ok c
      | Result.Error m ->
        Unix.sleepf delay_s;
        go (n - 1) m
  in
  go attempts "no attempts"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call t req =
  match Protocol.send_request t.fd req with
  | () -> Protocol.recv_response t.fd
  | exception Unix.Unix_error (e, _, _) ->
    Result.Error (Unix.error_message e)

let with_conn ?tcp ~socket f =
  match connect ?tcp ~socket () with
  | Result.Error m -> Result.Error m
  | Ok c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
