(* The CLI's analyze output, as reusable strings.  The daemon renders its
   responses through these exact formats, so a served report is
   byte-identical to the one-shot CLI's (the wall-clock header line is the
   only varying part, and it varies between any two runs). *)

module D = Backdroid.Driver
module Sinks = Framework.Sinks

let analyzed_line ~app_name ~seconds (r : D.result) =
  Printf.sprintf "analyzed %s in %.3fs: %d sink calls" app_name seconds
    r.D.stats.D.sink_calls

let report_line (rep : D.sink_report) =
  Printf.sprintf "  [%s] %s at %s:%d reachable=%b fact=%s%s"
    (Backdroid.Detectors.verdict_to_string rep.D.verdict)
    rep.D.sink.Sinks.name
    (Ir.Jsig.meth_to_string rep.D.meth)
    rep.D.site rep.D.reachable
    (Backdroid.Facts.to_string rep.D.fact)
    (match rep.D.outcome with
     | Backdroid.Context.Complete -> ""
     | Backdroid.Context.Partial _ ->
       " [" ^ Backdroid.Context.outcome_to_string rep.D.outcome ^ "]")

let report_lines (r : D.result) = List.map report_line r.D.reports

let stats_line (r : D.result) =
  let s = r.D.stats in
  Printf.sprintf
    "stats: %d searches (%.1f%% cached), %d SSG nodes, %d SSG edges, %d \
     loops, %d partial sinks, %d replayed sinks, %d/7 index categories built"
    s.D.searches_total
    (100.0 *. s.D.search_cache_rate)
    s.D.ssg_nodes s.D.ssg_edges
    (Backdroid.Loopdetect.total s.D.loops)
    s.D.partial_sinks s.D.replayed_sinks s.D.index_categories_built

let render ~app_name ~seconds r =
  let b = Buffer.create 256 in
  Buffer.add_string b (analyzed_line ~app_name ~seconds r);
  Buffer.add_char b '\n';
  List.iter
    (fun l ->
       Buffer.add_string b l;
       Buffer.add_char b '\n')
    (report_lines r);
  Buffer.add_string b (stats_line r);
  Buffer.add_char b '\n';
  Buffer.contents b
