(* BackDroid command-line interface.

   Subcommands:
     generate    - generate a synthetic app and print its stats / dex text
     analyze     - run BackDroid on a generated app and print the reports
     compare     - run BackDroid and the whole-app baseline side by side
     experiments - regenerate the paper's tables and figures *)

open Cmdliner
module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks

let shape_conv =
  let parse s =
    match List.find_opt (fun sh -> Shape.to_string sh = s) Shape.all with
    | Some sh -> Ok sh
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown shape %S (one of: %s)" s
              (String.concat ", " (List.map Shape.to_string Shape.all))))
  in
  Arg.conv (parse, fun ppf sh -> Fmt.string ppf (Shape.to_string sh))

let sink_names = Serve.Appspec.sink_names

let sink_conv =
  let parse s =
    match List.assoc_opt s sink_names with
    | Some sink -> Ok sink
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown sink %S (one of: %s)" s
              (String.concat ", " (List.map fst sink_names))))
  in
  Arg.conv (parse, fun ppf (s : Sinks.t) -> Fmt.string ppf s.name)

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let jobs_t =
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker-pool width: parallel sink groups within one app (analyze) \
           or parallel apps across the grid (experiments).  1 = sequential; \
           results are identical either way.  Defaults to all cores but one.")

let verbose_t =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ]
        ~doc:"Trace the bytecode searches guiding the analysis.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.Src.set_level Backdroid.Log.src (Some Logs.Debug)
  else Logs.Src.set_level Backdroid.Log.src (Some Logs.Warning)

let size_t =
  Arg.(
    value & opt float 10.0
    & info [ "size-mb" ] ~docv:"MB" ~doc:"Approximate app size in MB-equivalents.")

let shapes_t =
  Arg.(
    value
    & opt_all (pair ~sep:':' shape_conv sink_conv) []
    & info [ "plant" ] ~docv:"SHAPE:SINK"
        ~doc:"Plant a sink flow, e.g. --plant callback:cipher (repeatable).")

let insecure_t =
  Arg.(
    value & flag
    & info [ "insecure" ] ~doc:"Plant insecure parameter values (default secure).")

(* The one-shot CLI and the daemon build their apps from the same
   {!Serve.Appspec}, so a served analysis sees the identical program.
   Sinks travel by their registry key (["cipher"]), not their display
   label (["crypto-cipher"]) — only the key resolves on the other end. *)
let sink_key (sink : Sinks.t) =
  match List.find_opt (fun (_, s) -> s = sink) sink_names with
  | Some (key, _) -> key
  | None -> sink.Sinks.name

let spec_of ?(mutate_pct = 0.0) ~seed ~size_mb ~plants ~insecure () =
  { Serve.Appspec.seed; size_mb; insecure; mutate_pct;
    plants =
      List.map
        (fun (shape, sink) -> (Shape.to_string shape, sink_key sink))
        plants }

let make_app ?(build_dex = true) ~seed ~size_mb ~plants ~insecure () =
  match
    Serve.Appspec.generate ~build_dex
      (spec_of ~seed ~size_mb ~plants ~insecure ())
  with
  | Ok app -> app
  | Error e ->
    (* unreachable: the typed flags only produce known names *)
    Printf.eprintf "error: %s\n" e;
    exit 1

(* --- generate --- *)

let generate_cmd =
  let dump_dex =
    Arg.(value & flag & info [ "dump-dex" ] ~doc:"Print the dexdump plaintext.")
  in
  let run seed size_mb plants insecure dump_dex =
    let app = make_app ~seed ~size_mb ~plants ~insecure () in
    Printf.printf "app %s: %d classes, %d methods, %d stmts, %d dex lines\n"
      app.G.name
      (Ir.Program.class_count app.G.program)
      (Ir.Program.method_count app.G.program)
      app.G.size_stmts
      (Dex.Dexfile.line_count app.G.dex);
    List.iter
      (fun (p : Appgen.Templates.planted) ->
         Printf.printf "  planted %s sink (%s) insecure=%b reachable=%b in %s\n"
           p.sink.Sinks.name
           (Shape.to_string p.shape) p.insecure p.reachable p.sink_class)
      app.G.planted;
    if dump_dex then print_string (Dex.Dexfile.to_string app.G.dex)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic app")
    Term.(const run $ seed_t $ size_t $ shapes_t $ insecure_t $ dump_dex)

(* --- observability surface --- *)

let profile_t =
  Arg.(
    value & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Record hierarchical spans for the whole run and export them as \
           Chrome trace-event JSON to $(docv) (open in chrome://tracing or \
           Perfetto).  Also prints a per-phase self-time summary.")

let metrics_t =
  Arg.(
    value & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Print the merged counter/histogram snapshot after the run \
           (default: a table on stdout); with $(docv), write it as JSON \
           instead.")

let metrics_format_t =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("openmetrics", `Openmetrics) ]) `Json
    & info [ "metrics-format" ] ~docv:"FORMAT"
        ~doc:
          "Serialization for $(b,--metrics) $(i,FILE): $(b,json) (default) \
           or $(b,openmetrics) — the Prometheus/OpenMetrics text \
           exposition, counters as counter families and histograms as \
           summaries with p50/p90/p99 quantiles.")

let flight_t =
  Arg.(
    value & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Dump the always-on flight recorder (the last few thousand \
           span/metric/trace events, per-domain ring buffers) as \
           structured JSON to $(docv) after the run.  Without this flag \
           the recorder still runs, and anomalies — partial slices, \
           deadline hits, snapshot warnings, crashes — auto-dump it to \
           $(b,backdroid.flight.json); anomaly-free runs write nothing.")

let explain_t =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print each sink report's provenance ledger under its verdict: \
           resolver strategies taken with caller counts, searches issued \
           per category, budget spent vs cap, SSG size and wall time.")

(* Install the span recorder when [--profile] asks for one; metrics record
   by default (they are integer bumps on per-domain shards). *)
let setup_obs ~profile =
  match profile with
  | None -> None
  | Some _ ->
    let rec_ = Obs.Span.Recorder.create () in
    Obs.Span.Recorder.install rec_;
    Some rec_

(* The driver's end-of-run counter samples live in the flight ring; surface
   them on the profile timeline as Chrome 'C' events. *)
let flight_counters () =
  List.concat_map
    (fun (e : Obs.Flight.event) ->
       match e.ev_kind with
       | "counter" ->
         (* single-sample counter events ({!Obs.Flight.counter_sample}) *)
         (match List.assoc_opt "value" e.ev_attrs with
          | Some (Obs.Span.Float v) ->
            [ { Obs.Chrome.c_ts_us = e.ev_ts_us; c_pid = e.ev_pid;
                c_name = e.ev_name; c_value = v } ]
          | _ -> [])
       | "counters" ->
         (* batched per-run stats (Driver emits one event with every
            driver.* series as an integer attribute) *)
         List.filter_map
           (fun (name, v) ->
              match v with
              | Obs.Span.Int n ->
                Some
                  { Obs.Chrome.c_ts_us = e.ev_ts_us; c_pid = e.ev_pid;
                    c_name = name; c_value = float_of_int n }
              | _ -> None)
           e.ev_attrs
       | _ -> [])
    (Obs.Flight.events ())

let finish_obs ~profile ~metrics ~metrics_format ~app_name recorder =
  (match profile, recorder with
   | Some path, Some rec_ ->
     Obs.Span.set_sink None;
     let spans = Obs.Span.Recorder.spans rec_ in
     let n =
       Obs.Chrome.write ~pid_names:[ (0, app_name) ]
         ~counters:(flight_counters ()) path spans
     in
     Printf.printf "profile: %d spans (%d events) -> %s%s\n"
       (List.length spans) n path
       (let d = Obs.Span.Recorder.dropped rec_ in
        if d > 0 then Printf.sprintf " (%d dropped)" d else "");
     print_string (Obs.Summary.render (Obs.Summary.compute spans))
   | _ -> ());
  match metrics with
  | None -> ()
  | Some "-" ->
    (match metrics_format with
     | `Json ->
       print_string "metrics:\n";
       print_string (Obs.Metrics.render_table (Obs.Metrics.snapshot ()))
     | `Openmetrics ->
       print_string (Obs.Export.openmetrics (Obs.Metrics.snapshot ())))
  | Some path ->
    (match metrics_format with
     | `Json -> Obs.Metrics.write_json path (Obs.Metrics.snapshot ())
     | `Openmetrics ->
       Obs.Io.write_string path (Obs.Export.openmetrics (Obs.Metrics.snapshot ())));
    Printf.printf "metrics -> %s\n" path

(* --- analyze --- *)

let analyze_cmd =
  let dump_ssg =
    Arg.(value & flag & info [ "dump-ssg" ] ~doc:"Print each sink's SSG.")
  in
  let trace_t =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record one structured event per caller resolution (strategy, \
             query, hits, cache hits, latency) and dump them as JSON to \
             $(docv).")
  in
  let time_limit_t =
    Arg.(
      value & opt (some float) None
      & info [ "time-limit-ms" ] ~docv:"MS"
          ~doc:
            "Per-sink wall-clock slicing budget; exhausting it yields a \
             partial (not silently truncated) analysis.")
  in
  let subclass_aware =
    Arg.(
      value & flag
      & info [ "subclass-aware" ]
          ~doc:"Hierarchy-aware initial sink search (fixes the Sec. VI-C FNs).")
  in
  let eager_index_t =
    Arg.(
      value & flag
      & info [ "eager-index" ]
          ~doc:
            "Build all search postings categories at engine construction \
             instead of lazily on first query of each category.")
  in
  let save_index_t =
    Arg.(
      value & opt ~vopt:(Some "auto") (some string) None
      & info [ "save-index" ] ~docv:"PATH"
          ~doc:
            "Serialize the preprocessing snapshot (symbol table, dexdump \
             lines, hit arena, all postings) to $(docv) after building it; \
             without a value, an auto path derived from the app id and \
             snapshot format version in the current directory.")
  in
  let load_index_t =
    Arg.(
      value & opt ~vopt:(Some "auto") (some string) None
      & info [ "load-index" ] ~docv:"PATH"
          ~doc:
            "Warm start: map the preprocessing snapshot at $(docv) (or the \
             auto path, without a value) instead of disassembling and \
             indexing; the analysis output is identical to a cold run.")
  in
  let prefault_t =
    Arg.(
      value & flag
      & info [ "prefault" ]
          ~doc:
            "With $(b,--load-index): extend the always-on hot-section \
             prefault (hit arena, postings directories) to every mapped \
             page — postings bodies and line texts — right after \
             validation, so even text-scan queries never stall on page \
             faults.  Results are identical either way.")
  in
  let delta_index_t =
    Arg.(
      value & opt ~vopt:(Some "auto") (some string) None
      & info [ "delta-index" ] ~docv:"PATH"
          ~doc:
            "Incremental re-analysis: diff the generated app against the \
             old snapshot at $(docv) (or the auto path, without a value) by \
             per-class content hash, re-disassemble and re-index only \
             changed classes, and replay the snapshot's persisted per-sink \
             results where their slice footprint is untouched.  The output \
             is identical to a cold run.")
  in
  let mutate_pct_t =
    Arg.(
      value & opt float 0.0
      & info [ "mutate-pct" ] ~docv:"FRACTION"
          ~doc:
            "Mutate this fraction of the app's filler classes after \
             generation (deterministic; at least one class when positive) — \
             simulates analysing version N+1 of the same app, e.g. with \
             $(b,--delta-index).")
  in
  let rules_t =
    Arg.(
      value & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:
            "Load the detection-rule set from $(docv) (s-expression rule \
             syntax; see the README) instead of the built-in paper rules.")
  in
  let run seed size_mb plants insecure dump_ssg subclass_aware eager_index jobs
      verbose trace_file time_limit_ms save_index load_index prefault
      delta_index mutate_pct rules_file profile metrics metrics_format flight
      explain =
    setup_logs verbose;
    (* flight recorder: always recording; anomalies (and crashes, via the
       handler) auto-dump to the armed path.  Anomaly-free runs without
       --flight never touch the file. *)
    Obs.Flight.install_crash_handler ();
    Obs.Flight.arm_auto_dump
      (Option.value flight ~default:"backdroid.flight.json");
    if load_index <> None && delta_index <> None then begin
      Printf.eprintf "error: --load-index and --delta-index are exclusive\n";
      exit 1
    end;
    let rules =
      match rules_file with
      | None -> Backdroid.Driver.default_config.Backdroid.Driver.rules
      | Some path ->
        (match Rules.Parse.load path with
         | Ok rules ->
           Printf.printf "rules: %d loaded from %s\n" (List.length rules) path;
           rules
         | Error e ->
           Printf.eprintf "error: %s\n" (Rules.Parse.error_to_string e);
           exit 1)
    in
    let recorder = setup_obs ~profile in
    let warm = load_index <> None || delta_index <> None in
    let app = make_app ~build_dex:(not warm) ~seed ~size_mb ~plants ~insecure () in
    let app =
      if mutate_pct > 0.0 then
        G.mutate ~build_dex:(not warm) ~pct:mutate_pct app
      else app
    in
    let index_path = function
      | "auto" -> Store.Snapshot.default_path ~dir:"." ~app_id:app.G.name
      | p -> p
    in
    let engine =
      match load_index with
      | None -> None
      | Some p ->
        let path = index_path p in
        (match Store.Snapshot.load ~prefault ~path app.G.program with
         | Ok e ->
           Printf.printf "index: loaded %s\n" path;
           Some e
         | Error err ->
           Printf.eprintf "error: cannot load index %s: %s\n" path
             (Store.Codec.error_to_string err);
           exit 1)
    in
    (* incremental: patch the old snapshot against the (possibly mutated)
       program, and pick up its persisted per-sink results for replay *)
    let engine, results =
      match delta_index with
      | None -> (engine, None)
      | Some p ->
        let path = index_path p in
        (match Store.Snapshot.delta ~path app.G.program with
         | Ok (e, rep) ->
           Printf.printf "index: delta-patched %s\n" path;
           Printf.printf "delta: %s\n"
             (Store.Snapshot.delta_report_to_string rep);
           let results =
             match Store.Snapshot.load_results ~path with
             | Ok [||] -> None
             | Ok strs ->
               (match Backdroid.Resultcache.of_strings strs with
                | Ok rc ->
                  Printf.printf "delta: %d persisted sink result(s)\n"
                    (Backdroid.Resultcache.length rc);
                  Some rc
                | Error m ->
                  Printf.eprintf
                    "warning: ignoring malformed result cache: %s\n" m;
                  None)
             | Error _ -> None
           in
           (Some e, results)
         | Error err ->
           Printf.eprintf "error: cannot delta-load index %s: %s\n" path
             (Store.Codec.error_to_string err);
           exit 1)
    in
    let engine =
      match save_index with
      | None -> engine
      | Some _ ->
        (* resolve the engine now; the save itself runs after the analysis
           so the snapshot can carry this run's per-sink results *)
        (match engine with
         | Some e -> Some e
         | None -> Some (Bytesearch.Engine.create app.G.dex))
    in
    let ring =
      match trace_file with
      | Some _ -> Some (Backdroid.Trace.Ring.create ())
      | None -> None
    in
    let cfg =
      { Backdroid.Driver.default_config with
        Backdroid.Driver.rules;
        subclass_aware_initial_search = subclass_aware;
        eager_index;
        jobs;
        budget =
          { Backdroid.Context.default_budget with
            Backdroid.Context.time_limit_ms };
        trace =
          (match ring with
           | Some ring -> Backdroid.Trace.Ring.sink ring
           | None -> Backdroid.Trace.log_sink) }
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Backdroid.Driver.analyze ~cfg ?engine ?results ~dex:app.G.dex
        ~manifest:app.G.manifest ()
    in
    let dt = Unix.gettimeofday () -. t0 in
    (match save_index with
     | None -> ()
     | Some p ->
       let path = index_path p in
       let e = Option.get engine in
       let results =
         Backdroid.Resultcache.to_strings
           (Backdroid.Driver.export_results
              ~dex:(Bytesearch.Engine.dexfile e) r)
       in
       let bytes =
         Store.Snapshot.save ~ruleset_hash:(Rules.Rule.hash_list rules)
           ~results ~path e
       in
       Printf.printf "index: saved %s (%d bytes, %d cached result(s))\n" path
         bytes
         (max 0 (Array.length results - 1)));
    (* served responses render through the same [Serve.Render] formats, so
       daemon output is byte-identical to this one-shot path *)
    print_endline (Serve.Render.analyzed_line ~app_name:app.G.name ~seconds:dt r);
    List.iter
      (fun (rep : Backdroid.Driver.sink_report) ->
         print_endline (Serve.Render.report_line rep);
         if explain then print_string (Backdroid.Provenance.render rep.prov);
         if dump_ssg then
           match rep.ssg with
           | Some ssg -> Fmt.pr "%a" Backdroid.Ssg.pp ssg
           | None -> ())
      r.Backdroid.Driver.reports;
    print_endline (Serve.Render.stats_line r);
    (match trace_file, ring with
     | Some path, Some ring ->
       Backdroid.Trace.Ring.write_json ring path;
       Printf.printf "trace: %d resolutions recorded -> %s\n"
         (Backdroid.Trace.Ring.recorded ring)
         path
     | _ -> ());
    (match flight with
     | None -> ()
     | Some path ->
       Obs.Flight.write ~note:"on-demand" path;
       Printf.printf "flight: %d events -> %s\n" (Obs.Flight.length ()) path);
    finish_obs ~profile ~metrics ~metrics_format ~app_name:app.G.name recorder
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run BackDroid on a generated app")
    Term.(
      const run $ seed_t $ size_t $ shapes_t $ insecure_t $ dump_ssg
      $ subclass_aware $ eager_index_t $ jobs_t $ verbose_t $ trace_t
      $ time_limit_t $ save_index_t $ load_index_t $ prefault_t
      $ delta_index_t $ mutate_pct_t $ rules_t $ profile_t $ metrics_t
      $ metrics_format_t $ flight_t $ explain_t)

(* --- compare --- *)

let compare_cmd =
  let timeout_t =
    Arg.(
      value & opt float 2.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Baseline timeout (stands in for the paper's 300 minutes).")
  in
  let run seed size_mb plants insecure timeout_s =
    let app = make_app ~seed ~size_mb ~plants ~insecure () in
    let bd, _ = Evalharness.Runner.run_backdroid app in
    let am, _ = Evalharness.Runner.run_amandroid ~timeout_s app in
    Printf.printf "%-14s %-10s %-10s %-8s\n" "tool" "time(s)" "insecure" "status";
    let status (m : Evalharness.Runner.measurement) =
      if m.timed_out then "TIMEOUT" else if m.errored then "ERROR" else "ok"
    in
    List.iter
      (fun (m : Evalharness.Runner.measurement) ->
         Printf.printf "%-14s %-10.3f %-10d %-8s\n"
           (Evalharness.Runner.tool_name m.tool)
           m.seconds m.insecure (status m))
      [ bd; am ]
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run BackDroid and the baseline side by side")
    Term.(const run $ seed_t $ size_t $ shapes_t $ insecure_t $ timeout_t)

(* --- rules --- *)

let rules_cmd =
  let set_t =
    Arg.(
      value
      & opt (enum [ ("primary", `Primary); ("catalog", `Catalog);
                    ("extended", `Extended) ])
          `Extended
      & info [ "set" ] ~docv:"SET"
          ~doc:
            "Which built-in rule set to print: $(b,primary) (the paper's \
             two misuse classes), $(b,catalog) (plus the auxiliary \
             report-only sinks) or $(b,extended) (plus the WebView / SQL / \
             intent-redirection families).")
  in
  let check_t =
    Arg.(
      value & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Validate the rule file at $(docv) instead of printing a \
             built-in set; exits non-zero with a positioned diagnostic on \
             the first error.")
  in
  let run set check =
    match check with
    | Some path ->
      (match Rules.Parse.load path with
       | Ok rules ->
         Printf.printf "%s: %d rule(s) ok (hash %x)\n" path (List.length rules)
           (Rules.Rule.hash_list rules)
       | Error e ->
         Printf.eprintf "error: %s\n" (Rules.Parse.error_to_string e);
         exit 1)
    | None ->
      let rules =
        match set with
        | `Primary -> Rules.Builtin.primary
        | `Catalog -> Rules.Builtin.catalog
        | `Extended -> Rules.Builtin.extended
      in
      print_string (Rules.Rule.list_to_source rules)
  in
  Cmd.v
    (Cmd.info "rules"
       ~doc:"Print the built-in detection rules (or validate a rule file)")
    Term.(const run $ set_t $ check_t)

(* --- experiments --- *)

let experiments_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Small corpus and scaled-down app sizes.")
  in
  let count_t =
    Arg.(
      value & opt (some int) None
      & info [ "count" ] ~docv:"N" ~doc:"Corpus size (default 144).")
  in
  let snapshot_dir_t =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Warm-cache mode: save each app's preprocessing snapshot into \
             $(docv) on first encounter and map it back on the next run, \
             skipping disassembly and index construction.")
  in
  let run quick count jobs snapshot_dir =
    let opts =
      if quick then
        { Evalharness.Experiments.default_opts with
          Evalharness.Experiments.scale = 0.3; count = 30; timeout_s = 0.6;
          flowdroid_timeout_s = 0.6 }
      else Evalharness.Experiments.default_opts
    in
    let opts =
      match count with
      | Some c -> { opts with Evalharness.Experiments.count = c }
      | None -> opts
    in
    let opts = { opts with Evalharness.Experiments.jobs; snapshot_dir } in
    Evalharness.Experiments.run_all ~opts ()
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ quick $ count_t $ jobs_t $ snapshot_dir_t)

(* --- daemon --- *)

let socket_t =
  Arg.(
    value & opt string "backdroid.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let daemon_cmd =
  let tcp_t =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Additionally listen on 127.0.0.1:$(docv).")
  in
  let max_resident_t =
    Arg.(
      value & opt int 4
      & info [ "max-resident" ] ~docv:"N"
          ~doc:"Hot-engine LRU: keep at most $(docv) engines resident.")
  in
  let max_resident_mb_t =
    Arg.(
      value & opt float 512.0
      & info [ "max-resident-mb" ] ~docv:"MB"
          ~doc:
            "Hot-engine LRU: evict least-recently-used engines once the \
             resident estimate exceeds $(docv) MB.")
  in
  let max_inflight_t =
    Arg.(
      value & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission control: at most $(docv) analyze/query requests \
             in flight (default 2*jobs).")
  in
  let queue_timeout_t =
    Arg.(
      value & opt float 200.0
      & info [ "queue-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Admission control: reject (typed, not queued forever) a \
             request that cannot get a slot within $(docv) ms.")
  in
  let drain_timeout_t =
    Arg.(
      value & opt float 5000.0
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Graceful shutdown: wait up to $(docv) ms for in-flight \
             requests before exiting.")
  in
  let rules_t =
    Arg.(
      value & opt (some string) None
      & info [ "rules" ] ~docv:"FILE"
          ~doc:"Load the daemon's detection-rule set from $(docv).")
  in
  let run socket tcp jobs verbose max_resident max_resident_mb max_inflight
      queue_timeout_ms drain_timeout_ms rules_file =
    setup_logs verbose;
    Obs.Flight.install_crash_handler ();
    Obs.Flight.arm_auto_dump "backdroidd.flight.json";
    let rules =
      match rules_file with
      | None -> Backdroid.Driver.default_config.Backdroid.Driver.rules
      | Some path ->
        (match Rules.Parse.load path with
         | Ok rules -> rules
         | Error e ->
           Printf.eprintf "error: %s\n" (Rules.Parse.error_to_string e);
           exit 1)
    in
    let cfg =
      { Serve.Server.default_config with
        Serve.Server.socket;
        tcp = Option.map (fun p -> ("127.0.0.1", p)) tcp;
        jobs;
        max_resident;
        max_resident_mb;
        max_inflight = Option.value max_inflight ~default:(max 2 (2 * jobs));
        queue_timeout_ms;
        drain_timeout_ms;
        rules }
    in
    Printf.printf
      "backdroidd: listening on %s (jobs=%d, max-resident=%d)\n%!" socket
      jobs max_resident;
    match Serve.Server.run cfg with
    | Ok () -> Printf.printf "backdroidd: shut down cleanly\n%!"
    | Error m ->
      Printf.eprintf "error: %s\n" m;
      exit 1
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Run backdroidd: a resident analysis service keeping hot engines \
          mapped behind an LRU and serving analyze/query/stats/shutdown \
          over a Unix-domain socket")
    Term.(
      const run $ socket_t $ tcp_t $ jobs_t $ verbose_t $ max_resident_t
      $ max_resident_mb_t $ max_inflight_t $ queue_timeout_t
      $ drain_timeout_t $ rules_t)

(* --- client --- *)

let snapshot_t =
  Arg.(
    value & opt (some string) None
    & info [ "snapshot" ] ~docv:"PATH"
        ~doc:
          "Have the daemon serve this app from the snapshot at $(docv) \
           (loading it prefaulted on first touch, saving it there when \
           absent).")

let mutate_pct_client_t =
  Arg.(
    value & opt float 0.0
    & info [ "mutate-pct" ] ~docv:"FRACTION"
        ~doc:"Mutate this fraction of filler classes (version N+1).")

let client_fail m =
  Printf.eprintf "error: %s\n" m;
  exit 1

let client_call socket req =
  match
    Serve.Client.with_conn ~socket (fun c -> Serve.Client.call c req)
  with
  | Ok resp -> resp
  | Error m -> client_fail m

let client_analyze_cmd =
  let timing_t =
    Arg.(
      value & flag
      & info [ "timing" ]
          ~doc:
            "Print the served latency and cache state to stderr (stdout \
             stays byte-identical to one-shot $(b,analyze)).")
  in
  let time_limit_t =
    Arg.(
      value & opt (some float) None
      & info [ "time-limit-ms" ] ~docv:"MS"
          ~doc:"Per-sink wall-clock slicing budget for this request.")
  in
  let run socket seed size_mb plants insecure mutate_pct snapshot
      time_limit_ms timing =
    let spec = spec_of ~mutate_pct ~seed ~size_mb ~plants ~insecure () in
    match
      client_call socket
        (Serve.Protocol.Analyze { spec; snapshot; time_limit_ms })
    with
    | Serve.Protocol.Analyzed { text; cache; wall_us } ->
      print_string text;
      if timing then
        Printf.eprintf "served: %s in %.1fus\n"
          (Serve.Protocol.cache_to_string cache)
          wall_us
    | Serve.Protocol.Rejected r ->
      Printf.eprintf "rejected: %s\n" (Serve.Protocol.reject_to_string r);
      exit 2
    | Serve.Protocol.Error m -> client_fail m
    | _ -> client_fail "unexpected response"
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Analyze an app through the daemon")
    Term.(
      const run $ socket_t $ seed_t $ size_t $ shapes_t $ insecure_t
      $ mutate_pct_client_t $ snapshot_t $ time_limit_t $ timing_t)

let client_query_cmd =
  let kind_t =
    Arg.(
      value & opt string "invocation"
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Query kind: invocation, new-instance, const-class, \
             const-string, field, static-field, class-use or raw.")
  in
  let operand_t =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"OPERAND" ~doc:"The query operand.")
  in
  let run socket seed size_mb plants insecure mutate_pct snapshot kind
      operand =
    let spec = spec_of ~mutate_pct ~seed ~size_mb ~plants ~insecure () in
    match
      client_call socket
        (Serve.Protocol.Query { spec; snapshot; kind; operand })
    with
    | Serve.Protocol.Queried { total; lines; wall_us } ->
      Printf.printf "%d hit(s) in %.1fus\n" total wall_us;
      List.iter print_endline lines;
      if total > List.length lines then
        Printf.printf "  ... (%d more)\n" (total - List.length lines)
    | Serve.Protocol.Rejected r ->
      Printf.eprintf "rejected: %s\n" (Serve.Protocol.reject_to_string r);
      exit 2
    | Serve.Protocol.Error m -> client_fail m
    | _ -> client_fail "unexpected response"
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run one bytecode search against the daemon's resident engine")
    Term.(
      const run $ socket_t $ seed_t $ size_t $ shapes_t $ insecure_t
      $ mutate_pct_client_t $ snapshot_t $ kind_t $ operand_t)

let client_stats_cmd =
  let run socket =
    match client_call socket Serve.Protocol.Stats with
    | Serve.Protocol.Stats_json s -> print_endline s
    | Serve.Protocol.Error m -> client_fail m
    | _ -> client_fail "unexpected response"
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print the daemon's counters as JSON")
    Term.(const run $ socket_t)

let client_shutdown_cmd =
  let run socket =
    match client_call socket Serve.Protocol.Shutdown with
    | Serve.Protocol.Shutdown_ok -> print_endline "shutdown: ok"
    | Serve.Protocol.Error m -> client_fail m
    | _ -> client_fail "unexpected response"
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to drain and exit cleanly")
    Term.(const run $ socket_t)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running backdroidd over its Unix-domain socket")
    [ client_analyze_cmd; client_query_cmd; client_stats_cmd;
      client_shutdown_cmd ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "backdroid" ~version:"1.0.0"
             ~doc:
               "Targeted inter-procedural analysis of (synthetic) Android apps \
                via on-the-fly bytecode search")
          [ generate_cmd; analyze_cmd; compare_cmd; rules_cmd;
            experiments_cmd; daemon_cmd; client_cmd ]))
