examples/ssl_audit.mli:
