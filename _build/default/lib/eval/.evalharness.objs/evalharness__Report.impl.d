lib/eval/report.ml: List Printf Runner String
