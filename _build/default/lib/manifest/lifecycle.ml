(** Domain knowledge about Android lifecycle handlers (Sec. IV-E).

    Since there are only four component kinds, a fixed table suffices: for
    each kind we list the handler sub-signatures and, for the special search
    over lifecycle handlers, which earlier handlers "invoke" (precede) a given
    handler in the lifecycle state machine. *)

let activity_handlers =
  [ "void onCreate(android.os.Bundle)";
    "void onStart()";
    "void onRestart()";
    "void onResume()";
    "void onPause()";
    "void onStop()";
    "void onDestroy()" ]

let service_handlers =
  [ "void onCreate()";
    "int onStartCommand(android.content.Intent,int,int)";
    "android.os.IBinder onBind(android.content.Intent)";
    "void onDestroy()" ]

let receiver_handlers =
  [ "void onReceive(android.content.Context,android.content.Intent)" ]

let provider_handlers = [ "boolean onCreate()" ]

let handlers_of_kind = function
  | Component.Activity -> activity_handlers
  | Service -> service_handlers
  | Receiver -> receiver_handlers
  | Provider -> provider_handlers

let all_handler_subsigs =
  activity_handlers @ service_handlers @ receiver_handlers @ provider_handlers

let is_lifecycle_subsig subsig = List.mem subsig all_handler_subsigs

(** Handlers guaranteed to run before [subsig] in the same component —
    the "other lifecycle handlers that invoke the callee handler".  E.g.
    [onResume] is preceded by [onStart], which is preceded by [onCreate]. *)
let predecessors subsig =
  match subsig with
  | "void onStart()" -> [ "void onCreate(android.os.Bundle)"; "void onRestart()" ]
  | "void onRestart()" -> [ "void onStop()" ]
  | "void onResume()" -> [ "void onStart()" ]
  | "void onPause()" -> [ "void onResume()" ]
  | "void onStop()" -> [ "void onPause()" ]
  | "void onDestroy()" -> [ "void onStop()" ]
  | "int onStartCommand(android.content.Intent,int,int)"
  | "android.os.IBinder onBind(android.content.Intent)" -> [ "void onCreate()" ]
  | _ -> []

(** Handlers that are direct entry points: the system calls them first, so a
    dataflow arriving here needs no further backward search. *)
let is_entry_handler subsig =
  match subsig with
  | "void onCreate(android.os.Bundle)"
  | "void onCreate()"
  | "boolean onCreate()"
  | "int onStartCommand(android.content.Intent,int,int)"
  | "android.os.IBinder onBind(android.content.Intent)"
  | "void onReceive(android.content.Context,android.content.Intent)" -> true
  | _ -> is_lifecycle_subsig subsig
(* Conservatively, every registered lifecycle handler is system-invoked and
   hence an entry; [predecessors] exists to keep tracking *dataflow* that a
   handler consumes from an earlier handler via fields. *)
