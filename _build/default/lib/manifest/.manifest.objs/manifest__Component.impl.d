lib/manifest/component.ml:
