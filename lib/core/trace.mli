(** Structured trace events for the caller-resolution broker.

    Every {!Resolver.callers} resolution emits one event through a pluggable
    sink: the strategy that ran, the query it issued, the number of caller
    records returned, the engine searches it cost (split into cache hits and
    misses) and the elapsed wall clock.  {!log_sink} (the default) forwards
    to [Log.debug]; {!Ring} buffers events in memory for the CLI's
    [--trace out.json] dump and the bench's per-strategy latency columns.

    Under [--jobs N] the search counters are read from the shared engine, so
    a concurrent domain's searches can leak into another event's delta; the
    trace is an observability aid, not part of the deterministic results. *)

type event = {
  strategy : string;   (** basic | advanced | clinit | icc | lifecycle *)
  query : string;      (** human-readable query / callee description *)
  hits : int;          (** caller records resolved *)
  searches : int;      (** engine search commands issued *)
  cached : int;        (** of which served from the command cache *)
  elapsed_us : float;  (** wall-clock resolution cost *)
}

type sink = event -> unit

val null : sink
val log_sink : sink
val event_to_json : event -> string

(** Mutex-guarded bounded buffer: safe to share across domains; keeps the
    most recent [capacity] events. *)
module Ring : sig
  type t

  val create : ?capacity:int -> unit -> t
  val sink : t -> sink

  (** Events currently buffered (oldest first). *)
  val events : t -> event list

  (** Number of buffered events ([<= capacity]). *)
  val length : t -> int

  (** Total events ever recorded (may exceed {!length}). *)
  val recorded : t -> int

  val to_json : t -> string
  val write_json : t -> string -> unit
end

(** Per-strategy totals for the bench's latency columns. *)
type agg = {
  a_count : int;
  a_hits : int;
  a_searches : int;
  a_cached : int;
  a_total_us : float;
  a_max_us : float;
}

(** Aggregate events per strategy, sorted by strategy name. *)
val aggregate : event list -> (string * agg) list

val mean_us : agg -> float
