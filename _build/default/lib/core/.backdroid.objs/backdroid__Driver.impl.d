lib/core/driver.ml: Bytesearch Detectors Dex Facts Forward Framework Hashtbl Ir Jclass Jsig List Log Loopdetect Manifest Perapp_ssg Program Reflection Sigformat Slicer Ssg
