(** Code-pattern templates.  Each template plants one sink API call wrapped in
    a specific code shape (see {!module:Shape}) together with the app classes
    and manifest components that make the flow (un)reachable, and returns the
    ground truth used to score detection accuracy. *)

module B = Ir.Builder
module Api = Framework.Api
module Sinks = Framework.Sinks
module Component = Manifest.Component
type ctx = { ns : string; rng : Rng.t; }
type planted = {
  shape : Shape.t;
  sink : Sinks.t;
  insecure : bool;
  reachable : bool;
  spec : string;
  sink_class : string;
}
type result = {
  classes : Ir.Jclass.t list;
  components : Component.t list;
  planted : planted;
}
val void : Ir.Types.t
val ctor_with_super :
  ?params:Ir.Types.t list ->
  cls:string -> super:string -> (B.mb -> unit) -> Ir.Jmethod.t
val plain_ctor : cls:string -> super:string -> Ir.Jmethod.t

(** Activity class with a generated [onCreate] plus its manifest entry. *)
val make_activity :
  ?extra_methods:(string -> Ir.Jmethod.t list) ->
  ?register:bool ->
  ctx ->
  simple:string ->
  on_create:(B.mb -> unit) -> unit -> Ir.Jclass.t * Component.t list

(** The security-relevant value passed to the sink.  May need auxiliary app
    classes (e.g. a trust-all verifier); returns the value's local, the extra
    classes and the ground-truth spec string. *)
val spec_value :
  ctx ->
  B.mb ->
  Sinks.t -> insecure:bool -> Ir.Value.local * Ir.Jclass.t list * string

(** IR type of the value a sink-bound chain passes along. *)
val chain_ty : Sinks.t -> Ir.Types.t

(** Emit the sink API call itself, consuming [value]. *)
val emit_sink : B.mb -> Sinks.t -> value:Ir.Value.local -> unit

(** A chain of [n] public-static hop methods [step0 .. step(n-1)] in class
    [cls]; each passes its parameter to the next, the last runs [last].
    Returns the class and the signature of [step0]. *)
val static_chain :
  cls:string ->
  ty:Ir.Types.t ->
  n:int ->
  last:(B.mb -> Ir.Value.local -> unit) -> Ir.Jclass.t * Ir.Jsig.meth
val mk_planted :
  ?reachable:bool ->
  'a ->
  Shape.t ->
  Sinks.t -> insecure:bool -> spec:string -> sink_class:string -> planted

(** entry activity onCreate → private doWork(v) → static chain → sink *)
val plant_direct : ctx -> sink:Sinks.t -> insecure:bool -> result

(** entry → static chain only *)
val plant_static_chain : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Base.start(v) has the sink; Child extends Base without overriding; the
    caller invokes through a Child-typed receiver. *)
val plant_child_class : ctx -> sink:Sinks.t -> insecure:bool -> result

(** NetServer overrides SuperServer.start; call goes through the super-class
    type, so the callee's own signature never appears in the bytecode. *)
val plant_super_class : ctx -> sink:Sinks.t -> insecure:bool -> result

(** TaskImpl implements an app interface; call goes through the interface. *)
val plant_interface : ctx -> sink:Sinks.t -> insecure:bool -> result

(** A listener class storing the value in a field; flow continues in
    [onClick] after registration via [setOnClickListener]. *)
val plant_callback : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Runnable job passed to [new Thread(job).start()]. *)
val plant_async_thread : ctx -> sink:Sinks.t -> insecure:bool -> result

(** The Fig. 4 pattern: runnable handed through a util chain that ends in
    [Executor.execute]. *)
val plant_async_executor : ctx -> sink:Sinks.t -> insecure:bool -> result

(** AsyncTask subclass; flow continues in [doInBackground]. *)
val plant_async_task : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Sink under a <clinit>; reachability decided by the recursive class-use
    search.  [reachable] controls whether an entry class transitively uses
    the initialized class. *)
val plant_static_init :
  ?reachable:bool -> ctx -> sink:Sinks.t -> insecure:bool -> result

(** Sink parameter read from a static field whose value is only assigned in
    an off-path <clinit> (Fig. 6's MP3LocalServer.PORT pattern). *)
val plant_clinit_field : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Explicit ICC: the activity starts a service with an Intent extra; the
    sink consumes the extra in [onStartCommand]. *)
val plant_icc_explicit : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Implicit ICC via a broadcast action string. *)
val plant_icc_implicit : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Value stored into an activity field in [onCreate], consumed by the sink
    in [onResume] — exercises the lifecycle-handler search. *)
val plant_lifecycle_field : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Sink inside a method that nothing ever calls. *)
val plant_dead_code : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Activity subclass with a sink flow that is NOT registered in the
    manifest — the deactivated-component false-positive class. *)
val plant_unregistered : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Sink inside one of the library packages Amandroid's liblist skips. *)
val skipped_lib_packages : string list
val plant_skipped_lib : ctx -> sink:Sinks.t -> insecure:bool -> result

(** The documented BackDroid FN: the sink API is only invoked through an app
    subclass of the sink's system class, so the initial search for the system
    signature finds nothing. *)
val plant_subclassed_sink : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Mutually recursive methods on the sink path: [process] and [retry] call
    each other, and [wrap] recurses on itself behind a Phi, so both the
    cross-method and the inner dead-loop detectors of Sec. IV-F fire while
    the dataflow still resolves through the Phi's second operand. *)
val plant_recursive : ctx -> sink:Sinks.t -> insecure:bool -> result

(** A group of [count] sink calls behind one shared utility class: every
    activity calls [CryptoHub.route], which fans out to per-sink [encI]
    methods.  Backtracking each sink re-searches [route]'s callers, so the
    search-command cache gets the repeated hits of Sec. IV-F. *)
val plant_shared_group :
  ctx ->
  sink:Sinks.t ->
  insecure:bool ->
  count:int -> Ir.Jclass.t list * Component.t list * planted list

(** The sink's containing method is only ever invoked through reflection:
    [Class.forName(...); getMethod("enc"); invoke(...)].  Invisible to the
    signature searches (and to CHA) unless reflection resolution rewrites it
    into a direct call first. *)
val plant_reflective : ctx -> sink:Sinks.t -> insecure:bool -> result

(** The cipher transformation string assembled at runtime with a
    StringBuilder ("AES" + "/ECB" + "/PKCS5Padding") — only the API models of
    the forward analysis can recover the full constant. *)
val plant_builder_spec : ctx -> sink:Sinks.t -> insecure:bool -> result

(** Plant one sink flow of the given shape. *)
val plant : ctx -> Shape.t -> sink:Sinks.t -> insecure:bool -> result
