(** Security verdicts over the propagated sink-parameter facts: the crypto
    (ECB) and SSL (hostname verification) misuse detectors of the paper's
    evaluation, plus reporting defaults for the auxiliary sinks. *)

open Ir
module Sinks = Framework.Sinks

type verdict =
  | Insecure
  | Secure
  | Unresolved  (** the dataflow representation did not decide the verdict *)

let verdict_to_string = function
  | Insecure -> "INSECURE"
  | Secure -> "secure"
  | Unresolved -> "unresolved"

(** Does the class's [verify] method constantly accept (return 1)?  Used for
    app-defined [javax.net.ssl.HostnameVerifier] implementations. *)
let verifier_accepts_all program cls =
  match Program.find_class program cls with
  | None -> None
  | Some c ->
    let verify =
      List.find_opt
        (fun (m : Jmethod.t) -> String.equal m.msig.Jsig.name "verify")
        c.methods
    in
    (match verify with
     | Some { Jmethod.body = Some body; _ } ->
       let returns_const =
         Array.fold_left
           (fun acc st ->
              match st with
              | Stmt.Return (Some (Value.Const (Value.Int_c i))) -> Some i
              | Stmt.Return (Some (Value.Local _)) -> acc
              | _ -> acc)
           None body
       in
       (match returns_const with
        | Some 1 -> Some true
        | Some _ -> Some false
        | None -> None)
     | Some _ | None -> None)

let classify_ssl program (fact : Facts.t) =
  match fact with
  | Facts.Static_ref f
    when Jsig.field_equal f Framework.Api.allow_all_hostname_verifier ->
    Insecure
  | Facts.New_obj o -> begin
      match o.Facts.cls with
      | "org.apache.http.conn.ssl.AllowAllHostnameVerifier" -> Insecure
      | "org.apache.http.conn.ssl.StrictHostnameVerifier"
      | "org.apache.http.conn.ssl.BrowserCompatHostnameVerifier" -> Secure
      | cls ->
        (match verifier_accepts_all program cls with
         | Some true -> Insecure
         | Some false -> Secure
         | None -> Unresolved)
    end
  | Facts.Const_str _ | Facts.Const_int _ | Facts.Arr _ | Facts.Static_ref _
  | Facts.Framework_input | Facts.Sym _ | Facts.Unknown -> Unresolved

let classify program (sink : Sinks.t) (fact : Facts.t) =
  match sink.kind with
  | Sinks.Crypto_cipher -> begin
      match fact with
      | Facts.Const_str spec ->
        if Sinks.cipher_spec_is_insecure spec then Insecure else Secure
      | Facts.Const_int _ | Facts.New_obj _ | Facts.Arr _ | Facts.Static_ref _
      | Facts.Framework_input | Facts.Sym _ | Facts.Unknown -> Unresolved
    end
  | Sinks.Ssl_hostname -> classify_ssl program fact
  | Sinks.Sms_send | Sinks.Server_socket | Sinks.Local_socket ->
    (* auxiliary sinks: report the resolved value; no misuse policy *)
    (match fact with
     | Facts.Const_str _ | Facts.Const_int _ -> Secure
     | _ -> Unresolved)
