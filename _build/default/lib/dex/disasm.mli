(** The "dexdump" of the pipeline: renders IR method bodies into
    dexdump-format plaintext instruction lines.  BackDroid's on-the-fly
    bytecode search is a text search over exactly this output. *)

type line = {
  text : string;
  owner : Ir.Jsig.meth option;
  owner_cls : string option;
  stmt_idx : int option;
}
val header : string -> string option -> line
val binop_mnemonic : Ir.Expr.binop -> string
val invoke_mnemonic : Ir.Expr.invoke_kind -> string

(** Per-method register naming: IR locals map to [vN] in first-use order. *)
type regmap = { tbl : (string, int) Hashtbl.t; mutable next : int; }
val reg : regmap -> Ir.Value.local -> string
val value_reg : regmap -> Ir.Value.t -> string
val invoke_line : regmap -> Ir.Expr.invoke -> string
val stmt_lines : regmap -> 'a -> Ir.Stmt.t -> string list
val method_lines : Ir.Jclass.t -> Ir.Jmethod.t -> line list
val class_lines : Ir.Jclass.t -> line list

(** Disassemble all non-system classes — the app dex content. *)
val program_lines : Ir.Program.t -> line list
