lib/dex/disasm.ml: Array Descriptor Hashtbl Ir List Printf String
