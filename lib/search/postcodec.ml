(* See postcodec.mli for the wire format.  Encoding is deterministic — the
   varint-vs-bitmap choice is a pure function of the run — so snapshot
   save -> load -> save stays byte-identical. *)

let tag_varint = 0
let tag_bitmap = 1

(* -- varints (LEB128, low 7 bits first) ------------------------------- *)

let put_varint buf n =
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

(* Fast unchecked decode: data was validated at load time. *)
let get_varint (b : Bvec.t) pos =
  let x = ref 0 and shift = ref 0 and p = ref pos in
  let continue_ = ref true in
  while !continue_ do
    let byte = Bvec.unsafe_u8 b !p in
    incr p;
    x := !x lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte < 0x80 then continue_ := false
  done;
  (!x, !p)

(* Careful decode for validation: bounds-checked, rejects overlong and
   overflowing encodings instead of wrapping. *)
let checked_varint (b : Bvec.t) pos ~limit =
  let rec go x shift p =
    if p >= limit then Error "varint truncated"
    else if shift > 62 then Error "varint overflow"
    else
      let byte = Bvec.get_u8 b p in
      let x = x lor ((byte land 0x7f) lsl shift) in
      if byte < 0x80 then Ok (x, p + 1) else go x (shift + 7) (p + 1)
  in
  go 0 0 pos

(* -- encoding --------------------------------------------------------- *)

(* Bitmap payload: 8 bytes per 64-slot word over [first, last].  Chosen iff
   it cannot be larger than the varint form, whose is-never-smaller lower
   bound is one byte per slot. *)
let bitmap_words ~first ~last = ((last - first) / 64) + 1

let encode buf ~get ~lo ~hi =
  let n = hi - lo in
  put_varint buf n;
  if n > 0 then begin
    let first = get lo and last = get (hi - 1) in
    let nwords = bitmap_words ~first ~last in
    if 8 * nwords <= n then begin
      Buffer.add_char buf (Char.chr tag_bitmap);
      put_varint buf first;
      put_varint buf nwords;
      let words = Array.make nwords 0L in
      for i = lo to hi - 1 do
        let d = get i - first in
        words.(d / 64)
          <- Int64.logor words.(d / 64) (Int64.shift_left 1L (d land 63))
      done;
      let w8 = Bytes.create 8 in
      Array.iter
        (fun w ->
           Bytes.set_int64_le w8 0 w;
           Buffer.add_bytes buf w8)
        words
    end
    else begin
      Buffer.add_char buf (Char.chr tag_varint);
      put_varint buf first;
      let prev = ref first in
      for i = lo + 1 to hi - 1 do
        let s = get i in
        put_varint buf (s - !prev - 1);
        prev := s
      done
    end
  end

let encode_array buf a =
  encode buf ~get:(Array.get a) ~lo:0 ~hi:(Array.length a)

(* -- decoding --------------------------------------------------------- *)

let count b ~pos = fst (get_varint b pos)

(* Iterate one word of bitmap as two 32-bit halves — no Int64 allocation
   per bit test once flambda-less OCaml unboxes the locals. *)
let iter_word f base w =
  let lo = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical w 32) in
  let half off bits =
    let bits = ref bits and j = ref 0 in
    while !bits <> 0 do
      if !bits land 1 <> 0 then f (base + off + !j);
      bits := !bits lsr 1;
      incr j
    done
  in
  half 0 lo;
  half 32 hi

let get_word_le (b : Bvec.t) pos =
  let u8 i = Int64.of_int (Bvec.unsafe_u8 b (pos + i)) in
  let ( ||| ) = Int64.logor and ( <<< ) = Int64.shift_left in
  u8 0 ||| (u8 1 <<< 8) ||| (u8 2 <<< 16) ||| (u8 3 <<< 24)
  ||| (u8 4 <<< 32) ||| (u8 5 <<< 40) ||| (u8 6 <<< 48) ||| (u8 7 <<< 56)

let iter b ~pos f =
  let n, p = get_varint b pos in
  if n > 0 then begin
    let tag = Bvec.unsafe_u8 b p in
    let p = p + 1 in
    if tag = tag_bitmap then begin
      let first, p = get_varint b p in
      let nwords, p = get_varint b p in
      for w = 0 to nwords - 1 do
        let word = get_word_le b (p + (8 * w)) in
        if word <> 0L then iter_word f (first + (64 * w)) word
      done
    end
    else begin
      let first, p = get_varint b p in
      f first;
      let prev = ref first and p = ref p in
      for _ = 2 to n do
        let d, p' = get_varint b !p in
        p := p';
        let s = !prev + d + 1 in
        f s;
        prev := s
      done
    end
  end

(* -- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let validate b ~pos ~limit ~max_slot =
  let* n, p = checked_varint b pos ~limit in
  if n < 0 then Error "negative count"
  else if n = 0 then
    if p = limit then Ok (0, p) else Error "trailing bytes after empty run"
  else if p >= limit then Error "missing tag"
  else
    let tag = Bvec.get_u8 b p in
    let p = p + 1 in
    let* endp =
      if tag = tag_bitmap then
        let* first, p = checked_varint b p ~limit in
        let* nwords, p = checked_varint b p ~limit in
        if nwords <= 0 || nwords > (max_slot / 64) + 1 then
          Error "bitmap word count out of range"
        else if p + (8 * nwords) > limit then Error "bitmap truncated"
        else begin
          (* population must match the declared count; every set bit must
             be a valid slot; the first and last words must actually carry
             the run's endpoints *)
          let popcount = ref 0 and ok = ref true in
          for w = 0 to nwords - 1 do
            let word = get_word_le b (p + (8 * w)) in
            if word <> 0L then
              iter_word
                (fun s ->
                   incr popcount;
                   if s < first || s > max_slot then ok := false)
                (first + (64 * w))
                word
          done;
          if not !ok then Error "bitmap slot out of range"
          else if !popcount <> n then Error "bitmap population mismatch"
          else if
            Int64.logand (get_word_le b p) 1L <> 1L
            || Int64.equal (get_word_le b (p + (8 * (nwords - 1)))) 0L
          then Error "bitmap not anchored"
          else Ok (p + (8 * nwords))
        end
      else if tag = tag_varint then begin
        let* first, p = checked_varint b p ~limit in
        if first < 0 || first > max_slot then Error "first slot out of range"
        else
          let rec deltas prev p k =
            if k = 0 then Ok p
            else
              let* d, p = checked_varint b p ~limit in
              let s = prev + d + 1 in
              if s > max_slot then Error "slot out of range"
              else deltas s p (k - 1)
          in
          deltas first p (n - 1)
      end
      else Error (Printf.sprintf "unknown run tag %d" tag)
    in
    if endp = limit then Ok (n, endp) else Error "trailing bytes after run"
