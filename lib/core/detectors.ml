(** Security verdicts over the propagated sink-parameter facts.

    The verdict logic is data now: each {!Rules.Rule.t} carries an
    [insecure_when] / [secure_when] predicate pair over the resolved fact,
    and this module is their interpreter (it lives here rather than in the
    [Rules] library because the verifier-body predicates need the program).
    The built-in rule set ({!Rules.Builtin.primary}) encodes exactly the
    crypto (ECB) and SSL (hostname verification) misuse detectors of the
    paper's evaluation, so default verdicts are unchanged. *)

open Ir
module Sinks = Framework.Sinks

type verdict =
  | Insecure
  | Secure
  | Unresolved  (** the dataflow representation did not decide the verdict *)

let verdict_to_string = function
  | Insecure -> "INSECURE"
  | Secure -> "secure"
  | Unresolved -> "unresolved"

(** Does the class's [verify] method constantly accept (return 1)?  Used for
    app-defined [javax.net.ssl.HostnameVerifier] implementations. *)
let verifier_accepts_all program cls =
  match Program.find_class program cls with
  | None -> None
  | Some c ->
    let verify =
      List.find_opt
        (fun (m : Jmethod.t) -> String.equal m.msig.Jsig.name "verify")
        c.methods
    in
    (match verify with
     | Some { Jmethod.body = Some body; _ } ->
       let returns_const =
         Array.fold_left
           (fun acc st ->
              match st with
              | Stmt.Return (Some (Value.Const (Value.Int_c i))) -> Some i
              | Stmt.Return (Some (Value.Local _)) -> acc
              | _ -> acc)
           None body
       in
       (match returns_const with
        | Some 1 -> Some true
        | Some _ -> Some false
        | None -> None)
     | Some _ | None -> None)

(* The integer constant a named method of [cls] provably returns, if any —
   the generalized form the Verifier_* predicates evaluate. *)
let method_returns_const program cls ~name =
  match Program.find_class program cls with
  | None -> None
  | Some c ->
    (match
       List.find_opt
         (fun (m : Jmethod.t) -> String.equal m.msig.Jsig.name name)
         c.methods
     with
     | Some { Jmethod.body = Some body; _ } ->
       Array.fold_left
         (fun acc st ->
            match st with
            | Stmt.Return (Some (Value.Const (Value.Int_c i))) -> Some i
            | _ -> acc)
         None body
     | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* Predicate interpreter *)

let fact_shape (fact : Facts.t) : Rules.Rule.shape =
  match fact with
  | Facts.Const_str _ -> Rules.Rule.Const_str
  | Facts.Const_int _ -> Rules.Rule.Const_int
  | Facts.New_obj _ -> Rules.Rule.New_obj
  | Facts.Arr _ -> Rules.Rule.Arr
  | Facts.Static_ref _ -> Rules.Rule.Static_ref
  | Facts.Framework_input -> Rules.Rule.Framework_input
  | Facts.Sym _ -> Rules.Rule.Symbolic
  | Facts.Unknown -> Rules.Rule.Unknown

let str_contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
  lb = 0 || at 0

(** Evaluate a rule predicate against one resolved fact. *)
let rec eval_pred program (fact : Facts.t) (p : Rules.Rule.pred) =
  match p with
  | Rules.Rule.True -> true
  | Rules.Rule.False -> false
  | Rules.Rule.Fact_is shape -> fact_shape fact = shape
  | Rules.Rule.Str_contains sub ->
    (match fact with Facts.Const_str s -> str_contains ~sub s | _ -> false)
  | Rules.Rule.Str_eq v ->
    (match fact with Facts.Const_str s -> String.equal s v | _ -> false)
  | Rules.Rule.Int_eq v ->
    (match fact with Facts.Const_int i -> i = v | _ -> false)
  | Rules.Rule.Field_is { cls; name } ->
    (match fact with
     | Facts.Static_ref f ->
       String.equal f.Jsig.fcls cls && String.equal f.Jsig.fname name
     | _ -> false)
  | Rules.Rule.Class_in classes ->
    (match fact with
     | Facts.New_obj o -> List.exists (String.equal o.Facts.cls) classes
     | _ -> false)
  | Rules.Rule.Verifier_returns { name; value } ->
    (match fact with
     | Facts.New_obj o ->
       method_returns_const program o.Facts.cls ~name = Some value
     | _ -> false)
  | Rules.Rule.Verifier_resolves { name } ->
    (match fact with
     | Facts.New_obj o ->
       method_returns_const program o.Facts.cls ~name <> None
     | _ -> false)
  | Rules.Rule.All ps -> List.for_all (eval_pred program fact) ps
  | Rules.Rule.Any ps -> List.exists (eval_pred program fact) ps
  | Rules.Rule.Not p -> not (eval_pred program fact p)

(** Verdict of one rule over one resolved fact: [insecure_when] first, then
    [secure_when], else the dataflow did not decide. *)
let classify_rule program (rule : Rules.Rule.t) (fact : Facts.t) =
  if eval_pred program fact rule.Rules.Rule.insecure_when then Insecure
  else if eval_pred program fact rule.Rules.Rule.secure_when then Secure
  else Unresolved

(* ------------------------------------------------------------------ *)
(* Compatibility shims over the built-in rule set — the baselines (and any
   caller that thinks in sinks, not rules) map a sink occurrence to the
   built-in rule covering its signature. *)

let classify_ssl program (fact : Facts.t) =
  classify_rule program Rules.Builtin.ssl_hostname fact

let classify program (sink : Sinks.t) (fact : Facts.t) =
  match Rules.Builtin.rule_for_sink sink with
  | Some rule -> classify_rule program rule fact
  | None -> Unresolved
