(** Off-heap line texts: the snapshot-loaded dexfile's plaintext lines as
    (offset, length) views into the mmapped text-blob section, instead of
    one heap string per line materialised at load time.

    The residual text scan (free-form [Raw] queries against a snapshot
    engine) matches directly against the blob with the allocation-free
    predicates below; a line's string is materialised only when a hit
    actually returns it, and is then cached on the line record (see
    [Dexfile.line_text]), so repeated hits pay the [String] allocation
    once. *)

type t

(** The placeholder installed in [Disasm.line.text] for lines whose text
    still lives only in the store.  A unique string instance — test with
    [==], never [=]. *)
val pending : string

(** [create ~blob ~offs] views line [i] as bytes
    [offs.(i) .. offs.(i+1) - 1] of [blob].  Raises [Invalid_argument] if
    the offsets are not ascending from 0 to [Bvec.length blob]. *)
val create : blob:Bvec.t -> offs:Ivec.t -> t

(** Number of lines. *)
val count : t -> int

(** The raw backing views — the delta-patch path splices per-class byte
    ranges of an old store into a new blob with these. *)

val blob : t -> Bvec.t
val offsets : t -> Ivec.t

(** Byte length of line [i]. *)
val length_at : t -> int -> int

(** Materialise line [i] as a fresh string. *)
val get : t -> int -> string

(** Position of the first [c] in line [i] (relative to the line start), or
    [-1].  Allocation-free. *)
val index_char : t -> int -> char -> int

(** Whether line [i] carries [prefix] at byte [pos].  Allocation-free. *)
val starts_with : t -> int -> pos:int -> prefix:string -> bool

(** Whether line [i] contains [pat] as a substring.  Allocation-free. *)
val contains : t -> int -> pat:string -> bool

(** [iter_matches t ~pat f] calls [f i] for every line [i] containing
    [pat], ascending, each such line once.  One Boyer–Moore–Horspool pass
    over the whole blob (not a loop per line), so cost scales with
    [blob / |pat|] rather than [blob] — the residual scan's bulk path.  An
    empty [pat] matches every line; a match straddling a line boundary
    matches neither line. *)
val iter_matches : t -> pat:string -> (int -> unit) -> unit

(** Touch every page of the blob and offsets (see {!Bvec.prefault}). *)
val prefault : t -> int
