(* The daemon's hot-engine LRU: resident {!Backdroid.Driver.session}s
   keyed by snapshot path + content stamp + ruleset hash (or app-spec
   fingerprint for snapshotless requests).  Two ceilings — entry count and
   resident postings bytes — evict least-recently-touched entries on
   insert.

   Eviction only drops the table's reference: a request still running
   against an evicted session keeps it alive through its own reference,
   and the GC reclaims the mmap when the last user drops it.  All table
   operations are mutex-guarded; engine loads happen outside the lock (two
   concurrent misses on one key may both load — the second insert wins,
   which is correct and rare). *)

type entry = {
  key : string;
  mutable spec : Appspec.t;
  mutable session : Backdroid.Driver.session;
  mutable bytes : int;
  mutable tick : int;
}

type t = {
  max_entries : int;
  max_bytes : int;
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable delta_patches : int;
}

let m_hits = Obs.Metrics.counter "serve.cache.hits"
let m_misses = Obs.Metrics.counter "serve.cache.misses"
let m_evictions = Obs.Metrics.counter "serve.cache.evictions"
let m_delta = Obs.Metrics.counter "serve.cache.delta_patches"

let create ?(max_entries = 4) ?(max_bytes = 512 * 1024 * 1024) () =
  { max_entries = max 1 max_entries; max_bytes = max 0 max_bytes;
    mutex = Mutex.create (); table = Hashtbl.create 16; clock = 0;
    hits = 0; misses = 0; evictions = 0; delta_patches = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Resident-size estimate for the byte ceiling: the engine's postings
   footprint plus a fixed floor for the arena/lines/symbol side. *)
let entry_floor_bytes = 1 lsl 20

let session_bytes session =
  Bytesearch.Engine.postings_footprint
    (Backdroid.Driver.session_engine session)
  + entry_floor_bytes

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.clock <- t.clock + 1;
    e.tick <- t.clock;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr m_hits;
    (* lazily-built postings grow after insert; keep the estimate honest *)
    e.bytes <- session_bytes e.session;
    Some e
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr m_misses;
    None

let resident_bytes_unlocked t =
  Hashtbl.fold (fun _ e acc -> acc + e.bytes) t.table 0

let evict_over_ceiling t =
  (* called under the lock *)
  let over () =
    Hashtbl.length t.table > t.max_entries
    || resident_bytes_unlocked t > t.max_bytes
  in
  while over () && Hashtbl.length t.table > 1 do
    (* keep at least the newest entry resident, whatever the ceilings *)
    let lru =
      Hashtbl.fold
        (fun _ e acc ->
           match acc with
           | Some b when b.tick <= e.tick -> acc
           | _ -> Some e)
        t.table None
    in
    match lru with
    | None -> ()
    | Some victim ->
      Hashtbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.incr m_evictions;
      Obs.Flight.record ~kind:"serve" ~name:"cache-evict"
        ~attrs:[ ("key", Obs.Span.Str victim.key);
                 ("bytes", Obs.Span.Int victim.bytes) ]
        ()
  done

let insert t ~key ~spec session =
  locked t @@ fun () ->
  t.clock <- t.clock + 1;
  let e =
    { key; spec; session; bytes = session_bytes session; tick = t.clock }
  in
  Hashtbl.replace t.table key e;
  evict_over_ceiling t;
  e

(* The in-place delta-patch path: same key, new program version. *)
let repatch t e ~spec session =
  locked t @@ fun () ->
  e.spec <- spec;
  e.session <- session;
  e.bytes <- session_bytes session;
  t.clock <- t.clock + 1;
  e.tick <- t.clock;
  t.delta_patches <- t.delta_patches + 1;
  Obs.Metrics.incr m_delta;
  evict_over_ceiling t

type stats = {
  entries : int;
  resident_bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  delta_patches : int;
}

let stats t =
  locked t @@ fun () ->
  { entries = Hashtbl.length t.table;
    resident_bytes = resident_bytes_unlocked t;
    hits = t.hits; misses = t.misses; evictions = t.evictions;
    delta_patches = t.delta_patches }

let mem t key = locked t @@ fun () -> Hashtbl.mem t.table key
