(** The Amandroid-style baseline: whole-app inter-procedural dataflow
    analysis.  It first constructs the whole-app call graph from all entry
    points, then runs a context-sensitive forward constant / points-to
    analysis over every reachable method (memoised per method and abstract
    calling context), evaluating the parameters of every sink API call it
    executes.

    The documented behaviours of the real tool are reproduced through
    {!Callgraph.config}: liblist package skipping, the missing
    Executor/AsyncTask/onClick edges, unregistered components treated as
    entries (false positives), plus a per-app simulated "occasional internal
    error" knob standing in for the "Could not find procedure" / "key not
    found" failures of Sec. VI-C (see DESIGN.md). *)

open Ir
module Facts = Backdroid.Facts
module Api_model = Backdroid.Api_model
module Detectors = Backdroid.Detectors
module Sinks = Framework.Sinks

exception Timeout = Callgraph.Timeout
exception Internal_error of string

type config = {
  cg : Callgraph.config;
  sinks : Sinks.t list;
  error_rate : float;
      (** fraction of apps failing with a simulated internal error *)
  max_inline_depth : int;
  context_widening : int;
      (** distinct calling contexts interpreted per method before the
          analysis widens that method to unknown arguments (the k-limiting /
          widening every context-sensitive dataflow engine applies) *)
  deadline : float option;
}

let default_config =
  { cg = Callgraph.amandroid_config;
    sinks = Sinks.primary;
    error_rate = 0.0;
    max_inline_depth = 64;
    context_widening = 256;
    deadline = None }

type finding = {
  sink : Sinks.t;
  meth : Jsig.meth;
  site : int;
  fact : Facts.t;
  verdict : Detectors.verdict;
}

type outcome =
  | Completed of finding list
  | Timed_out
  | Errored of string

type result = {
  outcome : outcome;
  cg_methods : int;
  cg_edges : int;
  contexts : int;
}

(* ------------------------------------------------------------------ *)

type ctx = {
  program : Program.t;
  manifest : Manifest.App_manifest.t;
  cfg : config;
  sink_index : Sinks.index;
      (** signature-keyed view of [cfg.sinks], built once per run — the
          direct sink probe fires on every interpreted invocation *)
  statics : (string, Facts.t) Hashtbl.t;
  memo : (string, Facts.t) Hashtbl.t;    (** (meth, args-context) -> return *)
  in_progress : (string, unit) Hashtbl.t;
  ctx_count : (string, int) Hashtbl.t;   (** per-method context counter *)
  mutable findings : finding list;
  mutable contexts : int;
  mutable steps : int;
}

let check_deadline ctx =
  ctx.steps <- ctx.steps + 1;
  if ctx.steps land 1023 = 0 then
    match ctx.cfg.deadline with
    | Some d when Unix.gettimeofday () > d -> raise Timeout
    | Some _ | None -> ()

let lookup env id = Option.value ~default:Facts.Unknown (Hashtbl.find_opt env id)

let value_fact env = function
  | Value.Local l -> lookup env l.Value.id
  | Value.Const (Value.Str_c s) -> Facts.Const_str s
  | Value.Const (Value.Int_c i) -> Facts.Const_int i
  | Value.Const (Value.Long_c i) -> Facts.Const_int (Int64.to_int i)
  | Value.Const (Value.Class_c c) -> Facts.Const_str c
  | Value.Const (Value.Null | Value.Float_c _ | Value.Double_c _) ->
    Facts.Unknown

(** Context key: the method plus a bounded rendering of the argument facts —
    the unit of the whole-app analysis's context sensitivity (and of its
    cost). *)
let context_key (m : Jsig.meth) this_fact args =
  let part f =
    let s = Facts.to_string f in
    if String.length s <= 64 then s else String.sub s 0 64
  in
  Jsig.meth_to_string m ^ "|" ^ part this_fact ^ "|"
  ^ String.concat "," (List.map part args)

let is_system ctx cls =
  match Program.find_class ctx.program cls with
  | Some c -> c.Jclass.is_system
  | None -> true

let thread_runnable_key = "<thread-runnable>"

let rec eval_method ctx ~depth ~meth ~this_fact ~arg_facts =
  (* widening: past the per-method context budget, fall back to the
     unknown-arguments summary instead of interpreting yet another context *)
  let mkey = Jsig.meth_to_string meth in
  let seen = Option.value ~default:0 (Hashtbl.find_opt ctx.ctx_count mkey) in
  let this_fact, arg_facts =
    if seen >= ctx.cfg.context_widening then
      Facts.Unknown, List.map (fun _ -> Facts.Unknown) arg_facts
    else this_fact, arg_facts
  in
  let key = context_key meth this_fact arg_facts in
  match Hashtbl.find_opt ctx.memo key with
  | Some r -> r
  | None ->
    if Hashtbl.mem ctx.in_progress key then Facts.Unknown
    else begin
      Hashtbl.replace ctx.in_progress key ();
      ctx.contexts <- ctx.contexts + 1;
      Hashtbl.replace ctx.ctx_count mkey (seen + 1);
      let r = eval_body ctx ~depth ~meth ~this_fact ~arg_facts in
      Hashtbl.remove ctx.in_progress key;
      Hashtbl.replace ctx.memo key r;
      r
    end

and eval_body ctx ~depth ~meth ~this_fact ~arg_facts =
  match Program.find_method ctx.program meth with
  | None | Some { Jmethod.body = None; _ } -> Facts.Unknown
  | Some m ->
    let body = Option.get m.Jmethod.body in
    let env = Hashtbl.create 16 in
    let ret = ref Facts.Unknown in
    let n = Array.length body in
    let i = ref 0 in
    while !i < n do
      check_deadline ctx;
      (match body.(!i) with
       | Stmt.Assign (l, e) ->
         Hashtbl.replace env l.Value.id
           (eval_expr ctx ~depth ~env ~this_fact ~arg_facts ~meth ~site:!i e)
       | Stmt.Instance_put (o, f, v) ->
         (match lookup env o.Value.id with
          | Facts.New_obj obj ->
            Hashtbl.replace obj.members (Jsig.field_to_string f)
              (value_fact env v)
          | _ -> ())
       | Stmt.Static_put (f, v) ->
         Hashtbl.replace ctx.statics (Jsig.field_to_string f) (value_fact env v)
       | Stmt.Array_put (a, idx, v) ->
         (match lookup env a.Value.id, value_fact env idx with
          | Facts.Arr arr, Facts.Const_int k ->
            Hashtbl.replace arr.cells k (value_fact env v)
          | _, _ -> ())
       | Stmt.Invoke iv ->
         ignore (eval_invoke ctx ~depth ~env ~meth ~site:!i iv)
       | Stmt.Return v ->
         (match v with Some v -> ret := value_fact env v | None -> ());
         i := n
       | Stmt.If _ | Stmt.Goto _ | Stmt.Throw _ | Stmt.Nop -> ());
      incr i
    done;
    !ret

and eval_expr ctx ~depth ~env ~this_fact ~arg_facts ~meth ~site (e : Expr.t) =
  match e with
  | Expr.Imm v -> value_fact env v
  | Expr.Binop (op, a, b) ->
    Api_model.binop op (value_fact env a) (value_fact env b)
  | Expr.Cast (_, v) -> value_fact env v
  | Expr.New c -> Facts.new_obj c
  | Expr.New_array (t, _) -> Facts.new_arr t
  | Expr.Array_get (a, idx) ->
    (match lookup env a.Value.id, value_fact env idx with
     | Facts.Arr arr, Facts.Const_int k ->
       Option.value ~default:Facts.Unknown (Hashtbl.find_opt arr.cells k)
     | _, _ -> Facts.Unknown)
  | Expr.Instance_get (o, f) ->
    (match lookup env o.Value.id with
     | Facts.New_obj obj ->
       Option.value ~default:Facts.Unknown
         (Hashtbl.find_opt obj.members (Jsig.field_to_string f))
     | _ -> Facts.Unknown)
  | Expr.Static_get f ->
    (match Hashtbl.find_opt ctx.statics (Jsig.field_to_string f) with
     | Some fact -> fact
     | None ->
       (* make sure the initializer has been interpreted *)
       (match Program.find_class ctx.program f.Jsig.fcls with
        | Some c when not c.Jclass.is_system ->
          (match Jclass.clinit c with
           | Some cm ->
             ignore
               (eval_method ctx ~depth:(depth + 1) ~meth:cm.Jmethod.msig
                  ~this_fact:Facts.Unknown ~arg_facts:[]);
             Option.value ~default:(Facts.Static_ref f)
               (Hashtbl.find_opt ctx.statics (Jsig.field_to_string f))
           | None -> Facts.Static_ref f)
        | Some _ | None -> Facts.Static_ref f))
  | Expr.Phi ls ->
    List.fold_left (fun acc l -> Facts.join acc (lookup env l.Value.id))
      Facts.Unknown ls
  | Expr.Param i ->
    (match List.nth_opt arg_facts i with
     | Some f -> f
     | None -> Facts.Framework_input)
  | Expr.This -> this_fact
  | Expr.Caught_exception -> Facts.Unknown
  | Expr.Length _ -> Facts.Unknown
  | Expr.Invoke iv -> eval_invoke ctx ~depth ~env ~meth ~site iv

and eval_invoke ctx ~depth ~env ~meth ~site (iv : Expr.invoke) =
  check_deadline ctx;
  let recv = Option.map (fun b -> lookup env b.Value.id) iv.base in
  let args = List.map (value_fact env) iv.args in
  (* sink detection: direct signature match, or CHA resolution through the
     hierarchy (an invocation via an app subclass of the sink class still
     reaches the framework method) *)
  let sink_match =
    match Sinks.find ctx.sink_index iv.callee with
    | Some s -> Some s
    | None ->
      List.find_opt
        (fun (s : Sinks.t) ->
           String.equal (Jsig.sub_signature s.msig) (Jsig.sub_signature iv.callee)
           && Program.is_subclass_of ctx.program ~sub:iv.callee.Jsig.cls
                ~super:s.msig.Jsig.cls)
        ctx.cfg.sinks
  in
  (match sink_match with
   | Some sink ->
     let fact =
       Option.value ~default:Facts.Unknown
         (List.nth_opt args sink.Sinks.param_index)
     in
     let verdict = Detectors.classify ctx.program sink fact in
     ctx.findings <- { sink; meth; site; fact; verdict } :: ctx.findings
   | None -> ());
  (* domain-knowledge async / callback / ICC descents *)
  descend_async ctx ~depth ~env iv recv args;
  (* API models *)
  match Api_model.eval iv.callee recv args with
  | Some f -> f
  | None ->
    if Jsig.is_init iv.callee && iv.callee.Jsig.cls = "java.lang.Thread" then begin
      (* remember the wrapped runnable for the start() edge *)
      (match recv, args with
       | Some (Facts.New_obj o), [ r ] ->
         Hashtbl.replace o.members thread_runnable_key r
       | _, _ -> ());
      Facts.Unknown
    end
    else if is_system ctx iv.callee.Jsig.cls then Facts.Unknown
    else if depth >= ctx.cfg.max_inline_depth then Facts.Unknown
    else begin
      (* CHA: interpret every possible target and join the returns — the
         whole-app analysis pays for the full dispatch fan-out *)
      let targets =
        Cha.targets ctx.program iv
        |> List.filter (fun (tm : Jsig.meth) ->
            not (Liblist.skipped ~packages:ctx.cfg.cg.Callgraph.skip_packages tm.cls))
      in
      let this_fact = Option.value ~default:Facts.Unknown recv in
      List.fold_left
        (fun acc tm ->
           Facts.join acc
             (eval_method ctx ~depth:(depth + 1) ~meth:tm ~this_fact
                ~arg_facts:args))
        Facts.Unknown targets
    end

(** Descend across the async / callback / ICC edges the configuration
    enables, using the points-to class of the handed object. *)
and descend_async ctx ~depth ~env:_ (iv : Expr.invoke) recv args =
  let cfg = ctx.cfg.cg in
  let run_on fact subsig =
    match fact with
    | Facts.New_obj o when not (is_system ctx o.Facts.cls) ->
      (match Program.resolve_method ctx.program o.Facts.cls subsig with
       | Some (_, m) when m.Jmethod.body <> None ->
         ignore
           (eval_method ctx ~depth:(depth + 1) ~meth:m.Jmethod.msig
              ~this_fact:fact ~arg_facts:[])
       | Some _ | None -> ())
    | _ -> ()
  in
  let name = iv.callee.Jsig.name and cls = iv.callee.Jsig.cls in
  if cfg.Callgraph.connect_thread && name = "start" && cls = "java.lang.Thread"
  then begin
    match recv with
    | Some (Facts.New_obj o) ->
      (match Hashtbl.find_opt o.Facts.members thread_runnable_key with
       | Some r -> run_on r "void run()"
       | None -> run_on (Facts.New_obj o) "void run()")
    | _ -> ()
  end
  else if cfg.Callgraph.connect_executor && name = "execute"
          && cls = "java.util.concurrent.Executor" then
    (match args with r :: _ -> run_on r "void run()" | [] -> ())
  else if cfg.Callgraph.connect_asynctask && name = "execute"
          && cls = "android.os.AsyncTask" then
    (match recv with
     | Some r -> run_on r "java.lang.Object doInBackground(java.lang.Object[])"
     | None -> ())
  else if cfg.Callgraph.connect_onclick && name = "setOnClickListener" then
    (match args with
     | l :: _ -> run_on l "void onClick(android.view.View)"
     | [] -> ())
  else if cfg.Callgraph.icc
          && (name = "startService" || name = "startActivity"
              || name = "sendBroadcast") then begin
    match args with
    | [ Facts.New_obj intent ] ->
      let target_handlers =
        let explicit =
          match Hashtbl.find_opt intent.Facts.members Api_model.intent_target_key with
          | Some (Facts.Const_str c) -> [ c ]
          | _ -> []
        in
        let implicit =
          match Hashtbl.find_opt intent.Facts.members Api_model.intent_action_key with
          | Some (Facts.Const_str a) ->
            List.map
              (fun (c : Manifest.Component.t) -> c.cls)
              (Manifest.App_manifest.components_matching_action ctx.manifest a)
          | _ -> []
        in
        explicit @ implicit
      in
      List.iter
        (fun cls ->
           match Program.find_class ctx.program cls with
           | Some c ->
             List.iter
               (fun (m : Jmethod.t) ->
                  if
                    Manifest.Lifecycle.is_lifecycle_subsig
                      (Jmethod.sub_signature m)
                    && m.Jmethod.body <> None
                  then begin
                    let handler_args =
                      List.map
                        (fun ty ->
                           if Types.equal ty Types.intent then
                             Facts.New_obj intent
                           else Facts.Framework_input)
                        m.Jmethod.msig.Jsig.params
                    in
                    ignore
                      (eval_method ctx ~depth:(depth + 1) ~meth:m.Jmethod.msig
                         ~this_fact:(Facts.new_obj cls) ~arg_facts:handler_args)
                  end)
               c.Jclass.methods
           | None -> ())
        target_handlers
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)

(** Deterministic per-app hash used by the simulated occasional-error knob. *)
let app_hash (manifest : Manifest.App_manifest.t) =
  let h = Hashtbl.hash manifest.Manifest.App_manifest.package in
  float_of_int (h land 0xFFFF) /. 65536.0

(** Run the full whole-app analysis of one app. *)
let analyze ?(cfg = default_config) ~program ~manifest () =
  try
    if cfg.error_rate > 0.0 && app_hash manifest < cfg.error_rate then
      raise (Internal_error "key not found");
    let cg_cfg = { cfg.cg with Callgraph.deadline = cfg.deadline } in
    let cg = Callgraph.build ~cfg:cg_cfg program manifest in
    let ctx =
      { program; manifest; cfg = { cfg with deadline = cfg.deadline };
        sink_index = Sinks.index cfg.sinks;
        statics = Hashtbl.create 64; memo = Hashtbl.create 1024;
        in_progress = Hashtbl.create 64; ctx_count = Hashtbl.create 256;
        findings = []; contexts = 0; steps = 0 }
    in
    (* lifecycle-aware entry evaluation: all handlers of one component run
       in lifecycle order on a shared instance, so state written in onCreate
       is visible to onResume etc. *)
    let by_class = Hashtbl.create 8 in
    List.iter
      (fun (entry : Jsig.meth) ->
         let prev =
           Option.value ~default:[] (Hashtbl.find_opt by_class entry.cls)
         in
         Hashtbl.replace by_class entry.cls (entry :: prev))
      cg.Callgraph.entries;
    Hashtbl.iter
      (fun cls handlers ->
         let this_fact = Facts.new_obj cls in
         let order = Manifest.Lifecycle.all_handler_subsigs in
         let pos (m : Jsig.meth) =
           let rec go i = function
             | [] -> max_int
             | s :: rest ->
               if String.equal s (Jsig.sub_signature m) then i else go (i + 1) rest
           in
           go 0 order
         in
         let sorted = List.sort (fun a b -> compare (pos a) (pos b)) handlers in
         List.iter
           (fun (entry : Jsig.meth) ->
              ignore
                (eval_method ctx ~depth:0 ~meth:entry ~this_fact
                   ~arg_facts:
                     (List.map (fun _ -> Facts.Framework_input)
                        entry.Jsig.params)))
           sorted)
      by_class;
    { outcome = Completed (List.rev ctx.findings);
      cg_methods = cg.Callgraph.method_count;
      cg_edges = cg.Callgraph.edge_count;
      contexts = ctx.contexts }
  with
  | Timeout -> { outcome = Timed_out; cg_methods = 0; cg_edges = 0; contexts = 0 }
  | Internal_error e ->
    { outcome = Errored e; cg_methods = 0; cg_edges = 0; contexts = 0 }

(** Insecure findings of a completed run. *)
let insecure_findings = function
  | Completed fs ->
    List.filter (fun f -> f.verdict = Detectors.Insecure) fs
  | Timed_out | Errored _ -> []
