(** Dead-method-loop detection (implementation enhancement 3, Sec. IV-F).

    Four loop types are distinguished in BackDroid's output: cross-method and
    inner loops, in both the backward-search and the forward-object-taint
    scenarios.  A loop is "detected" when the analysis is about to revisit a
    method already on its current path; the analysis then prunes instead of
    iterating forever. *)

type kind = Cross_backward | Inner_backward | Cross_forward | Inner_forward
val kind_to_string : kind -> string
type stats = {
  mutable cross_backward : int;
  mutable inner_backward : int;
  mutable cross_forward : int;
  mutable inner_forward : int;
}
val create : unit -> stats
val record : stats -> kind -> unit
val total : stats -> int
val get : stats -> kind -> int

(** Add [src]'s counters into [dst] (merging domain-local statistics). *)
val add_into : dst:stats -> stats -> unit

(** Is [m] already on [path]?  If so the caller should record the loop kind
    and prune. *)
val on_path : Ir.Jsig.meth list -> Ir.Jsig.meth -> bool
