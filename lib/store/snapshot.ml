module Engine = Bytesearch.Engine
module Packed = Engine.Packed
module Postcodec = Bytesearch.Postcodec
module Classmap = Dex.Classmap

let ( let* ) = Result.bind

(* Section ids.  Per-line owner/stmt sections are deliberately absent: the
   arena already records owner and statement index for every instruction
   line, and header lines have neither, so load reconstructs line metadata
   from the arena columns.

   The ids are version-independent; the payload of [sec_slots c] is not:
   v1 stores the flat slot vector ([sec_offsets c] holds slot indices),
   v2 stores Postcodec-compressed runs ([sec_offsets c] holds byte
   offsets into the coded blob). *)
let sec_meta = 1
let sec_sym_offsets = 2
let sec_sym_blob = 3
let sec_line_offsets = 4
let sec_line_blob = 5
let sec_owner_offsets = 9
let sec_owner_blob = 10
let sec_cls_offsets = 11
let sec_cls_blob = 12
let sec_line_idx = 13
let sec_stmt_idx = 14
let sec_owner_id = 15
let sec_cat = 16
let sec_sym = 17
(* optional: the detection-rule-set content hash the snapshot was saved
   under (absent in older files) *)
let sec_ruleset = 18
let sec_keys c = 20 + (3 * c)
let sec_offsets c = 21 + (3 * c)
let sec_slots c = 22 + (3 * c)
let n_categories = 7

(* Optional (absent in pre-delta files): the per-class map — names,
   line/slot ranges and the two content hashes — that the delta path diffs
   a new build against, and the persisted per-sink analysis results the
   driver's replay path consults.  Ids sit above the postings range
   [20, 20 + 3*7). *)
let sec_cm_name_offsets = 41
let sec_cm_name_blob = 42
let sec_cm_ranges = 43
let sec_cm_hashes = 44
let sec_results_offsets = 45
let sec_results_blob = 46

let m_save_files = Obs.Metrics.counter "store.save.files"
let m_save_bytes = Obs.Metrics.counter "store.save.bytes"
let m_load_files = Obs.Metrics.counter "store.load.files"
let m_load_bytes = Obs.Metrics.counter "store.load.bytes_mapped"
let m_load_remapped = Obs.Metrics.counter "store.load.remapped"
let m_load_prefaulted = Obs.Metrics.counter "store.load.prefaulted"
let m_delta_loads = Obs.Metrics.counter "store.delta.loads"
let m_delta_reused = Obs.Metrics.counter "store.delta.classes_reused"
let m_delta_rendered = Obs.Metrics.counter "store.delta.classes_rendered"

let default_path ~dir ~app_id =
  let sane =
    String.map
      (fun ch ->
         match ch with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ch
         | _ -> '_')
      app_id
  in
  Filename.concat dir
    (Printf.sprintf "%s.v%d.bdix" sane Codec.format_version)

(* -- String arrays as (offsets, blob) section pairs ------------------- *)

let add_strings w ~off_id ~blob_id (a : string array) =
  let n = Array.length a in
  let offs = Array.make (n + 1) 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    offs.(i) <- !total;
    total := !total + String.length a.(i)
  done;
  offs.(n) <- !total;
  let buf = Buffer.create (max 16 !total) in
  Array.iter (Buffer.add_string buf) a;
  Codec.add_ints w ~id:off_id offs;
  Codec.add_blob w ~id:blob_id (Buffer.contents buf)

let load_strings r ~off_id ~blob_id ~count ~what =
  let* offs = Codec.map_ivec r ~id:off_id in
  let* blob = Codec.read_blob r ~id:blob_id in
  if Ivec.length offs <> count + 1 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets length mismatch" what))
  else if count >= 0 && Ivec.get offs 0 <> 0 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets do not start at 0" what))
  else begin
    let ok = ref true in
    for i = 0 to count - 1 do
      if Ivec.get offs (i + 1) < Ivec.get offs i then ok := false
    done;
    if (not !ok) || Ivec.get offs count <> String.length blob then
      Error
        (Codec.Corrupt
           (Printf.sprintf "%s: offsets inconsistent with blob" what))
    else
      Ok
        (Array.init count (fun i ->
             let lo = Ivec.get offs i in
             String.sub blob lo (Ivec.get offs (i + 1) - lo)))
  end

(* The same pair with the count derived from the offsets section — for
   optional sections whose cardinality is not in the meta record. *)
let load_strings_counted r ~off_id ~blob_id ~what =
  let* offs = Codec.map_ivec r ~id:off_id in
  let count = Ivec.length offs - 1 in
  if count < 0 then
    Error (Codec.Corrupt (Printf.sprintf "%s: empty offsets" what))
  else load_strings r ~off_id ~blob_id ~count ~what

(* The same (offsets, blob) pair mapped off-heap instead of materialised —
   the v2 line-text load path.  [Textstore.create] re-checks the offset
   geometry and raises; translate to the typed error. *)
let map_textstore r ~off_id ~blob_id ~count ~what =
  let* offs = Codec.map_ivec r ~id:off_id in
  let* blob = Codec.map_bytes r ~id:blob_id in
  if Ivec.length offs <> count + 1 then
    Error (Codec.Corrupt (Printf.sprintf "%s: offsets length mismatch" what))
  else
    match Dex.Textstore.create ~blob ~offs with
    | store -> Ok (store, blob, offs)
    | exception Invalid_argument m ->
      Error (Codec.Corrupt (Printf.sprintf "%s: %s" what m))

(* -- Per-class map sections ------------------------------------------- *)

let add_classmap w (cm : Classmap.t) =
  let n = Classmap.length cm in
  if n > 0 then begin
    add_strings w ~off_id:sec_cm_name_offsets ~blob_id:sec_cm_name_blob
      cm.Classmap.names;
    let ranges = Array.make (4 * n) 0 in
    for i = 0 to n - 1 do
      ranges.((4 * i) + 0) <- cm.Classmap.line_lo.(i);
      ranges.((4 * i) + 1) <- cm.Classmap.line_hi.(i);
      ranges.((4 * i) + 2) <- cm.Classmap.slot_lo.(i);
      ranges.((4 * i) + 3) <- cm.Classmap.slot_hi.(i)
    done;
    Codec.add_ints w ~id:sec_cm_ranges ranges;
    let b = Bytes.create (16 * n) in
    for i = 0 to n - 1 do
      Bytes.set_int64_le b (16 * i) cm.Classmap.text_hash.(i);
      Bytes.set_int64_le b ((16 * i) + 8) cm.Classmap.ir_hash.(i)
    done;
    Codec.add_blob w ~id:sec_cm_hashes (Bytes.unsafe_to_string b)
  end

let load_classmap r ~n_lines ~n_slots =
  if not (Codec.mem r ~id:sec_cm_name_offsets) then Ok Classmap.empty
  else
    let* names =
      load_strings_counted r ~off_id:sec_cm_name_offsets
        ~blob_id:sec_cm_name_blob ~what:"classmap names"
    in
    let n = Array.length names in
    let* ranges = Codec.map_ivec r ~id:sec_cm_ranges in
    let* hashes = Codec.read_blob r ~id:sec_cm_hashes in
    if Ivec.length ranges <> 4 * n then
      Error (Codec.Corrupt "classmap: ranges length mismatch")
    else if String.length hashes <> 16 * n then
      Error (Codec.Corrupt "classmap: hashes length mismatch")
    else begin
      let line_lo = Array.make n 0 and line_hi = Array.make n 0 in
      let slot_lo = Array.make n 0 and slot_hi = Array.make n 0 in
      let text_hash = Array.make n 0L and ir_hash = Array.make n 0L in
      let ok = ref true in
      let hb = Bytes.unsafe_of_string hashes in
      for i = 0 to n - 1 do
        let llo = Ivec.get ranges ((4 * i) + 0) in
        let lhi = Ivec.get ranges ((4 * i) + 1) in
        let slo = Ivec.get ranges ((4 * i) + 2) in
        let shi = Ivec.get ranges ((4 * i) + 3) in
        if llo < 0 || llo > lhi || lhi > n_lines then ok := false;
        if slo < 0 || slo > shi || shi > n_slots then ok := false;
        (* class runs are disjoint and in line/slot order *)
        if i > 0 && (llo < line_hi.(i - 1) || slo < slot_hi.(i - 1)) then
          ok := false;
        line_lo.(i) <- llo;
        line_hi.(i) <- lhi;
        slot_lo.(i) <- slo;
        slot_hi.(i) <- shi;
        text_hash.(i) <- Bytes.get_int64_le hb (16 * i);
        ir_hash.(i) <- Bytes.get_int64_le hb ((16 * i) + 8)
      done;
      if not !ok then Error (Codec.Corrupt "classmap: ranges out of order")
      else
        Ok
          (Classmap.v ~names ~line_lo ~line_hi ~slot_lo ~slot_hi ~text_hash
             ~ir_hash)
    end

(* -- Save ------------------------------------------------------------- *)

(* One category's postings as v2 sections: keys unchanged, offsets become
   byte offsets into the coded blob, each key's run compressed by
   {!Postcodec}.  Encoding goes through the packed cursor API, so it works
   identically for [Flat] (in-process) and [Coded] (snapshot-loaded)
   bodies, and the byte choice is a pure function of each run — save ->
   load -> save is byte-identical. *)
let coded_sections (p : Packed.t) =
  let nk = Packed.n_keys p in
  let offsets = Ivec.create (nk + 1) in
  let buf = Buffer.create 4096 in
  let run = ref [||] in
  for k = 0 to nk - 1 do
    let n = Packed.count p k in
    if Array.length !run < n then run := Array.make (max n 64) 0;
    let a = !run and i = ref 0 in
    Packed.iter_key p k (fun slot -> a.(!i) <- slot; incr i);
    Ivec.set offsets k (Buffer.length buf);
    Postcodec.encode buf ~get:(Array.get a) ~lo:0 ~hi:n
  done;
  Ivec.set offsets nk (Buffer.length buf);
  (offsets, Buffer.contents buf)

let save ?(format_version = Codec.format_version) ?ruleset_hash
    ?(results = [||]) ~path engine =
  let span0 = Obs.Span.start () in
  (* default to the stamp already on the engine, so save -> load -> save
     stays byte-identical for stamped files *)
  let ruleset_hash =
    match ruleset_hash with
    | Some _ as h -> h
    | None -> Engine.ruleset_stamp engine
  in
  let dex = Engine.dexfile engine in
  let packed = Engine.export_packed engine in
  let arena = dex.Dex.Dexfile.arena in
  let n_lines = Dex.Dexfile.line_count dex in
  let syms = Sym.dump () in
  let w = Codec.writer () in
  Codec.add_ints w ~id:sec_meta
    [| n_lines; Dex.Arena.length arena;
       Array.length arena.Dex.Arena.owners; Array.length syms |];
  (match ruleset_hash with
   | Some h -> Codec.add_ints w ~id:sec_ruleset [| h |]
   | None -> ());
  add_strings w ~off_id:sec_sym_offsets ~blob_id:sec_sym_blob syms;
  add_strings w ~off_id:sec_line_offsets ~blob_id:sec_line_blob
    (Array.init n_lines (Dex.Dexfile.line_text dex));
  add_strings w ~off_id:sec_owner_offsets ~blob_id:sec_owner_blob
    (Array.map Ir.Jsig.meth_to_string arena.Dex.Arena.owners);
  add_strings w ~off_id:sec_cls_offsets ~blob_id:sec_cls_blob
    arena.Dex.Arena.owner_cls;
  Codec.add_ivec w ~id:sec_line_idx arena.Dex.Arena.line_idx;
  Codec.add_ivec w ~id:sec_stmt_idx arena.Dex.Arena.stmt_idx;
  Codec.add_ivec w ~id:sec_owner_id arena.Dex.Arena.owner_id;
  Codec.add_ivec w ~id:sec_cat arena.Dex.Arena.cat;
  Codec.add_ivec w ~id:sec_sym arena.Dex.Arena.sym;
  add_classmap w dex.Dex.Dexfile.classmap;
  if Array.length results > 0 then
    add_strings w ~off_id:sec_results_offsets ~blob_id:sec_results_blob
      results;
  Array.iteri
    (fun c (p : Packed.t) ->
       Codec.add_ivec w ~id:(sec_keys c) p.Packed.keys;
       if format_version >= 2 then begin
         let offsets, blob = coded_sections p in
         Codec.add_ivec w ~id:(sec_offsets c) offsets;
         Codec.add_blob w ~id:(sec_slots c) blob
       end
       else begin
         let p = Packed.to_flat p in
         match p.Packed.body with
         | Packed.Flat slots ->
           Codec.add_ivec w ~id:(sec_offsets c) p.Packed.offsets;
           Codec.add_ivec w ~id:(sec_slots c) slots
         | Packed.Coded _ -> assert false  (* to_flat *)
       end)
    packed;
  let bytes = Codec.write_file ~version:format_version w ~path in
  Obs.Metrics.incr m_save_files;
  Obs.Metrics.add m_save_bytes bytes;
  Obs.Span.emit ~cat:"store" ~name:"store:save"
    ~attrs:
      [ ("path", Obs.Span.Str path); ("bytes", Obs.Span.Int bytes);
        ("version", Obs.Span.Int format_version);
        ("syms", Obs.Span.Int (Array.length syms)) ]
    span0;
  bytes

(* -- Parse ------------------------------------------------------------ *)

(* Validate one v1 category's CSR geometry against the snapshot's own
   symbol and slot counts (symbol ids here are still snapshot ids). *)
let check_packed_flat ~n_syms ~n_slots c ~keys ~offsets ~slots =
  let nk = Ivec.length keys in
  let bad what =
    Error (Codec.Corrupt (Printf.sprintf "postings %d: %s" c what))
  in
  if Ivec.length offsets <> nk + 1 then bad "offsets length"
  else if Ivec.get offsets 0 <> 0 then bad "offsets start"
  else if Ivec.get offsets nk <> Ivec.length slots then bad "offsets end"
  else begin
    let ok = ref true in
    for k = 0 to nk - 1 do
      let key = Ivec.get keys k in
      if key < 0 || key >= n_syms then ok := false;
      if k > 0 && Ivec.get keys (k - 1) >= key then ok := false;
      if Ivec.get offsets (k + 1) < Ivec.get offsets k then ok := false
    done;
    if not !ok then bad "keys/offsets not ascending or out of range"
    else begin
      let ok = ref true in
      for i = 0 to Ivec.length slots - 1 do
        let s = Ivec.get slots i in
        if s < 0 || s >= n_slots then ok := false
      done;
      if !ok then Ok () else bad "slot out of range"
    end
  end

(* Validate one v2 category: same key geometry, byte offsets partitioning
   the coded blob exactly, and every coded run well-formed with slots in
   range.  Every byte the engine's unchecked cursors will later read is
   checked here — and the walk doubles as a sequential touch of the run
   bytes, so it prefaults the postings as a side effect. *)
let check_packed_coded ~n_syms ~n_slots c ~keys ~offsets ~(coded : Bvec.t) =
  let nk = Ivec.length keys in
  let bad what =
    Error (Codec.Corrupt (Printf.sprintf "postings %d: %s" c what))
  in
  if Ivec.length offsets <> nk + 1 then bad "offsets length"
  else if nk > 0 && Ivec.get offsets 0 <> 0 then bad "offsets start"
  else if Ivec.get offsets nk <> Bvec.length coded then bad "offsets end"
  else begin
    let ok = ref true in
    for k = 0 to nk - 1 do
      let key = Ivec.get keys k in
      if key < 0 || key >= n_syms then ok := false;
      if k > 0 && Ivec.get keys (k - 1) >= key then ok := false;
      if Ivec.get offsets (k + 1) < Ivec.get offsets k then ok := false
    done;
    if not !ok then bad "keys/offsets not ascending or out of range"
    else begin
      let rec runs k =
        if k = nk then Ok ()
        else
          match
            Postcodec.validate coded ~pos:(Ivec.get offsets k)
              ~limit:(Ivec.get offsets (k + 1)) ~max_slot:(n_slots - 1)
          with
          | Ok _ -> runs (k + 1)
          | Error m -> bad (Printf.sprintf "run %d: %s" k m)
      in
      runs 0
    end
  end

let rec result_each f = function
  | [] -> Ok ()
  | x :: tl ->
    let* () = f x in
    let* r = result_each f tl in
    Ok r

(* Everything a snapshot file holds, mapped and structurally validated but
   not yet re-interned or assembled into an engine — shared by the warm
   load path and the delta path.  Symbol ids in [arena_sym] and
   [packed_snap] keys are still snapshot ids. *)
type parsed = {
  p_version : int;
  p_n_lines : int;
  p_n_slots : int;
  p_syms : string array;
  p_texts :
    [ `Heap of string array | `Store of Dex.Textstore.t * Bvec.t * Ivec.t ];
  p_owners : Ir.Jsig.meth array;
  p_owner_cls : string array;
  p_line_idx : Ivec.t;
  p_stmt_idx : Ivec.t;
  p_owner_id : Ivec.t;
  p_cat : Ivec.t;
  p_sym : Ivec.t;
  p_packed : Packed.t array;
  p_ruleset : int option;
  p_classmap : Classmap.t;
}

let parse r =
  let version = Codec.version r in
  let* meta = Codec.map_ivec r ~id:sec_meta in
  if Ivec.length meta <> 4 then Error (Codec.Corrupt "meta length")
  else begin
    let n_lines = Ivec.get meta 0 in
    let n_slots = Ivec.get meta 1 in
    let n_owners = Ivec.get meta 2 in
    let n_syms = Ivec.get meta 3 in
    if n_lines < 0 || n_slots < 0 || n_owners < 0 || n_syms < 0 then
      Error (Codec.Corrupt "negative count in meta")
    else
      let* syms =
        load_strings r ~off_id:sec_sym_offsets ~blob_id:sec_sym_blob
          ~count:n_syms ~what:"symbol table"
      in
      (* v1 materialises one heap string per line; v2 leaves the texts
         in the mapped blob and lines lazily materialise through
         [Dexfile.line_text]. *)
      let* texts =
        if version >= 2 then
          let* store, blob, offs =
            map_textstore r ~off_id:sec_line_offsets
              ~blob_id:sec_line_blob ~count:n_lines ~what:"line texts"
          in
          Ok (`Store (store, blob, offs))
        else
          let* a =
            load_strings r ~off_id:sec_line_offsets
              ~blob_id:sec_line_blob ~count:n_lines ~what:"line texts"
          in
          Ok (`Heap a)
      in
      let* owner_strs =
        load_strings r ~off_id:sec_owner_offsets ~blob_id:sec_owner_blob
          ~count:n_owners ~what:"owners"
      in
      let* owner_cls =
        load_strings r ~off_id:sec_cls_offsets ~blob_id:sec_cls_blob
          ~count:n_owners ~what:"owner classes"
      in
      let* owners =
        try Ok (Array.map Ir.Jsig.meth_of_string owner_strs)
        with Invalid_argument m -> Error (Codec.Corrupt m)
      in
      let* line_idx = Codec.map_ivec r ~id:sec_line_idx in
      let* stmt_idx = Codec.map_ivec r ~id:sec_stmt_idx in
      let* owner_id = Codec.map_ivec r ~id:sec_owner_id in
      let* cat = Codec.map_ivec r ~id:sec_cat in
      let* sym = Codec.map_ivec r ~id:sec_sym in
      let* () =
        result_each
          (fun (v, what) ->
             if Ivec.length v = n_slots then Ok ()
             else
               Error
                 (Codec.Corrupt
                    (Printf.sprintf "arena %s: length mismatch" what)))
          [ (line_idx, "line_idx"); (stmt_idx, "stmt_idx");
            (owner_id, "owner_id"); (cat, "cat"); (sym, "sym") ]
      in
      let* () =
        (* range-check the arena before anything dereferences it *)
        let ok = ref true in
        for i = 0 to n_slots - 1 do
          let li = Ivec.get line_idx i in
          let oi = Ivec.get owner_id i in
          let c = Ivec.get cat i in
          let s = Ivec.get sym i in
          if li < 0 || li >= n_lines then ok := false;
          if oi < 0 || oi >= n_owners then ok := false;
          if c < -1 || c >= n_categories - 1 then ok := false;
          if s < -1 || s >= n_syms then ok := false
        done;
        if !ok then Ok ()
        else Error (Codec.Corrupt "arena column value out of range")
      in
      let* packed_snap =
        let rec go c acc =
          if c = n_categories then Ok (Array.of_list (List.rev acc))
          else
            let* keys = Codec.map_ivec r ~id:(sec_keys c) in
            let* offsets = Codec.map_ivec r ~id:(sec_offsets c) in
            let* p =
              if version >= 2 then
                let* coded = Codec.map_bytes r ~id:(sec_slots c) in
                let* () =
                  check_packed_coded ~n_syms ~n_slots c ~keys ~offsets
                    ~coded
                in
                Ok { Packed.keys; offsets; body = Packed.Coded coded }
              else
                let* slots = Codec.map_ivec r ~id:(sec_slots c) in
                let* () =
                  check_packed_flat ~n_syms ~n_slots c ~keys ~offsets
                    ~slots
                in
                Ok { Packed.keys; offsets; body = Packed.Flat slots }
            in
            go (c + 1) (p :: acc)
        in
        go 0 []
      in
      let* ruleset =
        if not (Codec.mem r ~id:sec_ruleset) then Ok None
        else
          let* v = Codec.map_ivec r ~id:sec_ruleset in
          if Ivec.length v <> 1 then
            Error (Codec.Corrupt "ruleset section length")
          else Ok (Some (Ivec.get v 0))
      in
      let* classmap = load_classmap r ~n_lines ~n_slots in
      Ok
        { p_version = version; p_n_lines = n_lines; p_n_slots = n_slots;
          p_syms = syms; p_texts = texts; p_owners = owners;
          p_owner_cls = owner_cls; p_line_idx = line_idx;
          p_stmt_idx = stmt_idx; p_owner_id = owner_id; p_cat = cat;
          p_sym = sym; p_packed = packed_snap; p_ruleset = ruleset;
          p_classmap = classmap }
  end

(* -- Load ------------------------------------------------------------- *)

(* Rebuild one category's postings with live symbol ids: re-key each entry
   through [live_of_snap], then re-sort key order (slot lists are unchanged
   and stay ascending).  Fresh flat ivecs — the mapped originals are
   dropped, and a remapped engine pays v1-shaped memory for its postings
   regardless of snapshot version (remaps are the rare skewed-symbol-table
   path). *)
let remap_packed live_of_snap (p : Packed.t) =
  let p = Packed.to_flat p in
  let nk = Packed.n_keys p in
  let newkey =
    Array.init nk (fun k -> live_of_snap.(Ivec.get p.Packed.keys k))
  in
  let order = Array.init nk Fun.id in
  Array.sort (fun a b -> compare newkey.(a) newkey.(b)) order;
  let keys = Ivec.create nk in
  let offsets = Ivec.create (nk + 1) in
  let slots = Ivec.create (Packed.n_slots p) in
  let pos = ref 0 in
  Ivec.set offsets 0 0;
  Array.iteri
    (fun i k ->
       Ivec.set keys i newkey.(k);
       Packed.iter_key p k (fun slot ->
           Ivec.set slots !pos slot;
           incr pos);
       Ivec.set offsets (i + 1) !pos)
    order;
  { Packed.keys; offsets; body = Packed.Flat slots }

(* Touch the small always-hot mapped sections — every arena column plus the
   postings directory (keys and offsets) of each category — so the first
   queries fault nothing in on the planner path.  A few pages per section;
   cheap enough to do unconditionally on load. *)
let prefault_hot ~(arena : Dex.Arena.t) ~(packed : Packed.t array) =
  let acc = ref 0 in
  let iv v = acc := !acc lxor Ivec.prefault v in
  iv arena.Dex.Arena.line_idx;
  iv arena.Dex.Arena.stmt_idx;
  iv arena.Dex.Arena.owner_id;
  iv arena.Dex.Arena.cat;
  iv arena.Dex.Arena.sym;
  Array.iter
    (fun (p : Packed.t) ->
       iv p.Packed.keys;
       iv p.Packed.offsets)
    packed;
  Sys.opaque_identity !acc

(* Touch every page of every mapped section up front — the hot sections
   plus the postings bodies and the line-text blob — so even the residual
   text-scan path faults nothing in.  OCaml's Unix has no madvise; a
   sequential one-touch-per-page walk gets the same readahead behaviour.
   Runs after validation (which already walked the coded runs), so the
   engine is usable either way; the knob only moves page-fault cost from
   first queries to load. *)
let prefault_engine ~(arena : Dex.Arena.t) ~(packed : Packed.t array)
    ~(texts : Dex.Textstore.t option) =
  let acc = ref (prefault_hot ~arena ~packed) in
  Array.iter
    (fun (p : Packed.t) ->
       match p.Packed.body with
       | Packed.Flat slots -> acc := !acc lxor Ivec.prefault slots
       | Packed.Coded b -> acc := !acc lxor Bvec.prefault b)
    packed;
  (match texts with
   | Some store -> acc := !acc lxor Dex.Textstore.prefault store
   | None -> ());
  Sys.opaque_identity !acc

let load ?(prefault = false) ~path program =
  let span0 = Obs.Span.start () in
  let* r = Codec.read_file ~path in
  let version = Codec.version r in
  let finish res =
    Codec.close r;
    (match res with
     | Ok engine ->
       Obs.Metrics.incr m_load_files;
       Obs.Metrics.add m_load_bytes (Codec.size r);
       Obs.Span.emit ~cat:"store" ~name:"store:load"
         ~attrs:
           [ ("path", Obs.Span.Str path);
             ("bytes", Obs.Span.Int (Codec.size r));
             ("version", Obs.Span.Int version);
             ("prefault", Obs.Span.Bool prefault);
             ("mode", Obs.Span.Str (Engine.index_mode engine)) ]
         span0
     | Error _ -> ());
    res
  in
  finish
    (let* p = parse r in
     let n_lines = p.p_n_lines and n_slots = p.p_n_slots in
     let texts_store =
       match p.p_texts with `Store (s, _, _) -> Some s | `Heap _ -> None
     in
     (* Re-intern the snapshot's symbol table; ids are stable when the
        live table evolved identically (the common warm start). *)
     let live_of_snap =
       Array.map (fun s -> Sym.id (Sym.intern s)) p.p_syms
     in
     let identity =
       let ok = ref true in
       Array.iteri (fun i l -> if i <> l then ok := false) live_of_snap;
       !ok
     in
     let packed =
       if identity then p.p_packed
       else Array.map (remap_packed live_of_snap) p.p_packed
     in
     if not identity then begin
       (* private (copy-on-write) mapping: rewriting in place never
          touches the file *)
       Obs.Metrics.incr m_load_remapped;
       for i = 0 to n_slots - 1 do
         let s = Ivec.get p.p_sym i in
         if s >= 0 then Ivec.set p.p_sym i live_of_snap.(s)
       done
     end;
     (* scatter arena rows to per-line metadata first so each line
        record is allocated exactly once *)
     let owner_of_line = Array.make n_lines (-1) in
     let stmt_of_line = Array.make n_lines (-1) in
     for i = 0 to n_slots - 1 do
       let li = Ivec.get p.p_line_idx i in
       owner_of_line.(li) <- Ivec.get p.p_owner_id i;
       stmt_of_line.(li) <- Ivec.get p.p_stmt_idx i
     done;
     let text_of_line =
       match p.p_texts with
       | `Store _ -> fun _ -> Dex.Textstore.pending
       | `Heap a -> fun li -> a.(li)
     in
     let lines =
       Array.init n_lines (fun li ->
           let oi = owner_of_line.(li) in
           if oi < 0 then
             { Dex.Disasm.text = text_of_line li; owner = None;
               owner_cls = None; stmt_idx = None;
               key = Dex.Disasm.K_none; tokens = None }
           else
             let si = stmt_of_line.(li) in
             { Dex.Disasm.text = text_of_line li;
               owner = Some p.p_owners.(oi);
               owner_cls = Some p.p_owner_cls.(oi);
               stmt_idx = (if si >= 0 then Some si else None);
               key = Dex.Disasm.K_none; tokens = None })
     in
     let arena =
       { Dex.Arena.line_idx = p.p_line_idx; stmt_idx = p.p_stmt_idx;
         owner_id = p.p_owner_id; cat = p.p_cat; sym = p.p_sym;
         owners = p.p_owners; owner_cls = p.p_owner_cls }
     in
     (* the hot sections (arena columns + postings directories) are
        always prefaulted — they are small and every query planner pass
        touches them; [prefault] extends the walk to the postings bodies
        and the text blob *)
     if prefault then begin
       Obs.Metrics.incr m_load_prefaulted;
       ignore (prefault_engine ~arena ~packed ~texts:texts_store)
     end
     else ignore (prefault_hot ~arena ~packed);
     let dex =
       match texts_store with
       | Some store ->
         Dex.Dexfile.of_store ~classmap:p.p_classmap lines arena program
           store
       | None ->
         { Dex.Dexfile.lines; arena; program; classmap = p.p_classmap;
           texts = None }
     in
     let engine = Engine.create_packed dex packed in
     (* carry the saved rule-set stamp onto the engine, so an analysis
        under a different rule set sees `Changed` and warns instead of
        silently trusting warm state *)
     (match p.p_ruleset with
      | Some h -> ignore (Engine.note_ruleset engine h)
      | None -> ());
     Ok engine)

(* -- Persisted analysis results --------------------------------------- *)

let load_results ~path =
  let* r = Codec.read_file ~path in
  let finish res =
    Codec.close r;
    res
  in
  finish
    (if not (Codec.mem r ~id:sec_results_offsets) then Ok [||]
     else
       load_strings_counted r ~off_id:sec_results_offsets
         ~blob_id:sec_results_blob ~what:"results")

(* -- Delta ------------------------------------------------------------ *)

type delta_report = {
  d_total : int;
  d_unchanged : int;
  d_changed : int;
  d_added : int;
  d_removed : int;
  d_lines_reused : int;
  d_lines_rendered : int;
  d_patched_postings_bytes : int;
  d_rebuilt_postings_bytes : int;
}

let delta_report_to_string d =
  Printf.sprintf
    "classes %d (unchanged %d, changed %d, added %d, removed %d), lines \
     reused %d / rendered %d, postings patched %d B / rebuilt %d B"
    d.d_total d.d_unchanged d.d_changed d.d_added d.d_removed
    d.d_lines_reused d.d_lines_rendered d.d_patched_postings_bytes
    d.d_rebuilt_postings_bytes

(* Merge two ascending slot runs (carried-over old slots and freshly built
   ones).  The old run is ascending because the old->new slot map is
   monotone whenever both builds lay classes out in the same relative
   order; a final sortedness check covers the exotic layouts (multidex
   partition order) by falling back to a sort. *)
let merge_runs a b =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
      if x <= y then go (x :: acc) a' b else go (y :: acc) b' a
  in
  let merged = go [] a b in
  let rec sorted = function
    | [] | [ _ ] -> true
    | x :: (y :: _ as tl) -> x < y && sorted tl
  in
  if sorted merged then merged else List.sort_uniq compare merged

(* What delta decided about one class of the new build, in new line
   order. *)
type plan_entry =
  | P_reuse of int  (* old classmap index; lines/slots/postings carried *)
  | P_render of Dex.Disasm.line array  (* changed or added: fresh lines *)

(* Patch a resident engine into an engine for [program].  This is the
   maintained-index scenario — an app-store service holding the previous
   version's index in memory, or the corpus cache that just loaded and
   freshness-checked a snapshot — and the core of the delta path: it works
   purely on live structures, so there is no file parse, no symbol
   re-interning (a live engine's ids are by definition the live ones), and
   the unchanged classes' line records are shared by reference with the
   old engine instead of being rebuilt.  Nothing in a line record depends
   on its position, and the only mutable field ([text]) lazily
   materialises to the same bytes through either version's store, so
   sharing is safe and leaves the old engine untouched. *)
let delta_of_engine old_engine program =
  let span0 = Obs.Span.start () in
  let dex_old = Engine.dexfile old_engine in
  let cm_old = dex_old.Dex.Dexfile.classmap in
  if
    Classmap.length cm_old = 0
    && Array.length dex_old.Dex.Dexfile.lines > 0
  then
    Error
      (Codec.Corrupt
         "engine has no class map (pre-delta snapshot or warm placeholder)")
  else begin
    let old_lines = dex_old.Dex.Dexfile.lines in
    let oa = dex_old.Dex.Dexfile.arena in
    let old_packed = Engine.export_packed old_engine in
    let old_n_slots = Ivec.length oa.Dex.Arena.line_idx in
    (* The new build's class list, in the canonical disassembly order
       (non-system classes sorted by name, as [Disasm.program_lines]
       emits them). *)
    let classes =
      Ir.Program.fold_classes program (fun c acc -> c :: acc) []
      |> List.filter (fun (c : Ir.Jclass.t) -> not c.Ir.Jclass.is_system)
      |> List.sort (fun (a : Ir.Jclass.t) b ->
             String.compare a.Ir.Jclass.name b.Ir.Jclass.name)
    in
    let n_unchanged = ref 0
    and n_changed = ref 0
    and n_added = ref 0 in
    let plan =
      List.map
        (fun (c : Ir.Jclass.t) ->
           let ih = Ir.Irhash.jclass c in
           match Classmap.find cm_old c.Ir.Jclass.name with
           | Some oi when cm_old.Classmap.ir_hash.(oi) = ih ->
             incr n_unchanged;
             (c, ih, P_reuse oi)
           | Some _ ->
             incr n_changed;
             (c, ih, P_render (Array.of_list (Dex.Disasm.class_lines c)))
           | None ->
             incr n_added;
             (c, ih, P_render (Array.of_list (Dex.Disasm.class_lines c))))
        classes
    in
    let n_classes = List.length plan in
    let n_removed = Classmap.length cm_old - !n_unchanged - !n_changed in
    (* sizes *)
    let n_lines = ref 0 and n_slots = ref 0 in
    let reused_lines = ref 0 and rendered_lines = ref 0 in
    List.iter
      (fun (_, _, pe) ->
         match pe with
         | P_reuse oi ->
           let nl =
             cm_old.Classmap.line_hi.(oi) - cm_old.Classmap.line_lo.(oi)
           in
           reused_lines := !reused_lines + nl;
           n_lines := !n_lines + nl;
           n_slots :=
             !n_slots
             + (cm_old.Classmap.slot_hi.(oi) - cm_old.Classmap.slot_lo.(oi))
         | P_render lines ->
           rendered_lines := !rendered_lines + Array.length lines;
           n_lines := !n_lines + Array.length lines;
           Array.iter
             (fun (l : Dex.Disasm.line) ->
                if l.Dex.Disasm.owner <> None then incr n_slots)
             lines)
      plan;
    let n_lines = !n_lines and n_slots = !n_slots in
    (* the new text geometry, present iff the old dexfile is store-backed:
       reused classes contribute their old blob byte ranges wholesale,
       rendered classes their fresh strings *)
    let old_store =
      match dex_old.Dex.Dexfile.texts with
      | Some store ->
        Some (Dex.Textstore.blob store, Dex.Textstore.offsets store)
      | None -> None
    in
    let blob_bytes = ref 0 in
    (match old_store with
     | None -> ()
     | Some (_, old_offs) ->
       List.iter
         (fun (_, _, pe) ->
            match pe with
            | P_reuse oi ->
              blob_bytes :=
                !blob_bytes
                + (Ivec.get old_offs cm_old.Classmap.line_hi.(oi)
                   - Ivec.get old_offs cm_old.Classmap.line_lo.(oi))
            | P_render lines ->
              Array.iter
                (fun (l : Dex.Disasm.line) ->
                   blob_bytes := !blob_bytes + String.length l.Dex.Disasm.text)
                lines)
         plan);
    let new_blob =
      match old_store with
      | Some _ -> Some (Bvec.create !blob_bytes, Ivec.create (n_lines + 1))
      | None -> None
    in
    (* splice: lines, arena columns, text blob, classmap — one pass in new
       class order *)
    let dummy = Dex.Disasm.header "" None in
    let lines = Array.make (max 1 n_lines) dummy in
    let line_idx = Ivec.create n_slots in
    let stmt_idx = Ivec.create n_slots in
    let owner_id = Ivec.create n_slots in
    let cat = Ivec.create n_slots in
    let sym = Ivec.create n_slots in
    let slot_map = Array.make (max 1 old_n_slots) (-1) in
    (* The old owner table is carried wholesale: reused slots keep their
       owner ids verbatim (no re-interning), and only the methods of
       re-rendered classes go through a table — seeded with the old ids
       of exactly those classes, so a re-rendered class reuses its old
       owner ids where the signature persists.  Owners of removed classes
       (or removed methods) linger as unreferenced entries; they are
       reclaimed by the next full save-from-cold. *)
    let rendered_cls = Hashtbl.create 16 in
    List.iter
      (fun ((c : Ir.Jclass.t), _, pe) ->
         match pe with
         | P_render _ -> Hashtbl.replace rendered_cls c.Ir.Jclass.name ()
         | P_reuse _ -> ())
      plan;
    let owner_tbl : int Ir.Jsig.Meth_tbl.t = Ir.Jsig.Meth_tbl.create 64 in
    Array.iteri
      (fun i m ->
         if Hashtbl.mem rendered_cls oa.Dex.Arena.owner_cls.(i) then
           Ir.Jsig.Meth_tbl.replace owner_tbl m i)
      oa.Dex.Arena.owners;
    let n_old_owners = Array.length oa.Dex.Arena.owners in
    let owners_tail = ref []
    and owner_cls_tail = ref []
    and n_owners = ref n_old_owners in
    let intern_owner meth cls =
      match Ir.Jsig.Meth_tbl.find_opt owner_tbl meth with
      | Some id -> id
      | None ->
        let id = !n_owners in
        incr n_owners;
        Ir.Jsig.Meth_tbl.add owner_tbl meth id;
        owners_tail := meth :: !owners_tail;
        owner_cls_tail := cls :: !owner_cls_tail;
        id
    in
    let cm_names = Array.make (max 1 n_classes) "" in
    let cm_line_lo = Array.make (max 1 n_classes) 0 in
    let cm_line_hi = Array.make (max 1 n_classes) 0 in
    let cm_slot_lo = Array.make (max 1 n_classes) 0 in
    let cm_slot_hi = Array.make (max 1 n_classes) 0 in
    let cm_text = Array.make (max 1 n_classes) 0L in
    let cm_ir = Array.make (max 1 n_classes) 0L in
    (* slot ranges of rendered classes, for the fresh postings pass *)
    let fresh_ranges = ref [] in
    let lpos = ref 0 and spos = ref 0 and bpos = ref 0 and ci = ref 0 in
    List.iter
      (fun ((c : Ir.Jclass.t), ih, pe) ->
         let line_base = !lpos and slot_base = !spos in
         (match pe with
          | P_reuse oi ->
            let llo = cm_old.Classmap.line_lo.(oi)
            and lhi = cm_old.Classmap.line_hi.(oi)
            and slo = cm_old.Classmap.slot_lo.(oi)
            and shi = cm_old.Classmap.slot_hi.(oi) in
            let nl = lhi - llo and nsl = shi - slo in
            (* share the unchanged class's line records *)
            Array.blit old_lines llo lines line_base nl;
            (match (new_blob, old_store) with
             | Some (blob, offs), Some (old_blob, old_offs) ->
               let o_lo = Ivec.get old_offs llo in
               let o_hi = Ivec.get old_offs lhi in
               let len = o_hi - o_lo in
               if len > 0 then
                 Bigarray.Array1.blit
                   (Bigarray.Array1.sub old_blob o_lo len)
                   (Bigarray.Array1.sub blob !bpos len);
               let doff = !bpos - o_lo in
               for li = llo to lhi - 1 do
                 Ivec.set offs (line_base + li - llo)
                   (Ivec.get old_offs li + doff)
               done;
               bpos := !bpos + len
             | _ -> ());
            (* arena columns: whole-class bulk copies; only [line_idx]
               needs a per-slot rebase *)
            if nsl > 0 then begin
              Bigarray.Array1.blit
                (Bigarray.Array1.sub oa.Dex.Arena.stmt_idx slo nsl)
                (Bigarray.Array1.sub stmt_idx !spos nsl);
              Bigarray.Array1.blit
                (Bigarray.Array1.sub oa.Dex.Arena.cat slo nsl)
                (Bigarray.Array1.sub cat !spos nsl);
              Bigarray.Array1.blit
                (Bigarray.Array1.sub oa.Dex.Arena.owner_id slo nsl)
                (Bigarray.Array1.sub owner_id !spos nsl);
              Bigarray.Array1.blit
                (Bigarray.Array1.sub oa.Dex.Arena.sym slo nsl)
                (Bigarray.Array1.sub sym !spos nsl);
              let dline = line_base - llo in
              for j = 0 to nsl - 1 do
                Ivec.set line_idx (!spos + j)
                  (Ivec.get oa.Dex.Arena.line_idx (slo + j) + dline);
                slot_map.(slo + j) <- !spos + j
              done
            end;
            spos := !spos + nsl;
            cm_text.(!ci) <- cm_old.Classmap.text_hash.(oi);
            lpos := line_base + nl
          | P_render cls_lines ->
            Array.iteri
              (fun j (l : Dex.Disasm.line) ->
                 lines.(line_base + j) <- l;
                 (match new_blob with
                  | Some (blob, offs) ->
                    Ivec.set offs (line_base + j) !bpos;
                    let s = l.Dex.Disasm.text in
                    for k = 0 to String.length s - 1 do
                      Bigarray.Array1.set blob (!bpos + k)
                        (String.unsafe_get s k)
                    done;
                    bpos := !bpos + String.length s
                  | None -> ());
                 match l.Dex.Disasm.owner with
                 | None -> ()
                 | Some owner ->
                   let ns = !spos in
                   incr spos;
                   Ivec.set line_idx ns (line_base + j);
                   Ivec.set stmt_idx ns
                     (Option.value ~default:(-1) l.Dex.Disasm.stmt_idx);
                   let cc, sy = Dex.Arena.key_code l.Dex.Disasm.key in
                   Ivec.set cat ns cc;
                   Ivec.set sym ns sy;
                   Ivec.set owner_id ns
                     (intern_owner owner
                        (Option.value ~default:"" l.Dex.Disasm.owner_cls)))
              cls_lines;
            lpos := line_base + Array.length cls_lines;
            if !spos > slot_base then
              fresh_ranges := (slot_base, !spos) :: !fresh_ranges;
            cm_text.(!ci) <-
              Classmap.text_hash_of_lines lines line_base !lpos);
         cm_names.(!ci) <- c.Ir.Jclass.name;
         cm_line_lo.(!ci) <- line_base;
         cm_line_hi.(!ci) <- !lpos;
         cm_slot_lo.(!ci) <- slot_base;
         cm_slot_hi.(!ci) <- !spos;
         cm_ir.(!ci) <- ih;
         incr ci)
      plan;
    (match new_blob with
     | Some (_, offs) -> Ivec.set offs n_lines !bpos
     | None -> ());
    let fresh_ranges = List.rev !fresh_ranges in
    let arena =
      { Dex.Arena.line_idx; stmt_idx; owner_id; cat; sym;
        owners =
          Array.append oa.Dex.Arena.owners
            (Array.of_list (List.rev !owners_tail));
        owner_cls =
          Array.append oa.Dex.Arena.owner_cls
            (Array.of_list (List.rev !owner_cls_tail)) }
    in
    (* postings: per category, carry surviving old CSR rows through the
       slot map (the old engine's keys are already live symbol ids) and
       add the rendered classes' fresh entries *)
    let patched_bytes = ref 0 and rebuilt_bytes = ref 0 in
    let patch_category c =
      let tbl : (int, int list ref * int list ref) Hashtbl.t =
        Hashtbl.create 1024
      in
      let bucket k =
        match Hashtbl.find_opt tbl k with
        | Some b -> b
        | None ->
          let b = (ref [], ref []) in
          Hashtbl.add tbl k b;
          b
      in
      let old_p = old_packed.(c) in
      let nk = Packed.n_keys old_p in
      for ki = 0 to nk - 1 do
        let k = Ivec.get old_p.Packed.keys ki in
        let carried, _ = bucket k in
        Packed.iter_key old_p ki (fun os ->
            let ns = slot_map.(os) in
            if ns >= 0 then begin
              carried := ns :: !carried;
              incr patched_bytes
            end)
      done;
      let add_fresh k ns =
        let _, fresh = bucket k in
        fresh := ns :: !fresh;
        incr rebuilt_bytes
      in
      List.iter
        (fun (lo, hi) ->
           for ns = lo to hi - 1 do
             if c = 6 then begin
               (* class tokens: every distinct class-descriptor token of
                  the slot's line (rendered lines carry them) *)
               let li = Ivec.get line_idx ns in
               match lines.(li).Dex.Disasm.tokens with
               | Some toks ->
                 Array.iter (fun tok -> add_fresh (Sym.id tok) ns) toks
               | None ->
                 Array.iter
                   (fun tok -> add_fresh (Sym.id tok) ns)
                   (Dex.Tokens.of_string lines.(li).Dex.Disasm.text)
             end
             else begin
               let cc = Ivec.get cat ns in
               let member =
                 if c = 4 then
                   cc = Dex.Arena.cat_field || cc = Dex.Arena.cat_static_field
                 else if c = 5 then cc = Dex.Arena.cat_static_field
                 else cc = c
               in
               if member then add_fresh (Ivec.get sym ns) ns
             end
           done)
        fresh_ranges;
      (* finalize: ascending keys, each key's run ascending *)
      let keys_l =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
      in
      let runs =
        List.map
          (fun k ->
             let carried, fresh = Hashtbl.find tbl k in
             (k, merge_runs (List.rev !carried) (List.rev !fresh)))
          keys_l
      in
      let runs = List.filter (fun (_, run) -> run <> []) runs in
      let nk = List.length runs in
      let total = List.fold_left (fun n (_, r) -> n + List.length r) 0 runs in
      let keys_v = Ivec.create nk in
      let offsets = Ivec.create (nk + 1) in
      let slots = Ivec.create total in
      let pos = ref 0 in
      Ivec.set offsets 0 0;
      List.iteri
        (fun i (k, run) ->
           Ivec.set keys_v i k;
           List.iter
             (fun s ->
                Ivec.set slots !pos s;
                incr pos)
             run;
           Ivec.set offsets (i + 1) !pos)
        runs;
      { Packed.keys = keys_v; offsets; body = Packed.Flat slots }
    in
    let packed = Array.init n_categories patch_category in
    let classmap =
      Classmap.v ~names:cm_names ~line_lo:cm_line_lo ~line_hi:cm_line_hi
        ~slot_lo:cm_slot_lo ~slot_hi:cm_slot_hi ~text_hash:cm_text
        ~ir_hash:cm_ir
    in
    let dex =
      match new_blob with
      | Some (blob, offs) ->
        (match Dex.Textstore.create ~blob ~offs with
         | store -> Dex.Dexfile.of_store ~classmap lines arena program store
         | exception Invalid_argument m ->
           (* impossible by construction; surface loudly if not *)
           invalid_arg ("Snapshot.delta: " ^ m))
      | None -> { Dex.Dexfile.lines; arena; program; classmap; texts = None }
    in
    let engine = Engine.create_packed ~mode:"delta" dex packed in
    (* carry the rule-set stamp, so an analysis under a different rule set
       sees `Changed` and warns instead of silently trusting warm state *)
    (match Engine.ruleset_stamp old_engine with
     | Some h -> ignore (Engine.note_ruleset engine h)
     | None -> ());
    let report =
      { d_total = n_classes; d_unchanged = !n_unchanged;
        d_changed = !n_changed; d_added = !n_added; d_removed = n_removed;
        d_lines_reused = !reused_lines; d_lines_rendered = !rendered_lines;
        d_patched_postings_bytes = 8 * !patched_bytes;
        d_rebuilt_postings_bytes = 8 * !rebuilt_bytes }
    in
    Obs.Metrics.incr m_delta_loads;
    Obs.Metrics.add m_delta_reused !n_unchanged;
    Obs.Metrics.add m_delta_rendered (!n_changed + !n_added);
    Obs.Span.emit ~cat:"store" ~name:"store:delta"
      ~attrs:
        [ ("classes", Obs.Span.Int n_classes);
          ("reused", Obs.Span.Int !n_unchanged);
          ("rendered", Obs.Span.Int (!n_changed + !n_added)) ]
      span0;
    Ok (engine, report)
  end

(* The file-based entry: load the old snapshot (full structural validation,
   symbol re-interning and key remapping happen there) and patch the
   resident engine it yields.  One splice implementation serves both the
   CLI `--delta-index` flow and the maintained-index flow. *)
let delta ~path program =
  let* old_engine = load ~path program in
  delta_of_engine old_engine program
