lib/search/query.ml: Printf
