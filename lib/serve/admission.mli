(** Admission control for the daemon: at most [max_inflight] requests
    execute at once; a request that cannot get a slot within
    [queue_timeout_ms] is rejected (typed, counted) instead of queueing
    unboundedly. *)

type t

val create : max_inflight:int -> queue_timeout_ms:float -> t

(** Take a slot if one is free right now. *)
val try_acquire : t -> bool

(** Take a slot, waiting up to the queue timeout; [false] means the
    request must be rejected as [Busy]. *)
val acquire : t -> bool

val release : t -> unit

(** Requests currently holding slots. *)
val inflight : t -> int

(** Requests rejected on queue timeout since creation. *)
val rejected : t -> int

val max_inflight : t -> int
