(** Compact struct-of-arrays hit arena over a disassembled dex plaintext.

    One slot per instruction line (a line with an enclosing method).  Each
    slot records the line's position, IR statement index, owner and — when
    the disassembler classified the line — the interned searchable operand
    and its category.  The search engine's per-category postings are sorted
    int vectors of slots, and a hit record is materialised from a slot only
    when a query actually returns it.

    The unboxed off-heap columns replace the per-hit records the old eager
    index allocated for every instruction line up front: seven hashtables of
    boxed [hit list] buckets become a handful of flat vectors shared by all
    categories, which both shrinks the live heap and stops the GC from
    tracing (or even seeing) a word per indexed line. *)

(* Category codes for [cat]; [-1] marks an unclassified slot. *)
let cat_invoke = 0
let cat_new_instance = 1
let cat_const_class = 2
let cat_const_string = 3
let cat_field = 4
let cat_static_field = 5
let cat_none = -1

type t = {
  line_idx : Ivec.t;  (** slot -> index into the dexfile line array *)
  stmt_idx : Ivec.t;  (** slot -> IR statement index; [-1] = none *)
  owner_id : Ivec.t;  (** slot -> index into [owners] / [owner_cls] *)
  cat : Ivec.t;       (** slot -> category code; [cat_none] = unkeyed *)
  sym : Ivec.t;       (** slot -> [Sym.id] of the operand; [-1] = unkeyed *)
  owners : Ir.Jsig.meth array;      (** unique enclosing methods *)
  owner_cls : string array;         (** enclosing class, parallel to [owners] *)
}

let length t = Ivec.length t.line_idx

let key_code : Disasm.key -> int * int = function
  | K_invoke s -> (cat_invoke, Sym.id s)
  | K_new_instance s -> (cat_new_instance, Sym.id s)
  | K_const_class s -> (cat_const_class, Sym.id s)
  | K_const_string s -> (cat_const_string, Sym.id s)
  | K_field s -> (cat_field, Sym.id s)
  | K_static_field s -> (cat_static_field, Sym.id s)
  | K_none -> (cat_none, -1)

let of_lines (lines : Disasm.line array) =
  let n_slots = ref 0 in
  Array.iter
    (fun (l : Disasm.line) -> if l.owner <> None then incr n_slots)
    lines;
  let n = !n_slots in
  let line_idx = Ivec.create n in
  let stmt_idx = Ivec.create n in
  let owner_id = Ivec.create n in
  let cat = Ivec.create n in
  let sym = Ivec.create n in
  let owner_tbl : int Ir.Jsig.Meth_tbl.t = Ir.Jsig.Meth_tbl.create 256 in
  let owners = ref [] and owner_cls = ref [] and n_owners = ref 0 in
  let slot = ref 0 in
  Array.iteri
    (fun i (l : Disasm.line) ->
       match l.owner with
       | None -> ()
       | Some owner ->
         let s = !slot in
         incr slot;
         Ivec.set line_idx s i;
         Ivec.set stmt_idx s (Option.value ~default:(-1) l.stmt_idx);
         Ivec.set owner_id s
           (match Ir.Jsig.Meth_tbl.find_opt owner_tbl owner with
            | Some id -> id
            | None ->
              let id = !n_owners in
              incr n_owners;
              Ir.Jsig.Meth_tbl.add owner_tbl owner id;
              owners := owner :: !owners;
              owner_cls := Option.value ~default:"" l.owner_cls :: !owner_cls;
              id);
         let c, sy = key_code l.key in
         Ivec.set cat s c;
         Ivec.set sym s sy)
    lines;
  { line_idx; stmt_idx; owner_id; cat; sym;
    owners = Array.of_list (List.rev !owners);
    owner_cls = Array.of_list (List.rev !owner_cls) }
