(* Tests for the hash-consed symbol table: intern/equality/round-trip over
   descriptor-shaped strings (inner classes, arrays, primitive signatures),
   the descriptor symbolizers, and concurrent interning from multiple
   domains. *)

let descriptor_edge_cases =
  [ "Lcom/connectsdk/service/NetcastTVService$1;";   (* anonymous inner *)
    "Lcom/example/Outer$Inner$Deeper;";
    "[Ljava/lang/String;";                           (* object array *)
    "[[I";                                           (* nested primitive array *)
    "I"; "Z"; "J"; "V";                              (* bare primitives *)
    "Lc/A;.m:(ILjava/lang/String;[B)V";              (* method descriptor *)
    "Lc/A;.f:Ljava/util/Map;";                       (* field descriptor *)
    "";                                              (* degenerate: empty *)
    "\"a, b\"" ]                                     (* quoted const-string *)

let test_round_trip () =
  List.iter
    (fun s ->
       let sym = Sym.intern s in
       Alcotest.(check string) ("round-trips " ^ s) s (Sym.to_string sym))
    descriptor_edge_cases

let test_equality_is_identity () =
  List.iter
    (fun s ->
       let a = Sym.intern s in
       (* force a fresh string with equal contents *)
       let b = Sym.intern (String.init (String.length s) (String.get s)) in
       Alcotest.(check bool) ("same symbol for " ^ s) true (Sym.equal a b);
       Alcotest.(check int) "same id" (Sym.id a) (Sym.id b);
       Alcotest.(check int) "same hash" (Sym.hash a) (Sym.hash b);
       Alcotest.(check bool) "to_string is physically shared" true
         (Sym.to_string a == Sym.to_string b))
    descriptor_edge_cases;
  let a = Sym.intern "La;" and b = Sym.intern "Lb;" in
  Alcotest.(check bool) "distinct strings, distinct symbols" false
    (Sym.equal a b)

let test_find () =
  let s = "Ltest/find/Probe$1;" in
  Alcotest.(check bool) "absent before intern" true (Sym.find s = None);
  let sym = Sym.intern s in
  Alcotest.(check bool) "found after intern" true (Sym.find s = Some sym)

let test_interned_monotone () =
  let before = Sym.interned () in
  ignore (Sym.intern "Ltest/monotone/Fresh;");
  let after = Sym.interned () in
  Alcotest.(check bool) "fresh intern grows the table" true (after > before);
  ignore (Sym.intern "Ltest/monotone/Fresh;");
  Alcotest.(check int) "re-intern does not" after (Sym.interned ())

(* The descriptor symbolizers agree with their string-rendering originals
   and intern to the same symbol as a direct intern of the rendering. *)
let test_descriptor_syms () =
  let open Ir in
  let m =
    Jsig.meth ~cls:"com.example.Outer$Inner" ~name:"run"
      ~params:[ Types.Int; Types.Array Types.string_ ] ~ret:Types.Void
  in
  let f = Jsig.field ~cls:"com.example.Cfg" ~name:"SPEC" ~ty:Types.string_ in
  Alcotest.(check string) "meth_desc_sym renders meth_desc"
    (Dex.Descriptor.meth_desc m)
    (Sym.to_string (Dex.Descriptor.meth_desc_sym m));
  Alcotest.(check string) "field_desc_sym renders field_desc"
    (Dex.Descriptor.field_desc f)
    (Sym.to_string (Dex.Descriptor.field_desc_sym f));
  Alcotest.(check string) "class_desc_sym renders class_desc"
    (Dex.Descriptor.class_desc "com.example.Outer$Inner")
    (Sym.to_string (Dex.Descriptor.class_desc_sym "com.example.Outer$Inner"));
  Alcotest.(check bool) "memoized symbol == direct intern" true
    (Sym.equal
       (Dex.Descriptor.meth_desc_sym m)
       (Sym.intern (Dex.Descriptor.meth_desc m)));
  Alcotest.(check bool) "subsig memo is stable" true
    (Sym.equal (Jsig.subsig_sym m) (Jsig.subsig_sym { m with cls = "other.C" }))

(* Concurrent interning: several domains intern overlapping string sets;
   every domain must observe the same id for the same string, and
   to_string must resolve symbols interned by other domains. *)
let test_concurrent_intern () =
  let n_domains = 4 and n_strings = 500 in
  let name i = Printf.sprintf "Ltest/conc/C%03d$%d;" (i mod n_strings) (i mod 7) in
  let worker d =
    Array.init (n_strings * 2) (fun i ->
        (* overlapping but domain-skewed interning order *)
        let s = name (i + (d * 13)) in
        let sym = Sym.intern s in
        (s, Sym.id sym))
  in
  let domains =
    List.init n_domains (fun d -> Domain.spawn (fun () -> worker d))
  in
  let results = List.map Domain.join domains in
  (* same string -> same id, across all domains *)
  let ids = Hashtbl.create 1024 in
  List.iter
    (Array.iter (fun (s, id) ->
         match Hashtbl.find_opt ids s with
         | None -> Hashtbl.replace ids s id
         | Some id' ->
           Alcotest.(check int) ("consistent id for " ^ s) id' id))
    results;
  (* symbols interned elsewhere resolve here, to the right string *)
  Hashtbl.iter
    (fun s id ->
       Alcotest.(check string) "cross-domain to_string" s
         (Sym.to_string (Option.get (Sym.find s)));
       Alcotest.(check int) "find agrees on id" id
         (Sym.id (Option.get (Sym.find s))))
    ids

let cases =
  [ Alcotest.test_case "descriptor round-trip" `Quick test_round_trip;
    Alcotest.test_case "equality is identity" `Quick test_equality_is_identity;
    Alcotest.test_case "find: no insertion" `Quick test_find;
    Alcotest.test_case "interned count monotone" `Quick test_interned_monotone;
    Alcotest.test_case "descriptor symbolizers" `Quick test_descriptor_syms;
    Alcotest.test_case "concurrent interning across domains" `Quick
      test_concurrent_intern ]

let suites = [ "sym", cases ]
