(** The caller-resolution broker: the single entry point through which the
    backward slicing answers "who calls / activates this method?".

    {!callers} classifies the callee (absorbing the old [Dispatch] module),
    runs the matching Sec. IV search strategy and returns a uniform
    {!resolution} whose {!caller} records each carry a ready-made
    [Ssg.edge] and a {!bind} describing the residual-taint mapping — so the
    slicer's traversals are generic, with no per-strategy match arms.
    Every resolution emits one {!Trace.event} through the context's sink. *)

(** Which Sec. IV mechanism answered the query.  [Icc] is selected by the
    residual {!demand}, the others by {!classify}. *)
type strategy = Basic | Advanced | Clinit | Lifecycle | Icc

val strategy_to_string : strategy -> string

(** Dense strategy slot: index into [Context.prov_resolutions] /
    [Provenance.strategy_names] (same order). *)
val strategy_index : strategy -> int

(** Classify [callee].  Order matters: [<clinit>] before everything (it is a
    static method but unsearchable); lifecycle handlers before the
    super/interface test (they override framework declarations yet need the
    domain-knowledge search, not object taint).  Never returns [Icc]. *)
val classify : Ir.Program.t -> Ir.Jsig.meth -> strategy

(** Summary of the residual taints at the callee's entry — all the broker
    needs for strategy selection and caller construction. *)
type demand = {
  has_intent : bool;
  has_this : bool;
  this_fields : Ir.Jsig.field list;
}

(** How the slicer maps residual taints onto a caller record. *)
type bind =
  | Bind_call of { invoke : Ir.Expr.invoke; from : int }
  | Bind_intent of { intent_local : string; from : int }
  | Bind_fields
  | Bind_async of {
      obj_local : string;
      ending : (Ir.Jsig.meth * int * Ir.Expr.invoke) option;
    }

(** One resolved caller: the method backtracking continues in, the SSG edge
    to record on acceptance, and the taint mapping. *)
type caller = {
  c_meth : Ir.Jsig.meth;
  c_edge : Ssg.edge;
  c_bind : bind;
}

(** The broker's uniform answer.  [entry] marks the callee itself as a
    reachable root; [complete] means the flow terminates here successfully;
    [callers] are the continuations. *)
type resolution = {
  strategy : strategy;
  entry : bool;
  complete : bool;
  callers : caller list;
}

(** Resolve the callers of [m].  Without [demand]: reach mode (control-flow
    reachability only).  With [demand]: dataflow mode — Intent-extra
    residuals at a lifecycle handler select the two-time ICC search,
    receiver-field residuals at an entry handler the predecessor-handler
    search. *)
val callers : ?demand:demand -> Context.t -> Ir.Jsig.meth -> resolution
