(** Fold recorded spans into a per-phase self-time profile: for every
    (category, name) pair, how many spans ran, their total (inclusive)
    time, their *self* time (inclusive minus direct children — where the
    wall clock actually went), and the single slowest instance.

    Nesting is rebuilt per (pid, tid) with the same laminar stack sweep the
    Chrome exporter uses; a span's direct children are subtracted from its
    self time exactly once (a child's own children are the child's
    problem). *)

type row = {
  r_cat : string;
  r_name : string;
  r_count : int;
  r_total_us : float;   (** inclusive *)
  r_self_us : float;    (** exclusive of direct children *)
  r_max_us : float;     (** slowest single span, inclusive *)
}

(* Self time per span within one thread: sort enclosing-first, run a stack
   of (span, direct-children-time cell); pushing a span charges its
   inclusive duration to its direct parent's cell. *)
let thread_self_times spans k =
  let spans =
    List.sort
      (fun (a : Span.span) (b : Span.span) ->
         match Float.compare a.t0_us b.t0_us with
         | 0 -> Float.compare b.t1_us a.t1_us
         | c -> c)
      spans
  in
  let stack = ref [] in
  let pop (s, children) = k s (Span.duration_us s -. !children) in
  let contains (outer : Span.span) (inner : Span.span) =
    inner.Span.t0_us >= outer.Span.t0_us
    && inner.Span.t1_us <= outer.Span.t1_us
  in
  List.iter
    (fun (s : Span.span) ->
       let rec unwind () =
         match !stack with
         | ((top, _) as frame) :: rest when not (contains top s) ->
           pop frame;
           stack := rest;
           unwind ()
         | _ -> ()
       in
       unwind ();
       (match !stack with
        | (_, children) :: _ -> children := !children +. Span.duration_us s
        | [] -> ());
       stack := (s, ref 0.0) :: !stack)
    spans;
  List.iter pop !stack

let compute spans =
  let groups : (int * int, Span.span list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
       let key = (s.Span.pid, s.Span.tid) in
       match Hashtbl.find_opt groups key with
       | Some cell -> cell := s :: !cell
       | None -> Hashtbl.add groups key (ref [ s ]))
    spans;
  let rows : (string * string, row ref) Hashtbl.t = Hashtbl.create 16 in
  let record (s : Span.span) self_us =
    let key = (s.Span.cat, s.Span.name) in
    let dur = Span.duration_us s in
    match Hashtbl.find_opt rows key with
    | Some r ->
      r :=
        { !r with
          r_count = !r.r_count + 1;
          r_total_us = !r.r_total_us +. dur;
          r_self_us = !r.r_self_us +. self_us;
          r_max_us = Float.max !r.r_max_us dur }
    | None ->
      Hashtbl.add rows key
        (ref
           { r_cat = s.Span.cat; r_name = s.Span.name; r_count = 1;
             r_total_us = dur; r_self_us = self_us; r_max_us = dur })
  in
  Hashtbl.iter (fun _ cell -> thread_self_times !cell record) groups;
  Hashtbl.fold (fun _ r acc -> !r :: acc) rows []
  |> List.sort (fun a b ->
      match Float.compare b.r_self_us a.r_self_us with
      | 0 -> compare (a.r_cat, a.r_name) (b.r_cat, b.r_name)
      | c -> c)

let us_pretty us =
  if us >= 1e6 then Printf.sprintf "%8.2f s " (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%8.2f ms" (us /. 1e3)
  else Printf.sprintf "%8.1f us" us

let render rows =
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let total_self = List.fold_left (fun a r -> a +. r.r_self_us) 0.0 rows in
  bpf "  %-28s %6s %11s %11s %11s %6s\n" "phase (cat/name)" "count" "self"
    "total" "max" "self%";
  List.iter
    (fun r ->
       bpf "  %-28s %6d %11s %11s %11s %5.1f%%\n"
         (r.r_cat ^ "/" ^ r.r_name)
         r.r_count (us_pretty r.r_self_us) (us_pretty r.r_total_us)
         (us_pretty r.r_max_us)
         (if total_self > 0.0 then 100.0 *. r.r_self_us /. total_self else 0.0))
    rows;
  Buffer.contents b
