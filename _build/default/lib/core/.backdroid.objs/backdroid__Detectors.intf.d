lib/core/detectors.mli: Facts Framework Ir
