lib/appgen/generator.ml: Buffer Char Dex Filler Framework Ir List Manifest Printf Rng Shape String Templates
