lib/core/reflection.ml: Array Expr Framework Hashtbl Ir Jclass Jmethod Jsig List Program Stmt String Value
