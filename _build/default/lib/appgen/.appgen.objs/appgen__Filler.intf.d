lib/appgen/filler.mli: Ir Manifest Rng
