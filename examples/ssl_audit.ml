(* SSL audit: detect insecure hostname verification, including the Fig. 6
   style SSG with an off-path static initializer track, and demonstrate the
   hierarchy-aware initial search fixing the paper's two false negatives.

   Run with: dune exec examples/ssl_audit.exe *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver

let analyze ?(subclass_aware = false) app =
  let cfg =
    { Driver.default_config with
      Driver.subclass_aware_initial_search = subclass_aware }
  in
  Driver.analyze ~cfg ~dex:app.G.dex ~manifest:app.G.manifest ()

let () =
  (* 1. a clinit-field flow: the verifier choice lives in a static field set
     by an off-path <clinit>, like the MP3LocalServer.PORT track of Fig. 6 *)
  let app =
    G.generate
      { G.default_config with
        G.seed = 7;
        name = "com.studiosol.palcomp3.sim";
        filler_classes = 6;
        plants =
          [ { G.shape = Shape.Clinit_field; sink = Sinks.cipher; insecure = true } ] }
  in
  let r = analyze app in
  print_endline "== Fig. 6-style SSG (off-path static initializer track) ==";
  List.iter
    (fun (rep : Driver.sink_report) ->
       match rep.ssg with
       | Some ssg when rep.reachable -> Fmt.pr "%a@." Backdroid.Ssg.pp ssg
       | _ -> ())
    r.Driver.reports;

  (* 2. the subclassed-sink false negative and its fix *)
  let fn_app =
    G.generate
      { G.default_config with
        G.seed = 8;
        name = "com.gta.nslm2.sim";
        filler_classes = 6;
        plants =
          [ { G.shape = Shape.Subclassed_sink; sink = Sinks.ssl_factory;
              insecure = true } ] }
  in
  print_endline "== the Sec. VI-C false negative (DefaultSSLSocketFactory) ==";
  let default_run = analyze fn_app in
  Printf.printf "default initial search : %d sink calls found (paper: miss)\n"
    (List.length default_run.Driver.reports);
  let fixed_run = analyze ~subclass_aware:true fn_app in
  Printf.printf "hierarchy-aware search : %d sink calls found, %d insecure\n"
    (List.length fixed_run.Driver.reports)
    (List.length (Driver.insecure_reports fixed_run));

  (* 3. an allow-all verifier reached through a callback *)
  let cb_app =
    G.generate
      { G.default_config with
        G.seed = 9;
        name = "com.audit.sslcb";
        filler_classes = 6;
        plants =
          [ { G.shape = Shape.Callback; sink = Sinks.ssl_factory; insecure = true };
            { G.shape = Shape.Callback; sink = Sinks.https_conn; insecure = false } ] }
  in
  print_endline "\n== callback-registered verifiers ==";
  let r = analyze cb_app in
  List.iter
    (fun (rep : Driver.sink_report) ->
       Printf.printf "%-12s fact=%-45s verdict=%s\n"
         rep.sink.Sinks.name
         (Backdroid.Facts.to_string rep.fact)
         (Backdroid.Detectors.verdict_to_string rep.verdict))
    r.Driver.reports
