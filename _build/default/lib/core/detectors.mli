(** Security verdicts over the propagated sink-parameter facts: the crypto
    (ECB) and SSL (hostname verification) misuse detectors of the paper's
    evaluation, plus reporting defaults for the auxiliary sinks. *)

module Sinks = Framework.Sinks
type verdict = Insecure | Secure | Unresolved
val verdict_to_string : verdict -> string

(** Does the class's [verify] method constantly accept (return 1)?  Used for
    app-defined [javax.net.ssl.HostnameVerifier] implementations. *)
val verifier_accepts_all : Ir.Program.t -> string -> bool option
val classify_ssl : Ir.Program.t -> Facts.t -> verdict
val classify : Ir.Program.t -> Sinks.t -> Facts.t -> verdict
