lib/search/engine.mli: Dex Ir Query
