(** Models of Java / Android APIs for the forward analysis (Sec. V-B:
    "we mimic arithmetic operations and model Android/Java APIs").  Each
    model maps (receiver fact, argument facts) to a result fact, updating
    points-to members where the API stores state. *)

module Api = Framework.Api
val sb_parts_key : string
val intent_action_key : string
val intent_target_key : string
val get_parts : Facts.obj -> Facts.t list

(** Evaluate a framework API call.  Returns [Some fact] when modelled, [None]
    when the generic default (Unknown result) should apply. *)
val eval :
  Ir.Jsig.meth ->
  Facts.t option ->
  Facts.t list -> Facts.t option

(** Arithmetic mimicry for BinopExpr. *)
val binop :
  Ir.Expr.binop ->
  Facts.t -> Facts.t -> Facts.t
