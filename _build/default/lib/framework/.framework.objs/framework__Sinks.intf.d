lib/framework/sinks.mli: Ir
