(** The self-contained slicing graph (SSG, Sec. V-A).

    One SSG is generated per sink API call.  It records (i) the raw typed
    statements visited by the backward slicing, wrapped as {!type:unit_}
    nodes; (ii) every inter-procedural relationship resolved by bytecode
    search, as typed {!type:edge}s; (iii) the hierarchical taint map (one
    taint set per tracked method, plus a global static-field set); and (iv) a
    special static track for off-path [<clinit>] methods added on demand. *)

(** An SSGUnit: a raw typed statement plus its node identity. *)
type unit_ = {
  id : int;
  meth : Ir.Jsig.meth;
  stmt_idx : int;
  stmt : Ir.Stmt.t;
}

(** Inter-procedural relationships uncovered by the bytecode searches. *)
type edge =
    Call of { caller : Ir.Jsig.meth; site : int; callee : Ir.Jsig.meth; }
  | Contained of { caller : Ir.Jsig.meth; site : int; callee : Ir.Jsig.meth;
    }
  | Async of { caller : Ir.Jsig.meth; ctor_site : int; ctor_local : string;
      callee : Ir.Jsig.meth; chain : (Ir.Jsig.meth * int) list;
      ending : Ir.Jsig.meth;
    }
  | Icc of { caller : Ir.Jsig.meth; site : int; handler : Ir.Jsig.meth; }
  | Lifecycle of { pre : Ir.Jsig.meth; handler : Ir.Jsig.meth; }

(** same-component handler ordering, e.g. onCreate before onResume *)
type t = {
  sink : Framework.Sinks.t;
  sink_meth : Ir.Jsig.meth;
  sink_site : int;
  mutable nodes : unit_ list;
  mutable edges : edge list;
  mutable entry_methods : Ir.Jsig.meth list;
  mutable static_track : Ir.Jsig.meth list;
  taint_map : (string, string list) Hashtbl.t;
  mutable global_static_taints : Ir.Jsig.field list;
  mutable next_id : int;
  mutable reachable : bool;
}
val create :
  sink:Framework.Sinks.t -> sink_meth:Ir.Jsig.meth -> sink_site:int -> t
val add_node :
  t -> meth:Ir.Jsig.meth -> stmt_idx:int -> stmt:Ir.Stmt.t -> unit_
val add_edge : t -> edge -> unit
val add_entry : t -> Ir.Jsig.meth -> unit
val add_static_track : t -> Ir.Jsig.meth -> unit
val record_taint : t -> meth:Ir.Jsig.meth -> string -> unit
val add_global_static_taint : t -> Ir.Jsig.field -> unit
val remove_global_static_taint : t -> Ir.Jsig.field -> unit
val node_count : t -> int
val edge_count : t -> int

(** Async / ICC / lifecycle continuation edges out of [m] — followed by the
    forward analysis after interpreting [m] itself. *)
val continuations_of : t -> Ir.Jsig.meth -> edge list

(** Fig. 6-style textual dump of the SSG. *)
val pp : Format.formatter -> t -> unit
