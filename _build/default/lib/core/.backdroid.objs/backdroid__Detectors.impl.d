lib/core/detectors.ml: Array Facts Framework Ir Jmethod Jsig List Program Stmt String Value
