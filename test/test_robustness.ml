(* Robustness and auxiliary-sink tests: degenerate inputs must not crash the
   pipeline, multidex must be transparent, analysis must be deterministic,
   and the catalog's auxiliary sinks must resolve their facts. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver

let analyze ?cfg (app : G.app) =
  Driver.analyze ?cfg ~dex:app.dex ~manifest:app.manifest ()

let test_empty_app () =
  let app =
    G.generate
      { G.default_config with G.seed = 2; name = "com.rob.empty"; filler_classes = 0 }
  in
  let r = analyze app in
  Alcotest.(check int) "no sink calls" 0 (List.length r.Driver.reports)

let test_filler_only_app () =
  let app =
    G.generate
      { G.default_config with G.seed = 3; name = "com.rob.filler"; filler_classes = 20 }
  in
  let r = analyze app in
  Alcotest.(check int) "no sinks in filler" 0 r.Driver.stats.Driver.sink_calls

let test_no_manifest_components () =
  let app =
    G.generate
      { G.default_config with
        G.seed = 4;
        name = "com.rob.nomanifest";
        filler_classes = 2;
        plants =
          [ { G.shape = Shape.Direct; sink = Sinks.cipher; insecure = true } ] }
  in
  let empty_manifest =
    Manifest.App_manifest.make ~package:"com.rob.nomanifest" ~components:[]
  in
  let r = Driver.analyze ~dex:app.G.dex ~manifest:empty_manifest () in
  Alcotest.(check bool) "sink found" true (List.length r.Driver.reports >= 1);
  Alcotest.(check int) "nothing reachable without registered components" 0
    (List.length
       (List.filter (fun (rep : Driver.sink_report) -> rep.reachable)
          r.Driver.reports))

let test_deterministic_analysis () =
  let mk () =
    G.generate
      { G.default_config with
        G.seed = 5;
        name = "com.rob.det";
        filler_classes = 6;
        plants =
          [ { G.shape = Shape.Callback; sink = Sinks.ssl_factory; insecure = true };
            { G.shape = Shape.Icc_explicit; sink = Sinks.cipher; insecure = false } ] }
  in
  let summarize r =
    List.map
      (fun (rep : Driver.sink_report) ->
         ( Ir.Jsig.meth_to_string rep.meth, rep.site, rep.reachable,
           Backdroid.Facts.to_string rep.fact,
           Backdroid.Detectors.verdict_to_string rep.verdict ))
      r.Driver.reports
    |> List.sort compare
  in
  let a = summarize (analyze (mk ())) and b = summarize (analyze (mk ())) in
  Alcotest.(check bool) "identical reports across runs" true (a = b)

let test_multidex_transparent () =
  let base =
    { G.default_config with
      G.seed = 6;
      name = "com.rob.mdx";
      filler_classes = 10;
      plants =
        [ { G.shape = Shape.Super_class; sink = Sinks.cipher; insecure = true } ] }
  in
  let single = analyze (G.generate base) in
  let multi = analyze (G.generate { base with G.multidex = true }) in
  Alcotest.(check int) "same insecure count"
    (List.length (Driver.insecure_reports single))
    (List.length (Driver.insecure_reports multi))

let test_auxiliary_sink_facts () =
  let check sink shape expect =
    let app =
      G.generate
        { G.default_config with
          G.seed = 7;
          name = "com.rob.aux";
          filler_classes = 2;
          plants = [ { G.shape = shape; sink; insecure = true } ] }
    in
    let cfg = { Driver.default_config with Driver.rules = Rules.Builtin.catalog } in
    let r = analyze ~cfg app in
    match
      List.filter (fun (rep : Driver.sink_report) -> rep.reachable)
        r.Driver.reports
    with
    | [ rep ] ->
      Alcotest.(check string)
        (sink.Sinks.name ^ " fact")
        expect
        (Backdroid.Facts.to_string rep.fact)
    | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 reachable report, got %d" (List.length l))
  in
  check Sinks.server_socket Shape.Direct "8080";
  check Sinks.local_socket Shape.Static_chain "\"open-socket\"";
  check Sinks.sms Shape.Direct "\"premium-text\""

let test_all_catalog_initial_search () =
  (* all six catalog sinks planted in one app; every occurrence located *)
  let plants =
    List.map
      (fun sink -> { G.shape = Shape.Direct; sink; insecure = true })
      Sinks.catalog
  in
  let app =
    G.generate
      { G.default_config with
        G.seed = 8; name = "com.rob.catalog"; filler_classes = 2; plants }
  in
  let cfg = { Driver.default_config with Driver.rules = Rules.Builtin.catalog } in
  let r = analyze ~cfg app in
  Alcotest.(check int) "six occurrences" 6 r.Driver.stats.Driver.sink_calls

let test_large_sink_count () =
  (* a 121-sink app completes quickly and reports every occurrence *)
  let rng = Appgen.Rng.create 99 in
  let plants =
    List.init 121 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.0)
  in
  let app =
    G.generate
      { G.default_config with
        G.seed = 9; name = "com.rob.many"; filler_classes = 10; plants }
  in
  let t0 = Unix.gettimeofday () in
  let r = analyze app in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "all sink calls located" true
    (r.Driver.stats.Driver.sink_calls >= 110);
  Alcotest.(check bool) (Printf.sprintf "fast enough (%.2fs)" dt) true (dt < 5.0)

let test_sink_in_clinit_direct () =
  (* a sink invoked directly inside a <clinit> body: dispatch must route the
     containing method through the recursive class-use search *)
  let module B = Ir.Builder in
  let cls = "com.rob.ci.Holder" in
  let holder =
    Ir.Jclass.make cls
      ~methods:
        [ B.clinit ~cls (fun mb ->
              let v = B.const_str mb "AES/ECB/PKCS5Padding" in
              ignore
                (B.invoke_ret mb ~kind:Ir.Expr.Static
                   ~callee:Framework.Api.cipher_get_instance
                   ~args:[ Ir.Value.Local v ] ())) ]
  in
  let user =
    Ir.Jclass.make ~super:(Some "android.app.Activity") "com.rob.ci.Main"
      ~methods:
        [ B.constructor ~cls:"com.rob.ci.Main" (fun mb ->
              B.invoke mb ~base:(B.this mb) ~kind:Ir.Expr.Special
                ~callee:
                  (Ir.Jsig.meth ~cls:"android.app.Activity" ~name:"<init>"
                     ~params:[] ~ret:Ir.Types.Void)
                ~args:[] ());
          B.method_ ~cls:"com.rob.ci.Main" ~name:"onCreate"
            ~params:[ Framework.Api.bundle_t ] ~ret:Ir.Types.Void (fun mb ->
              ignore
                (B.sget mb
                   (Ir.Jsig.field ~cls ~name:"X" ~ty:Ir.Types.Int))) ]
  in
  let program =
    Ir.Program.of_classes (Framework.Stubs.classes () @ [ holder; user ])
  in
  let manifest =
    Manifest.App_manifest.make ~package:"com.rob.ci"
      ~components:
        [ Manifest.Component.make ~kind:Manifest.Component.Activity
            "com.rob.ci.Main" ]
  in
  let r = Driver.analyze ~dex:(Dex.Dexfile.of_program program) ~manifest () in
  Alcotest.(check int) "clinit sink detected" 1
    (List.length (Driver.insecure_reports r))

let cases =
  [ Alcotest.test_case "empty app" `Quick test_empty_app;
    Alcotest.test_case "filler-only app" `Quick test_filler_only_app;
    Alcotest.test_case "no manifest components" `Quick test_no_manifest_components;
    Alcotest.test_case "deterministic analysis" `Quick test_deterministic_analysis;
    Alcotest.test_case "multidex transparent" `Quick test_multidex_transparent;
    Alcotest.test_case "auxiliary sink facts" `Quick test_auxiliary_sink_facts;
    Alcotest.test_case "full catalog initial search" `Quick
      test_all_catalog_initial_search;
    Alcotest.test_case "121-sink app" `Quick test_large_sink_count;
    Alcotest.test_case "sink directly in clinit" `Quick test_sink_in_clinit_direct ]

let suites = [ "robustness", cases ]
