(** The security-sensitive sink API catalog.

    The paper's evaluation targets three sink APIs (crypto + 2× SSL); the
    catalog also carries the "uncommon" sinks mentioned in Sec. VI-D so
    downstream users can vet other sink-based problems. *)

type kind =
  | Crypto_cipher    (** [Cipher.getInstance(spec)] — insecure if ECB *)
  | Ssl_hostname     (** [setHostnameVerifier(v)] — insecure if allow-all *)
  | Sms_send
  | Server_socket
  | Local_socket

type t = {
  kind : kind;
  msig : Ir.Jsig.meth;
  param_index : int;
      (** index of the security-relevant parameter (receiver excluded) *)
}

let kind_to_string = function
  | Crypto_cipher -> "crypto-cipher"
  | Ssl_hostname -> "ssl-hostname"
  | Sms_send -> "sms-send"
  | Server_socket -> "server-socket"
  | Local_socket -> "local-socket"

let cipher = { kind = Crypto_cipher; msig = Api.cipher_get_instance; param_index = 0 }

let ssl_factory =
  { kind = Ssl_hostname; msig = Api.ssl_set_hostname_verifier; param_index = 0 }

let https_conn =
  { kind = Ssl_hostname; msig = Api.https_set_hostname_verifier; param_index = 0 }

let sms = { kind = Sms_send; msig = Api.sms_send_text_message; param_index = 2 }
let server_socket =
  { kind = Server_socket; msig = Api.server_socket_init; param_index = 0 }
let local_socket =
  { kind = Local_socket; msig = Api.local_server_socket_init; param_index = 0 }

(** The three sink APIs of the paper's evaluation (Sec. VI-A). *)
let primary = [ cipher; ssl_factory; https_conn ]

let catalog = [ cipher; ssl_factory; https_conn; sms; server_socket; local_socket ]

let find_by_msig sinks msig =
  List.find_opt (fun s -> Ir.Jsig.meth_equal s.msig msig) sinks

(** An ECB (or mode-less) transformation string is the insecure crypto
    configuration the detectors flag. *)
let cipher_spec_is_insecure spec =
  let has_sub ~sub s =
    let ls = String.length s and lb = String.length sub in
    let rec at i = i + lb <= ls && (String.sub s i lb = sub || at (i + 1)) in
    lb = 0 || at 0
  in
  has_sub ~sub:"ECB" spec || not (String.contains spec '/')
