(** Class-descriptor token extraction: the [Lcom/foo/Bar;] occurrences of a
    dexdump line.  The disassembler attaches each instruction line's token
    set at render time ({!Disasm.line.tokens}), so the search engine's
    class-tokens postings build is a pure pass over precomputed symbol
    arrays — no line is ever re-tokenized per build. *)

(** Apply [f] to every token occurrence of [s] in order, interning each. *)
val iter : string -> (Sym.t -> unit) -> unit

(** Distinct tokens of [s], sorted by symbol id.  Token-free strings share
    one empty array. *)
val of_string : string -> Sym.t array

(** Memoized {!of_string} of an interned operand: each distinct operand
    symbol tokenizes once per process.  Keyed instruction lines render
    their tokens only inside the operand (everything before the final
    [", "] is mnemonics and registers), so this covers them exactly. *)
val of_operand : Sym.t -> Sym.t array
