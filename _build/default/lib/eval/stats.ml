(** Small statistics helpers for the experiment harness. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

(** Median (lower median for even-length lists, as the paper reports). *)
let median xs =
  match xs with
  | [] -> nan
  | _ ->
    let s = sorted xs in
    let n = List.length s in
    if n mod 2 = 1 then List.nth s (n / 2)
    else (List.nth s (n / 2 - 1) +. List.nth s (n / 2)) /. 2.0

let percentile p xs =
  match xs with
  | [] -> nan
  | _ ->
    let s = sorted xs in
    let n = List.length s in
    let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1) +. 0.5) in
    List.nth s (max 0 (min (n - 1) idx))

let minimum xs = List.fold_left min infinity xs
let maximum xs = List.fold_left max neg_infinity xs

(** Count of elements within [lo, hi). *)
let count_in ~lo ~hi xs = List.length (List.filter (fun x -> x >= lo && x < hi) xs)

(** Histogram over bucket boundaries: [buckets = [b1; b2; ...]] yields counts
    for [< b1), [b1, b2), ..., [bn, inf). *)
let histogram ~buckets xs =
  let rec go lo = function
    | [] -> [ List.length (List.filter (fun x -> x >= lo) xs) ]
    | b :: rest -> count_in ~lo ~hi:b xs :: go b rest
  in
  go neg_infinity buckets

let fraction num den =
  if den = 0 then 0.0 else float_of_int num /. float_of_int den
