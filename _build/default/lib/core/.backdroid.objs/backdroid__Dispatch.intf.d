lib/core/dispatch.mli: Ir
