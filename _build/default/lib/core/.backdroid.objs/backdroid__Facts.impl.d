lib/core/facts.ml: Fmt Hashtbl Ir Printf String
