(* Tests for the bytecode search engine and its caches. *)

open Ir
module Q = Bytesearch.Query
module E = Bytesearch.Engine

let b_static cls name params ret = Jsig.meth ~cls ~name ~params ~ret

let fixture () =
  let callee = b_static "s.Util" "enc" [ Types.string_ ] Types.Void in
  let fld = Jsig.field ~cls:"s.Cfg" ~name:"SPEC" ~ty:Types.string_ in
  let caller cls =
    Jclass.make cls
      ~methods:
        [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls ~name:"go"
            ~params:[] ~ret:Types.Void (fun mb ->
              let s = Ir.Builder.const_str mb "AES" in
              Ir.Builder.call_static mb ~callee ~args:[ Ir.Value.Local s ]) ]
  in
  let cfg =
    Jclass.make "s.Cfg" ~fields:[ fld ]
      ~methods:
        [ Ir.Builder.clinit ~cls:"s.Cfg" (fun mb ->
              let v = Ir.Builder.const_str mb "X" in
              Ir.Builder.sput mb fld (Ir.Value.Local v));
          Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls:"s.Cfg"
            ~name:"read" ~params:[] ~ret:Types.string_ (fun mb ->
              let v = Ir.Builder.sget mb fld in
              Ir.Builder.return_val mb (Ir.Value.Local v)) ]
  in
  let util =
    Jclass.make "s.Util"
      ~methods:
        [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls:"s.Util"
            ~name:"enc" ~params:[ Types.string_ ] ~ret:Types.Void (fun _ -> ()) ]
  in
  let user =
    Jclass.make "s.User"
      ~methods:
        [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls:"s.User"
            ~name:"use" ~params:[] ~ret:Types.Void (fun mb ->
              ignore
                (Ir.Builder.invoke_ret mb ~kind:Expr.Static
                   ~callee:(b_static "s.Cfg" "read" [] Types.string_) ~args:[] ())) ]
  in
  let p = Ir.Program.of_classes [ caller "s.A"; caller "s.B"; cfg; util; user ] in
  E.create (Dex.Dexfile.of_program p), callee, fld

let test_invocation_search () =
  let e, callee, _ = fixture () in
  let hits = E.run e (Q.invocation (Dex.Descriptor.meth_desc callee)) in
  let owners =
    List.map (fun (h : E.hit) -> h.owner.Jsig.cls) hits |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "two callers" [ "s.A"; "s.B" ] owners

let test_field_search () =
  let e, _, fld = fixture () in
  let hits = E.run e (Q.static_field_access (Dex.Descriptor.field_desc fld)) in
  Alcotest.(check int) "sput in clinit + sget in read" 2 (List.length hits)

let test_const_string_search () =
  let e, _, _ = fixture () in
  let hits = E.run e (Q.const_string "AES") in
  Alcotest.(check int) "one per caller" 2 (List.length hits)

let test_class_use_excludes_self () =
  let e, _, _ = fixture () in
  let hits = E.run e (Q.class_use "Ls/Cfg;") in
  let owners =
    List.map (fun (h : E.hit) -> h.owner_cls) hits |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "only the external user" [ "s.User" ] owners

let test_no_hits () =
  let e, _, _ = fixture () in
  Alcotest.(check int) "absent signature finds nothing" 0
    (List.length (E.run e (Q.invocation "Lno/Such;.m:()V")))

let test_cache_hits () =
  let e, callee, _ = fixture () in
  let q = Q.invocation (Dex.Descriptor.meth_desc callee) in
  ignore (E.run e q);
  ignore (E.run e q);
  ignore (E.run e q);
  Alcotest.(check int) "three searches" 3 (E.total_searches e);
  Alcotest.(check int) "two cached" 2 (E.cached_searches e);
  Alcotest.(check bool) "rate 2/3" true (abs_float (E.cache_rate e -. 0.6667) < 0.01)

let test_cache_categories () =
  let e, callee, fld = fixture () in
  ignore (E.run e (Q.invocation (Dex.Descriptor.meth_desc callee)));
  ignore (E.run e (Q.static_field_access (Dex.Descriptor.field_desc fld)));
  ignore (E.run e (Q.class_use "Ls/Cfg;"));
  let cats = E.category_stats e |> List.map (fun (c, _, _) -> c) in
  Alcotest.(check bool) "caller category present" true
    (List.mem Q.Cat_caller cats);
  Alcotest.(check bool) "field category present" true (List.mem Q.Cat_field cats);
  Alcotest.(check bool) "class category present" true (List.mem Q.Cat_class cats)

let test_command_rendering () =
  Alcotest.(check bool) "commands are distinct cache keys" true
    (not
       (String.equal
          (Q.to_command (Q.invocation "La;.m:()V"))
          (Q.to_command (Q.new_instance "La;.m:()V"))))

(* -- rarest-first conjunctive planner -------------------------------- *)

let hit_fingerprint (h : E.hit) = Printf.sprintf "%d:%s" h.line_no h.text

(* The planner's contract, computed the slow way: primary hits whose owner
   matches every conjunct. *)
let manual_conj e primary conjuncts =
  let owner_sets =
    List.map
      (fun q -> List.map (fun (h : E.hit) -> h.owner) (E.run e q))
      conjuncts
  in
  List.filter
    (fun (h : E.hit) ->
       List.for_all (List.mem h.owner) owner_sets)
    (E.run e primary)

let test_conj_planner () =
  let e, callee, fld = fixture () in
  let inv = Q.invocation (Dex.Descriptor.meth_desc callee) in
  let aes = Q.const_string "AES" in
  let sf = Q.static_field_access (Dex.Descriptor.field_desc fld) in
  Alcotest.(check (list string)) "empty conjunction" []
    (List.map hit_fingerprint (E.run_conj e []));
  Alcotest.(check (list string)) "singleton == run"
    (List.map hit_fingerprint (E.run e inv))
    (List.map hit_fingerprint (E.run_conj e [ inv ]));
  (* s.A.go and s.B.go both invoke enc and carry "AES" *)
  Alcotest.(check (list string)) "agreeing conjunct keeps all hits"
    (List.map hit_fingerprint (E.run e inv))
    (List.map hit_fingerprint (E.run_conj e [ inv; aes ]));
  (* no method both invokes enc and touches s.Cfg.SPEC: short-circuit *)
  Alcotest.(check int) "disjoint conjunct empties the result" 0
    (List.length (E.run_conj e [ inv; sf ]))

let test_conj_matches_manual_across_modes () =
  let e, callee, fld = fixture () in
  let scan = E.create ~indexed:false (E.dexfile e) in
  let inv = Q.invocation (Dex.Descriptor.meth_desc callee) in
  let aes = Q.const_string "AES" in
  let sf = Q.static_field_access (Dex.Descriptor.field_desc fld) in
  let cu = Q.class_use "Ls/Cfg;" in
  let plans =
    [ [ inv; aes ]; [ aes; inv ]; [ sf; cu ]; [ cu; sf ];
      [ inv; aes; sf ]; [ aes; Q.raw "invoke-static" ];
      [ inv; Q.invocation "Lno/Such;.m:()V" ] ]
  in
  List.iter
    (fun plan ->
       let expect =
         List.map hit_fingerprint
           (manual_conj e (List.hd plan) (List.tl plan))
       in
       Alcotest.(check (list string)) "indexed planner == manual filter"
         expect
         (List.map hit_fingerprint (E.run_conj e plan));
       Alcotest.(check (list string)) "scan planner == indexed planner"
         expect
         (List.map hit_fingerprint (E.run_conj scan plan)))
    plans

(* property: searching for a generated static callee always finds the call
   the builder emitted *)
let search_finds_planted =
  QCheck.Test.make ~name:"invocation search finds planted calls" ~count:50
    QCheck.(make Gen.(int_bound 1000))
    (fun n ->
       let cls = Printf.sprintf "p.C%d" n in
       let callee =
         Jsig.meth ~cls:"p.Callee" ~name:(Printf.sprintf "m%d" n) ~params:[]
           ~ret:Types.Void
       in
       let caller =
         Jclass.make cls
           ~methods:
             [ Ir.Builder.method_ ~access:Ir.Builder.static_access ~cls
                 ~name:"go" ~params:[] ~ret:Types.Void (fun mb ->
                   Ir.Builder.call_static mb ~callee ~args:[]) ]
       in
       let callee_cls =
         Jclass.make "p.Callee"
           ~methods:
             [ Ir.Builder.method_ ~access:Ir.Builder.static_access
                 ~cls:"p.Callee" ~name:(Printf.sprintf "m%d" n) ~params:[]
                 ~ret:Types.Void (fun _ -> ()) ]
       in
       let e =
         E.create
           (Dex.Dexfile.of_program (Ir.Program.of_classes [ caller; callee_cls ]))
       in
       List.length (E.run e (Q.invocation (Dex.Descriptor.meth_desc callee))) = 1)

let unit_cases =
  [ Alcotest.test_case "invocation search" `Quick test_invocation_search;
    Alcotest.test_case "static field search" `Quick test_field_search;
    Alcotest.test_case "const-string search" `Quick test_const_string_search;
    Alcotest.test_case "class-use excludes self" `Quick test_class_use_excludes_self;
    Alcotest.test_case "no hits" `Quick test_no_hits;
    Alcotest.test_case "cache hits" `Quick test_cache_hits;
    Alcotest.test_case "cache categories" `Quick test_cache_categories;
    Alcotest.test_case "command rendering" `Quick test_command_rendering;
    Alcotest.test_case "conjunctive planner semantics" `Quick
      test_conj_planner;
    Alcotest.test_case "planner == manual filter, every mode" `Quick
      test_conj_matches_manual_across_modes ]

let prop_cases = [ QCheck_alcotest.to_alcotest search_finds_planted ]

let suites = [ "search.unit", unit_cases; "search.props", prop_cases ]
