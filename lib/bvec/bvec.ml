type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

let length (v : t) = Bigarray.Array1.dim v

let get (v : t) i = Bigarray.Array1.get v i
let set (v : t) i c = Bigarray.Array1.set v i c
let unsafe_get (v : t) i = Bigarray.Array1.unsafe_get v i

let get_u8 v i = Char.code (get v i)
let unsafe_u8 (v : t) i = Char.code (Bigarray.Array1.unsafe_get v i)

let of_string s =
  let n = String.length s in
  let v = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (String.unsafe_get s i)
  done;
  v

let sub_string v pos len =
  if pos < 0 || len < 0 || pos + len > length v then
    invalid_arg "Bvec.sub_string";
  String.init len (fun i -> unsafe_get v (pos + i))

let to_string v = sub_string v 0 (length v)

let equal_string v ~pos s =
  let n = String.length s in
  let rec go i =
    i >= n || (unsafe_get v (pos + i) = String.unsafe_get s i && go (i + 1))
  in
  go 0

let page = 4096

let prefault v =
  let n = length v in
  let acc = ref 0 in
  let i = ref 0 in
  while !i < n do
    acc := !acc + unsafe_u8 v !i;
    i := !i + page
  done;
  if n > 0 then acc := !acc + unsafe_u8 v (n - 1);
  !acc
