lib/framework/api.ml: Ir Jsig Types
