test/test_ir.ml: Alcotest Array Expr Framework Ir Jclass Jmethod Jsig List Option Program QCheck QCheck_alcotest Stmt String Types Value
