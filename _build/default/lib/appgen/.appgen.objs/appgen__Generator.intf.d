lib/appgen/generator.mli: Dex Framework Ir Manifest Shape Templates
