lib/appgen/corpus.mli: Framework Generator Rng Shape
