examples/icc_flows.ml: Appgen Backdroid Framework Ir List Printf
