(** Amandroid's liblist.txt: packages whose code the whole-app baseline skips
    by default.  The paper names Amazon, Tencent and Facebook packages among
    the 139 skipped popular libraries; this list mirrors the entries our
    corpora exercise plus a representative sample of the real file. *)

let default =
  [ "com.tencent.smtt";
    "com.amazon.identity";
    "com.facebook";
    "com.flurry";
    "com.google.ads";
    "com.google.android.gms";
    "com.heyzap";
    "com.unity3d";
    "com.chartboost";
    "com.inmobi";
    "com.millennialmedia";
    "com.mopub";
    "com.adjust.sdk";
    "com.applovin";
    "com.crashlytics";
    "io.fabric.sdk";
    "com.squareup.okhttp";
    "okhttp3";
    "retrofit2";
    "com.github" ]

(** Is [cls] inside one of the skipped packages? *)
let skipped ?(packages = default) cls =
  List.exists
    (fun pkg ->
       let lp = String.length pkg in
       String.length cls > lp
       && String.sub cls 0 lp = pkg
       && cls.[lp] = '.')
    packages
