examples/ssl_audit.ml: Appgen Backdroid Fmt Framework List Printf
