(** Process-wide registry of named counters and log-scale histograms,
    sharded per domain and merged deterministically.

    Register handles once at module toplevel; recording touches only the
    calling domain's shard (no mutex, no atomic RMW).  The merged counter
    values and histogram bucket counts are integer sums across shards, so
    they are independent of how the work was scheduled — identical at
    [--jobs 1] and [--jobs N] whenever the underlying workload is.
    Snapshot/reset while the instrumented workload is quiescent. *)

type counter
type histogram

(** Interned registration (idempotent per name; a name keeps its kind). *)
val counter : string -> counter

val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit

(** Record a sample into log-2 buckets: bucket [k >= 1] covers
    [2^(k-1), 2^k); bucket 0 covers values below 1 (and non-finite). *)
val observe : histogram -> float -> unit

(** Recording is on by default; [set_enabled false] makes every recording
    call a single [Atomic.get] no-op (the [Obs.disabled] bench mode). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

type histo = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (int * int) list;
      (** (bucket exponent, count), non-zero only, ascending *)
}

type snapshot = {
  counters : (string * int) list;      (** sorted by name *)
  histograms : (string * histo) list;  (** sorted by name *)
}

(** Merge all shards into one deterministic snapshot. *)
val snapshot : unit -> snapshot

(** Zero every metric in every shard. *)
val reset : unit -> unit

(** [quantile h q] estimates the [q]-quantile (q in [0,1]) from the log-2
    buckets: linear interpolation inside the rank's bucket, clamped to the
    observed [h_min, h_max].  0. for an empty histogram. *)
val quantile : histo -> float -> float

val bucket_label : int -> string
val render_table : snapshot -> string
val render_json : snapshot -> string
val write_json : string -> snapshot -> unit
