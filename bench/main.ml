(* Benchmark harness.

   Two parts:
   1. bechamel micro-benchmarks — one Test.make per table/figure driver plus
      the ablations (indexed search vs grep-style scan, preprocessing cost,
      whole-app analyses vs the targeted pipeline);
   2. the experiment harness that regenerates every table and figure of the
      paper's evaluation (Table I, Figs. 1, 7, 8, 9, the Sec. VI-C detection
      tables and the Sec. IV-F enhancement statistics).

   Usage: dune exec bench/main.exe
            [-- --quick | --micro-only | --experiments-only | --speedup-only
               | --trace-only | --search-only | --obs-overhead | --snapshot
               | --delta | --serve | --smoke | --quantiles | --jobs N]

   --serve boots an in-process backdroidd on a temp socket and drives
   hot/cold request mixes at several client concurrencies against it,
   comparing a warm served analyze to the one-shot cold pipeline
   (BENCH_serve.json).

   --delta measures incremental re-analysis across app versions: v2 of the
   fixture (1% of classes edited) analysed from scratch vs delta-patching
   the v1 snapshot and replaying unaffected per-sink results.

   --quantiles adds per-query uncached latency quantiles (p50/p90/p99 per
   engine mode) to the search-core table and BENCH_search.json.

   --jobs N sets the worker-pool width for the per-app experiment fan-out
   and the parallel/speedup benchmark (default: all cores but one).
   --smoke is the CI mode: the trace profile plus a tiny experiment corpus,
   no micro-benchmarks. *)

(* The ns clock from bechamel.monotonic_clock; aliased before [open
   Bechamel] shadows the toplevel [Monotonic_clock] with its measure
   witness of the same name. *)
module Mclock = Monotonic_clock

open Bechamel
open Toolkit
module G = Appgen.Generator

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let fixture_app ~seed ~mb ~sinks =
  let rng = Appgen.Rng.create (seed * 97) in
  let plants =
    List.init sinks (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.1)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.bench.app%d" seed;
      filler_classes =
        Appgen.Corpus.filler_classes_for_mb ~mb ~methods_per_class:6
          ~stmts_per_method:8;
      plants }

let medium = lazy (fixture_app ~seed:5 ~mb:20.0 ~sinks:10)
let small = lazy (fixture_app ~seed:6 ~mb:5.0 ~sinks:5)

let micro_tests () =
  let medium = Lazy.force medium and small = Lazy.force small in
  let indexed_engine = Bytesearch.Engine.create medium.G.dex in
  let scan_engine = Bytesearch.Engine.create ~indexed:false medium.G.dex in
  let sink_query =
    Bytesearch.Query.invocation
      (Dex.Descriptor.meth_desc Framework.Api.cipher_get_instance)
  in
  [ (* Table I: corpus/app generation *)
    Test.make ~name:"table1/generate-5mb-app"
      (Staged.stage (fun () -> fixture_app ~seed:7 ~mb:5.0 ~sinks:5));
    (* Fig. 7: the full targeted pipeline *)
    Test.make ~name:"fig7/backdroid-analyze-20mb"
      (Staged.stage (fun () ->
           Backdroid.Driver.analyze ~dex:medium.G.dex
             ~manifest:medium.G.manifest ()));
    (* Fig. 1: whole-app CG generation only *)
    Test.make ~name:"fig1/flowdroid-cg-20mb"
      (Staged.stage (fun () ->
           Baseline.Flowdroid_cg.build medium.G.program medium.G.manifest));
    (* Fig. 8: whole-app dataflow (small fixture — the big one is the slow
       case by design) *)
    Test.make ~name:"fig8/amandroid-5mb"
      (Staged.stage (fun () ->
           Baseline.Amandroid.analyze ~program:small.G.program
             ~manifest:small.G.manifest ()));
    (* Fig. 9: per-sink cost *)
    Test.make ~name:"fig9/backdroid-5mb-5sinks"
      (Staged.stage (fun () ->
           Backdroid.Driver.analyze ~dex:small.G.dex ~manifest:small.G.manifest
             ()));
    (* sharded index build on the worker pool (vs preprocess/index-20mb) *)
    Test.make ~name:"preprocess/index-20mb-sharded"
      (Staged.stage (fun () ->
           Parallel.Pool.with_pool ~jobs:(Parallel.Pool.default_jobs ())
             (fun pool -> Bytesearch.Engine.create ~pool medium.G.dex)));
    (* ablation: indexed search vs grep-style full scan *)
    Test.make ~name:"search/indexed-lookup"
      (Staged.stage (fun () ->
           Bytesearch.Engine.run_uncached indexed_engine sink_query));
    Test.make ~name:"search/grep-scan"
      (Staged.stage (fun () ->
           Bytesearch.Engine.run_uncached scan_engine sink_query));
    (* ablation: preprocessing (disassembly + index build) *)
    Test.make ~name:"preprocess/disassemble-20mb"
      (Staged.stage (fun () -> Dex.Dexfile.of_program medium.G.program));
    Test.make ~name:"preprocess/index-20mb"
      (Staged.stage (fun () -> Bytesearch.Engine.create medium.G.dex));
    (* ablation: the Sec. VI-C FN fix (hierarchy-aware initial search) *)
    Test.make ~name:"ablation/subclass-aware-search"
      (Staged.stage (fun () ->
           Backdroid.Driver.analyze
             ~cfg:
               { Backdroid.Driver.default_config with
                 Backdroid.Driver.subclass_aware_initial_search = true }
             ~dex:small.G.dex ~manifest:small.G.manifest ()));
    (* ablation: the Sec. VII reflection resolution pre-pass *)
    Test.make ~name:"ablation/resolve-reflection"
      (Staged.stage (fun () ->
           Backdroid.Driver.analyze
             ~cfg:
               { Backdroid.Driver.default_config with
                 Backdroid.Driver.resolve_reflection = true }
             ~dex:small.G.dex ~manifest:small.G.manifest ()));
    (* ablation: the baseline with its documented gaps closed *)
    Test.make ~name:"ablation/amandroid-robust-5mb"
      (Staged.stage (fun () ->
           Baseline.Amandroid.analyze
             ~cfg:
               { Baseline.Amandroid.default_config with
                 Baseline.Amandroid.cg = Baseline.Callgraph.robust_config }
             ~program:small.G.program ~manifest:small.G.manifest ())) ]

let run_micro () =
  let tests = micro_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false
      ~kde:(Some 100) ()
  in
  print_endline "\n== micro-benchmarks (bechamel, monotonic clock) ==";
  Printf.printf "  %-34s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg instances test in
       let results = Analyze.all ols Instance.monotonic_clock results in
       Hashtbl.iter
         (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              let pretty =
                if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
                else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
                else Printf.sprintf "%8.2f ns" est
              in
              Printf.printf "  %-34s %14s\n%!" name pretty
            | Some _ | None -> Printf.printf "  %-34s %14s\n%!" name "n/a")
         results)
    tests

(* ------------------------------------------------------------------ *)
(* parallel/speedup: the per-app experiment fan-out, sequential vs --jobs N.
   The same grid is run twice; apps, analyses and findings are identical
   (the determinism tests assert exactly that), only the scheduling
   differs, so the wall-clock ratio is the multicore speedup. *)

let run_speedup ~jobs =
  print_endline "\n== parallel/speedup: per-app experiment fan-out ==";
  let opts =
    { Evalharness.Experiments.default_opts with
      Evalharness.Experiments.scale = 0.3;
      count = 2 * (max 4 jobs);
      timeout_s = 0.5;
      flowdroid_timeout_s = 0.5 }
  in
  let timed o =
    let t0 = Unix.gettimeofday () in
    let run = Evalharness.Experiments.run_corpus o in
    (run, Unix.gettimeofday () -. t0)
  in
  let _, t_seq = timed { opts with Evalharness.Experiments.jobs = 1 } in
  let _, t_par = timed { opts with Evalharness.Experiments.jobs } in
  Printf.printf "  %-34s %10.3f s\n" "sequential (--jobs 1)" t_seq;
  Printf.printf "  %-34s %10.3f s\n"
    (Printf.sprintf "parallel (--jobs %d)" jobs)
    t_par;
  Printf.printf "  %-34s %9.2fx\n" "speedup" (t_seq /. t_par)

(* ------------------------------------------------------------------ *)
(* trace profile: drive the slicer through the Resolver broker with a ring
   trace sink and aggregate the events into per-strategy latency columns,
   plus the search-command cache's per-category compute timings. *)

let run_trace_profile ~app =
  print_endline "\n== trace: per-strategy caller-resolution profile ==";
  let engine = Bytesearch.Engine.create app.G.dex in
  let ring = Backdroid.Trace.Ring.create () in
  let shared =
    Backdroid.Context.shared ~trace:(Backdroid.Trace.Ring.sink ring) ~engine
      ~manifest:app.G.manifest ()
  in
  let occurrences =
    Backdroid.Driver.initial_sink_search
      ~cfg:Backdroid.Driver.default_config engine
  in
  List.iter
    (fun (sink, meth, site) ->
       ignore
         (Backdroid.Slicer.slice ~shared ~sink ~sink_meth:meth
            ~sink_site:site ()))
    occurrences;
  Printf.printf "  %d sinks, %d resolutions\n" (List.length occurrences)
    (Backdroid.Trace.Ring.recorded ring);
  Printf.printf "  %-10s %6s %6s %9s %7s %11s %11s\n" "strategy" "count"
    "hits" "searches" "cached" "mean" "max";
  List.iter
    (fun (name, (a : Backdroid.Trace.agg)) ->
       Printf.printf "  %-10s %6d %6d %9d %7d %9.1fus %9.1fus\n" name
         a.Backdroid.Trace.a_count a.Backdroid.Trace.a_hits
         a.Backdroid.Trace.a_searches a.Backdroid.Trace.a_cached
         (Backdroid.Trace.mean_us a) a.Backdroid.Trace.a_max_us)
    (Backdroid.Trace.aggregate (Backdroid.Trace.Ring.events ring));
  print_endline "  -- search-command cache, per category --";
  let timings = Bytesearch.Engine.category_timings engine in
  List.iter
    (fun (cat, total, cached) ->
       let us =
         Option.value ~default:0.0 (List.assoc_opt cat timings)
       in
       Printf.printf "  %-10s %6d searches %6d cached %11.1fus compute\n"
         (Bytesearch.Query.category_to_string cat)
         total cached us)
    (List.sort compare (Bytesearch.Engine.category_stats engine))

(* ------------------------------------------------------------------ *)
(* search-core: GC-aware comparison of the three engine modes (grep-style
   scan, lazy postings, eager postings) over one query per category.  The
   run asserts that all modes return identical hits, prints a table with
   Gc.quick_stat deltas and per-category index-build latency, and writes
   the same data as machine-readable BENCH_search.json for the CI
   bench-smoke artifact. *)

type search_mode_result = {
  sm_mode : string;
  sm_build_us : float;        (** engine construction *)
  sm_query_us : float;        (** all uncached queries, summed *)
  sm_minor_words : float;     (** Gc minor_words allocated during the run *)
  sm_major_collections : int; (** Gc major collections during the run *)
  sm_top_heap_words : int;    (** peak heap after the run *)
  sm_categories_built : int;
  sm_hits : int;
  sm_fingerprint : int;       (** order-independent hit digest *)
  sm_index_build : (string * float) list;  (** per-category build µs *)
  sm_quantiles : (float * float * float) option;
      (** p50/p90/p99 of per-query uncached latency, µs ([--quantiles]) *)
}

(** One query per query kind, derived from the fixture program so most of
    them actually hit. *)
let search_core_queries program =
  let module Q = Bytesearch.Query in
  let app_classes = Ir.Program.app_classes program in
  let cls_desc =
    match app_classes with
    | c :: _ -> Dex.Descriptor.class_desc c.Ir.Jclass.name
    | [] -> "Lcom/bench/Nothing;"
  in
  let field_queries =
    match
      List.find_map
        (fun (c : Ir.Jclass.t) ->
           match c.Ir.Jclass.fields with f :: _ -> Some f | [] -> None)
        app_classes
    with
    | Some f ->
      let d = Dex.Descriptor.field_desc f in
      [ Q.field_access d; Q.static_field_access d ]
    | None -> []
  in
  [ Q.invocation (Dex.Descriptor.meth_desc Framework.Api.cipher_get_instance);
    Q.new_instance cls_desc;
    Q.const_class cls_desc;
    Q.const_string "AES";
    Q.class_use cls_desc;
    Q.raw "move-result-object" ]
  @ field_queries

(* Nearest-rank quantile over a sorted sample array. *)
let quantile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

(* Per-query uncached latency distribution: one sample per (rep, query),
   each rep against a FRESH engine from [mk].  [run_uncached] only
   bypasses the query-result cache — on a warm engine the postings and
   the per-line text memos still serve every later sample, which (with a
   µs-resolution wall clock) is how the committed indexed p50 once
   collapsed to 0.0.  A fresh engine per rep busts those caches; priming
   the postings via [export_packed] keeps the one-off category build out
   of the samples (an indexed sample times lookup + hit materialisation);
   and the ns monotonic clock keeps genuinely sub-µs samples non-zero. *)
let query_quantiles mk queries =
  let reps = 12 in
  let samples = Array.make (reps * List.length queries) 0.0 in
  let i = ref 0 in
  for _ = 1 to reps do
    let engine = mk () in
    if Bytesearch.Engine.index_mode engine <> "scan" then
      ignore (Bytesearch.Engine.export_packed engine);
    List.iter
      (fun q ->
         let t0 = Mclock.now () in
         ignore (Bytesearch.Engine.run_uncached engine q);
         let t1 = Mclock.now () in
         samples.(!i) <- Int64.to_float (Int64.sub t1 t0) /. 1e3;
         incr i)
      queries
  done;
  Array.sort compare samples;
  (quantile samples 0.50, quantile samples 0.90, quantile samples 0.99)

let measure_search_mode ?(quantiles = false) ~name ~queries mk =
  Gc.compact ();
  let s0 = Gc.quick_stat () in
  (* quick_stat's minor_words only advances at minor collections;
     Gc.minor_words reads the live allocation pointer *)
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let engine = mk () in
  let t1 = Unix.gettimeofday () in
  let fp = ref 0 and hits = ref 0 in
  List.iter
    (fun q ->
       List.iter
         (fun (h : Bytesearch.Engine.hit) ->
            incr hits;
            fp := !fp lxor Hashtbl.hash (h.line_no, h.text))
         (Bytesearch.Engine.run_uncached engine q))
    queries;
  let t2 = Unix.gettimeofday () in
  let mw1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  let qs = if quantiles then Some (query_quantiles mk queries) else None in
  { sm_mode = name;
    sm_build_us = (t1 -. t0) *. 1e6;
    sm_query_us = (t2 -. t1) *. 1e6;
    sm_minor_words = mw1 -. mw0;
    sm_major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
    sm_top_heap_words = s1.Gc.top_heap_words;
    sm_categories_built = Bytesearch.Engine.built_categories engine;
    sm_hits = !hits;
    sm_fingerprint = !fp;
    sm_index_build = Bytesearch.Engine.index_build_timings engine;
    sm_quantiles = qs }

let json_escape = Obs.Jsonf.escape

(* ------------------------------------------------------------------ *)
(* obs-overhead: the telemetry layer's hot-path cost.  The same analysis
   runs with every sink off (Obs.disable: span sites cost one Atomic.get,
   metric sites one more), with metrics shards only, with metrics plus the
   always-on flight recorder (the production default), and with the span
   recorder on top; the margins over the off state are the instrumentation
   overheads.  Goal: < 2% for the production default, ~0 with all off. *)

type obs_overhead = {
  oo_disabled_us : float;   (** median analyze time, all recording off *)
  oo_metrics_us : float;    (** metrics shards on, flight + spans off *)
  oo_flight_us : float;     (** metrics + flight recorder (production) *)
  oo_enabled_us : float;    (** + span recorder on top ([--profile]) *)
  oo_overhead_pct : float;  (** metrics-only vs off, clamped at 0 *)
  oo_flight_overhead_pct : float;
      (** production default vs off, clamped at 0 — the always-on cost *)
  oo_profile_overhead_pct : float;  (** full recording vs off *)
  oo_spans : int;           (** spans recorded per instrumented run *)
  oo_flight_events : int;   (** flight events recorded by the runs *)
}

let median xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n land 1 = 1 then a.(n / 2)
  else 0.5 *. (a.(n / 2 - 1) +. a.(n / 2))

let run_obs_overhead ~app =
  print_endline "\n== obs-overhead: analyze with telemetry off vs on ==";
  let analyze () =
    ignore
      (Backdroid.Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest ())
  in
  (* Paired per-iteration rounds: every round times ONE analyze in each of
     the four states, back to back, with the in-round order rotating.  The
     overheads are medians of the per-round margins over that round's own
     off sample — a paired-difference design.  This box's clock frequency
     drifts hard (identical binaries measured anywhere between 0.4%% and
     14%% under the older batch design, whose 150-analyze batches were long
     enough for the frequency to step between states); pairing puts the
     compared samples microseconds apart so the drift cancels in the
     difference.  Medians (not minima) of the diffs keep the margin
     honest: independent per-state minima once drove the committed
     default-state overhead negative (-4.2%%), and a mean lets one GC
     major slice dominate.  Margins are clamped at zero — recording
     cannot speed analysis up; a negative median is measurement floor. *)
  let rounds = 240 in
  let time1 () =
    let t0 = Unix.gettimeofday () in
    analyze ();
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  let recorder = Obs.Span.Recorder.create () in
  let samples = Array.make 4 [] in
  let push i v = samples.(i) <- v :: samples.(i) in
  let states =
    [| (fun () ->
          Obs.disable ();
          push 0 (time1 ()));
       (fun () ->
          Obs.disable ();
          Obs.enable_metrics ();
          push 1 (time1 ()));
       (fun () ->
          Obs.disable ();
          Obs.enable_metrics ();
          Obs.enable_flight ();
          push 2 (time1 ()));
       (fun () ->
          Obs.disable ();
          Obs.enable_metrics ();
          Obs.enable_flight ();
          Obs.Span.Recorder.install recorder;
          push 3 (time1 ());
          Obs.Span.set_sink None) |]
  in
  for _ = 1 to 20 do analyze () done;  (* warmup *)
  Obs.Flight.reset ();
  for r = 0 to rounds - 1 do
    for k = 0 to 3 do
      states.((r + k) mod 4) ()
    done
  done;
  let flight_events = Obs.Flight.recorded () in
  (* restore the production default: metrics + flight recorder on *)
  Obs.disable ();
  Obs.enable_metrics ();
  Obs.enable_flight ();
  (* samples accumulated newest-first in lockstep, so index i of any two
     states belongs to the same round: diff lists pair correctly *)
  let diffs a b = List.map2 (fun x y -> x -. y) a b in
  let t_off = median samples.(0)
  and t_metrics = median samples.(1)
  and t_flight = median samples.(2)
  and t_on = median samples.(3) in
  let pct st =
    Float.max 0.0
      (100.0 *. median (diffs samples.(st) samples.(0)) /. t_off)
  in
  let spans = Obs.Span.Recorder.spans recorder in
  let r =
    { oo_disabled_us = t_off;
      oo_metrics_us = t_metrics;
      oo_flight_us = t_flight;
      oo_enabled_us = t_on;
      oo_overhead_pct = pct 1;
      oo_flight_overhead_pct = pct 2;
      oo_profile_overhead_pct = pct 3;
      oo_spans = List.length spans / rounds;
      oo_flight_events = flight_events;
    }
  in
  Printf.printf "  %-42s %10.1f us\n" "analyze, telemetry off" r.oo_disabled_us;
  Printf.printf "  %-42s %10.1f us\n" "analyze, metrics shards only"
    r.oo_metrics_us;
  Printf.printf "  %-42s %10.1f us\n"
    "analyze, + flight recorder (default state)" r.oo_flight_us;
  Printf.printf "  %-42s %10.1f us\n"
    (Printf.sprintf "analyze, + span recorder (%d spans)" r.oo_spans)
    r.oo_enabled_us;
  Printf.printf "  %-42s %9.2f %%\n" "metrics-only overhead" r.oo_overhead_pct;
  Printf.printf "  %-42s %9.2f %%  (goal: < 2%%)\n"
    "default-state (flight) overhead" r.oo_flight_overhead_pct;
  Printf.printf "  %-42s %9.2f %%\n" "full recording overhead"
    r.oo_profile_overhead_pct;
  (r, spans)

(* Exporter smoke: the recorded spans must render to a Chrome stream whose
   B/E events pair up per (pid, tid) under strictly monotonic ts, and the
   renderer's output must parse back to the same events. *)
let check_obs_exporter spans =
  let events = Obs.Chrome.events_of_spans spans in
  (match Obs.Chrome.validate events with
   | Ok () -> ()
   | Error e ->
     Printf.eprintf "obs exporter: invalid event stream: %s\n" e;
     exit 1);
  if not (Obs.Chrome.round_trips events) then begin
    prerr_endline "obs exporter: render/parse round-trip mismatch";
    exit 1
  end;
  Printf.printf "  exporter round-trip: ok (%d events)\n" (List.length events)

let obs_overhead_json r =
  Printf.sprintf
    "{%s, %s, %s, %s, %s, %s, %s, %s}"
    (Obs.Jsonf.num_field "disabled_us" r.oo_disabled_us)
    (Obs.Jsonf.num_field "metrics_us" r.oo_metrics_us)
    (Obs.Jsonf.num_field "flight_us" r.oo_flight_us)
    (Obs.Jsonf.num_field "enabled_us" r.oo_enabled_us)
    (Obs.Jsonf.num_field ~dec:2 "overhead_pct" r.oo_overhead_pct)
    (Obs.Jsonf.num_field ~dec:2 "flight_overhead_pct" r.oo_flight_overhead_pct)
    (Obs.Jsonf.num_field ~dec:2 "profile_overhead_pct" r.oo_profile_overhead_pct)
    (Obs.Jsonf.int_field "spans" r.oo_spans)

(* The always-on surface gets its own top-level key so CI can gate on it
   without digging through the obs_overhead record. *)
let flight_json r =
  Printf.sprintf "{%s, %s, %s}"
    (Obs.Jsonf.num_field "us" r.oo_flight_us)
    (Obs.Jsonf.num_field ~dec:2 "overhead_pct" r.oo_flight_overhead_pct)
    (Obs.Jsonf.int_field "events" r.oo_flight_events)

(* ------------------------------------------------------------------ *)
(* snapshot: cold-vs-warm preprocessing.  Cold = disassemble the program
   and build every postings category; warm = map the saved snapshot back.
   Both sides then run the search-core query set uncached, asserting
   identical hits, with Gc minor-word deltas alongside the latencies. *)

type snapshot_bench = {
  sb_file_bytes : int;        (** v2 (packed postings) file size *)
  sb_v1_file_bytes : int;     (** same engine saved at the v1 flat layout *)
  sb_postings_cold_bytes : int;  (** flat postings footprint (cold engine) *)
  sb_postings_warm_bytes : int;  (** coded postings footprint (warm engine) *)
  sb_cold_us : float;         (** disassembly + eager index build *)
  sb_warm_us : float;         (** snapshot load (mmap + validation) *)
  sb_prefault_us : float;     (** snapshot load with --prefault *)
  sb_speedup : float;
  sb_cold_minor_words : float;
  sb_warm_minor_words : float;
  sb_cold_query_us : float;
  sb_warm_query_us : float;
  sb_prefault_query_us : float;  (** queries on the prefaulted engine *)
  sb_identical : bool;
}

let run_queries engine queries =
  let fp = ref 0 and hits = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun q ->
       List.iter
         (fun (h : Bytesearch.Engine.hit) ->
            incr hits;
            fp := !fp lxor Hashtbl.hash (h.line_no, h.text))
         (Bytesearch.Engine.run_uncached engine q))
    queries;
  ((Unix.gettimeofday () -. t0) *. 1e6, !hits, !fp)

let run_snapshot_bench ~app =
  print_endline "\n== snapshot: cold preprocess vs warm (mmap) start ==";
  let program = app.G.program in
  let queries = search_core_queries program in
  let path = Filename.temp_file "backdroid_snapshot" ".bdix" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let best = 3 in
  (* cold: disassembly + all seven postings categories *)
  let cold_us = ref Float.infinity and cold_mw = ref Float.infinity in
  let cold_engine = ref None in
  for _ = 1 to best do
    Gc.compact ();
    let mw0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let dex = Dex.Dexfile.of_program program in
    let e = Bytesearch.Engine.create ~eager:true dex in
    cold_us := Float.min !cold_us ((Unix.gettimeofday () -. t0) *. 1e6);
    cold_mw := Float.min !cold_mw (Gc.minor_words () -. mw0);
    cold_engine := Some e
  done;
  let cold_engine = Option.get !cold_engine in
  let file_bytes = Store.Snapshot.save ~path cold_engine in
  (* the same engine at the legacy flat-postings layout, for the on-disk
     shrink ratio *)
  let v1_path = Filename.temp_file "backdroid_snapshot_v1" ".bdix" in
  let v1_bytes =
    Fun.protect
      ~finally:(fun () -> try Sys.remove v1_path with Sys_error _ -> ())
      (fun () ->
         Store.Snapshot.save ~format_version:1 ~path:v1_path cold_engine)
  in
  (* warm: map the snapshot back, with and without prefault *)
  let load_best ~prefault =
    let us = ref Float.infinity and mw = ref Float.infinity in
    let engine = ref None in
    for _ = 1 to best do
      Gc.compact ();
      let mw0 = Gc.minor_words () in
      let t0 = Unix.gettimeofday () in
      (match Store.Snapshot.load ~prefault ~path program with
       | Ok e -> engine := Some e
       | Error e ->
         Printf.eprintf "snapshot bench: load failed: %s\n"
           (Store.Codec.error_to_string e);
         exit 1);
      us := Float.min !us ((Unix.gettimeofday () -. t0) *. 1e6);
      mw := Float.min !mw (Gc.minor_words () -. mw0)
    done;
    (Option.get !engine, !us, !mw)
  in
  let warm_engine, warm_us, warm_mw = load_best ~prefault:false in
  let pf_engine, pf_us, _ = load_best ~prefault:true in
  let cold_q, cold_hits, cold_fp = run_queries cold_engine queries in
  let warm_q, warm_hits, warm_fp = run_queries warm_engine queries in
  let pf_q, pf_hits, pf_fp = run_queries pf_engine queries in
  let r =
    { sb_file_bytes = file_bytes;
      sb_v1_file_bytes = v1_bytes;
      sb_postings_cold_bytes = Bytesearch.Engine.postings_footprint cold_engine;
      sb_postings_warm_bytes = Bytesearch.Engine.postings_footprint warm_engine;
      sb_cold_us = !cold_us;
      sb_warm_us = warm_us;
      sb_prefault_us = pf_us;
      sb_speedup = !cold_us /. warm_us;
      sb_cold_minor_words = !cold_mw;
      sb_warm_minor_words = warm_mw;
      sb_cold_query_us = cold_q;
      sb_warm_query_us = warm_q;
      sb_prefault_query_us = pf_q;
      sb_identical =
        cold_hits = warm_hits && cold_fp = warm_fp && cold_hits = pf_hits
        && cold_fp = pf_fp }
  in
  Printf.printf "  %-42s %10d bytes\n" "snapshot file (v2, packed postings)"
    r.sb_file_bytes;
  Printf.printf "  %-42s %10d bytes\n" "snapshot file (v1 flat layout)"
    r.sb_v1_file_bytes;
  Printf.printf "  %-42s %9.2fx  (v1 bytes / v2 bytes)" "on-disk shrink"
    (float_of_int r.sb_v1_file_bytes /. float_of_int r.sb_file_bytes);
  Printf.printf "\n  %-42s %10d -> %d bytes (%.2fx)\n"
    "postings footprint, flat -> coded" r.sb_postings_cold_bytes
    r.sb_postings_warm_bytes
    (float_of_int r.sb_postings_cold_bytes
     /. float_of_int (max 1 r.sb_postings_warm_bytes));
  Printf.printf "  %-42s %10.1f us\n" "cold preprocess (disassemble + index)"
    r.sb_cold_us;
  Printf.printf "  %-42s %10.1f us\n" "warm preprocess (snapshot load)"
    r.sb_warm_us;
  Printf.printf "  %-42s %10.1f us\n" "warm preprocess (load + prefault)"
    r.sb_prefault_us;
  Printf.printf "  %-42s %9.1fx  (goal: >= 5x)\n" "warm-start speedup"
    r.sb_speedup;
  Printf.printf "  %-42s %10.0f\n" "cold minor words" r.sb_cold_minor_words;
  Printf.printf "  %-42s %10.0f\n" "warm minor words" r.sb_warm_minor_words;
  Printf.printf "  %-42s %10.1f us\n" "queries, cold engine" r.sb_cold_query_us;
  Printf.printf "  %-42s %10.1f us\n" "queries, warm engine" r.sb_warm_query_us;
  Printf.printf "  %-42s %10.1f us  (goal: <= cold)\n"
    "queries, warm engine (prefaulted)" r.sb_prefault_query_us;
  Printf.printf "  identical hits cold vs warm: %b\n" r.sb_identical;
  if not r.sb_identical then begin
    prerr_endline "snapshot bench: warm engine returned different hits";
    exit 1
  end;
  if r.sb_speedup < 5.0 then
    Printf.eprintf
      "snapshot bench: warning: warm-start speedup %.1fx below the 5x goal\n"
      r.sb_speedup;
  if r.sb_prefault_query_us > r.sb_cold_query_us then
    Printf.eprintf
      "snapshot bench: warning: prefaulted warm queries (%.1fus) slower \
       than cold (%.1fus)\n"
      r.sb_prefault_query_us r.sb_cold_query_us;
  r

let snapshot_json r =
  Printf.sprintf
    "{%s, %s, %s, %s, %s, %s, %s, %s, %s, %s, %s, %s, %s, \
     \"identical_hits\": %b}"
    (Obs.Jsonf.int_field "file_bytes" r.sb_file_bytes)
    (Obs.Jsonf.int_field "v1_file_bytes" r.sb_v1_file_bytes)
    (Obs.Jsonf.int_field "postings_cold_bytes" r.sb_postings_cold_bytes)
    (Obs.Jsonf.int_field "postings_warm_bytes" r.sb_postings_warm_bytes)
    (Obs.Jsonf.num_field "cold_preprocess_us" r.sb_cold_us)
    (Obs.Jsonf.num_field "warm_preprocess_us" r.sb_warm_us)
    (Obs.Jsonf.num_field "prefault_preprocess_us" r.sb_prefault_us)
    (Obs.Jsonf.num_field ~dec:2 "speedup" r.sb_speedup)
    (Obs.Jsonf.num_field "cold_minor_words" r.sb_cold_minor_words)
    (Obs.Jsonf.num_field "warm_minor_words" r.sb_warm_minor_words)
    (Obs.Jsonf.num_field "cold_query_us" r.sb_cold_query_us)
    (Obs.Jsonf.num_field "warm_query_us" r.sb_warm_query_us)
    (Obs.Jsonf.num_field "prefault_query_us" r.sb_prefault_query_us)
    r.sb_identical

(* ------------------------------------------------------------------ *)
(* delta: incremental re-analysis across app versions.  v1 of the fixture
   is analysed cold, its snapshot saved with the per-sink results and
   loaded back into a resident engine; then 1% of its classes are edited
   (the "version update") and the v2 analysis runs twice — once completely
   cold (disassemble + eager index + slice everything, the old-world cost)
   and once incrementally (patch the resident v1 index in memory with
   [Snapshot.delta_of_engine], replay unaffected sink results).  This is
   the maintained-index scenario of an app store re-analysing updates: the
   v1 snapshot load is setup, not measured, just as v1's own analysis
   isn't.  Reports must be identical; the speedup is the headline number
   of the incremental path. *)

type delta_bench = {
  db_cold_us : float;          (** v2 from scratch: preprocess + analyze *)
  db_incremental_us : float;   (** v2 delta-patch + replay analyze *)
  db_speedup : float;
  db_classes_total : int;
  db_classes_changed : int;
  db_lines_reused : int;
  db_lines_rendered : int;
  db_patched_postings_bytes : int;
  db_rebuilt_postings_bytes : int;
  db_replayed_sinks : int;
  db_sink_calls : int;
  db_identical : bool;         (** delta reports == cold reports *)
}

(* Order-independent digest of what an analysis concluded: one hash per
   (rule, sink site, reachability, verdict) — the SSG field is legitimately
   absent on replayed reports, so it stays out of the digest. *)
let report_fingerprint (r : Backdroid.Driver.result) =
  List.fold_left
    (fun acc (rep : Backdroid.Driver.sink_report) ->
       acc
       lxor Hashtbl.hash
              (Printf.sprintf "%s|%s|%s|%d|%b|%s"
                 rep.Backdroid.Driver.rule.Rules.Rule.name
                 (Ir.Jsig.meth_to_string
                    rep.Backdroid.Driver.sink.Framework.Sinks.msig)
                 (Ir.Jsig.meth_to_string rep.Backdroid.Driver.meth)
                 rep.Backdroid.Driver.site rep.Backdroid.Driver.reachable
                 (Backdroid.Detectors.verdict_to_string
                    rep.Backdroid.Driver.verdict)))
    0 r.Backdroid.Driver.reports

let run_delta_bench ~app =
  print_endline
    "\n== delta: cold v2 re-analysis vs incremental (1% classes changed) ==";
  let path = Filename.temp_file "backdroid_delta" ".bdix" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (* v1: analyse cold, persist snapshot + per-sink results *)
  let e1 = Bytesearch.Engine.create ~eager:true app.G.dex in
  let r1 =
    Backdroid.Driver.analyze ~engine:e1 ~dex:app.G.dex ~manifest:app.G.manifest
      ()
  in
  let results =
    Backdroid.Resultcache.to_strings
      (Backdroid.Driver.export_results
         ~dex:(Bytesearch.Engine.dexfile e1) r1)
  in
  ignore (Store.Snapshot.save ~results ~path e1);
  (* the resident v1 index + result cache the incremental path patches *)
  let v1_engine =
    match Store.Snapshot.load ~path app.G.program with
    | Ok e -> e
    | Error e ->
      Printf.eprintf "delta bench: v1 snapshot load failed: %s\n"
        (Store.Codec.error_to_string e);
      exit 1
  in
  let v1_results =
    match Store.Snapshot.load_results ~path with
    | Ok ss -> begin
        match Backdroid.Resultcache.of_strings ss with
        | Ok rc -> Some rc
        | Error _ -> None
      end
    | Error _ -> None
  in
  (* v2: the version update *)
  let v2 = G.mutate ~pct:0.01 ~build_dex:false app in
  let best = 3 in
  let cold_us = ref Float.infinity and cold_r = ref None in
  for _ = 1 to best do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let dex = Dex.Dexfile.of_program v2.G.program in
    let e = Bytesearch.Engine.create ~eager:true dex in
    let r =
      Backdroid.Driver.analyze ~engine:e ~dex ~manifest:v2.G.manifest ()
    in
    cold_us := Float.min !cold_us ((Unix.gettimeofday () -. t0) *. 1e6);
    cold_r := Some r
  done;
  let incr_us = ref Float.infinity
  and patch_us = ref Float.infinity
  and incr_r = ref None
  and delta_rep = ref None in
  for _ = 1 to best do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    match Store.Snapshot.delta_of_engine v1_engine v2.G.program with
    | Error e ->
      Printf.eprintf "delta bench: delta failed: %s\n"
        (Store.Codec.error_to_string e);
      exit 1
    | Ok (engine, dr) ->
      let t1 = Unix.gettimeofday () in
      let r =
        Backdroid.Driver.analyze ?results:v1_results ~engine
          ~dex:(Bytesearch.Engine.dexfile engine) ~manifest:v2.G.manifest ()
      in
      incr_us := Float.min !incr_us ((Unix.gettimeofday () -. t0) *. 1e6);
      patch_us := Float.min !patch_us ((t1 -. t0) *. 1e6);
      incr_r := Some r;
      delta_rep := Some dr
  done;
  let cold_r = Option.get !cold_r
  and incr_r = Option.get !incr_r
  and dr = Option.get !delta_rep in
  let identical = report_fingerprint cold_r = report_fingerprint incr_r in
  let stats = incr_r.Backdroid.Driver.stats in
  let r =
    { db_cold_us = !cold_us;
      db_incremental_us = !incr_us;
      db_speedup = !cold_us /. !incr_us;
      db_classes_total = dr.Store.Snapshot.d_total;
      db_classes_changed =
        dr.Store.Snapshot.d_changed + dr.Store.Snapshot.d_added;
      db_lines_reused = dr.Store.Snapshot.d_lines_reused;
      db_lines_rendered = dr.Store.Snapshot.d_lines_rendered;
      db_patched_postings_bytes = dr.Store.Snapshot.d_patched_postings_bytes;
      db_rebuilt_postings_bytes = dr.Store.Snapshot.d_rebuilt_postings_bytes;
      db_replayed_sinks = stats.Backdroid.Driver.replayed_sinks;
      db_sink_calls = stats.Backdroid.Driver.sink_calls;
      db_identical = identical }
  in
  Printf.printf "  %-42s %10s\n" "changed classes"
    (Printf.sprintf "%d/%d" r.db_classes_changed r.db_classes_total);
  Printf.printf "  %-42s %10s\n" "lines reused / rendered"
    (Printf.sprintf "%d / %d" r.db_lines_reused r.db_lines_rendered);
  Printf.printf "  %-42s %10s\n" "postings bytes patched / rebuilt"
    (Printf.sprintf "%d / %d" r.db_patched_postings_bytes
       r.db_rebuilt_postings_bytes);
  Printf.printf "  %-42s %10s\n" "sink results replayed"
    (Printf.sprintf "%d/%d" r.db_replayed_sinks r.db_sink_calls);
  Printf.printf "  %-42s %10.1f us\n" "cold re-analysis (v2 from scratch)"
    r.db_cold_us;
  Printf.printf "  %-42s %10.1f us\n" "incremental re-analysis (delta+replay)"
    r.db_incremental_us;
  Printf.printf "  %-42s %10.1f us\n" "  of which delta patch" !patch_us;
  Printf.printf "  %-42s %9.1fx  (goal: >= 10x)\n" "incremental speedup"
    r.db_speedup;
  Printf.printf "  identical reports cold vs incremental: %b\n" r.db_identical;
  if not r.db_identical then begin
    prerr_endline "delta bench: incremental run produced different reports";
    exit 1
  end;
  if r.db_speedup < 10.0 then
    Printf.eprintf
      "delta bench: warning: incremental speedup %.1fx below the 10x goal\n"
      r.db_speedup;
  r

let delta_json r =
  Printf.sprintf
    "{%s, %s, %s, %s, %s, %s, %s, %s, %s, %s, %s, \
     \"identical_reports\": %b}"
    (Obs.Jsonf.num_field "cold_us" r.db_cold_us)
    (Obs.Jsonf.num_field "incremental_us" r.db_incremental_us)
    (Obs.Jsonf.num_field ~dec:2 "speedup" r.db_speedup)
    (Obs.Jsonf.int_field "classes_total" r.db_classes_total)
    (Obs.Jsonf.int_field "classes_changed" r.db_classes_changed)
    (Obs.Jsonf.int_field "lines_reused" r.db_lines_reused)
    (Obs.Jsonf.int_field "lines_rendered" r.db_lines_rendered)
    (Obs.Jsonf.int_field "patched_postings_bytes" r.db_patched_postings_bytes)
    (Obs.Jsonf.int_field "rebuilt_postings_bytes" r.db_rebuilt_postings_bytes)
    (Obs.Jsonf.int_field "replayed_sinks" r.db_replayed_sinks)
    (Obs.Jsonf.int_field "sink_calls" r.db_sink_calls)
    r.db_identical

let search_json_of_results ?obs ?snapshot ?delta ~lines ~queries ~identical
    results =
  let mode_json r =
    let build =
      String.concat ", "
        (List.map
           (fun (cat, us) ->
              Printf.sprintf "\"%s\": %.1f" (json_escape cat) us)
           r.sm_index_build)
    in
    let quantiles =
      match r.sm_quantiles with
      | None -> ""
      | Some (p50, p90, p99) ->
        Printf.sprintf
          ", \"query_quantiles_us\": {\"p50\": %.1f, \"p90\": %.1f, \
           \"p99\": %.1f}"
          p50 p90 p99
    in
    Printf.sprintf
      "    {\"mode\": \"%s\", \"build_us\": %.1f, \"query_us\": %.1f, \
       \"minor_words\": %.0f, \"major_collections\": %d, \
       \"top_heap_words\": %d, \"categories_built\": %d, \"hits\": %d, \
       \"index_build_us\": {%s}%s}"
      (json_escape r.sm_mode) r.sm_build_us r.sm_query_us r.sm_minor_words
      r.sm_major_collections r.sm_top_heap_words r.sm_categories_built
      r.sm_hits build quantiles
  in
  Printf.sprintf
    "{\n  \"fixture\": {\"lines\": %d, \"queries\": %d},\n\
    \  \"identical_hits\": %b,\n%s%s%s\
    \  \"modes\": [\n%s\n  ]\n}\n"
    lines queries identical
    (match obs with
     | Some r ->
       Printf.sprintf "  \"obs_overhead\": %s,\n  \"flight\": %s,\n"
         (obs_overhead_json r) (flight_json r)
     | None -> "")
    (match snapshot with
     | Some r -> Printf.sprintf "  \"snapshot\": %s,\n" (snapshot_json r)
     | None -> "")
    (match delta with
     | Some r -> Printf.sprintf "  \"delta\": %s,\n" (delta_json r)
     | None -> "")
    (String.concat ",\n" (List.map mode_json results))

let run_search_core ?obs ?snapshot ?delta ?(quantiles = false) ~app ~json_path
    () =
  print_endline
    "\n== search-core: scan vs lazy vs eager vs snapshot (GC-aware) ==";
  let queries = search_core_queries app.G.program in
  let dex = app.G.dex in
  (* the snapshot mode maps a pre-saved file; its "build" cost is the load *)
  let snap_path = Filename.temp_file "backdroid_search" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove snap_path with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:snap_path (Bytesearch.Engine.create dex));
  let results =
    [ measure_search_mode ~quantiles ~name:"scan" ~queries (fun () ->
          Bytesearch.Engine.create ~indexed:false dex);
      measure_search_mode ~quantiles ~name:"lazy" ~queries (fun () ->
          Bytesearch.Engine.create dex);
      measure_search_mode ~quantiles ~name:"eager" ~queries (fun () ->
          Bytesearch.Engine.create ~eager:true dex);
      measure_search_mode ~quantiles ~name:"snapshot" ~queries (fun () ->
          match
            Store.Snapshot.load ~prefault:true ~path:snap_path app.G.program
          with
          | Ok e -> e
          | Error e ->
            Printf.eprintf "search-core: snapshot load failed: %s\n"
              (Store.Codec.error_to_string e);
            exit 1) ]
  in
  let identical =
    match results with
    | r :: rest ->
      List.for_all
        (fun r' ->
           r'.sm_fingerprint = r.sm_fingerprint && r'.sm_hits = r.sm_hits)
        rest
    | [] -> true
  in
  Printf.printf "  %-6s %10s %10s %12s %6s %12s %5s %6s\n" "mode" "build"
    "queries" "minor-words" "majGC" "top-heap-w" "cats" "hits";
  List.iter
    (fun r ->
       Printf.printf "  %-6s %8.1fus %8.1fus %12.0f %6d %12d %3d/7 %6d\n"
         r.sm_mode r.sm_build_us r.sm_query_us r.sm_minor_words
         r.sm_major_collections r.sm_top_heap_words r.sm_categories_built
         r.sm_hits)
    results;
  if quantiles then begin
    print_endline "  -- per-query uncached latency quantiles --";
    Printf.printf "  %-6s %10s %10s %10s\n" "mode" "p50" "p90" "p99";
    List.iter
      (fun r ->
         match r.sm_quantiles with
         | Some (p50, p90, p99) ->
           Printf.printf "  %-6s %8.1fus %8.1fus %8.1fus\n" r.sm_mode p50 p90
             p99
         | None -> ())
      results
  end;
  (match List.find_opt (fun r -> r.sm_mode = "eager") results with
   | Some r when r.sm_index_build <> [] ->
     print_endline "  -- per-category postings build (eager) --";
     List.iter
       (fun (cat, us) -> Printf.printf "  %-16s %9.1fus\n" cat us)
       r.sm_index_build
   | Some _ | None -> ());
  Printf.printf "  identical hits across modes: %b\n" identical;
  if not identical then begin
    prerr_endline "search-core: modes returned different hits";
    exit 1
  end;
  let json =
    search_json_of_results ?obs ?snapshot ?delta
      ~lines:(Dex.Dexfile.line_count dex)
      ~queries:(List.length queries) ~identical results
  in
  Obs.Io.write_string json_path json;
  Printf.printf "  wrote %s\n" json_path

(* ------------------------------------------------------------------ *)
(* Multi-rule smoke: run the full extended rule set over an app planting
   the three newer families plus a crypto flow.  Each family must fire on
   its insecure plant — an end-to-end check that the rule engine, the
   generator scenarios and the per-sink-group fan-out stay wired up. *)

let run_multirule_smoke () =
  print_endline "\n== multi-rule analysis (extended rule set) ==";
  let plant shape sink = { G.shape; sink; insecure = true } in
  let app =
    G.generate
      { G.default_config with
        G.seed = 11;
        name = "com.bench.rules";
        filler_classes = 40;
        plants =
          [ plant Appgen.Shape.Direct Framework.Sinks.cipher;
            plant Appgen.Shape.Webview_misuse Framework.Sinks.webview_js;
            plant Appgen.Shape.Sql_injection Framework.Sinks.sql_query;
            plant Appgen.Shape.Intent_redirect Framework.Sinks.intent_redirect
          ] }
  in
  let cfg =
    { Backdroid.Driver.default_config with
      Backdroid.Driver.rules = Rules.Builtin.extended }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Backdroid.Driver.analyze ~cfg ~dex:app.G.dex ~manifest:app.G.manifest ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let insecure_families =
    List.filter_map
      (fun (rep : Backdroid.Driver.sink_report) ->
         if rep.Backdroid.Driver.verdict = Backdroid.Detectors.Insecure then
           Some rep.Backdroid.Driver.rule.Rules.Rule.name
         else None)
      r.Backdroid.Driver.reports
  in
  List.iter
    (fun f ->
       if not (List.mem f insecure_families) then begin
         Printf.eprintf "multi-rule: family %s did not fire\n" f;
         exit 1
       end)
    [ "ecb-crypto"; "webview-js"; "webview-bridge"; "sql-injection";
      "intent-redirect" ];
  Printf.printf "  %d reports (%d insecure) across %d rules in %.3fs\n"
    (List.length r.Backdroid.Driver.reports)
    (List.length insecure_families)
    (List.length Rules.Builtin.extended)
    dt

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let jobs =
    let rec find = function
      | "--jobs" :: n :: _ -> int_of_string n
      | _ :: rest -> find rest
      | [] -> Parallel.Pool.default_jobs ()
    in
    max 1 (find args)
  in
  let quick = has "--quick" in
  let quantiles = has "--quantiles" in
  let opts =
    if quick then
      { Evalharness.Experiments.default_opts with
        Evalharness.Experiments.scale = 0.3;
        count = 24;
        timeout_s = 0.5;
        flowdroid_timeout_s = 0.5;
        jobs }
    else { Evalharness.Experiments.default_opts with Evalharness.Experiments.jobs = jobs }
  in
  if has "--smoke" then begin
    (* CI smoke mode: tiny corpus, no micro-benchmarks *)
    run_trace_profile ~app:(Lazy.force small);
    (* one re-measure on a noisy first pass: the 2% claim is about the
       steady state, not about a CI runner's worst scheduling quantum *)
    let obs, obs_spans =
      let ((r1, _) as first) = run_obs_overhead ~app:(Lazy.force small) in
      if r1.oo_flight_overhead_pct <= 2.0 then first
      else begin
        print_endline
          "  (default-state overhead above 2% — re-measuring once)";
        let ((r2, _) as second) = run_obs_overhead ~app:(Lazy.force small) in
        if r2.oo_flight_overhead_pct < r1.oo_flight_overhead_pct then second
        else first
      end
    in
    check_obs_exporter obs_spans;
    (* the committed README claims <2% overhead for the production default
       (metrics + always-on flight recorder); a recomputed number an order
       of magnitude past that means the hot path (or this harness)
       regressed, so fail the smoke run *)
    if obs.oo_flight_overhead_pct > 10.0 then begin
      Printf.eprintf
        "obs-overhead: recomputed default-state (flight) overhead %.2f%% \
         is far beyond the committed <2%% claim\n"
        obs.oo_flight_overhead_pct;
      exit 1
    end;
    (* the medium fixture, not small: the warm-start speedup is the claim
       under test and the fixed per-load validation floor (strings, owner
       parsing) dilutes it on tiny apps *)
    let snapshot = run_snapshot_bench ~app:(Lazy.force medium) in
    (* identical hits are asserted inside run_snapshot_bench; the 5x goal
       is a warning there (timings are machine-dependent), but a warm start
       that is not even 2x faster means the load path regressed *)
    if snapshot.sb_speedup < 2.0 then begin
      Printf.eprintf
        "snapshot: warm start only %.1fx faster than cold preprocess\n"
        snapshot.sb_speedup;
      exit 1
    end;
    (* incremental re-analysis on the same medium fixture: identical
       reports are asserted inside; the 10x goal is gated on the exported
       JSON by CI *)
    let delta = run_delta_bench ~app:(Lazy.force medium) in
    run_search_core ~obs ~snapshot ~delta ~quantiles ~app:(Lazy.force small)
      ~json_path:"BENCH_search.json" ();
    run_multirule_smoke ();
    let opts =
      { Evalharness.Experiments.default_opts with
        Evalharness.Experiments.scale = 0.15;
        count = 4;
        timeout_s = 0.5;
        flowdroid_timeout_s = 0.5;
        jobs }
    in
    print_endline "\n== experiment harness (smoke corpus) ==";
    Evalharness.Experiments.run_all ~opts ()
  end
  else begin
    let only =
      has "--micro-only" || has "--experiments-only" || has "--speedup-only"
      || has "--trace-only" || has "--search-only" || has "--obs-overhead"
      || has "--snapshot" || has "--delta" || has "--serve"
    in
    if has "--serve" then Serve_bench.run ~jobs ();
    if (not only) || has "--micro-only" then run_micro ();
    if (not only) || has "--trace-only" then
      run_trace_profile ~app:(Lazy.force (if quick then small else medium));
    let obs =
      if (not only) || has "--obs-overhead" || has "--search-only" then begin
        let obs, obs_spans =
          run_obs_overhead ~app:(Lazy.force (if quick then small else medium))
        in
        check_obs_exporter obs_spans;
        Some obs
      end
      else None
    in
    let snapshot =
      if (not only) || has "--snapshot" || has "--search-only" then
        Some
          (run_snapshot_bench
             ~app:(Lazy.force (if quick then small else medium)))
      else None
    in
    let delta =
      if (not only) || has "--delta" || has "--search-only" then
        Some
          (run_delta_bench ~app:(Lazy.force (if quick then small else medium)))
      else None
    in
    if (not only) || has "--search-only" then
      run_search_core ?obs ?snapshot ?delta ~quantiles
        ~app:(Lazy.force (if quick then small else medium))
        ~json_path:"BENCH_search.json" ();
    if (not only) || has "--speedup-only" then run_speedup ~jobs;
    if (not only) || has "--experiments-only" then begin
      print_endline
        "\n== experiment harness: regenerating the paper's tables and \
         figures ==";
      Evalharness.Experiments.run_all ~opts
        ~csv_path:(Some "bench_measurements.csv") ()
    end
  end
