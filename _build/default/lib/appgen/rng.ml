(** Deterministic splitmix64 RNG, so every corpus is reproducible from its
    seed without touching the global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0

let bool t p = float t < p

(** Pick a uniformly random element of a non-empty list. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty"
  | _ -> List.nth xs (int t (List.length xs))

(** Split off an independent generator (for per-app determinism inside a
    corpus). *)
let split t = create (Int64.to_int (next_int64 t))
