(** Hierarchical spans: nested begin/end scopes carrying a category, a name,
    the recording domain (tid), a logical process id (pid — one per app in
    corpus runs), wall-clock begin/end timestamps in microseconds since the
    process origin, and typed attributes.

    The span sink is pluggable like [Trace.sink].  The default state is *no
    sink installed*, in which case {!with_span} runs its thunk with exactly
    one [Atomic.get] of overhead — no clock reads, no allocation.  The
    standard recorder is {!Recorder}: one bounded buffer shard per domain
    (via [Domain.DLS]), so the hot path never takes a mutex; shards register
    themselves under a lock once per domain and are merged at snapshot. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type span = {
  cat : string;
  name : string;
  pid : int;          (** logical process (app) id; 0 outside corpus runs *)
  tid : int;          (** recording domain id *)
  t0_us : float;      (** begin, µs since the process origin *)
  t1_us : float;      (** end, µs since the process origin *)
  attrs : attr list;
}

type sink = span -> unit

let duration_us s = s.t1_us -. s.t0_us

(* -- Global state ---------------------------------------------------- *)

let origin = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. origin) *. 1e6

let sink_slot : sink option Atomic.t = Atomic.make None

let set_sink s = Atomic.set sink_slot s
let enabled () = Atomic.get sink_slot <> None

(* The logical pid is dynamically scoped per domain: a corpus task wraps one
   whole app analysis in [with_pid], and every span recorded on that domain
   (or on domains the analysis itself fans out to via its own pool — those
   inherit pid 0 unless also wrapped) carries it. *)
let pid_key = Domain.DLS.new_key (fun () -> ref 0)

let current_pid () = !(Domain.DLS.get pid_key)

let with_pid pid f =
  let cell = Domain.DLS.get pid_key in
  let saved = !cell in
  cell := pid;
  Fun.protect ~finally:(fun () -> cell := saved) f

let self_tid () = (Domain.self () :> int)

(* -- Recording ------------------------------------------------------- *)

(** Start a span clock.  Returns [nan] when no sink is installed, which
    makes the matching {!emit} free as well. *)
let start () = if enabled () then now_us () else Float.nan

(** [true] when [start] actually armed a span — call sites with expensive
    attributes test this before building them. *)
let pending t0 = not (Float.is_nan t0)

(** Close a span started at [t0] and emit it to the current sink.  A [nan]
    [t0] (disabled at start time) is dropped, so enabling a sink mid-scope
    never emits a half-timed span. *)
let emit ?(attrs = []) ~cat ~name t0 =
  if not (Float.is_nan t0) then
    match Atomic.get sink_slot with
    | None -> ()
    | Some sink ->
      sink
        { cat; name; pid = current_pid (); tid = self_tid (); t0_us = t0;
          t1_us = now_us (); attrs }

(** [with_span ~cat ~name f] runs [f] inside a span; the span is emitted
    when [f] returns or raises.  (Hand-rolled unwind instead of
    [Fun.protect]: this is the instrumentation hot path and the [~finally]
    closure allocation is measurable.) *)
let with_span ?attrs ~cat ~name f =
  let t0 = start () in
  if Float.is_nan t0 then f ()
  else
    match f () with
    | v ->
      emit ?attrs ~cat ~name t0;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      emit ?attrs ~cat ~name t0;
      Printexc.raise_with_backtrace e bt

(* -- The default recorder -------------------------------------------- *)

module Recorder = struct
  type shard = {
    mutable arr : span array;
    mutable len : int;
    mutable dropped : int;
  }

  type t = {
    capacity : int;               (* per shard *)
    lock : Mutex.t;               (* guards [shards] registration/merge *)
    shards : shard list ref;
    key : shard Domain.DLS.key;
  }

  let create ?(capacity = 1 lsl 16) () =
    let lock = Mutex.create () in
    let shards = ref [] in
    let key =
      (* runs on first use per domain — the only locked step of the hot
         path, paid once per domain *)
      Domain.DLS.new_key (fun () ->
          let s = { arr = [||]; len = 0; dropped = 0 } in
          Mutex.lock lock;
          shards := s :: !shards;
          Mutex.unlock lock;
          s)
    in
    { capacity = max 16 capacity; lock; shards; key }

  let dummy =
    { cat = ""; name = ""; pid = 0; tid = 0; t0_us = 0.0; t1_us = 0.0;
      attrs = [] }

  (* Unsynchronized per-domain append: the shard is owned by the recording
     domain; merges happen after the workload quiesces (pool batches settle
     through the pool's own mutex, which publishes these writes). *)
  let sink t span =
    let s = Domain.DLS.get t.key in
    if s.len >= t.capacity then s.dropped <- s.dropped + 1
    else begin
      let cap = Array.length s.arr in
      if s.len >= cap then begin
        let cap' = min t.capacity (max 256 (2 * cap)) in
        let arr' = Array.make cap' dummy in
        Array.blit s.arr 0 arr' 0 s.len;
        s.arr <- arr'
      end;
      s.arr.(s.len) <- span;
      s.len <- s.len + 1
    end

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  (** All recorded spans, merged across shards (unordered — exporters sort).
      Call after the instrumented workload has quiesced. *)
  let spans t =
    with_lock t (fun () ->
        List.concat_map
          (fun s -> Array.to_list (Array.sub s.arr 0 s.len))
          !(t.shards))

  let length t =
    with_lock t (fun () ->
        List.fold_left (fun n s -> n + s.len) 0 !(t.shards))

  (** Spans dropped because a shard hit its capacity. *)
  let dropped t =
    with_lock t (fun () ->
        List.fold_left (fun n s -> n + s.dropped) 0 !(t.shards))

  let clear t =
    with_lock t (fun () ->
        List.iter
          (fun s ->
             s.len <- 0;
             s.dropped <- 0)
          !(t.shards))

  (** Install this recorder as the global span sink. *)
  let install t = set_sink (Some (sink t))
end
