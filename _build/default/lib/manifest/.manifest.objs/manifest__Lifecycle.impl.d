lib/manifest/lifecycle.ml: Component List
