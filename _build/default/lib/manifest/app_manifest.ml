(** The parsed AndroidManifest.xml model: package name plus registered
    components.  Components present in code but *not* listed here are
    deactivated — reaching one of their lifecycle handlers does not make a
    sink reachable (the source of several Amandroid false positives in
    Sec. VI-C). *)

type t = {
  package : string;
  components : Component.t list;
}

let make ~package ~components = { package; components }

let find_component t cls =
  List.find_opt (fun (c : Component.t) -> String.equal c.cls cls) t.components

(** Is [cls] a registered entry component? *)
let is_entry_class t cls = Option.is_some (find_component t cls)

let components_matching_action t action =
  List.filter (fun (c : Component.t) -> List.mem action c.actions) t.components

let entry_classes t = List.map (fun (c : Component.t) -> c.cls) t.components

(** All entry-point methods of the app: every lifecycle handler defined by a
    registered component class (looked up in [program], including inherited
    definitions are ignored — only handlers the app overrides count). *)
let entry_methods t (program : Ir.Program.t) =
  List.concat_map
    (fun (comp : Component.t) ->
       match Ir.Program.find_class program comp.cls with
       | None -> []
       | Some c ->
         List.filter_map
           (fun (m : Ir.Jmethod.t) ->
              if Lifecycle.is_lifecycle_subsig (Ir.Jmethod.sub_signature m)
              then Some m.msig
              else None)
           c.methods)
    t.components
