(* bench --serve: a load generator against an in-process backdroidd.

   Boots a daemon on a temp Unix socket, pre-builds snapshots for one hot
   app spec and a ring of cold specs, then drives hot/cold request mixes
   at several client concurrencies, recording per-request wall latency.
   The headline is the resident-service payoff: a warm served analyze
   (engine already hot behind the LRU) versus the one-shot cold pipeline
   (generate + disassemble + index + analyze), which the committed
   BENCH_serve.json gates at >= 5x.

   The cold ring is larger than the daemon's [max_resident], so cold
   requests continually evict each other and reload from their mmap'd
   snapshots — the 0.5 hot-ratio mixes therefore exercise hit, miss,
   eviction and prefaulted reload on every pass, with the hot entry
   surviving by LRU recency. *)

module S = Serve.Server
module C = Serve.Client
module P = Serve.Protocol
module A = Serve.Appspec

let now_us () = Int64.to_float (Monotonic_clock.now ()) /. 1e3

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

(* -- fixtures -------------------------------------------------------- *)

let hot_spec = { A.default with A.seed = 41; size_mb = 8.0 }
let cold_specs = List.init 4 (fun i -> { A.default with A.seed = 200 + i; size_mb = 4.0 })

let fixture_name spec = Printf.sprintf "seed%d-%.0fmb" spec.A.seed spec.A.size_mb

(* The one-shot cold baseline: everything `backdroid analyze` does for a
   fresh app — generation, disassembly, engine build, analysis, render —
   with no resident state.  Best of [reps]. *)
let cold_oneshot_us ~reps spec =
  let one () =
    let t0 = now_us () in
    (match A.generate ~build_dex:true spec with
     | Result.Error e -> failwith ("serve bench: bad fixture spec: " ^ e)
     | Result.Ok app ->
       let r =
         Backdroid.Driver.analyze ~dex:app.Appgen.Generator.dex
           ~manifest:app.Appgen.Generator.manifest ()
       in
       ignore (Serve.Render.render ~app_name:(A.app_name spec) ~seconds:0.0 r));
    now_us () -. t0
  in
  let best = ref (one ()) in
  for _ = 2 to reps do
    let dt = one () in
    if dt < !best then best := dt
  done;
  !best

(* -- the client side ------------------------------------------------- *)

type mix_result = {
  mx_hot_ratio : float;
  mx_concurrency : int;
  mx_requests : int;
  mx_hits : int;             (* analyze responses served cache=Hit *)
  mx_rejected : int;
  mx_p50 : float;
  mx_p95 : float;
  mx_p99 : float;
  mx_wall_us : float;
}

let analyze_req ~snap spec =
  P.Analyze { spec; snapshot = Some snap; time_limit_ms = None }

(* Global request index [i] -> the request for this mix.  Hot picks are
   spread deterministically ([i mod 10] under the ratio); cold picks walk
   the cold ring so consecutive cold requests never reuse a resident
   entry. *)
let request_of ~hot_ratio ~paths i =
  let hot = float_of_int (i mod 10) < (hot_ratio *. 10.0) -. 1e-9 in
  if hot then analyze_req ~snap:(snd (List.hd paths)) hot_spec
  else
    let ring = List.tl paths in
    let spec, snap = List.nth ring (i mod List.length ring) in
    analyze_req ~snap spec

let run_mix ~socket ~paths ~hot_ratio ~concurrency ~requests =
  let lat = Array.make requests nan in
  let hits = Array.make concurrency 0 in
  let rejected = Array.make concurrency 0 in
  let worker t =
    match C.connect_retry ~socket () with
    | Result.Error e -> failwith ("serve bench: connect: " ^ e)
    | Result.Ok conn ->
      Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
      let i = ref t in
      while !i < requests do
        let req = request_of ~hot_ratio ~paths !i in
        let t0 = now_us () in
        (match C.call conn req with
         | Result.Ok (P.Analyzed { cache; _ }) ->
           lat.(!i) <- now_us () -. t0;
           if cache = P.Hit then hits.(t) <- hits.(t) + 1
         | Result.Ok (P.Rejected _) -> rejected.(t) <- rejected.(t) + 1
         | Result.Ok _ -> failwith "serve bench: unexpected response"
         | Result.Error e -> failwith ("serve bench: call: " ^ e));
        i := !i + concurrency
      done
  in
  let t0 = now_us () in
  let threads = List.init concurrency (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  let wall = now_us () -. t0 in
  let ok = Array.to_list lat |> List.filter (fun x -> not (Float.is_nan x)) in
  let sorted = Array.of_list ok in
  Array.sort compare sorted;
  { mx_hot_ratio = hot_ratio;
    mx_concurrency = concurrency;
    mx_requests = requests;
    mx_hits = Array.fold_left ( + ) 0 hits;
    mx_rejected = Array.fold_left ( + ) 0 rejected;
    mx_p50 = quantile sorted 0.50;
    mx_p95 = quantile sorted 0.95;
    mx_p99 = quantile sorted 0.99;
    mx_wall_us = wall }

let req_per_s m =
  let completed = m.mx_requests - m.mx_rejected in
  if m.mx_wall_us <= 0.0 then 0.0
  else float_of_int completed /. (m.mx_wall_us /. 1e6)

(* pull one integer field back out of the daemon's stats JSON *)
let stats_int json field =
  match Obs.Jsonf.field_int json field with Some n -> n | None -> -1

(* -- the bench ------------------------------------------------------- *)

let run ~jobs () =
  print_endline "\n== serve: resident daemon vs one-shot cold pipeline ==";
  let dir =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "backdroid-serve-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let socket = Filename.concat dir "bench.sock" in
  let paths =
    (hot_spec, Filename.concat dir "hot.snap")
    :: List.mapi
         (fun i s -> (s, Filename.concat dir (Printf.sprintf "cold%d.snap" i)))
         cold_specs
  in
  let cfg =
    { S.default_config with
      S.socket;
      jobs;
      max_resident = 2;
      max_inflight = 8;
      queue_timeout_ms = 1000.0 }
  in
  match S.start cfg with
  | Result.Error e -> failwith ("serve bench: start: " ^ e)
  | Result.Ok server ->
    let finally () = S.stop server; S.wait server in
    Fun.protect ~finally @@ fun () ->
    (match C.connect_retry ~socket () with
     | Result.Error e -> failwith ("serve bench: connect: " ^ e)
     | Result.Ok conn ->
       Fun.protect ~finally:(fun () -> C.close conn) @@ fun () ->
       (* warm-up: first touch per path cold-builds and persists the
          snapshot; later misses are mmap loads *)
       List.iter
         (fun (spec, snap) ->
            match C.call conn (analyze_req ~snap spec) with
            | Result.Ok (P.Analyzed _) -> ()
            | Result.Ok _ | Result.Error _ ->
              failwith "serve bench: warm-up analyze failed")
         paths);
    let cold_us = cold_oneshot_us ~reps:3 hot_spec in
    let mixes =
      List.map
        (fun (hot_ratio, concurrency) ->
           (* put the hot entry back in residence after the previous mix's
              cold churn, then measure *)
           (match
              C.with_conn ~socket (fun c ->
                  C.call c (analyze_req ~snap:(snd (List.hd paths)) hot_spec))
            with
            | Result.Ok _ -> ()
            | Result.Error e -> failwith ("serve bench: re-warm: " ^ e));
           run_mix ~socket ~paths ~hot_ratio ~concurrency ~requests:32)
        [ (1.0, 1); (1.0, 4); (0.5, 1); (0.5, 4) ]
    in
    let stats =
      match C.with_conn ~socket (fun c -> C.call c P.Stats) with
      | Result.Ok (P.Stats_json j) -> j
      | Result.Ok _ | Result.Error _ ->
        failwith "serve bench: stats request failed"
    in
    let warm_p50 = (List.hd mixes).mx_p50 in
    let speedup = if warm_p50 > 0.0 then cold_us /. warm_p50 else 0.0 in
    Printf.printf "  fixture: hot %s + %d cold (ring > max_resident=%d)\n"
      (fixture_name hot_spec) (List.length cold_specs) cfg.S.max_resident;
    Printf.printf "  cold one-shot pipeline              %12.1f us\n" cold_us;
    Printf.printf "  warm served analyze (p50)           %12.1f us\n" warm_p50;
    Printf.printf "  resident-service speedup            %11.1fx  (goal: >= 5x)\n"
      speedup;
    Printf.printf "  %-9s %4s %8s %6s %10s %10s %10s %10s\n" "hot-ratio"
      "conc" "requests" "hits" "p50" "p95" "p99" "req/s";
    List.iter
      (fun m ->
         Printf.printf
           "  %9.1f %4d %8d %6d %8.1fus %8.1fus %8.1fus %10.1f\n"
           m.mx_hot_ratio m.mx_concurrency m.mx_requests m.mx_hits m.mx_p50
           m.mx_p95 m.mx_p99 (req_per_s m))
      mixes;
    Printf.printf
      "  resident: %d entries, %d hits, %d misses, %d evictions\n"
      (stats_int stats "cache_entries")
      (stats_int stats "cache_hits")
      (stats_int stats "cache_misses")
      (stats_int stats "cache_evictions");
    (* the hot-only single-client mix must be served entirely off the
       resident engine — anything else means the LRU keying regressed *)
    let hot_mix = List.hd mixes in
    if hot_mix.mx_hits <> hot_mix.mx_requests then begin
      Printf.eprintf
        "serve: hot-only mix had %d/%d cache hits — resident path broken\n"
        hot_mix.mx_hits hot_mix.mx_requests;
      exit 1
    end;
    if speedup < 2.0 then begin
      Printf.eprintf
        "serve: warm served analyze only %.1fx faster than one-shot cold\n"
        speedup;
      exit 1
    end;
    let oc = open_out "BENCH_serve.json" in
    let j = Obs.Jsonf.int_field in
    let n = Obs.Jsonf.num_field in
    Printf.fprintf oc "{\n  %s,\n  %s,\n  %s,\n  %s,\n"
      (Obs.Jsonf.str_field "fixture" (fixture_name hot_spec))
      (n "cold_oneshot_us" cold_us)
      (n "warm_served_p50_us" warm_p50)
      (n ~dec:2 "speedup" speedup);
    Printf.fprintf oc
      "  \"server\": { %s, %s, %s, %s, %s },\n"
      (j "jobs" cfg.S.jobs)
      (j "max_resident" cfg.S.max_resident)
      (n ~dec:1 "max_resident_mb" cfg.S.max_resident_mb)
      (j "max_inflight" cfg.S.max_inflight)
      (n ~dec:1 "queue_timeout_ms" cfg.S.queue_timeout_ms);
    Printf.fprintf oc "  \"mixes\": [\n";
    List.iteri
      (fun i m ->
         let rejection_rate =
           if m.mx_requests = 0 then 0.0
           else float_of_int m.mx_rejected /. float_of_int m.mx_requests
         in
         Printf.fprintf oc
           "    { %s, %s, %s, %s, %s, %s, %s, %s, %s }%s\n"
           (n ~dec:1 "hot_ratio" m.mx_hot_ratio)
           (j "concurrency" m.mx_concurrency)
           (j "requests" m.mx_requests)
           (n "p50_us" m.mx_p50)
           (n "p95_us" m.mx_p95)
           (n "p99_us" m.mx_p99)
           (n ~dec:1 "req_per_s" (req_per_s m))
           (j "rejected" m.mx_rejected)
           (n ~dec:3 "rejection_rate" rejection_rate)
           (if i = List.length mixes - 1 then "" else ","))
      mixes;
    Printf.fprintf oc "  ],\n  \"resident\": %s\n}\n" stats;
    close_out oc;
    print_endline "  wrote BENCH_serve.json"
