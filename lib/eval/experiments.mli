(** One function per table / figure of the paper's evaluation, each printing
    the measured series next to the numbers the paper reports.

    Time scaling: wall-clock seconds on our synthetic substrate stand in for
    the paper's minutes on real APKs.  The timeout given to the whole-app
    baselines plays the paper's 300-minute timeout, so
    [minutes_per_second = 300 / timeout_s] converts measured seconds into
    "paper-minute equivalents" for the distribution buckets. *)

module G = Appgen.Generator
module Corpus = Appgen.Corpus
module Shape = Appgen.Shape
type opts = {
  scale : float;
  count : int;
  timeout_s : float;
  flowdroid_timeout_s : float;
  seed : int;
  jobs : int;   (** per-app fan-out width (1 = sequential) *)
  snapshot_dir : string option;
      (** warm-cache mode: per-app preprocessing snapshots ([.bdix]) are
          saved here on first encounter and reused on the next run — apps
          with a snapshot skip disassembly and index construction entirely
          (a damaged snapshot logs a warning and rebuilds cold) *)
}
val default_opts : opts
val minutes_per_second : opts -> float
type corpus_run = {
  backdroid : Runner.measurement list;
  amandroid : Runner.measurement list;
  flowdroid : Runner.measurement list;
}

(** One generate-analyze pass per app, fanned out [opts.jobs] apps at a time
    over a domain pool.  Each app is generated, analysed and timed within
    one task, so measurements match sequential mode (timings aside) and come
    back in corpus order. *)
val run_corpus : ?progress:(string -> unit) -> opts -> corpus_run
val pf : ('a, out_channel, unit) format -> 'a
val header : string -> unit
val minutes : opts -> Runner.measurement -> float
val time_buckets : float list
val bucket_labels : string list
val print_distribution : opts -> Runner.measurement list -> unit
val table1 : ?seed:int -> unit -> unit
val fig1 : opts -> corpus_run -> unit
val fig7 : opts -> corpus_run -> unit
val fig8 : opts -> corpus_run -> unit
val speedup_summary : opts -> corpus_run -> unit
val fig9 : opts -> corpus_run -> unit
type detection_row = {
  group : string;
  mutable total : int;
  mutable bd_detected : int;
  mutable am_detected : int;
}
val detection : ?timeout_s:float -> unit -> unit
val enhancements : corpus_run -> unit
val ablation_search : ?count:int -> opts -> unit

(** Compact pass/deviation summary of the headline reproduction claims. *)
val reproduction_summary : opts -> corpus_run -> unit

(** Run every experiment in sequence, printing paper-vs-measured sections;
    [csv_path] additionally exports the raw per-app measurements. *)
val run_all : ?opts:opts -> ?csv_path:string option -> unit -> unit
