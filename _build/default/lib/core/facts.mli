(** Dataflow facts for the forward constant and points-to propagation over
    the SSG (Sec. V-B).  [New_obj] and [Arr] carry the points-to information
    of Sec. V-B's NewObj / ArrayObj structures: a pointer to the constructor
    class plus a mutable member map, so every reference propagated along the
    flow paths shares one object. *)

type t =
    Const_str of string
  | Const_int of int
  | New_obj of obj
  | Arr of arr
  | Static_ref of Ir.Jsig.field
  | Framework_input
  | Sym of string
  | Unknown
and obj = { cls : string; members : (string, t) Hashtbl.t; }
and arr = { elem : Ir.Types.t; cells : (int, t) Hashtbl.t; }
val new_obj : string -> t
val new_arr : Ir.Types.t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Bounded symbolic fact: symbolic expressions are truncated so abstract
    values (and the context keys derived from them) stay small — the usual
    bounded-depth expression abstraction. *)
val sym : string -> t

(** Join for Phi nodes: equal facts survive, otherwise prefer the known
    one over Unknown, else go symbolic. *)
val join : t -> t -> t
