(** A fixed-size [Domain]-based worker pool (OCaml 5 multicore, no external
    dependencies): [jobs] counts the total concurrency including the
    submitting thread, so a pool of [jobs = 1] spawns no domains and runs
    every task inline — exactly the sequential path.

    All combinators preserve input order in their results and re-raise the
    first (lowest-index) exception a task raised, with its backtrace, after
    every task of the batch has settled.  The submitting thread participates
    in draining the queue while it waits, so nested [parallel_map] calls on
    the same pool cannot deadlock. *)

type t

(** [Domain.recommended_domain_count () - 1], floored at 1 — leave one core
    for the submitting thread's bookkeeping. *)
val default_jobs : unit -> int

(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to at
    least 1).  Call {!shutdown} when done; {!with_pool} does it for you. *)
val create : jobs:int -> t

val jobs : t -> int

(** [true] until {!shutdown}.  Long-lived consumers that hold a pool for
    optional sharding (e.g. lazy index builds) check this and fall back to
    sequential work once the pool is gone. *)
val is_active : t -> bool

(** Signal the workers to exit and join them.  Idempotent.  Outstanding
    batches must have completed. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down
    afterwards, also on exception. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [async t task] enqueues one fire-and-forget task for the worker
    domains.  [task] must not raise (wrap and park the outcome in a cell,
    as the batch combinators do).  When the pool has no workers
    ([jobs = 1]) or has been shut down, the task runs inline in the
    calling thread before [async] returns. *)
val async : t -> (unit -> unit) -> unit

(** Order-preserving parallel map over an array. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** Order-preserving parallel map over a list. *)
val parallel_map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_ranges t ?chunks ~n f] splits [0 .. n-1] into [chunks]
    (default: [jobs t]) contiguous ranges and evaluates [f ~lo ~hi] (half
    open, [lo <= hi]) for each, returning the per-range results in range
    order.  Ranges cover [0, n) exactly; with [n = 0] the result is [[]]. *)
val parallel_ranges : t -> ?chunks:int -> n:int -> (lo:int -> hi:int -> 'b) -> 'b list

(** [parallel_chunks t ?chunk_size f arr] applies [f] to contiguous
    sub-arrays of [arr] (default chunk size: [length / jobs], at least 1) and
    returns the per-chunk results in order. *)
val parallel_chunks : t -> ?chunk_size:int -> ('a array -> 'b) -> 'a array -> 'b list
