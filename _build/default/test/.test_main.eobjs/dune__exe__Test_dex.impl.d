test/test_dex.ml: Alcotest Appgen Array Dex Framework Gen Ir Jclass Jsig List Option QCheck QCheck_alcotest String Types
