(** Chrome trace-event export ([chrome://tracing] / Perfetto): B/E duration
    events with [pid] = app and [tid] = domain, built from recorded spans.

    Guarantees on the emitted stream (checked by {!validate} and the bench's
    round-trip smoke): every 'B' has a matching stack-ordered 'E' per
    (pid, tid), and [ts] is strictly increasing across the whole file. *)

type event = {
  e_ph : char;        (** 'B', 'E' or 'C' (counter sample) *)
  e_ts : int;         (** µs, strictly increasing across the list *)
  e_pid : int;
  e_tid : int;
  e_cat : string;
  e_name : string;
  e_args : Span.attr list;  (** on 'B' and 'C' events only *)
}

(** One sample of a named numeric series, rendered as a Chrome counter
    ('C'-phase) track under its pid. *)
type counter_sample = {
  c_ts_us : float;    (** µs since the process origin *)
  c_pid : int;
  c_name : string;
  c_value : float;
}

(** Rebuild per-thread nesting from closed spans (any order) and merge into
    one well-nested, strictly-monotonic event stream; [counters] join the
    merge as stackless 'C' events. *)
val events_of_spans : ?counters:counter_sample list -> Span.span list -> event list

(** Render the JSON array, prefixed with process/thread-name metadata
    events ([pid_names] maps pid -> display name; pid 0 is "app"). *)
val render : ?pid_names:(int * string) list -> event list -> string

(** Render typed attributes as the body of a JSON [args] object. *)
val args_json : Span.attr list -> string

(** [write path spans] exports spans (and counter samples) to [path];
    returns the event count. *)
val write :
  ?pid_names:(int * string) list -> ?counters:counter_sample list -> string ->
  Span.span list -> int

(** Check B/E pairing per (pid, tid) and global strict ts monotonicity
    ('C' events have no stack effect). *)
val validate : event list -> (unit, string) result

(** Parse the renderer's own output ('M' lines skipped, args dropped). *)
val parse : string -> (event list, string) result

(** Render → parse → compare (ignoring args). *)
val round_trips : event list -> bool
