lib/core/forward.ml: Api_model Array Expr Facts Framework Hashtbl Int64 Ir Jclass Jmethod Jsig List Option Program Ssg Stmt Types Value
