(* Tests for the persistent preprocessing snapshot (lib/store): corrupted
   files must come back as typed errors (never a crash or a wrong engine),
   save -> load -> save must be byte-identical, and an analysis run on a
   loaded engine must produce the same report as a cold one. *)

module G = Appgen.Generator
module E = Bytesearch.Engine
module Driver = Backdroid.Driver

let fixture_app ?(seed = 41) ?(filler = 8) () =
  let rng = Appgen.Rng.create (seed * 131) in
  let plants =
    List.init 4 (fun _ -> Appgen.Corpus.random_plant rng ~insecure_p:0.5)
  in
  G.generate
    { G.default_config with
      G.seed;
      name = Printf.sprintf "com.test.store%d" seed;
      filler_classes = filler;
      plants }

let with_snapshot f =
  let app = fixture_app () in
  let path = Filename.temp_file "backdroid_store" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let engine = E.create ~eager:true app.G.dex in
  let bytes = Store.Snapshot.save ~path engine in
  Alcotest.(check bool) "snapshot is non-trivial" true (bytes > 1024);
  f ~app ~path

let read_all path =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () ->
      In_channel.input_all ic)

let write_all path s =
  let oc = Out_channel.open_bin path in
  Fun.protect ~finally:(fun () -> Out_channel.close oc) (fun () ->
      Out_channel.output_string oc s)

(* Patch a copy of the file and re-seal the checksum, so structural checks
   are exercised rather than masked by [Bad_checksum]. *)
let reseal b =
  let total = Bytes.length b in
  Bytes.set_int64_le b Store.Codec.checksum_offset
    (Store.Codec.fnv1a64 ~pos:Store.Codec.header_len
       ~len:(total - Store.Codec.header_len) b);
  b

let error_t =
  Alcotest.testable
    (fun fmt e ->
       Format.pp_print_string fmt (Store.Codec.error_to_string e))
    (fun a b ->
       match (a, b) with
       | Store.Codec.Corrupt _, Store.Codec.Corrupt _ -> true
       | a, b -> a = b)

let check_load_error ~app ~path name expect =
  match Store.Snapshot.load ~path app.G.program with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" name
  | Error e -> Alcotest.check error_t name expect e

let test_rejects_corruption () =
  with_snapshot @@ fun ~app ~path ->
  let original = read_all path in
  let mutate f =
    let b = Bytes.of_string original in
    f b;
    write_all path (Bytes.to_string b)
  in
  (* a short header *)
  write_all path (String.sub original 0 10);
  check_load_error ~app ~path "10-byte file" Store.Codec.Truncated;
  (* cut mid-payload: the recorded length no longer matches *)
  write_all path (String.sub original 0 (String.length original / 2));
  check_load_error ~app ~path "half a file" Store.Codec.Truncated;
  (* wrong magic *)
  mutate (fun b -> Bytes.set b 0 'X');
  check_load_error ~app ~path "bad magic" Store.Codec.Bad_magic;
  (* future format version, checksum resealed so only the version differs *)
  mutate (fun b ->
      Bytes.set_int32_le b 8 99l;
      ignore (reseal b));
  check_load_error ~app ~path "future version" (Store.Codec.Bad_version 99);
  (* one flipped payload byte fails the checksum *)
  mutate (fun b ->
      let i = String.length original - 5 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40)));
  check_load_error ~app ~path "flipped payload byte" Store.Codec.Bad_checksum;
  (* a flipped byte inside the stored checksum itself *)
  mutate (fun b ->
      let i = Store.Codec.checksum_offset + 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01)));
  check_load_error ~app ~path "flipped checksum byte" Store.Codec.Bad_checksum;
  (* grow a count in the meta section: every downstream length check must
     fire as Corrupt, not a crash.  The meta section is written first, so
     directory entry 0 points at it; its payload is four 8-byte counts. *)
  let meta_off =
    let b = Bytes.of_string original in
    let id = Int64.to_int (Bytes.get_int64_le b Store.Codec.header_len) in
    Alcotest.(check int) "directory entry 0 is the meta section" 1 id;
    Int64.to_int (Bytes.get_int64_le b (Store.Codec.header_len + 8))
  in
  List.iteri
    (fun field name ->
       mutate (fun b ->
           let o = meta_off + (8 * field) in
           Bytes.set_int64_le b o
             (Int64.add (Bytes.get_int64_le b o) 7L);
           ignore (reseal b));
       check_load_error ~app ~path
         (Printf.sprintf "inflated %s count" name)
         (Store.Codec.Corrupt ""))
    [ "line"; "slot"; "owner"; "symbol" ];
  (* restore and prove the fixture itself still loads *)
  write_all path original;
  match Store.Snapshot.load ~path app.G.program with
  | Ok e ->
    Alcotest.(check string) "restored file loads" "snapshot" (E.index_mode e)
  | Error e ->
    Alcotest.failf "restored file: %s" (Store.Codec.error_to_string e)

let test_roundtrip_identical () =
  with_snapshot @@ fun ~app ~path ->
  let engine =
    match Store.Snapshot.load ~path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let path2 = Filename.temp_file "backdroid_store2" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path2 with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:path2 engine);
  Alcotest.(check bool) "save -> load -> save is byte-identical" true
    (read_all path = read_all path2)

let report_fingerprint (r : Driver.sink_report) =
  Printf.sprintf "%s@%s:%d reachable=%b fact=%s verdict=%s"
    r.sink.Framework.Sinks.name
    (Ir.Jsig.meth_to_string r.meth)
    r.site r.reachable
    (Backdroid.Facts.to_string r.fact)
    (Backdroid.Detectors.verdict_to_string r.verdict)

let test_warm_analyze_equals_cold () =
  with_snapshot @@ fun ~app ~path ->
  let cold = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
  let engine =
    match Store.Snapshot.load ~path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let warm = Driver.analyze ~engine ~dex:app.G.dex ~manifest:app.G.manifest () in
  Alcotest.(check bool) "fixture has sink calls" true
    (cold.Driver.stats.Driver.sink_calls > 0);
  Alcotest.(check (list string)) "warm report == cold report"
    (List.map report_fingerprint cold.Driver.reports)
    (List.map report_fingerprint warm.Driver.reports)

(* -- v2 specifics: coded postings, off-heap texts, prefault ----------- *)

(* A v1 (legacy flat-postings) file still loads, and its engine answers
   exactly like the v2 one. *)
let test_v1_version_skew () =
  with_snapshot @@ fun ~app ~path ->
  let v2_bytes = (Unix.stat path).Unix.st_size in
  let path1 = Filename.temp_file "backdroid_store_v1" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path1 with Sys_error _ -> ())
  @@ fun () ->
  let engine = E.create ~eager:true app.G.dex in
  let v1_bytes = Store.Snapshot.save ~format_version:1 ~path:path1 engine in
  Alcotest.(check bool) "v2 file is smaller than v1" true
    (v2_bytes < v1_bytes);
  let load p =
    match Store.Snapshot.load ~path:p app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let e1 = load path1 and e2 = load path in
  Alcotest.(check string) "v1 loads as snapshot engine" "snapshot"
    (E.index_mode e1);
  let q = Bytesearch.Query.raw "invoke-static" in
  let fp e =
    List.map (fun (h : E.hit) -> Printf.sprintf "%d:%s" h.line_no h.text)
      (E.run e q)
  in
  Alcotest.(check (list string)) "v1 hits == v2 hits" (fp e2) (fp e1);
  (* v1 round-trips at its own version *)
  let path1b = Filename.temp_file "backdroid_store_v1b" ".bdix" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path1b with Sys_error _ -> ())
  @@ fun () ->
  ignore (Store.Snapshot.save ~format_version:1 ~path:path1b e1);
  Alcotest.(check bool) "v1 save -> load -> save is byte-identical" true
    (read_all path1 = read_all path1b)

(* Garbage inside a v2 coded-postings section must come back as [Corrupt]
   (the per-run validation), never a crash or a wrong engine. *)
let test_corrupt_coded_run () =
  with_snapshot @@ fun ~app ~path ->
  let original = read_all path in
  let b = Bytes.of_string original in
  let n = Int32.to_int (Bytes.get_int32_le b 12) in
  (* find the directory entry for category 0's coded runs (id 22) *)
  let sec_off = ref (-1) and sec_len = ref 0 in
  for i = 0 to n - 1 do
    let e = Store.Codec.header_len + (i * 24) in
    if Int64.to_int (Bytes.get_int64_le b e) = 22 then begin
      sec_off := Int64.to_int (Bytes.get_int64_le b (e + 8));
      sec_len := Int64.to_int (Bytes.get_int64_le b (e + 16))
    end
  done;
  Alcotest.(check bool) "fixture has coded postings bytes" true
    (!sec_off > 0 && !sec_len >= 8);
  (* 0xff... decodes as an overlong/overflowing varint count *)
  for i = 0 to 7 do
    Bytes.set b (!sec_off + i) '\xff'
  done;
  write_all path (Bytes.to_string (reseal b));
  check_load_error ~app ~path "corrupt coded run" (Store.Codec.Corrupt "")

let test_prefault_load () =
  with_snapshot @@ fun ~app ~path ->
  let load ?prefault () =
    match Store.Snapshot.load ?prefault ~path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  let cold = load () and hot = load ~prefault:true () in
  let q = Bytesearch.Query.raw "invoke-static" in
  let fp e =
    List.map (fun (h : E.hit) -> Printf.sprintf "%d:%s" h.line_no h.text)
      (E.run e q)
  in
  Alcotest.(check bool) "prefaulted engine finds hits" true (fp hot <> []);
  Alcotest.(check (list string)) "prefault changes nothing but timing"
    (fp cold) (fp hot)

let test_default_path () =
  let p = Store.Snapshot.default_path ~dir:"/tmp" ~app_id:"com.a/b c" in
  Alcotest.(check string) "sanitized and versioned"
    (Printf.sprintf "/tmp/com.a_b_c.v%d.bdix" Store.Codec.format_version)
    p

(* -- Delta: incremental re-analysis across app versions --------------- *)

(* The delta acceptance property: patching v1's index into v2 — whether
   from the snapshot file or from the still-resident engine — must answer
   analysis byte-identically to a from-scratch build of v2. *)
let test_delta_equals_cold () =
  with_snapshot @@ fun ~app ~path ->
  (* v1's analysis, persisted alongside the index like the corpus does *)
  let r1 = Driver.analyze ~dex:app.G.dex ~manifest:app.G.manifest () in
  let results_s =
    Backdroid.Resultcache.to_strings (Driver.export_results ~dex:app.G.dex r1)
  in
  let e1 =
    match Store.Snapshot.load ~path app.G.program with
    | Ok e -> e
    | Error e -> Alcotest.failf "load: %s" (Store.Codec.error_to_string e)
  in
  ignore (Store.Snapshot.save ~results:results_s ~path e1);
  let v2 = G.mutate ~pct:0.25 app in
  let cold = Driver.analyze ~dex:v2.G.dex ~manifest:v2.G.manifest () in
  let cold_fp = List.map report_fingerprint cold.Driver.reports in
  Alcotest.(check bool) "fixture has sink calls" true
    (cold.Driver.stats.Driver.sink_calls > 0);
  (* file-based: load the v1 snapshot and patch it *)
  let e_file, rep =
    match Store.Snapshot.delta ~path v2.G.program with
    | Ok x -> x
    | Error e -> Alcotest.failf "delta: %s" (Store.Codec.error_to_string e)
  in
  Alcotest.(check string) "delta engine mode" "delta" (E.index_mode e_file);
  Alcotest.(check bool) "mutation re-rendered some classes" true
    (rep.Store.Snapshot.d_changed + rep.Store.Snapshot.d_added > 0);
  Alcotest.(check bool) "unchanged classes were spliced" true
    (rep.Store.Snapshot.d_unchanged > 0);
  let warm =
    Driver.analyze ~engine:e_file ~dex:(E.dexfile e_file)
      ~manifest:v2.G.manifest ()
  in
  Alcotest.(check (list string)) "file delta report == cold report" cold_fp
    (List.map report_fingerprint warm.Driver.reports);
  (* resident: patch the live v1 engine and replay v1's persisted verdicts *)
  let e_res, _ =
    match Store.Snapshot.delta_of_engine e1 v2.G.program with
    | Ok x -> x
    | Error e ->
      Alcotest.failf "delta_of_engine: %s" (Store.Codec.error_to_string e)
  in
  let results =
    match
      Backdroid.Resultcache.of_strings (Store.Snapshot.load_results ~path
                                        |> Result.get_ok)
    with
    | Ok rc -> rc
    | Error m -> Alcotest.failf "results round-trip: %s" m
  in
  let warm2 =
    Driver.analyze ~results ~engine:e_res ~dex:(E.dexfile e_res)
      ~manifest:v2.G.manifest ()
  in
  Alcotest.(check (list string)) "resident delta + replay == cold report"
    cold_fp
    (List.map report_fingerprint warm2.Driver.reports);
  Alcotest.(check bool) "sinks in unchanged classes were replayed" true
    (warm2.Driver.stats.Driver.replayed_sinks > 0);
  (* the old engine is untouched and still answers for v1 *)
  let still =
    Driver.analyze ~engine:e1 ~dex:app.G.dex ~manifest:app.G.manifest ()
  in
  Alcotest.(check (list string)) "old engine still answers for v1"
    (List.map report_fingerprint r1.Driver.reports)
    (List.map report_fingerprint still.Driver.reports)

(* A delta-built engine is a first-class engine: saving it produces a
   snapshot that loads and round-trips byte-identically. *)
let test_delta_engine_roundtrip () =
  with_snapshot @@ fun ~app ~path ->
  let v2 = G.mutate ~pct:0.25 app in
  let engine =
    match Store.Snapshot.delta ~path v2.G.program with
    | Ok (e, _) -> e
    | Error e -> Alcotest.failf "delta: %s" (Store.Codec.error_to_string e)
  in
  let path2 = Filename.temp_file "backdroid_delta2" ".bdix" in
  let path3 = Filename.temp_file "backdroid_delta3" ".bdix" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path2; path3 ])
  @@ fun () ->
  ignore (Store.Snapshot.save ~path:path2 engine);
  let loaded =
    match Store.Snapshot.load ~path:path2 v2.G.program with
    | Ok e -> e
    | Error e ->
      Alcotest.failf "load of delta save: %s" (Store.Codec.error_to_string e)
  in
  ignore (Store.Snapshot.save ~path:path3 loaded);
  Alcotest.(check bool) "delta save -> load -> save is byte-identical" true
    (read_all path2 = read_all path3);
  let warm =
    Driver.analyze ~engine:loaded ~dex:(E.dexfile loaded)
      ~manifest:v2.G.manifest ()
  in
  let cold = Driver.analyze ~dex:v2.G.dex ~manifest:v2.G.manifest () in
  Alcotest.(check (list string)) "reloaded delta engine == cold"
    (List.map report_fingerprint cold.Driver.reports)
    (List.map report_fingerprint warm.Driver.reports)

(* An engine with no class map (pre-delta snapshot, or a cold engine built
   before classmaps existed) cannot be delta-patched: typed error, so
   callers fall back to a cold build. *)
let test_delta_requires_classmap () =
  let app = fixture_app () in
  let stripped =
    { app.G.dex with Dex.Dexfile.classmap = Dex.Classmap.empty }
  in
  let engine = E.create ~eager:true stripped in
  match Store.Snapshot.delta_of_engine engine app.G.program with
  | Ok _ -> Alcotest.fail "delta on a classmap-less engine succeeded"
  | Error (Store.Codec.Corrupt _) -> ()
  | Error e ->
    Alcotest.failf "expected Corrupt, got %s" (Store.Codec.error_to_string e)

(* Property: over random (seed, pct) — including pct=0 (pure reuse) and
   pct=1 (everything re-rendered) — incremental always equals from-scratch. *)
let delta_equiv =
  let gen = QCheck.Gen.(pair (int_range 1 60) (oneofl [ 0.0; 0.1; 0.4; 1.0 ])) in
  let print (s, p) = Printf.sprintf "seed=%d pct=%.2f" s p in
  QCheck.Test.make ~name:"delta == from-scratch analysis" ~count:8
    (QCheck.make ~print gen)
    (fun (seed, pct) ->
       let app = fixture_app ~seed ~filler:5 () in
       let path = Filename.temp_file "backdroid_deltaq" ".bdix" in
       Fun.protect
         ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
       @@ fun () ->
       let e1 = E.create ~eager:true app.G.dex in
       ignore (Store.Snapshot.save ~path e1);
       let v2 = G.mutate ~seed ~pct app in
       let cold = Driver.analyze ~dex:v2.G.dex ~manifest:v2.G.manifest () in
       let cold_fp = List.map report_fingerprint cold.Driver.reports in
       let check what engine =
         let r =
           Driver.analyze ~engine ~dex:(E.dexfile engine)
             ~manifest:v2.G.manifest ()
         in
         if List.map report_fingerprint r.Driver.reports <> cold_fp then
           QCheck.Test.fail_reportf "%s diverged from cold (%s)" what
             (print (seed, pct))
       in
       (match Store.Snapshot.delta ~path v2.G.program with
        | Ok (e, _) -> check "file delta" e
        | Error e ->
          QCheck.Test.fail_reportf "delta: %s"
            (Store.Codec.error_to_string e));
       (match Store.Snapshot.delta_of_engine e1 v2.G.program with
        | Ok (e, _) -> check "resident delta" e
        | Error e ->
          QCheck.Test.fail_reportf "delta_of_engine: %s"
            (Store.Codec.error_to_string e));
       true)

(* -- Postcodec wire-format properties --------------------------------- *)

module PC = Bytesearch.Postcodec

(* Strictly ascending slot lists spanning the codec's shapes: empty,
   singleton, dense runs (bitmap territory), sparse and max-gap runs
   (varint territory), and mixes that straddle the 8*nwords <= n
   threshold. *)
let gen_slots =
  QCheck.Gen.(
    let gaps_to_slots start gaps =
      List.rev
        (snd
           (List.fold_left
              (fun (prev, acc) g -> (prev + g, (prev + g) :: acc))
              (start, [ start ]) gaps))
    in
    oneof
      [ return [];
        map (fun s -> [ s ]) (int_bound 1_000_000);
        (* dense: consecutive or near-consecutive *)
        (let* start = int_bound 10_000 in
         let* n = int_range 1 400 in
         let* gaps = list_size (return (n - 1)) (int_range 1 2) in
         return (gaps_to_slots start gaps));
        (* sparse *)
        (let* start = int_bound 10_000 in
         let* n = int_range 1 100 in
         let* gaps = list_size (return (n - 1)) (int_range 1 5_000) in
         return (gaps_to_slots start gaps));
        (* max-gap: multi-byte varint deltas *)
        (let* start = int_bound 100 in
         let* n = int_range 1 10 in
         let* gaps = list_size (return (n - 1)) (int_range 1 (1 lsl 40)) in
         return (gaps_to_slots start gaps));
        (* mixed densities around the bitmap threshold *)
        (let* start = int_bound 1_000 in
         let* n = int_range 1 200 in
         let* gaps =
           list_size (return (n - 1)) (oneofl [ 1; 1; 1; 2; 63; 64; 65; 900 ])
         in
         return (gaps_to_slots start gaps)) ])

let print_slots l = String.concat "," (List.map string_of_int l)

let codec_roundtrip =
  QCheck.Test.make ~name:"postcodec encode/validate/iter round-trip"
    ~count:500
    (QCheck.make ~print:print_slots gen_slots)
    (fun slots ->
       let buf = Buffer.create 64 in
       PC.encode_array buf (Array.of_list slots);
       let bytes = Buffer.contents buf in
       let b = Bvec.of_string bytes in
       let max_slot = List.fold_left max 0 slots in
       (match
          PC.validate b ~pos:0 ~limit:(String.length bytes) ~max_slot
        with
        | Error m -> QCheck.Test.fail_reportf "validate rejected: %s" m
        | Ok (n, endp) ->
          if n <> List.length slots then
            QCheck.Test.fail_reportf "validated count %d <> %d" n
              (List.length slots);
          if endp <> String.length bytes then
            QCheck.Test.fail_reportf "validate stopped at %d of %d" endp
              (String.length bytes));
       if PC.count b ~pos:0 <> List.length slots then
         QCheck.Test.fail_report "O(1) count mismatch";
       let decoded = ref [] in
       PC.iter b ~pos:0 (fun s -> decoded := s :: !decoded);
       if List.rev !decoded <> slots then
         QCheck.Test.fail_reportf "decode mismatch: got %s"
           (print_slots (List.rev !decoded));
       (* determinism: re-encoding the decode is byte-identical *)
       let buf2 = Buffer.create 64 in
       PC.encode_array buf2 (Array.of_list (List.rev !decoded));
       if Buffer.contents buf2 <> bytes then
         QCheck.Test.fail_report "re-encode not byte-identical";
       (* a truncated run never validates *)
       (match slots with
        | [] -> ()
        | _ ->
          (match
             PC.validate b ~pos:0 ~limit:(String.length bytes - 1) ~max_slot
           with
           | Ok _ -> QCheck.Test.fail_report "truncated run validated"
           | Error _ -> ()));
       true)

let cases =
  [ Alcotest.test_case "corrupted snapshots fail as typed errors" `Quick
      test_rejects_corruption;
    Alcotest.test_case "save -> load -> save is byte-identical" `Quick
      test_roundtrip_identical;
    Alcotest.test_case "warm analyze == cold analyze" `Quick
      test_warm_analyze_equals_cold;
    Alcotest.test_case "v1 files still load, smaller v2" `Quick
      test_v1_version_skew;
    Alcotest.test_case "corrupt v2 coded run is typed" `Quick
      test_corrupt_coded_run;
    Alcotest.test_case "prefault load is equivalent" `Quick
      test_prefault_load;
    Alcotest.test_case "default snapshot path" `Quick test_default_path;
    Alcotest.test_case "delta patch == from-scratch (file + resident)" `Quick
      test_delta_equals_cold;
    Alcotest.test_case "delta engine saves and round-trips" `Quick
      test_delta_engine_roundtrip;
    Alcotest.test_case "delta without a class map is a typed error" `Quick
      test_delta_requires_classmap;
    QCheck_alcotest.to_alcotest delta_equiv;
    QCheck_alcotest.to_alcotest codec_roundtrip ]

let suites = [ "store.snapshot", cases ]
