lib/dex/dexfile.ml: Array Buffer Disasm Ir List
