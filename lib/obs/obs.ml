(** The telemetry layer: hierarchical {!Span}s with a lock-free-per-domain
    default recorder, a sharded deterministic {!Metrics} registry,
    {!Chrome} trace-event export, a per-phase self-time {!Summary}, and the
    shared {!Jsonf}/{!Io} helpers every artifact writer goes through.

    Everything is off-by-default-cheap: with no span sink installed and
    metrics disabled ({!disable}), the instrumentation costs one
    [Atomic.get] per call site — the bench's [--obs-overhead] section
    measures exactly this margin. *)

module Jsonf = Jsonf
module Io = Io
module Span = Span
module Metrics = Metrics
module Chrome = Chrome
module Summary = Summary

(** Turn all recording off: removes the span sink and disables metrics. *)
let disable () =
  Span.set_sink None;
  Metrics.set_enabled false

(** (Re-)enable metrics recording.  Span recording turns on by installing a
    sink ([Span.Recorder.install]). *)
let enable_metrics () = Metrics.set_enabled true

(** [true] when nothing records: no span sink and metrics disabled. *)
let disabled () = (not (Span.enabled ())) && not (Metrics.enabled ())
