(** Jimple-flavoured pretty-printing of methods and classes, used by the
    examples and by SSG dumps. *)

val pp_access : Format.formatter -> Jmethod.access -> unit
val pp_method : Format.formatter -> Jmethod.t -> unit
val pp_class : Format.formatter -> Jclass.t -> unit
val pp_program : Format.formatter -> Program.t -> unit
