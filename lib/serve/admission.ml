(* Bounded in-flight admission with a queue timeout.  The stdlib has no
   timed condition wait, so a full gate is polled on a short sleep until
   the deadline — the poll period (2 ms) is well under any meaningful
   queue timeout and the sleeping thread releases the runtime lock. *)

type t = {
  max_inflight : int;
  queue_timeout_ms : float;
  mutex : Mutex.t;
  mutable inflight : int;
  mutable rejected : int;
}

let create ~max_inflight ~queue_timeout_ms =
  { max_inflight = max 1 max_inflight;
    queue_timeout_ms = max 0.0 queue_timeout_ms;
    mutex = Mutex.create (); inflight = 0; rejected = 0 }

let try_acquire t =
  Mutex.lock t.mutex;
  let ok = t.inflight < t.max_inflight in
  if ok then t.inflight <- t.inflight + 1;
  Mutex.unlock t.mutex;
  ok

let acquire t =
  if try_acquire t then true
  else begin
    let deadline = Unix.gettimeofday () +. (t.queue_timeout_ms /. 1000.0) in
    let rec wait () =
      if Unix.gettimeofday () >= deadline then begin
        Mutex.lock t.mutex;
        t.rejected <- t.rejected + 1;
        Mutex.unlock t.mutex;
        false
      end
      else begin
        Unix.sleepf 0.002;
        if try_acquire t then true else wait ()
      end
    in
    wait ()
  end

let release t =
  Mutex.lock t.mutex;
  t.inflight <- max 0 (t.inflight - 1);
  Mutex.unlock t.mutex

let inflight t =
  Mutex.lock t.mutex;
  let v = t.inflight in
  Mutex.unlock t.mutex;
  v

let rejected t =
  Mutex.lock t.mutex;
  let v = t.rejected in
  Mutex.unlock t.mutex;
  v

let max_inflight t = t.max_inflight
