examples/crypto_audit.ml: Appgen Evalharness Framework List Printf
