(** Forward object taint analysis (Sec. IV-B): starting from a constructor
    allocation site located by signature search, propagate the object through
    definition, invoke and return statements until it reaches an "ending
    method" — either an app-level call with the callee's own sub-signature
    (super-class / interface dispatch) or a framework API call that receives
    the tainted object at a position whose declared type indicates the
    callee's interface (callbacks and asynchronous flows).  The whole call
    chain is maintained so the backward analysis does not pick up unrelated
    flows. *)

open Ir

type advanced_caller = {
  caller : Jsig.meth;
      (** chain head: the method where the tracked object is created *)
  obj_local : string;    (** local holding the object in [caller] *)
  obj_site : int;        (** allocation (or escape) site in [caller] *)
  chain : (Jsig.meth * int) list;
      (** methods the object was propagated through: (method, call site) *)
  ending : Jsig.meth;    (** the ending method *)
  ending_in : Jsig.meth; (** method whose body contains the ending call *)
  ending_site : int;
  ending_invoke : Expr.invoke option;
      (** the ending invocation, for argument mapping at app-level endings *)
}

type config = {
  max_endings : int;
  max_steps : int;
  max_return_hops : int;
}

let default_config = { max_endings = 16; max_steps = 4000; max_return_hops = 2 }

let m_steps = Obs.Metrics.counter "taint.steps"

(** Supertypes of [cls] (classes and interfaces, app or system) that declare
    [subsig] — the "interface class type" indicators of Sec. IV-B. *)
let indicator_types program cls subsig =
  let declares n =
    match Program.find_class program n with
    | Some c -> Option.is_some (Jclass.find_method_by_subsig c subsig)
    | None -> false
  in
  List.filter declares
    (Program.superclasses program cls @ Program.interfaces_of program cls)

type state = {
  program : Program.t;
  callee : Jsig.meth;
  callee_subsig : Sym.t;  (** interned sub-signature of the searched callee *)
  indicators : string list;
  loops : Loopdetect.stats;
  cfg : config;
  mutable steps : int;
  mutable found : advanced_caller list;
}

let is_system_class st cls =
  match Program.find_class st.program cls with
  | Some c -> c.Jclass.is_system
  | None -> true (* unknown classes behave like framework classes *)

(** Does the invoke [iv] hand a tainted value to a position whose declared
    type is one of the indicator types?  (Ending condition for callbacks and
    asynchronous flows.) *)
let indicator_position st (iv : Expr.invoke) tainted =
  let receiver_hit =
    match iv.base with
    | Some b when tainted b.Value.id -> List.mem iv.callee.Jsig.cls st.indicators
    | Some _ | None -> false
  in
  let arg_hit =
    List.exists2
      (fun (arg : Value.t) ty ->
         match arg, Types.base_class ty with
         | Value.Local l, Some c -> tainted l.Value.id && List.mem c st.indicators
         | _, _ -> false)
      iv.args iv.callee.Jsig.params
  in
  receiver_hit || arg_hit

let record_ending st ~head ~obj_local ~obj_site ~chain ~ending_in ~site iv
    ~app_level =
  Log.debug (fun m ->
      m "advanced search: callee %s reached ending %s in %s (chain %d, %s)"
        (Jsig.meth_to_string st.callee)
        (Jsig.meth_to_string iv.Expr.callee)
        (Jsig.meth_to_string ending_in)
        (List.length chain)
        (if app_level then "app-level" else "framework"));
  if List.length st.found < st.cfg.max_endings then
    st.found <-
      { caller = head; obj_local; obj_site; chain = List.rev chain;
        ending = iv.Expr.callee; ending_in; ending_site = site;
        ending_invoke = (if app_level then Some iv else None) }
      :: st.found

(** Propagate taint through one method body starting at [from_idx].
    [tainted] is the set of tainted local ids in this method.  Returns true
    if a tainted value escapes through a return statement. *)
let rec walk st ~head ~obj_local ~obj_site ~chain ~meth ~body ~from_idx tainted =
  let is_tainted id = Hashtbl.mem tainted id in
  let taint id = Hashtbl.replace tainted id () in
  let value_tainted = function
    | Value.Local l -> is_tainted l.Value.id
    | Value.Const _ -> false
  in
  let escaped = ref false in
  let n = Array.length body in
  let idx = ref from_idx in
  while !idx < n do
    st.steps <- st.steps + 1;
    if st.steps > st.cfg.max_steps then idx := n
    else begin
      (match body.(!idx) with
       | Stmt.Assign (l, Expr.Imm (Value.Local x)) when is_tainted x.Value.id ->
         taint l.Value.id
       | Stmt.Assign (l, Expr.Cast (_, Value.Local x)) when is_tainted x.Value.id ->
         taint l.Value.id
       | Stmt.Assign (l, Expr.Phi ls)
         when List.exists (fun x -> is_tainted x.Value.id) ls ->
         taint l.Value.id
       | Stmt.Assign (l, Expr.Invoke iv) ->
         if handle_invoke st ~head ~obj_local ~obj_site ~chain ~meth ~site:!idx
             ~is_tainted ~value_tainted iv
         then taint l.Value.id
       | Stmt.Invoke iv ->
         ignore
           (handle_invoke st ~head ~obj_local ~obj_site ~chain ~meth ~site:!idx
              ~is_tainted ~value_tainted iv)
       | Stmt.Return (Some (Value.Local x)) when is_tainted x.Value.id ->
         escaped := true
       | Stmt.Assign (_, _) | Stmt.Instance_put _ | Stmt.Static_put _
       | Stmt.Array_put _ | Stmt.Return _ | Stmt.If _ | Stmt.Goto _
       | Stmt.Throw _ | Stmt.Nop -> ());
      incr idx
    end
  done;
  !escaped

(** Handle a (possibly tainted) invocation during forward propagation.
    Returns true when the call's result becomes tainted. *)
and handle_invoke st ~head ~obj_local ~obj_site ~chain ~meth ~site ~is_tainted
    ~value_tainted (iv : Expr.invoke) =
  let receiver_tainted =
    match iv.base with Some b -> is_tainted b.Value.id | None -> false
  in
  let any_arg_tainted = List.exists value_tainted iv.args in
  if not (receiver_tainted || any_arg_tainted) then false
  else if
    (* ending (a): app-level call with the callee's own sub-signature on the
       tainted receiver — super-class and interface dispatch *)
    (* interned: the per-invoke sub-signature render of the old string
       comparison is gone from this hot path *)
    receiver_tainted && Sym.equal (Jsig.subsig_sym iv.callee) st.callee_subsig
  then begin
    record_ending st ~head ~obj_local ~obj_site ~chain ~ending_in:meth ~site iv
      ~app_level:true;
    false
  end
  else if
    (* ending (b): framework API receiving the object at an indicator-typed
       position — callbacks and asynchronous flows *)
    is_system_class st iv.callee.Jsig.cls
    && indicator_position st iv is_tainted
  then begin
    record_ending st ~head ~obj_local ~obj_site ~chain ~ending_in:meth ~site iv
      ~app_level:false;
    false
  end
  else if is_system_class st iv.callee.Jsig.cls then
    (* other framework call: treat builder-style APIs as propagating the
       receiver into the result *)
    receiver_tainted
  else begin
    (* app method: propagate into its body (InvokeStmt propagation) *)
    match Program.find_method st.program iv.callee with
    | None | Some { Jmethod.body = None; _ } -> false
    | Some callee_m ->
      if Jsig.meth_equal iv.callee meth then begin
        Loopdetect.record st.loops Loopdetect.Inner_forward;
        false
      end
      else if Loopdetect.on_path (List.map fst chain) iv.callee
              || Jsig.meth_equal iv.callee head
      then begin
        Loopdetect.record st.loops Loopdetect.Cross_forward;
        false
      end
      else begin
        let body = Option.get callee_m.Jmethod.body in
        let tainted' = Hashtbl.create 8 in
        (* map tainted receiver/args onto callee identity locals *)
        (match iv.base with
         | Some b when is_tainted b.Value.id ->
           (match Jmethod.this_local callee_m with
            | Some l -> Hashtbl.replace tainted' l.Value.id ()
            | None -> ())
         | Some _ | None -> ());
        List.iteri
          (fun i arg ->
             if value_tainted arg then
               match Jmethod.param_local callee_m i with
               | Some l -> Hashtbl.replace tainted' l.Value.id ()
               | None -> ())
          iv.args;
        walk st ~head ~obj_local ~obj_site ~chain:((meth, site) :: chain)
          ~meth:iv.callee ~body ~from_idx:0 tainted'
      end
  end

(** The tainted object escaped [escapee] through its return value: locate
    [escapee]'s callers by basic search and continue the forward taint from
    each call site's result local. *)
let rec follow_return st ~escapee ~hops =
  if hops >= st.cfg.max_return_hops then ()
  else
    (* NOTE: uses program-space call-site recovery; the bytecode search for
       the escapee's own callers happens in the slicer when needed. *)
    Program.iter_classes st.program (fun c ->
        if not c.Jclass.is_system then
          List.iter
            (fun (m : Jmethod.t) ->
               match m.Jmethod.body with
               | None -> ()
               | Some body ->
                 Array.iteri
                   (fun idx stmt ->
                      match stmt with
                      | Stmt.Assign (l, Expr.Invoke iv)
                        when Jsig.meth_equal iv.Expr.callee escapee ->
                        let tainted = Hashtbl.create 4 in
                        Hashtbl.replace tainted l.Value.id ();
                        let escaped =
                          walk st ~head:m.Jmethod.msig ~obj_local:l.Value.id
                            ~obj_site:idx ~chain:[] ~meth:m.Jmethod.msig ~body
                            ~from_idx:(idx + 1) tainted
                        in
                        if escaped then
                          follow_return st ~escapee:m.Jmethod.msig
                            ~hops:(hops + 1)
                      | _ -> ())
                   body)
            c.Jclass.methods)

(** Find advanced callers of [callee] (a method needing the advanced search):
    search each of the callee class's constructors, then run forward object
    taint from every allocation site. *)
let advanced_callers ?(cfg = default_config) engine loops (callee : Jsig.meth) =
  let attrs =
    if Obs.Span.enabled () then
      [ ("callee", Obs.Span.Str (Sym.to_string (Jsig.meth_sym callee))) ]
    else []
  in
  Obs.Span.with_span ~cat:"slice" ~name:"object-taint" ~attrs @@ fun () ->
  let program = Bytesearch.Engine.program engine in
  let subsig = Jsig.sub_signature callee in
  let st =
    { program; callee; callee_subsig = Jsig.subsig_sym callee;
      indicators = indicator_types program callee.cls subsig;
      loops; cfg; steps = 0; found = [] }
  in
  let ctors =
    match Program.find_class program callee.cls with
    | Some c -> Jclass.constructors c
    | None -> []
  in
  let start_from_site (h : Bytesearch.Engine.hit) (ctor : Jmethod.t) =
    match Program.find_method program h.owner with
    | None | Some { Jmethod.body = None; _ } -> ()
    | Some m ->
      let body = Option.get m.Jmethod.body in
      Array.iteri
        (fun idx stmt ->
           match Stmt.invoke stmt with
           | Some iv
             when Jsig.meth_equal iv.Expr.callee ctor.Jmethod.msig
                  && Option.is_some iv.Expr.base ->
             let base = Option.get iv.Expr.base in
             let tainted = Hashtbl.create 8 in
             Hashtbl.replace tainted base.Value.id ();
             let escaped =
               walk st ~head:h.owner ~obj_local:base.Value.id ~obj_site:idx
                 ~chain:[] ~meth:h.owner ~body ~from_idx:(idx + 1) tainted
             in
             if escaped then
               (* the object escapes via return: continue in the callers of
                  this method (ReturnStmt propagation), bounded *)
               follow_return st ~escapee:h.owner ~hops:0
           | Some _ | None -> ())
        body
  in
  List.iter
    (fun (ctor : Jmethod.t) ->
       let dex_sig = Sigformat.to_dex_meth_sym ctor.Jmethod.msig in
       let hits =
         Bytesearch.Engine.run engine (Bytesearch.Query.invocation_sym dex_sig)
       in
       List.iter (fun h -> start_from_site h ctor) hits)
    ctors;
  Obs.Metrics.add m_steps st.steps;
  List.rev st.found
