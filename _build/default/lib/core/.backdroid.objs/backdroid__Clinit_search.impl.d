lib/core/clinit_search.ml: Bytesearch Hashtbl Ir Jsig List Log Manifest Sigformat String
