(** Corpora mirroring the paper's datasets: the 144 modern apps of the main
    evaluation, the yearly app-size samples of Table I, the detection corpus
    of Sec. VI-C, and a sink-count sweep for Fig. 9. *)

module Sinks = Framework.Sinks

(** Calibration constant: how many IR statements stand in for one APK
    megabyte.  Chosen so that whole-app analysis cost scales with "app size"
    on the same relative scale as the paper's corpus. *)
let stmts_per_mb = 250

(** Average statements contributed by one filler class under the default
    method/statement knobs (ctor + step + methods). *)
let filler_class_stmts ~methods_per_class ~stmts_per_method =
  (* each method body also carries identity stmts, calls and a return *)
  (methods_per_class * (stmts_per_method + 6)) + (stmts_per_method / 2 + 4) + 3

let filler_classes_for_mb ~mb ~methods_per_class ~stmts_per_method =
  let per_class = filler_class_stmts ~methods_per_class ~stmts_per_method in
  max 1 (int_of_float (mb *. float_of_int stmts_per_mb) / per_class)

(* ------------------------------------------------------------------ *)
(* Size models                                                          *)

(** Lognormal sample with the given median and mean (mean > median). *)
let lognormal rng ~median ~mean =
  let mu = log median in
  let sigma2 = 2.0 *. (log mean -. log median) in
  let sigma = sqrt (max 0.0 sigma2) in
  (* Box-Muller *)
  let u1 = max 1e-12 (Rng.float rng) and u2 = Rng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

(** Table I year models: (average MB, median MB, sample count). *)
let year_models =
  [ 2014, (13.8, 8.4, 2840);
    2015, (18.8, 12.4, 1375);
    2016, (21.6, 16.2, 3510);
    2017, (32.9, 30.0, 1706);
    2018, (42.6, 38.0, 3178) ]

(** Sample the app-size distribution of a given year (sizes only — Table I
    needs no app bodies). *)
let yearly_sizes ~seed year =
  match List.assoc_opt year year_models with
  | None -> invalid_arg "Corpus.yearly_sizes: unknown year"
  | Some (mean, median, count) ->
    let rng = Rng.create (seed + year) in
    List.init count (fun _ -> lognormal rng ~median ~mean)

(* ------------------------------------------------------------------ *)
(* Shape / sink mixes                                                   *)

let weighted_choice rng choices =
  let total = List.fold_left (fun a (w, _) -> a +. w) 0.0 choices in
  let x = Rng.float rng *. total in
  let rec pick acc = function
    | [] -> snd (List.hd (List.rev choices))
    | (w, v) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 choices

(** Shape mix for the performance corpora: all search mechanisms exercised,
    weighted towards the common patterns. *)
let performance_shape_mix : (float * Shape.t) list =
  [ 0.20, Direct; 0.14, Static_chain; 0.08, Child_class; 0.08, Super_class;
    0.08, Interface_dispatch; 0.08, Callback; 0.07, Async_thread;
    0.05, Async_executor; 0.05, Async_task; 0.04, Static_init;
    0.04, Clinit_field; 0.04, Icc_explicit; 0.03, Icc_implicit;
    0.04, Lifecycle_field; 0.05, Dead_code; 0.02, Skipped_lib;
    0.05, Recursive_chain; 0.20, Shared_util; 0.03, Builder_spec ]

let primary_sink_mix : (float * Sinks.t) list =
  [ 0.5, Sinks.cipher; 0.3, Sinks.ssl_factory; 0.2, Sinks.https_conn ]

let random_plant rng ~insecure_p : Generator.plant_spec =
  { shape = weighted_choice rng performance_shape_mix;
    sink = weighted_choice rng primary_sink_mix;
    insecure = Rng.bool rng insecure_p }

(* ------------------------------------------------------------------ *)
(* The modern-144 corpus                                                *)

(** One config of the 144-app corpus.  [scale] scales app sizes down for
    quick runs (1.0 = full calibrated sizes). *)
let modern_app ~scale rng i =
  let mb = lognormal rng ~median:36.2 ~mean:41.5 in
  let mb = Float.max 2.9 (Float.min 104.9 mb) in
  let mb = mb *. scale in
  let methods_per_class = 6 and stmts_per_method = 8 in
  (* sink API calls per app: mean ~21 as in Sec. VI-D *)
  let n_sinks = 3 + Rng.int rng 36 in
  let plants = List.init n_sinks (fun _ -> random_plant rng ~insecure_p:0.015) in
  (* per-app dispatch density: the natural high-variance source of
     whole-app analysis cost (framework-heavy apps blow up; plain apps are
     mild), independent of what the targeted analysis ever touches *)
  let dispatch_p = 0.08 +. Rng.float rng *. 0.42 in
  (* calling-context profile: about a fifth of apps are structurally mild,
     close to half are moderate, and roughly a third have the deep, dense
     call structure that drives whole-app dataflow engines into context
     explosion (the paper's 35% timeout population) *)
  let fanout_max, jump_locality =
    weighted_choice rng [ 0.20, (1, 0); 0.45, (3, 0); 0.35, (2, 3) ]
  in
  { Generator.seed = 1000 + i;
    name = Printf.sprintf "com.modern.app%03d" i;
    filler_classes = filler_classes_for_mb ~mb ~methods_per_class ~stmts_per_method;
    filler_methods_per_class = methods_per_class;
    filler_stmts_per_method = stmts_per_method;
    filler_dispatch_p = dispatch_p;
    filler_fanout_max = fanout_max;
    filler_jump_locality = jump_locality;
    plants;
    multidex = mb > 60.0 }

(** The 144 "modern popular apps" of Sec. VI-A.  Includes one deliberate
    outlier with 121 sink calls (the paper's Huawei Health case). *)
let modern_144 ?(scale = 1.0) ?(seed = 42) ?(count = 144) () =
  let rng = Rng.create seed in
  let configs = List.init (max 0 (count - 1)) (fun i -> modern_app ~scale rng i) in
  let outlier =
    let plants =
      List.init 121 (fun _ -> random_plant rng ~insecure_p:0.01)
    in
    { Generator.seed = 4242;
      name = "com.huawei.health.sim";
      filler_classes =
        filler_classes_for_mb ~mb:(90.0 *. scale) ~methods_per_class:6
          ~stmts_per_method:8;
      filler_methods_per_class = 6;
      filler_stmts_per_method = 8;
      filler_dispatch_p = 0.2;
      filler_fanout_max = 2;
      filler_jump_locality = 0;
      plants;
      multidex = true }
  in
  configs @ [ outlier ]

(* ------------------------------------------------------------------ *)
(* Detection corpus (Sec. VI-C)                                         *)

type detection_app = {
  config : Generator.config;
  group : string;  (** which Sec. VI-C case the app instantiates *)
}

let small_app ?(heavy = false) ~seed ~name ~mb ~plants ~group () =
  { config =
      { Generator.default_config with
        Generator.seed;
        name;
        filler_classes =
          filler_classes_for_mb ~mb ~methods_per_class:6 ~stmts_per_method:8;
        filler_methods_per_class = 6;
        filler_stmts_per_method = 8;
        (* heavy apps carry the deep, dense call structure that defeats
           whole-app analysis within any reasonable budget *)
        filler_fanout_max = (if heavy then 2 else 3);
        filler_jump_locality = (if heavy then 3 else 0);
        plants };
    group }

let plant shape sink insecure : Generator.plant_spec =
  { shape; sink; insecure }

(** Apps mirroring the detection-result populations of Sec. VI-C:
    - 7 ECB true positives (both tools should detect),
    - 17 SSL true positives, of which 2 use the subclassed-sink shape
      (BackDroid's documented FNs),
    - 6 SSL false positives from unregistered components (Amandroid FPs),
    - the "additional detection" groups: oversized/timeout apps, skipped
      libraries, async/callback flows the baseline misses. *)
let detection ?(seed = 7) ?(timeout_mb = 120.0) () =
  let rng = Rng.create seed in
  (* shapes both tools handle — the async/callback gap shapes live in their
     own "extra" group *)
  let reachable_shapes =
    [ Shape.Direct; Shape.Static_chain; Shape.Super_class; Shape.Async_thread;
      Shape.Icc_explicit; Shape.Lifecycle_field ]
  in
  let pick_shape () = Rng.choose rng reachable_shapes in
  let ecb_tp =
    List.init 7 (fun i ->
        small_app ~seed:(9000 + i)
          ~name:(Printf.sprintf "com.det.ecb%d" i)
          ~mb:(8.0 +. Rng.float rng *. 20.0)
          ~plants:[ plant (pick_shape ()) Sinks.cipher true ]
          ~group:"ecb-tp" ())
  in
  let ssl_tp =
    List.init 15 (fun i ->
        small_app ~seed:(9100 + i)
          ~name:(Printf.sprintf "com.det.ssl%d" i)
          ~mb:(8.0 +. Rng.float rng *. 20.0)
          ~plants:[ plant (pick_shape ()) Sinks.ssl_factory true ]
          ~group:"ssl-tp" ())
  in
  let ssl_subclassed =
    List.init 2 (fun i ->
        small_app ~seed:(9200 + i)
          ~name:(Printf.sprintf "com.det.sslsub%d" i)
          ~mb:10.0
          ~plants:[ plant Shape.Subclassed_sink Sinks.ssl_factory true ]
          ~group:"ssl-tp-subclassed" ())
  in
  let ssl_fp =
    List.init 6 (fun i ->
        small_app ~seed:(9300 + i)
          ~name:(Printf.sprintf "com.det.sslfp%d" i)
          ~mb:10.0
          ~plants:[ plant Shape.Unregistered_component Sinks.ssl_factory true ]
          ~group:"ssl-fp-unregistered" ())
  in
  let timeouts =
    List.init 8 (fun i ->
        small_app ~heavy:true ~seed:(9400 + i)
          ~name:(Printf.sprintf "com.det.huge%d" i)
          ~mb:timeout_mb
          ~plants:[ plant (pick_shape ()) (Rng.choose rng [ Sinks.cipher; Sinks.ssl_factory ]) true ]
          ~group:"extra-timeout" ())
  in
  let skipped =
    List.init 8 (fun i ->
        small_app ~seed:(9500 + i)
          ~name:(Printf.sprintf "com.det.lib%d" i)
          ~mb:10.0
          ~plants:[ plant Shape.Skipped_lib (Rng.choose rng [ Sinks.cipher; Sinks.ssl_factory ]) true ]
          ~group:"extra-skipped-lib" ())
  in
  let async_gap =
    List.init 8 (fun i ->
        let shape =
          Rng.choose rng [ Shape.Async_executor; Shape.Async_task; Shape.Callback ]
        in
        small_app ~seed:(9600 + i)
          ~name:(Printf.sprintf "com.det.async%d" i)
          ~mb:10.0
          ~plants:[ plant shape (Rng.choose rng [ Sinks.cipher; Sinks.ssl_factory ]) true ]
          ~group:"extra-async-gap" ())
  in
  let errors =
    (* apps the whole-app baseline fails on with internal errors ("Could not
       find procedure" / "key not found"); the harness runs this group with
       the error knob set *)
    List.init 10 (fun i ->
        small_app ~seed:(9700 + i)
          ~name:(Printf.sprintf "com.det.err%d" i)
          ~mb:10.0
          ~plants:[ plant (pick_shape ()) (Rng.choose rng [ Sinks.cipher; Sinks.ssl_factory ]) true ]
          ~group:"extra-error" ())
  in
  ecb_tp @ ssl_tp @ ssl_subclassed @ ssl_fp @ timeouts @ skipped @ async_gap
  @ errors

(* ------------------------------------------------------------------ *)
(* Sink-count sweep (Fig. 9)                                            *)

let sink_sweep ?(seed = 13) ?(mb = 20.0) () =
  let rng = Rng.create seed in
  let counts = [ 1; 2; 4; 6; 8; 12; 16; 20; 25; 30; 40; 50; 60; 80; 100; 121 ] in
  List.map
    (fun n ->
       let plants = List.init n (fun _ -> random_plant rng ~insecure_p:0.02) in
       { Generator.default_config with
         Generator.seed = 5000 + n;
         name = Printf.sprintf "com.sweep.sinks%03d" n;
         filler_classes =
           filler_classes_for_mb ~mb ~methods_per_class:6 ~stmts_per_method:8;
         filler_methods_per_class = 6;
         filler_stmts_per_method = 8;
         plants })
    counts
