lib/ir/builder.ml: Array Expr Jmethod Jsig List Printf Stmt Types Value
