lib/ir/jmethod.mli: Expr Jsig Stmt Value
