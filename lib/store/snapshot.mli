(** Persistent preprocessing snapshots (warm-start store).

    A snapshot captures everything the preprocessing phase computes from a
    program — the interned symbol table, the disassembled plaintext lines,
    the hit {!Dex.Arena}, all seven per-category search postings, the
    per-class {!Dex.Classmap} (line/slot ranges plus text and IR content
    hashes) and, optionally, persisted per-sink analysis results — in one
    {!Codec} container, so a warm start maps it back instead of
    disassembling and indexing again.  Int-array payloads load as mmapped
    {!Ivec.t}s: they live off the OCaml heap, so the warm path also carries
    less GC pressure than a cold build.

    Symbol ids are snapshot-stable.  Save writes the whole live symbol
    table; load re-interns its strings in id order.  In the common case
    (fresh process, same pipeline) this reproduces identical ids and the
    mapped vectors are used as-is; otherwise load rewrites the arena's sym
    column in place (the mappings are private, copy-on-write) and permutes
    the postings to live ids, so a warm engine always returns hits
    byte-identical to a cold one.

    Loaded plaintext lines carry [K_none]/no tokens (the postings that
    needed them are already built), which only matters if a snapshot
    dexfile were re-indexed from scratch — it never is. *)

(** [default_path ~dir ~app_id] is the conventional snapshot location:
    [dir]/[sanitized app_id].v[format_version].bdix.  The version is baked
    into the name so a format bump cold-starts instead of failing the
    version check. *)
val default_path : dir:string -> app_id:string -> string

(** Serialize [engine]'s symbol table, dexfile lines, arena, classmap and
    all seven postings categories (building any not yet built) to [path],
    atomically.  Returns the file size in bytes.

    [format_version] (default {!Codec.format_version}, i.e. v2) selects the
    payload encoding: v2 compresses each postings run with
    {!Bytesearch.Postcodec} (varint deltas / bitmap words — several times
    smaller on disk and decoded on demand after load); passing [1] writes
    the legacy flat-slot layout, kept so version-skew tests (and downgrade
    paths) can produce v1 files.  Save -> load -> save is byte-identical at
    either version.

    [ruleset_hash] (default: the engine's own
    {!Bytesearch.Engine.ruleset_stamp}, if any) records the detection-rule-set
    content hash the snapshot was produced under; {!load} stamps it back
    onto the warm engine so an analysis under a different rule set notices
    the change instead of silently trusting warm state.

    [results] (default empty) is an opaque array of persisted analysis
    results — one serialized entry per cached per-sink verdict (see
    [Backdroid.Resultcache]; the store does not interpret the strings).
    Read back with {!load_results}. *)
val save :
  ?format_version:int ->
  ?ruleset_hash:int ->
  ?results:string array ->
  path:string ->
  Bytesearch.Engine.t ->
  int

(** [load ?prefault ~path program] maps the snapshot at [path] back into a
    ready engine over [program] (which supplies the analysis-side IR; the
    snapshot supplies everything search-side).  Both v1 and v2 files load;
    v2 postings stay compressed (the engine decodes runs on demand) and v2
    line texts stay in the mapped blob (materialised lazily per returned
    hit).  Validates structure fully before use — every coded run is walked
    and range-checked — so a damaged file yields a typed {!Codec.error},
    never a crash or a silently wrong engine.

    The hot sections — the five arena columns and every category's postings
    directory (keys and offsets) — are always prefaulted: they are a few
    pages each and every query touches them, so paying their page faults at
    load time makes the first warm queries as fast as steady state.
    [prefault] (default false) extends the walk to the remaining bulk —
    postings bodies and the line-text blob — front-loading even the
    residual text-scan cost. *)
val load :
  ?prefault:bool ->
  path:string ->
  Ir.Program.t ->
  (Bytesearch.Engine.t, Codec.error) result

(** The persisted analysis results of the snapshot at [path] (the [results]
    passed to {!save}), or [[||]] if the file predates result persistence
    or none were saved.  Cheap: maps only the two result sections, not the
    engine state. *)
val load_results : path:string -> (string array, Codec.error) result

(** What {!delta} did: per-class reuse/re-render counts and the postings
    bytes carried over versus rebuilt. *)
type delta_report = {
  d_total : int;        (** classes in the new build *)
  d_unchanged : int;    (** classes spliced from the old snapshot *)
  d_changed : int;      (** classes present in both but re-rendered *)
  d_added : int;        (** classes only in the new build *)
  d_removed : int;      (** old-snapshot classes absent from the new build *)
  d_lines_reused : int;
  d_lines_rendered : int;
  d_patched_postings_bytes : int;
      (** bytes of postings entries carried over from the old snapshot *)
  d_rebuilt_postings_bytes : int;
      (** bytes of postings entries rebuilt for re-rendered classes *)
}

val delta_report_to_string : delta_report -> string

(** [delta_of_engine old program] patches a {e resident} engine — the
    previous app version's index, still in memory — into an engine for
    [program]: classes whose structural {!Ir.Irhash} matches the old
    engine's classmap entry keep their line records (shared by reference),
    text bytes, arena rows and postings entries; only changed or added
    classes are rendered and indexed, and the affected postings CSR rows
    are patched.  No file I/O, no parsing, no symbol re-interning — this
    is the maintained-index fast path an app store uses when version N+1
    of an app arrives while version N's index is warm, and what the corpus
    cache uses to upgrade a stale snapshot it has already loaded.  The old
    engine is left untouched and remains usable.

    The resulting engine answers every query identically to a cold build
    of [program] (the property tests assert this), and
    {!Bytesearch.Engine.index_mode} reports ["delta"].

    Fails with a typed {!Codec.error} when the old engine has no class map
    (a pre-delta snapshot or a warm-start placeholder) — callers fall back
    to a cold build. *)
val delta_of_engine :
  Bytesearch.Engine.t ->
  Ir.Program.t ->
  (Bytesearch.Engine.t * delta_report, Codec.error) result

(** [delta ~path program] is {!load} followed by {!delta_of_engine}: build
    an engine for [program] incrementally against the old snapshot at
    [path].  The load performs the full structural validation and symbol
    re-interning, so a damaged or pre-classmap snapshot fails with a typed
    {!Codec.error} — callers fall back to a cold build. *)
val delta :
  path:string ->
  Ir.Program.t ->
  (Bytesearch.Engine.t * delta_report, Codec.error) result
