lib/ir/expr.ml: Fmt Jsig List Printf String Types Value
