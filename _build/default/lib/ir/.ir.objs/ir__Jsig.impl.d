lib/ir/jsig.ml: Fmt Hashtbl List Printf String Types
