(** A CryptoGuard-style comparator (Sec. VIII related work): crypto-specific
    slicing on top of *intra*-procedural dataflow only.  For every sink API
    call it resolves the security-relevant parameter using nothing but the
    containing method's body — the precision/runtime trade-off the paper
    attributes to CryptoGuard.

    Characteristic behaviour demonstrated by the test suite:
    - parameters passed in from callers are unresolvable (false negatives on
      every inter-procedural flow, which is most of them);
    - entry-point reachability is never checked, so sinks in dead code or
      unregistered components are reported anyway (false positives);
    - it is extremely fast, since no inter-procedural work happens at all. *)

type finding = {
  sink : Framework.Sinks.t;
  meth : Ir.Jsig.meth;
  site : int;
  fact : Backdroid.Facts.t;
  verdict : Backdroid.Detectors.verdict;
}

(** Scan every app method once; no reachability, no inter-procedural flow. *)
val analyze : ?sinks:Framework.Sinks.t list -> Ir.Program.t -> finding list

val insecure_findings : finding list -> finding list
