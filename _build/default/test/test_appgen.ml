(* Tests for the synthetic app generator: determinism, size control, ground
   truth consistency, corpus statistics. *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Corpus = Appgen.Corpus
module Sinks = Framework.Sinks

let gen_small seed =
  G.generate
    { G.default_config with
      G.seed;
      name = "com.t.gen";
      filler_classes = 8;
      plants =
        [ { G.shape = Shape.Direct; sink = Sinks.cipher; insecure = true };
          { G.shape = Shape.Callback; sink = Sinks.ssl_factory; insecure = false } ] }

let test_determinism () =
  let a = gen_small 5 and b = gen_small 5 in
  Alcotest.(check int) "same size" a.G.size_stmts b.G.size_stmts;
  Alcotest.(check int) "same dex lines" (Dex.Dexfile.line_count a.G.dex)
    (Dex.Dexfile.line_count b.G.dex);
  Alcotest.(check string) "same dex text" (Dex.Dexfile.to_string a.G.dex)
    (Dex.Dexfile.to_string b.G.dex)

let test_seed_changes_output () =
  let a = gen_small 5 and b = gen_small 6 in
  Alcotest.(check bool) "different seeds differ" true
    (not (String.equal (Dex.Dexfile.to_string a.G.dex) (Dex.Dexfile.to_string b.G.dex)))

let test_ground_truth () =
  let app = gen_small 5 in
  Alcotest.(check int) "two planted sinks" 2 (List.length app.G.planted);
  let p0 = List.nth app.G.planted 0 in
  Alcotest.(check bool) "direct plant reachable" true p0.Appgen.Templates.reachable;
  Alcotest.(check bool) "direct plant insecure" true p0.Appgen.Templates.insecure

let test_size_scales () =
  let mk n =
    (G.generate { G.default_config with G.seed = 3; name = "com.t.size"; filler_classes = n }).G.size_stmts
  in
  let s10 = mk 10 and s40 = mk 40 in
  Alcotest.(check bool) "4x classes -> roughly 4x stmts" true
    (s40 > 3 * s10 && s40 < 5 * s10)

let test_components_registered () =
  let app = gen_small 5 in
  let comps = app.G.manifest.Manifest.App_manifest.components in
  (* filler activity + 2 plant activities *)
  Alcotest.(check bool) "at least three components" true (List.length comps >= 3)

let test_multidex_equivalent () =
  let base = { G.default_config with G.seed = 9; name = "com.t.mdx"; filler_classes = 12 } in
  let a = G.generate base in
  let b = G.generate { base with G.multidex = true } in
  Alcotest.(check int) "same line count with multidex"
    (Dex.Dexfile.line_count a.G.dex) (Dex.Dexfile.line_count b.G.dex)

(* --- corpus --- *)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median xs =
  let s = List.sort compare xs in
  List.nth s (List.length s / 2)

let test_yearly_sizes () =
  List.iter
    (fun (year, (avg, med, count)) ->
       let sizes = Corpus.yearly_sizes ~seed:1 year in
       Alcotest.(check int)
         (Printf.sprintf "%d sample count" year)
         count (List.length sizes);
       let m = mean sizes and md = median sizes in
       Alcotest.(check bool)
         (Printf.sprintf "%d mean within 15%% of %.1f (got %.1f)" year avg m)
         true
         (abs_float (m -. avg) /. avg < 0.15);
       Alcotest.(check bool)
         (Printf.sprintf "%d median within 15%% of %.1f (got %.1f)" year med md)
         true
         (abs_float (md -. med) /. med < 0.15))
    Corpus.year_models

let test_modern_corpus_shape () =
  let configs = Corpus.modern_144 ~scale:1.0 () in
  Alcotest.(check int) "144 apps" 144 (List.length configs);
  let sink_counts =
    List.map (fun (c : G.config) -> List.length c.G.plants) configs
  in
  let avg = mean (List.map float_of_int sink_counts) in
  Alcotest.(check bool)
    (Printf.sprintf "avg sink calls ~21 (got %.1f)" avg)
    true
    (avg > 14.0 && avg < 28.0);
  Alcotest.(check bool) "outlier has 121 sinks" true
    (List.exists (fun (c : G.config) -> List.length c.G.plants = 121) configs)

let test_detection_corpus_groups () =
  let apps = Corpus.detection () in
  let count g =
    List.length (List.filter (fun (a : Corpus.detection_app) -> a.group = g) apps)
  in
  Alcotest.(check int) "7 ecb tps" 7 (count "ecb-tp");
  Alcotest.(check int) "15 plain ssl tps" 15 (count "ssl-tp");
  Alcotest.(check int) "2 subclassed ssl tps" 2 (count "ssl-tp-subclassed");
  Alcotest.(check int) "6 unregistered fps" 6 (count "ssl-fp-unregistered");
  Alcotest.(check int) "8 skipped-lib extras" 8 (count "extra-skipped-lib");
  Alcotest.(check int) "8 async-gap extras" 8 (count "extra-async-gap");
  Alcotest.(check int) "10 error extras" 10 (count "extra-error")

let test_rng_determinism () =
  let a = Appgen.Rng.create 42 and b = Appgen.Rng.create 42 in
  let xs = List.init 20 (fun _ -> Appgen.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Appgen.Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_rng_bounds () =
  let r = Appgen.Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Appgen.Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "out of bounds";
    let f = Appgen.Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done

let unit_cases =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_output;
    Alcotest.test_case "ground truth" `Quick test_ground_truth;
    Alcotest.test_case "size scaling" `Quick test_size_scales;
    Alcotest.test_case "components registered" `Quick test_components_registered;
    Alcotest.test_case "multidex equivalence" `Quick test_multidex_equivalent;
    Alcotest.test_case "yearly size models (Table I)" `Quick test_yearly_sizes;
    Alcotest.test_case "modern-144 corpus shape" `Quick test_modern_corpus_shape;
    Alcotest.test_case "detection corpus groups" `Quick test_detection_corpus_groups;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds ]

let suites = [ "appgen.unit", unit_cases ]
