(** Android app components as registered in AndroidManifest.xml. *)

type kind = Activity | Service | Receiver | Provider

type t = {
  cls : string;           (** implementing class, dotted notation *)
  kind : kind;
  exported : bool;
  actions : string list;  (** intent-filter action strings *)
}

let make ?(exported = false) ?(actions = []) ~kind cls =
  { cls; kind; exported; actions }

let kind_to_string = function
  | Activity -> "activity"
  | Service -> "service"
  | Receiver -> "receiver"
  | Provider -> "provider"

(** Framework superclass an app component of this kind must extend. *)
let framework_class = function
  | Activity -> "android.app.Activity"
  | Service -> "android.app.Service"
  | Receiver -> "android.content.BroadcastReceiver"
  | Provider -> "android.content.ContentProvider"
