(** DroidRA-style reflection resolution (the Sec. VII plan: "first resolve
    reflection parameters using our on-the-fly backtracking and then directly
    build caller edges").

    The transform scans every app method for constant
    [Class.forName] / [getMethod] / [Method.invoke] triples, resolves the
    target method, and rewrites the reflective invocation into a direct call.
    The app is then re-disassembled, so the ordinary initial sink search and
    caller searches see the de-reflected call sites. *)

open Ir
module Api = Framework.Api

(** Per-body constant tracking: which locals hold a resolved Class, and
    which hold a resolved (class, method-name) pair. *)
type tracking = {
  strings : (string, string) Hashtbl.t;  (** local id -> string constant *)
  classes : (string, string) Hashtbl.t;  (** local id -> class name *)
  methods : (string, string * string) Hashtbl.t;
      (** local id -> (class name, method name) *)
}

let resolve_target program cls name =
  match Program.find_class program cls with
  | None -> None
  | Some c ->
    List.find_opt
      (fun (m : Jmethod.t) ->
         String.equal m.msig.Jsig.name name && m.Jmethod.body <> None)
      c.Jclass.methods

(** Rewrite one body; returns the new body and the number of de-reflected
    invocations. *)
let transform_body program body =
  let t =
    { strings = Hashtbl.create 4; classes = Hashtbl.create 2;
      methods = Hashtbl.create 2 }
  in
  let rewrites = ref 0 in
  let rewrite_invoke (iv : Expr.invoke) =
    if Jsig.meth_equal iv.callee Api.method_invoke then
      match iv.base with
      | Some b ->
        (match Hashtbl.find_opt t.methods b.Value.id with
         | Some (cls, name) ->
           (match resolve_target program cls name with
            | Some target when target.Jmethod.access.Jmethod.is_static ->
              incr rewrites;
              Some
                { Expr.kind = Expr.Static; callee = target.Jmethod.msig;
                  base = None; args = [] }
            | Some _ | None -> None)
         | None -> None)
      | None -> None
    else None
  in
  let new_body =
    Array.map
      (fun stmt ->
         (* track the constants *)
         (match stmt with
          | Stmt.Assign (l, Expr.Imm (Value.Const (Value.Str_c s))) ->
            Hashtbl.replace t.strings l.Value.id s
          | Stmt.Assign (l, Expr.Invoke iv)
            when Jsig.meth_equal iv.Expr.callee Api.class_for_name -> begin
              match iv.Expr.args with
              | [ Value.Const (Value.Str_c s) ] ->
                Hashtbl.replace t.classes l.Value.id s
              | [ Value.Local a ] ->
                (match Hashtbl.find_opt t.strings a.Value.id with
                 | Some s -> Hashtbl.replace t.classes l.Value.id s
                 | None -> ())
              | _ -> ()
            end
          | Stmt.Assign (l, Expr.Imm (Value.Const (Value.Class_c c))) ->
            (* const-class literals resolve like forName *)
            Hashtbl.replace t.classes l.Value.id c
          | Stmt.Assign (l, Expr.Invoke iv)
            when Jsig.meth_equal iv.Expr.callee Api.class_get_method -> begin
              match iv.Expr.base, iv.Expr.args with
              | Some b, [ arg ] ->
                let name =
                  match arg with
                  | Value.Const (Value.Str_c s) -> Some s
                  | Value.Local a -> Hashtbl.find_opt t.strings a.Value.id
                  | Value.Const _ -> None
                in
                (match Hashtbl.find_opt t.classes b.Value.id, name with
                 | Some cls, Some n ->
                   Hashtbl.replace t.methods l.Value.id (cls, n)
                 | _, _ -> ())
              | _, _ -> ()
            end
          | _ -> ());
         (* rewrite reflective invokes *)
         match stmt with
         | Stmt.Invoke iv ->
           (match rewrite_invoke iv with
            | Some direct -> Stmt.Invoke direct
            | None -> stmt)
         | Stmt.Assign (l, Expr.Invoke iv) ->
           (match rewrite_invoke iv with
            | Some direct -> Stmt.Assign (l, Expr.Invoke direct)
            | None -> stmt)
         | _ -> stmt)
      body
  in
  new_body, !rewrites

(** De-reflect a whole program.  Returns the transformed program and the
    number of rewritten invocations (0 means the original program is
    returned unchanged). *)
let transform program =
  let total = ref 0 in
  let classes =
    Program.fold_classes program
      (fun c acc ->
         if c.Jclass.is_system then c :: acc
         else begin
           let methods =
             List.map
               (fun (m : Jmethod.t) ->
                  match m.Jmethod.body with
                  | None -> m
                  | Some body ->
                    let body', n = transform_body program body in
                    if n = 0 then m
                    else begin
                      total := !total + n;
                      { m with Jmethod.body = Some body' }
                    end)
               c.Jclass.methods
           in
           { c with Jclass.methods } :: acc
         end)
      []
  in
  if !total = 0 then program, 0 else Program.of_classes classes, !total
