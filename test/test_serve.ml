(* Tests for the resident analysis service (lib/serve): the wire codec
   round-trips, admission control bounds in-flight work, and — the load-
   bearing property — a served analysis is byte-identical to the one-shot
   pipeline whatever the serving path (fresh build, resident hit, snapshot
   reload after eviction, K concurrent clients sharing one engine, jobs=1
   or jobs=4).  Only the timing header and the cumulative [stats:] line
   may differ between serving paths, so comparisons filter those two. *)

module S = Serve.Server
module C = Serve.Client
module P = Serve.Protocol
module A = Serve.Appspec

let spec = { A.default with A.seed = 77; size_mb = 0.5 }
let spec2 = { A.default with A.seed = 78; size_mb = 0.5 }

(* The one-shot transcript for [spec], as `backdroid analyze` prints it. *)
let oneshot spec =
  match A.generate ~build_dex:true spec with
  | Result.Error e -> Alcotest.fail ("fixture: " ^ e)
  | Result.Ok app ->
    let r =
      Backdroid.Driver.analyze ~dex:app.Appgen.Generator.dex
        ~manifest:app.Appgen.Generator.manifest ()
    in
    Serve.Render.render ~app_name:(A.app_name spec) ~seconds:0.0 r

(* Drop the wall-clock header and the cumulative engine-stats line: both
   legitimately vary across serving paths (a replayed analysis does fewer
   searches); every report line must match byte-for-byte. *)
let report_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
      not (String.starts_with ~prefix:"analyzed " l)
      && not (String.starts_with ~prefix:"stats:" l))

let lines_t = Alcotest.(list string)

let tmp_name suffix =
  let f = Filename.temp_file "backdroid_serve" suffix in
  Sys.remove f;
  f

let with_server ?(jobs = 1) ?(max_resident = 4) f =
  let socket = tmp_name ".sock" in
  let cfg = { S.default_config with S.socket; jobs; max_resident } in
  match S.start cfg with
  | Result.Error e -> Alcotest.fail ("server start: " ^ e)
  | Result.Ok t ->
    Fun.protect ~finally:(fun () -> S.stop t; S.wait t) (fun () -> f ~socket t)

let call_ok conn req =
  match C.call conn req with
  | Result.Ok r -> r
  | Result.Error e -> Alcotest.fail ("call: " ^ e)

let analyze_text ?snapshot conn spec =
  match call_ok conn (P.Analyze { spec; snapshot; time_limit_ms = None }) with
  | P.Analyzed { text; cache; _ } -> (text, cache)
  | _ -> Alcotest.fail "expected Analyzed"

(* -- protocol codec -------------------------------------------------- *)

let requests =
  [ P.Analyze { spec; snapshot = None; time_limit_ms = None };
    P.Analyze
      { spec = { spec with A.plants = [ ("direct", "cipher") ]; insecure = true };
        snapshot = Some "/tmp/x.bdix";
        time_limit_ms = Some 125.5 };
    P.Query { spec; snapshot = None; kind = "class-use"; operand = "Lx/Y;" };
    P.Stats;
    P.Shutdown ]

let responses =
  [ P.Analyzed { text = "line1\nline2\n"; cache = P.Hit; wall_us = 42.5 };
    P.Analyzed { text = ""; cache = P.Delta; wall_us = 0.0 };
    P.Analyzed { text = "x"; cache = P.Miss; wall_us = 1e9 };
    P.Queried { total = 3; lines = [ "a:1: x"; "b:2: y" ]; wall_us = 7.0 };
    P.Stats_json "{\"jobs\":1}";
    P.Rejected P.Busy;
    P.Rejected P.Shutting_down;
    P.Shutdown_ok;
    P.Error "boom" ]

let test_codec_roundtrip () =
  List.iter
    (fun r ->
       match P.decode_request (P.encode_request r) with
       | Result.Ok r' ->
         Alcotest.(check bool) "request round-trips" true (r = r')
       | Result.Error e -> Alcotest.fail ("decode_request: " ^ e))
    requests;
  List.iter
    (fun r ->
       match P.decode_response (P.encode_response r) with
       | Result.Ok r' ->
         Alcotest.(check bool) "response round-trips" true (r = r')
       | Result.Error e -> Alcotest.fail ("decode_response: " ^ e))
    responses

let test_codec_rejects_garbage () =
  let bad s =
    match P.decode_request s with
    | Result.Ok _ -> Alcotest.fail "malformed payload decoded"
    | Result.Error _ -> ()
  in
  bad "";
  bad "\x01";                              (* version only *)
  bad "\x63\x01";                          (* wrong version *)
  bad "\x01\x63";                          (* unknown opcode *)
  (* truncated mid-field: a valid encoding with the tail cut off *)
  let whole = P.encode_request (List.nth requests 1) in
  bad (String.sub whole 0 (String.length whole - 3))

(* -- admission ------------------------------------------------------- *)

let test_admission_bounds () =
  let adm = Serve.Admission.create ~max_inflight:2 ~queue_timeout_ms:20.0 in
  Alcotest.(check bool) "slot 1" true (Serve.Admission.try_acquire adm);
  Alcotest.(check bool) "slot 2" true (Serve.Admission.try_acquire adm);
  Alcotest.(check int) "inflight" 2 (Serve.Admission.inflight adm);
  Alcotest.(check bool) "full" false (Serve.Admission.try_acquire adm);
  (* a timed acquire on a full gate must reject (and count it) *)
  Alcotest.(check bool) "queue timeout" false (Serve.Admission.acquire adm);
  Alcotest.(check int) "rejected" 1 (Serve.Admission.rejected adm);
  Serve.Admission.release adm;
  Alcotest.(check bool) "freed slot" true (Serve.Admission.acquire adm);
  Serve.Admission.release adm;
  Serve.Admission.release adm;
  Alcotest.(check int) "drained" 0 (Serve.Admission.inflight adm)

let test_admission_unblocks () =
  (* a waiter within the timeout gets the slot a concurrent release frees *)
  let adm = Serve.Admission.create ~max_inflight:1 ~queue_timeout_ms:2000.0 in
  Alcotest.(check bool) "taken" true (Serve.Admission.try_acquire adm);
  let releaser =
    Thread.create (fun () -> Thread.delay 0.05; Serve.Admission.release adm) ()
  in
  Alcotest.(check bool) "handed over" true (Serve.Admission.acquire adm);
  Thread.join releaser;
  Serve.Admission.release adm

(* -- end-to-end ------------------------------------------------------ *)

let test_served_identity () =
  let expected = report_lines (oneshot spec) in
  with_server @@ fun ~socket _ ->
  match
    C.with_conn ~socket (fun conn ->
        let miss_text, miss_cache = analyze_text conn spec in
        let hit_text, hit_cache = analyze_text conn spec in
        Result.Ok ((miss_text, miss_cache), (hit_text, hit_cache)))
  with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok ((miss_text, miss_cache), (hit_text, hit_cache)) ->
    Alcotest.(check bool) "first is a miss" true (miss_cache = P.Miss);
    Alcotest.(check bool) "second is a hit" true (hit_cache = P.Hit);
    Alcotest.check lines_t "cold served = one-shot" expected
      (report_lines miss_text);
    Alcotest.check lines_t "resident served = one-shot" expected
      (report_lines hit_text)

let test_query_and_stats () =
  with_server @@ fun ~socket _ ->
  match
    C.with_conn ~socket (fun conn ->
        let q =
          call_ok conn
            (P.Query
               { spec; snapshot = None; kind = "class-use";
                 operand = "Ljavax/crypto/Cipher;" })
        in
        let s = call_ok conn P.Stats in
        Result.Ok (q, s))
  with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok (q, s) ->
    (match q with
     | P.Queried { total; lines; _ } ->
       Alcotest.(check bool) "cipher use found" true (total >= 1);
       Alcotest.(check bool) "lines returned" true (lines <> [])
     | _ -> Alcotest.fail "expected Queried");
    (match s with
     | P.Stats_json j ->
       Alcotest.(check (option int)) "analyze counted" (Some 0)
         (Obs.Jsonf.field_int j "requests_analyze");
       Alcotest.(check (option int)) "query counted" (Some 1)
         (Obs.Jsonf.field_int j "requests_query")
     | _ -> Alcotest.fail "expected Stats_json")

(* K clients interleave analyze and query against one resident engine;
   every served transcript must equal the sequential one-shot, hot
   (pre-warmed cache) or cold (all K race the first miss), jobs=1 or
   jobs=4. *)
let concurrent_sharing ~jobs ~prewarm () =
  let expected = report_lines (oneshot spec) in
  with_server ~jobs @@ fun ~socket _ ->
  if prewarm then
    (match
       C.with_conn ~socket (fun conn -> Result.Ok (analyze_text conn spec))
     with
     | Result.Ok _ -> ()
     | Result.Error e -> Alcotest.fail ("prewarm: " ^ e));
  let k = 4 and per_client = 3 in
  let failures = Array.make k None in
  let worker t =
    match
      C.with_conn ~socket (fun conn ->
          for _ = 1 to per_client do
            let text, _cache = analyze_text conn spec in
            if report_lines text <> expected then
              failwith "served transcript diverged from one-shot";
            (match
               call_ok conn
                 (P.Query
                    { spec; snapshot = None; kind = "class-use";
                      operand = "Ljavax/crypto/Cipher;" })
             with
             | P.Queried { total; _ } ->
               if total < 1 then failwith "query lost hits under concurrency"
             | _ -> failwith "expected Queried")
          done;
          Result.Ok ())
    with
    | Result.Ok () -> ()
    | Result.Error e -> failures.(t) <- Some e
    | exception Failure e -> failures.(t) <- Some e
  in
  let threads = List.init k (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  Array.iter
    (function None -> () | Some e -> Alcotest.fail ("client: " ^ e))
    failures

let test_eviction_reload () =
  let expected = report_lines (oneshot spec) in
  let snap_a = tmp_name ".bdix" and snap_b = tmp_name ".bdix" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ snap_a; snap_b ])
  @@ fun () ->
  with_server ~max_resident:1 @@ fun ~socket _ ->
  match
    C.with_conn ~socket (fun conn ->
        let _, c1 = analyze_text ~snapshot:snap_a conn spec in
        (* a second key under max_resident=1 must evict the first *)
        let _, c2 = analyze_text ~snapshot:snap_b conn spec2 in
        let text, c3 = analyze_text ~snapshot:snap_a conn spec in
        let stats =
          match call_ok conn P.Stats with
          | P.Stats_json j -> j
          | _ -> Alcotest.fail "expected Stats_json"
        in
        Result.Ok (c1, c2, (text, c3), stats))
  with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok (c1, c2, (text, c3), stats) ->
    Alcotest.(check bool) "A cold" true (c1 = P.Miss);
    Alcotest.(check bool) "B evicts A" true (c2 = P.Miss);
    Alcotest.(check bool) "A reloads as a miss" true (c3 = P.Miss);
    Alcotest.(check bool) "snapshot A persisted" true (Sys.file_exists snap_a);
    Alcotest.check lines_t "A after eviction = one-shot" expected
      (report_lines text);
    Alcotest.(check (option int)) "one entry resident" (Some 1)
      (Obs.Jsonf.field_int stats "cache_entries");
    (match Obs.Jsonf.field_int stats "cache_evictions" with
     | Some n -> Alcotest.(check bool) "evictions happened" true (n >= 2)
     | None -> Alcotest.fail "no cache_evictions in stats")

let test_shutdown_unlinks_socket () =
  let socket = tmp_name ".sock" in
  let cfg = { S.default_config with S.socket } in
  match S.start cfg with
  | Result.Error e -> Alcotest.fail ("server start: " ^ e)
  | Result.Ok t ->
    Alcotest.(check bool) "socket bound" true (Sys.file_exists socket);
    (match
       C.with_conn ~socket (fun conn -> Result.Ok (call_ok conn P.Shutdown))
     with
     | Result.Ok P.Shutdown_ok -> ()
     | Result.Ok _ -> Alcotest.fail "expected Shutdown_ok"
     | Result.Error e -> Alcotest.fail ("shutdown: " ^ e));
    S.wait t;
    Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let test_live_socket_refused () =
  with_server @@ fun ~socket _ ->
  match S.start { S.default_config with S.socket } with
  | Result.Ok t2 ->
    S.stop t2; S.wait t2;
    Alcotest.fail "second daemon bound a live socket"
  | Result.Error e ->
    Alcotest.(check bool) "error names the live daemon" true
      (let lower = String.lowercase_ascii e in
       let has needle =
         let nl = String.length needle and ll = String.length lower in
         let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
         go 0
       in
       has "live" || has "already")

let test_stale_socket_reclaimed () =
  (* a socket file with no listener behind it (the previous daemon was
     SIGKILLed) must be reclaimed, not refused *)
  let socket = tmp_name ".sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.close fd;                      (* closed without listen/unlink: stale *)
  Alcotest.(check bool) "stale file present" true (Sys.file_exists socket);
  match S.start { S.default_config with S.socket } with
  | Result.Error e -> Alcotest.fail ("stale socket not reclaimed: " ^ e)
  | Result.Ok t ->
    S.stop t;
    S.wait t;
    Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let suites =
  [ ( "serve.protocol",
      [ Alcotest.test_case "codec round-trips" `Quick test_codec_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage ] );
    ( "serve.admission",
      [ Alcotest.test_case "bounds in-flight" `Quick test_admission_bounds;
        Alcotest.test_case "release unblocks waiter" `Quick
          test_admission_unblocks ] );
    ( "serve.daemon",
      [ Alcotest.test_case "served = one-shot (miss and hit)" `Quick
          test_served_identity;
        Alcotest.test_case "query and stats" `Quick test_query_and_stats;
        Alcotest.test_case "4 clients share one engine (hot, jobs=1)" `Quick
          (concurrent_sharing ~jobs:1 ~prewarm:true);
        Alcotest.test_case "4 clients share one engine (cold, jobs=1)" `Quick
          (concurrent_sharing ~jobs:1 ~prewarm:false);
        Alcotest.test_case "4 clients share one engine (hot, jobs=4)" `Quick
          (concurrent_sharing ~jobs:4 ~prewarm:true);
        Alcotest.test_case "4 clients share one engine (cold, jobs=4)" `Quick
          (concurrent_sharing ~jobs:4 ~prewarm:false);
        Alcotest.test_case "eviction reloads from snapshot" `Quick
          test_eviction_reload;
        Alcotest.test_case "shutdown unlinks the socket" `Quick
          test_shutdown_unlinks_socket;
        Alcotest.test_case "live socket refused" `Quick
          test_live_socket_refused;
        Alcotest.test_case "stale socket reclaimed" `Quick
          test_stale_socket_reclaimed ] ) ]
