examples/open_ports.mli:
