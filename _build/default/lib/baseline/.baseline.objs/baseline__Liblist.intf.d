lib/baseline/liblist.mli:
