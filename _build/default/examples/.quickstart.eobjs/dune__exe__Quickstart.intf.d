examples/quickstart.mli:
