(* Test runner: aggregates all suites. *)
let () =
  Alcotest.run "backdroid"
    (Test_sym.suites @ Test_ir.suites @ Test_dex.suites @ Test_search.suites
     @ Test_manifest.suites @ Test_appgen.suites @ Test_shapes.suites
     @ Test_baseline.suites @ Test_core_units.suites @ Test_eval.suites
     @ Test_robustness.suites @ Test_searches_deep.suites
     @ Test_resolver.suites @ Test_misc.suites @ Test_parallel.suites
     @ Test_obs.suites @ Test_flight.suites @ Test_store.suites
     @ Test_rules.suites @ Test_serve.suites)
