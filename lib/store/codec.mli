(** The snapshot container format: a versioned, checksummed single file of
    numbered sections, each either a flat int vector or a byte blob.

    Layout (all header fields little-endian):
    {v
      0 .. 7    magic "BDIXSNAP"
      8 .. 11   u32 format version
     12 .. 15   u32 section count
     16 .. 23   u64 total file length
     24 .. 31   u64 FNV-1a 64 checksum of everything after the header
     32 ..      directory: per section, 3 x u64 { id, offset, byte length }
      then      section payloads, each 8-byte aligned
    v}

    Int-vector payloads are native-endian machine words so a load can map
    them straight into {!Ivec.t}s with [Unix.map_file] — snapshots are
    per-host caches, not interchange files (a host with a different word
    order simply fails the structural checks and rebuilds cold).

    Loads validate in order: header present ([Truncated]), magic
    ([Bad_magic]), version ([Bad_version]), recorded vs actual file length
    ([Truncated]), checksum ([Bad_checksum]), then directory geometry
    ([Corrupt]).  Mapped sections are private (copy-on-write): consumers may
    rewrite mapped vectors — the symbol-id remap does — without touching the
    file. *)

type error =
  | Bad_magic
  | Bad_version of int  (** the version the file declares *)
  | Truncated
  | Bad_checksum
  | Corrupt of string   (** structurally invalid despite a good checksum *)

val error_to_string : error -> string

val magic : string
(** 8 bytes. *)

val format_version : int
(** Current (newest) version written by default.  v1 stored flat postings
    slot vectors and heap line texts; v2 stores {!Bytesearch.Postcodec}
    compressed postings runs and off-heap line texts.  The container layout
    is version-independent; readers accept any version in
    [[min_format_version, format_version]] and {!Snapshot.load} dispatches
    on {!version}. *)

val min_format_version : int
(** Oldest version still readable. *)

val header_len : int
(** 32. *)

val checksum_offset : int
(** Byte offset of the checksum field, for tests. *)

(** FNV-1a 64 over [len] bytes of [b] starting at [pos] (defaults: the
    whole buffer), folded a native-endian 64-bit word at a time (trailing
    bytes byte-wise) so the reader can verify it straight off the mmapped
    word view and checksumming never dominates a warm start.  Exposed so
    tests can re-seal a deliberately corrupted file and prove the
    structural checks catch what the checksum no longer does. *)
val fnv1a64 : ?pos:int -> ?len:int -> bytes -> int64

(* -- Writing --------------------------------------------------------- *)

type writer

val writer : unit -> writer

(** Append sections.  Ids must be distinct; order is preserved. *)
val add_ivec : writer -> id:int -> Ivec.t -> unit

val add_ints : writer -> id:int -> int array -> unit
val add_blob : writer -> id:int -> string -> unit

(** Write the container to [path] (atomically: a temp file renamed over the
    target) and return its size in bytes.  [version] (default
    {!format_version}) stamps the header — the legacy-format save path
    passes 1; anything outside the readable range raises
    [Invalid_argument]. *)
val write_file : ?version:int -> writer -> path:string -> int

(* -- Reading --------------------------------------------------------- *)

type reader

(** Open and fully validate [path]: header, checksum, directory.  The
    reader holds an open fd until {!close}. *)
val read_file : path:string -> (reader, error) result

(** Total file size in bytes. *)
val size : reader -> int

(** The format version the file declares (within the readable range, or
    {!read_file} would have failed with [Bad_version]). *)
val version : reader -> int

(** Does the file contain section [id]?  Probe for optional sections
    (older files simply lack them). *)
val mem : reader -> id:int -> bool

(** Map section [id] as an off-heap int vector (private mapping — writes
    are copy-on-write, never hitting the file).  Fails with [Corrupt] when
    the section is missing or its byte length is not a multiple of 8. *)
val map_ivec : reader -> id:int -> (Ivec.t, error) result

(** Read section [id] as a string. *)
val read_blob : reader -> id:int -> (string, error) result

(** Map section [id] as an off-heap byte vector — a no-copy view into the
    file's private (copy-on-write) mapping, valid after {!close}. *)
val map_bytes : reader -> id:int -> (Bvec.t, error) result

(** Close the fd.  Existing mappings stay valid. *)
val close : reader -> unit
