(** Shared JSON fragment helpers for the tree's hand-rolled writers (no json
    dependency).  All float rendering clamps non-finite values first —
    [Printf "%f"] prints [inf]/[nan], which is not valid JSON. *)

(** JSON string-escape (quotes, backslashes, control characters). *)
val escape : string -> string

(** [nan -> 0.], [±inf -> ±max_float], finite floats unchanged. *)
val clamp : float -> float

(** Finite-clamped float as a JSON number with [dec] decimals (default 1). *)
val number : ?dec:int -> float -> string

val str_field : string -> string -> string
val int_field : string -> int -> string
val num_field : ?dec:int -> string -> float -> string
