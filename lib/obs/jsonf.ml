(** Shared JSON fragment helpers for every hand-rolled writer in the tree
    (trace rings, Chrome traces, metrics snapshots, bench artifacts).

    The one rule that earns this module its existence: floats are clamped to
    finite values before rendering.  [Printf "%f"] happily prints [inf] and
    [nan], neither of which is valid JSON — a single non-finite elapsed time
    used to poison a whole trace file. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Clamp a float to a finite value: [nan -> 0.], [±inf -> ±max_float]. *)
let clamp f =
  if Float.is_nan f then 0.0
  else if f = Float.infinity then Float.max_float
  else if f = Float.neg_infinity then -.Float.max_float
  else f

(** Render a float as a JSON number with [dec] decimals (default 1),
    clamping non-finite inputs first. *)
let number ?(dec = 1) f = Printf.sprintf "%.*f" dec (clamp f)

(** ["key": "escaped value"] *)
let str_field k v = Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)

(** ["key": n] *)
let int_field k n = Printf.sprintf "\"%s\":%d" (escape k) n

(** ["key": x.y], clamped *)
let num_field ?dec k f =
  Printf.sprintf "\"%s\":%s" (escape k) (number ?dec f)
