(** Compressed postings runs: the v2 snapshot encoding of one key's
    strictly ascending slot list, decoded on demand by the engine's packed
    cursors instead of being materialised as an 8-byte-per-slot {!Ivec.t}.

    Wire format of one run:
    {v
      varint n                      (slot count; 0 = empty, nothing follows)
      u8 tag                        (0 = varint deltas, 1 = bitmap)
      tag 0: varint slots[0], then n-1 x varint (slots[i] - slots[i-1] - 1)
      tag 1: varint first, varint nwords, nwords x u64-le bitmap words
             (bit j of word w set = slot first + 64*w + j present)
    v}

    The bitmap form is chosen exactly when [8 * nwords <= n] — varint runs
    cost at least one byte per slot, so the choice never loses bytes, and
    it is a pure function of the run, so re-encoding a decoded snapshot is
    byte-identical (the save/load round-trip identity the store tests
    assert).  Varints are LEB128; a delta of [k] encodes a gap of [k + 1]
    (slots are strictly ascending), which makes max-gap runs cost ~9 bytes
    per slot and dense runs 1 byte per slot. *)

(** Append the run [get lo .. get (hi-1)] (strictly ascending) to [buf]. *)
val encode : Buffer.t -> get:(int -> int) -> lo:int -> hi:int -> unit

(** [encode_array buf a] is {!encode} over the whole array. *)
val encode_array : Buffer.t -> int array -> unit

(** Slot count of the run at [pos] — reads only the count header, O(1) in
    the run length.  The data must have been {!validate}d. *)
val count : Bvec.t -> pos:int -> int

(** Apply [f] to each slot of the run at [pos], in ascending order.
    Allocation-free; the data must have been {!validate}d. *)
val iter : Bvec.t -> pos:int -> (int -> unit) -> unit

(** Fully check the run occupying exactly [pos .. limit) — bounds, tag,
    varint well-formedness, slot range ([<= max_slot]), bitmap population —
    returning its slot count.  Every byte a later {!iter} touches is
    checked here, so the fast path can read unchecked. *)
val validate :
  Bvec.t -> pos:int -> limit:int -> max_slot:int -> (int * int, string) result
