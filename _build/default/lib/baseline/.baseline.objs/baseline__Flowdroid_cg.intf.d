lib/baseline/flowdroid_cg.mli: Ir Manifest
