type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let make n x =
  let v = create n in
  Bigarray.Array1.fill v x;
  v

let length (v : t) = Bigarray.Array1.dim v

let get (v : t) i = Bigarray.Array1.get v i
let set (v : t) i x = Bigarray.Array1.set v i x
let unsafe_get (v : t) i = Bigarray.Array1.unsafe_get v i

let of_array a =
  let n = Array.length a in
  let v = create n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done;
  v

let to_array v = Array.init (length v) (fun i -> unsafe_get v i)

let iteri f v =
  for i = 0 to length v - 1 do
    f i (unsafe_get v i)
  done

let equal a b =
  length a = length b
  &&
  let rec go i = i >= length a || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0

(* one element per 4 KiB page: an int element is 8 bytes *)
let words_per_page = 512

let prefault v =
  let n = length v in
  let acc = ref 0 in
  let i = ref 0 in
  while !i < n do
    acc := !acc lxor unsafe_get v !i;
    i := !i + words_per_page
  done;
  if n > 0 then acc := !acc lxor unsafe_get v (n - 1);
  !acc

let find_sorted v x =
  let rec bs lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let m = unsafe_get v mid in
      if m = x then mid else if m < x then bs (mid + 1) hi else bs lo mid
  in
  bs 0 (length v)
