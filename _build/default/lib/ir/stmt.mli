(** IR statements.  The paper's SSG only needs to handle three statement
    families — DefinitionStmt (our [Assign] and the store forms), InvokeStmt
    and ReturnStmt — but the IR also carries control flow ([If] / [Goto]) so
    that generated apps have realistic bodies. *)

type t =
    Assign of Value.local * Expr.t
  | Instance_put of Value.local * Jsig.field * Value.t
  | Static_put of Jsig.field * Value.t
  | Array_put of Value.local * Value.t * Value.t
  | Invoke of Expr.invoke
  | Return of Value.t option
  | If of Expr.binop * Value.t * Value.t * int
  | Goto of int
  | Throw of Value.t
  | Nop

(** The local defined by the statement, if any. *)
val def : t -> Value.local option

(** All values read by the statement. *)
val uses : t -> Value.t list

(** The invoke expression embedded in the statement, if any. *)
val invoke : t -> Expr.invoke option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
