lib/eval/runner.ml: Appgen Backdroid Baseline List Result Stats Unix
