(** The parsed AndroidManifest.xml model: package name plus registered
    components.  Components present in code but *not* listed here are
    deactivated — reaching one of their lifecycle handlers does not make a
    sink reachable (the source of several Amandroid false positives in
    Sec. VI-C). *)

type t = { package : string; components : Component.t list; }
val make : package:string -> components:Component.t list -> t
val find_component : t -> String.t -> Component.t option

(** Is [cls] a registered entry component? *)
val is_entry_class : t -> String.t -> bool
val components_matching_action : t -> string -> Component.t list
val entry_classes : t -> string list

(** All entry-point methods of the app: every lifecycle handler defined by a
    registered component class (looked up in [program], including inherited
    definitions are ignored — only handlers the app overrides count). *)
val entry_methods : t -> Ir.Program.t -> Ir.Jsig.meth list
