(** Exception-safe file output for artifact writers. *)

(** [with_file_out path f] opens [path] for writing, runs [f] on the
    channel, and closes the channel whether [f] returns or raises. *)
val with_file_out : string -> (out_channel -> 'a) -> 'a

(** [write_string path s] writes [s] (newline-terminated) to [path],
    closing the channel also on exception. *)
val write_string : string -> string -> unit
