(* Per-class table over a disassembled dexfile: for each class, its
   contiguous line range, its contiguous arena slot range, and two content
   hashes — the canonical FNV-1a-64 over its rendered lines (computed while
   the freshly-rendered texts are still in hand) and the structural
   {!Ir.Irhash} over its IR.  The delta snapshot path diffs a new build
   against an old snapshot on the IR hash (no rendering needed), then
   splices lines, arena slots and postings per class using the ranges. *)

type t = {
  names : string array;
  line_lo : int array;
  line_hi : int array;
  slot_lo : int array;
  slot_hi : int array;
  text_hash : int64 array;
  ir_hash : int64 array;
  index : (string, int) Hashtbl.t;
}

let length t = Array.length t.names

let build_index names =
  let index = Hashtbl.create (max 16 (Array.length names)) in
  Array.iteri (fun i n -> Hashtbl.replace index n i) names;
  index

let v ~names ~line_lo ~line_hi ~slot_lo ~slot_hi ~text_hash ~ir_hash =
  let n = Array.length names in
  if
    Array.length line_lo <> n || Array.length line_hi <> n
    || Array.length slot_lo <> n || Array.length slot_hi <> n
    || Array.length text_hash <> n || Array.length ir_hash <> n
  then invalid_arg "Classmap.v: column length mismatch";
  { names; line_lo; line_hi; slot_lo; slot_hi; text_hash; ir_hash;
    index = build_index names }

let empty =
  { names = [||]; line_lo = [||]; line_hi = [||]; slot_lo = [||];
    slot_hi = [||]; text_hash = [||]; ir_hash = [||];
    index = Hashtbl.create 1 }

let find t name = Hashtbl.find_opt t.index name

let ir_hash_of t name =
  match find t name with None -> None | Some i -> Some t.ir_hash.(i)

(* FNV-1a-64 over the class's rendered lines, each length-prefixed via
   {!Ir.Irhash.string} so line boundaries can't alias. *)
let text_hash_of_lines lines lo hi =
  let h = ref Ir.Irhash.offset_basis in
  for i = lo to hi - 1 do
    h := Ir.Irhash.string !h (lines.(i) : Disasm.line).text
  done;
  !h

let of_lines (lines : Disasm.line array) (arena : Arena.t) program =
  let names = ref [] and n = ref 0 in
  let line_lo = ref [] and line_hi = ref [] in
  let slot_lo = ref [] and slot_hi = ref [] in
  let text_h = ref [] and ir_h = ref [] in
  let n_lines = Array.length lines in
  let n_slots = Arena.length arena in
  let slot = ref 0 in
  let i = ref 0 in
  while !i < n_lines do
    match lines.(!i).Disasm.owner_cls with
    | None -> incr i
    | Some cls ->
      let lo = !i in
      while
        !i < n_lines && lines.(!i).Disasm.owner_cls = Some cls
      do
        incr i
      done;
      let hi = !i in
      (* arena slots are in line order: advance to this class's run *)
      while !slot < n_slots && Ivec.get arena.Arena.line_idx !slot < lo do
        incr slot
      done;
      let slo = !slot in
      while !slot < n_slots && Ivec.get arena.Arena.line_idx !slot < hi do
        incr slot
      done;
      let shi = !slot in
      let ih =
        match Ir.Program.find_class program cls with
        | Some c -> Ir.Irhash.jclass c
        | None -> 0L
      in
      names := cls :: !names;
      line_lo := lo :: !line_lo;
      line_hi := hi :: !line_hi;
      slot_lo := slo :: !slot_lo;
      slot_hi := shi :: !slot_hi;
      text_h := text_hash_of_lines lines lo hi :: !text_h;
      ir_h := ih :: !ir_h;
      incr n
  done;
  let arr l = Array.of_list (List.rev l) in
  let names = arr !names in
  { names;
    line_lo = arr !line_lo; line_hi = arr !line_hi;
    slot_lo = arr !slot_lo; slot_hi = arr !slot_hi;
    text_hash = arr !text_h; ir_hash = arr !ir_h;
    index = build_index names }
