lib/dex/descriptor.ml: Ir List Printf String
