(** Hash-consed interned symbols.  See the interface for the contract.

    Layout: ids are dense ints; the id → string store is a spine of chunks
    of doubling size (chunk [k] holds [first_chunk * 2^k] slots), each
    published with [Atomic.set] after its strings are written under the
    intern mutex.  Readers never lock: [Atomic.get] on the chunk pointer is
    the acquire that makes the string writes visible, so {!to_string} is
    safe from any domain that legitimately holds a symbol. *)

type t = int

let first_chunk_bits = 10
let first_chunk = 1 lsl first_chunk_bits (* 1024 *)
let spine_len = 32

(* chunk k covers ids [first_chunk * (2^k - 1), first_chunk * (2^(k+1) - 1)) *)
let spine : string array option Atomic.t array =
  Array.init spine_len (fun _ -> Atomic.make None)

let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 4096
let next = ref 0

(* Decompose an id into (chunk, offset).  Shifting the biased id into the
   first-chunk range makes the chunk index a log2. *)
let locate id =
  let biased = id + first_chunk in
  (* position of the highest set bit of [biased], minus first_chunk_bits *)
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  let chunk = log2 biased 0 - first_chunk_bits in
  let offset = biased - (first_chunk lsl chunk) in
  (chunk, offset)

let to_string id =
  let chunk, offset = locate id in
  match Atomic.get spine.(chunk) with
  | Some a -> Array.unsafe_get a offset
  | None -> invalid_arg "Sym.to_string: unknown symbol"

let intern s =
  Mutex.lock lock;
  match Hashtbl.find_opt table s with
  | Some id ->
    Mutex.unlock lock;
    id
  | None ->
    let id = !next in
    let chunk, offset = locate id in
    let arr =
      match Atomic.get spine.(chunk) with
      | Some a -> a
      | None ->
        let a = Array.make (first_chunk lsl chunk) "" in
        (* writes to [a] below race with nothing: the chunk is published
           (and hence readable) only via this Atomic.set *)
        Atomic.set spine.(chunk) (Some a);
        a
    in
    arr.(offset) <- s;
    (* republish so the slot write is ordered before any reader's acquire *)
    Atomic.set spine.(chunk) (Some arr);
    Hashtbl.replace table s id;
    incr next;
    Mutex.unlock lock;
    id

let find s =
  Mutex.lock lock;
  let r = Hashtbl.find_opt table s in
  Mutex.unlock lock;
  r

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (a : t) = a
let id (a : t) = a
let unsafe_of_id (i : int) : t = i

let interned () =
  Mutex.lock lock;
  let n = !next in
  Mutex.unlock lock;
  n

let dump () =
  Mutex.lock lock;
  let n = !next in
  Mutex.unlock lock;
  (* ids < n are fully published, so the copies need no lock *)
  Array.init n to_string

let memo (type a) ?(size = 256) ~(hash : a -> int) ~(equal : a -> a -> bool)
    (render : a -> string) =
  let module H = Hashtbl.Make (struct
    type t = a
    let hash = hash
    let equal = equal
  end) in
  let tbl = H.create size in
  let mlock = Mutex.create () in
  fun x ->
    Mutex.lock mlock;
    match H.find_opt tbl x with
    | Some s ->
      Mutex.unlock mlock;
      s
    | None ->
      let r =
        match render x with
        | s -> Ok (intern s)
        | exception e -> Error e
      in
      (match r with
       | Ok s ->
         H.replace tbl x s;
         Mutex.unlock mlock;
         s
       | Error e ->
         Mutex.unlock mlock;
         raise e)
