lib/appgen/rng.ml: Int64 List
