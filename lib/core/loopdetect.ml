(** Dead-method-loop detection (implementation enhancement 3, Sec. IV-F).

    Four loop types are distinguished in BackDroid's output: cross-method and
    inner loops, in both the backward-search and the forward-object-taint
    scenarios.  A loop is "detected" when the analysis is about to revisit a
    method already on its current path; the analysis then prunes instead of
    iterating forever. *)

type kind = Cross_backward | Inner_backward | Cross_forward | Inner_forward

let kind_to_string = function
  | Cross_backward -> "CrossBackward"
  | Inner_backward -> "InnerBackward"
  | Cross_forward -> "CrossForward"
  | Inner_forward -> "InnerForward"

type stats = {
  mutable cross_backward : int;
  mutable inner_backward : int;
  mutable cross_forward : int;
  mutable inner_forward : int;
}

let create () =
  { cross_backward = 0; inner_backward = 0; cross_forward = 0; inner_forward = 0 }

let record t = function
  | Cross_backward -> t.cross_backward <- t.cross_backward + 1
  | Inner_backward -> t.inner_backward <- t.inner_backward + 1
  | Cross_forward -> t.cross_forward <- t.cross_forward + 1
  | Inner_forward -> t.inner_forward <- t.inner_forward + 1

let total t = t.cross_backward + t.inner_backward + t.cross_forward + t.inner_forward

(** Add [src]'s counters into [dst] (merging domain-local statistics). *)
let add_into ~dst src =
  dst.cross_backward <- dst.cross_backward + src.cross_backward;
  dst.inner_backward <- dst.inner_backward + src.inner_backward;
  dst.cross_forward <- dst.cross_forward + src.cross_forward;
  dst.inner_forward <- dst.inner_forward + src.inner_forward

let get t = function
  | Cross_backward -> t.cross_backward
  | Inner_backward -> t.inner_backward
  | Cross_forward -> t.cross_forward
  | Inner_forward -> t.inner_forward

(** Is [m] already on [path]?  If so the caller should record the loop kind
    and prune. *)
let on_path path m = List.exists (Ir.Jsig.meth_equal m) path
