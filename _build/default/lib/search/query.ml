(** Typed bytecode-search commands.  Each constructor corresponds to one kind
    of raw text search BackDroid issues against the dexdump plaintext; the
    rendered command string is also the cache key. *)

type t =
  | Invocation of string
      (** dexdump method signature; matches [invoke-*] lines *)
  | New_instance of string  (** dexdump class descriptor *)
  | Const_class of string   (** dexdump class descriptor on [const-class] *)
  | Const_string of string  (** quoted string constant *)
  | Field_access of string  (** dexdump field signature; iget/iput/sget/sput *)
  | Static_field_access of string  (** sget/sput only *)
  | Class_use of string
      (** class descriptor anywhere in instruction lines of other classes *)
  | Raw of string           (** free-form substring *)

(** Granularity label used for the per-category cache statistics of
    Sec. IV-F. *)
type category =
  | Cat_caller      (** caller-method (invocation) searches *)
  | Cat_class       (** invoked-class searches *)
  | Cat_field       (** static / instance field searches *)
  | Cat_raw         (** everything else *)

let category = function
  | Invocation _ | New_instance _ -> Cat_caller
  | Const_class _ | Class_use _ -> Cat_class
  | Field_access _ | Static_field_access _ -> Cat_field
  | Const_string _ | Raw _ -> Cat_raw

let category_to_string = function
  | Cat_caller -> "caller"
  | Cat_class -> "class"
  | Cat_field -> "field"
  | Cat_raw -> "raw"

(** Raw command string, e.g. ["grep 'invoke-.*, Lcom/foo;.m:()V'"]. *)
let to_command = function
  | Invocation s -> Printf.sprintf "grep 'invoke-.*, %s'" s
  | New_instance s -> Printf.sprintf "grep 'new-instance .*, %s'" s
  | Const_class s -> Printf.sprintf "grep 'const-class .*, %s'" s
  | Const_string s -> Printf.sprintf "grep 'const-string .*, %S'" s
  | Field_access s -> Printf.sprintf "grep '[is]\\(get\\|put\\)-.*, %s'" s
  | Static_field_access s -> Printf.sprintf "grep 's\\(get\\|put\\)-.*, %s'" s
  | Class_use s -> Printf.sprintf "grep '%s'" s
  | Raw s -> Printf.sprintf "grep '%s'" s
