(** Forward constant and points-to propagation over the SSG (Sec. V-B).

    The traversal starts with the SSG's static track (off-path <clinit>
    methods populate the global static fact map), then interprets the main
    track from each entry method, descending into invoked app methods and
    following the SSG's asynchronous / ICC / lifecycle continuation edges,
    until the sink statement is executed and the fact of its tracked
    parameter is captured. *)

open Ir
module Sinks = Framework.Sinks

type config = { max_depth : int; max_steps : int }

let default_config = { max_depth = 24; max_steps = 100_000 }

type ctx = {
  program : Program.t;
  ssg : Ssg.t;
  statics : (string, Facts.t) Hashtbl.t;  (** global static-field fact map *)
  cfg : config;
  mutable steps : int;
  mutable sink_fact : Facts.t option;
}

let lookup env id = Option.value ~default:Facts.Unknown (Hashtbl.find_opt env id)

let value_fact env = function
  | Value.Local l -> lookup env l.Value.id
  | Value.Const (Value.Str_c s) -> Facts.Const_str s
  | Value.Const (Value.Int_c i) -> Facts.Const_int i
  | Value.Const Value.Null -> Facts.Unknown
  | Value.Const (Value.Long_c i) -> Facts.Const_int (Int64.to_int i)
  | Value.Const (Value.Float_c _ | Value.Double_c _) -> Facts.Unknown
  | Value.Const (Value.Class_c c) -> Facts.Const_str c

let field_member_key f = Jsig.field_to_string f

let is_system_class ctx cls =
  match Program.find_class ctx.program cls with
  | Some c -> c.Jclass.is_system
  | None -> true

(** Interpret one method.  Returns (return fact, final local environment).
    [visited] is the stack of methods being interpreted, bounding recursion
    and cutting call cycles. *)
let rec eval_method ctx ~visited ~(meth : Jsig.meth) ~this_fact ~arg_facts =
  match Program.find_method ctx.program meth with
  | None | Some { Jmethod.body = None; _ } -> Facts.Unknown, Hashtbl.create 1
  | Some m ->
    let body = Option.get m.Jmethod.body in
    let env = Hashtbl.create 16 in
    let ret = ref Facts.Unknown in
    let n = Array.length body in
    let i = ref 0 in
    while !i < n do
      ctx.steps <- ctx.steps + 1;
      if ctx.steps > ctx.cfg.max_steps then i := n
      else begin
        let stmt = body.(!i) in
        (* capture the sink parameter when executing the sink statement *)
        if
          Jsig.meth_equal meth ctx.ssg.Ssg.sink_meth
          && !i = ctx.ssg.Ssg.sink_site
        then begin
          match Stmt.invoke stmt with
          | Some iv ->
            (match
               List.nth_opt iv.Expr.args
                 ctx.ssg.Ssg.sink.Sinks.param_index
             with
             | Some v ->
               if ctx.sink_fact = None then ctx.sink_fact <- Some (value_fact env v)
             | None -> ())
          | None -> ()
        end;
        (match stmt with
         | Stmt.Assign (l, e) ->
           Hashtbl.replace env l.Value.id
             (eval_expr ctx ~visited ~env ~this_fact ~arg_facts e)
         | Stmt.Instance_put (o, f, v) ->
           (match lookup env o.Value.id with
            | Facts.New_obj obj ->
              Hashtbl.replace obj.members (field_member_key f) (value_fact env v)
            | _ -> ())
         | Stmt.Static_put (f, v) ->
           Hashtbl.replace ctx.statics (Jsig.field_to_string f) (value_fact env v)
         | Stmt.Array_put (a, idx, v) ->
           (match lookup env a.Value.id, value_fact env idx with
            | Facts.Arr arr, Facts.Const_int k ->
              Hashtbl.replace arr.cells k (value_fact env v)
            | _, _ -> ())
         | Stmt.Invoke iv ->
           ignore (eval_invoke ctx ~visited ~env iv)
         | Stmt.Return v ->
           (match v with
            | Some v -> ret := value_fact env v
            | None -> ());
           i := n
         | Stmt.If _ | Stmt.Goto _ ->
           (* fall through: generated bodies are effectively straight-line *)
           ()
         | Stmt.Throw _ -> i := n
         | Stmt.Nop -> ());
        incr i
      end
    done;
    (* follow the SSG continuation edges out of this frame (async callees,
       ICC handlers, lifecycle successors) with this frame's environment —
       they may hang off any method on the path, not just the entry *)
    follow_continuations ctx ~visited ~meth ~env ~this_fact;
    !ret, env

and eval_expr ctx ~visited ~env ~this_fact ~arg_facts (e : Expr.t) =
  match e with
  | Expr.Imm v -> value_fact env v
  | Expr.Binop (op, a, b) -> Api_model.binop op (value_fact env a) (value_fact env b)
  | Expr.Cast (_, v) -> value_fact env v
  | Expr.New c -> Facts.new_obj c
  | Expr.New_array (t, _) -> Facts.new_arr t
  | Expr.Array_get (a, idx) ->
    (match lookup env a.Value.id, value_fact env idx with
     | Facts.Arr arr, Facts.Const_int k ->
       Option.value ~default:Facts.Unknown (Hashtbl.find_opt arr.cells k)
     | _, _ -> Facts.Unknown)
  | Expr.Instance_get (o, f) ->
    (match lookup env o.Value.id with
     | Facts.New_obj obj ->
       Option.value ~default:Facts.Unknown
         (Hashtbl.find_opt obj.members (field_member_key f))
     | _ -> Facts.Unknown)
  | Expr.Static_get f ->
    (match Hashtbl.find_opt ctx.statics (Jsig.field_to_string f) with
     | Some fact -> fact
     | None -> Facts.Static_ref f)
  | Expr.Phi ls ->
    List.fold_left
      (fun acc l -> Facts.join acc (lookup env l.Value.id))
      Facts.Unknown ls
  | Expr.Param i ->
    (match List.nth_opt arg_facts i with
     | Some f -> f
     | None -> Facts.Framework_input)
  | Expr.This -> this_fact
  | Expr.Caught_exception -> Facts.Unknown
  | Expr.Length v ->
    (match value_fact env v with
     | Facts.Arr a -> Facts.Const_int (Hashtbl.length a.cells)
     | _ -> Facts.Unknown)
  | Expr.Invoke iv -> eval_invoke ctx ~visited ~env iv

and eval_invoke ctx ~visited ~env (iv : Expr.invoke) =
  let recv = Option.map (fun b -> lookup env b.Value.id) iv.base in
  let args = List.map (value_fact env) iv.args in
  match Api_model.eval iv.callee recv args with
  | Some f -> f
  | None ->
    if is_system_class ctx iv.callee.Jsig.cls then
      (* unmodelled framework API *)
      Facts.Unknown
    else if List.length visited >= ctx.cfg.max_depth then Facts.Unknown
    else if List.exists (Jsig.meth_equal iv.callee) visited then Facts.Unknown
    else begin
      (* resolve the invoked body: direct hit or CHA walk up for calls
         through a supertype signature *)
      let target =
        match Program.find_method ctx.program iv.callee with
        | Some { Jmethod.body = Some _; _ } -> Some iv.callee
        | Some _ | None ->
          (* a call through an interface / supertype: use the points-to class
             of the receiver to pick the override *)
          (match recv with
           | Some (Facts.New_obj o) ->
             (match
                Program.resolve_method ctx.program o.Facts.cls
                  (Jsig.sub_signature iv.callee)
              with
              | Some (_, m) when m.Jmethod.body <> None -> Some m.Jmethod.msig
              | Some _ | None -> None)
           | _ -> None)
      in
      match target with
      | None -> Facts.Unknown
      | Some callee ->
        let this_fact = Option.value ~default:Facts.Unknown recv in
        let ret, _ =
          eval_method ctx ~visited:(callee :: visited) ~meth:callee ~this_fact
            ~arg_facts:args
        in
        ret
    end

(** Follow the SSG continuation edges out of a frame: asynchronous callees
    run with the constructor object as [this]; ICC handlers run with the
    Intent built at the ICC site; lifecycle successors share the same
    component instance. *)
and follow_continuations ctx ~visited ~meth ~env ~this_fact =
  List.iter
    (fun edge ->
       match edge with
       | Ssg.Async { ctor_local; callee; _ } ->
         let this' = lookup env ctor_local in
         if not (List.exists (Jsig.meth_equal callee) visited) then
           ignore
             (eval_method ctx ~visited:(callee :: visited) ~meth:callee
                ~this_fact:this' ~arg_facts:[])
       | Ssg.Icc { caller; site; handler } when Jsig.meth_equal caller meth ->
         let intent_fact =
           match Program.find_method ctx.program caller with
           | Some { Jmethod.body = Some body; _ } when site < Array.length body ->
             (match Stmt.invoke body.(site) with
              | Some icc_iv ->
                (match icc_iv.Expr.args with
                 | [ Value.Local l ] -> lookup env l.Value.id
                 | _ -> Facts.Unknown)
              | None -> Facts.Unknown)
           | _ -> Facts.Unknown
         in
         let handler_args =
           match Program.find_method ctx.program handler with
           | Some hm ->
             List.map
               (fun ty ->
                  if Types.equal ty Types.intent then intent_fact
                  else Facts.Framework_input)
               hm.Jmethod.msig.Jsig.params
           | None -> []
         in
         if not (List.exists (Jsig.meth_equal handler) visited) then
           ignore
             (eval_method ctx ~visited:(handler :: visited) ~meth:handler
                ~this_fact:(Facts.new_obj handler.Jsig.cls)
                ~arg_facts:handler_args)
       | Ssg.Lifecycle { handler; _ } ->
         (* the successor handler runs on the same component instance *)
         if not (List.exists (Jsig.meth_equal handler) visited) then
           ignore
             (eval_method ctx ~visited:(handler :: visited) ~meth:handler
                ~this_fact ~arg_facts:[])
       | Ssg.Icc _ | Ssg.Call _ | Ssg.Contained _ -> ())
    (Ssg.continuations_of ctx.ssg meth)

(* ------------------------------------------------------------------ *)
(* SSG traversal                                                       *)

let eval_and_continue ctx ~visited ~meth ~this_fact ~arg_facts =
  ignore (eval_method ctx ~visited ~meth ~this_fact ~arg_facts)

(** Run the forward analysis over one SSG.  Returns the dataflow fact of the
    sink's tracked parameter (Unknown when the traversal cannot resolve
    it). *)
let m_steps = Obs.Metrics.counter "forward.steps"

let run ?(cfg = default_config) program (ssg : Ssg.t) =
  Obs.Span.with_span ~cat:"forward" ~name:"propagate" @@ fun () ->
  let ctx =
    { program; ssg; statics = Hashtbl.create 16; cfg; steps = 0;
      sink_fact = None }
  in
  (* 1. the special static-field track *)
  List.iter
    (fun clinit ->
       ignore
         (eval_method ctx ~visited:[ clinit ] ~meth:clinit
            ~this_fact:Facts.Unknown ~arg_facts:[]))
    ssg.Ssg.static_track;
  (* 2. the main track, from each entry method (lifecycle successors are
     reached through their predecessor's continuation edge, so skip entries
     that appear as a Lifecycle handler target) *)
  let lifecycle_targets =
    List.filter_map
      (function Ssg.Lifecycle { handler; _ } -> Some handler | _ -> None)
      ssg.Ssg.edges
  in
  List.iter
    (fun entry ->
       if ctx.sink_fact = None
          && not (List.exists (Jsig.meth_equal entry) lifecycle_targets)
       then
         eval_and_continue ctx ~visited:[ entry ] ~meth:entry
           ~this_fact:(Facts.new_obj entry.Jsig.cls) ~arg_facts:[])
    ssg.Ssg.entry_methods;
  Obs.Metrics.add m_steps ctx.steps;
  Option.value ~default:Facts.Unknown ctx.sink_fact
