(** The BackDroid driver: the four-step pipeline of Fig. 2.

    1. the app is already preprocessed (IR + disassembled dexdump plaintext);
    2. the initial bytecode search locates the target sink API calls;
    3. backward slicing with on-the-fly bytecode search builds one SSG per
       sink call;
    4. forward constant / points-to propagation over each SSG produces the
       complete dataflow representation of the sink parameters, which the
       rule predicates turn into verdicts.

    Detection is driven by a declarative rule set ({!Rules.Rule.t}).  Rules
    are grouped by shared sink signature before the initial search, so a
    multi-rule run pays one bytecode search and one slicing/SSG backtracking
    pass per distinct sink spec and fans the verdicts out per rule — the
    slicer pass count scales with sink groups, not with rule count.

    The driver owns the cross-sink caches (search-command cache inside the
    engine; sink-API-call reachability cache) and the loop-detection
    statistics of Sec. IV-F. *)

open Ir
module Sinks = Framework.Sinks
module Classmap = Dex.Classmap

type config = {
  rules : Rules.Rule.t list;
      (** the active detection rules; default {!Rules.Builtin.primary}
          (the paper's ECB + SSL misuse classes) *)
  subclass_aware_initial_search : bool;
      (** also search sink invocations through app subclasses of the sink
          class — the fix for the two FNs of Sec. VI-C (off by default to
          reproduce the paper's behaviour; flip for the ablation) *)
  resolve_reflection : bool;
      (** de-reflect constant Class.forName/getMethod/invoke triples before
          the analysis (the Sec. VII extension; off by default) *)
  indexed_search : bool;
      (** search via per-category postings (default); off = grep-style full
          scans per query, like the paper's prototype *)
  eager_index : bool;
      (** build all postings categories at engine construction (sharded over
          the pool) instead of lazily on first query of each category; kept
          for the ablation benchmark *)
  jobs : int;
      (** per-sink parallelism: sink call sites are grouped by containing
          method and the groups analysed on a domain pool of this size
          (1 = sequential).  Findings and statistics are identical for any
          [jobs] value *)
  budget : Context.budget;
      (** per-sink slicing budget (work/depth caps + optional wall-clock
          deadline); exhaustion surfaces as a [Partial] outcome in the
          report *)
  trace : Trace.sink;
      (** receives one structured event per caller resolution; the default
          forwards to [Log.debug] *)
  forward : Forward.config;
}

let default_config =
  { rules = Rules.Builtin.primary;
    subclass_aware_initial_search = false;
    resolve_reflection = false;
    indexed_search = true;
    eager_index = false;
    jobs = 1;
    budget = Context.default_budget;
    trace = Trace.log_sink;
    forward = Forward.default_config }

type sink_report = {
  rule : Rules.Rule.t;      (** the rule this verdict belongs to *)
  sink : Sinks.t;
  meth : Jsig.meth;         (** method containing the sink call *)
  site : int;
  reachable : bool;
  fact : Facts.t;
  verdict : Detectors.verdict;
  ssg : Ssg.t option;       (** absent when served from the sink cache *)
  outcome : Context.outcome;
      (** [Partial _] when the slice exhausted its budget ([Complete] for
          cache-served reports: no slicing ran) *)
  prov : Provenance.t;
      (** how this verdict was derived: fresh slice (with strategy chain,
          query counts, budget spent), result-cache replay, or sink-cache
          shortcut *)
}

type stats = {
  sink_calls : int;
      (** distinct sink call sites — one backtracking pass each, however
          many rules share the site's sink spec *)
  searches_total : int;
  searches_cached : int;
  search_cache_rate : float;
  sink_cache_lookups : int;
  sink_cache_hits : int;
  loops : Loopdetect.stats;
  ssg_nodes : int;
  ssg_edges : int;
  partial_sinks : int;
      (** sink slices that exhausted their budget (typed [Partial]) *)
  replayed_sinks : int;
      (** sink call sites served from a persisted result cache (no slicing
          ran); 0 unless [analyze] was given [results] *)
  index_categories_built : int;
      (** postings categories the engine built (0-7); lazy mode builds only
          the categories the analysis actually queried *)
  resolutions : int;
      (** caller resolutions taken by fresh slices (all strategies) *)
  resolved_callers : int;
      (** callers those resolutions produced *)
  work_spent : int;
      (** work items spent by fresh slices (sum over sinks) *)
}

type result = {
  reports : sink_report list;
  stats : stats;
}

(** A detected issue: an insecure, entry-reachable sink call. *)
let insecure_reports r =
  List.filter (fun rep -> rep.reachable && rep.verdict = Detectors.Insecure)
    r.reports

(** Merge all per-sink SSGs of a result into the per-app SSG (Sec. V-A's
    future-work structure).  A shared SSG (one slice, several rules) is
    folded once. *)
let per_app_ssg r =
  let seen = Hashtbl.create 16 in
  let ssgs =
    List.filter_map
      (fun rep ->
         match rep.ssg with
         | Some ssg when not (Hashtbl.mem seen (Obj.repr ssg)) ->
           Hashtbl.replace seen (Obj.repr ssg) ();
           Some ssg
         | Some _ | None -> None)
      r.reports
  in
  Perapp_ssg.merge ssgs

(* ------------------------------------------------------------------ *)

(* One shared backtracking unit: a distinct sink spec (signature +
   argument-of-interest) plus every rule that targets it.  Built once per
   config; order follows first rule mention, so the default set searches in
   the same order the hard-coded sink list used to. *)
type sink_group = {
  sg_sink : Sinks.t;
  sg_rules : Rules.Rule.t list;
}

let sink_groups rules =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Rules.Rule.t) ->
       List.iter
         (fun (s : Sinks.t) ->
            let key = (Sym.id (Jsig.meth_sym s.Sinks.msig), s.Sinks.param_index) in
            match Hashtbl.find_opt tbl key with
            | Some (_, cell) -> cell := r :: !cell
            | None ->
              let cell = ref [ r ] in
              Hashtbl.replace tbl key (s, cell);
              order := key :: !order)
         r.Rules.Rule.sinks)
    rules;
  List.rev_map
    (fun key ->
       let s, cell = Hashtbl.find tbl key in
       { sg_sink = s; sg_rules = List.rev !cell })
    !order

(** Step 2: initial bytecode search for the sink API invocations of every
    rule's sink specs — one search per distinct spec, shared across rules.
    With [subclass_aware_initial_search], invocations through app subclasses
    of the sink class are found as well (each resolves to the same framework
    method, like the DefaultSSLSocketFactory case of Sec. VI-C). *)
let initial_group_search ~cfg engine =
  let program = Bytesearch.Engine.program engine in
  let occ = ref [] in
  let seen = Hashtbl.create 16 in
  let search (sg : sink_group) (msig : Jsig.meth) =
    let hits =
      Bytesearch.Engine.run engine
        (Bytesearch.Query.invocation_sym (Sigformat.to_dex_meth_sym msig))
    in
    List.iter
      (fun (h : Bytesearch.Engine.hit) ->
         match h.stmt_idx with
         | Some idx ->
           let key = (Sym.id (Jsig.meth_sym h.owner), idx) in
           if not (Hashtbl.mem seen key) then begin
             Hashtbl.replace seen key ();
             occ := (sg, h.owner, idx) :: !occ
           end
         | None -> ())
      hits
  in
  List.iter
    (fun (sg : sink_group) ->
       let sink = sg.sg_sink in
       search sg sink.Sinks.msig;
       if cfg.subclass_aware_initial_search then
         List.iter
           (fun sub ->
              match Program.find_class program sub with
              | Some c when not c.Jclass.is_system ->
                search sg { sink.Sinks.msig with Jsig.cls = sub }
              | Some _ | None -> ())
           (Program.subclasses_transitive program sink.Sinks.msig.Jsig.cls))
    (sink_groups cfg.rules);
  List.rev !occ

(** Sink-centric view of {!initial_group_search} (one entry per distinct
    sink call site). *)
let initial_sink_search ~cfg engine =
  List.map (fun (sg, meth, idx) -> (sg.sg_sink, meth, idx))
    (initial_group_search ~cfg engine)

(* The unit of per-sink parallelism: all sink call sites sharing one
   containing method.  The sink-API-call cache of Sec. IV-F is keyed by the
   containing method, so all its lookups for a group stay inside the group —
   the method-reachability memo, the loop counters and the SSG size counters
   are likewise group-local, and the merged statistics are identical no
   matter how the groups are scheduled. *)
type group_out = {
  g_reports : ((int * int) * sink_report) list;
      (* (occurrence index, rule index): reports sort occurrence-major *)
  g_loops : Loopdetect.stats;
  g_sink_lookups : int;
  g_sink_hits : int;
  g_ssg_nodes : int;
  g_ssg_edges : int;
  g_partial : int;
  g_replayed : int;
  g_resolutions : int;
  g_callers : int;
  g_work : int;
}

(* Group occurrences by containing method, preserving first-occurrence order
   across groups and occurrence order within each group. *)
let group_by_method occurrences =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i ((_, meth, _) as occ) ->
       let key = Sym.id (Jsig.meth_sym meth) in
       match Hashtbl.find_opt tbl key with
       | Some cell -> cell := (i, occ) :: !cell
       | None ->
         let cell = ref [ (i, occ) ] in
         Hashtbl.replace tbl key cell;
         order := key :: !order)
    occurrences;
  List.rev_map (fun key -> List.rev !(Hashtbl.find tbl key)) !order

let m_sink_calls = Obs.Metrics.counter "driver.sink_calls"
let m_ssg_nodes = Obs.Metrics.counter "driver.ssg_nodes"
let m_ssg_edges = Obs.Metrics.counter "driver.ssg_edges"
let m_sink_cache_lookups = Obs.Metrics.counter "driver.sink_cache.lookups"
let m_sink_cache_hits = Obs.Metrics.counter "driver.sink_cache.hits"

let analyze_group ~cfg ~engine ~manifest ?replay group =
  Obs.Span.with_span ~cat:"analyze" ~name:"sink-group"
    ~attrs:[ ("sites", Obs.Span.Int (List.length group)) ]
  @@ fun () ->
  let shared = Context.shared ~trace:cfg.trace ~engine ~manifest () in
  let program = shared.Context.program in
  (* the group's slot in the sink-API-call cache (one key per group) *)
  let known_reachable = ref None in
  let sink_cache_lookups = ref 0 and sink_cache_hits = ref 0 in
  let ssg_nodes = ref 0 and ssg_edges = ref 0 in
  let partial = ref 0 in
  let replayed = ref 0 in
  let resolutions = ref 0 and callers = ref 0 and work = ref 0 in
  let reports =
    List.concat_map
      (fun (i, ((sg : sink_group), meth, site)) ->
         let sink = sg.sg_sink in
         (* one verdict per rule sharing this sink spec; every verdict of
            the fan-out shares the site's one derivation ledger *)
         let fan_out ~reachable ~fact ~ssg ~outcome ~prov =
           List.mapi
             (fun j rule ->
                let verdict =
                  if reachable then Detectors.classify_rule program rule fact
                  else Detectors.Unresolved
                in
                ( (i, j),
                  { rule; sink; meth; site; reachable; fact; verdict; ssg;
                    outcome; prov } ))
             sg.sg_rules
         in
         (* persisted-result replay: serve the cached fact when the site's
            whole slice footprint is provably unaffected by the changes
            since the cache was produced; the verdicts are still computed
            fresh per rule, so a rule-set change replays correctly *)
         let replayed_entry =
           match replay with
           | None -> None
           | Some pl ->
             Resultcache.lookup pl
               ~sink_msig:(Jsig.meth_to_string sink.Sinks.msig)
               ~param_index:sink.Sinks.param_index
               ~meth:(Jsig.meth_to_string meth) ~site
         in
         match replayed_entry with
         | Some e ->
           incr replayed;
           (* reachability of this containing method is now known, so
              later sink sites in the group shortcut exactly as they
              would after a real slice *)
           known_reachable := Some e.Resultcache.e_reachable;
           Log.info (fun m ->
               m "replaying cached result for %s sink at %s:%d"
                 sink.Sinks.name (Jsig.meth_to_string meth) site);
           fan_out ~reachable:e.Resultcache.e_reachable
             ~fact:e.Resultcache.e_fact ~ssg:None ~outcome:Context.Complete
             ~prov:(Provenance.replayed ~budget:cfg.budget)
         | None ->
         incr sink_cache_lookups;
         match !known_reachable with
         | Some false ->
           (* Sec. IV-F: this method is known unreachable; skip re-analysis *)
           incr sink_cache_hits;
           fan_out ~reachable:false ~fact:Facts.Unknown ~ssg:None
             ~outcome:Context.Complete
             ~prov:(Provenance.sink_cache_served ~budget:cfg.budget)
         | Some true | None ->
           if !known_reachable <> None then incr sink_cache_hits;
           Log.info (fun m ->
               m "backtracking %s sink at %s:%d" sink.Sinks.name
                 (Jsig.meth_to_string meth) site);
           let ssg, outcome, prov =
             Slicer.slice_full ~shared ~budget:cfg.budget ~sink
               ~sink_meth:meth ~sink_site:site ()
           in
           List.iter
             (fun (_, r, c) ->
                resolutions := !resolutions + r;
                callers := !callers + c)
             prov.Provenance.p_strategies;
           work := !work + prov.Provenance.p_work;
           (match outcome with
            | Context.Partial _ ->
              incr partial;
              Log.warn (fun m ->
                  m "sink at %s:%d: budget exhausted (%s)"
                    (Jsig.meth_to_string meth) site
                    (Context.outcome_to_string outcome))
            | Context.Complete -> ());
           known_reachable := Some ssg.Ssg.reachable;
           ssg_nodes := !ssg_nodes + Ssg.node_count ssg;
           ssg_edges := !ssg_edges + Ssg.edge_count ssg;
           let fact =
             if ssg.Ssg.reachable then Forward.run ~cfg:cfg.forward program ssg
             else Facts.Unknown
           in
           Log.info (fun m ->
               m "sink at %s:%d: reachable=%b fact=%s (%d rule(s))"
                 (Jsig.meth_to_string meth) site ssg.Ssg.reachable
                 (Facts.to_string fact) (List.length sg.sg_rules));
           fan_out ~reachable:ssg.Ssg.reachable ~fact ~ssg:(Some ssg)
             ~outcome ~prov)
      group
  in
  { g_reports = reports; g_loops = shared.Context.loops;
    g_sink_lookups = !sink_cache_lookups; g_sink_hits = !sink_cache_hits;
    g_ssg_nodes = !ssg_nodes; g_ssg_edges = !ssg_edges;
    g_partial = !partial; g_replayed = !replayed;
    g_resolutions = !resolutions; g_callers = !callers; g_work = !work }

(* ------------------------------------------------------------------ *)
(* Request-scoped analysis: a [session] captures everything that can be
   resolved once and shared across repeated runs against the same app —
   the engine (snapshot warm start or cold build), the worker pool, and
   the persisted-result replay plan (one classmap diff, not one per
   request).  [run_session] then only pays the per-request work: initial
   search, per-sink-group fan-out, statistics merge.  A session is safe
   to run from several threads at once: the engine's caches are
   thread-safe, the replay plan is read-only, and all other run state is
   per-call. *)

type session = {
  s_cfg : config;
  s_pool : Parallel.Pool.t;
  s_owns_pool : bool;
  s_engine : Bytesearch.Engine.t;
  s_manifest : Manifest.App_manifest.t;
  s_replay : Resultcache.plan option;
}

let open_session ?(cfg = default_config) ?pool ?engine ?results
    ~(dex : Dex.Dexfile.t) ~(manifest : Manifest.App_manifest.t) () =
  let pool, owns_pool =
    match pool with
    | Some p -> (p, false)
    | None -> (Parallel.Pool.create ~jobs:cfg.jobs, true)
  in
  try
    let premade = ref engine in
    let dex =
      match engine with
      | Some e -> Bytesearch.Engine.dexfile e
      | None -> dex
    in
    let dex =
      if cfg.resolve_reflection then
        Obs.Span.with_span ~cat:"app" ~name:"reflection" (fun () ->
            let program', rewrites =
              Reflection.transform dex.Dex.Dexfile.program
            in
            if rewrites = 0 then dex
            else begin
              (match !premade with
               | Some _ ->
                 Log.warn (fun m ->
                     m "reflection rewrote %d sites; discarding preloaded \
                        index, rebuilding cold" rewrites);
                 Obs.Flight.anomaly ~kind:"snapshot"
                   ~name:"reflection-discarded-index"
                   ~attrs:[ ("rewrites", Obs.Span.Int rewrites) ] ();
                 premade := None
               | None -> ());
              Dex.Dexfile.of_program program'
            end)
      else dex
    in
    let engine =
      match !premade with
      | Some e -> e
      | None ->
        Obs.Span.with_span ~cat:"app" ~name:"engine-create" (fun () ->
            Bytesearch.Engine.create ~indexed:cfg.indexed_search
              ~eager:cfg.eager_index ~pool dex)
    in
    (* diff the persisted result cache (if any) against this build's
       classmap once; every run of the session consults the precomputed
       plan *)
    let replay =
      match results with
      | None -> None
      | Some rc ->
        Some (Resultcache.plan rc ~dex:(Bytesearch.Engine.dexfile engine))
    in
    { s_cfg = cfg; s_pool = pool; s_owns_pool = owns_pool; s_engine = engine;
      s_manifest = manifest; s_replay = replay }
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    if owns_pool then Parallel.Pool.shutdown pool;
    Printexc.raise_with_backtrace e bt

let close_session s = if s.s_owns_pool then Parallel.Pool.shutdown s.s_pool

let session_engine s = s.s_engine
let session_config s = s.s_cfg
let session_pool s = s.s_pool

let run_session ?budget s =
  Obs.Span.with_span ~cat:"app" ~name:"analyze" @@ fun () ->
  let cfg =
    match budget with
    | None -> s.s_cfg
    | Some budget -> { s.s_cfg with budget }
  in
  let engine = s.s_engine and manifest = s.s_manifest in
  let replay = s.s_replay in
  (match
     Bytesearch.Engine.note_ruleset engine (Rules.Rule.hash_list cfg.rules)
   with
   | `Changed ->
     Log.warn (fun m ->
         m "rule set changed since this engine was last used; flushed the \
            search cache");
     Obs.Flight.anomaly ~kind:"snapshot" ~name:"ruleset-changed" ()
   | `First | `Same -> ());
  let occurrences =
    Obs.Span.with_span ~cat:"app" ~name:"initial-search" (fun () ->
        initial_group_search ~cfg engine)
  in
  let groups = Array.of_list (group_by_method occurrences) in
  let outs =
    Parallel.Pool.parallel_map s.s_pool
      (analyze_group ~cfg ~engine ~manifest ?replay) groups
  in
    let loops = Loopdetect.create () in
    let sink_cache_lookups = ref 0 and sink_cache_hits = ref 0 in
    let ssg_nodes = ref 0 and ssg_edges = ref 0 in
    let partial_sinks = ref 0 in
    let replayed_sinks = ref 0 in
    let resolutions = ref 0 and resolved_callers = ref 0 in
    let work_spent = ref 0 in
    Array.iter
      (fun g ->
         Loopdetect.add_into ~dst:loops g.g_loops;
         sink_cache_lookups := !sink_cache_lookups + g.g_sink_lookups;
         sink_cache_hits := !sink_cache_hits + g.g_sink_hits;
         ssg_nodes := !ssg_nodes + g.g_ssg_nodes;
         ssg_edges := !ssg_edges + g.g_ssg_edges;
         partial_sinks := !partial_sinks + g.g_partial;
         replayed_sinks := !replayed_sinks + g.g_replayed;
         resolutions := !resolutions + g.g_resolutions;
         resolved_callers := !resolved_callers + g.g_callers;
         work_spent := !work_spent + g.g_work)
      outs;
    let reports =
      Array.to_list outs
      |> List.concat_map (fun g -> g.g_reports)
      |> List.sort (fun (a, _) (b, _) ->
             compare (a : int * int) b)
      |> List.map snd
    in
    let stats =
      { sink_calls = List.length occurrences;
        searches_total = Bytesearch.Engine.total_searches engine;
        searches_cached = Bytesearch.Engine.cached_searches engine;
        search_cache_rate = Bytesearch.Engine.cache_rate engine;
        sink_cache_lookups = !sink_cache_lookups;
        sink_cache_hits = !sink_cache_hits;
        loops;
        ssg_nodes = !ssg_nodes;
        ssg_edges = !ssg_edges;
        partial_sinks = !partial_sinks;
        replayed_sinks = !replayed_sinks;
        index_categories_built = Bytesearch.Engine.built_categories engine;
        resolutions = !resolutions;
        resolved_callers = !resolved_callers;
        work_spent = !work_spent }
    in
    Obs.Metrics.add m_sink_calls stats.sink_calls;
    Obs.Metrics.add m_ssg_nodes stats.ssg_nodes;
    Obs.Metrics.add m_ssg_edges stats.ssg_edges;
    Obs.Metrics.add m_sink_cache_lookups stats.sink_cache_lookups;
    Obs.Metrics.add m_sink_cache_hits stats.sink_cache_hits;
    (* one batched flight event carrying every driver.* end-of-run counter
       (a single ring push; the trace exporter explodes the attributes into
       per-name Chrome 'C' counter tracks) *)
    Obs.Flight.record ~kind:"counters" ~name:"driver"
      ~attrs:[ ("driver.sink_calls", Obs.Span.Int stats.sink_calls);
               ("driver.ssg_nodes", Obs.Span.Int stats.ssg_nodes);
               ("driver.ssg_edges", Obs.Span.Int stats.ssg_edges);
               ("driver.sink_cache.lookups",
                Obs.Span.Int stats.sink_cache_lookups);
               ("driver.sink_cache.hits", Obs.Span.Int stats.sink_cache_hits);
               ("driver.partial_sinks", Obs.Span.Int stats.partial_sinks);
               ("driver.replayed_sinks", Obs.Span.Int stats.replayed_sinks);
               ("driver.resolutions", Obs.Span.Int stats.resolutions);
               ("driver.work_spent", Obs.Span.Int stats.work_spent) ]
      ();
    { reports; stats }

(** Analyze one app: a transient session.  [pool] (otherwise created from
    [cfg.jobs]) drives the sharded index build and the per-sink-group
    fan-out.  [engine] is a premade engine (a snapshot warm start); its
    dexfile takes the place of [dex] — unless the reflection transform
    rewrites call sites, which invalidates any prebuilt index, so the
    engine is discarded (with a warning) and the rewritten program is
    indexed cold.  A premade engine last used under a {e different} rule
    set has its query cache flushed (with a warning) before this run's
    searches — cached search state never crosses rule sets silently. *)
let analyze ?cfg ?pool ?engine ?results ~(dex : Dex.Dexfile.t)
    ~(manifest : Manifest.App_manifest.t) () =
  let s = open_session ?cfg ?pool ?engine ?results ~dex ~manifest () in
  Fun.protect
    ~finally:(fun () -> close_session s)
    (fun () -> run_session s)

(* ------------------------------------------------------------------ *)

(* The app classes an SSG slice touched: every method the backtracking
   visited (nodes, edge endpoints, entries, static track) plus the global
   static-taint fields' classes.  Restricted to classes in the dexfile's
   classmap — framework classes don't version with the app. *)
let ssg_footprint ~(classmap : Dex.Classmap.t) (ssg : Ssg.t) sink_meth =
  let seen = Hashtbl.create 16 in
  let add cls =
    if Classmap.find classmap cls <> None then Hashtbl.replace seen cls ()
  in
  let addm (m : Jsig.meth) = add m.Jsig.cls in
  addm sink_meth;
  List.iter (fun (n : Ssg.unit_) -> addm n.Ssg.meth) ssg.Ssg.nodes;
  List.iter
    (fun (e : Ssg.edge) ->
       match e with
       | Ssg.Call { caller; callee; _ } | Ssg.Contained { caller; callee; _ }
         ->
         addm caller;
         addm callee
       | Ssg.Async { caller; callee; chain; ending; _ } ->
         addm caller;
         addm callee;
         addm ending;
         List.iter (fun (m, _) -> addm m) chain
       | Ssg.Icc { caller; handler; _ } ->
         addm caller;
         addm handler
       | Ssg.Lifecycle { pre; handler } ->
         addm pre;
         addm handler)
    ssg.Ssg.edges;
  List.iter addm ssg.Ssg.entry_methods;
  List.iter addm ssg.Ssg.static_track;
  List.iter (fun (f : Jsig.field) -> add f.Jsig.fcls)
    ssg.Ssg.global_static_taints;
  Hashtbl.fold (fun c () acc -> c :: acc) seen [] |> List.sort String.compare

(** Persistable per-sink results of [result]: one cache entry per distinct
    sink call site whose slice ran to completion in this run (replayed or
    cache-served sites carry no SSG and are skipped — their provenance
    lives in the cache they came from).  Keyed for {!Resultcache.lookup}
    and stamped with [dex]'s class-hash table; an empty classmap yields an
    empty cache (nothing could ever be validated against it). *)
let export_results ~(dex : Dex.Dexfile.t) result =
  let classmap = dex.Dex.Dexfile.classmap in
  if Classmap.length classmap = 0 then Resultcache.empty
  else begin
    let classes =
      Array.init (Classmap.length classmap) (fun i ->
          (classmap.Dex.Classmap.names.(i),
           classmap.Dex.Classmap.ir_hash.(i)))
    in
    let seen = Hashtbl.create 16 in
    let entries =
      List.filter_map
        (fun r ->
           match (r.ssg, r.outcome) with
           | Some ssg, Context.Complete ->
             let e_sink_msig = Jsig.meth_to_string r.sink.Sinks.msig in
             let e_meth = Jsig.meth_to_string r.meth in
             let key =
               Printf.sprintf "%s|%d|%s|%d" e_sink_msig
                 r.sink.Sinks.param_index e_meth r.site
             in
             if Hashtbl.mem seen key then None
             else begin
               Hashtbl.replace seen key ();
               Some
                 { Resultcache.e_sink_msig;
                   e_param_index = r.sink.Sinks.param_index;
                   e_meth; e_site = r.site; e_reachable = r.reachable;
                   e_fact = r.fact;
                   e_footprint = ssg_footprint ~classmap ssg r.meth }
             end
           | Some _, Context.Partial _ | None, _ -> None)
        result.reports
    in
    Resultcache.build ~classes entries
  end
