(** The telemetry layer: hierarchical {!Span}s with a lock-free-per-domain
    default recorder, a sharded deterministic {!Metrics} registry,
    {!Chrome} trace-event export, the always-on {!Flight} recorder over
    per-domain {!Ring} buffers, the OpenMetrics {!Export} exposition, a
    per-phase self-time {!Summary}, and the shared {!Jsonf}/{!Io} helpers
    every artifact writer goes through.

    Everything is off-by-default-cheap: with no span sink installed and
    metrics disabled ({!disable}), the instrumentation costs one
    [Atomic.get] per call site — the bench's [--obs-overhead] section
    measures exactly this margin.  The flight recorder is the exception by
    design: it stays on in production runs, at a cost the same bench holds
    under the metrics-only budget. *)

module Jsonf = Jsonf
module Io = Io
module Span = Span
module Metrics = Metrics
module Chrome = Chrome
module Ring = Ring
module Flight = Flight
module Export = Export
module Summary = Summary

(** Turn all recording off: removes the span sink, disables metrics and
    stops the flight recorder (benchmark baselines only — production keeps
    the flight recorder on). *)
let disable () =
  Span.set_sink None;
  Metrics.set_enabled false;
  Flight.set_enabled false

(** (Re-)enable metrics recording.  Span recording turns on by installing a
    sink ([Span.Recorder.install]). *)
let enable_metrics () = Metrics.set_enabled true

(** (Re-)enable the always-on flight recorder (it starts enabled; this
    undoes {!disable}). *)
let enable_flight () = Flight.set_enabled true

(** [true] when nothing records: no span sink, metrics disabled, flight
    recorder off. *)
let disabled () =
  (not (Span.enabled ())) && (not (Metrics.enabled ()))
  && not (Flight.enabled ())
