(** Exception-safe file output, shared by every writer that dumps an
    artifact (trace rings, Chrome traces, metrics snapshots, bench JSON).
    An exception mid-write must not leak the fd. *)

let with_file_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

(** Write [content] (plus a trailing newline) to [path]. *)
let write_string path content =
  with_file_out path (fun oc ->
      output_string oc content;
      if content = "" || content.[String.length content - 1] <> '\n' then
        output_char oc '\n')
