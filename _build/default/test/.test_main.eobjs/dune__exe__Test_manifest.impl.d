test/test_manifest.ml: Alcotest Framework Ir List Manifest
