(** Typed bytecode-search commands.  Each constructor corresponds to one kind
    of raw text search BackDroid issues against the dexdump plaintext.

    Payloads are interned symbols: constructing a query interns its search
    signature once, after which cache lookups, postings lookups and query
    equality are integer operations — the query value itself is the cache
    key, and no command string is rendered on the hot path. *)

type t =
    Invocation of Sym.t
  | New_instance of Sym.t
  | Const_class of Sym.t
  | Const_string of Sym.t  (** the {e quoted} literal *)
  | Field_access of Sym.t
  | Static_field_access of Sym.t
  | Class_use of Sym.t
  | Raw of string

(** Smart constructors from the raw search strings (interning once). *)
val invocation : string -> t
val new_instance : string -> t
val const_class : string -> t

(** [const_string s] takes the {e unquoted} literal and interns its quoted
    rendering — the exact operand text of a [const-string] line. *)
val const_string : string -> t

val field_access : string -> t
val static_field_access : string -> t
val class_use : string -> t
val raw : string -> t

(** Smart constructors from already-interned symbols (the descriptor memos
    of [Dex.Descriptor]) — allocation-free query construction. *)
val invocation_sym : Sym.t -> t
val new_instance_sym : Sym.t -> t
val const_class_sym : Sym.t -> t
val field_access_sym : Sym.t -> t
val static_field_access_sym : Sym.t -> t
val class_use_sym : Sym.t -> t

(** O(1): symbol payloads compare by id. *)
val equal : t -> t -> bool
val hash : t -> int

(** Granularity label used for the per-category cache statistics of
    Sec. IV-F. *)
type category = Cat_caller | Cat_class | Cat_field | Cat_raw
val category : t -> category
val category_to_string : category -> string

(** Dense index of a category (for per-category counter arrays). *)
val category_index : category -> int

val n_categories : int

(** All categories, in {!category_index} order. *)
val all_categories : category array

(** Human-readable grep-style command, e.g.
    ["grep 'invoke-.*, Lcom/foo;.m:()V'"] — for trace output only. *)
val to_command : t -> string
