lib/ir/program.mli: Hashtbl Jclass Jmethod Jsig String
