lib/dex/disasm.mli: Hashtbl Ir
