(** The compiled-in rule sets.

    [primary] reproduces the paper's two misuse classes exactly — the
    predicates below are the data rendering of the match arms the old
    [Detectors.classify] hard-coded, so the default configuration reports
    byte-identically to the pre-rule-engine pipeline.  [catalog] adds the
    auxiliary report-only sinks, [extended] the three newer families
    (WebView JS misuse, SQL-injection argument backtracking,
    exported-component intent redirection). *)

module Sinks = Framework.Sinks
open Rule

let ecb_crypto =
  { name = "ecb-crypto";
    description = "Cipher.getInstance with an ECB or mode-less transformation";
    sinks = [ Sinks.cipher ];
    insecure_when =
      All [ Fact_is Const_str;
            Any [ Str_contains "ECB"; Not (Str_contains "/") ] ];
    secure_when = Fact_is Const_str }

let ssl_hostname =
  { name = "ssl-hostname";
    description = "setHostnameVerifier with an allow-all verifier";
    sinks = [ Sinks.ssl_factory; Sinks.https_conn ];
    insecure_when =
      Any [ Field_is { cls = "org.apache.http.conn.ssl.SSLSocketFactory";
                       name = "ALLOW_ALL_HOSTNAME_VERIFIER" };
            Class_in [ "org.apache.http.conn.ssl.AllowAllHostnameVerifier" ];
            Verifier_returns { name = "verify"; value = 1 } ];
    secure_when =
      Any [ Class_in [ "org.apache.http.conn.ssl.StrictHostnameVerifier";
                       "org.apache.http.conn.ssl.BrowserCompatHostnameVerifier" ];
            All [ Verifier_resolves { name = "verify" };
                  Not (Verifier_returns { name = "verify"; value = 1 }) ] ] }

(* Report-only auxiliary sinks (Sec. VI-D): any resolved constant argument
   counts as vetted, nothing is flagged insecure. *)
let aux_rule name description sink =
  { name; description; sinks = [ sink ];
    insecure_when = False;
    secure_when = Any [ Fact_is Const_str; Fact_is Const_int ] }

let sms_send =
  aux_rule "sms-send" "SmsManager.sendTextMessage destination vetting"
    Sinks.sms

let server_socket =
  aux_rule "server-socket" "ServerSocket open-port vetting" Sinks.server_socket

let local_socket =
  aux_rule "local-socket" "LocalServerSocket open-socket vetting"
    Sinks.local_socket

let webview_js =
  { name = "webview-js";
    description = "WebView.setJavaScriptEnabled(true)";
    sinks = [ Sinks.webview_js ];
    insecure_when = Int_eq 1;
    secure_when = Fact_is Const_int }

let webview_bridge =
  { name = "webview-bridge";
    description =
      "WebView.addJavascriptInterface exposes a Java bridge to page scripts \
       (presence-based: any reachable call is flagged)";
    sinks = [ Sinks.webview_bridge ];
    insecure_when = True;
    secure_when = False }

let sql_injection =
  { name = "sql-injection";
    description =
      "SQLiteDatabase.rawQuery with an externally influenced query string";
    sinks = [ Sinks.sql_query ];
    insecure_when = Any [ Fact_is Framework_input; Fact_is Symbolic ];
    secure_when = Fact_is Const_str }

let intent_redirect =
  { name = "intent-redirect";
    description =
      "startActivity forwarding an externally supplied Intent \
       (exported-component intent redirection)";
    sinks = [ Sinks.intent_redirect ];
    insecure_when = Fact_is Framework_input;
    secure_when = Fact_is New_obj }

(** The paper's rule set (Sec. VI-A) — the default configuration. *)
let primary = [ ecb_crypto; ssl_hostname ]

(** [primary] plus the auxiliary report-only sinks. *)
let catalog = [ ecb_crypto; ssl_hostname; sms_send; server_socket; local_socket ]

(** Every compiled-in rule family. *)
let extended =
  catalog @ [ webview_js; webview_bridge; sql_injection; intent_redirect ]

(** Fixed rule-family order of the per-rule eval CSV columns. *)
let family_names = List.map (fun r -> r.Rule.name) extended

(** The built-in rule covering [sink], if any — the compatibility shim the
    baselines use to map a sink occurrence to its verdict logic. *)
let rule_for_sink =
  let idx = Hashtbl.create 16 in
  List.iter
    (fun r ->
       List.iter
         (fun (s : Sinks.t) ->
            let key = Sym.id (Ir.Jsig.meth_sym s.Sinks.msig) in
            if not (Hashtbl.mem idx key) then Hashtbl.add idx key r)
         r.Rule.sinks)
    extended;
  fun (sink : Sinks.t) ->
    Hashtbl.find_opt idx (Sym.id (Ir.Jsig.meth_sym sink.Sinks.msig))
