test/test_shapes.ml: Alcotest Appgen Backdroid Baseline Dex Framework Gen Ir List Manifest Printf QCheck QCheck_alcotest
