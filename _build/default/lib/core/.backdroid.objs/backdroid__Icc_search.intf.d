lib/core/icc_search.mli: Bytesearch Ir Manifest
