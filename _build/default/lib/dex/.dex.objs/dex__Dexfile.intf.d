lib/dex/dexfile.mli: Disasm Ir
