(** backdroidd: the resident analysis service.  A long-lived process that
    keeps hot engines resident behind the {!Enginecache} LRU and serves
    concurrent analyze/query/stats/shutdown requests over a Unix-domain
    (and optionally TCP) socket with the {!Protocol} framing.  Request
    CPU work runs on the worker-domain pool under {!Admission} control;
    per-request budgets come from the wire. *)

type config = {
  socket : string;            (** Unix-domain socket path *)
  tcp : (string * int) option;
      (** additionally listen on this TCP host/port *)
  jobs : int;                 (** worker-domain pool width *)
  max_resident : int;         (** hot-engine LRU entry ceiling *)
  max_resident_mb : float;    (** hot-engine LRU resident-bytes ceiling *)
  max_inflight : int;         (** concurrent analyze/query requests *)
  queue_timeout_ms : float;   (** admission wait before a typed rejection *)
  drain_timeout_ms : float;   (** shutdown grace for in-flight requests *)
  rules : Rules.Rule.t list;  (** detection rules (fixed per daemon) *)
  budget : Backdroid.Context.budget;
      (** default slicing budget; the wire can tighten [time_limit_ms]
          per request *)
}

val default_config : config

type t

(** Claim the socket (refusing on a stale-but-live one: connect-probe
    before unlink), bind, and spawn the accept thread.  Returns
    immediately; pair with {!wait}.  No signal handlers are installed —
    that's {!run}'s job. *)
val start : config -> (t, string) result

(** Request shutdown: stop accepting, drain in-flight requests up to the
    drain deadline, close connections, unlink the socket.  Returns
    immediately; {!wait} observes completion.  Idempotent. *)
val stop : t -> unit

(** Join the accept thread (returns after shutdown completed) and release
    the worker pool. *)
val wait : t -> unit

(** Daemon mode: {!start}, install SIGTERM/SIGINT handlers that trigger
    the graceful {!stop}, and {!wait}. *)
val run : config -> (unit, string) result
