(** Search-command caching (implementation enhancement 1, Sec. IV-F).

    Keys are the rendered raw command strings; the cache also keeps the
    per-category and aggregate counters the paper reports (average cache rate
    23.39%, min 2.97%, max 88.95%). *)

type 'hit stats = {
  mutable total : int;
  mutable cached : int;
  per_category : (Query.category, int * int) Hashtbl.t;
}
type 'hit t = { table : (string, 'hit list) Hashtbl.t; stats : 'hit stats; }
val create : unit -> 'a t
val bump : 'a t -> Query.category -> was_cached:bool -> unit

(** Look up or compute the result of [query], recording statistics. *)
val find_or_add : 'a t -> Query.t -> (unit -> 'a list) -> 'a list

(** Fraction of search commands served from cache, in [0, 1]. *)
val cache_rate : 'a t -> float
val total_searches : 'a t -> int
val cached_searches : 'a t -> int
val category_stats : 'a t -> (Query.category * int * int) list
