lib/ir/stmt.ml: Expr Fmt Jsig Printf Types Value
