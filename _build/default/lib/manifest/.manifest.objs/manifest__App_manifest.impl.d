lib/manifest/app_manifest.ml: Component Ir Lifecycle List Option String
