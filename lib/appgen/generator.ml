(** The synthetic app generator: assembles framework stubs, filler code and
    planted sink flows into a complete app (program + manifest + disassembled
    dex + ground truth). *)

module Sinks = Framework.Sinks

type plant_spec = {
  shape : Shape.t;
  sink : Sinks.t;
  insecure : bool;
}

type config = {
  seed : int;
  name : string;
  filler_classes : int;
  filler_methods_per_class : int;
  filler_stmts_per_method : int;
  filler_dispatch_p : float;
      (** fraction of filler methods containing a virtual-dispatch site *)
  filler_fanout_max : int;
      (** maximum static-call fan-out per filler method; higher values make
          the app's calling-context space explode for whole-app analyses *)
  filler_jump_locality : int;
      (** 0 = calls jump anywhere forward (shallow chains); k>0 = calls stay
          within the next k classes (chains as deep as the class count) *)
  plants : plant_spec list;
  multidex : bool;
}

let default_config =
  { seed = 1;
    name = "com.example.app";
    filler_classes = 10;
    filler_methods_per_class = 6;
    filler_stmts_per_method = 8;
    filler_dispatch_p = 0.25;
    filler_fanout_max = 3;
    filler_jump_locality = 0;
    plants = [];
    multidex = false }

type app = {
  name : string;
  config : config;
  program : Ir.Program.t;
  manifest : Manifest.App_manifest.t;
  dex : Dex.Dexfile.t;
  planted : Templates.planted list;
  size_stmts : int;
}

(** Sanitise an app name into a Java package fragment. *)
let package_of_name name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
       if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' then
         Buffer.add_char b c
       else if c >= 'A' && c <= 'Z' then Buffer.add_char b (Char.lowercase_ascii c)
       else Buffer.add_char b '_')
    name;
  Buffer.contents b

let generate ?(build_dex = true) (cfg : config) =
  let rng = Rng.create cfg.seed in
  let pkg = package_of_name cfg.name in
  (* shared-util plants form one group behind a common hub class; all other
     plants live in their own sub-namespace *)
  let shared, solo =
    List.partition (fun (p : plant_spec) -> p.shape = Shape.Shared_util)
      cfg.plants
  in
  let plant_results =
    List.mapi
      (fun i (p : plant_spec) ->
         let ctx =
           { Templates.ns = Printf.sprintf "%s.s%d" pkg i; rng = Rng.split rng }
         in
         Templates.plant ctx p.shape ~sink:p.sink ~insecure:p.insecure)
      solo
  in
  let shared_classes, shared_components, shared_planted =
    match shared with
    | [] -> [], [], []
    | first :: _ ->
      let ctx = { Templates.ns = pkg ^ ".sh"; rng = Rng.split rng } in
      (* the whole group shares the first member's sink and security flag *)
      Templates.plant_shared_group ctx ~sink:first.sink ~insecure:first.insecure
        ~count:(List.length shared)
  in
  (* filler web + its root activity *)
  let filler_rng = Rng.split rng in
  let filler_classes =
    Filler.classes ~dispatch_p:cfg.filler_dispatch_p
      ~fanout_max:cfg.filler_fanout_max
      ~jump_locality:cfg.filler_jump_locality filler_rng ~ns:pkg
      ~n_classes:cfg.filler_classes
      ~methods_per_class:cfg.filler_methods_per_class
      ~stmts_per_method:cfg.filler_stmts_per_method
  in
  let filler_act, filler_comp =
    Filler.root_activity filler_rng ~ns:pkg ~n_classes:cfg.filler_classes
      ~methods_per_class:cfg.filler_methods_per_class
  in
  let classes =
    Framework.Stubs.classes ()
    @ (filler_act :: filler_classes)
    @ shared_classes
    @ List.concat_map (fun (r : Templates.result) -> r.classes) plant_results
  in
  let program = Ir.Program.of_classes classes in
  let components =
    (filler_comp :: shared_components)
    @ List.concat_map (fun (r : Templates.result) -> r.components) plant_results
  in
  let manifest = Manifest.App_manifest.make ~package:pkg ~components in
  let dex =
    if not build_dex then Dex.Dexfile.empty program
    else if cfg.multidex then begin
      (* split app classes into classes.dex / classes2.dex style partitions *)
      let app_names =
        List.filter_map
          (fun (c : Ir.Jclass.t) -> if c.is_system then None else Some c.name)
          classes
      in
      let rec chunk xs =
        match xs with
        | [] -> []
        | _ ->
          let n = min 50 (List.length xs) in
          let part = List.filteri (fun i _ -> i < n) xs in
          let rest = List.filteri (fun i _ -> i >= n) xs in
          part :: chunk rest
      in
      Dex.Dexfile.of_partitions program (chunk app_names)
    end
    else Dex.Dexfile.of_program program
  in
  { name = cfg.name;
    config = cfg;
    program;
    manifest;
    dex;
    planted =
      shared_planted
      @ List.map (fun (r : Templates.result) -> r.planted) plant_results;
    size_stmts = Ir.Program.code_size program }

(** Approximate on-disk size in "MB" for reporting, from our calibration of
    statements per megabyte (see {!Corpus.stmts_per_mb}). *)
let size_mb ~stmts_per_mb app =
  float_of_int app.size_stmts /. float_of_int stmts_per_mb

(* Append one reachable-by-fallthrough-never constant assignment to a
   method body: changes the class's IR (and rendered text) without touching
   any statement index an analysis could have recorded, so planted flows
   and their cold-analysis reports are unaffected. *)
let mutate_method tag (m : Ir.Jmethod.t) =
  match m.Ir.Jmethod.body with
  | None -> m
  | Some body ->
    let l =
      { Ir.Value.id = Printf.sprintf "$mut%d" tag; ty = Ir.Types.Int }
    in
    let extra =
      Ir.Stmt.Assign (l, Ir.Expr.Imm (Ir.Value.Const (Ir.Value.Int_c tag)))
    in
    { m with Ir.Jmethod.body = Some (Array.append body [| extra |]) }

(** [mutate ?seed ?build_dex ~pct app] is the "version update" of [app]: a
    deterministic fraction [pct] (of the filler classes, at least one for
    [pct > 0]) get their method bodies edited, everything else — plants,
    manifest, ground truth — is carried over unchanged, and the program and
    dexfile are rebuilt from scratch.  A cold analysis of the result is
    therefore the oracle an incremental (delta) re-analysis must
    reproduce. *)
let mutate ?(seed = 0) ?(build_dex = true) ~pct app =
  let pkg = package_of_name app.config.name in
  let filler_prefix = pkg ^ ".filler.C" in
  let classes =
    List.rev (Ir.Program.fold_classes app.program (fun c acc -> c :: acc) [])
  in
  let fillers, _ =
    List.partition
      (fun (c : Ir.Jclass.t) ->
         String.starts_with ~prefix:filler_prefix c.Ir.Jclass.name)
      classes
  in
  let n_fillers = List.length fillers in
  let n_mutate =
    if pct <= 0.0 || n_fillers = 0 then 0
    else
      min n_fillers
        (max 1 (int_of_float ((pct *. float_of_int n_fillers) +. 0.5)))
  in
  let rng = Rng.create (app.config.seed + (31 * seed) + 1) in
  let victim = Hashtbl.create (max 4 n_mutate) in
  let filler_names =
    Array.of_list
      (List.sort String.compare
         (List.map (fun (c : Ir.Jclass.t) -> c.Ir.Jclass.name) fillers))
  in
  while Hashtbl.length victim < n_mutate do
    Hashtbl.replace victim filler_names.(Rng.int rng n_fillers) ()
  done;
  let tag = ref 0 in
  let classes' =
    List.map
      (fun (c : Ir.Jclass.t) ->
         if Hashtbl.mem victim c.Ir.Jclass.name then begin
           incr tag;
           { c with
             Ir.Jclass.methods =
               List.map (mutate_method !tag) c.Ir.Jclass.methods }
         end
         else c)
      classes
  in
  let program = Ir.Program.of_classes classes' in
  let dex =
    if not build_dex then Dex.Dexfile.empty program
    else Dex.Dexfile.of_program program
  in
  { app with program; dex; size_stmts = Ir.Program.code_size program }
