lib/core/object_taint.ml: Array Bytesearch Expr Hashtbl Ir Jclass Jmethod Jsig List Log Loopdetect Option Program Sigformat Stmt String Types Value
