lib/core/api_model.mli: Facts Framework Ir
