(** Filler code: the bulk of a synthetic app.  A web of classes reachable
    from an entry activity, with arithmetic bodies, static call chains and
    virtual dispatch through a common base class (which fans out under CHA
    exactly the way real app hierarchies make whole-app analysis expensive),
    while containing no sink APIs — so a targeted analysis can skip all of
    it. *)

module B = Ir.Builder
module Component = Manifest.Component
val base_cls : string -> string
val impl_cls : string -> int -> string
val meth_sig : string -> int -> int -> Ir.Jsig.meth
val step_sig : string -> Ir.Jsig.meth

(** Arithmetic filler statements over an int seed local; returns the last
    defined local. *)
val arith_block :
  Rng.t ->
  B.mb -> n:int -> seed_local:Ir.Value.local -> Ir.Value.local
val plain_ctor : cls:string -> super:string -> Ir.Jmethod.t

(** Generate the filler class web.  Call edges go from class [i] to classes
    [> i] (static calls), plus virtual [step] dispatch through the base type,
    which CHA resolves to every override.  [dispatch_p] is the fraction of
    methods containing such a dispatch site — the knob that makes whole-app
    analysis expensive on "framework-heavy" apps while leaving the targeted
    analysis untouched. *)
val classes :
  ?dispatch_p:float ->
  ?fanout_max:int ->
  ?jump_locality:int ->
  Rng.t ->
  ns:string ->
  n_classes:int ->
  methods_per_class:int -> stmts_per_method:int -> Ir.Jclass.t list

(** The activity that roots the filler web, making it reachable from entry
    points (whole-app analyses must therefore traverse it). *)
val root_activity :
  Rng.t ->
  ns:string ->
  n_classes:int -> methods_per_class:int -> Ir.Jclass.t * Component.t
