(* Open-port and SMS vetting: the "uncommon sink APIs" of Sec. VI-D
   (ServerSocket, LocalServerSocket, sendTextMessage).  BackDroid's sink
   catalog is not limited to the crypto/SSL pair — any sink-based problem
   plugs into the same targeted pipeline, here reporting the resolved
   dataflow facts (port numbers, socket names, message bodies) rather than a
   misuse verdict.

   Run with: dune exec examples/open_ports.exe *)

module G = Appgen.Generator
module Shape = Appgen.Shape
module Sinks = Framework.Sinks
module Driver = Backdroid.Driver

let () =
  let app =
    G.generate
      { G.default_config with
        G.seed = 47;
        name = "com.ports.demo";
        filler_classes = 8;
        plants =
          [ { G.shape = Shape.Direct; sink = Sinks.server_socket; insecure = true };
            { G.shape = Shape.Static_chain; sink = Sinks.local_socket;
              insecure = true };
            { G.shape = Shape.Async_thread; sink = Sinks.sms; insecure = true };
            { G.shape = Shape.Dead_code; sink = Sinks.server_socket;
              insecure = true } ] }
  in
  let cfg = { Driver.default_config with Driver.rules = Rules.Builtin.catalog } in
  let r = Driver.analyze ~cfg ~dex:app.G.dex ~manifest:app.G.manifest () in
  Printf.printf "%-16s %-10s %-40s %s\n" "sink" "reachable" "containing method"
    "resolved parameter";
  List.iter
    (fun (rep : Driver.sink_report) ->
       Printf.printf "%-16s %-10b %-40s %s\n"
         rep.sink.Sinks.name
         rep.reachable
         (rep.meth.Ir.Jsig.cls ^ "." ^ rep.meth.Ir.Jsig.name)
         (Backdroid.Facts.to_string rep.fact))
    r.Driver.reports;
  let reachable =
    List.filter (fun (rep : Driver.sink_report) -> rep.reachable) r.Driver.reports
  in
  Printf.printf
    "\n%d sink calls found, %d reachable from entry points (dead code pruned)\n"
    (List.length r.Driver.reports) (List.length reachable)
