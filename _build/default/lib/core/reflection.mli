(** DroidRA-style reflection resolution (the Sec. VII plan: "first resolve
    reflection parameters using our on-the-fly backtracking and then directly
    build caller edges").

    The transform scans every app method for constant
    [Class.forName] / [getMethod] / [Method.invoke] triples, resolves the
    target method, and rewrites the reflective invocation into a direct call.
    The app is then re-disassembled, so the ordinary initial sink search and
    caller searches see the de-reflected call sites. *)

module Api = Framework.Api

(** Per-body constant tracking: which locals hold a resolved Class, and
    which hold a resolved (class, method-name) pair. *)
type tracking = {
  strings : (string, string) Hashtbl.t;
  classes : (string, string) Hashtbl.t;
  methods : (string, string * string) Hashtbl.t;
}
val resolve_target :
  Ir.Program.t -> string -> String.t -> Ir.Jmethod.t option

(** Rewrite one body; returns the new body and the number of de-reflected
    invocations. *)
val transform_body : Ir.Program.t -> Ir.Stmt.t array -> Ir.Stmt.t array * int

(** De-reflect a whole program.  Returns the transformed program and the
    number of rewritten invocations (0 means the original program is
    returned unchanged). *)
val transform : Ir.Program.t -> Ir.Program.t * int
