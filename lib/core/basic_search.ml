(** The basic signature-based search (Sec. IV-A): locate callers of static,
    private and constructor methods by searching the dexdump plaintext for
    the callee's (translated) signature — plus the child-class signature
    expansion for methods that may be invoked through a non-overloading
    child class. *)

open Ir

type call_site = {
  caller : Jsig.meth;
  site : int;              (** statement index of the invocation *)
  invoke : Expr.invoke;
}

(** Step 4 of Fig. 3: the quick forward analysis over the caller body that
    pins down the actual call site(s) matching [search_cls]/[callee]. *)
let find_call_sites program ~caller ~callee ~search_cls =
  match Program.find_method program caller with
  | None | Some { Jmethod.body = None; _ } -> []
  | Some m ->
    List.filter_map
      (fun (idx, (iv : Expr.invoke)) ->
         if
           String.equal iv.callee.Jsig.cls search_cls
           && String.equal iv.callee.Jsig.name callee.Jsig.name
           && List.length iv.callee.Jsig.params = List.length callee.Jsig.params
           && List.for_all2 Types.equal iv.callee.Jsig.params callee.Jsig.params
         then Some { caller; site = idx; invoke = iv }
         else None)
      (Jmethod.call_sites m)

(** Search signatures to try for [callee]: its own, plus — when the callee is
    neither static, private nor a constructor — the signature relocated onto
    every transitive child class that does not overload it (Sec. IV-A,
    "Searching over a child class"). *)
let search_classes program (callee : Jsig.meth) =
  let own = [ callee.cls ] in
  match Program.find_method program callee with
  | Some m when Jmethod.is_signature_method m -> own
  | _ ->
    let subsig = Jsig.sub_signature callee in
    let children =
      Program.subclasses_transitive program callee.cls
      |> List.filter (fun child ->
          match Program.find_class program child with
          | Some c -> Option.is_none (Jclass.find_method_by_subsig c subsig)
          | None -> false)
    in
    own @ children

(** Run the basic search: one bytecode search per candidate signature, then
    call-site recovery in the program space.  Results are deduplicated. *)
let callers engine (callee : Jsig.meth) =
  let program = Bytesearch.Engine.program engine in
  let sites = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun search_cls ->
       let dex_sig = Sigformat.to_dex_meth_on_class_sym callee search_cls in
       let hits =
         Bytesearch.Engine.run engine (Bytesearch.Query.invocation_sym dex_sig)
       in
       Log.debug (fun m ->
           m "basic search %s -> %d invocation hits" (Sym.to_string dex_sig)
             (List.length hits));
       List.iter
         (fun (h : Bytesearch.Engine.hit) ->
            List.iter
              (fun cs ->
                 let key = (Sym.id (Jsig.meth_sym cs.caller), cs.site) in
                 if not (Hashtbl.mem seen key) then begin
                   Hashtbl.replace seen key ();
                   sites := cs :: !sites
                 end)
              (find_call_sites program ~caller:h.owner ~callee ~search_cls))
         hits)
    (search_classes program callee);
  List.rev !sites
