lib/framework/stubs.ml: Api Builder Ir Jclass Jmethod Jsig Types
