(** A process-wide registry of named counters and log-scale histograms,
    sharded per domain and merged deterministically at snapshot.

    Registration ([counter] / [histogram]) interns the name under a mutex
    and returns a dense integer handle — do it once at module toplevel.
    Recording ([incr] / [add] / [observe]) touches only the calling domain's
    shard (via [Domain.DLS]): no mutex, no atomic RMW on the hot path.

    The merge sums integer counters and integer bucket counts across shards,
    so the merged values are independent of how work was scheduled over
    domains — the jobs=1 vs jobs=N determinism tests rely on this (float
    histogram sums are also merged, but addition order follows shard
    registration order and timing-derived samples vary anyway, so only the
    integer parts are deterministic).  Snapshot and reset are meant to run
    while the instrumented workload is quiescent. *)

let n_buckets = 64

(* -- Registry -------------------------------------------------------- *)

type kind = Counter | Histogram

let lock = Mutex.create ()
let names : (string, int) Hashtbl.t = Hashtbl.create 64
let labels : string array ref = ref [||]
let kinds : kind array ref = ref [||]
let registered = ref 0

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let register kind name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt names name with
    | Some id ->
      (* idempotent, but a name cannot change kind *)
      assert (!kinds.(id) = kind);
      id
    | None ->
      let id = !registered in
      if id >= Array.length !labels then begin
        let cap = max 64 (2 * Array.length !labels) in
        let l = Array.make cap "" and k = Array.make cap Counter in
        Array.blit !labels 0 l 0 id;
        Array.blit !kinds 0 k 0 id;
        labels := l;
        kinds := k
      end;
      !labels.(id) <- name;
      !kinds.(id) <- kind;
      Hashtbl.replace names name id;
      incr registered;
      id
  in
  Mutex.unlock lock;
  id

type counter = int
type histogram = int

let counter name : counter = register Counter name
let histogram name : histogram = register Histogram name

(* -- Shards ---------------------------------------------------------- *)

type shard = {
  mutable counts : int array;          (* per id: counter value *)
  mutable buckets : int array array;   (* per id: histogram bucket counts *)
  mutable sh_count : int array;
  mutable sh_sum : float array;
  mutable sh_min : float array;
  mutable sh_max : float array;
}

let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { counts = [||]; buckets = [||]; sh_count = [||]; sh_sum = [||];
          sh_min = [||]; sh_max = [||] }
      in
      Mutex.lock lock;
      shards := s :: !shards;
      Mutex.unlock lock;
      s)

(* Owner-domain-only growth: arrays are replaced, never shrunk.  Snapshots
   run post-quiescence, so they observe the final arrays. *)
let ensure s id =
  if id >= Array.length s.counts then begin
    let cap = max 64 (max (2 * Array.length s.counts) (id + 1)) in
    let grow_i a = let b = Array.make cap 0 in Array.blit a 0 b 0 (Array.length a); b in
    let grow_f init a =
      let b = Array.make cap init in Array.blit a 0 b 0 (Array.length a); b
    in
    let grow_b a =
      let b = Array.make cap [||] in Array.blit a 0 b 0 (Array.length a); b
    in
    s.counts <- grow_i s.counts;
    s.buckets <- grow_b s.buckets;
    s.sh_count <- grow_i s.sh_count;
    s.sh_sum <- grow_f 0.0 s.sh_sum;
    s.sh_min <- grow_f Float.infinity s.sh_min;
    s.sh_max <- grow_f Float.neg_infinity s.sh_max
  end

let self_shard () = Domain.DLS.get shard_key

let add c by =
  if Atomic.get enabled_flag then begin
    let s = self_shard () in
    ensure s c;
    s.counts.(c) <- s.counts.(c) + by
  end

let incr c = add c 1

(* Log-scale bucket of [v]: bucket 0 holds v < 1 (and non-finite junk),
   bucket k (1 <= k < n_buckets) holds 2^(k-1) <= v < 2^k, the last bucket
   absorbs the tail. *)
let bucket_of v =
  if Float.is_nan v || v < 1.0 then 0
  else
    let b = 1 + int_of_float (Float.floor (Float.log2 v)) in
    if b < 1 then 1 else if b >= n_buckets then n_buckets - 1 else b

let observe h v =
  if Atomic.get enabled_flag then begin
    let s = self_shard () in
    ensure s h;
    if Array.length s.buckets.(h) = 0 then
      s.buckets.(h) <- Array.make n_buckets 0;
    let b = s.buckets.(h) in
    b.(bucket_of v) <- b.(bucket_of v) + 1;
    s.sh_count.(h) <- s.sh_count.(h) + 1;
    let v = Jsonf.clamp v in
    s.sh_sum.(h) <- s.sh_sum.(h) +. v;
    if v < s.sh_min.(h) then s.sh_min.(h) <- v;
    if v > s.sh_max.(h) then s.sh_max.(h) <- v
  end

(* -- Snapshot -------------------------------------------------------- *)

type histo = {
  h_count : int;
  h_sum : float;
  h_min : float;   (** 0. when empty *)
  h_max : float;   (** 0. when empty *)
  h_buckets : (int * int) list;
      (** (bucket exponent, count), non-zero buckets only, ascending:
          exponent [k] covers [2^(k-1), 2^k) (0 covers values < 1) *)
}

type snapshot = {
  counters : (string * int) list;        (** sorted by name *)
  histograms : (string * histo) list;    (** sorted by name *)
}

let snapshot () =
  Mutex.lock lock;
  let n = !registered in
  let labels = Array.sub !labels 0 n in
  let kinds = Array.sub !kinds 0 n in
  let shards = !shards in
  Mutex.unlock lock;
  let counters = ref [] and histograms = ref [] in
  for id = n - 1 downto 0 do
    match kinds.(id) with
    | Counter ->
      let v =
        List.fold_left
          (fun acc s ->
             if id < Array.length s.counts then acc + s.counts.(id) else acc)
          0 shards
      in
      counters := (labels.(id), v) :: !counters
    | Histogram ->
      let merged = Array.make n_buckets 0 in
      let count = ref 0 and sum = ref 0.0 in
      let mn = ref Float.infinity and mx = ref Float.neg_infinity in
      List.iter
        (fun s ->
           if id < Array.length s.sh_count then begin
             count := !count + s.sh_count.(id);
             sum := !sum +. s.sh_sum.(id);
             if s.sh_min.(id) < !mn then mn := s.sh_min.(id);
             if s.sh_max.(id) > !mx then mx := s.sh_max.(id);
             let b = s.buckets.(id) in
             Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b
           end)
        shards;
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if merged.(i) > 0 then buckets := (i, merged.(i)) :: !buckets
      done;
      let empty = !count = 0 in
      histograms :=
        ( labels.(id),
          { h_count = !count; h_sum = !sum;
            h_min = (if empty then 0.0 else !mn);
            h_max = (if empty then 0.0 else !mx);
            h_buckets = !buckets } )
        :: !histograms
  done;
  let by_name (a, _) (b, _) = String.compare a b in
  { counters = List.sort by_name !counters;
    histograms = List.sort by_name !histograms }

(** Zero every shard of every registered metric (run while quiescent). *)
let reset () =
  Mutex.lock lock;
  let shards = !shards in
  Mutex.unlock lock;
  List.iter
    (fun s ->
       Array.fill s.counts 0 (Array.length s.counts) 0;
       Array.iter (fun b -> Array.fill b 0 (Array.length b) 0) s.buckets;
       Array.fill s.sh_count 0 (Array.length s.sh_count) 0;
       Array.fill s.sh_sum 0 (Array.length s.sh_sum) 0.0;
       Array.fill s.sh_min 0 (Array.length s.sh_min) Float.infinity;
       Array.fill s.sh_max 0 (Array.length s.sh_max) Float.neg_infinity)
    shards

(** Estimate the [q]-quantile (q in [0,1]) of a merged histogram from its
    log2 buckets: walk to the bucket holding rank [q*count], interpolate
    linearly inside its [2^(k-1), 2^k) range, and clamp to the observed
    [min,max] (which tightens the coarse bucket bounds at the extremes). *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.h_count in
    let rec go cum = function
      | [] -> h.h_max
      | (k, c) :: rest ->
        let cum' = cum +. float_of_int c in
        if cum' >= rank then begin
          let lo = if k <= 0 then 0.0 else Float.pow 2.0 (float_of_int (k - 1)) in
          let hi = if k <= 0 then 1.0 else Float.pow 2.0 (float_of_int k) in
          let frac = if c = 0 then 0.0 else (rank -. cum) /. float_of_int c in
          let v = lo +. (frac *. (hi -. lo)) in
          Float.min h.h_max (Float.max h.h_min v)
        end
        else go cum' rest
    in
    go 0.0 h.h_buckets
  end

(* -- Rendering ------------------------------------------------------- *)

let bucket_label k =
  if k = 0 then "<1"
  else if k = 1 then "[1,2)"
  else Printf.sprintf "[2^%d,2^%d)" (k - 1) k

let render_table snap =
  let b = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "  %-36s %12s\n" "counter" "value";
  List.iter (fun (name, v) -> bpf "  %-36s %12d\n" name v) snap.counters;
  List.iter
    (fun (name, h) ->
       bpf "  %-36s %12s  count=%d sum=%.1f min=%.1f max=%.1f\n" name
         "histogram" h.h_count h.h_sum h.h_min h.h_max;
       List.iter
         (fun (k, c) ->
            bpf "    %-12s %8d  %s\n" (bucket_label k) c
              (String.make (min 50 c) '#'))
         h.h_buckets)
    snap.histograms;
  Buffer.contents b

let render_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf "\n    \"%s\": %d" (Jsonf.escape name) v))
    snap.counters;
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
       if i > 0 then Buffer.add_char b ',';
       let buckets =
         String.concat ", "
           (List.map
              (fun (k, c) -> Printf.sprintf "\"%d\": %d" k c)
              h.h_buckets)
       in
       Buffer.add_string b
         (Printf.sprintf
            "\n    \"%s\": {%s, %s, %s, %s, %s, %s, %s, \"buckets\": {%s}}"
            (Jsonf.escape name)
            (Jsonf.int_field "count" h.h_count)
            (Jsonf.num_field "sum" h.h_sum)
            (Jsonf.num_field "min" h.h_min)
            (Jsonf.num_field "max" h.h_max)
            (Jsonf.num_field "p50" (quantile h 0.5))
            (Jsonf.num_field "p90" (quantile h 0.9))
            (Jsonf.num_field "p99" (quantile h 0.99))
            buckets))
    snap.histograms;
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

let write_json path snap = Io.write_string path (render_json snap)
